#!/usr/bin/env python3
"""Compare a benchmark JSON record against a committed baseline.

The perf-gate CI job runs `bench_pacb` (which writes BENCH_pacb.json, the
median of 5 timed reps per chain case plus chase-verification counts) and
then this script against `bench/baselines/pacb.json`. Keys ending in
`_us` are wall times: the gate fails when any regresses by more than the
threshold (default 25%). Other numeric keys (verification and rewriting
counts) are compared exactly and reported, but only count *increases*
fail — fewer verifications for the same rewritings is an improvement.

Usage:
  scripts/bench_compare.py CURRENT BASELINE [--threshold 0.25]
  scripts/bench_compare.py CURRENT BASELINE --update
  scripts/bench_compare.py CURRENT BASELINE --github-summary

With --update the current record is copied over the baseline (after an
intentional perf change; review `git diff bench/baselines/` before
committing) and the comparison is skipped.

With --github-summary the per-metric delta table is also appended as
markdown to the file named by $GITHUB_STEP_SUMMARY (when set), so CI
regressions are readable from the run page without downloading the
bench-records artifact.
"""

import argparse
import json
import os
import shutil
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", help="freshly produced BENCH_*.json")
    ap.add_argument("baseline", help="committed bench/baselines/*.json")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed fractional wall-time regression "
                         "(default 0.25 = 25%%)")
    ap.add_argument("--update", action="store_true",
                    help="overwrite the baseline with the current record")
    ap.add_argument("--github-summary", action="store_true",
                    help="append a markdown delta table to "
                         "$GITHUB_STEP_SUMMARY (no-op when unset)")
    args = ap.parse_args()

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline updated: {args.baseline} <- {args.current}")
        return 0

    current = load(args.current)
    baseline = load(args.baseline)

    failures = []
    rows = []       # plain-text report lines
    md_rows = []    # (key, base, current, delta, verdict) for markdown
    for key, base in sorted(baseline.items()):
        if key not in current:
            failures.append(f"{key}: missing from {args.current}")
            md_rows.append((key, f"{base}", "missing", "", "MISSING"))
            continue
        cur = current[key]
        if not isinstance(base, (int, float)) or isinstance(base, bool):
            continue
        if key.endswith("_us"):
            ratio = cur / base if base > 0 else float("inf")
            verdict = "ok"
            if ratio > 1 + args.threshold:
                verdict = "REGRESSED"
                failures.append(
                    f"{key}: {cur:.1f}us vs baseline {base:.1f}us "
                    f"({(ratio - 1) * 100:+.1f}%, allowed "
                    f"+{args.threshold * 100:.0f}%)")
            elif ratio < 1 - args.threshold:
                verdict = "improved"
            rows.append(f"  {key:40s} {base:10.1f} -> {cur:10.1f}  "
                        f"{(ratio - 1) * 100:+6.1f}%  {verdict}")
            md_rows.append((key, f"{base:.1f}us", f"{cur:.1f}us",
                            f"{(ratio - 1) * 100:+.1f}%", verdict))
        else:
            if cur > base:
                failures.append(f"{key}: {cur} vs baseline {base} (count "
                                f"increased)")
            if cur != base:
                rows.append(f"  {key:40s} {base:10g} -> {cur:10g}  changed")
                md_rows.append((key, f"{base:g}", f"{cur:g}", "",
                                "REGRESSED" if cur > base else "changed"))
            else:
                md_rows.append((key, f"{base:g}", f"{cur:g}", "", "ok"))

    for key in sorted(set(current) - set(baseline)):
        rows.append(f"  {key:40s} (new key, not in baseline)")
        md_rows.append((key, "—", f"{current[key]}", "", "new"))

    print(f"bench_compare: {args.current} vs {args.baseline} "
          f"(threshold {args.threshold * 100:.0f}%)")
    for row in rows:
        print(row)

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if args.github_summary and summary_path:
        with open(summary_path, "a") as f:
            verdict_line = (f"**FAIL** — {len(failures)} regression(s)"
                            if failures else "**PASS** — within threshold")
            f.write(f"### {os.path.basename(args.current)} vs "
                    f"{os.path.basename(args.baseline)}\n\n"
                    f"{verdict_line} "
                    f"(threshold {args.threshold * 100:.0f}%)\n\n")
            f.write("| metric | baseline | current | delta | verdict |\n")
            f.write("|---|---:|---:|---:|---|\n")
            for key, base, cur, delta, verdict in md_rows:
                mark = "🔴 " if verdict in ("REGRESSED", "MISSING") else ""
                f.write(f"| `{key}` | {base} | {cur} | {delta} "
                        f"| {mark}{verdict} |\n")
            f.write("\n")

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print("(intentional? refresh with scripts/bench_compare.py "
              "CURRENT BASELINE --update)", file=sys.stderr)
        return 1
    print("PASS: within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
