#!/usr/bin/env bash
# Repo checks: the tier-1 build + test suite, then a ThreadSanitizer build
# of the concurrency-sensitive pieces (serving runtime + stores) and their
# tests. Usage: scripts/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier-1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j "$JOBS")

echo "== TSan: build runtime_test + stores_test =="
cmake -B build-tsan -S . -DESTOCADA_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target runtime_test stores_test

echo "== TSan: run =="
(cd build-tsan/tests && ./runtime_test && ./stores_test)

echo "== all checks passed =="
