#!/usr/bin/env bash
# Repo checks: the tier-1 build + test suite, then a ThreadSanitizer build
# of the concurrency-sensitive pieces (serving runtime + stores) and their
# tests, then an ASan+UBSan build of the failure/recovery paths. Every
# step is fail-fast (set -e): the first broken check stops the run.
# Usage: scripts/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier-1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j "$JOBS")

echo "== TSan: build runtime_test + stores_test =="
cmake -B build-tsan -S . -DESTOCADA_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target runtime_test stores_test

echo "== TSan: run =="
(cd build-tsan/tests && ./runtime_test && ./stores_test)

echo "== ASan+UBSan: build failure_test + runtime_test + stores_test =="
cmake -B build-asan -S . -DESTOCADA_SANITIZE=address >/dev/null
cmake --build build-asan -j "$JOBS" \
  --target failure_test runtime_test stores_test

echo "== ASan+UBSan: run =="
(cd build-asan/tests && ./failure_test && ./runtime_test && ./stores_test)

echo "== all checks passed =="
