#!/usr/bin/env bash
# Repo checks: the tier-1 build + test suite, then a ThreadSanitizer build
# of the concurrency-sensitive pieces (serving runtime + stores) and their
# tests, then an ASan+UBSan build of the failure/recovery paths. Every
# step is fail-fast (set -e): the first broken check stops the run.
#
# Usage: scripts/check.sh [--fuzz] [jobs]
#   --fuzz   additionally run a 2-minute randomized differential soak
#            (bench/soak_differential; see TESTING.md) with a fresh seed
#            range. Failing seeds land in build/soak-failures/.
set -euo pipefail

cd "$(dirname "$0")/.."

FUZZ=0
JOBS=""
for arg in "$@"; do
  case "$arg" in
    --fuzz) FUZZ=1 ;;
    *) JOBS="$arg" ;;
  esac
done
JOBS="${JOBS:-$(nproc)}"

echo "== tier-1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j "$JOBS")

echo "== TSan: build engine_test + runtime_test + stores_test + migration_test + tuner_test + replication_test + scaleout_test + graph_test =="
cmake -B build-tsan -S . -DESTOCADA_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" \
  --target engine_test runtime_test stores_test migration_test tuner_test \
  replication_test scaleout_test graph_test

echo "== TSan: run =="
(cd build-tsan/tests && ./engine_test && ./runtime_test && ./stores_test \
  && ./migration_test && ./tuner_test && ./replication_test \
  && ./scaleout_test && ./graph_test)

echo "== ASan+UBSan: build failure_test + runtime_test + stores_test =="
cmake -B build-asan -S . -DESTOCADA_SANITIZE=address >/dev/null
cmake --build build-asan -j "$JOBS" \
  --target failure_test runtime_test stores_test

echo "== ASan+UBSan: run =="
(cd build-asan/tests && ./failure_test && ./runtime_test && ./stores_test)

if [[ "$FUZZ" == "1" ]]; then
  echo "== fuzz: 2-minute differential soak =="
  ./build/bench/soak_differential --minutes=2 \
    --artifact-dir=build/soak-failures
fi

echo "== all checks passed =="
