/// Chaos benchmark of the online migration engine (src/migration): a live
/// re-fragmentation under concurrent traffic AND injected store faults.
///
/// Scenario: the §II cart-lookup query starts on an *unindexed* relational
/// fragment (every lookup scans). The migration engine rebuilds the carts
/// fragment as a key-value fragment on redis — backfill, delta catch-up
/// (an updater thread keeps inserting carts mid-flight), verification
/// against the staging truth, atomic cutover, retirement of the old
/// fragment — while:
///
///  * client threads hammer the serving path and validate every answer
///    against precomputed ground truth (acceptance: ZERO incorrect and
///    ZERO failed answers), and
///  * a FaultInjector fails >= 10% of reads on every store, including the
///    migration target (acceptance: the migration still completes,
///    absorbing the faults with its retry/pause envelope).
///
/// Afterwards the same workload is re-measured fault-free: the report
/// includes the post-cutover speedup (simulated cost, deterministic).
/// Emits BENCH_migration.json; exits non-zero when acceptance fails.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "migration/migration.h"
#include "pivot/parser.h"
#include "stores/fault.h"

namespace estocada::bench {
namespace {

using engine::Row;
using engine::Value;
using migration::MigrationManager;
using migration::MigrationOptions;
using migration::MigrationSpec;
using migration::MigrationStage;
using migration::MigrationStatus;
using pivot::Adornment;
using runtime::QueryServer;
using runtime::ServerOptions;
using stores::FaultInjector;
using stores::FaultPlan;

constexpr double kFaultRate = 0.10;
constexpr int kClients = 4;
constexpr int kProbeUsers = 16;

workload::MarketplaceConfig Config() {
  workload::MarketplaceConfig cfg;
  cfg.num_users = 400;
  cfg.num_products = 120;
  cfg.num_orders = 1500;
  cfg.num_visits = 3000;
  return cfg;
}

/// Deliberately mis-tuned starting layout: carts on an unindexed
/// relational fragment, so every cart lookup is a scan. The migration's
/// job is to fix exactly this.
void DefineInitialLayout(MarketplaceSystem* m) {
  BenchCheck(m->sys.DefineFragment("F_users(u, n, c) :- mk.users(u, n, c)",
                                   "postgres", {}, {0}),
             "users");
  BenchCheck(m->sys.DefineFragment(
                 "F_orders(o, u, p, t) :- mk.orders(o, u, p, t)", "postgres",
                 {}, {1, 2}),
             "orders");
  BenchCheck(m->sys.DefineFragment(
                 "F_prod(p, n, cat, pr) :- mk.products(p, n, cat, pr)",
                 "postgres", {}, {0, 2}),
             "products");
  BenchCheck(m->sys.DefineFragment("F_carts(u, c) :- mk.carts(u, c)",
                                   "postgres", {}, /*index_positions=*/{}),
             "carts (unindexed: the migration's reason to exist)");
  BenchCheck(m->sys.DefineFragment("F_visits(u, p, d) :- mk.visits(u, p, d)",
                                   "spark", {}, {0, 1}),
             "visits");
}

ServerOptions ChaosServerOptions() {
  ServerOptions options;
  options.fault_tolerant = true;
  options.retry.max_attempts = 10;
  options.retry.initial_backoff_micros = 20;
  options.retry.max_backoff_micros = 2'000;
  options.retry.deadline_micros = 0;
  options.health.failure_threshold = 3;
  options.health.open_cooldown_micros = 10'000;
  return options;
}

std::set<std::string> Canon(const std::vector<Row>& rows) {
  std::set<std::string> out;
  for (const Row& r : rows) out.insert(engine::RowToString(r));
  return out;
}

/// Mean simulated cost of the cart-lookup workload (deterministic: the
/// cost model, not the clock).
double CartLookupCost(Estocada* sys, int probes) {
  double total = 0;
  for (int u = 0; u < probes; ++u) {
    auto r = sys->Query(workload::MarketplaceQueries::CartByUser(),
                        {{"$uid", Value::Int(u)}});
    BenchCheck(r.status(), "cart lookup cost probe");
    total += r->simulated_cost();
  }
  return total / probes;
}

int Run() {
  std::unique_ptr<MarketplaceSystem> m = MarketplaceSystem::Create(Config());
  if (m == nullptr) {
    std::fprintf(stderr, "marketplace setup failed\n");
    return 1;
  }
  DefineInitialLayout(m.get());

  FaultInjector injector{/*seed=*/20260806};
  m->postgres.AttachFaultInjector(&injector, "postgres");
  m->redis.AttachFaultInjector(&injector, "redis");
  m->mongodb.AttachFaultInjector(&injector, "mongodb");
  m->spark.AttachFaultInjector(&injector, "spark");
  m->solr.AttachFaultInjector(&injector, "solr");

  BenchJson json("migration");
  json.Add("injected_fault_rate", kFaultRate);
  json.Add("clients", static_cast<uint64_t>(kClients));

  // Fault-free cost of the old layout (the "before" of the speedup).
  const double pre_cost = CartLookupCost(&m->sys, kProbeUsers);

  // Ground truth for the probe queries the chaos clients validate. The
  // mid-flight updater only inserts carts for uids >= 900000, so these
  // answers are stable throughout.
  struct Probe {
    std::string text;
    std::map<std::string, Value> params;
    std::set<std::string> truth;
  };
  std::vector<Probe> probes;
  for (int u = 0; u < kProbeUsers; ++u) {
    for (const char* text : {workload::MarketplaceQueries::CartByUser(),
                             workload::MarketplaceQueries::UserCity(),
                             workload::MarketplaceQueries::OrdersOfUser()}) {
      Probe p{text, {{"$uid", Value::Int(u)}}, {}};
      auto t = m->sys.EvaluateOverStaging(p.text, p.params);
      BenchCheck(t.status(), "ground truth");
      p.truth = Canon(*t);
      probes.push_back(std::move(p));
    }
  }

  QueryServer server(&m->sys, ChaosServerOptions());

  // >= 10% of reads on EVERY store fail, including the migration target.
  FaultPlan plan;
  plan.transient_fault_rate = kFaultRate;
  for (const char* s : {"postgres", "redis", "mongodb", "spark", "solr"}) {
    injector.SetPlan(s, plan);
  }

  // Small batches keep per-batch fault exposure low (each KV append reads
  // before writing); the deep retry budget absorbs the rest.
  MigrationOptions options;
  options.throttle.batch_rows = 8;
  options.throttle.max_rows_per_sec = 2000;  // ~0.2s of migration runway.
  options.max_target_retries = 100000;
  options.retry_backoff_micros = 50;

  MigrationSpec spec;
  auto view = pivot::ParseQuery("F_carts_kv(u, c) :- mk.carts(u, c)");
  BenchCheck(view.status(), "target view");
  spec.view.query = *view;
  spec.view.adornments = {Adornment::kInput, Adornment::kFree};
  spec.store_name = "redis";
  spec.retire = {"F_carts"};

  std::printf("== live re-fragmentation under %d%% faults + %d clients ==\n",
              static_cast<int>(kFaultRate * 100), kClients);
  MigrationManager manager(&server);
  auto id = manager.Start(spec, options);
  BenchCheck(id.status(), "start migration");

  std::atomic<bool> migration_done{false};
  std::atomic<uint64_t> answered{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> incorrect{0};

  // Client threads: validate every answer until the migration terminates
  // (and at least one full probe pass). The short think time between
  // queries matters: a zero-gap closed loop holds the server's shared
  // lock back-to-back, and the platform rwlock lets readers starve the
  // migration's exclusive-lock batches indefinitely.
  const auto client_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      size_t i = static_cast<size_t>(t);
      do {
        const Probe& p = probes[i % probes.size()];
        auto r = server.Query(p.text, p.params);
        ++answered;
        if (!r.ok()) {
          ++failed;
        } else if (Canon(r->rows) != p.truth) {
          ++incorrect;
        }
        i += kClients;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      } while ((!migration_done.load(std::memory_order_acquire) ||
                i < probes.size()) &&
               std::chrono::steady_clock::now() < client_deadline);
    });
  }
  // Updater thread: carts for fresh uids land mid-migration, exercising
  // delta capture + catch-up without disturbing the probe truths.
  std::thread updater([&] {
    int64_t uid = 900000;
    while (!migration_done.load(std::memory_order_acquire)) {
      Status st = server.InsertRow(
          "mk.carts", {Value::Int(uid), Value::List({Value::Int(uid % 7)})});
      if (!st.ok()) {
        std::fprintf(stderr, "updater insert failed: %s\n",
                     st.ToString().c_str());
        std::abort();
      }
      ++uid;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // Watchdog: if the migration wedges, abort it so the bench reports a
  // rejection instead of hanging.
  while (std::chrono::steady_clock::now() < client_deadline) {
    auto status = manager.GetStatus(*id);
    BenchCheck(status.status(), "status poll");
    if (status->stage == MigrationStage::kRetired ||
        status->stage == MigrationStage::kAborted) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  (void)manager.Abort(*id);  // No-op when already terminal.
  auto final_status = manager.Wait(*id);
  migration_done.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();
  updater.join();
  BenchCheck(final_status.status(), "wait");
  const MigrationStatus& ms = *final_status;

  // Quiesce the chaos and measure the new layout.
  for (const char* s : {"postgres", "redis", "mongodb", "spark", "solr"}) {
    injector.SetPlan(s, FaultPlan{});
  }
  const double post_cost = CartLookupCost(&m->sys, kProbeUsers);
  const double speedup = post_cost > 0 ? pre_cost / post_cost : 0;

  std::printf("migration: %s\n", ms.ToString().c_str());
  std::printf("traffic:   %llu answered, %llu failed, %llu incorrect\n",
              static_cast<unsigned long long>(answered.load()),
              static_cast<unsigned long long>(failed.load()),
              static_cast<unsigned long long>(incorrect.load()));
  std::printf("cart lookup cost: %.1f -> %.1f (speedup %.1fx)\n", pre_cost,
              post_cost, speedup);

  json.Add("stage", std::string(migration::StageName(ms.stage)));
  json.Add("chaos_answered", answered.load());
  json.Add("chaos_failed", failed.load());
  json.Add("chaos_incorrect", incorrect.load());
  json.Add("rows_copied", ms.metrics.rows_copied);
  json.Add("batches", ms.metrics.batches);
  json.Add("throttle_stalls", ms.metrics.throttle_stalls);
  json.Add("deltas_captured", ms.metrics.deltas_captured);
  json.Add("deltas_replayed", ms.metrics.deltas_replayed);
  json.Add("rebuilds", ms.metrics.rebuilds);
  json.Add("target_retries", ms.metrics.target_retries);
  json.Add("breaker_pauses", ms.metrics.breaker_pauses);
  json.Add("cutover_epoch", ms.metrics.cutover_epoch);
  json.Add("pre_cutover_cart_cost", pre_cost);
  json.Add("post_cutover_cart_cost", post_cost);
  json.Add("post_cutover_speedup", speedup);
  json.Write();

  // ------------------------------------------------------- acceptance --
  bool ok = true;
  if (ms.stage != MigrationStage::kRetired) {
    std::fprintf(stderr, "FAIL: migration did not retire: %s\n",
                 ms.ToString().c_str());
    ok = false;
  }
  if (failed.load() != 0 || incorrect.load() != 0) {
    std::fprintf(stderr,
                 "FAIL: traffic saw %llu failed / %llu incorrect answers\n",
                 static_cast<unsigned long long>(failed.load()),
                 static_cast<unsigned long long>(incorrect.load()));
    ok = false;
  }
  if (speedup <= 1.0) {
    std::fprintf(stderr, "FAIL: no post-cutover speedup (%.2fx)\n", speedup);
    ok = false;
  }
  Status verify = m->sys.VerifyFragment("F_carts_kv");
  if (!verify.ok()) {
    std::fprintf(stderr, "FAIL: post-cutover verification: %s\n",
                 verify.ToString().c_str());
    ok = false;
  }
  std::printf("%s\n", ok ? "ACCEPTED: zero failed, zero incorrect, "
                           "post-cutover speedup achieved"
                         : "REJECTED");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace estocada::bench

int main() { return estocada::bench::Run(); }
