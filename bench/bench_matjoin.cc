/// Experiment E2 (paper §II): materializing the result of past-purchases
/// ⋈ browsing-history (⋈ catalog) as a nested relation in the parallel
/// store, indexed by (user ID, product category), gains an extra ≈40% on
/// the workload once the personalized item search became the bottleneck.
///
/// Reproduced rows: per-query cost of the personalized search before and
/// after materialization, and the whole-workload gain.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace estocada::bench {
namespace {

using pivot::Adornment;

workload::MarketplaceConfig Config() {
  workload::MarketplaceConfig cfg;
  cfg.num_users = 800;
  cfg.num_products = 200;
  cfg.num_orders = 3000;
  cfg.num_visits = 8000;
  return cfg;
}

/// Release-2 placement (the E1 outcome): the starting point here.
void DefineRelease2(MarketplaceSystem* m) {
  BenchCheck(m->sys.DefineFragment("F_users(u, n, c) :- mk.users(u, n, c)",
                                   "postgres", {}, {0}),
             "F_users");
  BenchCheck(m->sys.DefineFragment(
                 "F_orders(o, u, p, t) :- mk.orders(o, u, p, t)", "postgres",
                 {}, {1, 2}),
             "F_orders");
  BenchCheck(m->sys.DefineFragment(
                 "F_prod(p, n, cat, pr) :- mk.products(p, n, cat, pr)",
                 "postgres", {}, {0, 2}),
             "F_prod");
  BenchCheck(m->sys.DefineFragment("F_carts(u, c) :- mk.carts(u, c)", "redis",
                                   {Adornment::kInput, Adornment::kFree}),
             "F_carts");
  BenchCheck(m->sys.DefineFragment(
                 "F_profile(u, n, c) :- mk.users(u, n, c)", "redis",
                 {Adornment::kInput, Adornment::kFree, Adornment::kFree}),
             "F_profile");
  BenchCheck(m->sys.DefineFragment("F_visits(u, p, d) :- mk.visits(u, p, d)",
                                   "spark"),
             "F_visits");
}

void Materialize(MarketplaceSystem* m) {
  BenchCheck(m->sys.DefineFragment(
                 "F_pjoin(u, cat, p, n) :- mk.orders(o, u, p, t), "
                 "mk.visits(u, p, d), mk.products(p, n, cat, pr)",
                 "spark",
                 {Adornment::kInput, Adornment::kInput, Adornment::kFree,
                  Adornment::kFree}),
             "F_pjoin");
}

constexpr int kWorkloadQueries = 200;

void BM_PersonalizedSearch(benchmark::State& state) {
  auto m = MarketplaceSystem::Create(Config());
  DefineRelease2(m.get());
  if (state.range(0) == 1) Materialize(m.get());
  Rng rng(3);
  double cost = 0;
  int64_t n = 0;
  for (auto _ : state) {
    auto r = m->sys.Query(
        workload::MarketplaceQueries::PersonalizedSearch(),
        {{"$uid", engine::Value::Int(static_cast<int64_t>(
              rng.Zipf(Config().num_users, 0.8)))},
         {"$cat", engine::Value::Str(workload::MarketplaceData::Category(
              rng.Uniform(Config().num_categories),
              Config().num_categories))}});
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    cost += r->simulated_cost();
    ++n;
  }
  state.counters["sim_cost_per_query"] =
      n ? cost / static_cast<double>(n) : 0;
}
BENCHMARK(BM_PersonalizedSearch)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_Workload(benchmark::State& state) {
  auto m = MarketplaceSystem::Create(Config());
  DefineRelease2(m.get());
  if (state.range(0) == 1) Materialize(m.get());
  double cost = 0;
  for (auto _ : state) {
    cost = RunWorkloadCost(&m->sys, m->data, ScenarioMix(),
                           kWorkloadQueries, 1);
    benchmark::DoNotOptimize(cost);
  }
  state.counters["sim_cost"] = cost;
}
BENCHMARK(BM_Workload)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Ablation: the same materialized join *without* its composite index —
/// quantifies how much of the gain the (uid, category) index contributes,
/// a design choice DESIGN.md calls out.
void BM_WorkloadMaterializedNoIndex(benchmark::State& state) {
  auto m = MarketplaceSystem::Create(Config());
  DefineRelease2(m.get());
  BenchCheck(m->sys.DefineFragment(
                 "F_pjoin(u, cat, p, n) :- mk.orders(o, u, p, t), "
                 "mk.visits(u, p, d), mk.products(p, n, cat, pr)",
                 "spark"),
             "F_pjoin-noindex");
  double cost = 0;
  for (auto _ : state) {
    cost = RunWorkloadCost(&m->sys, m->data, ScenarioMix(),
                           kWorkloadQueries, 1);
    benchmark::DoNotOptimize(cost);
  }
  state.counters["sim_cost"] = cost;
}
BENCHMARK(BM_WorkloadMaterializedNoIndex)->Unit(benchmark::kMillisecond);

void PrintSummary() {
  auto base = MarketplaceSystem::Create(Config());
  DefineRelease2(base.get());
  double c_base = RunWorkloadCost(&base->sys, base->data, ScenarioMix(),
                                  kWorkloadQueries, 1);
  auto mat = MarketplaceSystem::Create(Config());
  DefineRelease2(mat.get());
  Materialize(mat.get());
  double c_mat = RunWorkloadCost(&mat->sys, mat->data, ScenarioMix(),
                                 kWorkloadQueries, 1);
  std::printf("\n== E2: materialized purchases x browsing-history join "
              "(paper Sec. II, expected ~40%% extra gain) ==\n");
  std::printf("%-42s %14s\n", "configuration", "workload cost");
  std::printf("%-42s %14.0f\n", "release 2 (joins at query time)", c_base);
  std::printf("%-42s %14.0f\n", "release 3 (F_pjoin in spark, indexed)",
              c_mat);
  std::printf("extra gain: %.1f%%   (paper: ~40%%)\n",
              100.0 * (c_base - c_mat) / c_base);
}

}  // namespace
}  // namespace estocada::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  estocada::bench::PrintSummary();
  return 0;
}
