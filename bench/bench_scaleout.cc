/// Scale-out benchmark: marketplace throughput as the hot fragments are
/// hash-partitioned across 1 -> 8 relational instances.
///
/// The store stand-ins execute in-process, so raw wall time would only
/// measure row copying. To make the scale-out economics observable, every
/// instance is given a deterministic per-read latency *proportional to
/// the rows it hosts* (FaultInjector latency spikes at rate 1.0): an
/// instance holding the full users+orders extent answers any call in
/// rows x kMicrosPerHostedRow, an instance holding 1/8th of it answers
/// 8x faster. That
/// is the model the paper's scale-out story assumes — store response
/// time tracks the data a scan touches — and under it the scatter-gather
/// fan-out (one parallel fetch per backing instance) turns N-way
/// partitioning into an ~N-fold latency win for every shape: full scans
/// and joins scatter over N cheap shards in parallel, key-bound lookups
/// prune to one shard that is N-fold smaller.
///
/// For N in {1, 2, 4, 8} the bench builds a fresh deployment (eight
/// relational instances "s0".."s7", the hot F_users / F_orders fragments
/// split N-ways; N=1 is the plain unpartitioned layout), replays the
/// same deterministic query batch through a QueryServer, and validates
/// every answer against the staging ground truth. Emits
/// BENCH_scaleout.json; scripts/bench_compare.py gates the per-scale
/// batch latencies (25% wall-time threshold) and the zero-valued
/// correctness counters against bench/baselines/scaleout.json.
///
/// Acceptance (hard-fail, not just a statistic): 0 wrong answers, 0
/// failed queries, 0 staging fallbacks, and >= 5x throughput at 8
/// partitions vs 1.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_common.h"
#include "runtime/query_server.h"
#include "stores/fault.h"

namespace estocada::bench {
namespace {

using engine::Row;
using engine::Value;
using runtime::QueryServer;
using runtime::ServerOptions;
using stores::FaultInjector;
using stores::FaultPlan;

constexpr size_t kInstances = 8;
/// Simulated store response time per hosted row (see file comment). High
/// enough that store time dominates the engine's fixed per-query work
/// (~3ms of plan-cache lookup + evaluation): the full extent costs 120ms
/// per call on one instance, 15ms per shard at 8 partitions.
constexpr double kMicrosPerHostedRow = 60.0;
constexpr int kWarmupRounds = 1;
constexpr int kTimedRounds = 6;
constexpr double kRequiredSpeedup = 5.0;

constexpr char kUsersScan[] = "q(u, n, c) :- mk.users(u, n, c)";
constexpr char kUsersByKey[] = "q(n, c) :- mk.users($u, n, c)";
constexpr char kOrdersScan[] = "q(o, u, p, t) :- mk.orders(o, u, p, t)";
constexpr char kOrdersByUser[] = "q(o, t) :- mk.orders(o, $u, p, t)";
constexpr char kJoin[] =
    "q(n, o, t) :- mk.users(u, n, c), mk.orders(o, u, p, t)";

workload::MarketplaceConfig Config() {
  workload::MarketplaceConfig cfg;
  cfg.seed = 11;
  cfg.num_users = 400;
  cfg.num_products = 100;
  cfg.num_orders = 1600;
  cfg.num_visits = 400;
  return cfg;
}

std::set<std::string> Canon(const std::vector<Row>& rows) {
  std::set<std::string> out;
  for (const Row& r : rows) out.insert(engine::RowToString(r));
  return out;
}

/// One deployment at a given partition count: eight relational instances
/// behind one injector, the hot fragments split `partitions`-ways.
struct Deployment {
  workload::MarketplaceData data;
  FaultInjector injector{/*seed=*/41};
  stores::RelationalStore stores[kInstances];
  Estocada sys;
  std::unique_ptr<QueryServer> server;

  static std::unique_ptr<Deployment> Create(size_t partitions) {
    auto out = std::make_unique<Deployment>();
    auto data = workload::GenerateMarketplace(Config());
    if (!data.ok()) return nullptr;
    out->data = std::move(*data);
    BenchCheck(out->sys.RegisterSchema(out->data.schema), "schema");
    for (size_t i = 0; i < kInstances; ++i) {
      std::string name = "s" + std::to_string(i);
      out->stores[i].AttachFaultInjector(&out->injector, name);
      BenchCheck(out->sys.RegisterStore({name, catalog::StoreKind::kRelational,
                                         &out->stores[i], nullptr, nullptr,
                                         nullptr, nullptr}),
                 "store");
    }
    BenchCheck(out->sys.LoadStaging(out->data.staging), "staging");
    out->server = std::make_unique<QueryServer>(&out->sys, ServerOptions{});
    if (partitions == 1) {
      BenchCheck(out->server->DefineFragment(
                     "F_users(u, n, c) :- mk.users(u, n, c)", "s0"),
                 "users");
      BenchCheck(out->server->DefineFragment(
                     "F_orders(o, u, p, t) :- mk.orders(o, u, p, t)", "s0"),
                 "orders");
    } else {
      std::vector<std::vector<std::string>> shard_stores;
      for (size_t i = 0; i < partitions; ++i) {
        shard_stores.push_back({"s" + std::to_string(i)});
      }
      BenchCheck(out->server->DefinePartitionedFragment(
                     "F_users(u, n, c) :- mk.users(u, n, c)",
                     catalog::PartitionSpec::Kind::kHash, 0, shard_stores),
                 "users");
      BenchCheck(out->server->DefinePartitionedFragment(
                     "F_orders(o, u, p, t) :- mk.orders(o, u, p, t)",
                     catalog::PartitionSpec::Kind::kHash, 0, shard_stores),
                 "orders");
    }
    // Response time tracks hosted volume: the full extent on one
    // instance vs 1/N of it per shard.
    const auto cfg = Config();
    const double hosted =
        static_cast<double>(cfg.num_users + cfg.num_orders) /
        static_cast<double>(partitions);
    FaultPlan plan;
    plan.latency_spike_rate = 1.0;
    plan.latency_spike_micros =
        static_cast<uint64_t>(hosted * kMicrosPerHostedRow);
    for (size_t i = 0; i < kInstances; ++i) {
      out->injector.SetPlan("s" + std::to_string(i), plan);
    }
    return out;
  }
};

struct BatchQuery {
  std::string text;
  std::map<std::string, Value> params;
  std::set<std::string> truth;
};

/// The deterministic per-round batch: full scans, key-bound lookups
/// (prune to one shard), a bound non-key scan (must scatter), and the
/// users x orders join (two scatter sources under one hash join). Truths
/// come from the injector-free staging area.
std::vector<BatchQuery> BuildBatch(Estocada* sys) {
  auto uid_rows = sys->EvaluateOverStaging(kUsersScan);
  BenchCheck(uid_rows.status(), "uid draw");
  std::vector<int64_t> uids;
  for (const Row& r : *uid_rows) uids.push_back(r[0].int_value());
  std::vector<BatchQuery> batch;
  auto add = [&](const char* text, std::map<std::string, Value> params) {
    BatchQuery q;
    q.text = text;
    q.params = std::move(params);
    auto truth = sys->EvaluateOverStaging(q.text, q.params);
    BenchCheck(truth.status(), "truth");
    q.truth = Canon(*truth);
    batch.push_back(std::move(q));
  };
  add(kUsersScan, {});
  add(kOrdersScan, {});
  for (int i = 0; i < 4; ++i) {
    int64_t uid = uids[(i * uids.size()) / 4];
    add(kUsersByKey, {{"$u", Value::Int(uid)}});
  }
  for (int i = 0; i < 2; ++i) {
    int64_t uid = uids[(i * uids.size()) / 2 + 1];
    add(kOrdersByUser, {{"$u", Value::Int(uid)}});
  }
  add(kJoin, {});
  return batch;
}

struct ScaleResult {
  double batch_us = 0.0;       ///< Timed wall time, all rounds.
  double per_query_us = 0.0;   ///< batch_us / executed queries.
  double qps = 0.0;
  uint64_t executed = 0;
  uint64_t wrong = 0;
  uint64_t failed = 0;
  uint64_t staging_fallbacks = 0;
  bool scatter_seen = false;
};

ScaleResult RunScale(size_t partitions) {
  std::unique_ptr<Deployment> d = Deployment::Create(partitions);
  if (d == nullptr) {
    std::fprintf(stderr, "deployment setup failed (%zu partitions)\n",
                 partitions);
    std::abort();
  }
  std::vector<BatchQuery> batch = BuildBatch(&d->sys);
  ScaleResult res;
  for (int round = 0; round < kWarmupRounds; ++round) {
    for (const BatchQuery& q : batch) {
      auto r = d->server->Query(q.text, q.params);
      if (r.ok() && r->plan_text.find("scatter") != std::string::npos) {
        res.scatter_seen = true;
      }
    }
  }
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::set<std::string>> answers;
  answers.reserve(batch.size() * kTimedRounds);
  for (int round = 0; round < kTimedRounds; ++round) {
    for (const BatchQuery& q : batch) {
      auto r = d->server->Query(q.text, q.params);
      ++res.executed;
      if (!r.ok()) {
        ++res.failed;
        answers.emplace_back();
        continue;
      }
      answers.push_back(Canon(r->rows));
    }
  }
  auto t1 = std::chrono::steady_clock::now();
  // Validate outside the timed loop (the canon cost is test scaffolding,
  // not serving work).
  size_t a = 0;
  for (int round = 0; round < kTimedRounds; ++round) {
    for (const BatchQuery& q : batch) {
      const std::set<std::string>& got = answers[a++];
      if (!got.empty() || q.truth.empty()) {
        if (got != q.truth) ++res.wrong;
      }
    }
  }
  res.batch_us = static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count());
  res.per_query_us = res.batch_us / static_cast<double>(res.executed);
  res.qps = 1e6 * static_cast<double>(res.executed) / res.batch_us;
  res.staging_fallbacks = d->server->metrics().degraded;
  auto c = d->injector.counters();
  auto m = d->server->metrics();
  std::printf("    [diag] %zu partitions: %llu reads, %llu spikes, "
              "%llu hits/%llu misses/%llu rewrites over %llu queries\n",
              partitions, (unsigned long long)c.reads,
              (unsigned long long)c.latency_spikes,
              (unsigned long long)m.cache_hits,
              (unsigned long long)m.cache_misses,
              (unsigned long long)m.rewrites,
              (unsigned long long)(res.executed));
  return res;
}

int Run() {
  BenchJson json("scaleout");
  std::printf("== scale-out: marketplace batch at 1/2/4/8 partitions ==\n");
  std::map<size_t, ScaleResult> results;
  for (size_t partitions : {1, 2, 4, 8}) {
    ScaleResult r = RunScale(partitions);
    results[partitions] = r;
    std::printf("  %zu partition(s): %6.0f us/query, %7.1f q/s "
                "(%llu queries, %llu wrong, %llu failed, %llu staging, "
                "scatter=%d)\n",
                partitions, r.per_query_us, r.qps,
                static_cast<unsigned long long>(r.executed),
                static_cast<unsigned long long>(r.wrong),
                static_cast<unsigned long long>(r.failed),
                static_cast<unsigned long long>(r.staging_fallbacks),
                r.scatter_seen ? 1 : 0);
    std::string prefix = "p" + std::to_string(partitions);
    json.Add(prefix + "_query_mean_us", r.per_query_us);
  }

  uint64_t wrong = 0;
  uint64_t failed = 0;
  uint64_t staging = 0;
  for (const auto& [n, r] : results) {
    wrong += r.wrong;
    failed += r.failed;
    staging += r.staging_fallbacks;
  }
  const double speedup_8 = results[1].per_query_us / results[8].per_query_us;
  const double speedup_4 = results[1].per_query_us / results[4].per_query_us;
  const double speedup_2 = results[1].per_query_us / results[2].per_query_us;
  std::printf("\nspeedup vs 1 partition: 2p=%.2fx, 4p=%.2fx, 8p=%.2fx "
              "(acceptance: 8p >= %.1fx)\n",
              speedup_2, speedup_4, speedup_8, kRequiredSpeedup);

  json.Add("wrong_answers", wrong);
  json.Add("failed_queries", failed);
  json.Add("staging_fallbacks", staging);
  // The scatter plan must actually be in play at every partitioned scale
  // (a silently-unpartitioned layout would "scale" by measuring nothing).
  uint64_t scatter_missing = 0;
  for (const auto& [n, r] : results) {
    if (n > 1 && !r.scatter_seen) ++scatter_missing;
  }
  json.Add("scatter_missing", scatter_missing);
  // Gated as a zero-valued counter: any shortfall against the 5x bar
  // shows up as an increase and fails bench_compare (the speedup itself
  // is emitted as an ungated string — it may only improve).
  const uint64_t shortfall =
      speedup_8 >= kRequiredSpeedup
          ? 0
          : static_cast<uint64_t>((kRequiredSpeedup - speedup_8) * 100.0) + 1;
  json.Add("speedup_shortfall_x100", shortfall);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", speedup_8);
  json.Add("speedup_8_vs_1", std::string(buf));
  json.Write();

  const bool pass = wrong == 0 && failed == 0 && staging == 0 &&
                    scatter_missing == 0 && speedup_8 >= kRequiredSpeedup;
  std::printf("acceptance: 0 wrong / 0 failed / 0 staging fallbacks, "
              "scatter in play, >= %.1fx at 8 partitions -> %s\n",
              kRequiredSpeedup, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace estocada::bench

int main() { return estocada::bench::Run(); }
