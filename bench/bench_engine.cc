/// Engine micro-benchmark behind the perf-gate CI job: warm p50/p95 per
/// operator class over the batch execution path (Scan, Filter, Project,
/// HashJoin, BindJoin), plus the end-to-end serving warm p50 over the
/// tuned hybrid marketplace placement (the number the batch-engine
/// refactor is accountable for). Writes BENCH_engine.json; CI compares
/// it against bench/baselines/engine.json via scripts/bench_compare.py
/// alongside the pacb and kv_migration gates.
///
/// Each operator class is measured end-to-end — build the tree, Open,
/// drain through Collect (the batch interface) — because that is the
/// unit the translator deploys: per-batch savings that get eaten by
/// setup cost should not count.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/strings.h"
#include "engine/operator.h"
#include "runtime/query_server.h"

namespace estocada::bench {
namespace {

using ::estocada::StrCat;
using engine::Expr;
using engine::ExprPtr;
using engine::Operator;
using engine::OperatorPtr;
using engine::Row;
using engine::Value;
using pivot::Adornment;
using runtime::QueryServer;

constexpr size_t kRows = 20000;
constexpr int kWarmup = 3;
constexpr int kReps = 31;

/// Deterministic 4-column table: (id, group, payload, flag).
std::vector<Row> MakeRows(size_t n) {
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back({Value::Int(static_cast<int64_t>(i)),
                    Value::Int(static_cast<int64_t>(i % 100)),
                    Value::Int(static_cast<int64_t>(i * 7 % 1000)),
                    Value::Int(static_cast<int64_t>(i % 2))});
  }
  return rows;
}

OperatorPtr Scan(const std::vector<Row>& rows) {
  return std::make_unique<engine::RowsOperator>(
      std::vector<std::string>{"id", "grp", "pay", "flag"}, rows, "bench");
}

void DrainOrDie(Operator* op) {
  auto rows = engine::Collect(op);
  if (!rows.ok()) {
    std::fprintf(stderr, "engine bench drain failed: %s\n",
                 rows.status().ToString().c_str());
    std::abort();
  }
  benchmark::DoNotOptimize(rows->size());
}

/// Times `make_tree` + Collect over kWarmup + kReps runs and records
/// "<name>_p50_us"/"<name>_p95_us" from the measured reps.
template <typename MakeTree>
void MeasureOperator(BenchJson* json, const char* name, MakeTree make_tree) {
  std::vector<double> samples;
  samples.reserve(kReps);
  for (int rep = 0; rep < kWarmup + kReps; ++rep) {
    OperatorPtr tree = make_tree();
    auto start = std::chrono::steady_clock::now();
    DrainOrDie(tree.get());
    double us = std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    if (rep >= kWarmup) samples.push_back(us);
  }
  std::sort(samples.begin(), samples.end());
  double p50 = samples[samples.size() / 2];
  double p95 = samples[samples.size() * 95 / 100];
  std::printf("%-12s p50=%9.1fus p95=%9.1fus\n", name, p50, p95);
  json->Add(StrCat(name, "_p50_us"), p50);
  json->Add(StrCat(name, "_p95_us"), p95);
}

void MeasureOperatorClasses(BenchJson* json) {
  const std::vector<Row> rows = MakeRows(kRows);
  const std::vector<Row> dims = MakeRows(100);

  std::printf("== operator classes (%zu rows, %d reps) ==\n", kRows, kReps);
  MeasureOperator(json, "scan", [&] { return Scan(rows); });
  // ~1% selectivity comparison the vectorized FilterBatch fast path hits.
  MeasureOperator(json, "filter", [&] {
    return std::make_unique<engine::FilterOperator>(
        Scan(rows), Expr::Binary(Expr::Op::kLt, Expr::Column(1),
                                 Expr::Const(Value::Int(1))));
  });
  MeasureOperator(json, "project", [&] {
    std::vector<ExprPtr> exprs;
    exprs.push_back(Expr::Column(0));
    exprs.push_back(Expr::Column(2));
    return std::make_unique<engine::ProjectOperator>(
        Scan(rows), std::vector<std::string>{"id", "pay"}, std::move(exprs));
  });
  // 100-row build side joined into the 20k-row probe on the group key.
  MeasureOperator(json, "hash_join", [&] {
    return std::make_unique<engine::HashJoinOperator>(
        Scan(dims), Scan(rows),
        std::vector<std::pair<size_t, size_t>>{{1, 1}});
  });
  // BindJoin over the 100 distinct group keys: the memoized batch path
  // fetches each binding once and replays the cache for the rest.
  MeasureOperator(json, "bind_join", [&] {
    engine::BindJoinOperator::Fetch fetch =
        [](const Row& binding) -> Result<std::vector<Row>> {
      return std::vector<Row>{{binding[0], Value::Str("payload")}};
    };
    return std::make_unique<engine::BindJoinOperator>(
        Scan(rows), std::vector<size_t>{1},
        std::vector<std::string>{"k", "v"}, std::move(fetch), "kv");
  });
}

// ------------------------------------------------ end-to-end serving --

workload::MarketplaceConfig Config() {
  workload::MarketplaceConfig cfg;
  cfg.num_users = 800;
  cfg.num_products = 200;
  cfg.num_orders = 3000;
  cfg.num_visits = 8000;
  return cfg;
}

/// The tuned hybrid placement of bench_serving (kept in lockstep so the
/// serving number here tracks the same deployment the serving bench
/// reports on).
void DefineHybrid(MarketplaceSystem* m) {
  BenchCheck(m->sys.DefineFragment("F_users(u, n, c) :- mk.users(u, n, c)",
                                   "postgres", {}, {0}),
             "users");
  BenchCheck(m->sys.DefineFragment(
                 "F_orders(o, u, p, t) :- mk.orders(o, u, p, t)", "postgres",
                 {}, {1, 2}),
             "orders");
  BenchCheck(m->sys.DefineFragment(
                 "F_prod(p, n, cat, pr) :- mk.products(p, n, cat, pr)",
                 "mongodb", {}, {0, 2}),
             "products");
  BenchCheck(m->sys.DefineFragment("F_carts(u, c) :- mk.carts(u, c)", "redis",
                                   {Adornment::kInput, Adornment::kFree}),
             "carts");
  BenchCheck(m->sys.DefineFragment("F_profile(u, n, c) :- mk.users(u, n, c)",
                                   "redis",
                                   {Adornment::kInput, Adornment::kFree,
                                    Adornment::kFree}),
             "profile");
  BenchCheck(m->sys.DefineFragment("F_visits(u, p, d) :- mk.visits(u, p, d)",
                                   "spark"),
             "visits");
  BenchCheck(m->sys.DefineFragment("F_terms(p, w) :- mk.prodterms(p, w)",
                                   "solr",
                                   {Adornment::kFree, Adornment::kInput}),
             "terms");
  BenchCheck(m->sys.DefineFragment(
                 "F_pjoin(u, cat, p, n) :- mk.orders(o, u, p, t), "
                 "mk.visits(u, p, d), mk.products(p, n, cat, pr)",
                 "spark",
                 {Adornment::kInput, Adornment::kInput, Adornment::kFree,
                  Adornment::kFree}),
             "pjoin");
}

/// Repeated personalized_search (the paper's §II bottleneck query) with a
/// warm plan cache: p50 of the server's latency histogram is the
/// end-to-end number the batch engine is gated on.
void MeasureServingWarm(BenchJson* json) {
  auto m = MarketplaceSystem::Create(Config());
  if (m == nullptr) {
    std::fprintf(stderr, "marketplace setup failed\n");
    std::abort();
  }
  DefineHybrid(m.get());
  QueryServer server(&m->sys);

  const std::string text = workload::MarketplaceQueries::PersonalizedSearch();
  const std::map<std::string, engine::Value> params = {
      {"$uid", engine::Value::Int(1)}, {"$cat", engine::Value::Str("cat0")}};
  constexpr int kQueries = 400;
  // Warm the plan cache, then measure.
  for (int i = 0; i < 10; ++i) {
    auto r = server.Query(text, params);
    BenchCheck(r.ok() ? Status::OK() : r.status(), "serving warmup");
  }
  server.ResetMetrics();
  for (int i = 0; i < kQueries; ++i) {
    auto r = server.Query(text, params);
    BenchCheck(r.ok() ? Status::OK() : r.status(), "serving query");
  }
  auto metrics = server.metrics();
  double p50 = std::max(metrics.p50_micros(), 0.001);
  double p95 = std::max(metrics.p95_micros(), 0.001);
  std::printf("\n== end-to-end serving (personalized_search x%d, warm) ==\n",
              kQueries);
  std::printf("%-12s p50=%9.1fus p95=%9.1fus\n", "serving_warm", p50, p95);
  json->Add("serving_warm_p50_us", p50);
  json->Add("serving_warm_p95_us", p95);
}

void RunAll() {
  BenchJson json("engine");
  json.Add("rows", static_cast<uint64_t>(kRows));
  json.Add("reps", static_cast<uint64_t>(kReps));
  MeasureOperatorClasses(&json);
  MeasureServingWarm(&json);
  json.Write();
}

}  // namespace
}  // namespace estocada::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  estocada::bench::RunAll();
  return 0;
}
