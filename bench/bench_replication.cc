/// Chaos benchmark: K-way fragment replication as availability. The hot
/// marketplace fragments (users, orders) are replicated K=3 across three
/// relational instances ("postgres"/"pg2"/"pg3"); the rest of the layout
/// is the standard single-placement hybrid. Phases:
///
///  * healthy baseline — closed-loop workload mix, no faults;
///  * sequential kill — each replica instance hard-killed in turn, then a
///    double kill leaving one survivor: every answer is validated against
///    the staging ground truth, and staging fallback is *forbidden* while
///    at least one replica is healthy (that is the acceptance bar, not
///    just a statistic);
///  * triple kill — all three instances down: answers must still be
///    correct, now via the degradation ladder's staging bottom;
///  * self-healing — live writes race an outage, the stale replica is
///    rebuilt by repairer ticks under traffic, and the healed deployment
///    must converge to fresh, digest-identical, verified replicas;
///  * unreplicated control — the same layout without replicas shows what
///    the outage costs when only rewriting multiplicity is left.
///
/// Emits BENCH_replication.json; scripts/bench_compare.py gates the
/// zero-valued robustness counters against bench/baselines/replication.json.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/strings.h"
#include "replication/repairer.h"
#include "runtime/query_server.h"
#include "stores/fault.h"

namespace estocada::bench {
namespace {

using ::estocada::StrCat;
using engine::Row;
using engine::Value;
using pivot::Adornment;
using replication::ReplicaRepairer;
using runtime::MetricsSnapshot;
using runtime::QueryServer;
using runtime::ServerOptions;
using stores::FaultInjector;

constexpr char kUsersQuery[] = "q(u, n, c) :- mk.users(u, n, c)";

workload::MarketplaceConfig Config() {
  workload::MarketplaceConfig cfg;
  cfg.num_users = 300;
  cfg.num_products = 100;
  cfg.num_orders = 1200;
  cfg.num_visits = 3000;
  return cfg;
}

/// The single-placement part of the layout, shared by the replicated
/// deployment and the unreplicated control.
void DefineUnreplicatedTail(Estocada* sys) {
  BenchCheck(sys->DefineFragment("F_carts(u, c) :- mk.carts(u, c)", "redis",
                                 {Adornment::kInput, Adornment::kFree}),
             "carts");
  BenchCheck(sys->DefineFragment(
                 "F_prod(p, n, cat, pr) :- mk.products(p, n, cat, pr)",
                 "mongodb", {}, {0, 2}),
             "products");
  BenchCheck(sys->DefineFragment("F_visits(u, p, d) :- mk.visits(u, p, d)",
                                 "spark", {}, {0, 1}),
             "visits");
  BenchCheck(sys->DefineFragment("F_terms(p, w) :- mk.prodterms(p, w)",
                                 "solr",
                                 {Adornment::kFree, Adornment::kInput}),
             "terms");
}

/// Marketplace deployment with two extra relational instances and the hot
/// fragments replicated K=3 across the relational trio.
struct ReplicatedFixture {
  std::unique_ptr<MarketplaceSystem> m;
  stores::RelationalStore pg2;
  stores::RelationalStore pg3;
  FaultInjector injector{/*seed=*/20260808};

  static std::unique_ptr<ReplicatedFixture> Create() {
    auto f = std::make_unique<ReplicatedFixture>();
    f->m = MarketplaceSystem::Create(Config());
    if (f->m == nullptr) {
      std::fprintf(stderr, "marketplace setup failed\n");
      std::abort();
    }
    BenchCheck(f->m->sys.RegisterStore({"pg2",
                                        catalog::StoreKind::kRelational,
                                        &f->pg2, nullptr, nullptr, nullptr,
                                        nullptr}),
               "pg2");
    BenchCheck(f->m->sys.RegisterStore({"pg3",
                                        catalog::StoreKind::kRelational,
                                        &f->pg3, nullptr, nullptr, nullptr,
                                        nullptr}),
               "pg3");
    BenchCheck(f->m->sys.DefineReplicatedFragment(
                   "F_users(u, n, c) :- mk.users(u, n, c)",
                   {"postgres", "pg2", "pg3"}, {}, {0}),
               "users x3");
    BenchCheck(f->m->sys.DefineReplicatedFragment(
                   "F_orders(o, u, p, t) :- mk.orders(o, u, p, t)",
                   {"postgres", "pg2", "pg3"}, {}, {1, 2}),
               "orders x3");
    DefineUnreplicatedTail(&f->m->sys);
    f->m->postgres.AttachFaultInjector(&f->injector, "postgres");
    f->pg2.AttachFaultInjector(&f->injector, "pg2");
    f->pg3.AttachFaultInjector(&f->injector, "pg3");
    f->m->redis.AttachFaultInjector(&f->injector, "redis");
    f->m->mongodb.AttachFaultInjector(&f->injector, "mongodb");
    f->m->spark.AttachFaultInjector(&f->injector, "spark");
    f->m->solr.AttachFaultInjector(&f->injector, "solr");
    return f;
  }
};

ServerOptions Options() {
  ServerOptions options;
  options.fault_tolerant = true;
  options.retry.max_attempts = 8;
  options.retry.initial_backoff_micros = 20;
  options.retry.max_backoff_micros = 2'000;
  options.retry.deadline_micros = 0;
  options.health.failure_threshold = 3;
  options.health.open_cooldown_micros = 20'000;
  return options;
}

std::set<std::string> Canon(const std::vector<Row>& rows) {
  std::set<std::string> out;
  for (const Row& r : rows) out.insert(engine::RowToString(r));
  return out;
}

/// Shapes over the replicated fragments, validated against ground truth
/// in every outage phase.
struct Shape {
  std::string text;
  std::map<std::string, Value> params;
};

std::vector<Shape> ReplicatedShapes() {
  std::vector<Shape> shapes;
  for (int u = 0; u < 8; ++u) {
    shapes.push_back({workload::MarketplaceQueries::OrdersOfUser(),
                      {{"$uid", Value::Int(u)}}});
    shapes.push_back({workload::MarketplaceQueries::UserCity(),
                      {{"$uid", Value::Int(u)}}});
  }
  return shapes;
}

struct PhaseResult {
  uint64_t ok = 0;
  uint64_t failed = 0;
  uint64_t mismatches = 0;
  /// Answers that fell back to staging — forbidden while a replica lives.
  uint64_t degraded = 0;
  uint64_t reroutes = 0;
};

/// Serves every shape, validating rows against the staging truth.
PhaseResult RunShapes(QueryServer* server, Estocada* sys,
                      const std::vector<Shape>& shapes) {
  PhaseResult out;
  server->ResetMetrics();
  for (const Shape& s : shapes) {
    auto truth = sys->EvaluateOverStaging(s.text, s.params);
    BenchCheck(truth.status(), "ground truth");
    auto r = server->Query(s.text, s.params);
    if (!r.ok()) {
      ++out.failed;
      continue;
    }
    ++out.ok;
    if (Canon(r->rows) != Canon(*truth)) ++out.mismatches;
    if (r->degraded_to_staging) ++out.degraded;
  }
  out.reroutes = server->metrics().reroutes;
  return out;
}

void AddPhaseJson(BenchJson* json, const std::string& prefix,
                  const PhaseResult& p) {
  json->Add(prefix + "_ok", p.ok);
  json->Add(prefix + "_failed", p.failed);
  json->Add(prefix + "_mismatches", p.mismatches);
  json->Add(prefix + "_degraded", p.degraded);
  json->Add(prefix + "_reroutes", p.reroutes);
}

void PrintPhase(const char* name, const PhaseResult& p) {
  std::printf("%-18s %6llu ok %5llu failed %5llu wrong %5llu degraded "
              "%5llu reroutes\n",
              name, static_cast<unsigned long long>(p.ok),
              static_cast<unsigned long long>(p.failed),
              static_cast<unsigned long long>(p.mismatches),
              static_cast<unsigned long long>(p.degraded),
              static_cast<unsigned long long>(p.reroutes));
}

int Run() {
  std::unique_ptr<ReplicatedFixture> fixture = ReplicatedFixture::Create();
  ReplicatedFixture& f = *fixture;
  Estocada& sys = f.m->sys;
  const std::vector<Shape> shapes = ReplicatedShapes();
  BenchJson json("replication");
  json.Add("replication_factor", static_cast<uint64_t>(3));
  json.Add("shapes_per_phase", static_cast<uint64_t>(shapes.size()));

  QueryServer server(&sys, Options());
  bool pass = true;

  // -------------------------------------------------- healthy baseline --
  std::printf("== K=3 replication under sequential kills ==\n");
  PhaseResult healthy = RunShapes(&server, &sys, shapes);
  PrintPhase("healthy", healthy);
  AddPhaseJson(&json, "healthy", healthy);
  pass = pass && healthy.failed == 0 && healthy.mismatches == 0 &&
         healthy.degraded == 0;

  // -------------------------------------------------- sequential kills --
  // Each instance of the trio dies in turn; the replicated shapes must
  // keep answering correctly out of the sibling replicas, never out of
  // the staging area.
  for (const char* victim : {"postgres", "pg2", "pg3"}) {
    f.injector.SetOutage(victim, true);
    PhaseResult p = RunShapes(&server, &sys, shapes);
    std::string name = StrCat("kill_", victim);
    PrintPhase(name.c_str(), p);
    AddPhaseJson(&json, name, p);
    pass = pass && p.failed == 0 && p.mismatches == 0 && p.degraded == 0;
    f.injector.SetOutage(victim, false);
    server.health().Reset();
  }

  // The same kill sweep under 10% transient read faults on the whole
  // trio: retries and sibling re-routes absorb the noise. The gate here
  // is correctness — staging fallback is possible only in the rare
  // window where every surviving breaker is open at once, i.e. when no
  // replica is healthy by the breaker's own definition.
  stores::FaultPlan noisy;
  noisy.transient_fault_rate = 0.10;
  for (const char* s : {"postgres", "pg2", "pg3"}) f.injector.SetPlan(s, noisy);
  for (const char* victim : {"postgres", "pg2", "pg3"}) {
    f.injector.SetOutage(victim, true);
    PhaseResult p = RunShapes(&server, &sys, shapes);
    std::string name = StrCat("faulty_kill_", victim);
    PrintPhase(name.c_str(), p);
    AddPhaseJson(&json, name, p);
    pass = pass && p.failed == 0 && p.mismatches == 0;
    f.injector.SetOutage(victim, false);
    server.health().Reset();
  }
  for (const char* s : {"postgres", "pg2", "pg3"}) {
    f.injector.SetPlan(s, stores::FaultPlan{});
  }

  // Double kill: one survivor carries all the replicated traffic.
  f.injector.SetOutage("postgres", true);
  f.injector.SetOutage("pg2", true);
  PhaseResult doublekill = RunShapes(&server, &sys, shapes);
  PrintPhase("kill_two", doublekill);
  AddPhaseJson(&json, "doublekill", doublekill);
  pass = pass && doublekill.failed == 0 && doublekill.mismatches == 0 &&
         doublekill.degraded == 0;

  // Triple kill: no replica left — now (and only now) the staging bottom
  // of the ladder answers, still correctly.
  f.injector.SetOutage("pg3", true);
  PhaseResult triplekill = RunShapes(&server, &sys, shapes);
  PrintPhase("kill_all", triplekill);
  AddPhaseJson(&json, "triplekill", triplekill);
  pass = pass && triplekill.failed == 0 && triplekill.mismatches == 0 &&
         triplekill.degraded > 0;
  f.injector.SetOutage("postgres", false);
  f.injector.SetOutage("pg2", false);
  f.injector.SetOutage("pg3", false);
  server.health().Reset();

  // ------------------------------------- self-healing under live load --
  // Writes race a pg3 outage (the fan-out skips the dead instance and its
  // placements go stale), clients keep reading, then repairer ticks heal
  // the deployment back to fresh, digest-identical, verified replicas.
  std::printf("\n== self-healing: writes + outage + repair under load ==\n");
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> heal_client_failures{0};
  std::atomic<uint64_t> heal_reads{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      while (!stop.load()) {
        auto r = server.Query(kUsersQuery);
        heal_reads.fetch_add(1);
        if (!r.ok()) heal_client_failures.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }
  f.injector.SetOutage("pg3", true);
  for (int i = 0; i < 20; ++i) {
    Row row = {Value::Int(700'000 + i), Value::Str(StrCat("user", i)),
               Value::Str(StrCat("city", i % 7))};
    BenchCheck(server.InsertRow("mk.users", row), "insert under outage");
  }
  f.injector.SetOutage("pg3", false);

  replication::RepairOptions ropts;
  ropts.retry_backoff_micros = 20;
  ReplicaRepairer repairer(&server, ropts);
  uint64_t rebuilds = 0;
  bool converged = false;
  for (int i = 0; i < 200 && !converged; ++i) {
    auto n = repairer.Tick();
    BenchCheck(n.status(), "repair tick");
    rebuilds += *n;
    auto users = sys.catalog().GetFragment("F_users");
    auto orders = sys.catalog().GetFragment("F_orders");
    BenchCheck(users.status(), "users descriptor");
    BenchCheck(orders.status(), "orders descriptor");
    converged = true;
    for (const catalog::StorageDescriptor* desc : {*users, *orders}) {
      for (const catalog::ReplicaPlacement& p : desc->replicas) {
        if (p.rebuilding || !p.fresh(desc->write_epoch)) converged = false;
      }
    }
    if (!converged) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  for (auto& t : threads) t.join();

  // The healed replicas must be verified truth and digest-identical —
  // re-admission of a divergent container is the one unforgivable sin.
  uint64_t digest_mismatch = 0;
  for (const char* frag : {"F_users", "F_orders"}) {
    std::vector<uint64_t> digests;
    for (size_t i = 0; i < 3; ++i) {
      if (!sys.VerifyReplica(frag, i).ok()) ++digest_mismatch;
      auto d = sys.ReplicaDigest(frag, i);
      BenchCheck(d.status(), "digest");
      digests.push_back(*d);
    }
    if (digests[0] != digests[1] || digests[1] != digests[2]) {
      ++digest_mismatch;
    }
  }
  std::printf("healed: %llu rebuilds, %llu reads (%llu failed), "
              "converged=%d, digest_mismatches=%llu, server rebuild "
              "counter=%llu\n",
              static_cast<unsigned long long>(rebuilds),
              static_cast<unsigned long long>(heal_reads.load()),
              static_cast<unsigned long long>(heal_client_failures.load()),
              converged ? 1 : 0,
              static_cast<unsigned long long>(digest_mismatch),
              static_cast<unsigned long long>(
                  server.metrics().replica_rebuilds));
  json.Add("heal_rebuilds", rebuilds);
  json.Add("heal_replica_rebuilds_counter", server.metrics().replica_rebuilds);
  json.Add("heal_reroutes_counter", server.metrics().reroutes);
  json.Add("heal_reads", heal_reads.load());
  json.Add("heal_client_failures", heal_client_failures.load());
  json.Add("heal_unconverged", static_cast<uint64_t>(converged ? 0 : 1));
  json.Add("heal_digest_mismatch", digest_mismatch);
  pass = pass && heal_client_failures.load() == 0 && converged &&
         rebuilds >= 1 && digest_mismatch == 0;

  // ---------------------------------------------- unreplicated control --
  // Same layout, no replicas: the same postgres outage now costs staging
  // fallback for every users/orders shape — the value of K=3 in one line.
  std::printf("\n== unreplicated control: the same outage without K=3 ==\n");
  std::unique_ptr<MarketplaceSystem> control =
      MarketplaceSystem::Create(Config());
  if (control == nullptr) {
    std::fprintf(stderr, "control setup failed\n");
    std::abort();
  }
  BenchCheck(control->sys.DefineFragment(
                 "F_users(u, n, c) :- mk.users(u, n, c)", "postgres", {}, {0}),
             "control users");
  BenchCheck(control->sys.DefineFragment(
                 "F_orders(o, u, p, t) :- mk.orders(o, u, p, t)", "postgres",
                 {}, {1, 2}),
             "control orders");
  DefineUnreplicatedTail(&control->sys);
  FaultInjector control_injector{/*seed=*/7};
  control->postgres.AttachFaultInjector(&control_injector, "postgres");
  QueryServer control_server(&control->sys, Options());
  control_injector.SetOutage("postgres", true);
  PhaseResult unreplicated = RunShapes(&control_server, &control->sys, shapes);
  PrintPhase("control_outage", unreplicated);
  json.Add("unreplicated_outage_degraded", unreplicated.degraded);
  json.Add("unreplicated_outage_mismatches", unreplicated.mismatches);
  pass = pass && unreplicated.degraded > 0 && unreplicated.mismatches == 0;

  json.Write();
  std::printf("\nacceptance: 0 wrong answers, 0 staging fallbacks while a "
              "replica lives, healed digests identical -> %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace estocada::bench

int main() { return estocada::bench::Run(); }
