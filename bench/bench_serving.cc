/// Serving-runtime benchmark: closed-loop multi-client load against a
/// QueryServer over the tuned hybrid marketplace placement. Reports
///
///  * cold vs warm plan cache: per-query latency when every call pays the
///    full PACB rewrite (cache cleared before each query) vs when
///    structurally repeated queries hit the cache and only re-translate +
///    execute;
///  * closed-loop throughput and tail latency for 1/4/8 concurrent
///    clients drawing the §II workload mix with Zipf-skewed parameters.
///
/// Emits BENCH_serving.json (cache hit rate + latency percentiles) via
/// bench_common.h so later PRs can track serving performance.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/strings.h"
#include "runtime/query_server.h"

namespace estocada::bench {
namespace {

using ::estocada::StrCat;
using pivot::Adornment;
using runtime::MetricsSnapshot;
using runtime::QueryServer;

workload::MarketplaceConfig Config() {
  workload::MarketplaceConfig cfg;
  cfg.num_users = 800;
  cfg.num_products = 200;
  cfg.num_orders = 3000;
  cfg.num_visits = 8000;
  return cfg;
}

/// The tuned hybrid placement of bench_vanilla_vs_hybrid: each fragment
/// in the store whose blueprint fits it.
void DefineHybrid(MarketplaceSystem* m) {
  BenchCheck(m->sys.DefineFragment("F_users(u, n, c) :- mk.users(u, n, c)",
                                   "postgres", {}, {0}),
             "users");
  BenchCheck(m->sys.DefineFragment(
                 "F_orders(o, u, p, t) :- mk.orders(o, u, p, t)", "postgres",
                 {}, {1, 2}),
             "orders");
  BenchCheck(m->sys.DefineFragment(
                 "F_prod(p, n, cat, pr) :- mk.products(p, n, cat, pr)",
                 "mongodb", {}, {0, 2}),
             "products");
  BenchCheck(m->sys.DefineFragment("F_carts(u, c) :- mk.carts(u, c)", "redis",
                                   {Adornment::kInput, Adornment::kFree}),
             "carts");
  BenchCheck(m->sys.DefineFragment("F_profile(u, n, c) :- mk.users(u, n, c)",
                                   "redis",
                                   {Adornment::kInput, Adornment::kFree,
                                    Adornment::kFree}),
             "profile");
  BenchCheck(m->sys.DefineFragment("F_visits(u, p, d) :- mk.visits(u, p, d)",
                                   "spark"),
             "visits");
  BenchCheck(m->sys.DefineFragment("F_terms(p, w) :- mk.prodterms(p, w)",
                                   "solr",
                                   {Adornment::kFree, Adornment::kInput}),
             "terms");
  BenchCheck(m->sys.DefineFragment(
                 "F_pjoin(u, cat, p, n) :- mk.orders(o, u, p, t), "
                 "mk.visits(u, p, d), mk.products(p, n, cat, pr)",
                 "spark",
                 {Adornment::kInput, Adornment::kInput, Adornment::kFree,
                  Adornment::kFree}),
             "pjoin");
}

struct ServingFixture {
  std::unique_ptr<MarketplaceSystem> m;
  std::unique_ptr<QueryServer> server;

  static ServingFixture Create() {
    ServingFixture f;
    f.m = MarketplaceSystem::Create(Config());
    if (f.m == nullptr) {
      std::fprintf(stderr, "marketplace setup failed\n");
      std::abort();
    }
    DefineHybrid(f.m.get());
    f.server = std::make_unique<QueryServer>(&f.m->sys);
    return f;
  }
};

void RunOne(QueryServer* server, const workload::QueryInstance& q) {
  auto r = server->Query(q.text, q.parameters);
  if (!r.ok()) {
    std::fprintf(stderr, "serving query failed: %s: %s\n", q.text.c_str(),
                 r.status().ToString().c_str());
    std::abort();
  }
}

// -------------------------------------------------- microbenchmark view --

/// range(0): query index; range(1): 0 = cold cache (cleared before each
/// call, every call pays the PACB rewrite), 1 = warm.
void BM_Serve(benchmark::State& state) {
  static ServingFixture f = ServingFixture::Create();
  struct NamedQuery {
    const char* label;
    const char* text;
    std::map<std::string, engine::Value> params;
  };
  static const std::vector<NamedQuery> queries = {
      {"cart_lookup", workload::MarketplaceQueries::CartByUser(),
       {{"$uid", engine::Value::Int(3)}}},
      {"orders_of_user", workload::MarketplaceQueries::OrdersOfUser(),
       {{"$uid", engine::Value::Int(5)}}},
      {"personalized_search",
       workload::MarketplaceQueries::PersonalizedSearch(),
       {{"$uid", engine::Value::Int(1)},
        {"$cat", engine::Value::Str("cat0")}}},
  };
  const NamedQuery& q = queries[static_cast<size_t>(state.range(0))];
  bool cold = state.range(1) == 0;
  state.SetLabel(StrCat(q.label, cold ? "/cold" : "/warm"));
  for (auto _ : state) {
    if (cold) f.server->ClearPlanCache();
    auto r = f.server->Query(q.text, q.params);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Serve)
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

// ------------------------------------------------------- summary report --

struct Phase {
  MetricsSnapshot metrics;
  double wall_seconds = 0;

  double Qps() const {
    return wall_seconds > 0
               ? static_cast<double>(metrics.queries_served) / wall_seconds
               : 0;
  }
};

/// Closed loop: `clients` threads each issue `per_client` workload draws
/// back-to-back. Per-query latency lands in the server's histogram.
Phase RunClosedLoop(QueryServer* server, const workload::MarketplaceData& data,
                    int clients, int per_client, bool cold_cache) {
  server->ResetMetrics();
  if (cold_cache) server->ClearPlanCache();
  workload::WorkloadMix mix = ScenarioMix();
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < per_client; ++i) {
        auto q = workload::DrawQuery(data, mix, &rng);
        if (cold_cache) server->ClearPlanCache();
        RunOne(server, q);
      }
    });
  }
  for (auto& t : threads) t.join();
  Phase phase;
  phase.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  phase.metrics = server->metrics();
  return phase;
}

/// Repeated-query phase: the same query issued `n` times back-to-back —
/// the pattern the plan cache exists for (every call after the first is a
/// cache hit; cold mode clears the cache so every call pays the rewrite).
Phase RunRepeated(QueryServer* server, const workload::QueryInstance& q,
                  int n, bool cold_cache) {
  server->ResetMetrics();
  server->ClearPlanCache();
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < n; ++i) {
    if (cold_cache) server->ClearPlanCache();
    RunOne(server, q);
  }
  Phase phase;
  phase.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  phase.metrics = server->metrics();
  return phase;
}

void PrintSummary() {
  ServingFixture f = ServingFixture::Create();
  constexpr int kQueries = 400;

  auto row = [](const char* name, const Phase& p) {
    std::printf("%-6s %10.1f %10.1f %10.1f %10.0f %8.1f%%\n", name,
                p.metrics.p50_micros(), p.metrics.p95_micros(),
                p.metrics.p99_micros(), p.Qps(),
                100.0 * p.metrics.CacheHitRate());
  };
  // Speedups ratio nanosecond-scale values: at microsecond granularity a
  // fast warm phase can round its p50 to 0 and the ratio degenerates (a
  // silent 0x "speedup"). One nanosecond is the floor; JSON percentiles
  // are clamped the same way so baseline ratio checks never divide by 0.
  auto p50_nanos = [](const Phase& p) {
    return std::max(p.metrics.p50_micros() * 1000.0, 1.0);
  };
  auto clamp_us = [](double micros) { return std::max(micros, 0.001); };
  auto speedup_of = [&](const Phase& cold, const Phase& warm) {
    return p50_nanos(cold) / p50_nanos(warm);
  };

  // Repeated-query phase: the paper's bottleneck query (§II personalized
  // search, the largest rewrite) issued over and over — the acceptance
  // numbers (median speedup, hit rate) come from here.
  workload::QueryInstance repeated;
  repeated.text = workload::MarketplaceQueries::PersonalizedSearch();
  repeated.parameters = {{"$uid", engine::Value::Int(1)},
                         {"$cat", engine::Value::Str("cat0")}};
  Phase rep_cold = RunRepeated(f.server.get(), repeated, kQueries,
                               /*cold_cache=*/true);
  Phase rep_warm = RunRepeated(f.server.get(), repeated, kQueries,
                               /*cold_cache=*/false);
  std::printf("\n== repeated query (personalized_search x%d, 1 client) ==\n",
              kQueries);
  std::printf("%-6s %10s %10s %10s %10s %9s\n", "phase", "p50(us)", "p95(us)",
              "p99(us)", "qps", "hit rate");
  row("cold", rep_cold);
  row("warm", rep_warm);
  double rep_speedup = speedup_of(rep_cold, rep_warm);
  std::printf("repeated-query warm-cache median speedup: %.1fx "
              "(PACB rewrites: cold=%llu warm=%llu)\n",
              rep_speedup,
              static_cast<unsigned long long>(rep_cold.metrics.rewrites),
              static_cast<unsigned long long>(rep_warm.metrics.rewrites));

  // Mixed-workload phase: the full §II mix with Zipf-skewed parameters.
  // Median speedup is lower than the repeated-query phase because the mix
  // is dominated by key lookups whose execution, not rewrite, dominates.
  Phase cold = RunClosedLoop(f.server.get(), f.m->data, 1, kQueries,
                             /*cold_cache=*/true);
  Phase warm = RunClosedLoop(f.server.get(), f.m->data, 1, kQueries,
                             /*cold_cache=*/false);
  std::printf("\n== serving runtime: cold vs warm plan cache "
              "(%d workload queries, 1 client) ==\n",
              kQueries);
  std::printf("%-6s %10s %10s %10s %10s %9s\n", "phase", "p50(us)", "p95(us)",
              "p99(us)", "qps", "hit rate");
  row("cold", cold);
  row("warm", warm);
  double speedup = speedup_of(cold, warm);
  std::printf("warm-cache median speedup: %.1fx (PACB rewrites: cold=%llu "
              "warm=%llu)\n",
              speedup,
              static_cast<unsigned long long>(cold.metrics.rewrites),
              static_cast<unsigned long long>(warm.metrics.rewrites));

  // Closed-loop scaling: concurrent clients share the warm cache.
  std::printf("\n== closed-loop scaling (warm cache, %d queries/client) ==\n",
              kQueries / 4);
  std::printf("%-8s %10s %10s %10s %10s %9s\n", "clients", "p50(us)",
              "p95(us)", "p99(us)", "qps", "hit rate");
  BenchJson json("serving");
  json.Add("workload_queries", static_cast<uint64_t>(kQueries));
  json.AddLatencyPercentiles("repeated_cold",
                             clamp_us(rep_cold.metrics.p50_micros()),
                             clamp_us(rep_cold.metrics.p95_micros()),
                             clamp_us(rep_cold.metrics.p99_micros()));
  json.AddLatencyPercentiles("repeated_warm",
                             clamp_us(rep_warm.metrics.p50_micros()),
                             clamp_us(rep_warm.metrics.p95_micros()),
                             clamp_us(rep_warm.metrics.p99_micros()));
  json.AddCacheStats("repeated_warm", rep_warm.metrics.cache_hits,
                     rep_warm.metrics.cache_misses);
  json.Add("repeated_warm_p50_speedup", rep_speedup);
  json.AddLatencyPercentiles("cold", clamp_us(cold.metrics.p50_micros()),
                             clamp_us(cold.metrics.p95_micros()),
                             clamp_us(cold.metrics.p99_micros()));
  json.AddCacheStats("cold", cold.metrics.cache_hits,
                     cold.metrics.cache_misses);
  json.Add("cold_qps", cold.Qps());
  json.AddLatencyPercentiles("warm", clamp_us(warm.metrics.p50_micros()),
                             clamp_us(warm.metrics.p95_micros()),
                             clamp_us(warm.metrics.p99_micros()));
  json.AddCacheStats("warm", warm.metrics.cache_hits,
                     warm.metrics.cache_misses);
  json.Add("warm_qps", warm.Qps());
  json.Add("warm_p50_speedup", speedup);
  for (int clients : {1, 4, 8}) {
    Phase p = RunClosedLoop(f.server.get(), f.m->data, clients, kQueries / 4,
                            /*cold_cache=*/false);
    std::printf("%-8d %10.1f %10.1f %10.1f %10.0f %8.1f%%\n", clients,
                p.metrics.p50_micros(), p.metrics.p95_micros(),
                p.metrics.p99_micros(), p.Qps(),
                100.0 * p.metrics.CacheHitRate());
    std::string prefix = StrCat("clients", clients);
    json.AddLatencyPercentiles(prefix, clamp_us(p.metrics.p50_micros()),
                               clamp_us(p.metrics.p95_micros()),
                               clamp_us(p.metrics.p99_micros()));
    json.AddCacheStats(prefix, p.metrics.cache_hits, p.metrics.cache_misses);
    json.Add(prefix + "_qps", p.Qps());
  }
  json.Write();

  std::printf("\nserver metrics after the last phase:\n%s",
              f.server->metrics().ToString().c_str());
}

}  // namespace
}  // namespace estocada::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  estocada::bench::PrintSummary();
  return 0;
}
