/// Ablation A1 (beyond the paper's demo, supporting its "fragments are
/// materialized views" design): incremental view maintenance vs. full
/// re-materialization when the application keeps inserting data after the
/// fragments exist. The delta rule makes per-tuple maintenance cost
/// proportional to the *delta*, not the dataset — the property that makes
/// LAV fragments viable for live systems.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_common.h"

namespace estocada::bench {
namespace {

using engine::Value;

std::unique_ptr<MarketplaceSystem> MakeSystem(size_t orders) {
  workload::MarketplaceConfig cfg;
  cfg.num_users = 400;
  cfg.num_products = 100;
  cfg.num_orders = orders;
  cfg.num_visits = 2 * orders;
  auto m = MarketplaceSystem::Create(cfg);
  BenchCheck(m->sys.DefineFragment(
                 "F_orders(o, u, p, t) :- mk.orders(o, u, p, t)", "postgres",
                 {}, {1}),
             "orders");
  BenchCheck(m->sys.DefineFragment(
                 "F_pjoin(u, p) :- mk.orders(o, u, p, t), mk.visits(u, p, d)",
                 "spark"),
             "pjoin");
  return m;
}

/// Incremental: InsertRow maintains both fragments via the delta rule.
void BM_IncrementalInsert(benchmark::State& state) {
  auto m = MakeSystem(static_cast<size_t>(state.range(0)));
  int64_t next_oid = 1000000;
  for (auto _ : state) {
    Status st = m->sys.InsertRow(
        "mk.orders", {Value::Int(next_oid++), Value::Int(next_oid % 400),
                      Value::Int(next_oid % 100), Value::Real(9.5)});
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetLabel("delta maintenance");
}
BENCHMARK(BM_IncrementalInsert)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMicrosecond);

/// Baseline: the same insert followed by dropping + re-materializing the
/// join fragment (what a system without maintenance must do).
void BM_FullRematerialization(benchmark::State& state) {
  auto m = MakeSystem(static_cast<size_t>(state.range(0)));
  int64_t next_oid = 1000000;
  for (auto _ : state) {
    Status st = m->sys.LoadRow(
        "mk.orders", {Value::Int(next_oid++), Value::Int(next_oid % 400),
                      Value::Int(next_oid % 100), Value::Real(9.5)});
    if (st.ok()) st = m->sys.DropFragment("F_pjoin");
    if (st.ok()) {
      st = m->sys.DefineFragment(
          "F_pjoin(u, p) :- mk.orders(o, u, p, t), mk.visits(u, p, d)",
          "spark");
    }
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetLabel("drop + rebuild");
}
BENCHMARK(BM_FullRematerialization)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMicrosecond);

void PrintSummary() {
  std::printf("\n== A1 (ablation): incremental fragment maintenance vs "
              "rebuild ==\n");
  std::printf("%8s | %18s %18s | %8s\n", "orders", "delta (us/insert)",
              "rebuild (us/insert)", "ratio");
  for (size_t orders : {2000, 8000}) {
    auto inc = MakeSystem(orders);
    auto reb = MakeSystem(orders);
    auto time_us = [](auto&& fn, int reps) {
      auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < reps; ++i) fn(i);
      auto stop = std::chrono::steady_clock::now();
      return std::chrono::duration<double, std::micro>(stop - start)
                 .count() /
             reps;
    };
    double inc_us = time_us(
        [&](int i) {
          BenchCheck(inc->sys.InsertRow(
                         "mk.orders",
                         {Value::Int(2000000 + i), Value::Int(i % 400),
                          Value::Int(i % 100), Value::Real(1.0)}),
                     "inc insert");
        },
        20);
    double reb_us = time_us(
        [&](int i) {
          BenchCheck(reb->sys.LoadRow(
                         "mk.orders",
                         {Value::Int(2000000 + i), Value::Int(i % 400),
                          Value::Int(i % 100), Value::Real(1.0)}),
                     "load");
          BenchCheck(reb->sys.DropFragment("F_pjoin"), "drop");
          BenchCheck(reb->sys.DefineFragment(
                         "F_pjoin(u, p) :- mk.orders(o, u, p, t), "
                         "mk.visits(u, p, d)",
                         "spark"),
                     "rebuild");
        },
        5);
    std::printf("%8zu | %18.0f %18.0f | %7.1fx\n", orders, inc_us, reb_us,
                reb_us / inc_us);
  }
  std::printf("(delta maintenance scales with the affected rows; rebuild "
              "re-joins the whole dataset per insert.)\n");
}

}  // namespace
}  // namespace estocada::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  estocada::bench::PrintSummary();
  return 0;
}
