/// Experiment E3 (paper §III): the provenance-aware Chase & Backchase
/// "drastically reduces the back-chase effort ... this results in
/// rewriting speedups that can even outperform a commercial relational
/// optimizer by 1-2 orders of magnitude". We reproduce the algorithmic
/// half of the claim: PACB vs. the classical C&B (bottom-up enumeration
/// of universal-plan subqueries, each fully chase-verified) on chain
/// queries with growing view sets.
///
/// Reproduced series: rewriting time and number of chase-verifications,
/// PACB vs naive, as the query size grows.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "common/strings.h"
#include "pacb/naive.h"
#include "pacb/rewriter.h"
#include "pivot/parser.h"

namespace estocada::bench {
namespace {

using pacb::NaiveChaseBackchase;
using pacb::Rewriter;
using pacb::RewriterOptions;
using pacb::ViewDefinition;
using pivot::ConjunctiveQuery;
using pivot::Schema;

/// Chain setting: relations R0..R{n-1}; views = one identity view per
/// relation plus one join view per adjacent pair; query = the full chain.
struct ChainCase {
  Schema schema;
  std::vector<ViewDefinition> views;
  ConjunctiveQuery query;
};

/// Variants: 0 = identity views only; 1 = + adjacent join views;
/// 2 = + join views + a second (replicated) identity view per relation —
/// the redundant-fragment setting polystores actually run with, where the
/// naive enumeration suffers most.
ChainCase MakeChain(size_t n, int variant) {
  ChainCase c;
  for (size_t i = 0; i < n; ++i) {
    (void)c.schema.AddRelation(StrCat("R", i), 2);
  }
  for (size_t i = 0; i < n; ++i) {
    ViewDefinition v;
    v.query = *pivot::ParseQuery(
        StrCat("V", i, "(a, b) :- R", i, "(a, b)"));
    c.views.push_back(std::move(v));
  }
  if (variant >= 1) {
    for (size_t i = 0; i + 1 < n; ++i) {
      ViewDefinition v;
      v.query = *pivot::ParseQuery(StrCat("VJ", i, "(a, c) :- R", i,
                                          "(a, b), R", i + 1, "(b, c)"));
      c.views.push_back(std::move(v));
    }
  }
  if (variant >= 2) {
    for (size_t i = 0; i < n; ++i) {
      ViewDefinition v;
      v.query = *pivot::ParseQuery(
          StrCat("W", i, "(a, b) :- R", i, "(a, b)"));
      c.views.push_back(std::move(v));
    }
  }
  std::string body;
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) body += ", ";
    body += StrCat("R", i, "(x", i, ", x", i + 1, ")");
  }
  c.query = *pivot::ParseQuery(StrCat("q(x0, x", n, ") :- ", body));
  return c;
}

void BM_PacbRewrite(benchmark::State& state) {
  ChainCase c = MakeChain(static_cast<size_t>(state.range(0)),
                          static_cast<int>(state.range(1)));
  Rewriter rw(c.schema, c.views);
  if (!rw.Prepare().ok()) {
    state.SkipWithError("prepare failed");
    return;
  }
  size_t verified = 0;
  size_t found = 0;
  for (auto _ : state) {
    auto result = rw.Rewrite(c.query);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    verified = result->stats.candidates_verified;
    found = result->rewritings.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["verifications"] = static_cast<double>(verified);
  state.counters["rewritings"] = static_cast<double>(found);
}
BENCHMARK(BM_PacbRewrite)
    ->ArgsProduct({{2, 3, 4, 5, 6}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

void BM_NaiveRewrite(benchmark::State& state) {
  ChainCase c = MakeChain(static_cast<size_t>(state.range(0)),
                          static_cast<int>(state.range(1)));
  NaiveChaseBackchase naive(c.schema, c.views);
  if (!naive.Prepare().ok()) {
    state.SkipWithError("prepare failed");
    return;
  }
  size_t verified = 0;
  size_t found = 0;
  for (auto _ : state) {
    auto result = naive.Rewrite(c.query);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    verified = result->stats.candidates_verified;
    found = result->rewritings.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["verifications"] = static_cast<double>(verified);
  state.counters["rewritings"] = static_cast<double>(found);
}
BENCHMARK(BM_NaiveRewrite)
    ->ArgsProduct({{2, 3, 4, 5, 6}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

/// Perf-gate record: times the PACB rewriter on a fixed set of chain
/// cases and writes BENCH_pacb.json. Each case reports the median of 5
/// timed reps (every rep averages a small inner loop to smooth scheduler
/// noise) plus the chase-verification and rewriting counts, so the CI
/// perf gate (scripts/bench_compare.py vs bench/baselines/pacb.json) can
/// flag both wall-time regressions and verification-count blowups.
void WriteGateJson() {
  struct GateCase { size_t n; int variant; };
  const GateCase cases[] = {{4, 0}, {6, 1}, {8, 1}, {5, 2}};
  constexpr int kReps = 5;
  constexpr int kInner = 4;
  BenchJson json("pacb");
  json.Add("reps", static_cast<uint64_t>(kReps));
  for (const GateCase& cs : cases) {
    ChainCase c = MakeChain(cs.n, cs.variant);
    Rewriter rw(c.schema, c.views);
    BenchCheck(rw.Prepare(), "gate prepare");
    size_t verified = 0;
    size_t found = 0;
    auto once = [&] {
      auto r = rw.Rewrite(c.query);
      BenchCheck(r.status(), "gate rewrite");
      verified = r->stats.candidates_verified;
      found = r->rewritings.size();
    };
    once();  // Warm the per-pattern matcher compilations.
    double samples[kReps];
    for (int rep = 0; rep < kReps; ++rep) {
      auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < kInner; ++i) once();
      auto stop = std::chrono::steady_clock::now();
      samples[rep] =
          std::chrono::duration<double, std::micro>(stop - start).count() /
          kInner;
    }
    std::sort(samples, samples + kReps);
    const std::string prefix = StrCat("chain", cs.n, "_v", cs.variant);
    json.Add(prefix + "_us", samples[kReps / 2]);
    json.Add(prefix + "_verifications", static_cast<uint64_t>(verified));
    json.Add(prefix + "_rewritings", static_cast<uint64_t>(found));
  }
  json.Write();
}

/// Ablation within PACB: provenance tracking + minimization off but
/// candidate cap tight — isolates what the provenance bookkeeping buys.

void PrintSummary() {
  std::printf("\n== E3: PACB vs classical C&B rewriting time "
              "(paper Sec. III: 1-2 orders of magnitude) ==\n");
  std::printf("%5s %6s | %12s %12s | %9s | %10s %10s\n", "chain", "views",
              "pacb (us)", "naive (us)", "speedup", "pacb#chk", "naive#chk");
  struct Case { size_t n; int variant; };
  const Case cases[] = {{2, 0}, {4, 0}, {6, 0}, {8, 0},
                        {2, 1}, {4, 1}, {6, 1}, {8, 1}, {10, 1},
                        {3, 2}, {4, 2}, {5, 2}};
  for (const Case& cs : cases) {
    {
      size_t n = cs.n;
      ChainCase c = MakeChain(n, cs.variant);
      Rewriter rw(c.schema, c.views);
      (void)rw.Prepare();
      NaiveChaseBackchase naive(c.schema, c.views);
      (void)naive.Prepare();
      // Warm + measure a few repetitions of each.
      auto time_us = [](auto&& fn, int reps) {
        auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < reps; ++i) fn();
        auto stop = std::chrono::steady_clock::now();
        return std::chrono::duration<double, std::micro>(stop - start)
                   .count() /
               reps;
      };
      size_t pacb_checks = 0;
      size_t naive_checks = 0;
      const int reps = 3;
      double pacb_us = time_us(
          [&] {
            auto r = rw.Rewrite(c.query);
            pacb_checks = r.ok() ? r->stats.candidates_verified : 0;
          },
          reps);
      double naive_us = time_us(
          [&] {
            auto r = naive.Rewrite(c.query);
            naive_checks = r.ok() ? r->stats.candidates_verified : 0;
          },
          reps);
      std::printf("%5zu %6zu | %12.0f %12.0f | %8.1fx | %10zu %10zu\n", n,
                  c.views.size(), pacb_us, naive_us, naive_us / pacb_us,
                  pacb_checks, naive_checks);
    }
  }
  std::printf("(naive C&B enumerates every universal-plan subquery and "
              "chase-verifies it;\n PACB verifies only the provenance-"
              "derived candidates.)\n");
}

}  // namespace
}  // namespace estocada::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  estocada::bench::WriteGateJson();
  // The perf-gate CI job only needs BENCH_pacb.json; the comparison table
  // (which chase-verifies naive C&B on the large chains) is skipped there.
  if (std::getenv("ESTOCADA_BENCH_GATE_ONLY") == nullptr) {
    estocada::bench::PrintSummary();
  }
  return 0;
}
