/// Graph-island benchmark: the 3-hop neighborhood and the cross-model
/// (graph x relational) join, served graph-natively vs relationally
/// emulated.
///
/// Both deployments hold the same "soc" social graph (400 nodes, ~10
/// out-edges each) staged through the GraphEncoding pivot relations,
/// plus a relational mk.profile table keyed by node id. The native
/// deployment materializes the Edge extent on the GraphStore, whose
/// adjacency indexes serve each hop as an O(out-degree) bucket probe
/// (EXPAND). The emulated deployment materializes the same extent as an
/// edge table on a relational instance *without* a source index and
/// behind a bound-source access pattern — the classic adjacency-as-table
/// emulation, where every hop of the self-join degenerates to a
/// BindJoin whose probes each filter-scan the full O(E) extent. Same
/// queries, same answers (validated row-for-row against the staging
/// ground truth); only the store architecture differs — which is the
/// paper's point about matching data models to stores.
///
/// Emits BENCH_graph.json; scripts/bench_compare.py gates the wall
/// times (25% threshold) and the zero-valued correctness counters
/// against bench/baselines/graph.json.
///
/// Acceptance (hard-fail): 0 wrong answers, 0 failed queries, and the
/// graph-native 3-hop leg >= 2x faster than the relational emulation.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_common.h"

namespace estocada::bench {
namespace {

using engine::Row;
using engine::Value;
using pivot::Adornment;

constexpr size_t kNodes = 400;
constexpr size_t kOutDegree = 20;
constexpr size_t kSources = 25;
constexpr int kWarmupRounds = 1;
constexpr int kTimedRounds = 3;
constexpr double kRequiredSpeedup = 2.0;

constexpr char kThreeHop[] =
    "q(d) :- soc.Edge($s, l1, m1), soc.Edge(m1, l2, m2), "
    "soc.Edge(m2, l3, d)";
constexpr char kCrossModel[] =
    "q(d, n, ci) :- soc.Edge($s, l, d), mk.profile(d, n, ci)";

std::string NodeId(size_t i) { return "n" + std::to_string(i); }

/// The shared dataset: a deterministic multigraph plus one profile row
/// per node.
encoding::GraphData BuildGraph() {
  Rng rng(7);
  encoding::GraphData g;
  for (size_t i = 0; i < kNodes; ++i) {
    g.nodes.push_back({NodeId(i), "User", {}});
  }
  for (size_t i = 0; i < kNodes; ++i) {
    for (size_t e = 0; e < kOutDegree; ++e) {
      g.edges.push_back({NodeId(i), rng.Chance(0.5) ? "follows" : "likes",
                         NodeId(rng.Uniform(kNodes)), {}});
    }
  }
  return g;
}

std::set<std::string> Canon(const std::vector<Row>& rows) {
  std::set<std::string> out;
  for (const Row& r : rows) out.insert(engine::RowToString(r));
  return out;
}

/// One deployment; `native` picks the store architecture for the edge
/// extent (GraphStore adjacency vs unindexed bound-source edge table).
struct Deployment {
  stores::GraphStore neo;
  stores::RelationalStore edges_rel;
  stores::RelationalStore postgres;
  Estocada sys;

  static std::unique_ptr<Deployment> Create(bool native,
                                            const encoding::GraphData& g) {
    auto out = std::make_unique<Deployment>();
    BenchCheck(out->sys.RegisterGraphDataset("soc", 3), "encoding");
    pivot::Schema schema;
    BenchCheck(schema.AddRelation("mk.profile", 3), "profile schema");
    BenchCheck(out->sys.RegisterSchema(schema), "schema");
    BenchCheck(out->sys.RegisterStore({"neo", catalog::StoreKind::kGraph,
                                       nullptr, nullptr, nullptr, nullptr,
                                       nullptr, &out->neo}),
               "neo");
    BenchCheck(out->sys.RegisterStore({"edges_rel",
                                       catalog::StoreKind::kRelational,
                                       &out->edges_rel, nullptr, nullptr,
                                       nullptr, nullptr}),
               "edges_rel");
    BenchCheck(out->sys.RegisterStore({"postgres",
                                       catalog::StoreKind::kRelational,
                                       &out->postgres, nullptr, nullptr,
                                       nullptr, nullptr}),
               "postgres");
    BenchCheck(out->sys.LoadGraph("soc", g), "graph");
    for (size_t i = 0; i < kNodes; ++i) {
      BenchCheck(out->sys.LoadRow("mk.profile",
                                  {Value::Str(NodeId(i)),
                                   Value::Str("name" + std::to_string(i)),
                                   Value::Str("c" + std::to_string(i % 7))}),
                 "profile row");
    }
    if (native) {
      // The bound-source access pattern steers the planner into
      // per-binding BindJoin probes — each an O(out-degree) adjacency
      // bucket EXPAND (the graph store's intrinsic index).
      BenchCheck(
          out->sys.DefineFragment(
              "F_edge(s, l, d) :- soc.Edge(s, l, d)", "neo",
              {Adornment::kInput, Adornment::kFree, Adornment::kFree}),
          "edge fragment");
    } else {
      // The emulation: the same extent as a plain edge table with *no*
      // source index (input-adorned positions would be auto-indexed at
      // materialization, so the fragment must stay free-adorned). The
      // planner fuses the self-join into one store-side SELECT whose
      // unindexed join falls back to O(E) scans per hop.
      BenchCheck(out->sys.DefineFragment(
                     "F_edge(s, l, d) :- soc.Edge(s, l, d)", "edges_rel"),
                 "edge fragment");
    }
    BenchCheck(out->sys.DefineFragment(
                   "F_profile(u, n, ci) :- mk.profile(u, n, ci)", "postgres",
                   {}, {0}),
               "profile fragment");
    return out;
  }
};

struct LegResult {
  double query_mean_us = 0.0;
  uint64_t executed = 0;
  uint64_t wrong = 0;
  uint64_t failed = 0;
};

/// Runs `text` once per source node for the timed rounds; answers are
/// validated (outside the timed section) against the staging oracle.
LegResult RunLeg(Deployment* d, const char* text,
                 const std::vector<std::set<std::string>>& truths) {
  for (size_t s = 0; s < kSources * kWarmupRounds; ++s) {
    (void)d->sys.Query(text, {{"$s", Value::Str(NodeId(s % kSources))}});
  }
  LegResult res;
  std::vector<std::set<std::string>> answers;
  answers.reserve(kSources * kTimedRounds);
  auto t0 = std::chrono::steady_clock::now();
  for (int round = 0; round < kTimedRounds; ++round) {
    for (size_t s = 0; s < kSources; ++s) {
      auto r = d->sys.Query(text, {{"$s", Value::Str(NodeId(s))}});
      ++res.executed;
      if (!r.ok()) {
        ++res.failed;
        answers.emplace_back();
        continue;
      }
      answers.push_back(Canon(r->rows));
    }
  }
  auto t1 = std::chrono::steady_clock::now();
  size_t a = 0;
  for (int round = 0; round < kTimedRounds; ++round) {
    for (size_t s = 0; s < kSources; ++s) {
      if (answers[a++] != truths[s]) ++res.wrong;
    }
  }
  const double us = static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count());
  res.query_mean_us = us / static_cast<double>(res.executed);
  return res;
}

std::vector<std::set<std::string>> Truths(Estocada* sys, const char* text) {
  std::vector<std::set<std::string>> out;
  for (size_t s = 0; s < kSources; ++s) {
    auto truth =
        sys->EvaluateOverStaging(text, {{"$s", Value::Str(NodeId(s))}});
    BenchCheck(truth.status(), "truth");
    out.push_back(Canon(*truth));
  }
  return out;
}

int Run() {
  BenchJson json("graph");
  std::printf("== graph island: 3-hop neighborhood + cross-model join, "
              "native vs relational emulation ==\n");
  const encoding::GraphData g = BuildGraph();
  auto native = Deployment::Create(/*native=*/true, g);
  auto emulated = Deployment::Create(/*native=*/false, g);

  // Sanity: the native plan must actually expand adjacency buckets.
  auto probe = native->sys.Query(
      kThreeHop, {{"$s", Value::Str(NodeId(0))}});
  BenchCheck(probe.status(), "native probe");
  const uint64_t plan_not_native =
      probe->plan_text.find("EXPAND") == std::string::npos ? 1 : 0;

  uint64_t wrong = 0;
  uint64_t failed = 0;
  std::map<std::string, LegResult> legs;
  for (const auto& [leg, text] :
       std::map<std::string, const char*>{{"3hop", kThreeHop},
                                          {"xmodel", kCrossModel}}) {
    auto truths = Truths(&native->sys, text);
    LegResult rn = RunLeg(native.get(), text, truths);
    LegResult re = RunLeg(emulated.get(), text, truths);
    legs["native_" + leg] = rn;
    legs["emulated_" + leg] = re;
    wrong += rn.wrong + re.wrong;
    failed += rn.failed + re.failed;
    std::printf("  %-6s: native %8.1f us/query, emulated %8.1f us/query "
                "(%.2fx), %llu+%llu wrong, %llu+%llu failed\n",
                leg.c_str(), rn.query_mean_us, re.query_mean_us,
                re.query_mean_us / rn.query_mean_us,
                (unsigned long long)rn.wrong, (unsigned long long)re.wrong,
                (unsigned long long)rn.failed,
                (unsigned long long)re.failed);
    json.Add("native_" + leg + "_query_mean_us", rn.query_mean_us);
    json.Add("emulated_" + leg + "_query_mean_us", re.query_mean_us);
  }

  const double speedup = legs["emulated_3hop"].query_mean_us /
                         legs["native_3hop"].query_mean_us;
  std::printf("\n3-hop graph-native speedup over relational emulation: "
              "%.2fx (acceptance: >= %.1fx)\n",
              speedup, kRequiredSpeedup);

  json.Add("wrong_answers", wrong);
  json.Add("failed_queries", failed);
  json.Add("plan_not_native", plan_not_native);
  // Gated as a zero-valued counter (same scheme as bench_scaleout): a
  // shortfall against the 2x bar shows as an increase and fails the
  // compare; the speedup itself is an ungated string.
  const uint64_t shortfall =
      speedup >= kRequiredSpeedup
          ? 0
          : static_cast<uint64_t>((kRequiredSpeedup - speedup) * 100.0) + 1;
  json.Add("speedup_shortfall_x100", shortfall);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", speedup);
  json.Add("speedup_3hop", std::string(buf));
  json.Write();

  const bool pass = wrong == 0 && failed == 0 && plan_not_native == 0 &&
                    speedup >= kRequiredSpeedup;
  std::printf("acceptance: 0 wrong / 0 failed, EXPAND in the native plan, "
              ">= %.1fx on the 3-hop leg -> %s\n",
              kRequiredSpeedup, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace estocada::bench

int main() { return estocada::bench::Run(); }
