/// Long-running randomized differential soak — the nightly-CI entry point
/// of the src/testing fuzzer. Runs seed after seed through the full
/// differential harness (staging oracle + the eight metamorphic invariant
/// families) until a time budget or scenario count runs out, printing a
/// replayable report for every failure and dropping it as an artifact
/// file.
///
///   soak_differential --minutes=10 --artifact-dir=soak-failures
///   soak_differential --seed=123456        # replay one seed, verbose
///
/// Exit status: 0 = all scenarios passed, 1 = at least one failure.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>

#include "testing/differential.h"

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *value = arg + prefix.size();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using estocada::testing::HarnessOptions;
  using estocada::testing::RunSeed;
  using estocada::testing::ScenarioConfig;
  using estocada::testing::SeedReport;

  double minutes = 2.0;
  uint64_t start_seed = std::random_device{}();
  uint64_t max_scenarios = 0;  // 0 = until the deadline.
  bool have_replay_seed = false;
  uint64_t replay_seed = 0;
  std::string artifact_dir = "soak-failures";

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "minutes", &v)) {
      minutes = std::stod(v);
    } else if (ParseFlag(argv[i], "start-seed", &v)) {
      start_seed = std::stoull(v);
    } else if (ParseFlag(argv[i], "scenarios", &v)) {
      max_scenarios = std::stoull(v);
    } else if (ParseFlag(argv[i], "seed", &v)) {
      have_replay_seed = true;
      replay_seed = std::stoull(v);
    } else if (ParseFlag(argv[i], "artifact-dir", &v)) {
      artifact_dir = v;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--minutes=F] [--start-seed=N] [--scenarios=N]"
                   " [--seed=N] [--artifact-dir=DIR]\n",
                   argv[0]);
      return 2;
    }
  }

  ScenarioConfig config;
  HarnessOptions options;

  if (have_replay_seed) {
    // Single-seed replay: print the scenario and the full outcome.
    ScenarioConfig cfg = config;
    cfg.seed = replay_seed;
    auto scenario = estocada::testing::GenerateScenario(cfg);
    if (scenario.ok()) {
      std::printf("%s\n", scenario->ToString().c_str());
    }
    SeedReport rep = RunSeed(replay_seed, config, options);
    if (rep.outcome.ok()) {
      std::printf("seed %llu: OK (%zu queries, %zu rewritings, %zu naive, "
                  "%zu chase, %zu chaos successes, %zu migration, "
                  "%zu autopilot, %zu replication, %zu partition)\n",
                  static_cast<unsigned long long>(replay_seed),
                  rep.outcome.queries_checked,
                  rep.outcome.rewritings_executed,
                  rep.outcome.naive_comparisons, rep.outcome.chase_checks,
                  rep.outcome.chaos_successes, rep.outcome.migration_checks,
                  rep.outcome.autopilot_checks,
                  rep.outcome.replication_checks,
                  rep.outcome.partition_checks);
      return 0;
    }
    std::printf("%s\n", rep.report.c_str());
    return 1;
  }

  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::ratio<60>>(minutes));
  std::printf("soak: start-seed=%llu minutes=%.1f artifact-dir=%s\n",
              static_cast<unsigned long long>(start_seed), minutes,
              artifact_dir.c_str());

  size_t run = 0;
  size_t failures = 0;
  for (uint64_t seed = start_seed;; ++seed) {
    if (max_scenarios != 0 && run >= max_scenarios) break;
    if (max_scenarios == 0 && std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    SeedReport rep = RunSeed(seed, config, options);
    ++run;
    if (!rep.outcome.ok()) {
      ++failures;
      std::printf("%s\n", rep.report.c_str());
      std::error_code ec;
      std::filesystem::create_directories(artifact_dir, ec);
      if (!ec) {
        std::ofstream out(artifact_dir + "/seed-" + std::to_string(seed) +
                          ".txt");
        out << rep.report;
      }
    }
    if (run % 25 == 0) {
      std::printf("soak: %zu scenarios, %zu failures (last seed %llu)\n", run,
                  failures, static_cast<unsigned long long>(seed));
      std::fflush(stdout);
    }
  }
  std::printf("soak: done — %zu scenarios, %zu failures\n", run, failures);
  return failures == 0 ? 0 : 1;
}
