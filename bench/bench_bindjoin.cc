/// Experiment E6 (paper §III): access-pattern restricted sources — "the
/// value of the key must be specified in order to access the values
/// associated to this key" — are reached through the BindJoin operator,
/// and only *feasible* rewritings are built.
///
/// Reproduced series: cost of the users ⋈ carts join when the carts
/// fragment sits behind a key-bound KV interface (BindJoin, with
/// per-binding memoization) vs in a scannable document store (HashJoin),
/// as the outer side grows; plus the feasibility boundary (key-less scan
/// over the KV fragment is rejected as kNoRewriting).

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace estocada::bench {
namespace {

using engine::Value;
using pivot::Adornment;

workload::MarketplaceConfig Config(size_t users) {
  workload::MarketplaceConfig cfg;
  cfg.num_users = users;
  cfg.num_products = 100;
  cfg.num_orders = 1000;
  cfg.num_visits = 1000;
  cfg.num_cities = 10;  // Outer selectivity knob: ~users/10 per city.
  return cfg;
}

std::unique_ptr<MarketplaceSystem> Make(size_t users, bool kv_carts) {
  auto m = MarketplaceSystem::Create(Config(users));
  BenchCheck(m->sys.DefineFragment("F_users(u, n, c) :- mk.users(u, n, c)",
                                   "postgres", {}, {0, 2}),
             "users");
  if (kv_carts) {
    BenchCheck(m->sys.DefineFragment("F_carts(u, c) :- mk.carts(u, c)",
                                     "redis",
                                     {Adornment::kInput, Adornment::kFree}),
               "carts-kv");
  } else {
    BenchCheck(m->sys.DefineFragment("F_carts(u, c) :- mk.carts(u, c)",
                                     "mongodb", {}, {0}),
               "carts-doc");
  }
  return m;
}

const char* kJoin = "q(n, c) :- mk.users(u, n, 'city3'), mk.carts(u, c)";

void BM_CrossStoreJoin(benchmark::State& state) {
  size_t users = static_cast<size_t>(state.range(0));
  bool kv = state.range(1) == 1;
  auto m = Make(users, kv);
  state.SetLabel(kv ? "bindjoin(kv)" : "hashjoin(doc)");
  double cost = 0;
  int64_t n = 0;
  for (auto _ : state) {
    auto r = m->sys.Query(kJoin);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    cost += r->simulated_cost();
    ++n;
  }
  state.counters["sim_cost"] = n ? cost / static_cast<double>(n) : 0;
}
BENCHMARK(BM_CrossStoreJoin)
    ->ArgsProduct({{100, 400, 1600}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

/// The memoization inside BindJoin: repeated keys on the outer side cost
/// one KV call each.
void BM_BindJoinMemoization(benchmark::State& state) {
  auto m = Make(400, true);
  // A query whose outer side repeats user ids (orders join carts).
  BenchCheck(m->sys.DefineFragment(
                 "F_orders(o, u, p, t) :- mk.orders(o, u, p, t)", "postgres",
                 {}, {1}),
             "orders");
  const char* q = "q(o, c) :- mk.orders(o, u, p, 'x$never'), mk.carts(u, c)";
  (void)q;  // Selective variant unused; measure the broad one:
  const char* broad = "q(o, c) :- mk.orders(o, u, p, t), mk.carts(u, c)";
  double cost = 0;
  int64_t n = 0;
  for (auto _ : state) {
    auto r = m->sys.Query(broad);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    cost += r->simulated_cost();
    ++n;
  }
  state.counters["sim_cost"] = n ? cost / static_cast<double>(n) : 0;
}
BENCHMARK(BM_BindJoinMemoization)->Unit(benchmark::kMillisecond);

void PrintSummary() {
  std::printf("\n== E6: BindJoin through access-pattern-restricted sources "
              "(paper Sec. III) ==\n");
  std::printf("%8s | %16s %16s\n", "users", "bindjoin(kv)", "hashjoin(doc)");
  for (size_t users : {100, 400, 1600}) {
    auto kv = Make(users, true);
    auto doc = Make(users, false);
    auto rk = kv->sys.Query(kJoin);
    auto rd = doc->sys.Query(kJoin);
    if (!rk.ok() || !rd.ok()) continue;
    std::printf("%8zu | %16.1f %16.1f\n", users, rk->simulated_cost(),
                rd->simulated_cost());
  }
  // Feasibility boundary: enumerating the KV fragment without a key is
  // rejected (no feasible rewriting), not silently slow.
  auto kv = Make(200, true);
  auto scan = kv->sys.Query("all(u, c) :- mk.carts(u, c)");
  std::printf("key-less scan over the KV fragment: %s\n",
              scan.ok() ? "UNEXPECTEDLY ANSWERED"
                        : scan.status().ToString().c_str());
  // And the memoization effect, shown via the plan's fetch calls:
  auto r = kv->sys.Query(kJoin);
  if (r.ok()) {
    const auto& redis = r->runtime_stats.per_store["redis"];
    std::printf("bindjoin issued %llu KV operations for %llu result rows "
                "(distinct keys only, memoized)\n",
                static_cast<unsigned long long>(redis.operations),
                static_cast<unsigned long long>(redis.rows_returned));
  }
}

}  // namespace
}  // namespace estocada::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  estocada::bench::PrintSummary();
  return 0;
}
