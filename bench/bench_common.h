#ifndef ESTOCADA_BENCH_BENCH_COMMON_H_
#define ESTOCADA_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "advisor/cost_model.h"
#include "estocada/estocada.h"
#include "workload/bigdata.h"
#include "workload/marketplace.h"

namespace estocada::bench {

/// A self-contained marketplace deployment: the five stores plus an
/// Estocada instance with schema + staging loaded. Fragments are defined
/// by each experiment.
struct MarketplaceSystem {
  workload::MarketplaceData data;
  stores::RelationalStore postgres;
  stores::KeyValueStore redis;
  stores::DocumentStore mongodb;
  stores::ParallelStore spark;
  stores::TextStore solr;
  Estocada sys;

  /// `spark_profile` overrides the parallel store's cost profile — the
  /// Autopilot bench's "cost model lies" leg deploys a spark that is far
  /// more expensive than the advisor's blueprint believes.
  explicit MarketplaceSystem(
      stores::CostProfile spark_profile = advisor::CostModel::BlueprintProfile(
          catalog::StoreKind::kParallel))
      : spark(4, spark_profile) {}

  static std::unique_ptr<MarketplaceSystem> Create(
      const workload::MarketplaceConfig& cfg,
      std::optional<stores::CostProfile> spark_profile = std::nullopt) {
    auto out = spark_profile
                   ? std::make_unique<MarketplaceSystem>(*spark_profile)
                   : std::make_unique<MarketplaceSystem>();
    auto data = workload::GenerateMarketplace(cfg);
    if (!data.ok()) return nullptr;
    out->data = std::move(*data);
    if (!out->sys.RegisterSchema(out->data.schema).ok()) return nullptr;
    using catalog::StoreKind;
    auto ok = [&](Status st) { return st.ok(); };
    if (!ok(out->sys.RegisterStore({"postgres", StoreKind::kRelational,
                                    &out->postgres, nullptr, nullptr, nullptr,
                                    nullptr})) ||
        !ok(out->sys.RegisterStore({"redis", StoreKind::kKeyValue, nullptr,
                                    &out->redis, nullptr, nullptr,
                                    nullptr})) ||
        !ok(out->sys.RegisterStore({"mongodb", StoreKind::kDocument, nullptr,
                                    nullptr, &out->mongodb, nullptr,
                                    nullptr})) ||
        !ok(out->sys.RegisterStore({"spark", StoreKind::kParallel, nullptr,
                                    nullptr, nullptr, &out->spark,
                                    nullptr})) ||
        !ok(out->sys.RegisterStore({"solr", StoreKind::kText, nullptr,
                                    nullptr, nullptr, nullptr,
                                    &out->solr}))) {
      return nullptr;
    }
    if (!out->sys.LoadStaging(out->data.staging).ok()) return nullptr;
    return out;
  }
};

/// Aborts loudly when a setup step fails (benchmark setup must not
/// silently measure a broken configuration).
inline void BenchCheck(Status st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "bench setup failed (%s): %s\n", what,
                 st.ToString().c_str());
    std::abort();
  }
}

/// Draws `n` queries of the workload mix as deterministic cost probes
/// (same seed, same draws — the probe list is reproducible).
inline std::vector<advisor::CostProbe> DrawWorkloadProbes(
    const workload::MarketplaceData& data, const workload::WorkloadMix& mix,
    int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<advisor::CostProbe> probes;
  probes.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto q = workload::DrawQuery(data, mix, &rng);
    probes.push_back({q.text, q.parameters});
  }
  return probes;
}

/// CostModel runner that executes against a bare Estocada facade and
/// prices a probe at its simulated cost.
inline advisor::CostModel::QueryRunner SimulatedCostRunner(Estocada* sys) {
  return [sys](const std::string& text,
               const std::map<std::string, engine::Value>& parameters)
             -> Result<double> {
    ESTOCADA_ASSIGN_OR_RETURN(Estocada::QueryResult r,
                              sys->Query(text, parameters));
    return r.simulated_cost();
  };
}

/// Runs `n` draws of the workload and returns the total simulated cost
/// (the measured half of advisor::CostModel, summed in draw order).
inline double RunWorkloadCost(Estocada* sys,
                              const workload::MarketplaceData& data,
                              const workload::WorkloadMix& mix, int n,
                              uint64_t seed) {
  advisor::CostModel model(SimulatedCostRunner(sys));
  Result<double> total =
      model.TotalCost(DrawWorkloadProbes(data, mix, n, seed));
  if (!total.ok()) {
    std::fprintf(stderr, "workload probe failed: %s\n",
                 total.status().ToString().c_str());
    std::abort();
  }
  return *total;
}

/// Accumulates key→value pairs and writes them as one flat JSON object to
/// `BENCH_<name>.json` in the working directory, so runs of a benchmark
/// leave a machine-readable record that later PRs can diff. Besides plain
/// scalar fields there are helpers for the serving-performance fields
/// (cache hit rate, latency percentiles) every serving benchmark should
/// report under a consistent naming scheme.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void Add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.emplace_back(key, buf);
  }
  void Add(const std::string& key, uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, const std::string& value) {
    std::string quoted = "\"";
    for (char c : value) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    fields_.emplace_back(key, quoted);
  }

  /// "<prefix>_cache_hit_rate" in [0, 1] plus the raw hit/miss counts.
  void AddCacheStats(const std::string& prefix, uint64_t hits,
                     uint64_t misses) {
    Add(prefix + "_cache_hits", hits);
    Add(prefix + "_cache_misses", misses);
    uint64_t total = hits + misses;
    Add(prefix + "_cache_hit_rate",
        total == 0 ? 0.0
                   : static_cast<double>(hits) / static_cast<double>(total));
  }

  /// "<prefix>_latency_p50_us" / p95 / p99.
  void AddLatencyPercentiles(const std::string& prefix, double p50_us,
                             double p95_us, double p99_us) {
    Add(prefix + "_latency_p50_us", p50_us);
    Add(prefix + "_latency_p95_us", p95_us);
    Add(prefix + "_latency_p99_us", p99_us);
  }

  /// Writes BENCH_<name>.json. Returns false (and warns) on I/O failure.
  bool Write() const {
    std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n");
    for (size_t i = 0; i < fields_.size(); ++i) {
      std::fprintf(f, "  \"%s\": %s%s\n", fields_[i].first.c_str(),
                   fields_[i].second.c_str(),
                   i + 1 < fields_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// The §II-calibrated workload mix (see EXPERIMENTS.md).
inline workload::WorkloadMix ScenarioMix() {
  workload::WorkloadMix mix;
  mix.cart_lookup = 0.30;
  mix.user_city = 0.25;
  mix.orders_of_user = 0.20;
  mix.personalized_search = 0.13;
  mix.products_in_category = 0.12;
  return mix;
}

}  // namespace estocada::bench

#endif  // ESTOCADA_BENCH_BENCH_COMMON_H_
