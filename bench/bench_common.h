#ifndef ESTOCADA_BENCH_BENCH_COMMON_H_
#define ESTOCADA_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>

#include "estocada/estocada.h"
#include "workload/bigdata.h"
#include "workload/marketplace.h"

namespace estocada::bench {

/// A self-contained marketplace deployment: the five stores plus an
/// Estocada instance with schema + staging loaded. Fragments are defined
/// by each experiment.
struct MarketplaceSystem {
  workload::MarketplaceData data;
  stores::RelationalStore postgres;
  stores::KeyValueStore redis;
  stores::DocumentStore mongodb;
  stores::ParallelStore spark{4};
  stores::TextStore solr;
  Estocada sys;

  static std::unique_ptr<MarketplaceSystem> Create(
      const workload::MarketplaceConfig& cfg) {
    auto out = std::make_unique<MarketplaceSystem>();
    auto data = workload::GenerateMarketplace(cfg);
    if (!data.ok()) return nullptr;
    out->data = std::move(*data);
    if (!out->sys.RegisterSchema(out->data.schema).ok()) return nullptr;
    using catalog::StoreKind;
    auto ok = [&](Status st) { return st.ok(); };
    if (!ok(out->sys.RegisterStore({"postgres", StoreKind::kRelational,
                                    &out->postgres, nullptr, nullptr, nullptr,
                                    nullptr})) ||
        !ok(out->sys.RegisterStore({"redis", StoreKind::kKeyValue, nullptr,
                                    &out->redis, nullptr, nullptr,
                                    nullptr})) ||
        !ok(out->sys.RegisterStore({"mongodb", StoreKind::kDocument, nullptr,
                                    nullptr, &out->mongodb, nullptr,
                                    nullptr})) ||
        !ok(out->sys.RegisterStore({"spark", StoreKind::kParallel, nullptr,
                                    nullptr, nullptr, &out->spark,
                                    nullptr})) ||
        !ok(out->sys.RegisterStore({"solr", StoreKind::kText, nullptr,
                                    nullptr, nullptr, nullptr,
                                    &out->solr}))) {
      return nullptr;
    }
    if (!out->sys.LoadStaging(out->data.staging).ok()) return nullptr;
    return out;
  }
};

/// Aborts loudly when a setup step fails (benchmark setup must not
/// silently measure a broken configuration).
inline void BenchCheck(Status st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "bench setup failed (%s): %s\n", what,
                 st.ToString().c_str());
    std::abort();
  }
}

/// Runs `n` draws of the workload and returns the total simulated cost.
inline double RunWorkloadCost(Estocada* sys,
                              const workload::MarketplaceData& data,
                              const workload::WorkloadMix& mix, int n,
                              uint64_t seed) {
  Rng rng(seed);
  double total = 0;
  for (int i = 0; i < n; ++i) {
    auto q = workload::DrawQuery(data, mix, &rng);
    auto r = sys->Query(q.text, q.parameters);
    if (!r.ok()) {
      std::fprintf(stderr, "workload query failed: %s: %s\n", q.text.c_str(),
                   r.status().ToString().c_str());
      std::abort();
    }
    total += r->simulated_cost();
  }
  return total;
}

/// The §II-calibrated workload mix (see EXPERIMENTS.md).
inline workload::WorkloadMix ScenarioMix() {
  workload::WorkloadMix mix;
  mix.cart_lookup = 0.30;
  mix.user_city = 0.25;
  mix.orders_of_user = 0.20;
  mix.personalized_search = 0.13;
  mix.products_in_category = 0.12;
  return mix;
}

}  // namespace estocada::bench

#endif  // ESTOCADA_BENCH_BENCH_COMMON_H_
