/// Experiment E4 (paper §IV demo step 3): for each dataset the demo keeps
/// one fragment storing it "as such" in a DMS of its native model,
/// enabling a comparison between the vanilla (one-store) execution and
/// the one enabled by multiple stores — with the performance statistics
/// split across the underlying DMSs and ESTOCADA's runtime.
///
/// Reproduced rows: per-query simulated cost under (a) the vanilla
/// single-relational-store placement, (b) the tuned hybrid placement, for
/// the marketplace queries and two Big-Data-Benchmark-style queries; plus
/// the ablation "first rewriting vs cost-based choice".

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"
#include "common/strings.h"

namespace estocada::bench {
namespace {

using ::estocada::StrCat;
using engine::Value;
using pivot::Adornment;

workload::MarketplaceConfig Config() {
  workload::MarketplaceConfig cfg;
  cfg.num_users = 800;
  cfg.num_products = 200;
  cfg.num_orders = 3000;
  cfg.num_visits = 8000;
  return cfg;
}

/// Vanilla: every relation "as such" in the single relational store
/// (indexes included — a fair single-store deployment).
void DefineVanilla(MarketplaceSystem* m) {
  BenchCheck(m->sys.DefineFragment("F_users(u, n, c) :- mk.users(u, n, c)",
                                   "postgres", {}, {0}),
             "users");
  BenchCheck(m->sys.DefineFragment(
                 "F_orders(o, u, p, t) :- mk.orders(o, u, p, t)", "postgres",
                 {}, {1, 2}),
             "orders");
  BenchCheck(m->sys.DefineFragment(
                 "F_prod(p, n, cat, pr) :- mk.products(p, n, cat, pr)",
                 "postgres", {}, {0, 2}),
             "products");
  BenchCheck(m->sys.DefineFragment("F_carts(u, c) :- mk.carts(u, c)",
                                   "postgres", {}, {0}),
             "carts");
  BenchCheck(m->sys.DefineFragment("F_visits(u, p, d) :- mk.visits(u, p, d)",
                                   "postgres", {}, {0, 1}),
             "visits");
  BenchCheck(m->sys.DefineFragment("F_terms(p, w) :- mk.prodterms(p, w)",
                                   "postgres", {}, {1}),
             "terms");
}

/// Hybrid: each fragment in the store whose blueprint fits it.
void DefineHybrid(MarketplaceSystem* m) {
  BenchCheck(m->sys.DefineFragment("F_users(u, n, c) :- mk.users(u, n, c)",
                                   "postgres", {}, {0}),
             "users");
  BenchCheck(m->sys.DefineFragment(
                 "F_orders(o, u, p, t) :- mk.orders(o, u, p, t)", "postgres",
                 {}, {1, 2}),
             "orders");
  BenchCheck(m->sys.DefineFragment(
                 "F_prod(p, n, cat, pr) :- mk.products(p, n, cat, pr)",
                 "mongodb", {}, {0, 2}),
             "products");
  BenchCheck(m->sys.DefineFragment("F_carts(u, c) :- mk.carts(u, c)", "redis",
                                   {Adornment::kInput, Adornment::kFree}),
             "carts");
  BenchCheck(m->sys.DefineFragment("F_profile(u, n, c) :- mk.users(u, n, c)",
                                   "redis",
                                   {Adornment::kInput, Adornment::kFree,
                                    Adornment::kFree}),
             "profile");
  BenchCheck(m->sys.DefineFragment("F_visits(u, p, d) :- mk.visits(u, p, d)",
                                   "spark"),
             "visits");
  BenchCheck(m->sys.DefineFragment("F_terms(p, w) :- mk.prodterms(p, w)",
                                   "solr",
                                   {Adornment::kFree, Adornment::kInput}),
             "terms");
  BenchCheck(m->sys.DefineFragment(
                 "F_pjoin(u, cat, p, n) :- mk.orders(o, u, p, t), "
                 "mk.visits(u, p, d), mk.products(p, n, cat, pr)",
                 "spark",
                 {Adornment::kInput, Adornment::kInput, Adornment::kFree,
                  Adornment::kFree}),
             "pjoin");
}

struct NamedQuery {
  const char* label;
  const char* text;
  std::map<std::string, Value> params;
};

std::vector<NamedQuery> Queries() {
  return {
      {"cart_lookup", workload::MarketplaceQueries::CartByUser(),
       {{"$uid", Value::Int(3)}}},
      {"user_city", workload::MarketplaceQueries::UserCity(),
       {{"$uid", Value::Int(17)}}},
      {"orders_of_user", workload::MarketplaceQueries::OrdersOfUser(),
       {{"$uid", Value::Int(5)}}},
      {"personalized_search",
       workload::MarketplaceQueries::PersonalizedSearch(),
       {{"$uid", Value::Int(1)}, {"$cat", Value::Str("cat0")}}},
      {"products_in_category",
       workload::MarketplaceQueries::ProductsInCategory(),
       {{"$cat", Value::Str("cat2")}}},
      {"text_search", "fulltext(p) :- mk.prodterms(p, 'lamp')", {}},
      {"text_join",
       "tj(p, n, pr) :- mk.prodterms(p, 'red'), mk.products(p, n, cat, pr)",
       {}},
  };
}

void BM_Query(benchmark::State& state) {
  static auto vanilla = [] {
    auto m = MarketplaceSystem::Create(Config());
    DefineVanilla(m.get());
    return m;
  }();
  static auto hybrid = [] {
    auto m = MarketplaceSystem::Create(Config());
    DefineHybrid(m.get());
    return m;
  }();
  MarketplaceSystem* m =
      state.range(1) == 0 ? vanilla.get() : hybrid.get();
  NamedQuery q = Queries()[static_cast<size_t>(state.range(0))];
  state.SetLabel(StrCat(q.label, state.range(1) == 0 ? "/vanilla" : "/hybrid"));
  double cost = 0;
  int64_t n = 0;
  for (auto _ : state) {
    auto r = m->sys.Query(q.text, q.params);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    cost += r->simulated_cost();
    ++n;
  }
  state.counters["sim_cost"] = n ? cost / static_cast<double>(n) : 0;
}
BENCHMARK(BM_Query)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5, 6}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

void PrintSummary() {
  auto vanilla = MarketplaceSystem::Create(Config());
  DefineVanilla(vanilla.get());
  auto hybrid = MarketplaceSystem::Create(Config());
  DefineHybrid(hybrid.get());

  std::printf("\n== E4: vanilla one-store vs ESTOCADA multi-store "
              "(paper Sec. IV, demo step 3) ==\n");
  std::printf("%-24s %12s %12s %9s  %s\n", "query", "vanilla", "hybrid",
              "speedup", "hybrid per-store split");
  for (const NamedQuery& q : Queries()) {
    auto rv = vanilla->sys.Query(q.text, q.params);
    auto rh = hybrid->sys.Query(q.text, q.params);
    if (!rv.ok() || !rh.ok()) {
      std::printf("%-24s (failed: %s)\n", q.label,
                  (!rv.ok() ? rv.status() : rh.status()).ToString().c_str());
      continue;
    }
    std::string split;
    for (const auto& [store, st] : rh->runtime_stats.per_store) {
      split += StrCat(store, "=", static_cast<int>(st.simulated_cost), " ");
    }
    std::printf("%-24s %12.1f %12.1f %8.1fx  %s\n", q.label,
                rv->simulated_cost(), rh->simulated_cost(),
                rv->simulated_cost() / rh->simulated_cost(), split.c_str());
  }

  // BDB-style dataset with *redundant* fragments of uservisits in both
  // the relational and the parallel store: the cost-based choice sends
  // each query to the store whose blueprint fits it (selective join ->
  // indexed relational; bulk export -> parallel scan).
  auto bdb = workload::GenerateBigDataBench({});
  if (bdb.ok()) {
    stores::RelationalStore pg2;
    stores::ParallelStore spark2(4);
    Estocada hyb;
    (void)hyb.RegisterSchema(bdb->schema);
    (void)hyb.RegisterStore({"pg", catalog::StoreKind::kRelational, &pg2,
                             nullptr, nullptr, nullptr, nullptr});
    (void)hyb.RegisterStore({"spark", catalog::StoreKind::kParallel, nullptr,
                             nullptr, nullptr, &spark2, nullptr});
    (void)hyb.LoadStaging(bdb->staging);
    BenchCheck(hyb.DefineFragment(
                   "F_rank(u, r, d) :- bdb.rankings(u, r, d)", "pg", {},
                   {0, 1}),
               "bdb-rank");
    BenchCheck(hyb.DefineFragment(
                   "F_uv_pg(ip, u, rev, cc) :- bdb.uservisits(ip, u, rev, cc)",
                   "pg", {}, {1}),
               "bdb-uv-pg");
    BenchCheck(hyb.DefineFragment(
                   "F_uv_sp(ip, u, rev, cc) :- bdb.uservisits(ip, u, rev, cc)",
                   "spark"),
               "bdb-uv-spark");
    std::printf("\nredundant fragments + cost-based choice (BDB dataset):\n");
    struct BdbQuery {
      const char* label;
      const char* text;
      std::map<std::string, Value> params;
    };
    BdbQuery bdb_queries[] = {
        {"selective_join",
         workload::BigDataBenchQueries::VisitsToRankedPages(),
         {{"$rank", Value::Int(7)}}},
        {"bulk_export", "all(ip, u, rev) :- bdb.uservisits(ip, u, rev, cc)",
         {}},
    };
    for (const BdbQuery& q : bdb_queries) {
      auto r = hyb.Query(q.text, q.params);
      if (!r.ok()) continue;
      std::string stores_used;
      for (const auto& [store, st] : r->runtime_stats.per_store) {
        stores_used += store;
        stores_used += ' ';
      }
      std::printf("  %-16s cost=%9.1f  planner chose: %s ( %s)\n", q.label,
                  r->simulated_cost(), r->rewriting_text.c_str(),
                  stores_used.c_str());
    }
  }

  // Ablation: cost-based choice vs taking the first rewriting.
  auto explained = hybrid->sys.Explain(
      workload::MarketplaceQueries::PersonalizedSearch(),
      {{"$uid", Value::Int(1)}, {"$cat", Value::Str("cat0")}});
  if (explained.ok() && explained->plans.size() > 1) {
    std::printf("\nablation (cost-based plan choice): best plan est=%.1f; "
                "alternatives:", explained->best_plan().estimated_cost);
    for (size_t i = 0; i < explained->plans.size(); ++i) {
      if (i != explained->best) {
        std::printf(" est=%.1f", explained->plans[i].estimated_cost);
      }
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace estocada::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  estocada::bench::PrintSummary();
  return 0;
}
