/// Experiment E5 (paper §IV demo step 4): given a dataset and a workload,
/// request fragment recommendations from the storage advisor, materialize
/// them, and observe the impact on the selection of query plans.
///
/// Reproduced rows: workload cost on a naive layout, the recommendations
/// the advisor emits under workload drift (a key-lookup-heavy phase and a
/// join-heavy phase), and the cost after applying them.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace estocada::bench {
namespace {

workload::MarketplaceConfig Config() {
  workload::MarketplaceConfig cfg;
  cfg.num_users = 600;
  cfg.num_products = 150;
  cfg.num_orders = 2500;
  cfg.num_visits = 6000;
  return cfg;
}

/// Naive layout: everything relational, un-tuned, plus one junk fragment.
void DefineNaive(MarketplaceSystem* m) {
  BenchCheck(m->sys.DefineFragment("F_users(u, n, c) :- mk.users(u, n, c)",
                                   "postgres"),
             "users");
  BenchCheck(m->sys.DefineFragment(
                 "F_orders(o, u, p, t) :- mk.orders(o, u, p, t)", "postgres"),
             "orders");
  BenchCheck(m->sys.DefineFragment(
                 "F_prod(p, n, cat, pr) :- mk.products(p, n, cat, pr)",
                 "postgres"),
             "products");
  BenchCheck(m->sys.DefineFragment("F_carts(u, c) :- mk.carts(u, c)",
                                   "postgres"),
             "carts");
  BenchCheck(m->sys.DefineFragment("F_visits(u, p, d) :- mk.visits(u, p, d)",
                                   "postgres"),
             "visits");
  BenchCheck(m->sys.DefineFragment("F_terms(p, w) :- mk.prodterms(p, w)",
                                   "postgres"),
             "terms");
  // Redundant duplicate, a valid drop target for the advisor.
  BenchCheck(m->sys.DefineFragment("F_unused(w, p) :- mk.prodterms(p, w)",
                                   "postgres"),
             "unused");
}

workload::WorkloadMix LookupHeavy() {
  workload::WorkloadMix mix;
  mix.cart_lookup = 0.5;
  mix.user_city = 0.4;
  mix.orders_of_user = 0.05;
  mix.personalized_search = 0.0;
  mix.products_in_category = 0.05;
  return mix;
}

workload::WorkloadMix JoinHeavy() {
  workload::WorkloadMix mix;
  mix.cart_lookup = 0.2;
  mix.user_city = 0.1;
  mix.orders_of_user = 0.1;
  mix.personalized_search = 0.5;
  mix.products_in_category = 0.1;
  return mix;
}

constexpr int kPhaseQueries = 150;

/// One advisor cycle: run the phase, advise, apply, rerun; returns
/// (before, after, #recommendations).
struct CycleOutcome {
  double before;
  double after;
  size_t recommendations;
};
CycleOutcome RunCycle(MarketplaceSystem* m, const workload::WorkloadMix& mix,
                      uint64_t seed) {
  CycleOutcome out{};
  m->sys.ClearWorkloadLog();
  out.before = RunWorkloadCost(&m->sys, m->data, mix, kPhaseQueries, seed);
  advisor::AdvisorOptions opts;
  opts.min_count = 10;
  opts.min_mean_cost = 5.0;
  auto recs = m->sys.Advise(opts);
  out.recommendations = recs.size();
  for (const auto& rec : recs) {
    (void)m->sys.ApplyRecommendation(rec);  // Drops may fail if reused: ok.
  }
  m->sys.ClearWorkloadLog();
  out.after = RunWorkloadCost(&m->sys, m->data, mix, kPhaseQueries, seed);
  return out;
}

void BM_AdvisorCycle(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto m = MarketplaceSystem::Create(Config());
    DefineNaive(m.get());
    state.ResumeTiming();
    CycleOutcome out = RunCycle(
        m.get(), state.range(0) == 0 ? LookupHeavy() : JoinHeavy(), 42);
    benchmark::DoNotOptimize(out);
    state.counters["cost_before"] = out.before;
    state.counters["cost_after"] = out.after;
    state.counters["recs"] = static_cast<double>(out.recommendations);
  }
  state.SetLabel(state.range(0) == 0 ? "lookup-heavy" : "join-heavy");
}
BENCHMARK(BM_AdvisorCycle)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void PrintSummary() {
  std::printf("\n== E5: storage advisor impact (paper Sec. IV, demo step 4) "
              "==\n");
  std::printf("%-16s %12s %12s %8s %6s\n", "workload phase", "before",
              "after", "gain", "#recs");
  {
    auto m = MarketplaceSystem::Create(Config());
    DefineNaive(m.get());
    CycleOutcome c = RunCycle(m.get(), LookupHeavy(), 42);
    std::printf("%-16s %12.0f %12.0f %7.1f%% %6zu\n", "lookup-heavy",
                c.before, c.after, 100.0 * (c.before - c.after) / c.before,
                c.recommendations);
    // Workload drift: the same system now sees the join-heavy phase; the
    // advisor reacts with a materialized-join recommendation.
    CycleOutcome c2 = RunCycle(m.get(), JoinHeavy(), 43);
    std::printf("%-16s %12.0f %12.0f %7.1f%% %6zu\n", "join-heavy (drift)",
                c2.before, c2.after,
                100.0 * (c2.before - c2.after) / c2.before,
                c2.recommendations);
  }
}

}  // namespace
}  // namespace estocada::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  estocada::bench::PrintSummary();
  return 0;
}
