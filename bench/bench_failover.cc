/// Chaos benchmark: the fault-tolerant serving layer under injected store
/// failures. Every fragment is replicated on a second store, so the same
/// logical data is reachable through several equivalent rewritings — the
/// paper's rewriting multiplicity, measured here as availability:
///
///  * transient faults at 0/5/20% injection rates, baseline (PR-1
///    behavior: first store error kills the query) vs the fault-tolerant
///    ladder (retry → breaker-driven failover rewriting → staging
///    fallback) — success rate, p99 latency, retry/failover counts;
///  * a hard single-store outage (postgres down): the breaker trips,
///    planning excludes postgres fragments, and every answer must still
///    equal the staging ground truth through an alternative rewriting;
///  * recovery: the store comes back, the half-open probe closes the
///    breaker, and serving returns to the cheapest plans.
///
/// Emits BENCH_failover.json via bench_common.h.

#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/strings.h"
#include "runtime/query_server.h"
#include "stores/fault.h"

namespace estocada::bench {
namespace {

using ::estocada::StrCat;
using runtime::BreakerStateName;
using engine::Row;
using engine::Value;
using pivot::Adornment;
using runtime::MetricsSnapshot;
using runtime::QueryServer;
using runtime::ServerOptions;
using stores::FaultInjector;
using stores::FaultPlan;

workload::MarketplaceConfig Config() {
  workload::MarketplaceConfig cfg;
  cfg.num_users = 400;
  cfg.num_products = 120;
  cfg.num_orders = 1500;
  cfg.num_visits = 4000;
  return cfg;
}

/// Replicated placement: every fragment exists on two different stores,
/// so any single-store outage leaves an alternative rewriting. The
/// primaries follow the tuned hybrid layout; the replicas live wherever
/// the blueprint still fits.
void DefineReplicated(MarketplaceSystem* m) {
  BenchCheck(m->sys.DefineFragment("F_users(u, n, c) :- mk.users(u, n, c)",
                                   "postgres", {}, {0}),
             "users");
  BenchCheck(m->sys.DefineFragment("F_users_r(u, n, c) :- mk.users(u, n, c)",
                                   "mongodb", {}, {0}),
             "users replica");
  BenchCheck(m->sys.DefineFragment(
                 "F_orders(o, u, p, t) :- mk.orders(o, u, p, t)", "postgres",
                 {}, {1, 2}),
             "orders");
  BenchCheck(m->sys.DefineFragment(
                 "F_orders_r(o, u, p, t) :- mk.orders(o, u, p, t)", "spark",
                 {}, {1}),
             "orders replica");
  BenchCheck(m->sys.DefineFragment(
                 "F_prod(p, n, cat, pr) :- mk.products(p, n, cat, pr)",
                 "mongodb", {}, {0, 2}),
             "products");
  BenchCheck(m->sys.DefineFragment(
                 "F_prod_r(p, n, cat, pr) :- mk.products(p, n, cat, pr)",
                 "postgres", {}, {0, 2}),
             "products replica");
  BenchCheck(m->sys.DefineFragment("F_carts(u, c) :- mk.carts(u, c)", "redis",
                                   {Adornment::kInput, Adornment::kFree}),
             "carts");
  BenchCheck(m->sys.DefineFragment("F_carts_r(u, c) :- mk.carts(u, c)",
                                   "postgres", {}, {0}),
             "carts replica");
  BenchCheck(m->sys.DefineFragment("F_visits(u, p, d) :- mk.visits(u, p, d)",
                                   "spark", {}, {0, 1}),
             "visits");
  BenchCheck(m->sys.DefineFragment(
                 "F_visits_r(u, p, d) :- mk.visits(u, p, d)", "postgres", {},
                 {0, 1}),
             "visits replica");
  BenchCheck(m->sys.DefineFragment("F_terms(p, w) :- mk.prodterms(p, w)",
                                   "solr",
                                   {Adornment::kFree, Adornment::kInput}),
             "terms");
  BenchCheck(m->sys.DefineFragment("F_terms_r(p, w) :- mk.prodterms(p, w)",
                                   "postgres", {}, {1}),
             "terms replica");
}

struct ChaosFixture {
  std::unique_ptr<MarketplaceSystem> m;
  FaultInjector injector{/*seed=*/20260806};

  static std::unique_ptr<ChaosFixture> Create() {
    auto f = std::make_unique<ChaosFixture>();
    f->m = MarketplaceSystem::Create(Config());
    if (f->m == nullptr) {
      std::fprintf(stderr, "marketplace setup failed\n");
      std::abort();
    }
    DefineReplicated(f->m.get());
    f->m->postgres.AttachFaultInjector(&f->injector, "postgres");
    f->m->redis.AttachFaultInjector(&f->injector, "redis");
    f->m->mongodb.AttachFaultInjector(&f->injector, "mongodb");
    f->m->spark.AttachFaultInjector(&f->injector, "spark");
    f->m->solr.AttachFaultInjector(&f->injector, "solr");
    return f;
  }

  void SetAllStores(const FaultPlan& plan) {
    for (const char* s : {"postgres", "redis", "mongodb", "spark", "solr"}) {
      injector.SetPlan(s, plan);
    }
  }
};

ServerOptions FaultTolerantOptions() {
  ServerOptions options;
  options.fault_tolerant = true;
  // More attempts than the default serve loop: the chaos phases inject
  // faults into every store at once, so heavy multi-store joins need a
  // deeper retry budget to keep overall success above 99%.
  options.retry.max_attempts = 10;
  options.retry.initial_backoff_micros = 20;
  options.retry.max_backoff_micros = 2'000;
  options.retry.deadline_micros = 0;  // The attempt bound is the budget.
  options.health.failure_threshold = 3;
  options.health.open_cooldown_micros = 20'000;
  return options;
}

ServerOptions BaselineOptions() {
  ServerOptions options;
  options.fault_tolerant = false;
  return options;
}

struct ChaosPhase {
  uint64_t ok = 0;
  uint64_t failed = 0;
  MetricsSnapshot metrics;
  double wall_seconds = 0;

  double SuccessRate() const {
    uint64_t total = ok + failed;
    return total == 0 ? 0.0
                      : static_cast<double>(ok) / static_cast<double>(total);
  }
};

/// Closed loop of `clients` threads x `per_client` workload draws;
/// failures are counted, never aborted on — measuring them is the point.
ChaosPhase RunChaosLoop(QueryServer* server,
                        const workload::MarketplaceData& data, int clients,
                        int per_client) {
  server->ResetMetrics();
  workload::WorkloadMix mix = ScenarioMix();
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> failed{0};
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(5000 + static_cast<uint64_t>(t));
      for (int i = 0; i < per_client; ++i) {
        auto q = workload::DrawQuery(data, mix, &rng);
        auto r = server->Query(q.text, q.parameters);
        if (r.ok()) {
          ++ok;
        } else {
          ++failed;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  ChaosPhase phase;
  phase.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  phase.ok = ok.load();
  phase.failed = failed.load();
  phase.metrics = server->metrics();
  return phase;
}

std::set<std::string> Canon(const std::vector<Row>& rows) {
  std::set<std::string> out;
  for (const Row& r : rows) out.insert(engine::RowToString(r));
  return out;
}

void PrintRow(const char* name, const ChaosPhase& p) {
  std::printf("%-14s %8.2f%% %10.1f %8llu %8llu %9llu %9llu %8llu\n", name,
              100.0 * p.SuccessRate(), p.metrics.p99_micros(),
              static_cast<unsigned long long>(p.metrics.retries),
              static_cast<unsigned long long>(p.metrics.failovers),
              static_cast<unsigned long long>(p.metrics.breaker_trips),
              static_cast<unsigned long long>(p.metrics.degraded),
              static_cast<unsigned long long>(p.failed));
}

void AddPhaseJson(BenchJson* json, const std::string& prefix,
                  const ChaosPhase& p) {
  json->Add(prefix + "_success_rate", p.SuccessRate());
  json->Add(prefix + "_failed", p.failed);
  json->Add(prefix + "_p99_us", p.metrics.p99_micros());
  json->Add(prefix + "_retries", p.metrics.retries);
  json->Add(prefix + "_failovers", p.metrics.failovers);
  json->Add(prefix + "_breaker_trips", p.metrics.breaker_trips);
  json->Add(prefix + "_degraded", p.metrics.degraded);
}

int Run() {
  std::unique_ptr<ChaosFixture> fixture = ChaosFixture::Create();
  ChaosFixture& f = *fixture;
  constexpr int kClients = 4;
  constexpr int kPerClient = 150;
  BenchJson json("failover");
  json.Add("clients", static_cast<uint64_t>(kClients));
  json.Add("queries_per_phase",
           static_cast<uint64_t>(kClients * kPerClient));

  // ---------------------------------------- transient-fault rate sweep --
  std::printf("== transient faults: baseline vs fault-tolerant "
              "(%d clients x %d queries) ==\n",
              kClients, kPerClient);
  std::printf("%-14s %9s %10s %8s %8s %9s %9s %8s\n", "phase", "success",
              "p99(us)", "retries", "failover", "breaker", "degraded",
              "failed");
  double ft20_success = 0;
  for (double rate : {0.0, 0.05, 0.20}) {
    FaultPlan plan;
    plan.transient_fault_rate = rate;
    plan.latency_spike_rate = rate > 0 ? 0.02 : 0.0;
    plan.latency_spike_micros = 300;
    f.SetAllStores(plan);
    const int pct = static_cast<int>(rate * 100);

    {
      QueryServer baseline(&f.m->sys, BaselineOptions());
      ChaosPhase p = RunChaosLoop(&baseline, f.m->data, kClients, kPerClient);
      std::string name = StrCat("baseline/", pct, "%");
      PrintRow(name.c_str(), p);
      AddPhaseJson(&json, StrCat("baseline", pct), p);
    }
    {
      QueryServer ft(&f.m->sys, FaultTolerantOptions());
      ChaosPhase p = RunChaosLoop(&ft, f.m->data, kClients, kPerClient);
      std::string name = StrCat("ft/", pct, "%");
      PrintRow(name.c_str(), p);
      AddPhaseJson(&json, StrCat("ft", pct), p);
      if (pct == 20) ft20_success = p.SuccessRate();
    }
  }
  f.SetAllStores(FaultPlan{});  // Quiesce.

  // ------------------------------------------------ hard store outage --
  // postgres goes down completely. Every fragment has a non-postgres
  // replica, so the breaker trips and answers keep flowing through the
  // alternative rewritings — validated against staging ground truth.
  std::printf("\n== hard outage: postgres down, replicas answer ==\n");
  struct Shape {
    const char* text;
    std::map<std::string, Value> params;
  };
  std::vector<Shape> shapes;
  for (int u = 0; u < 8; ++u) {
    shapes.push_back({workload::MarketplaceQueries::OrdersOfUser(),
                      {{"$uid", Value::Int(u)}}});
    shapes.push_back({workload::MarketplaceQueries::UserCity(),
                      {{"$uid", Value::Int(u)}}});
    shapes.push_back({workload::MarketplaceQueries::CartByUser(),
                      {{"$uid", Value::Int(u)}}});
  }
  std::vector<std::set<std::string>> truth;
  for (const Shape& s : shapes) {
    auto t = f.m->sys.EvaluateOverStaging(s.text, s.params);
    BenchCheck(t.status(), "ground truth");
    truth.push_back(Canon(*t));
  }

  QueryServer ft(&f.m->sys, FaultTolerantOptions());
  f.injector.SetOutage("postgres", true);
  uint64_t outage_ok = 0, outage_failed = 0, outage_mismatch = 0;
  for (size_t i = 0; i < shapes.size(); ++i) {
    auto r = ft.Query(shapes[i].text, shapes[i].params);
    if (!r.ok()) {
      ++outage_failed;
      continue;
    }
    ++outage_ok;
    if (Canon(r->rows) != truth[i]) ++outage_mismatch;
  }
  MetricsSnapshot om = ft.metrics();
  std::printf("outage: %llu ok, %llu failed, %llu mismatches; "
              "failovers=%llu breaker_trips=%llu degraded=%llu; "
              "postgres breaker: %s\n",
              static_cast<unsigned long long>(outage_ok),
              static_cast<unsigned long long>(outage_failed),
              static_cast<unsigned long long>(outage_mismatch),
              static_cast<unsigned long long>(om.failovers),
              static_cast<unsigned long long>(om.breaker_trips),
              static_cast<unsigned long long>(om.degraded),
              BreakerStateName(ft.health().state("postgres")));
  json.Add("outage_ok", outage_ok);
  json.Add("outage_failed", outage_failed);
  json.Add("outage_mismatches", outage_mismatch);
  json.Add("outage_failovers", om.failovers);
  json.Add("outage_breaker_trips", om.breaker_trips);

  // ------------------------------------------------------- recovery --
  // The store comes back; after the cooldown a half-open probe closes
  // the breaker and postgres plans are admitted again.
  f.injector.SetOutage("postgres", false);
  std::this_thread::sleep_for(std::chrono::microseconds(
      FaultTolerantOptions().health.open_cooldown_micros * 2));
  uint64_t recovered_ok = 0;
  for (size_t i = 0; i < shapes.size(); ++i) {
    auto r = ft.Query(shapes[i].text, shapes[i].params);
    if (r.ok() && Canon(r->rows) == truth[i]) ++recovered_ok;
  }
  std::printf("recovery: %llu/%llu ok; postgres breaker: %s\n",
              static_cast<unsigned long long>(recovered_ok),
              static_cast<unsigned long long>(shapes.size()),
              BreakerStateName(ft.health().state("postgres")));
  json.Add("recovered_ok", recovered_ok);
  json.Add("recovery_breaker_closed",
           static_cast<uint64_t>(ft.health().state("postgres") ==
                                 runtime::BreakerState::kClosed
                             ? 1
                             : 0));

  json.Write();

  // Acceptance: >=99% success at 20% fault rate, correct outage answers.
  bool pass = ft20_success >= 0.99 && outage_failed == 0 &&
              outage_mismatch == 0 && recovered_ok == shapes.size();
  std::printf("\nacceptance: ft success @20%% = %.2f%% (>= 99%% required); "
              "outage failures = %llu, mismatches = %llu -> %s\n",
              100.0 * ft20_success,
              static_cast<unsigned long long>(outage_failed),
              static_cast<unsigned long long>(outage_mismatch),
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace estocada::bench

int main() { return estocada::bench::Run(); }
