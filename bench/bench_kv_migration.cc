/// Experiment E1 (paper §II): migrating the key-based fragments (shopping
/// carts, user profiles) from the document/relational stores into a
/// key-value store gains ≈20% on the application workload.
///
/// Reproduced rows: workload cost before/after the migration, the gain,
/// and the per-query-class breakdown. Wall time of serving the workload is
/// measured by google-benchmark; the simulated cost (deterministic,
/// substitution-calibrated — DESIGN.md §3) carries the comparison.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace estocada::bench {
namespace {

using pivot::Adornment;

workload::MarketplaceConfig Config() {
  workload::MarketplaceConfig cfg;
  cfg.num_users = 800;
  cfg.num_products = 200;
  cfg.num_orders = 3000;
  cfg.num_visits = 8000;
  return cfg;
}

/// Release-1 placement: everything in its "natural" store; Postgres
/// tables carry the usual indexes.
void DefineRelease1(MarketplaceSystem* m) {
  BenchCheck(m->sys.DefineFragment("F_users(u, n, c) :- mk.users(u, n, c)",
                                   "postgres", {}, {0}),
             "F_users");
  BenchCheck(m->sys.DefineFragment(
                 "F_orders(o, u, p, t) :- mk.orders(o, u, p, t)", "postgres",
                 {}, {1, 2}),
             "F_orders");
  BenchCheck(m->sys.DefineFragment(
                 "F_prod(p, n, cat, pr) :- mk.products(p, n, cat, pr)",
                 "postgres", {}, {0, 2}),
             "F_prod");
  BenchCheck(m->sys.DefineFragment("F_carts(u, c) :- mk.carts(u, c)",
                                   "mongodb", {}, {0}),
             "F_carts");
  BenchCheck(m->sys.DefineFragment("F_visits(u, p, d) :- mk.visits(u, p, d)",
                                   "spark"),
             "F_visits");
}

/// Release-2 move: carts + a uid-keyed profile projection into the KV
/// store (the paper's Voldemort investigation).
void MigrateToKv(MarketplaceSystem* m) {
  BenchCheck(m->sys.DropFragment("F_carts"), "drop F_carts");
  BenchCheck(m->sys.DefineFragment("F_carts(u, c) :- mk.carts(u, c)", "redis",
                                   {Adornment::kInput, Adornment::kFree}),
             "F_carts@kv");
  BenchCheck(m->sys.DefineFragment(
                 "F_profile(u, n, c) :- mk.users(u, n, c)", "redis",
                 {Adornment::kInput, Adornment::kFree, Adornment::kFree}),
             "F_profile@kv");
}

constexpr int kWorkloadQueries = 200;

void BM_WorkloadBeforeMigration(benchmark::State& state) {
  auto m = MarketplaceSystem::Create(Config());
  DefineRelease1(m.get());
  double cost = 0;
  for (auto _ : state) {
    cost = RunWorkloadCost(&m->sys, m->data, ScenarioMix(),
                           kWorkloadQueries, 1);
    benchmark::DoNotOptimize(cost);
  }
  state.counters["sim_cost"] = cost;
  state.counters["cost_per_query"] = cost / kWorkloadQueries;
}
BENCHMARK(BM_WorkloadBeforeMigration)->Unit(benchmark::kMillisecond);

void BM_WorkloadAfterMigration(benchmark::State& state) {
  auto m = MarketplaceSystem::Create(Config());
  DefineRelease1(m.get());
  MigrateToKv(m.get());
  double cost = 0;
  for (auto _ : state) {
    cost = RunWorkloadCost(&m->sys, m->data, ScenarioMix(),
                           kWorkloadQueries, 1);
    benchmark::DoNotOptimize(cost);
  }
  state.counters["sim_cost"] = cost;
  state.counters["cost_per_query"] = cost / kWorkloadQueries;
}
BENCHMARK(BM_WorkloadAfterMigration)->Unit(benchmark::kMillisecond);

/// Per-class lookup costs, the mechanism behind the migration gain.
void BM_CartLookup(benchmark::State& state) {
  auto m = MarketplaceSystem::Create(Config());
  DefineRelease1(m.get());
  if (state.range(0) == 1) MigrateToKv(m.get());
  Rng rng(7);
  double cost = 0;
  int64_t queries = 0;
  for (auto _ : state) {
    auto r = m->sys.Query(
        workload::MarketplaceQueries::CartByUser(),
        {{"$uid", engine::Value::Int(static_cast<int64_t>(
              rng.Zipf(Config().num_users, 0.8)))}});
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    cost += r->simulated_cost();
    ++queries;
  }
  state.counters["sim_cost_per_lookup"] =
      queries ? cost / static_cast<double>(queries) : 0;
}
BENCHMARK(BM_CartLookup)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

/// Mean simulated cost of a cart lookup over a fixed uid set
/// (deterministic, unlike the Zipf-sampled BM_CartLookup above).
double CartLookupCost(MarketplaceSystem* m) {
  constexpr int kUids = 32;
  std::vector<advisor::CostProbe> probes;
  for (int uid = 0; uid < kUids; ++uid) {
    probes.push_back({workload::MarketplaceQueries::CartByUser(),
                      {{"$uid", engine::Value::Int(uid)}}});
  }
  advisor::CostModel model(SimulatedCostRunner(&m->sys));
  Result<double> mean = model.MeanCost(probes);
  BenchCheck(mean.ok() ? Status::OK() : mean.status(), "cart lookup");
  return *mean;
}

void PrintSummary() {
  auto before = MarketplaceSystem::Create(Config());
  DefineRelease1(before.get());
  double c_before = RunWorkloadCost(&before->sys, before->data,
                                    ScenarioMix(), kWorkloadQueries, 1);
  double cart_before = CartLookupCost(before.get());
  auto after = MarketplaceSystem::Create(Config());
  DefineRelease1(after.get());
  MigrateToKv(after.get());
  double c_after = RunWorkloadCost(&after->sys, after->data, ScenarioMix(),
                                   kWorkloadQueries, 1);
  double cart_after = CartLookupCost(after.get());
  std::printf("\n== E1: key-based fragments -> key-value store (paper Sec. II"
              ", expected ~20%% gain) ==\n");
  std::printf("%-34s %14s\n", "configuration", "workload cost");
  std::printf("%-34s %14.0f\n", "release 1 (doc+relational)", c_before);
  std::printf("%-34s %14.0f\n", "release 2 (carts/profile in KV)", c_after);
  std::printf("gain: %.1f%%   (paper: ~20%%)\n",
              100.0 * (c_before - c_after) / c_before);

  // Machine-readable record for the perf gate. Every numeric key is a
  // deterministic simulated cost where an *increase* is a regression
  // (scripts/bench_compare.py compares non-_us keys exactly, failing only
  // on increase), so the gate catches a planner or migration change that
  // erodes the post-migration layout's advantage. The gain itself is a
  // string: it moves whenever either cost does and higher is better, so
  // it is reported, not gated.
  BenchJson json("kv_migration");
  json.Add("workload_queries", static_cast<uint64_t>(kWorkloadQueries));
  json.Add("workload_cost_release1", c_before);
  json.Add("workload_cost_release2", c_after);
  json.Add("cart_lookup_cost_release1", cart_before);
  json.Add("cart_lookup_cost_release2", cart_after);
  char gain[32];
  std::snprintf(gain, sizeof(gain), "%.1f%%",
                100.0 * (c_before - c_after) / c_before);
  json.Add("gain", std::string(gain));
  json.Write();
}

}  // namespace
}  // namespace estocada::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  estocada::bench::PrintSummary();
  return 0;
}
