/// End-to-end benchmark of the Autopilot (src/tuner): the autonomous
/// self-tuning daemon that closes the advisor -> migration loop.
///
/// Three legs, each against a fresh marketplace deployment:
///
///  1. CONVERGENCE — twin systems (tuned + never-tuned baseline) serve the
///     same query stream, validated answer-for-answer against each other.
///     The workload *shifts mid-run*: lookup-heavy (carts living in the
///     document store) -> join-heavy (the §II personalized-search
///     bottleneck). The Autopilot daemon must converge to the better
///     layout on its own both times — no operator input — and the warm
///     p50 after convergence must beat the never-tuned baseline.
///
///  2. COST MODEL LIES — the deployed parallel store is ~7x more
///     expensive than the advisor's blueprint believes. The launch looks
///     great on paper; the post-cutover measurement catches the
///     regression, reverts the fragment, and blacklists the shape. Zero
///     incorrect answers throughout.
///
///  3. CHAOS — >= 10% of reads fail on every store while client threads
///     validate answers and the daemon keeps tuning. Guardrails
///     (cooldown, blacklist, equivalent-fragment suppression) must keep
///     the launch count bounded: no migration livelock.
///
/// Emits BENCH_autopilot.json; exits non-zero when acceptance fails.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "stores/fault.h"
#include "tuner/tuner.h"

namespace estocada::bench {
namespace {

using engine::Row;
using engine::Value;
using migration::MigrationManager;
using runtime::QueryServer;
using runtime::ServerOptions;
using stores::FaultInjector;
using stores::FaultPlan;
using tuner::Autopilot;
using tuner::AutopilotOptions;

workload::MarketplaceConfig MainConfig() {
  workload::MarketplaceConfig cfg;
  cfg.num_users = 400;
  cfg.num_products = 120;
  cfg.num_orders = 1500;
  cfg.num_visits = 3000;
  return cfg;
}

workload::MarketplaceConfig SmallConfig() {
  workload::MarketplaceConfig cfg;
  cfg.num_users = 200;
  cfg.num_products = 60;
  cfg.num_orders = 800;
  cfg.num_visits = 1600;
  return cfg;
}

/// The layout every leg starts from: reasonable, but not tuned for
/// either traffic phase — carts sit in the document store (the advisor
/// will want them keyed in redis under lookup traffic) and the
/// personalized-search join is computed from base fragments every time.
void DefineInitialLayout(MarketplaceSystem* m) {
  BenchCheck(m->sys.DefineFragment("F_users(u, n, c) :- mk.users(u, n, c)",
                                   "postgres", {}, {0}),
             "users");
  BenchCheck(m->sys.DefineFragment(
                 "F_orders(o, u, p, t) :- mk.orders(o, u, p, t)", "postgres",
                 {}, {1, 2}),
             "orders");
  BenchCheck(m->sys.DefineFragment(
                 "F_prod(p, n, cat, pr) :- mk.products(p, n, cat, pr)",
                 "postgres", {}, {0, 2}),
             "products");
  BenchCheck(m->sys.DefineFragment("F_carts(u, c) :- mk.carts(u, c)",
                                   "mongodb", {}, {0}),
             "carts");
  BenchCheck(m->sys.DefineFragment("F_visits(u, p, d) :- mk.visits(u, p, d)",
                                   "spark", {}, {0, 1}),
             "visits");
}

ServerOptions ChaosServerOptions() {
  ServerOptions options;
  options.fault_tolerant = true;
  options.retry.max_attempts = 10;
  options.retry.initial_backoff_micros = 20;
  options.retry.max_backoff_micros = 2'000;
  options.retry.deadline_micros = 0;
  options.health.failure_threshold = 3;
  options.health.open_cooldown_micros = 10'000;
  return options;
}

std::set<std::string> Canon(const std::vector<Row>& rows) {
  std::set<std::string> out;
  for (const Row& r : rows) out.insert(engine::RowToString(r));
  return out;
}

workload::WorkloadMix LookupMix() {
  workload::WorkloadMix mix;
  mix.cart_lookup = 0.60;
  mix.user_city = 0.30;
  mix.orders_of_user = 0.10;
  mix.personalized_search = 0;
  mix.products_in_category = 0;
  return mix;
}

workload::WorkloadMix JoinMix() {
  workload::WorkloadMix mix;
  mix.cart_lookup = 0.10;
  mix.user_city = 0.05;
  mix.orders_of_user = 0.05;
  mix.personalized_search = 0.75;
  mix.products_in_category = 0.05;
  return mix;
}

struct TwinCounters {
  uint64_t answered = 0;
  uint64_t failed = 0;
  uint64_t mismatches = 0;
};

/// Serves `n` identical draws on both servers and cross-validates every
/// answer: the never-tuned twin doubles as the correctness oracle for
/// whatever layout the Autopilot has moved the tuned system to.
void DriveTwin(QueryServer* tuned, QueryServer* baseline,
               const workload::MarketplaceData& data,
               const workload::WorkloadMix& mix, int n, uint64_t seed,
               TwinCounters* c) {
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    auto q = workload::DrawQuery(data, mix, &rng);
    auto rt = tuned->Query(q.text, q.parameters);
    auto rb = baseline->Query(q.text, q.parameters);
    ++c->answered;
    if (!rt.ok() || !rb.ok()) {
      ++c->failed;
    } else if (Canon(rt->rows) != Canon(rb->rows)) {
      ++c->mismatches;
    }
  }
}

/// Waits until the daemon has harvested every launch and stopped finding
/// new work (no launch for ~0.4s of ticks). Returns false on deadline —
/// the no-livelock acceptance for the daemon legs.
bool AwaitQuiescence(Autopilot* pilot, int deadline_sec) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(deadline_sec);
  uint64_t stable_launches = pilot->metrics().launches;
  int stable_polls = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    auto m = pilot->metrics();
    if (pilot->in_flight() == 0 && m.launches == stable_launches) {
      if (++stable_polls >= 40) return true;
    } else {
      stable_polls = 0;
      stable_launches = m.launches;
    }
  }
  return false;
}

/// Leg 1: autonomous convergence across a mid-run workload shift, twin
/// systems validating each other.
bool RunConvergenceLeg(BenchJson* json) {
  bool ok = true;
  auto tuned = MarketplaceSystem::Create(MainConfig());
  auto base = MarketplaceSystem::Create(MainConfig());
  if (tuned == nullptr || base == nullptr) {
    std::fprintf(stderr, "FAIL: marketplace setup\n");
    return false;
  }
  DefineInitialLayout(tuned.get());
  DefineInitialLayout(base.get());
  QueryServer tuned_server(&tuned->sys);
  QueryServer base_server(&base->sys);
  MigrationManager manager(&tuned_server);

  AutopilotOptions opt;
  opt.advisor.min_count = 40;       // Only the dominant shapes qualify.
  opt.advisor.min_mean_cost = 5.0;  // Doc-store lookups cost ~13.
  opt.cooldown_ticks = 20;
  opt.tick_period_micros = 5'000;
  Autopilot pilot(&tuned_server, &manager, opt);
  pilot.Start();

  std::printf("== leg 1: convergence across a workload shift ==\n");
  TwinCounters traffic;

  // Phase A: lookup-heavy. The daemon should move the hot lookup shapes
  // onto the key-value store while the stream is still being served.
  DriveTwin(&tuned_server, &base_server, tuned->data, LookupMix(), 600,
            /*seed=*/101, &traffic);
  if (!AwaitQuiescence(&pilot, 60)) {
    std::fprintf(stderr, "FAIL: phase A never quiesced (livelock?)\n");
    ok = false;
  }
  auto m = pilot.metrics();
  const uint64_t phase_a_launches = m.launches;
  const uint64_t phase_a_completions = m.completions;
  std::printf("phase A (lookup-heavy): %s\n", m.ToString().c_str());
  if (phase_a_completions < 1) {
    std::fprintf(stderr, "FAIL: phase A: no autonomous convergence\n");
    ok = false;
  }
  const double lookup_cost_tuned =
      RunWorkloadCost(&tuned->sys, tuned->data, LookupMix(), 200, 7) / 200;
  const double lookup_cost_base =
      RunWorkloadCost(&base->sys, base->data, LookupMix(), 200, 7) / 200;

  // Phase B: the workload shifts under the daemon's feet — the §II
  // personalized-search join dominates. The evidence for the old pattern
  // fades; the advisor flips to join-heavy; the daemon materializes the
  // join in the parallel store.
  DriveTwin(&tuned_server, &base_server, tuned->data, JoinMix(), 600,
            /*seed=*/202, &traffic);
  if (!AwaitQuiescence(&pilot, 60)) {
    std::fprintf(stderr, "FAIL: phase B never quiesced (livelock?)\n");
    ok = false;
  }
  m = pilot.metrics();
  std::printf("phase B (join-heavy):   %s\n", m.ToString().c_str());
  if (m.completions <= phase_a_completions) {
    std::fprintf(stderr,
                 "FAIL: phase B: no convergence after the workload shift\n");
    ok = false;
  }
  if (m.regressions != 0 || m.reverts != 0) {
    std::fprintf(stderr, "FAIL: honest cost model still saw regressions\n");
    ok = false;
  }
  // Stop the daemon before the warm measurement so a mid-measurement
  // cutover cannot blur the percentile comparison.
  pilot.Stop();

  // Warm comparison on the shifted workload: identical draws, metrics
  // reset, queries interleaved so machine noise hits both servers alike.
  tuned_server.ResetMetrics();
  base_server.ResetMetrics();
  DriveTwin(&tuned_server, &base_server, tuned->data, JoinMix(), 500,
            /*seed=*/303, &traffic);
  const double p50_tuned = tuned_server.metrics().p50_micros();
  const double p50_base = base_server.metrics().p50_micros();
  const double warm_cost_tuned =
      RunWorkloadCost(&tuned->sys, tuned->data, JoinMix(), 200, 9) / 200;
  const double warm_cost_base =
      RunWorkloadCost(&base->sys, base->data, JoinMix(), 200, 9) / 200;

  std::printf("traffic: %llu answered, %llu failed, %llu mismatches\n",
              static_cast<unsigned long long>(traffic.answered),
              static_cast<unsigned long long>(traffic.failed),
              static_cast<unsigned long long>(traffic.mismatches));
  std::printf("lookup cost/query: tuned %.2f vs baseline %.2f\n",
              lookup_cost_tuned, lookup_cost_base);
  std::printf("warm cost/query:   tuned %.2f vs baseline %.2f\n",
              warm_cost_tuned, warm_cost_base);
  std::printf("warm p50:          tuned %.1fus vs baseline %.1fus\n",
              p50_tuned, p50_base);

  if (traffic.failed != 0 || traffic.mismatches != 0) {
    std::fprintf(stderr, "FAIL: tuned system disagreed with the baseline\n");
    ok = false;
  }
  if (lookup_cost_tuned >= lookup_cost_base) {
    std::fprintf(stderr, "FAIL: no lookup-phase improvement\n");
    ok = false;
  }
  if (warm_cost_tuned >= warm_cost_base) {
    std::fprintf(stderr, "FAIL: no warm cost improvement\n");
    ok = false;
  }
  if (p50_tuned >= p50_base) {
    std::fprintf(stderr, "FAIL: warm p50 does not beat the baseline\n");
    ok = false;
  }

  json->Add("convergence_answered", traffic.answered);
  json->Add("convergence_mismatches", traffic.mismatches);
  json->Add("convergence_failed", traffic.failed);
  json->Add("convergence_launches", m.launches);
  json->Add("convergence_completions", m.completions);
  json->Add("convergence_phase_a_launches", phase_a_launches);
  json->Add("convergence_regressions", m.regressions);
  json->Add("convergence_lookup_cost_tuned", lookup_cost_tuned);
  json->Add("convergence_lookup_cost_baseline", lookup_cost_base);
  json->Add("convergence_warm_cost_tuned", warm_cost_tuned);
  json->Add("convergence_warm_cost_baseline", warm_cost_base);
  json->Add("convergence_warm_p50_tuned_us", p50_tuned);
  json->Add("convergence_warm_p50_baseline_us", p50_base);
  return ok;
}

/// Leg 2: the deployed parallel store costs ~7x the advisor's blueprint.
/// The seeded regression must be caught, reverted, and blacklisted with
/// zero incorrect answers.
bool RunLyingCostModelLeg(BenchJson* json) {
  bool ok = true;
  // per_operation 400 vs the blueprint's 60: every probe of a fragment
  // placed there is ~7x the advisor's promise.
  auto m = MarketplaceSystem::Create(
      SmallConfig(), stores::CostProfile{/*per_operation=*/400.0,
                                         /*per_row_scanned=*/0.01,
                                         /*per_index_lookup=*/0.6,
                                         /*per_row_returned=*/0.05});
  if (m == nullptr) {
    std::fprintf(stderr, "FAIL: marketplace setup\n");
    return false;
  }
  DefineInitialLayout(m.get());
  QueryServer server(&m->sys);
  MigrationManager manager(&server);

  AutopilotOptions opt;
  opt.advisor.min_count = 8;
  opt.advisor.min_mean_cost = 5.0;
  opt.cooldown_ticks = 2;
  // The SLO knob that catches this lie: materializing the join IS a
  // marginal win even on the expensive spark (one 400-cost probe instead
  // of a join that includes one), so a plain >= check would wave it
  // through. Autonomous cutovers must *pay for themselves*: demand 25%.
  opt.min_realized_improvement = 0.25;
  Autopilot pilot(&server, &manager, opt);

  std::printf("== leg 2: cost model lies (expensive parallel store) ==\n");
  const char* join_q =
      "q(o, p) :- mk.orders(o, $uid, p, t), mk.visits($uid, p, d)";
  auto drive = [&](int n) {
    for (int i = 0; i < n; ++i) {
      auto r = server.Query(join_q, {{"$uid", Value::Int(i % 50)}});
      BenchCheck(r.status(), "join traffic");
    }
  };
  drive(24);
  BenchCheck(pilot.TickOnce(), "tick");
  // Harvest the launch (ticking until the migration lands).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (pilot.in_flight() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    BenchCheck(pilot.TickOnce(), "tick");
  }
  auto metrics = pilot.metrics();
  std::printf("%s\n", metrics.ToString().c_str());
  for (const tuner::Decision& d : pilot.decision_log()) {
    std::printf("  %s\n", d.ToString().c_str());
  }

  if (metrics.launches != 1 || metrics.regressions != 1 ||
      metrics.reverts != 1 || metrics.blacklist_size != 1 ||
      metrics.completions != 0) {
    std::fprintf(stderr,
                 "FAIL: expected exactly launch+regression+revert+blacklist\n");
    ok = false;
  }
  if (m->sys.catalog().GetFragment("F_auto_0").ok()) {
    std::fprintf(stderr, "FAIL: regressed fragment still in the catalog\n");
    ok = false;
  }
  // Blacklisted: more of the same traffic must not relaunch.
  drive(8);
  BenchCheck(pilot.TickOnce(), "tick");
  metrics = pilot.metrics();
  if (metrics.launches != 1 || metrics.skipped_blacklist < 1) {
    std::fprintf(stderr, "FAIL: blacklist did not stick\n");
    ok = false;
  }
  // Zero incorrect answers: the reverted layout still serves the truth.
  uint64_t incorrect = 0;
  for (int uid = 0; uid < 8; ++uid) {
    std::map<std::string, Value> params{{"$uid", Value::Int(uid)}};
    auto truth = m->sys.EvaluateOverStaging(join_q, params);
    auto served = server.Query(join_q, params);
    BenchCheck(truth.status(), "truth");
    BenchCheck(served.status(), "served");
    if (Canon(served->rows) != Canon(*truth)) ++incorrect;
  }
  if (incorrect != 0) {
    std::fprintf(stderr, "FAIL: %llu incorrect answers after revert\n",
                 static_cast<unsigned long long>(incorrect));
    ok = false;
  }

  json->Add("lie_launches", metrics.launches);
  json->Add("lie_regressions", metrics.regressions);
  json->Add("lie_reverts", metrics.reverts);
  json->Add("lie_blacklist_size", metrics.blacklist_size);
  json->Add("lie_skipped_blacklist", metrics.skipped_blacklist);
  json->Add("lie_incorrect", incorrect);
  return ok;
}

/// Leg 3: the daemon tunes under >= 10% injected faults while clients
/// validate every answer. Guardrails must bound the launch count.
bool RunChaosLeg(BenchJson* json) {
  constexpr double kFaultRate = 0.10;
  constexpr int kClients = 2;
  bool ok = true;
  auto m = MarketplaceSystem::Create(SmallConfig());
  if (m == nullptr) {
    std::fprintf(stderr, "FAIL: marketplace setup\n");
    return false;
  }
  DefineInitialLayout(m.get());

  // Ground truth before the chaos starts (staging is fault-free anyway).
  struct Probe {
    std::string text;
    std::map<std::string, Value> params;
    std::set<std::string> truth;
  };
  std::vector<Probe> probes;
  for (int u = 0; u < 12; ++u) {
    for (const char* text : {workload::MarketplaceQueries::CartByUser(),
                             workload::MarketplaceQueries::UserCity(),
                             workload::MarketplaceQueries::OrdersOfUser()}) {
      Probe p{text, {{"$uid", Value::Int(u)}}, {}};
      auto t = m->sys.EvaluateOverStaging(p.text, p.params);
      BenchCheck(t.status(), "ground truth");
      p.truth = Canon(*t);
      probes.push_back(std::move(p));
    }
  }

  FaultInjector injector{/*seed=*/20260808};
  m->postgres.AttachFaultInjector(&injector, "postgres");
  m->redis.AttachFaultInjector(&injector, "redis");
  m->mongodb.AttachFaultInjector(&injector, "mongodb");
  m->spark.AttachFaultInjector(&injector, "spark");
  m->solr.AttachFaultInjector(&injector, "solr");
  FaultPlan plan;
  plan.transient_fault_rate = kFaultRate;
  for (const char* s : {"postgres", "redis", "mongodb", "spark", "solr"}) {
    injector.SetPlan(s, plan);
  }

  QueryServer server(&m->sys, ChaosServerOptions());
  MigrationManager manager(&server);
  AutopilotOptions opt;
  opt.advisor.min_count = 8;
  opt.advisor.min_mean_cost = 5.0;
  opt.cooldown_ticks = 10;
  opt.tick_period_micros = 5'000;
  // Small batches + deep retry budget: the same envelope bench_migration
  // proves out under this fault rate.
  opt.migration.throttle.batch_rows = 8;
  opt.migration.max_target_retries = 100000;
  opt.migration.retry_backoff_micros = 50;
  Autopilot pilot(&server, &manager, opt);

  std::printf("== leg 3: tuning under %d%% faults + %d clients ==\n",
              static_cast<int>(kFaultRate * 100), kClients);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> answered{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> incorrect{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      size_t i = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_acquire)) {
        const Probe& p = probes[i % probes.size()];
        auto r = server.Query(p.text, p.params);
        ++answered;
        if (!r.ok()) {
          ++failed;
        } else if (Canon(r->rows) != p.truth) {
          ++incorrect;
        }
        i += kClients;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  pilot.Start();
  const bool quiesced = AwaitQuiescence(&pilot, 60);
  pilot.Stop();
  stop.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();
  for (const char* s : {"postgres", "redis", "mongodb", "spark", "solr"}) {
    injector.SetPlan(s, FaultPlan{});
  }

  auto metrics = pilot.metrics();
  std::printf("%s\n", metrics.ToString().c_str());
  std::printf("traffic: %llu answered, %llu failed, %llu incorrect\n",
              static_cast<unsigned long long>(answered.load()),
              static_cast<unsigned long long>(failed.load()),
              static_cast<unsigned long long>(incorrect.load()));

  if (!quiesced) {
    std::fprintf(stderr, "FAIL: daemon never quiesced under faults\n");
    ok = false;
  }
  if (metrics.launches < 1 || metrics.completions < 1) {
    std::fprintf(stderr, "FAIL: no migration completed under faults\n");
    ok = false;
  }
  // No livelock: three hot lookup shapes can warrant at most one cutover
  // each; cooldown + blacklist + equivalent-fragment suppression must
  // keep retries from snowballing past that.
  if (metrics.launches > 6) {
    std::fprintf(stderr, "FAIL: %llu launches — migration livelock\n",
                 static_cast<unsigned long long>(metrics.launches));
    ok = false;
  }
  if (failed.load() != 0 || incorrect.load() != 0) {
    std::fprintf(stderr, "FAIL: chaos traffic saw %llu failed / %llu "
                 "incorrect answers\n",
                 static_cast<unsigned long long>(failed.load()),
                 static_cast<unsigned long long>(incorrect.load()));
    ok = false;
  }

  json->Add("chaos_fault_rate", kFaultRate);
  json->Add("chaos_answered", answered.load());
  json->Add("chaos_failed", failed.load());
  json->Add("chaos_incorrect", incorrect.load());
  json->Add("chaos_launches", metrics.launches);
  json->Add("chaos_completions", metrics.completions);
  json->Add("chaos_aborts", metrics.aborts);
  json->Add("chaos_reverts", metrics.reverts);
  return ok;
}

int Run() {
  BenchJson json("autopilot");
  const bool convergence = RunConvergenceLeg(&json);
  const bool lie = RunLyingCostModelLeg(&json);
  const bool chaos = RunChaosLeg(&json);
  json.Add("accepted_convergence", static_cast<uint64_t>(convergence));
  json.Add("accepted_cost_model_lies", static_cast<uint64_t>(lie));
  json.Add("accepted_chaos", static_cast<uint64_t>(chaos));
  json.Write();
  const bool ok = convergence && lie && chaos;
  std::printf("%s\n", ok ? "ACCEPTED: autonomous convergence, regression "
                           "revert, bounded chaos tuning"
                         : "REJECTED");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace estocada::bench

int main() { return estocada::bench::Run(); }
