/// Error-path coverage for the native-language frontends (frontend/sql.cc
/// and frontend/docfind.cc): a grammar-mutation corpus checks that every
/// malformed input is rejected with a Status — parsers must never crash,
/// hang, or let garbage through by silently ignoring trailing input.
///
/// The corpus is seeded and deterministic; MutateString applies random
/// truncations, splices, and token/byte injections to valid base inputs.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "encoding/encodings.h"
#include "frontend/docfind.h"
#include "frontend/sql.h"
#include "pivot/parser.h"
#include "pivot/schema.h"

namespace estocada::frontend {
namespace {

using pivot::Schema;

Schema ShopSchema() {
  Schema s;
  auto users = encoding::RelationalEncoding("shop", "users",
                                            {"uid", "name", "city"}, {"uid"});
  auto orders = encoding::RelationalEncoding("shop", "orders",
                                             {"oid", "uid", "total"}, {"oid"});
  EXPECT_TRUE(users.ok() && orders.ok());
  EXPECT_TRUE(s.Merge(*users).ok());
  EXPECT_TRUE(s.Merge(*orders).ok());
  return s;
}

Schema CatalogDocSchema() {
  Schema s;
  auto enc = encoding::DocumentEncoding(
      "mk", "products",
      {{"pid", true}, {"name", true}, {"category", true}, {"tags", false}});
  EXPECT_TRUE(enc.ok());
  EXPECT_TRUE(s.Merge(*enc).ok());
  return s;
}

/// Tokens the mutator splices in: grammar keywords, punctuation, pivot
/// syntax that must not leak through string interpolation, and junk.
const std::vector<std::string>& MutationTokens() {
  static const std::vector<std::string> kTokens = {
      "SELECT", "FROM",  "WHERE", "AND", ",", ".", "=", "(", ")",
      "''",     "'",     "$",     "$p",  ";", " ", "x", "0", "-",
      ":-",     "q(x)",  "\t",    "\n",  "\"", "*", "a.b", "_N3",
  };
  return kTokens;
}

std::string MutateString(const std::string& base, Rng& rng) {
  std::string out = base;
  size_t edits = 1 + rng.Uniform(4);
  for (size_t e = 0; e < edits; ++e) {
    switch (rng.Uniform(4)) {
      case 0:  // Truncate at a random point.
        if (!out.empty()) out.resize(rng.Uniform(out.size()));
        break;
      case 1: {  // Insert a token at a random position.
        const auto& toks = MutationTokens();
        size_t pos = out.empty() ? 0 : rng.Uniform(out.size() + 1);
        out.insert(pos, toks[rng.Uniform(toks.size())]);
        break;
      }
      case 2:  // Delete a random span.
        if (!out.empty()) {
          size_t pos = rng.Uniform(out.size());
          out.erase(pos, 1 + rng.Uniform(3));
        }
        break;
      case 3:  // Flip a byte to a printable character.
        if (!out.empty()) {
          out[rng.Uniform(out.size())] =
              static_cast<char>(' ' + rng.Uniform(95));
        }
        break;
    }
  }
  return out;
}

// ------------------------------------------------------------- SQL --

const std::vector<std::string>& SqlCorpus() {
  static const std::vector<std::string> kCorpus = {
      "SELECT u.name FROM shop.users u",
      "SELECT u.uid, u.city FROM shop.users u WHERE u.city = 'paris'",
      "SELECT u.name AS n, o.total FROM shop.users u, shop.orders o "
      "WHERE u.uid = o.uid",
      "SELECT o.total FROM shop.orders o WHERE o.uid = $id AND o.total = 5",
  };
  return kCorpus;
}

TEST(SqlFuzz, CorpusBaselineParses) {
  Schema schema = ShopSchema();
  for (const std::string& sql : SqlCorpus()) {
    EXPECT_TRUE(SqlToCq(sql, schema).ok()) << sql;
  }
}

TEST(SqlFuzz, MutatedInputsNeverCrash) {
  Schema schema = ShopSchema();
  Rng rng(0xf00dULL);
  size_t rejected = 0, accepted = 0;
  for (size_t i = 0; i < 3000; ++i) {
    const std::string& base = SqlCorpus()[i % SqlCorpus().size()];
    std::string mutated = MutateString(base, rng);
    auto r = SqlToCq(mutated, schema);  // Must return, never crash.
    if (r.ok()) {
      ++accepted;
      EXPECT_TRUE(r->Validate().ok())
          << "accepted SQL produced invalid CQ: " << mutated;
    } else {
      ++rejected;
      EXPECT_FALSE(r.status().message().empty()) << mutated;
    }
  }
  // Sanity: the mutator actually produces broken inputs (and the
  // occasional still-valid one).
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(accepted, 0u);
}

TEST(SqlFuzz, TargetedMalformedInputs) {
  Schema schema = ShopSchema();
  for (const char* sql : {
           "",
           "SELECT",
           "SELECT FROM",
           "SELECT u.name",
           "SELECT u.name FROM",
           "SELECT u.name FROM shop.users",         // missing alias
           "SELECT u.name FROM shop.nosuch u",      // unknown table
           "SELECT u.nocol FROM shop.users u",      // unknown column
           "SELECT x.name FROM shop.users u",       // unknown alias
           "SELECT * FROM shop.users u",            // star: unsupported
           "SELECT u.name FROM shop.users u WHERE", // dangling WHERE
           "SELECT u.name FROM shop.users u WHERE u.uid",
           "SELECT u.name FROM shop.users u WHERE u.uid < 3",
           "SELECT u.name FROM shop.users u WHERE u.uid = ",
           "SELECT u.name FROM shop.users u WHERE u.uid = 'x' AND",
           "SELECT u.name FROM shop.users u, FROM shop.orders o",
           "SELECT u.name FROM (SELECT * FROM shop.users) u",
       }) {
    auto r = SqlToCq(sql, schema);
    EXPECT_FALSE(r.ok()) << "accepted malformed SQL: " << sql;
  }
}

// --------------------------------------------------------- DocFind --

TEST(DocFindFuzz, MutatedSpecsNeverCrash) {
  Schema schema = CatalogDocSchema();
  Rng rng(0xbeefULL);
  const std::vector<std::string> paths = {"pid", "name", "category", "tags"};
  const std::vector<std::string> values = {"'home'", "42", "$p", "2.5",
                                           "true", "null"};
  size_t rejected = 0;
  for (size_t i = 0; i < 3000; ++i) {
    DocFindSpec spec;
    spec.collection = MutateString("mk.products", rng);
    size_t nf = rng.Uniform(3);
    for (size_t f = 0; f < nf; ++f) {
      spec.filters.push_back({MutateString(paths[rng.Uniform(paths.size())], rng),
                              MutateString(values[rng.Uniform(values.size())], rng)});
    }
    size_t nr = rng.Uniform(3);
    for (size_t r = 0; r < nr; ++r) {
      spec.returns.push_back(MutateString(paths[rng.Uniform(paths.size())], rng));
    }
    spec.include_doc_id = rng.Chance(0.5);
    auto r = DocFindToCq(spec, schema);  // Must return, never crash.
    if (r.ok()) {
      EXPECT_TRUE(r->Validate().ok()) << "accepted spec produced invalid CQ";
    } else {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);
}

/// Regression: an empty filter value made DocFindToCq index into an empty
/// term list ("X()" parses as a zero-term atom) and crash. Any filter
/// value that is not exactly one literal or parameter must be rejected.
TEST(DocFindFuzz, EmptyAndCompositeFilterValuesAreRejected) {
  Schema schema = CatalogDocSchema();
  for (const char* value : {
           "",            // zero terms — the original crash
           " ",           //
           "1, 2",        // two terms
           "'a' junk",    // trailing garbage after a literal
           "x",           // bare variable
           "'a'), Y('b'", // atom-injection through interpolation
           ")",           //
       }) {
    DocFindSpec spec;
    spec.collection = "mk.products";
    spec.filters = {{"category", value}};
    spec.returns = {"pid"};
    auto r = DocFindToCq(spec, schema);
    EXPECT_FALSE(r.ok()) << "accepted filter value: '" << value << "'";
  }
}

/// Regression: ParseAtomList silently ignored trailing input, which let
/// interpolated strings smuggle extra atoms or junk past the parser.
TEST(DocFindFuzz, PivotAtomListRejectsTrailingInput) {
  EXPECT_TRUE(pivot::ParseAtomList("R(x), S(x, y)").ok());
  for (const char* text : {"R(x) junk", "R(x), ", "R(x)) ", "R(x), S(x,"}) {
    auto r = pivot::ParseAtomList(text);
    EXPECT_FALSE(r.ok()) << "accepted trailing input: '" << text << "'";
  }
}

}  // namespace
}  // namespace estocada::frontend
