#include <gtest/gtest.h>

#include <set>

#include "engine/expr.h"
#include "engine/operator.h"
#include "engine/value.h"

namespace estocada::engine {
namespace {

OperatorPtr Rows(std::vector<std::string> cols, std::vector<Row> rows) {
  return std::make_unique<RowsOperator>(std::move(cols), std::move(rows));
}

std::vector<Row> MustCollect(Operator* op) {
  auto r = Collect(op);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(*r);
}

// ------------------------------------------------------------------ Expr --

TEST(ExprTest, ColumnAndConst) {
  Row row{Value::Int(5), Value::Str("x")};
  EXPECT_EQ(*Expr::Column(0)->Eval(row), Value::Int(5));
  EXPECT_EQ(*Expr::Const(Value::Str("k"))->Eval(row), Value::Str("k"));
  EXPECT_EQ(Expr::Column(9)->Eval(row).status().code(),
            StatusCode::kOutOfRange);
}

TEST(ExprTest, Comparisons) {
  Row row{Value::Int(5), Value::Int(7)};
  auto lt = Expr::Binary(Expr::Op::kLt, Expr::Column(0), Expr::Column(1));
  auto ge = Expr::Binary(Expr::Op::kGe, Expr::Column(0), Expr::Column(1));
  EXPECT_TRUE(*lt->EvalBool(row));
  EXPECT_FALSE(*ge->EvalBool(row));
  // Null comparisons are false.
  Row with_null{Value::Null(), Value::Int(1)};
  auto eq = Expr::Binary(Expr::Op::kEq, Expr::Column(0), Expr::Column(1));
  EXPECT_FALSE(*eq->EvalBool(with_null));
}

TEST(ExprTest, BooleanConnectives) {
  Row row{Value::Int(1)};
  auto t = Expr::Binary(Expr::Op::kEq, Expr::Column(0),
                        Expr::Const(Value::Int(1)));
  auto f = Expr::Binary(Expr::Op::kEq, Expr::Column(0),
                        Expr::Const(Value::Int(2)));
  EXPECT_TRUE(*Expr::Binary(Expr::Op::kOr, f, t)->EvalBool(row));
  EXPECT_FALSE(*Expr::Binary(Expr::Op::kAnd, f, t)->EvalBool(row));
  EXPECT_TRUE(*Expr::Not(f)->EvalBool(row));
}

TEST(ExprTest, Arithmetic) {
  Row row{Value::Int(6), Value::Int(4), Value::Real(0.5)};
  auto add = Expr::Binary(Expr::Op::kAdd, Expr::Column(0), Expr::Column(1));
  EXPECT_EQ(*add->Eval(row), Value::Int(10));
  auto mixed = Expr::Binary(Expr::Op::kMul, Expr::Column(0), Expr::Column(2));
  EXPECT_EQ(*mixed->Eval(row), Value::Real(3.0));
  auto div = Expr::Binary(Expr::Op::kDiv, Expr::Column(0), Expr::Column(1));
  EXPECT_DOUBLE_EQ(div->Eval(row)->real_value(), 1.5);
  auto div0 = Expr::Binary(Expr::Op::kDiv, Expr::Column(0),
                           Expr::Const(Value::Int(0)));
  EXPECT_EQ(div0->Eval(row).status().code(), StatusCode::kInvalidArgument);
  auto bad = Expr::Binary(Expr::Op::kAdd, Expr::Column(0),
                          Expr::Const(Value::Bool(true)));
  EXPECT_FALSE(bad->Eval(row).ok());
}

TEST(ExprTest, StringConcat) {
  Row row{Value::Str("a"), Value::Str("b")};
  auto cat = Expr::Binary(Expr::Op::kAdd, Expr::Column(0), Expr::Column(1));
  EXPECT_EQ(*cat->Eval(row), Value::Str("ab"));
}

TEST(ExprTest, ToStringRendering) {
  auto e = Expr::Binary(Expr::Op::kAnd,
                        Expr::Binary(Expr::Op::kEq, Expr::Column(0),
                                     Expr::Const(Value::Int(1))),
                        Expr::Not(Expr::Column(1)));
  EXPECT_EQ(e->ToString(), "(($0 = 1) AND NOT($1))");
}

// ------------------------------------------------------------- Operators --

TEST(OperatorTest, RowsAndCollect) {
  auto op = Rows({"a"}, {{Value::Int(1)}, {Value::Int(2)}});
  auto rows = MustCollect(op.get());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][0], Value::Int(2));
  EXPECT_EQ(op->columns(), (std::vector<std::string>{"a"}));
}

TEST(OperatorTest, CallbackScanLazy) {
  int calls = 0;
  CallbackScanOperator op(
      {"x"},
      [&calls]() -> Result<std::vector<Row>> {
        ++calls;
        return std::vector<Row>{{Value::Int(9)}};
      },
      "kv.Get");
  EXPECT_EQ(calls, 0);
  auto rows = MustCollect(&op);
  EXPECT_EQ(calls, 1);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(9));
}

TEST(OperatorTest, CallbackScanPropagatesErrors) {
  CallbackScanOperator op(
      {"x"},
      []() -> Result<std::vector<Row>> {
        return Status::NotFound("gone");
      },
      "src");
  EXPECT_EQ(Collect(&op).status().code(), StatusCode::kNotFound);
}

TEST(OperatorTest, Filter) {
  auto pred = Expr::Binary(Expr::Op::kGt, Expr::Column(0),
                           Expr::Const(Value::Int(1)));
  FilterOperator op(Rows({"a"}, {{Value::Int(1)}, {Value::Int(2)},
                                 {Value::Int(3)}}),
                    pred);
  auto rows = MustCollect(&op);
  EXPECT_EQ(rows.size(), 2u);
}

TEST(OperatorTest, Project) {
  ProjectOperator op(
      Rows({"a", "b"}, {{Value::Int(2), Value::Int(3)}}), {"sum", "b"},
      {Expr::Binary(Expr::Op::kAdd, Expr::Column(0), Expr::Column(1)),
       Expr::Column(1)});
  auto rows = MustCollect(&op);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(5));
  EXPECT_EQ(op.columns(), (std::vector<std::string>{"sum", "b"}));
}

TEST(OperatorTest, LimitAndDistinct) {
  LimitOperator limited(
      Rows({"a"}, {{Value::Int(1)}, {Value::Int(2)}, {Value::Int(3)}}), 2);
  EXPECT_EQ(MustCollect(&limited).size(), 2u);

  DistinctOperator distinct(
      Rows({"a"}, {{Value::Int(1)}, {Value::Int(1)}, {Value::Int(2)}}));
  EXPECT_EQ(MustCollect(&distinct).size(), 2u);
}

TEST(OperatorTest, SortStableMultiColumn) {
  SortOperator op(Rows({"a", "b"}, {{Value::Int(2), Value::Str("x")},
                                    {Value::Int(1), Value::Str("z")},
                                    {Value::Int(1), Value::Str("a")}}),
                  {0, 1});
  auto rows = MustCollect(&op);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][1], Value::Str("a"));
  EXPECT_EQ(rows[1][1], Value::Str("z"));
  EXPECT_EQ(rows[2][0], Value::Int(2));
}

TEST(OperatorTest, HashJoinMatchesPairs) {
  auto left = Rows({"uid", "name"}, {{Value::Int(1), Value::Str("ada")},
                                     {Value::Int(2), Value::Str("bob")}});
  auto right = Rows({"uid", "total"}, {{Value::Int(1), Value::Int(10)},
                                       {Value::Int(1), Value::Int(20)},
                                       {Value::Int(3), Value::Int(30)}});
  HashJoinOperator join(std::move(left), std::move(right), {{0, 0}});
  auto rows = MustCollect(&join);
  ASSERT_EQ(rows.size(), 2u);
  for (const Row& r : rows) {
    EXPECT_EQ(r[0], Value::Int(1));
    EXPECT_EQ(r[1], Value::Str("ada"));
  }
  EXPECT_EQ(join.columns(),
            (std::vector<std::string>{"uid", "name", "uid", "total"}));
}

TEST(OperatorTest, HashJoinCompositeKeys) {
  auto left = Rows({"a", "b"}, {{Value::Int(1), Value::Int(2)},
                                {Value::Int(1), Value::Int(3)}});
  auto right = Rows({"a", "b"}, {{Value::Int(1), Value::Int(2)}});
  HashJoinOperator join(std::move(left), std::move(right), {{0, 0}, {1, 1}});
  EXPECT_EQ(MustCollect(&join).size(), 1u);
}

TEST(OperatorTest, BindJoinFetchesPerBinding) {
  auto left = Rows({"uid"}, {{Value::Int(1)}, {Value::Int(2)},
                             {Value::Int(1)}});
  size_t calls = 0;
  BindJoinOperator op(
      std::move(left), {0}, {"cart"},
      [&calls](const Row& binding) -> Result<std::vector<Row>> {
        ++calls;
        if (binding[0] == Value::Int(2)) return std::vector<Row>{};
        return std::vector<Row>{{Value::Str("cart-of-" +
                                            binding[0].ToString())}};
      },
      "kv:carts");
  auto rows = MustCollect(&op);
  ASSERT_EQ(rows.size(), 2u);  // uid=2 has no cart; uid=1 appears twice.
  EXPECT_EQ(rows[0][1], Value::Str("cart-of-1"));
  // Memoized: only two distinct bindings -> two fetches.
  EXPECT_EQ(op.fetch_calls(), 2u);
  EXPECT_EQ(calls, 2u);
}

TEST(OperatorTest, BindJoinPropagatesFetchError) {
  BindJoinOperator op(
      Rows({"k"}, {{Value::Int(1)}}), {0}, {"v"},
      [](const Row&) -> Result<std::vector<Row>> {
        return Status::Unsupported("no such access");
      },
      "src");
  EXPECT_EQ(Collect(&op).status().code(), StatusCode::kUnsupported);
}

TEST(OperatorTest, UnionAllConcatenates) {
  std::vector<OperatorPtr> inputs;
  inputs.push_back(Rows({"a"}, {{Value::Int(1)}}));
  inputs.push_back(Rows({"a"}, {{Value::Int(2)}, {Value::Int(3)}}));
  UnionAllOperator op(std::move(inputs));
  EXPECT_EQ(MustCollect(&op).size(), 3u);
}

TEST(OperatorTest, NestGroupsIntoLists) {
  NestOperator op(Rows({"uid", "item"}, {{Value::Int(1), Value::Str("a")},
                                         {Value::Int(2), Value::Str("b")},
                                         {Value::Int(1), Value::Str("c")}}),
                  {0}, "items");
  auto rows = MustCollect(&op);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Int(1));
  EXPECT_EQ(rows[0][1],
            Value::List({Value::Str("a"), Value::Str("c")}));
  EXPECT_EQ(rows[1][1], Value::List({Value::Str("b")}));
  EXPECT_EQ(op.columns(), (std::vector<std::string>{"uid", "items"}));
}

TEST(OperatorTest, NestMultipleRestColumnsBecomeTuples) {
  NestOperator op(Rows({"k", "x", "y"},
                       {{Value::Int(1), Value::Int(10), Value::Int(20)}}),
                  {0}, "pairs");
  auto rows = MustCollect(&op);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1],
            Value::List({Value::List({Value::Int(10), Value::Int(20)})}));
}

TEST(OperatorTest, UnnestInvertsNest) {
  NestOperator nest(Rows({"uid", "item"}, {{Value::Int(1), Value::Str("a")},
                                           {Value::Int(1), Value::Str("c")}}),
                    {0}, "items");
  auto nested = MustCollect(&nest);
  UnnestOperator unnest(Rows({"uid", "items"}, nested), 1);
  auto rows = MustCollect(&unnest);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], Value::Str("a"));
  EXPECT_EQ(rows[1][1], Value::Str("c"));
}

TEST(OperatorTest, UnnestRejectsNonList) {
  UnnestOperator op(Rows({"a"}, {{Value::Int(1)}}), 0);
  EXPECT_EQ(Collect(&op).status().code(), StatusCode::kInvalidArgument);
}

TEST(OperatorTest, AggregateAllFunctions) {
  AggregateOperator op(
      Rows({"g", "v"},
           {{Value::Str("a"), Value::Int(1)},
            {Value::Str("a"), Value::Int(3)},
            {Value::Str("b"), Value::Int(10)}}),
      {0},
      {{AggFn::kCount, 0, "n"},
       {AggFn::kSum, 1, "s"},
       {AggFn::kMin, 1, "lo"},
       {AggFn::kMax, 1, "hi"},
       {AggFn::kAvg, 1, "mean"}});
  auto rows = MustCollect(&op);
  ASSERT_EQ(rows.size(), 2u);
  // Group "a".
  EXPECT_EQ(rows[0][0], Value::Str("a"));
  EXPECT_EQ(rows[0][1], Value::Int(2));
  EXPECT_EQ(rows[0][2], Value::Int(4));
  EXPECT_EQ(rows[0][3], Value::Int(1));
  EXPECT_EQ(rows[0][4], Value::Int(3));
  EXPECT_DOUBLE_EQ(rows[0][5].real_value(), 2.0);
  // Group "b".
  EXPECT_EQ(rows[1][1], Value::Int(1));
}

TEST(OperatorTest, AggregateGlobalGroup) {
  AggregateOperator op(Rows({"v"}, {{Value::Int(2)}, {Value::Int(4)}}), {},
                       {{AggFn::kSum, 0, "s"}});
  auto rows = MustCollect(&op);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(6));
}

TEST(OperatorTest, AggregateIgnoresNullsForAvg) {
  AggregateOperator op(
      Rows({"v"}, {{Value::Int(2)}, {Value::Null()}, {Value::Int(4)}}), {},
      {{AggFn::kAvg, 0, "m"}, {AggFn::kCount, 0, "n"}});
  auto rows = MustCollect(&op);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0][0].real_value(), 3.0);
  EXPECT_EQ(rows[0][1], Value::Int(3));  // COUNT(*) counts all rows.
}

TEST(OperatorTest, ComposedPipeline) {
  // users join orders, filter total > 5, nest orders per user.
  auto users = Rows({"uid", "name"}, {{Value::Int(1), Value::Str("ada")},
                                      {Value::Int(2), Value::Str("bob")}});
  auto orders = Rows({"uid", "total"}, {{Value::Int(1), Value::Int(10)},
                                        {Value::Int(1), Value::Int(2)},
                                        {Value::Int(2), Value::Int(7)}});
  auto join = std::make_unique<HashJoinOperator>(
      std::move(users), std::move(orders),
      std::vector<std::pair<size_t, size_t>>{{0, 0}});
  auto filter = std::make_unique<FilterOperator>(
      std::move(join), Expr::Binary(Expr::Op::kGt, Expr::Column(3),
                                    Expr::Const(Value::Int(5))));
  auto project = std::make_unique<ProjectOperator>(
      std::move(filter), std::vector<std::string>{"name", "total"},
      std::vector<ExprPtr>{Expr::Column(1), Expr::Column(3)});
  NestOperator nest(std::move(project), {0}, "totals");
  auto rows = MustCollect(&nest);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Str("ada"));
  EXPECT_EQ(rows[0][1], Value::List({Value::Int(10)}));
}

TEST(OperatorTest, PlanToStringShowsTree) {
  auto filter = std::make_unique<FilterOperator>(
      Rows({"a"}, {}), Expr::Binary(Expr::Op::kEq, Expr::Column(0),
                                    Expr::Const(Value::Int(1))));
  std::string plan = PlanToString(*filter);
  EXPECT_NE(plan.find("Filter"), std::string::npos);
  EXPECT_NE(plan.find("rows"), std::string::npos);
}

}  // namespace
}  // namespace estocada::engine
