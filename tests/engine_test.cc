#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "engine/batch.h"
#include "engine/expr.h"
#include "engine/operator.h"
#include "engine/value.h"

namespace estocada::engine {
namespace {

OperatorPtr Rows(std::vector<std::string> cols, std::vector<Row> rows) {
  return std::make_unique<RowsOperator>(std::move(cols), std::move(rows));
}

std::vector<Row> MustCollect(Operator* op) {
  auto r = Collect(op);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(*r);
}

// ------------------------------------------------------------------ Expr --

TEST(ExprTest, ColumnAndConst) {
  Row row{Value::Int(5), Value::Str("x")};
  EXPECT_EQ(*Expr::Column(0)->Eval(row), Value::Int(5));
  EXPECT_EQ(*Expr::Const(Value::Str("k"))->Eval(row), Value::Str("k"));
  EXPECT_EQ(Expr::Column(9)->Eval(row).status().code(),
            StatusCode::kOutOfRange);
}

TEST(ExprTest, Comparisons) {
  Row row{Value::Int(5), Value::Int(7)};
  auto lt = Expr::Binary(Expr::Op::kLt, Expr::Column(0), Expr::Column(1));
  auto ge = Expr::Binary(Expr::Op::kGe, Expr::Column(0), Expr::Column(1));
  EXPECT_TRUE(*lt->EvalBool(row));
  EXPECT_FALSE(*ge->EvalBool(row));
  // Null comparisons are false.
  Row with_null{Value::Null(), Value::Int(1)};
  auto eq = Expr::Binary(Expr::Op::kEq, Expr::Column(0), Expr::Column(1));
  EXPECT_FALSE(*eq->EvalBool(with_null));
}

TEST(ExprTest, BooleanConnectives) {
  Row row{Value::Int(1)};
  auto t = Expr::Binary(Expr::Op::kEq, Expr::Column(0),
                        Expr::Const(Value::Int(1)));
  auto f = Expr::Binary(Expr::Op::kEq, Expr::Column(0),
                        Expr::Const(Value::Int(2)));
  EXPECT_TRUE(*Expr::Binary(Expr::Op::kOr, f, t)->EvalBool(row));
  EXPECT_FALSE(*Expr::Binary(Expr::Op::kAnd, f, t)->EvalBool(row));
  EXPECT_TRUE(*Expr::Not(f)->EvalBool(row));
}

TEST(ExprTest, Arithmetic) {
  Row row{Value::Int(6), Value::Int(4), Value::Real(0.5)};
  auto add = Expr::Binary(Expr::Op::kAdd, Expr::Column(0), Expr::Column(1));
  EXPECT_EQ(*add->Eval(row), Value::Int(10));
  auto mixed = Expr::Binary(Expr::Op::kMul, Expr::Column(0), Expr::Column(2));
  EXPECT_EQ(*mixed->Eval(row), Value::Real(3.0));
  auto div = Expr::Binary(Expr::Op::kDiv, Expr::Column(0), Expr::Column(1));
  EXPECT_DOUBLE_EQ(div->Eval(row)->real_value(), 1.5);
  auto div0 = Expr::Binary(Expr::Op::kDiv, Expr::Column(0),
                           Expr::Const(Value::Int(0)));
  EXPECT_EQ(div0->Eval(row).status().code(), StatusCode::kInvalidArgument);
  auto bad = Expr::Binary(Expr::Op::kAdd, Expr::Column(0),
                          Expr::Const(Value::Bool(true)));
  EXPECT_FALSE(bad->Eval(row).ok());
}

TEST(ExprTest, StringConcat) {
  Row row{Value::Str("a"), Value::Str("b")};
  auto cat = Expr::Binary(Expr::Op::kAdd, Expr::Column(0), Expr::Column(1));
  EXPECT_EQ(*cat->Eval(row), Value::Str("ab"));
}

TEST(ExprTest, ToStringRendering) {
  auto e = Expr::Binary(Expr::Op::kAnd,
                        Expr::Binary(Expr::Op::kEq, Expr::Column(0),
                                     Expr::Const(Value::Int(1))),
                        Expr::Not(Expr::Column(1)));
  EXPECT_EQ(e->ToString(), "(($0 = 1) AND NOT($1))");
}

// ------------------------------------------------------------- Operators --

TEST(OperatorTest, RowsAndCollect) {
  auto op = Rows({"a"}, {{Value::Int(1)}, {Value::Int(2)}});
  auto rows = MustCollect(op.get());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][0], Value::Int(2));
  EXPECT_EQ(op->columns(), (std::vector<std::string>{"a"}));
}

TEST(OperatorTest, CallbackScanLazy) {
  int calls = 0;
  CallbackScanOperator op(
      {"x"},
      [&calls]() -> Result<std::vector<Row>> {
        ++calls;
        return std::vector<Row>{{Value::Int(9)}};
      },
      "kv.Get");
  EXPECT_EQ(calls, 0);
  auto rows = MustCollect(&op);
  EXPECT_EQ(calls, 1);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(9));
}

TEST(OperatorTest, CallbackScanPropagatesErrors) {
  CallbackScanOperator op(
      {"x"},
      []() -> Result<std::vector<Row>> {
        return Status::NotFound("gone");
      },
      "src");
  EXPECT_EQ(Collect(&op).status().code(), StatusCode::kNotFound);
}

TEST(OperatorTest, Filter) {
  auto pred = Expr::Binary(Expr::Op::kGt, Expr::Column(0),
                           Expr::Const(Value::Int(1)));
  FilterOperator op(Rows({"a"}, {{Value::Int(1)}, {Value::Int(2)},
                                 {Value::Int(3)}}),
                    pred);
  auto rows = MustCollect(&op);
  EXPECT_EQ(rows.size(), 2u);
}

TEST(OperatorTest, Project) {
  ProjectOperator op(
      Rows({"a", "b"}, {{Value::Int(2), Value::Int(3)}}), {"sum", "b"},
      {Expr::Binary(Expr::Op::kAdd, Expr::Column(0), Expr::Column(1)),
       Expr::Column(1)});
  auto rows = MustCollect(&op);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(5));
  EXPECT_EQ(op.columns(), (std::vector<std::string>{"sum", "b"}));
}

TEST(OperatorTest, LimitAndDistinct) {
  LimitOperator limited(
      Rows({"a"}, {{Value::Int(1)}, {Value::Int(2)}, {Value::Int(3)}}), 2);
  EXPECT_EQ(MustCollect(&limited).size(), 2u);

  DistinctOperator distinct(
      Rows({"a"}, {{Value::Int(1)}, {Value::Int(1)}, {Value::Int(2)}}));
  EXPECT_EQ(MustCollect(&distinct).size(), 2u);
}

TEST(OperatorTest, SortStableMultiColumn) {
  SortOperator op(Rows({"a", "b"}, {{Value::Int(2), Value::Str("x")},
                                    {Value::Int(1), Value::Str("z")},
                                    {Value::Int(1), Value::Str("a")}}),
                  {0, 1});
  auto rows = MustCollect(&op);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][1], Value::Str("a"));
  EXPECT_EQ(rows[1][1], Value::Str("z"));
  EXPECT_EQ(rows[2][0], Value::Int(2));
}

TEST(OperatorTest, HashJoinMatchesPairs) {
  auto left = Rows({"uid", "name"}, {{Value::Int(1), Value::Str("ada")},
                                     {Value::Int(2), Value::Str("bob")}});
  auto right = Rows({"uid", "total"}, {{Value::Int(1), Value::Int(10)},
                                       {Value::Int(1), Value::Int(20)},
                                       {Value::Int(3), Value::Int(30)}});
  HashJoinOperator join(std::move(left), std::move(right), {{0, 0}});
  auto rows = MustCollect(&join);
  ASSERT_EQ(rows.size(), 2u);
  for (const Row& r : rows) {
    EXPECT_EQ(r[0], Value::Int(1));
    EXPECT_EQ(r[1], Value::Str("ada"));
  }
  EXPECT_EQ(join.columns(),
            (std::vector<std::string>{"uid", "name", "uid", "total"}));
}

TEST(OperatorTest, HashJoinCompositeKeys) {
  auto left = Rows({"a", "b"}, {{Value::Int(1), Value::Int(2)},
                                {Value::Int(1), Value::Int(3)}});
  auto right = Rows({"a", "b"}, {{Value::Int(1), Value::Int(2)}});
  HashJoinOperator join(std::move(left), std::move(right), {{0, 0}, {1, 1}});
  EXPECT_EQ(MustCollect(&join).size(), 1u);
}

TEST(OperatorTest, BindJoinFetchesPerBinding) {
  auto left = Rows({"uid"}, {{Value::Int(1)}, {Value::Int(2)},
                             {Value::Int(1)}});
  size_t calls = 0;
  BindJoinOperator op(
      std::move(left), {0}, {"cart"},
      [&calls](const Row& binding) -> Result<std::vector<Row>> {
        ++calls;
        if (binding[0] == Value::Int(2)) return std::vector<Row>{};
        return std::vector<Row>{{Value::Str("cart-of-" +
                                            binding[0].ToString())}};
      },
      "kv:carts");
  auto rows = MustCollect(&op);
  ASSERT_EQ(rows.size(), 2u);  // uid=2 has no cart; uid=1 appears twice.
  EXPECT_EQ(rows[0][1], Value::Str("cart-of-1"));
  // Memoized: only two distinct bindings -> two fetches.
  EXPECT_EQ(op.fetch_calls(), 2u);
  EXPECT_EQ(calls, 2u);
}

TEST(OperatorTest, BindJoinPropagatesFetchError) {
  BindJoinOperator op(
      Rows({"k"}, {{Value::Int(1)}}), {0}, {"v"},
      [](const Row&) -> Result<std::vector<Row>> {
        return Status::Unsupported("no such access");
      },
      "src");
  EXPECT_EQ(Collect(&op).status().code(), StatusCode::kUnsupported);
}

TEST(OperatorTest, UnionAllConcatenates) {
  std::vector<OperatorPtr> inputs;
  inputs.push_back(Rows({"a"}, {{Value::Int(1)}}));
  inputs.push_back(Rows({"a"}, {{Value::Int(2)}, {Value::Int(3)}}));
  UnionAllOperator op(std::move(inputs));
  EXPECT_EQ(MustCollect(&op).size(), 3u);
}

TEST(OperatorTest, NestGroupsIntoLists) {
  NestOperator op(Rows({"uid", "item"}, {{Value::Int(1), Value::Str("a")},
                                         {Value::Int(2), Value::Str("b")},
                                         {Value::Int(1), Value::Str("c")}}),
                  {0}, "items");
  auto rows = MustCollect(&op);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Int(1));
  EXPECT_EQ(rows[0][1],
            Value::List({Value::Str("a"), Value::Str("c")}));
  EXPECT_EQ(rows[1][1], Value::List({Value::Str("b")}));
  EXPECT_EQ(op.columns(), (std::vector<std::string>{"uid", "items"}));
}

TEST(OperatorTest, NestMultipleRestColumnsBecomeTuples) {
  NestOperator op(Rows({"k", "x", "y"},
                       {{Value::Int(1), Value::Int(10), Value::Int(20)}}),
                  {0}, "pairs");
  auto rows = MustCollect(&op);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1],
            Value::List({Value::List({Value::Int(10), Value::Int(20)})}));
}

TEST(OperatorTest, UnnestInvertsNest) {
  NestOperator nest(Rows({"uid", "item"}, {{Value::Int(1), Value::Str("a")},
                                           {Value::Int(1), Value::Str("c")}}),
                    {0}, "items");
  auto nested = MustCollect(&nest);
  UnnestOperator unnest(Rows({"uid", "items"}, nested), 1);
  auto rows = MustCollect(&unnest);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], Value::Str("a"));
  EXPECT_EQ(rows[1][1], Value::Str("c"));
}

TEST(OperatorTest, UnnestRejectsNonList) {
  UnnestOperator op(Rows({"a"}, {{Value::Int(1)}}), 0);
  EXPECT_EQ(Collect(&op).status().code(), StatusCode::kInvalidArgument);
}

TEST(OperatorTest, AggregateAllFunctions) {
  AggregateOperator op(
      Rows({"g", "v"},
           {{Value::Str("a"), Value::Int(1)},
            {Value::Str("a"), Value::Int(3)},
            {Value::Str("b"), Value::Int(10)}}),
      {0},
      {{AggFn::kCount, 0, "n"},
       {AggFn::kSum, 1, "s"},
       {AggFn::kMin, 1, "lo"},
       {AggFn::kMax, 1, "hi"},
       {AggFn::kAvg, 1, "mean"}});
  auto rows = MustCollect(&op);
  ASSERT_EQ(rows.size(), 2u);
  // Group "a".
  EXPECT_EQ(rows[0][0], Value::Str("a"));
  EXPECT_EQ(rows[0][1], Value::Int(2));
  EXPECT_EQ(rows[0][2], Value::Int(4));
  EXPECT_EQ(rows[0][3], Value::Int(1));
  EXPECT_EQ(rows[0][4], Value::Int(3));
  EXPECT_DOUBLE_EQ(rows[0][5].real_value(), 2.0);
  // Group "b".
  EXPECT_EQ(rows[1][1], Value::Int(1));
}

TEST(OperatorTest, AggregateGlobalGroup) {
  AggregateOperator op(Rows({"v"}, {{Value::Int(2)}, {Value::Int(4)}}), {},
                       {{AggFn::kSum, 0, "s"}});
  auto rows = MustCollect(&op);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(6));
}

TEST(OperatorTest, AggregateIgnoresNullsForAvg) {
  AggregateOperator op(
      Rows({"v"}, {{Value::Int(2)}, {Value::Null()}, {Value::Int(4)}}), {},
      {{AggFn::kAvg, 0, "m"}, {AggFn::kCount, 0, "n"}});
  auto rows = MustCollect(&op);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0][0].real_value(), 3.0);
  EXPECT_EQ(rows[0][1], Value::Int(3));  // COUNT(*) counts all rows.
}

TEST(OperatorTest, ComposedPipeline) {
  // users join orders, filter total > 5, nest orders per user.
  auto users = Rows({"uid", "name"}, {{Value::Int(1), Value::Str("ada")},
                                      {Value::Int(2), Value::Str("bob")}});
  auto orders = Rows({"uid", "total"}, {{Value::Int(1), Value::Int(10)},
                                        {Value::Int(1), Value::Int(2)},
                                        {Value::Int(2), Value::Int(7)}});
  auto join = std::make_unique<HashJoinOperator>(
      std::move(users), std::move(orders),
      std::vector<std::pair<size_t, size_t>>{{0, 0}});
  auto filter = std::make_unique<FilterOperator>(
      std::move(join), Expr::Binary(Expr::Op::kGt, Expr::Column(3),
                                    Expr::Const(Value::Int(5))));
  auto project = std::make_unique<ProjectOperator>(
      std::move(filter), std::vector<std::string>{"name", "total"},
      std::vector<ExprPtr>{Expr::Column(1), Expr::Column(3)});
  NestOperator nest(std::move(project), {0}, "totals");
  auto rows = MustCollect(&nest);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Str("ada"));
  EXPECT_EQ(rows[0][1], Value::List({Value::Int(10)}));
}

// -------------------------------------------------- Batch boundaries --
// The batch path chunks streams at RowBatch::kDefaultRows (1024); these
// pin the edges: single-row streams, exactly one chunk, one chunk plus a
// spill row, empty relations, and predicates that wipe out whole chunks.

std::vector<Row> IntRows(int64_t n) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < n; ++i) rows.push_back({Value::Int(i)});
  return rows;
}

/// Both drains — batch (Collect) and tuple oracle (CollectTuples) — must
/// agree; trees are re-Opened between the two runs.
void ExpectBothPathsYield(Operator* op, size_t expected_rows) {
  auto batch = Collect(op);
  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_EQ(batch->size(), expected_rows);
  auto tuple = CollectTuples(op);
  ASSERT_TRUE(tuple.ok()) << tuple.status();
  EXPECT_EQ(*batch, *tuple);
}

TEST(BatchBoundaryTest, SingleRowStream) {
  auto op = Rows({"a"}, IntRows(1));
  ExpectBothPathsYield(op.get(), 1);
}

TEST(BatchBoundaryTest, ExactlyOneBatch) {
  auto op = Rows({"a"}, IntRows(RowBatch::kDefaultRows));
  ExpectBothPathsYield(op.get(), RowBatch::kDefaultRows);
}

TEST(BatchBoundaryTest, OneBatchPlusOne) {
  auto op = Rows({"a"}, IntRows(RowBatch::kDefaultRows + 1));
  ExpectBothPathsYield(op.get(), RowBatch::kDefaultRows + 1);
}

TEST(BatchBoundaryTest, EmptyRelation) {
  auto op = Rows({"a"}, {});
  ExpectBothPathsYield(op.get(), 0);
  RowBatch batch;
  ASSERT_TRUE(op->Open().ok());
  auto more = op->NextBatch(&batch);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);
}

TEST(BatchBoundaryTest, EmptyRelationThroughJoinAndFilter) {
  auto join = std::make_unique<HashJoinOperator>(
      Rows({"a"}, {}), Rows({"b"}, IntRows(10)),
      std::vector<std::pair<size_t, size_t>>{{0, 0}});
  ExpectBothPathsYield(join.get(), 0);
  auto filter = std::make_unique<FilterOperator>(
      Rows({"a"}, {}),
      Expr::Binary(Expr::Op::kEq, Expr::Column(0), Expr::Const(Value::Int(1))));
  ExpectBothPathsYield(filter.get(), 0);
}

TEST(BatchBoundaryTest, SelectionDropsWholeBatches) {
  // 3 chunks of input; only the last row of the last chunk survives. A
  // true NextBatch return must carry >= 1 row, so the filter has to loop
  // past the all-dropped chunks instead of surfacing empty batches.
  const int64_t n = 3 * static_cast<int64_t>(RowBatch::kDefaultRows);
  auto filter = std::make_unique<FilterOperator>(
      Rows({"a"}, IntRows(n)),
      Expr::Binary(Expr::Op::kEq, Expr::Column(0),
                   Expr::Const(Value::Int(n - 1))));
  ASSERT_TRUE(filter->Open().ok());
  RowBatch batch;
  size_t rows = 0;
  while (true) {
    auto more = filter->NextBatch(&batch);
    ASSERT_TRUE(more.ok()) << more.status();
    if (!*more) break;
    EXPECT_GE(batch.size(), 1u) << "true NextBatch return with 0 rows";
    rows += batch.size();
  }
  EXPECT_EQ(rows, 1u);
  ExpectBothPathsYield(filter.get(), 1);
}

TEST(BatchBoundaryTest, SelectionDropsEverything) {
  const int64_t n = 2 * static_cast<int64_t>(RowBatch::kDefaultRows);
  auto filter = std::make_unique<FilterOperator>(
      Rows({"a"}, IntRows(n)),
      Expr::Binary(Expr::Op::kLt, Expr::Column(0),
                   Expr::Const(Value::Int(0))));
  ExpectBothPathsYield(filter.get(), 0);
}

TEST(BatchBoundaryTest, JoinAcrossChunkBoundary) {
  // Probe side spans two chunks; every probe row matches one build row.
  const int64_t n = static_cast<int64_t>(RowBatch::kDefaultRows) + 7;
  std::vector<Row> probe;
  for (int64_t i = 0; i < n; ++i) {
    probe.push_back({Value::Int(i % 50), Value::Int(i)});
  }
  auto join = std::make_unique<HashJoinOperator>(
      Rows({"k"}, IntRows(50)), Rows({"k2", "v2"}, probe),
      std::vector<std::pair<size_t, size_t>>{{0, 0}});
  ExpectBothPathsYield(join.get(), static_cast<size_t>(n));
}

// ---------------------------------------- Batch-vs-tuple differential --
// Seeded generator: random small tables composed under random operator
// trees, every plan executed through both drains. The tuple path is the
// oracle (the engine analogue of the chase kernel's
// ForEachHomomorphismScan differential in TESTING.md).

OperatorPtr RandomSource(Rng* rng, size_t* arity) {
  *arity = 1 + rng->Uniform(3);
  const size_t n = rng->Uniform(60);  // includes empty relations
  std::vector<std::string> cols;
  for (size_t c = 0; c < *arity; ++c) cols.push_back("c" + std::to_string(c));
  std::vector<Row> rows;
  for (size_t i = 0; i < n; ++i) {
    Row row;
    for (size_t c = 0; c < *arity; ++c) {
      // Small domain so joins and filters actually hit.
      row.push_back(Value::Int(static_cast<int64_t>(rng->Uniform(8))));
    }
    rows.push_back(std::move(row));
  }
  return Rows(cols, rows);
}

OperatorPtr RandomTree(Rng* rng, int depth, size_t* arity) {
  if (depth == 0) return RandomSource(rng, arity);
  switch (rng->Uniform(6)) {
    case 0: {  // Filter: random comparison against a small constant.
      OperatorPtr in = RandomTree(rng, depth - 1, arity);
      Expr::Op cmp = rng->Chance(0.5) ? Expr::Op::kEq : Expr::Op::kLt;
      auto pred = Expr::Binary(
          cmp, Expr::Column(rng->Uniform(*arity)),
          Expr::Const(Value::Int(static_cast<int64_t>(rng->Uniform(8)))));
      return std::make_unique<FilterOperator>(std::move(in), std::move(pred));
    }
    case 1: {  // Project: random column picks (possibly duplicated).
      OperatorPtr in = RandomTree(rng, depth - 1, arity);
      size_t out_arity = 1 + rng->Uniform(*arity);
      std::vector<std::string> names;
      std::vector<ExprPtr> exprs;
      for (size_t c = 0; c < out_arity; ++c) {
        names.push_back("p" + std::to_string(c));
        exprs.push_back(Expr::Column(rng->Uniform(*arity)));
      }
      *arity = out_arity;
      return std::make_unique<ProjectOperator>(std::move(in),
                                               std::move(names),
                                               std::move(exprs));
    }
    case 2: {  // HashJoin on one random key pair per side.
      size_t la = 0, ra = 0;
      OperatorPtr l = RandomTree(rng, depth - 1, &la);
      OperatorPtr r = RandomTree(rng, depth - 1, &ra);
      std::vector<std::pair<size_t, size_t>> keys{
          {rng->Uniform(la), rng->Uniform(ra)}};
      *arity = la + ra;
      return std::make_unique<HashJoinOperator>(std::move(l), std::move(r),
                                                std::move(keys));
    }
    case 3: {  // BindJoin against a deterministic synthetic target.
      OperatorPtr in = RandomTree(rng, depth - 1, arity);
      size_t bind_col = rng->Uniform(*arity);
      BindJoinOperator::Fetch fetch =
          [](const Row& binding) -> Result<std::vector<Row>> {
        // 0 rows for odd keys, 2 rows for even: exercises both the
        // no-match drop and the fan-out.
        int64_t k = binding[0].int_value();
        if (k % 2 == 1) return std::vector<Row>{};
        return std::vector<Row>{{Value::Int(k * 10)}, {Value::Int(k * 10 + 1)}};
      };
      *arity += 1;
      return std::make_unique<BindJoinOperator>(
          std::move(in), std::vector<size_t>{bind_col},
          std::vector<std::string>{"f"}, std::move(fetch), "synthetic");
    }
    case 4: {  // Distinct.
      OperatorPtr in = RandomTree(rng, depth - 1, arity);
      return std::make_unique<DistinctOperator>(std::move(in));
    }
    default: {  // Limit at a boundary-ish cut.
      OperatorPtr in = RandomTree(rng, depth - 1, arity);
      return std::make_unique<LimitOperator>(std::move(in),
                                             rng->Uniform(40));
    }
  }
}

TEST(BatchDifferentialTest, TwoHundredSeededPlans) {
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    // Same seed -> same tree, built twice so each drain gets a fresh
    // operator state even if an operator misbehaves across re-Opens.
    size_t arity = 0;
    Rng rng_a(seed);
    OperatorPtr batch_tree = RandomTree(&rng_a, 1 + seed % 3, &arity);
    Rng rng_b(seed);
    OperatorPtr tuple_tree = RandomTree(&rng_b, 1 + seed % 3, &arity);

    auto batch = Collect(batch_tree.get());
    auto tuple = CollectTuples(tuple_tree.get());
    ASSERT_EQ(batch.ok(), tuple.ok()) << "seed " << seed;
    if (!batch.ok()) continue;
    ASSERT_EQ(*batch, *tuple)
        << "seed " << seed << ": batch path returned " << batch->size()
        << " row(s), tuple oracle " << tuple->size();
  }
}

TEST(OperatorTest, PlanToStringShowsTree) {
  auto filter = std::make_unique<FilterOperator>(
      Rows({"a"}, {}), Expr::Binary(Expr::Op::kEq, Expr::Column(0),
                                    Expr::Const(Value::Int(1))));
  std::string plan = PlanToString(*filter);
  EXPECT_NE(plan.find("Filter"), std::string::npos);
  EXPECT_NE(plan.find("rows"), std::string::npos);
}

}  // namespace
}  // namespace estocada::engine
