/// Catalog (de)serialization: checkpointing the Storage Descriptor
/// Manager and re-establishing a deployment from it.

#include "catalog/serialize.h"

#include <gtest/gtest.h>

#include "estocada/estocada.h"
#include "pivot/parser.h"

namespace estocada::catalog {
namespace {

using engine::Value;
using pivot::Adornment;

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pivot::Schema schema;
    ASSERT_TRUE(schema.AddRelation("R", 2).ok());
    ASSERT_TRUE(schema.AddRelation("S", 2).ok());
    ASSERT_TRUE(sys_.RegisterSchema(schema).ok());
    ASSERT_TRUE(sys_.RegisterStore({"pg", StoreKind::kRelational, &rel_,
                                    nullptr, nullptr, nullptr, nullptr})
                    .ok());
    ASSERT_TRUE(sys_.RegisterStore({"kv", StoreKind::kKeyValue, nullptr,
                                    &kv_, nullptr, nullptr, nullptr})
                    .ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(sys_.LoadRow("R", {Value::Int(i), Value::Int(i * 2)}).ok());
      ASSERT_TRUE(
          sys_.LoadRow("S", {Value::Int(i * 2), Value::Str("v")}).ok());
    }
  }

  stores::RelationalStore rel_;
  stores::KeyValueStore kv_;
  Estocada sys_;
};

TEST_F(SerializeTest, RoundTripPreservesDescriptors) {
  ASSERT_TRUE(sys_.DefineFragment("F(a, b) :- R(a, b)", "pg", {}, {0}).ok());
  ASSERT_TRUE(sys_.DefineFragment("K(b, v) :- S(b, v)", "kv",
                                  {Adornment::kInput, Adornment::kFree})
                  .ok());
  std::string text = sys_.ExportCatalogJson();
  // Parse back structurally.
  auto doc = json::Parse(text);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->Find("format")->string_value(), "estocada-catalog");
  ASSERT_EQ(doc->Find("fragments")->array().size(), 2u);

  // A fresh system (same stores + schema, new store instances) imports
  // the layout and answers queries identically.
  stores::RelationalStore rel2;
  stores::KeyValueStore kv2;
  Estocada sys2;
  pivot::Schema schema;
  ASSERT_TRUE(schema.AddRelation("R", 2).ok());
  ASSERT_TRUE(schema.AddRelation("S", 2).ok());
  ASSERT_TRUE(sys2.RegisterSchema(schema).ok());
  ASSERT_TRUE(sys2.RegisterStore({"pg", StoreKind::kRelational, &rel2,
                                  nullptr, nullptr, nullptr, nullptr})
                  .ok());
  ASSERT_TRUE(sys2.RegisterStore({"kv", StoreKind::kKeyValue, nullptr, &kv2,
                                  nullptr, nullptr, nullptr})
                  .ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(sys2.LoadRow("R", {Value::Int(i), Value::Int(i * 2)}).ok());
    ASSERT_TRUE(sys2.LoadRow("S", {Value::Int(i * 2), Value::Str("v")}).ok());
  }
  ASSERT_TRUE(sys2.ImportCatalogJson(text).ok());
  EXPECT_TRUE(rel2.HasTable("F"));
  EXPECT_TRUE(kv2.HasCollection("K"));

  auto r1 = sys_.Query("q(b, v) :- R($a, b), S(b, v)",
                       {{"$a", Value::Int(3)}});
  auto r2 = sys2.Query("q(b, v) :- R($a, b), S(b, v)",
                       {{"$a", Value::Int(3)}});
  ASSERT_TRUE(r1.ok() && r2.ok()) << r1.status() << r2.status();
  ASSERT_EQ(r1->rows.size(), r2->rows.size());
  // The KV fragment's adornment survived: same rewriting chosen.
  EXPECT_EQ(r1->rewriting_text, r2->rewriting_text);
}

TEST_F(SerializeTest, StatisticsSerialized) {
  ASSERT_TRUE(sys_.DefineFragment("F(a, b) :- R(a, b)", "pg").ok());
  auto doc = json::Parse(sys_.ExportCatalogJson());
  ASSERT_TRUE(doc.ok());
  const auto& frag = doc->Find("fragments")->array()[0];
  EXPECT_EQ(frag.FindPath("stats.row_count")->int_value(), 10);
  EXPECT_EQ(frag.FindPath("stats.distinct")->array().size(), 2u);
}

TEST_F(SerializeTest, RejectsMalformedDocuments) {
  Catalog cat;
  auto not_catalog = json::Parse(R"({"format":"other"})");
  ASSERT_TRUE(not_catalog.ok());
  EXPECT_EQ(FragmentsFromJson(*not_catalog, &cat).code(),
            StatusCode::kInvalidArgument);
  auto no_fragments = json::Parse(R"({"format":"estocada-catalog"})");
  ASSERT_TRUE(no_fragments.ok());
  EXPECT_EQ(FragmentsFromJson(*no_fragments, &cat).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(sys_.ImportCatalogJson("{broken").code(),
            StatusCode::kParseError);
  // A fragment referencing an unregistered store fails cleanly.
  auto bad_store = json::Parse(
      R"json({"format":"estocada-catalog","fragments":
          [{"view":"F(a, b) :- R(a, b)","store":"nope"}]})json");
  ASSERT_TRUE(bad_store.ok());
  EXPECT_EQ(sys_.ImportCatalogJson(bad_store->Serialize()).code(),
            StatusCode::kNotFound);
}

/// kGraph descriptors round-trip like every other kind: plain,
/// K-replicated, and hash-partitioned graph fragments re-import onto
/// fresh stores and re-export byte-identically.
TEST(GraphSerializeTest, GraphFragmentsRoundTripByteIdentical) {
  auto build = [](Estocada* sys, stores::GraphStore* a,
                  stores::GraphStore* b) {
    ASSERT_TRUE(sys->RegisterGraphDataset("soc", 2).ok());
    ASSERT_TRUE(sys->RegisterStore({"neo", StoreKind::kGraph, nullptr,
                                    nullptr, nullptr, nullptr, nullptr, a})
                    .ok());
    ASSERT_TRUE(sys->RegisterStore({"neo2", StoreKind::kGraph, nullptr,
                                    nullptr, nullptr, nullptr, nullptr, b})
                    .ok());
    encoding::GraphData g;
    for (int i = 0; i < 8; ++i) {
      g.nodes.push_back({"n" + std::to_string(i), "User", {}});
      g.edges.push_back({"n" + std::to_string(i), "follows",
                         "n" + std::to_string((i + 1) % 8), {}});
    }
    ASSERT_TRUE(sys->LoadGraph("soc", g).ok());
  };

  stores::GraphStore neo, neo2;
  Estocada sys;
  build(&sys, &neo, &neo2);
  ASSERT_TRUE(
      sys.DefineFragment("G(s, l, d) :- soc.Edge(s, l, d)", "neo").ok());
  ASSERT_TRUE(sys.DefineReplicatedFragment("GR(s, d) :- soc.Reach2(s, d)",
                                           {"neo", "neo2"})
                  .ok());
  ASSERT_TRUE(sys.DefinePartitionedFragment(
                     "GP(s, l, d) :- soc.Edge(s, l, d)",
                     PartitionSpec::Kind::kHash, 0, {"neo", "neo2"})
                  .ok());
  std::string text = sys.ExportCatalogJson();

  stores::GraphStore neo_b, neo2_b;
  Estocada sys2;
  build(&sys2, &neo_b, &neo2_b);
  ASSERT_TRUE(sys2.ImportCatalogJson(text).ok());
  EXPECT_TRUE(neo_b.HasGraph("G"));
  EXPECT_TRUE(neo_b.HasGraph("GR"));
  EXPECT_TRUE(neo2_b.HasGraph("GR#r1"));
  EXPECT_TRUE(neo_b.HasGraph("GP#p0"));
  EXPECT_TRUE(neo2_b.HasGraph("GP#p1"));
  EXPECT_EQ(sys2.ExportCatalogJson(), text);

  auto r1 = sys.Query("q(d) :- soc.Edge($s, l, d)",
                      {{"$s", Value::Str("n3")}});
  auto r2 = sys2.Query("q(d) :- soc.Edge($s, l, d)",
                       {{"$s", Value::Str("n3")}});
  ASSERT_TRUE(r1.ok() && r2.ok()) << r1.status() << r2.status();
  EXPECT_EQ(r1->rows, r2->rows);
  EXPECT_EQ(r1->rewriting_text, r2->rewriting_text);
}

TEST_F(SerializeTest, EmptyCatalogRoundTrips) {
  auto doc = json::Parse(sys_.ExportCatalogJson());
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->Find("fragments")->array().empty());
  Catalog cat;
  EXPECT_TRUE(FragmentsFromJson(*doc, &cat).ok());
}

}  // namespace
}  // namespace estocada::catalog
