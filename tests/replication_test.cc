/// Tests of K-way fragment replication (src/replication plus the serving
/// runtime's replica routing): placement creation, per-instance breaker
/// granularity, failover through replica deaths, write fan-out staleness
/// and Tick()-driven self-healing, abort-at-every-stage safety, scrub
/// repair of silent corruption, catalog round-trips of replica state,
/// a concurrency probe for the half-open race (run under TSan in CI),
/// and the Autopilot hold that keeps layout changes out of a rebuild.

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "migration/migration.h"
#include "replication/repairer.h"
#include "runtime/query_server.h"
#include "stores/fault.h"
#include "tuner/tuner.h"
#include "workload/marketplace.h"

namespace estocada::replication {
namespace {

using engine::Row;
using engine::Value;
using runtime::BreakerState;
using runtime::QueryServer;
using runtime::ServerOptions;

constexpr char kUsersQuery[] = "q(u, n, c) :- mk.users(u, n, c)";
constexpr char kOrdersQuery[] = "q(o, u, p, t) :- mk.orders(o, u, p, t)";

/// Marketplace deployment with three relational instances ("pg1"/"pg2"/
/// "pg3"), F_users replicated across all three, and an unreplicated
/// F_orders on pg1 as the control fragment.
class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::MarketplaceConfig cfg;
    cfg.seed = 11;
    cfg.num_users = 40;
    cfg.num_products = 20;
    cfg.num_orders = 120;
    cfg.num_visits = 150;
    auto data = workload::GenerateMarketplace(cfg);
    ASSERT_TRUE(data.ok()) << data.status();
    data_ = std::move(*data);

    static const char* kNames[3] = {"pg1", "pg2", "pg3"};
    ASSERT_TRUE(sys_.RegisterSchema(data_.schema).ok());
    for (int i = 0; i < 3; ++i) {
      pg_[i].AttachFaultInjector(&injector_, kNames[i]);
      ASSERT_TRUE(sys_.RegisterStore({kNames[i],
                                      catalog::StoreKind::kRelational, &pg_[i],
                                      nullptr, nullptr, nullptr, nullptr})
                      .ok());
    }
    ASSERT_TRUE(sys_.LoadStaging(data_.staging).ok());

    ASSERT_TRUE(sys_.DefineReplicatedFragment(
                        "F_users(u, n, c) :- mk.users(u, n, c)",
                        {"pg1", "pg2", "pg3"}, {}, {0})
                    .ok());
    ASSERT_TRUE(sys_.DefineFragment(
                        "F_orders(o, u, p, t) :- mk.orders(o, u, p, t)",
                        "pg1", {}, {1, 2})
                    .ok());
  }

  /// Tight timings so breaker trips and retries resolve in microseconds,
  /// with a cooldown long enough that nothing half-opens mid-assertion.
  static ServerOptions FastOptions() {
    ServerOptions so;
    so.retry.max_attempts = 6;
    so.retry.initial_backoff_micros = 1;
    so.retry.max_backoff_micros = 16;
    so.health.failure_threshold = 2;
    so.health.open_cooldown_micros = 100'000;
    return so;
  }

  static std::set<std::string> Canon(const std::vector<Row>& rows) {
    std::set<std::string> out;
    for (const Row& r : rows) out.insert(engine::RowToString(r));
    return out;
  }

  const catalog::StorageDescriptor* Users() {
    auto d = sys_.catalog().GetFragment("F_users");
    EXPECT_TRUE(d.ok()) << d.status();
    return d.ok() ? *d : nullptr;
  }

  uint64_t Digest(size_t replica) {
    auto d = sys_.ReplicaDigest("F_users", replica);
    EXPECT_TRUE(d.ok()) << d.status();
    return d.ok() ? *d : 0;
  }

  /// Serves `query_text` and checks it against the staging ground truth.
  Result<Estocada::QueryResult> ExpectServesTruth(
      QueryServer* server, const std::string& query_text) {
    auto truth = sys_.EvaluateOverStaging(query_text);
    EXPECT_TRUE(truth.ok()) << truth.status();
    auto served = server->Query(query_text);
    EXPECT_TRUE(served.ok()) << served.status();
    if (truth.ok() && served.ok()) {
      EXPECT_EQ(Canon(served->rows), Canon(*truth));
    }
    return served;
  }

  Row UserRow(int64_t uid) {
    return {Value::Int(uid), Value::Str("user" + std::to_string(uid)),
            Value::Str("city" + std::to_string(uid % 7))};
  }

  workload::MarketplaceData data_;
  stores::FaultInjector injector_{/*seed=*/42};
  stores::RelationalStore pg_[3];
  Estocada sys_;
};

// ------------------------------------------------------- Catalog shape --

TEST_F(ReplicationTest, DefineReplicatedCreatesFreshVerifiedPlacements) {
  const catalog::StorageDescriptor* desc = Users();
  ASSERT_NE(desc, nullptr);
  ASSERT_EQ(desc->replicas.size(), 3u);
  EXPECT_EQ(desc->replicas[0].store_name, "pg1");
  EXPECT_EQ(desc->replicas[1].store_name, "pg2");
  EXPECT_EQ(desc->replicas[2].store_name, "pg3");
  EXPECT_EQ(desc->replicas[0].container, "F_users");
  EXPECT_EQ(desc->replicas[1].container, "F_users#r1");
  EXPECT_EQ(desc->replicas[2].container, "F_users#r2");
  // Slot 0 mirrors the legacy primary fields.
  EXPECT_EQ(desc->store_name, desc->replicas[0].store_name);
  EXPECT_EQ(desc->container, desc->replicas[0].container);
  for (size_t i = 0; i < 3; ++i) {
    SCOPED_TRACE(i);
    EXPECT_FALSE(desc->replicas[i].rebuilding);
    EXPECT_TRUE(desc->replicas[i].fresh(desc->write_epoch));
    EXPECT_TRUE(sys_.VerifyReplica("F_users", i).ok());
  }
  EXPECT_EQ(Digest(0), Digest(1));
  EXPECT_EQ(Digest(1), Digest(2));
}

// --------------------------------------------- Per-instance breakers --

TEST_F(ReplicationTest, BreakerIsPerInstanceNotPerKind) {
  QueryServer server(&sys_, FastOptions());
  injector_.SetOutage("pg1", true);
  injector_.SetOutage("pg2", true);

  // The replicated fragment fails over to pg3 without degrading; the
  // failures along the way trip pg1's and pg2's breakers.
  for (int i = 0; i < 3; ++i) {
    auto r = ExpectServesTruth(&server, kUsersQuery);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->degraded_to_staging);
  }
  EXPECT_EQ(server.health().state("pg1"), BreakerState::kOpen);
  EXPECT_EQ(server.health().state("pg2"), BreakerState::kOpen);
  // Same kind, different instance: pg3 took the traffic and stays closed.
  EXPECT_EQ(server.health().state("pg3"), BreakerState::kClosed);
  EXPECT_GE(server.metrics().reroutes, 1u);

  // The unreplicated control fragment lives on the excluded pg1: its only
  // rewriting is starved, so the ladder bottoms out in the staging area —
  // degraded but still correct.
  auto r = ExpectServesTruth(&server, kOrdersQuery);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->degraded_to_staging);
}

// ------------------------------------------------------------ Failover --

TEST_F(ReplicationTest, ServesThroughReplicaDeathsWithoutDegrading) {
  QueryServer server(&sys_, FastOptions());
  for (const char* victim : {"pg1", "pg2", "pg3"}) {
    SCOPED_TRACE(victim);
    injector_.SetOutage(victim, true);
    auto r = ExpectServesTruth(&server, kUsersQuery);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->degraded_to_staging);
    injector_.SetOutage(victim, false);
    server.health().Reset();
  }

  // Two replicas down: the single survivor answers, still not degraded.
  injector_.SetOutage("pg1", true);
  injector_.SetOutage("pg2", true);
  auto r = ExpectServesTruth(&server, kUsersQuery);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->degraded_to_staging);

  // All three down: only now does the staging area answer.
  injector_.SetOutage("pg3", true);
  auto degraded = ExpectServesTruth(&server, kUsersQuery);
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded->degraded_to_staging);
  EXPECT_GE(server.metrics().degraded, 1u);
}

// ----------------------------------------- Write fan-out + self-healing --

TEST_F(ReplicationTest, WriteFanOutSkipsDeadReplicaAndTickRepairsIt) {
  QueryServer server(&sys_, FastOptions());

  // Healthy insert: the fan-out advances every placement with the epoch.
  ASSERT_TRUE(server.InsertRow("mk.users", UserRow(100'000)).ok());
  const catalog::StorageDescriptor* desc = Users();
  ASSERT_NE(desc, nullptr);
  const uint64_t epoch_after_first = desc->write_epoch;
  EXPECT_GT(epoch_after_first, 0u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(desc->replicas[i].fresh(desc->write_epoch)) << i;
    EXPECT_TRUE(sys_.VerifyReplica("F_users", i).ok()) << i;
  }

  // Insert with pg3 down: the write lands on the survivors and pg3's
  // placement goes stale instead of blocking the write.
  injector_.SetOutage("pg3", true);
  ASSERT_TRUE(server.InsertRow("mk.users", UserRow(100'001)).ok());
  desc = Users();
  ASSERT_NE(desc, nullptr);
  EXPECT_GT(desc->write_epoch, epoch_after_first);
  EXPECT_TRUE(desc->replicas[0].fresh(desc->write_epoch));
  EXPECT_TRUE(desc->replicas[1].fresh(desc->write_epoch));
  EXPECT_FALSE(desc->replicas[2].fresh(desc->write_epoch));

  // Reads route around the stale placement, no staleness served.
  auto r = ExpectServesTruth(&server, kUsersQuery);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->degraded_to_staging);

  // The store comes back; one repairer tick finds the stale placement,
  // rebuilds it, and re-admits it digest-identical to its siblings.
  injector_.SetOutage("pg3", false);
  ReplicaRepairer repairer(&server);
  auto repaired = repairer.Tick();
  ASSERT_TRUE(repaired.ok()) << repaired.status();
  EXPECT_EQ(*repaired, 1u);
  desc = Users();
  ASSERT_NE(desc, nullptr);
  EXPECT_TRUE(desc->replicas[2].fresh(desc->write_epoch));
  EXPECT_FALSE(desc->replicas[2].rebuilding);
  EXPECT_TRUE(sys_.VerifyReplica("F_users", 2).ok());
  EXPECT_EQ(Digest(0), Digest(2));
  EXPECT_GE(server.metrics().replica_rebuilds, 1u);
  ASSERT_FALSE(repairer.history().empty());
  EXPECT_TRUE(repairer.history().back().admitted());

  // Nothing left to heal: the next tick is a no-op.
  auto again = repairer.Tick();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
}

// ------------------------------------------------ Abort at every stage --

TEST_F(ReplicationTest, AbortAtEveryStageLeavesServingAndWritesCorrect) {
  QueryServer server(&sys_, FastOptions());
  int64_t next_uid = 200'000;

  struct Case {
    RepairStage stage;
    /// kBackfilling aborts before BeginReplicaRebuild touches the
    /// placement, so the replica stays live; later stages leave it
    /// parked mid-rebuild for a future tick.
    bool leaves_rebuilding;
  };
  const Case cases[] = {{RepairStage::kBackfilling, false},
                        {RepairStage::kCatchingUp, true},
                        {RepairStage::kVerifying, true}};
  for (const Case& c : cases) {
    SCOPED_TRACE(RepairStageName(c.stage));
    RepairOptions opts;
    opts.stage_hook = [stage = c.stage](RepairStage at) {
      return at == stage
                 ? Status::Aborted(std::string("injected abort at ") +
                                   RepairStageName(stage))
                 : Status::OK();
    };
    ReplicaRepairer aborting(&server, opts);
    RepairReport report = aborting.RepairReplica("F_users", 1);
    EXPECT_EQ(report.stage, RepairStage::kAborted);
    EXPECT_FALSE(report.admitted());
    EXPECT_NE(report.error.ToString().find(RepairStageName(c.stage)),
              std::string::npos)
        << report.error;

    const catalog::StorageDescriptor* desc = Users();
    ASSERT_NE(desc, nullptr);
    EXPECT_EQ(desc->replicas[1].rebuilding, c.leaves_rebuilding);

    // The wreckage must not leak into serving or writes: reads come from
    // the live replicas, the fan-out skips the parked placement.
    auto r = ExpectServesTruth(&server, kUsersQuery);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->degraded_to_staging);
    ASSERT_TRUE(server.InsertRow("mk.users", UserRow(next_uid++)).ok());
    r = ExpectServesTruth(&server, kUsersQuery);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->degraded_to_staging);

    // A clean repair recovers the replica whatever state the abort left.
    ReplicaRepairer clean(&server);
    RepairReport recovered = clean.RepairReplica("F_users", 1);
    EXPECT_TRUE(recovered.admitted()) << recovered.ToString();
    desc = Users();
    ASSERT_NE(desc, nullptr);
    EXPECT_FALSE(desc->replicas[1].rebuilding);
    EXPECT_TRUE(desc->replicas[1].fresh(desc->write_epoch));
    EXPECT_TRUE(sys_.VerifyReplica("F_users", 1).ok());
    EXPECT_EQ(Digest(0), Digest(1));
  }
}

// ------------------------------------------------------------- Scrub --

TEST_F(ReplicationTest, ScrubDetectsAndRepairsSilentCorruption) {
  QueryServer server(&sys_, FastOptions());

  // Corrupt replica #1 behind the server's back: a phantom row the
  // staging truth never had. Epoch and rebuilding say "healthy".
  ASSERT_TRUE(pg_[1].Insert("F_users#r1",
                            {Value::Int(999'999), Value::Str("bogus"),
                             Value::Str("nowhere")})
                  .ok());
  EXPECT_FALSE(sys_.VerifyReplica("F_users", 1).ok());

  // The digest screen flags the disagreeing group, truth verification
  // pins the corrupt member, and a rebuild replaces it.
  ReplicaRepairer repairer(&server);
  auto repaired = repairer.Scrub();
  ASSERT_TRUE(repaired.ok()) << repaired.status();
  EXPECT_EQ(*repaired, 1u);
  EXPECT_TRUE(sys_.VerifyReplica("F_users", 1).ok());
  EXPECT_EQ(Digest(0), Digest(1));
  auto r = ExpectServesTruth(&server, kUsersQuery);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->degraded_to_staging);

  // A healthy deployment scrubs to a no-op.
  auto again = repairer.Scrub();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
}

// ------------------------------------------------- Catalog round-trip --

TEST_F(ReplicationTest, CatalogRoundTripPreservesReplicaState) {
  QueryServer server(&sys_, FastOptions());

  // Park replica #1 mid-rebuild (aborted repair) and leave #2 stale
  // (write while its store was out).
  RepairOptions opts;
  opts.stage_hook = [](RepairStage at) {
    return at == RepairStage::kVerifying ? Status::Aborted("parked") :
                                           Status::OK();
  };
  ReplicaRepairer aborting(&server, opts);
  ASSERT_EQ(aborting.RepairReplica("F_users", 1).stage, RepairStage::kAborted);
  injector_.SetOutage("pg3", true);
  ASSERT_TRUE(server.InsertRow("mk.users", UserRow(300'000)).ok());
  injector_.SetOutage("pg3", false);
  const catalog::StorageDescriptor* before = Users();
  ASSERT_NE(before, nullptr);
  ASSERT_TRUE(before->replicas[1].rebuilding);
  ASSERT_FALSE(before->replicas[2].fresh(before->write_epoch));

  const std::string json = sys_.ExportCatalogJson();

  // Fresh deployment under the same store/schema names.
  Estocada restored;
  stores::RelationalStore backends[3];
  static const char* kNames[3] = {"pg1", "pg2", "pg3"};
  ASSERT_TRUE(restored.RegisterSchema(data_.schema).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(restored
                    .RegisterStore({kNames[i],
                                    catalog::StoreKind::kRelational,
                                    &backends[i], nullptr, nullptr, nullptr,
                                    nullptr})
                    .ok());
  }
  ASSERT_TRUE(restored.LoadStaging(data_.staging).ok());
  ASSERT_TRUE(restored.ImportCatalogJson(json).ok());

  auto d = restored.catalog().GetFragment("F_users");
  ASSERT_TRUE(d.ok()) << d.status();
  const catalog::StorageDescriptor* desc = *d;
  ASSERT_EQ(desc->replicas.size(), 3u);
  EXPECT_EQ(desc->write_epoch, before->write_epoch);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(desc->replicas[i].store_name, before->replicas[i].store_name);
    EXPECT_EQ(desc->replicas[i].container, before->replicas[i].container);
  }
  // The mid-rebuild marker survives: the unverified container must not
  // re-enter routing just because the catalog was re-imported.
  EXPECT_TRUE(desc->replicas[1].rebuilding);
  EXPECT_FALSE(sys_.VerifyReplica("F_users", 1).ok());
  // Import re-materializes live placements from the restored staging, so
  // the stale replica comes back fresh and verified...
  EXPECT_TRUE(desc->replicas[0].fresh(desc->write_epoch));
  EXPECT_TRUE(desc->replicas[2].fresh(desc->write_epoch));
  EXPECT_TRUE(restored.VerifyReplica("F_users", 0).ok());
  EXPECT_TRUE(restored.VerifyReplica("F_users", 2).ok());

  // ...and one repairer tick on the restored deployment finishes the job
  // the checkpoint interrupted.
  QueryServer server2(&restored, FastOptions());
  ReplicaRepairer repairer(&server2);
  auto repaired = repairer.Tick();
  ASSERT_TRUE(repaired.ok()) << repaired.status();
  EXPECT_EQ(*repaired, 1u);
  d = restored.catalog().GetFragment("F_users");
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE((*d)->replicas[1].rebuilding);
  EXPECT_TRUE(restored.VerifyReplica("F_users", 1).ok());
}

// --------------------------------------------------- Concurrency probe --

/// Clients, an outage-flipping chaos thread, a writer, and a repairer all
/// hammer the same server. The assertions are deliberately coarse — no
/// failed queries, convergence to verified truth afterwards — because the
/// real check is TSan: this is the regression probe for races between the
/// half-open probe path, the write fan-out, and repair admission.
TEST_F(ReplicationTest, ConcurrentChaosConvergesToVerifiedTruth) {
  ServerOptions so = FastOptions();
  so.worker_threads = 4;
  so.health.open_cooldown_micros = 200;
  QueryServer server(&sys_, so);
  RepairOptions ropts;
  ropts.max_store_retries = 4;
  ropts.retry_backoff_micros = 1;
  ropts.pause_poll_micros = 50;
  ReplicaRepairer repairer(&server, ropts);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 120 && !stop.load(); ++i) {
        auto r = server.Query(kUsersQuery);
        if (!r.ok()) failures.fetch_add(1);
      }
    });
  }
  threads.emplace_back([&] {  // Chaos: pg2 and pg3 flap out of phase.
    for (int i = 0; i < 40; ++i) {
      injector_.SetOutage("pg2", i % 2 == 0);
      std::this_thread::sleep_for(std::chrono::microseconds(400));
      injector_.SetOutage("pg3", i % 2 == 1);
      std::this_thread::sleep_for(std::chrono::microseconds(400));
    }
    injector_.SetOutage("pg2", false);
    injector_.SetOutage("pg3", false);
  });
  threads.emplace_back([&] {  // Writer: fan-outs race the chaos.
    for (int i = 0; i < 25; ++i) {
      server.InsertRow("mk.users", UserRow(400'000 + i));
      std::this_thread::sleep_for(std::chrono::microseconds(600));
    }
  });
  threads.emplace_back([&] {  // Repairer: heals while the chaos runs.
    while (!stop.load()) {
      repairer.Tick();
      repairer.Scrub();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (size_t t = 0; t < 4; ++t) threads[t].join();
  stop.store(true);
  threads[4].join();
  threads[5].join();

  // Every query must have been answered: the ladder ends in the staging
  // area, so chaos may degrade answers but never fail them.
  EXPECT_EQ(failures.load(), 0);

  // Quiesce and converge: with the outages gone, ticks drain every stale
  // or parked placement back to fresh.
  bool converged = false;
  for (int i = 0; i < 500 && !converged; ++i) {
    auto n = repairer.Tick();
    ASSERT_TRUE(n.ok()) << n.status();
    const catalog::StorageDescriptor* desc = Users();
    ASSERT_NE(desc, nullptr);
    converged = true;
    for (const catalog::ReplicaPlacement& p : desc->replicas) {
      if (p.rebuilding || !p.fresh(desc->write_epoch)) converged = false;
    }
    if (!converged) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(converged) << "replicas never converged after chaos";
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(sys_.VerifyReplica("F_users", i).ok()) << i;
  }
  server.health().Reset();
  auto r = ExpectServesTruth(&server, kUsersQuery);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->degraded_to_staging);
}

// ------------------------------------------------------ Autopilot hold --

TEST_F(ReplicationTest, AutopilotHoldBlocksLaunchesWhileRepairRuns) {
  QueryServer server(&sys_, FastOptions());
  migration::MigrationManager manager(&server);
  ReplicaRepairer repairer(&server);
  EXPECT_FALSE(repairer.repair_in_progress());

  std::atomic<bool> hold{true};
  tuner::AutopilotOptions topts;
  topts.hold = [&hold] { return hold.load(); };
  tuner::Autopilot pilot(&server, &manager, topts);

  // Hold raised: the tick harvests (nothing) and launches nothing.
  ASSERT_TRUE(pilot.TickOnce().ok());
  auto m = pilot.metrics();
  EXPECT_EQ(m.skipped_hold, 1u);
  EXPECT_EQ(m.launches, 0u);
  bool logged = false;
  for (const tuner::Decision& d : pilot.decision_log()) {
    if (d.action == "skip-hold") logged = true;
  }
  EXPECT_TRUE(logged);

  // Hold dropped: ticks proceed past the gate (and skip for workload
  // reasons instead — the log is empty, not held).
  hold.store(false);
  ASSERT_TRUE(pilot.TickOnce().ok());
  EXPECT_EQ(pilot.metrics().skipped_hold, 1u);
  EXPECT_EQ(pilot.metrics().ticks, 2u);
}

}  // namespace
}  // namespace estocada::replication
