/// End-to-end tests of the property-graph island: the GraphEncoding
/// pivot relations and reachability axioms, LoadGraph's staged Reach
/// completion, graph fragments materialized on the native GraphStore,
/// EXPAND/GRAPH-SCAN delegation through the untouched PACB pipeline, the
/// gmatch front-end, and cross-model joins against the document and
/// relational islands. Plus the per-kind dispatch hardening check: every
/// StoreKind is iterable, nameable, and distinct.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/strings.h"
#include "estocada/estocada.h"

namespace estocada {
namespace {

using engine::Row;
using engine::Value;

/// Set-canonical form: delegated plans and the staging oracle may differ
/// in duplicate multiplicity (bag vs set projection), never in support.
std::set<std::string> Canon(const std::vector<Row>& rows) {
  std::set<std::string> out;
  for (const Row& r : rows) out.insert(engine::RowToString(r));
  return out;
}

// ------------------------------------------- StoreKind dispatch hardening --

TEST(StoreKindTest, EveryKindHasADistinctName) {
  std::set<std::string> names;
  for (catalog::StoreKind kind : catalog::kAllStoreKinds) {
    std::string name = catalog::StoreKindName(kind);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "?") << "unnamed StoreKind " << static_cast<int>(kind);
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
  // The six islands: adding a kind must extend kAllStoreKinds (and every
  // switch over StoreKind — the build's -Wswitch enforces the rest).
  EXPECT_EQ(names.size(), 6u);
  EXPECT_TRUE(names.count("graph"));
}

TEST(StoreKindTest, RegisterStoreRequiresMatchingBackend) {
  Estocada sys;
  stores::GraphStore neo;
  // Kind and backend pointer must agree: a graph handle carrying no graph
  // backend (or a wrong-kind one) is rejected.
  EXPECT_FALSE(sys.RegisterStore({"bad", catalog::StoreKind::kGraph, nullptr,
                                  nullptr, nullptr, nullptr, nullptr,
                                  nullptr})
                   .ok());
  EXPECT_TRUE(sys.RegisterStore({"good", catalog::StoreKind::kGraph, nullptr,
                                 nullptr, nullptr, nullptr, nullptr, &neo})
                  .ok());
}

// ------------------------------------------------------ The graph island --

/// A social graph next to the marketplace: 6 users in a follow cycle with
/// chords, names as node properties, and a relational table keyed by the
/// node ids.
class GraphIslandTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(sys_.RegisterGraphDataset("soc", 3).ok());
    pivot::Schema schema;
    ASSERT_TRUE(schema.AddRelation("mk.users", 3).ok());
    ASSERT_TRUE(sys_.RegisterSchema(schema).ok());
    ASSERT_TRUE(sys_.RegisterStore({"neo", catalog::StoreKind::kGraph,
                                    nullptr, nullptr, nullptr, nullptr,
                                    nullptr, &neo_})
                    .ok());
    ASSERT_TRUE(sys_.RegisterStore({"mongo", catalog::StoreKind::kDocument,
                                    nullptr, nullptr, &mongo_, nullptr,
                                    nullptr})
                    .ok());
    ASSERT_TRUE(sys_.RegisterStore({"postgres",
                                    catalog::StoreKind::kRelational, &pg_,
                                    nullptr, nullptr, nullptr, nullptr})
                    .ok());
    encoding::GraphData g;
    for (int i = 0; i < 6; ++i) {
      std::string id = "u" + std::to_string(i);
      g.nodes.push_back(
          {id, "User", {{"name", pivot::Constant::Str("n" + id)}}});
    }
    for (int i = 0; i < 6; ++i) {
      g.edges.push_back({"u" + std::to_string(i), "follows",
                         "u" + std::to_string((i + 1) % 6), {}});
    }
    g.edges.push_back({"u0", "blocks", "u3", {}});
    ASSERT_TRUE(sys_.LoadGraph("soc", g).ok());
    for (int i = 0; i < 6; ++i) {
      std::string id = "u" + std::to_string(i);
      ASSERT_TRUE(
          sys_.LoadRow("mk.users",
                       {Value::Str(id), Value::Str("n" + id),
                        Value::Str("c" + std::to_string(i % 2))})
              .ok());
    }
  }

  void DefineGraphFragments() {
    ASSERT_TRUE(
        sys_.DefineFragment("F_node(n, l) :- soc.Node(n, l)", "neo").ok());
    ASSERT_TRUE(
        sys_.DefineFragment("F_edge(s, l, d) :- soc.Edge(s, l, d)", "neo")
            .ok());
    ASSERT_TRUE(
        sys_.DefineFragment("F_nprop(n, k, v) :- soc.NodeProp(n, k, v)",
                            "neo")
            .ok());
    ASSERT_TRUE(
        sys_.DefineFragment("F_reach(s, d) :- soc.Reach3(s, d)", "neo").ok());
  }

  /// Runs `text` through the fragments and checks it against the oracle.
  void CheckQuery(const std::string& text,
                  const std::map<std::string, Value>& params = {}) {
    auto res = sys_.Query(text, params);
    ASSERT_TRUE(res.ok()) << text << ": " << res.status();
    auto oracle = sys_.EvaluateOverStaging(text, params);
    ASSERT_TRUE(oracle.ok()) << text << ": " << oracle.status();
    EXPECT_EQ(Canon(res->rows), Canon(*oracle)) << text;
  }

  stores::GraphStore neo_;
  stores::DocumentStore mongo_;
  stores::RelationalStore pg_;
  Estocada sys_;
};

TEST_F(GraphIslandTest, RegisterGraphDatasetIsIdempotentGuarded) {
  EXPECT_EQ(sys_.RegisterGraphDataset("soc", 3).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(sys_.LoadGraph("nope", {}).code(), StatusCode::kNotFound);
}

TEST_F(GraphIslandTest, LoadGraphCompletesBoundedReachability) {
  // Reach1 is exactly the edge projection.
  auto r1 = sys_.EvaluateOverStaging("q(s, d) :- soc.Reach1(s, d)");
  auto e = sys_.EvaluateOverStaging("q(s, d) :- soc.Edge(s, l, d)");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(Canon(*r1), Canon(*e));
  auto r3 = sys_.EvaluateOverStaging("q(d) :- soc.Reach3($s, d)",
                                     {{"$s", Value::Str("u0")}});
  ASSERT_TRUE(r3.ok());
  std::set<std::string> got = Canon(*r3);
  // From u0 within 3 hops: u1, u2, u3 along the cycle plus u4, u5 via
  // the u0->u3 chord (u0->u3->u4->u5).
  EXPECT_EQ(got.size(), 5u);
  for (const char* n : {"u1", "u2", "u3", "u4", "u5"}) {
    EXPECT_TRUE(got.count(StrCat("(", n, ")"))) << n << " missing";
  }
  // Containment chain Reach1 ⊆ Reach2 ⊆ Reach3.
  auto r2 = sys_.EvaluateOverStaging("q(s, d) :- soc.Reach2(s, d)");
  auto r3all = sys_.EvaluateOverStaging("q(s, d) :- soc.Reach3(s, d)");
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r3all.ok());
  std::set<std::string> c1 = Canon(*r1), c2 = Canon(*r2), c3 = Canon(*r3all);
  EXPECT_TRUE(std::includes(c2.begin(), c2.end(), c1.begin(), c1.end()));
  EXPECT_TRUE(std::includes(c3.begin(), c3.end(), c2.begin(), c2.end()));
}

TEST_F(GraphIslandTest, MaterializationPopulatesGraphStore) {
  DefineGraphFragments();
  EXPECT_TRUE(neo_.HasGraph("F_edge"));
  EXPECT_EQ(*neo_.RowCount("F_edge"), 7u);
  EXPECT_EQ(*neo_.RowCount("F_node"), 6u);
  // The container verifies against the view over staging.
  EXPECT_TRUE(sys_.VerifyFragment("F_edge").ok());
  EXPECT_TRUE(sys_.VerifyFragment("F_reach").ok());
}

TEST_F(GraphIslandTest, ExpansionQueriesDelegateToGraphStore) {
  DefineGraphFragments();
  auto res = sys_.Query("q(d) :- soc.Edge($s, l, d)",
                        {{"$s", Value::Str("u0")}});
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_EQ(res->rows.size(), 2u);  // u1 (follows) and u3 (blocks).
  ASSERT_TRUE(res->runtime_stats.per_store.count("neo"));
  const stores::StoreStats& neo_stats = res->runtime_stats.per_store["neo"];
  // Served by an adjacency bucket probe, not a scan.
  EXPECT_GE(neo_stats.index_lookups, 1u);
  EXPECT_EQ(neo_stats.rows_scanned, 0u);
  EXPECT_NE(res->plan_text.find("EXPAND"), std::string::npos);
}

TEST_F(GraphIslandTest, UnboundQueriesGraphScan) {
  DefineGraphFragments();
  auto res = sys_.Query("q(s, l, d) :- soc.Edge(s, l, d)");
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_EQ(res->rows.size(), 7u);
  EXPECT_NE(res->plan_text.find("GRAPH-SCAN"), std::string::npos);
}

TEST_F(GraphIslandTest, QueryBatteryMatchesOracle) {
  DefineGraphFragments();
  ASSERT_TRUE(
      sys_.DefineFragment("F_users(u, n, c) :- mk.users(u, n, c)",
                          "postgres")
          .ok());
  const std::map<std::string, Value> params = {{"$s", Value::Str("u1")}};
  CheckQuery("q(d) :- soc.Edge($s, l, d)", params);
  CheckQuery("q(s, l, d) :- soc.Edge(s, l, d)");
  CheckQuery("q(d) :- soc.Reach3($s, d)", params);
  CheckQuery("q(v) :- soc.Edge($s, l, d), soc.NodeProp(d, 'name', v)",
             params);
  // The cross-model join: graph reachability x relational users.
  CheckQuery("q(d, n, c) :- soc.Reach3($s, d), mk.users(d, n, c)", params);
}

TEST_F(GraphIslandTest, GraphMatchFrontendEndToEnd) {
  DefineGraphFragments();
  frontend::GraphMatchSpec spec;
  spec.dataset = "soc";
  spec.nodes = {{"a", "User", {{"name", "'nu0'"}}}, {"b", "User", {}}};
  spec.edges = {{"a", "follows", "b", {}, 1}};
  spec.returns = {"b", "b.name"};
  auto res = sys_.QueryGraphMatch(spec);
  ASSERT_TRUE(res.ok()) << res.status();
  ASSERT_EQ(res->rows.size(), 1u);
  EXPECT_EQ(res->rows[0][0], Value::Str("u1"));
  EXPECT_EQ(res->rows[0][1], Value::Str("nu1"));

  // Bounded path *1..3 lowers to Reach3 and is served by the graph store.
  frontend::GraphMatchSpec path;
  path.dataset = "soc";
  path.nodes = {{"a", "", {{"name", "'nu0'"}}}, {"b", "", {}}};
  path.edges = {{"a", "", "b", {}, 3}};
  path.returns = {"b"};
  auto preach = sys_.QueryGraphMatch(path);
  ASSERT_TRUE(preach.ok()) << preach.status();
  EXPECT_EQ(preach->rows.size(), 5u);

  // A hop bound beyond the registered encoding is a clean error.
  path.edges[0].max_hops = 9;
  EXPECT_EQ(sys_.QueryGraphMatch(path).status().code(),
            StatusCode::kNotFound);
}

TEST_F(GraphIslandTest, InsertRowMaintainsGraphFragment) {
  DefineGraphFragments();
  ASSERT_TRUE(sys_.InsertRow("soc.Edge", {Value::Str("u5"),
                                          Value::Str("likes"),
                                          Value::Str("u2")})
                  .ok());
  EXPECT_EQ(*neo_.RowCount("F_edge"), 8u);
  CheckQuery("q(l, d) :- soc.Edge($s, l, d)", {{"$s", Value::Str("u5")}});
  auto res = sys_.Query("q(l, d) :- soc.Edge($s, l, d)",
                        {{"$s", Value::Str("u5")}});
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_EQ(Canon(res->rows).size(), 2u);  // follows->u0 and likes->u2.
  EXPECT_TRUE(sys_.VerifyFragment("F_edge").ok());
}

TEST_F(GraphIslandTest, DroppedGraphFragmentFreesContainer) {
  DefineGraphFragments();
  ASSERT_TRUE(sys_.DropFragment("F_edge").ok());
  EXPECT_FALSE(neo_.HasGraph("F_edge"));
}

}  // namespace
}  // namespace estocada
