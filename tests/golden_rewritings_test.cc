/// Golden-file tests of the PACB rewriter's output on three demo
/// scenarios. The rewriting *set* for a fixed (schema, views, query)
/// triple is part of the system's observable contract; these tests diff
/// pacb::DescribeRewritingSet against checked-in expectations so any
/// change — a lost rewriting, a new one, a different minimization — shows
/// up as a reviewable textual diff.
///
/// To regenerate after an intentional change:
///
///   UPDATE_GOLDENS=1 ./tests/golden_rewritings
///
/// then review `git diff tests/golden/` before committing.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/thread_pool.h"
#include "estocada/estocada.h"
#include "pacb/rewriter.h"
#include "pacb/view.h"
#include "pivot/parser.h"

namespace estocada::pacb {
namespace {

using pivot::Adornment;
using pivot::ConjunctiveQuery;
using pivot::ParseQuery;
using pivot::Schema;

ConjunctiveQuery Q(std::string_view text) {
  auto r = ParseQuery(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

ViewDefinition View(std::string_view text,
                    std::vector<Adornment> adornments = {}) {
  ViewDefinition v;
  v.query = Q(text);
  v.adornments = std::move(adornments);
  return v;
}

Schema SchemaWith(std::initializer_list<std::pair<const char*, size_t>> rels,
                  std::string_view deps_text = "") {
  Schema s;
  for (const auto& [name, arity] : rels) {
    EXPECT_TRUE(s.AddRelation(name, arity).ok());
  }
  if (!deps_text.empty()) {
    auto deps = pivot::ParseDependencies(deps_text);
    EXPECT_TRUE(deps.ok()) << deps.status();
    for (auto& d : *deps) s.AddDependency(std::move(d));
  }
  return s;
}

std::string GoldenPath(const std::string& name) {
  return std::string(GOLDEN_DIR) + "/" + name + ".golden";
}

void CompareWithGolden(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (std::getenv("UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "golden updated: " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " — run with UPDATE_GOLDENS=1 to create it";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), actual)
      << "rewriting set for '" << name << "' changed; if intentional, "
      << "regenerate with UPDATE_GOLDENS=1 and review the diff";
}

void RunGolden(const std::string& name, Schema schema,
               std::vector<ViewDefinition> views,
               std::initializer_list<const char*> queries) {
  Rewriter rewriter(std::move(schema), std::move(views));
  ASSERT_TRUE(rewriter.Prepare().ok());
  // Every scenario also runs with pool-parallel candidate verification:
  // the RewriterOptions::verify_pool contract is that rewriting sets are
  // byte-identical with and without a pool, so both renderings are diffed
  // against the same golden.
  ThreadPool pool(3);
  RewriterOptions pooled;
  pooled.verify_pool = &pool;
  std::string actual;
  std::string pooled_actual;
  for (const char* qtext : queries) {
    auto result = rewriter.Rewrite(Q(qtext));
    ASSERT_TRUE(result.ok()) << qtext << ": " << result.status();
    auto pooled_result = rewriter.Rewrite(Q(qtext), pooled);
    ASSERT_TRUE(pooled_result.ok()) << qtext << ": " << pooled_result.status();
    for (std::string* out : {&actual, &pooled_actual}) {
      out->append("query: ");
      out->append(qtext);
      out->append("\n");
    }
    actual += DescribeRewritingSet(*result);
    actual += "\n";
    pooled_actual += DescribeRewritingSet(*pooled_result);
    pooled_actual += "\n";
  }
  EXPECT_EQ(actual, pooled_actual)
      << "pool-verified rewriting set diverged from the sequential one";
  CompareWithGolden(name, actual);
}

/// The paper's §II web-marketplace: users and carts split across a
/// relational store (full users table), a key-value store (carts keyed by
/// user, binding pattern on the key), and a document store holding a
/// pre-joined user×cart fragment.
TEST(GoldenRewritings, Marketplace) {
  RunGolden(
      "marketplace",
      SchemaWith({{"mk.users", 3}, {"mk.carts", 2}},
                 "mk.users(u, n1, c1), mk.users(u, n2, c2) -> n1 = n2; "
                 "mk.users(u, n1, c1), mk.users(u, n2, c2) -> c1 = c2; "
                 "mk.carts(u, p) -> mk.users(u, n, c)"),
      {
          View("F_users(u, n, c) :- mk.users(u, n, c)"),
          View("F_cart(u, p) :- mk.carts(u, p)",
               {Adornment::kInput, Adornment::kFree}),
          View("F_cart_city(u, p, c) :- mk.carts(u, p), mk.users(u, n, c)"),
          View("F_city(u, c) :- mk.users(u, n, c)"),
      },
      {
          "q(p) :- mk.carts($uid, p)",
          "q(u, p, c) :- mk.carts(u, p), mk.users(u, n, c)",
          "q(n, c) :- mk.users($uid, n, c)",
      });
}

/// A log-analytics layout: the full log lives on the parallel store, with
/// narrow projections replicated for cheap host/message lookups.
TEST(GoldenRewritings, Bigdata) {
  RunGolden(
      "bigdata",
      SchemaWith({{"ds.logs", 3}},
                 "ds.logs(i, h1, m1), ds.logs(i, h2, m2) -> h1 = h2; "
                 "ds.logs(i, h1, m1), ds.logs(i, h2, m2) -> m1 = m2"),
      {
          View("F_logs(i, h, m) :- ds.logs(i, h, m)"),
          View("F_host(i, h) :- ds.logs(i, h, m)"),
          View("F_msg(i, m) :- ds.logs(i, h, m)"),
      },
      {
          "q(i, h, m) :- ds.logs(i, h, m)",
          "q(h) :- ds.logs($id, h, m)",
          "q(i) :- ds.logs(i, 'web1', m)",
      });
}

/// The marketplace again, but with F_users hash-partitioned across two
/// stores and F_orders range-partitioned: partitioning is part of the
/// *where*, not the *what*, so the golden pins two contracts at once —
/// the rewriting set is identical to an unpartitioned layout (the PACB
/// rewriter sees one fragment per view), while the serving plans show the
/// physical split: a scatter-gather fan-out for unbound reads and a
/// single-shard route when the partition key is bound.
TEST(GoldenRewritings, PartitionedMarketplacePlans) {
  stores::RelationalStore s[4];
  Estocada sys;
  pivot::Schema schema;
  ASSERT_TRUE(schema.AddRelation("mk.users", 3).ok());
  ASSERT_TRUE(schema.AddRelation("mk.orders", 4).ok());
  ASSERT_TRUE(sys.RegisterSchema(schema).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(sys.RegisterStore({"s" + std::to_string(i),
                                   catalog::StoreKind::kRelational, &s[i],
                                   nullptr, nullptr, nullptr, nullptr})
                    .ok());
  }
  // Small fixed extent so fragment statistics (and with them plan costs)
  // are bit-stable.
  for (int64_t u = 0; u < 12; ++u) {
    ASSERT_TRUE(sys.LoadRow("mk.users",
                            {engine::Value::Int(u),
                             engine::Value::Str("n" + std::to_string(u)),
                             engine::Value::Str("c" + std::to_string(u % 3))})
                    .ok());
  }
  for (int64_t o = 0; o < 30; ++o) {
    ASSERT_TRUE(sys.LoadRow("mk.orders",
                            {engine::Value::Int(o),
                             engine::Value::Int(o % 12),
                             engine::Value::Int(o % 7),
                             engine::Value::Int(100 + o)})
                    .ok());
  }
  ASSERT_TRUE(sys.DefinePartitionedFragment(
                      "F_users(u, n, c) :- mk.users(u, n, c)",
                      catalog::PartitionSpec::Kind::kHash, 0, {"s0", "s1"})
                  .ok());
  ASSERT_TRUE(sys.DefinePartitionedFragment(
                      "F_orders(o, u, p, t) :- mk.orders(o, u, p, t)",
                      catalog::PartitionSpec::Kind::kRange, 0, {"s2", "s3"},
                      {engine::Value::Int(15)})
                  .ok());

  std::string actual;
  for (const char* qtext : {
           "q(u, n, c) :- mk.users(u, n, c)",
           "q(n, c) :- mk.users($u, n, c)",
           "q(o, t) :- mk.orders(o, $u, p, t)",
           "q(n, o, t) :- mk.users(u, n, c), mk.orders(o, u, p, t)",
       }) {
    auto r = sys.Query(qtext, {{"$u", engine::Value::Int(3)}});
    ASSERT_TRUE(r.ok()) << qtext << ": " << r.status();
    actual += "query: ";
    actual += qtext;
    actual += "\nrewriting: ";
    actual += r->rewriting_text;
    actual += "\nplan:\n";
    actual += r->plan_text;
    actual += "\n";
  }
  CompareWithGolden("partitioned_marketplace", actual);
}

/// The marketplace with a social graph on the side: a property-graph
/// dataset (soc) encoded into Node/Edge/NodeProp/Reach relations, its
/// Edge and Reach3 fragments living natively on a graph store, the node
/// properties on a document store, and the users table on a relational
/// store. The golden pins three contracts at once: the untouched PACB
/// rewriter rewrites a single CQ spanning all three islands; bound graph
/// reads compile to EXPAND (adjacency-bucket probes) while unbound ones
/// compile to GRAPH-SCAN; and the gmatch front-end's bounded path lowers
/// to a Reach atom served by the graph store.
TEST(GoldenRewritings, GraphMarketplacePlans) {
  stores::GraphStore neo;
  stores::DocumentStore mongo;
  stores::RelationalStore postgres;
  Estocada sys;
  ASSERT_TRUE(sys.RegisterGraphDataset("soc", 3).ok());
  pivot::Schema schema;
  ASSERT_TRUE(schema.AddRelation("mk.users", 3).ok());
  ASSERT_TRUE(sys.RegisterSchema(schema).ok());
  ASSERT_TRUE(sys.RegisterStore({"neo", catalog::StoreKind::kGraph, nullptr,
                                 nullptr, nullptr, nullptr, nullptr, &neo})
                  .ok());
  ASSERT_TRUE(sys.RegisterStore({"mongo", catalog::StoreKind::kDocument,
                                 nullptr, nullptr, &mongo, nullptr, nullptr})
                  .ok());
  ASSERT_TRUE(sys.RegisterStore({"postgres", catalog::StoreKind::kRelational,
                                 &postgres, nullptr, nullptr, nullptr,
                                 nullptr})
                  .ok());
  // Small fixed extent so fragment statistics (and with them plan costs)
  // are bit-stable: a 6-user follow cycle with a couple of chords.
  encoding::GraphData g;
  for (int i = 0; i < 6; ++i) {
    std::string id = "u" + std::to_string(i);
    g.nodes.push_back({id, "User",
                       {{"name", pivot::Constant::Str("n" + id)}}});
  }
  for (int i = 0; i < 6; ++i) {
    g.edges.push_back({"u" + std::to_string(i), "follows",
                       "u" + std::to_string((i + 1) % 6), {}});
  }
  g.edges.push_back({"u0", "blocks", "u3", {}});
  g.edges.push_back({"u2", "follows", "u5", {}});
  ASSERT_TRUE(sys.LoadGraph("soc", g).ok());
  for (int i = 0; i < 6; ++i) {
    std::string id = "u" + std::to_string(i);
    ASSERT_TRUE(sys.LoadRow("mk.users",
                            {engine::Value::Str(id),
                             engine::Value::Str("n" + id),
                             engine::Value::Str("c" + std::to_string(i % 2))})
                    .ok());
  }
  ASSERT_TRUE(sys.DefineFragment("F_node(n, l) :- soc.Node(n, l)", "neo")
                  .ok());
  ASSERT_TRUE(sys.DefineFragment("F_edge(s, l, d) :- soc.Edge(s, l, d)",
                                 "neo")
                  .ok());
  ASSERT_TRUE(sys.DefineFragment("F_reach(s, d) :- soc.Reach3(s, d)", "neo")
                  .ok());
  ASSERT_TRUE(sys.DefineFragment("F_nprop(n, k, v) :- soc.NodeProp(n, k, v)",
                                 "mongo")
                  .ok());
  ASSERT_TRUE(sys.DefineFragment("F_users(u, n, c) :- mk.users(u, n, c)",
                                 "postgres")
                  .ok());

  std::string actual;
  auto append = [&actual](const char* label, const char* qtext,
                          const Estocada::QueryResult& r) {
    actual += "query: ";
    actual += label;
    actual += qtext;
    actual += "\nrewriting: ";
    actual += r.rewriting_text;
    actual += "\nplan:\n";
    actual += r.plan_text;
    actual += "\n";
  };
  const std::map<std::string, engine::Value> params = {
      {"$s", engine::Value::Str("u0")}};
  for (const char* qtext : {
           // Bound anchor: the graph store serves an EXPAND.
           "q(d) :- soc.Edge($s, l, d)",
           // Unbound: a GRAPH-SCAN over the adjacency store.
           "q(s, l, d) :- soc.Edge(s, l, d)",
           // One CQ spanning all three islands: a bounded path on the
           // graph store, node properties on the document store, and the
           // relational users table.
           "q(d, nm, c) :- soc.Reach3($s, d), soc.NodeProp(d, 'name', nm), "
           "mk.users(d, u2, c)",
       }) {
    auto r = sys.Query(qtext, params);
    ASSERT_TRUE(r.ok()) << qtext << ": " << r.status();
    append("", qtext, *r);
  }
  // The gmatch front-end: a bounded path b -*1..3-> c lowers to Reach3.
  frontend::GraphMatchSpec spec;
  spec.dataset = "soc";
  spec.nodes = {{"a", "User", {}}, {"b", "User", {}}};
  spec.edges = {{"a", "", "b", {}, 3}};
  spec.returns = {"b", "b.name"};
  auto r = sys.QueryGraphMatch(spec);
  ASSERT_TRUE(r.ok()) << r.status();
  append("MATCH (a:User)-[*1..3]->(b:User) RETURN b, b.name", "", *r);
  CompareWithGolden("graph_marketplace", actual);
}

/// The classic R ⋈ S with R replicated on two stores plus a pre-joined
/// fragment: the rewriter must report every combination (join view alone,
/// and each replica joined with S).
TEST(GoldenRewritings, ReplicatedJoin) {
  RunGolden("replicated_rs", SchemaWith({{"R", 2}, {"S", 2}}),
            {
                View("V_r1(x, y) :- R(x, y)"),
                View("V_r2(x, y) :- R(x, y)"),
                View("V_s(y, z) :- S(y, z)"),
                View("V_rs(x, z) :- R(x, y), S(y, z)"),
            },
            {
                "q(x, z) :- R(x, y), S(y, z)",
                "q(x, y) :- R(x, y)",
            });
}

}  // namespace
}  // namespace estocada::pacb
