#include <gtest/gtest.h>

#include "chase/chase.h"
#include "chase/containment.h"
#include "chase/homomorphism.h"
#include "chase/instance.h"
#include "chase/prov.h"
#include "common/rng.h"
#include "pivot/parser.h"

namespace estocada::chase {
namespace {

using pivot::Atom;
using pivot::ParseAtomList;
using pivot::ParseDependencies;
using pivot::ParseDependency;
using pivot::ParseQuery;
using pivot::Term;

std::vector<Atom> Atoms(std::string_view text) {
  auto r = ParseAtomList(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

TEST(ProvFormulaTest, BasicAlgebra) {
  ProvFormula f;
  EXPECT_TRUE(f.is_false());
  ProvFormula t = ProvFormula::True();
  EXPECT_TRUE(t.is_true());
  ProvFormula a = ProvFormula::Leaf(1);
  ProvFormula b = ProvFormula::Leaf(2);
  EXPECT_EQ(a.And(b).ToString(), "{1,2}");
  EXPECT_EQ(a.Or(b).ToString(), "{1} | {2}");
  EXPECT_EQ(a.And(t), a);
  EXPECT_EQ(a.Or(f), a);
  EXPECT_TRUE(a.And(f).is_false());
}

TEST(ProvFormulaTest, MinimizationRemovesSupersets) {
  ProvFormula a = ProvFormula::Leaf(1);
  ProvFormula ab = ProvFormula::Leaf(1).And(ProvFormula::Leaf(2));
  ProvFormula u = a.Or(ab);
  EXPECT_EQ(u, a);  // {1} subsumes {1,2}
  EXPECT_TRUE(u.Subsumes(ab));
  EXPECT_FALSE(ab.Subsumes(a));
}

TEST(ProvFormulaTest, AndDistributes) {
  // ({1}|{2}) & {3} == {1,3}|{2,3}
  ProvFormula lhs = ProvFormula::Leaf(1).Or(ProvFormula::Leaf(2));
  ProvFormula out = lhs.And(ProvFormula::Leaf(3));
  EXPECT_EQ(out.ToString(), "{1,3} | {2,3}");
}

TEST(InstanceTest, InsertDeduplicates) {
  Instance inst;
  auto a = Atoms("R(1, 2)");
  auto r1 = inst.Insert(a[0]);
  auto r2 = inst.Insert(a[0]);
  EXPECT_TRUE(r1.changed);
  EXPECT_FALSE(r2.changed);
  EXPECT_EQ(r1.id, r2.id);
  EXPECT_EQ(inst.live_size(), 1u);
  EXPECT_TRUE(inst.Contains(a[0]));
}

TEST(InstanceTest, InsertAllRejectsVariables) {
  Instance inst;
  EXPECT_EQ(inst.InsertAll(Atoms("R(x, 2)")).code(),
            StatusCode::kInvalidArgument);
}

TEST(InstanceTest, FreshNullsAvoidExisting) {
  Instance inst;
  Atom a("R", {Term::Null(5)});
  inst.Insert(a);
  Term fresh = inst.FreshNull();
  EXPECT_GT(fresh.null_id(), 5u);
}

TEST(InstanceTest, MergeTermsRedirectsAndCollapses) {
  Instance inst;
  Atom a("R", {Term::Null(0), Term::Int(1)});
  Atom b("R", {Term::Null(1), Term::Int(1)});
  inst.Insert(a);
  inst.Insert(b);
  EXPECT_EQ(inst.live_size(), 2u);
  auto merged = inst.MergeTerms(Term::Null(0), Term::Null(1));
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(*merged);
  EXPECT_EQ(inst.live_size(), 1u);  // Atoms collapsed.
  EXPECT_EQ(inst.Canonical(Term::Null(1)), Term::Null(0));
}

TEST(InstanceTest, MergeConstantWinsOverNull) {
  Instance inst;
  inst.Insert(Atom("R", {Term::Null(3)}));
  ASSERT_TRUE(inst.MergeTerms(Term::Null(3), Term::Str("c")).ok());
  EXPECT_EQ(inst.Canonical(Term::Null(3)), Term::Str("c"));
  EXPECT_TRUE(inst.Contains(Atom("R", {Term::Str("c")})));
}

TEST(InstanceTest, MergeDistinctConstantsFails) {
  Instance inst;
  auto r = inst.MergeTerms(Term::Int(1), Term::Int(2));
  EXPECT_EQ(r.status().code(), StatusCode::kChaseFailure);
}

TEST(InstanceTest, ProvenanceOrOnDuplicate) {
  Instance inst;
  inst.set_track_provenance(true);
  Atom a("R", {Term::Int(1)});
  inst.Insert(a, ProvFormula::Leaf(1));
  auto r = inst.Insert(a, ProvFormula::Leaf(2));
  EXPECT_TRUE(r.changed);
  EXPECT_EQ(inst.provenance(r.id).ToString(), "{1} | {2}");
  // Subsumed provenance does not change anything.
  auto r2 = inst.Insert(a, ProvFormula::Leaf(1).And(ProvFormula::Leaf(2)));
  EXPECT_FALSE(r2.changed);
}

TEST(HomomorphismTest, FindsAllMatches) {
  Instance inst;
  ASSERT_TRUE(inst.InsertAll(Atoms("E(1, 2), E(2, 3), E(3, 1)")).ok());
  auto matches = FindHomomorphisms(Atoms("E(x, y), E(y, z)"), inst);
  EXPECT_EQ(matches.size(), 3u);  // The cycle has 3 length-2 paths.
}

TEST(HomomorphismTest, RespectsStartBindings) {
  Instance inst;
  ASSERT_TRUE(inst.InsertAll(Atoms("E(1, 2), E(2, 3)")).ok());
  pivot::Substitution start{{"x", Term::Int(2)}};
  auto matches = FindHomomorphisms(Atoms("E(x, y)"), inst, start);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].sub.at("y"), Term::Int(3));
}

TEST(HomomorphismTest, ConstantMismatchFails) {
  Instance inst;
  ASSERT_TRUE(inst.InsertAll(Atoms("E(1, 2)")).ok());
  EXPECT_FALSE(ExistsHomomorphism(Atoms("E(1, 3)"), inst));
  EXPECT_TRUE(ExistsHomomorphism(Atoms("E(1, x)"), inst));
}

TEST(HomomorphismTest, RepeatedVariableMustAgree) {
  Instance inst;
  ASSERT_TRUE(inst.InsertAll(Atoms("E(1, 2), E(2, 2)")).ok());
  auto matches = FindHomomorphisms(Atoms("E(x, x)"), inst);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].sub.at("x"), Term::Int(2));
}

TEST(HomomorphismTest, AtomIdsAlignWithPatternOrder) {
  Instance inst;
  ASSERT_TRUE(inst.InsertAll(Atoms("A(1), B(1)")).ok());
  auto matches = FindHomomorphisms(Atoms("B(x), A(x)"), inst);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(inst.atom(matches[0].atom_ids[0]).relation, "B");
  EXPECT_EQ(inst.atom(matches[0].atom_ids[1]).relation, "A");
}

TEST(HomomorphismTest, LimitStopsEarly) {
  Instance inst;
  for (int i = 0; i < 10; ++i) {
    inst.Insert(Atom("R", {Term::Int(i)}));
  }
  auto matches = FindHomomorphisms(Atoms("R(x)"), inst, {}, 3);
  EXPECT_EQ(matches.size(), 3u);
}

TEST(ChaseTest, TransitiveClosureTgd) {
  Instance inst;
  ASSERT_TRUE(
      inst.InsertAll(Atoms("Child(1, 2), Child(2, 3), Child(3, 4)")).ok());
  auto deps = ParseDependencies(R"(
    Child(p, c) -> Desc(p, c)
    Desc(a, b), Child(b, c) -> Desc(a, c)
  )");
  ASSERT_TRUE(deps.ok());
  ChaseStats stats;
  ASSERT_TRUE(RunChase(*deps, &inst, {}, &stats).ok());
  EXPECT_TRUE(stats.reached_fixpoint);
  EXPECT_TRUE(inst.Contains(Atoms("Desc(1, 4)")[0]));
  EXPECT_TRUE(inst.Contains(Atoms("Desc(2, 4)")[0]));
  EXPECT_FALSE(inst.Contains(Atoms("Desc(4, 1)")[0]));
  // 3 Child + 6 Desc = 9 atoms.
  EXPECT_EQ(inst.live_size(), 9u);
}

TEST(ChaseTest, ExistentialCreatesFreshNulls) {
  Instance inst;
  ASSERT_TRUE(inst.InsertAll(Atoms("Person(1)")).ok());
  auto deps = ParseDependencies("Person(p) -> HasName(p, n)");
  ASSERT_TRUE(deps.ok());
  ASSERT_TRUE(RunChase(*deps, &inst).ok());
  ASSERT_EQ(inst.AtomsOf("HasName").size(), 1u);
  const Atom& a = inst.atom(inst.AtomsOf("HasName")[0]);
  EXPECT_TRUE(a.terms[1].is_labelled_null());
}

TEST(ChaseTest, SatisfiedTriggerDoesNotFire) {
  Instance inst;
  ASSERT_TRUE(inst.InsertAll(Atoms("Person(1), HasName(1, 'ada')")).ok());
  auto deps = ParseDependencies("Person(p) -> HasName(p, n)");
  ASSERT_TRUE(deps.ok());
  ChaseStats stats;
  ASSERT_TRUE(RunChase(*deps, &inst, {}, &stats).ok());
  EXPECT_EQ(stats.tgd_fires, 0u);
  EXPECT_EQ(inst.live_size(), 2u);
}

TEST(ChaseTest, EgdEquatesNullWithConstant) {
  Instance inst;
  ASSERT_TRUE(inst.InsertAll(Atoms("R(1, 'a')")).ok());
  Atom with_null("R", {Term::Int(1), inst.FreshNull()});
  inst.Insert(with_null);
  auto deps = ParseDependencies("R(x, y), R(x, z) -> y = z");
  ASSERT_TRUE(deps.ok());
  ChaseStats stats;
  ASSERT_TRUE(RunChase(*deps, &inst, {}, &stats).ok());
  EXPECT_EQ(stats.egd_merges, 1u);
  EXPECT_EQ(inst.live_size(), 1u);
}

TEST(ChaseTest, EgdConstantClashFailsChase) {
  Instance inst;
  ASSERT_TRUE(inst.InsertAll(Atoms("R(1, 'a'), R(1, 'b')")).ok());
  auto deps = ParseDependencies("R(x, y), R(x, z) -> y = z");
  ASSERT_TRUE(deps.ok());
  EXPECT_EQ(RunChase(*deps, &inst).code(), StatusCode::kChaseFailure);
}

TEST(ChaseTest, NonTerminatingSetHitsRoundLimit) {
  Instance inst;
  ASSERT_TRUE(inst.InsertAll(Atoms("R(1, 2)")).ok());
  auto deps = ParseDependencies("R(x, y) -> R(y, w)");
  ASSERT_TRUE(deps.ok());
  ChaseOptions opts;
  opts.max_rounds = 5;
  Status st = RunChase(*deps, &inst, opts);
  EXPECT_EQ(st.code(), StatusCode::kChaseFailure);
}

TEST(ChaseTest, MaxAtomsGuard) {
  Instance inst;
  ASSERT_TRUE(inst.InsertAll(Atoms("R(1, 2)")).ok());
  auto deps = ParseDependencies("R(x, y) -> R(y, w)");
  ASSERT_TRUE(deps.ok());
  ChaseOptions opts;
  opts.max_rounds = 10000;
  opts.max_atoms = 50;
  EXPECT_EQ(RunChase(*deps, &inst, opts).code(), StatusCode::kChaseFailure);
}

TEST(ChaseTest, ChaseSatisfiesDependenciesAfterwards) {
  // Property-ish: after a successful chase every TGD has no active trigger.
  Instance inst;
  ASSERT_TRUE(inst.InsertAll(
                      Atoms("Child(1, 2), Child(1, 3), Child(2, 4), Root(1)"))
                  .ok());
  auto deps = ParseDependencies(R"(
    Child(p, c) -> Desc(p, c)
    Desc(a, b), Child(b, c) -> Desc(a, c)
    Root(r), Child(p, r) -> Bad(r)
  )");
  ASSERT_TRUE(deps.ok());
  ASSERT_TRUE(RunChase(*deps, &inst).ok());
  for (const auto& d : *deps) {
    if (!d.is_tgd()) continue;
    auto matches = FindHomomorphisms(d.tgd.body, inst);
    for (const auto& m : matches) {
      auto head = ApplySubstitution(m.sub, d.tgd.head);
      EXPECT_TRUE(ExistsHomomorphism(head, inst))
          << "unsatisfied trigger for " << d.ToString();
    }
  }
}

TEST(ChaseTest, ProvenanceTracksDerivation) {
  Instance inst;
  inst.set_track_provenance(true);
  auto a = Atoms("V1(1, 2), V2(2, 3)");
  auto r1 = inst.Insert(a[0], ProvFormula::Leaf(10));
  inst.Insert(a[1], ProvFormula::Leaf(20));
  (void)r1;
  auto deps = ParseDependencies("V1(x, y), V2(y, z) -> Joined(x, z)");
  ASSERT_TRUE(deps.ok());
  ASSERT_TRUE(RunChase(*deps, &inst).ok());
  ASSERT_EQ(inst.AtomsOf("Joined").size(), 1u);
  size_t id = inst.AtomsOf("Joined")[0];
  EXPECT_EQ(inst.provenance(id).ToString(), "{10,20}");
}

TEST(ChaseTest, ProvenanceAlternativeDerivationsAreOred) {
  Instance inst;
  inst.set_track_provenance(true);
  inst.Insert(Atoms("V1(1)")[0], ProvFormula::Leaf(1));
  inst.Insert(Atoms("V2(1)")[0], ProvFormula::Leaf(2));
  auto deps = ParseDependencies(R"(
    V1(x) -> Out(x)
    V2(x) -> Out(x)
  )");
  ASSERT_TRUE(deps.ok());
  ASSERT_TRUE(RunChase(*deps, &inst).ok());
  size_t id = inst.AtomsOf("Out")[0];
  EXPECT_EQ(inst.provenance(id).ToString(), "{1} | {2}");
}

TEST(ContainmentTest, ClassicSubsumption) {
  // q1 asks for a 2-path; q2 asks for an edge endpoint pair — q1 ⊑ q2 only
  // via constraints; without constraints a 2-path is not contained in edge.
  auto q1 = ParseQuery("q(x, z) :- E(x, y), E(y, z)");
  auto q2 = ParseQuery("q(x, z) :- E(x, z)");
  ASSERT_TRUE(q1.ok() && q2.ok());
  auto c = IsContainedIn(*q1, *q2, {});
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(*c);
  // But transitivity makes it contained.
  auto deps = ParseDependencies("E(x, y), E(y, z) -> E(x, z)");
  ASSERT_TRUE(deps.ok());
  auto c2 = IsContainedIn(*q1, *q2, *deps);
  ASSERT_TRUE(c2.ok());
  EXPECT_TRUE(*c2);
}

TEST(ContainmentTest, MorePatternsContainedInFewer) {
  auto q1 = ParseQuery("q(x) :- R(x, y), S(y), T(y)");
  auto q2 = ParseQuery("q(x) :- R(x, y), S(y)");
  ASSERT_TRUE(q1.ok() && q2.ok());
  EXPECT_TRUE(*IsContainedIn(*q1, *q2, {}));
  EXPECT_FALSE(*IsContainedIn(*q2, *q1, {}));
}

TEST(ContainmentTest, EquivalenceUpToVariableRenaming) {
  auto q1 = ParseQuery("q(a) :- R(a, b), R(b, a)");
  auto q2 = ParseQuery("q(x) :- R(x, y), R(y, x)");
  ASSERT_TRUE(q1.ok() && q2.ok());
  EXPECT_TRUE(*AreEquivalent(*q1, *q2, {}));
}

TEST(ContainmentTest, HeadMappingIsEnforced) {
  auto q1 = ParseQuery("q(x, y) :- R(x, y)");
  auto q2 = ParseQuery("q(y, x) :- R(x, y)");
  ASSERT_TRUE(q1.ok() && q2.ok());
  // Same body, transposed head: not contained without symmetry.
  EXPECT_FALSE(*IsContainedIn(*q1, *q2, {}));
  auto deps = ParseDependencies("R(x, y) -> R(y, x)");
  ASSERT_TRUE(deps.ok());
  EXPECT_TRUE(*IsContainedIn(*q1, *q2, *deps));
}

TEST(ContainmentTest, ConstantsInHead) {
  auto q1 = ParseQuery("q(x) :- R(x, 'a')");
  auto q2 = ParseQuery("q(x) :- R(x, y)");
  ASSERT_TRUE(q1.ok() && q2.ok());
  EXPECT_TRUE(*IsContainedIn(*q1, *q2, {}));
  EXPECT_FALSE(*IsContainedIn(*q2, *q1, {}));
}

TEST(ContainmentTest, ArityMismatchRejected) {
  auto q1 = ParseQuery("q(x) :- R(x, y)");
  auto q2 = ParseQuery("q(x, y) :- R(x, y)");
  ASSERT_TRUE(q1.ok() && q2.ok());
  EXPECT_EQ(IsContainedIn(*q1, *q2, {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ContainmentTest, EgdKeyEnablesContainment) {
  // q1 splits the S/T conditions over two R-atoms with the same key; only
  // the key EGD (which merges the two value nulls during the chase) makes
  // q1 contained in q2.
  auto q1 = ParseQuery("q(x) :- R(x, a), R(x, b), S(a), T(b)");
  auto q2 = ParseQuery("q(x) :- R(x, y), S(y), T(y)");
  ASSERT_TRUE(q1.ok() && q2.ok());
  EXPECT_FALSE(*IsContainedIn(*q1, *q2, {}));
  auto deps = ParseDependencies("R(k, a), R(k, b) -> a = b");
  ASSERT_TRUE(deps.ok());
  EXPECT_TRUE(*IsContainedIn(*q1, *q2, *deps));
  EXPECT_TRUE(*AreEquivalent(*q1, *q2, *deps));
}

/// Property: containment via chase agrees with direct evaluation over
/// random small instances (soundness spot-check: q1 ⊑ q2 implies answers
/// of q1 are answers of q2 on every instance).
class ContainmentSoundnessProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ContainmentSoundnessProperty, ContainmentImpliesAnswerInclusion) {
  Rng rng(GetParam());
  // Random queries over binary relations R, S.
  auto random_query = [&rng]() {
    std::vector<std::string> vars{"a", "b", "c", "d"};
    std::vector<Atom> body;
    size_t n = 1 + rng.Uniform(3);
    for (size_t i = 0; i < n; ++i) {
      std::string rel = rng.Chance(0.5) ? "R" : "S";
      body.push_back(Atom(rel, {Term::Var(rng.Pick(vars)),
                                Term::Var(rng.Pick(vars))}));
    }
    pivot::ConjunctiveQuery q;
    q.name = "q";
    q.body = body;
    // Head: first variable occurring.
    q.head = {Term::Var(body[0].terms[0].var_name())};
    return q;
  };
  auto evaluate = [](const pivot::ConjunctiveQuery& q, const Instance& inst) {
    std::set<std::string> answers;
    for (const auto& m : FindHomomorphisms(q.body, inst)) {
      answers.insert(
          pivot::ApplySubstitution(m.sub, q.head[0]).ToString());
    }
    return answers;
  };
  for (int trial = 0; trial < 20; ++trial) {
    pivot::ConjunctiveQuery q1 = random_query();
    pivot::ConjunctiveQuery q2 = random_query();
    auto contained = IsContainedIn(q1, q2, {});
    ASSERT_TRUE(contained.ok());
    if (!*contained) continue;
    // Random instance; answer sets must be included.
    Instance inst;
    for (int i = 0; i < 12; ++i) {
      std::string rel = rng.Chance(0.5) ? "R" : "S";
      inst.Insert(Atom(rel, {Term::Int(static_cast<int64_t>(rng.Uniform(4))),
                             Term::Int(static_cast<int64_t>(rng.Uniform(4)))}));
    }
    auto a1 = evaluate(q1, inst);
    auto a2 = evaluate(q2, inst);
    for (const auto& ans : a1) {
      EXPECT_TRUE(a2.count(ans))
          << q1.ToString() << " vs " << q2.ToString() << " answer " << ans;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContainmentSoundnessProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

// ---- Interned-kernel contracts: FindHomomorphisms limit, index
// maintenance under EGD merges, indexed matcher vs the scan oracle. ----

TEST(HomomorphismTest, LimitZeroMeansUnlimited) {
  Instance inst;
  for (int i = 0; i < 10; ++i) {
    inst.Insert(Atom("R", {Term::Int(i)}));
  }
  EXPECT_EQ(FindHomomorphisms(Atoms("R(x)"), inst, {}, 0).size(), 10u);
  EXPECT_EQ(FindHomomorphisms(Atoms("R(x)"), inst).size(), 10u);
  EXPECT_EQ(FindHomomorphisms(Atoms("R(x)"), inst, {}, 1).size(), 1u);
  EXPECT_EQ(FindHomomorphisms(Atoms("R(x)"), inst, {}, 4).size(), 4u);
  // A limit past the total is not an error: everything is returned.
  EXPECT_EQ(FindHomomorphisms(Atoms("R(x)"), inst, {}, 99).size(), 10u);
}

TEST(HomomorphismTest, EarlyStopRestoresMatcherState) {
  Instance inst;
  ASSERT_TRUE(inst.InsertAll(Atoms("E(1, 2), E(2, 3), E(3, 4), E(1, 3)")).ok());
  HomomorphismMatcher m(Atoms("E(x, y), E(y, z)"));
  std::vector<std::vector<size_t>> full;
  EXPECT_TRUE(m.ForEach(inst, {}, [&](const Match& mt) {
    full.push_back(mt.atom_ids);
    return true;
  }));
  ASSERT_FALSE(full.empty());
  // Stop at the first match, then re-enumerate with the same matcher: the
  // early stop must leave no residue (slot bindings unwound, scratch
  // reset), so the second full pass reproduces the first exactly.
  std::vector<size_t> first;
  EXPECT_FALSE(m.ForEach(inst, {}, [&](const Match& mt) {
    first = mt.atom_ids;
    return false;
  }));
  EXPECT_EQ(first, full[0]);
  std::vector<std::vector<size_t>> again;
  EXPECT_TRUE(m.ForEach(inst, {}, [&](const Match& mt) {
    again.push_back(mt.atom_ids);
    return true;
  }));
  EXPECT_EQ(again, full);
}

TEST(InstanceTest, IndexConsistentAfterEgdMerges) {
  Instance inst;
  ASSERT_TRUE(inst.InsertAll(Atoms("R(1, 'a')")).ok());
  Term n1 = inst.FreshNull();
  Term n2 = inst.FreshNull();
  inst.Insert(Atom("R", {Term::Int(1), n1}));
  inst.Insert(Atom("R", {Term::Int(2), n1}));
  inst.Insert(Atom("R", {Term::Int(2), n2}));
  inst.Insert(Atom("S", {n2, n1}));
  auto deps = ParseDependencies("R(x, y), R(x, z) -> y = z");
  ASSERT_TRUE(deps.ok());
  ChaseStats stats;
  ASSERT_TRUE(RunChase(*deps, &inst, {}, &stats).ok());
  ASSERT_GT(stats.egd_merges, 0u);
  std::string err;
  EXPECT_TRUE(inst.CheckIndexConsistency(&err)) << err;
  // The key EGD chains both nulls into 'a'; lookups must resolve through
  // the rebuilt (relation, position, value) and row indexes.
  EXPECT_TRUE(inst.Contains(Atom("R", {Term::Int(1), Term::Str("a")})));
  EXPECT_TRUE(inst.Contains(Atom("R", {Term::Int(1), n1})));
  EXPECT_TRUE(inst.Contains(Atom("R", {Term::Int(2), n2})));
  EXPECT_TRUE(inst.Contains(Atom("S", {Term::Str("a"), Term::Str("a")})));
  EXPECT_FALSE(inst.Contains(Atom("S", {Term::Str("a"), Term::Int(1)})));
  // R(1,_) and R(2,_) rows collapsed to R(1,'a') and R(2,'a'); S kept one.
  EXPECT_EQ(inst.live_size(), 3u);
}

TEST(InstanceTest, ResetKeepsInterningButEmptiesAtoms) {
  Instance inst;
  ASSERT_TRUE(inst.InsertAll(Atoms("R(1, 2), S(2, 3)")).ok());
  HomomorphismMatcher m(Atoms("R(x, y), S(y, z)"));
  size_t before = 0;
  m.ForEach(inst, {}, [&](const Match&) {
    ++before;
    return true;
  });
  EXPECT_EQ(before, 1u);
  inst.Reset();
  EXPECT_EQ(inst.live_size(), 0u);
  EXPECT_FALSE(inst.Contains(Atom("R", {Term::Int(1), Term::Int(2)})));
  // Reset keeps the interning tables (the documented contract that lets
  // matchers reuse compiled patterns across scratch resets); refilling the
  // instance must behave exactly like a fresh one.
  ASSERT_TRUE(inst.InsertAll(Atoms("R(1, 2), S(2, 3), S(2, 4)")).ok());
  size_t after = 0;
  m.ForEach(inst, {}, [&](const Match&) {
    ++after;
    return true;
  });
  EXPECT_EQ(after, 2u);
  std::string err;
  EXPECT_TRUE(inst.CheckIndexConsistency(&err)) << err;
}

/// 200-seed differential fuzz: the indexed matcher must enumerate exactly
/// the same match sequence (order included) as the legacy scan oracle, over
/// random instances with nulls and random patterns with shared variables
/// and constants.
class MatcherOracleProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatcherOracleProperty, IndexedMatcherMatchesScanOracle) {
  Rng rng(0x5eed0000 + GetParam());
  Instance inst;
  const std::vector<std::string> rels = {"R", "S", "T"};
  const std::vector<size_t> arity = {2, 2, 3};
  std::vector<Term> values;
  for (int v = 0; v < 4; ++v) values.push_back(Term::Int(v));
  values.push_back(inst.FreshNull());
  values.push_back(inst.FreshNull());
  const size_t num_atoms = 3 + rng.Uniform(12);
  for (size_t i = 0; i < num_atoms; ++i) {
    size_t r = rng.Uniform(rels.size());
    std::vector<Term> terms;
    for (size_t p = 0; p < arity[r]; ++p) terms.push_back(rng.Pick(values));
    inst.Insert(Atom(rels[r], terms));
  }
  const std::vector<std::string> vars = {"x", "y", "z", "w"};
  std::vector<Atom> pattern;
  const size_t num_pattern = 1 + rng.Uniform(3);
  for (size_t i = 0; i < num_pattern; ++i) {
    size_t r = rng.Uniform(rels.size());
    std::vector<Term> terms;
    for (size_t p = 0; p < arity[r]; ++p) {
      terms.push_back(rng.Chance(0.2)
                          ? Term::Int(static_cast<int64_t>(rng.Uniform(4)))
                          : Term::Var(rng.Pick(vars)));
    }
    pattern.push_back(Atom(rels[r], terms));
  }
  auto render = [](const Match& m) {
    std::string out;
    for (size_t id : m.atom_ids) out += std::to_string(id) + ",";
    out += "|";
    std::vector<std::pair<std::string, std::string>> sub;
    sub.reserve(m.sub.size());
    for (const auto& [var, term] : m.sub) {
      sub.emplace_back(var, term.ToString());
    }
    std::sort(sub.begin(), sub.end());
    for (const auto& [var, text] : sub) out += var + "=" + text + ";";
    return out;
  };
  std::vector<std::string> indexed;
  HomomorphismMatcher matcher(pattern);
  matcher.ForEach(inst, {}, [&](const Match& m) {
    indexed.push_back(render(m));
    return true;
  });
  std::vector<std::string> scan;
  internal::ForEachHomomorphismScan(pattern, inst, {},
                                    [&](const Match& m) {
                                      scan.push_back(render(m));
                                      return true;
                                    });
  EXPECT_EQ(indexed, scan) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherOracleProperty,
                         ::testing::Range<uint64_t>(0, 200));

}  // namespace
}  // namespace estocada::chase
