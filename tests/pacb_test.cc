#include <gtest/gtest.h>

#include <set>

#include "chase/homomorphism.h"
#include "chase/instance.h"
#include "common/rng.h"
#include "common/strings.h"
#include "encoding/encodings.h"
#include "pacb/feasibility.h"
#include "pacb/naive.h"
#include "pacb/rewriter.h"
#include "pacb/view.h"
#include "pivot/parser.h"

namespace estocada::pacb {
namespace {

using ::estocada::StrCat;
using pivot::Adornment;
using pivot::Atom;
using pivot::ConjunctiveQuery;
using pivot::ParseQuery;
using pivot::Schema;
using pivot::Term;

ConjunctiveQuery Q(std::string_view text) {
  auto r = ParseQuery(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return *r;
}

ViewDefinition View(std::string_view text,
                    std::vector<Adornment> adornments = {}) {
  ViewDefinition v;
  v.query = Q(text);
  v.adornments = std::move(adornments);
  return v;
}

Schema SchemaWith(std::initializer_list<std::pair<const char*, size_t>> rels,
                  std::string_view deps_text = "") {
  Schema s;
  for (const auto& [name, arity] : rels) {
    EXPECT_TRUE(s.AddRelation(name, arity).ok());
  }
  if (!deps_text.empty()) {
    auto deps = pivot::ParseDependencies(deps_text);
    EXPECT_TRUE(deps.ok()) << deps.status();
    for (auto& d : *deps) s.AddDependency(std::move(d));
  }
  return s;
}

TEST(ViewConstraintsTest, ForwardAndBackwardShape) {
  auto vc = MakeViewConstraints(View("V(x, z) :- R(x, y), S(y, z)"));
  ASSERT_TRUE(vc.ok()) << vc.status();
  ASSERT_TRUE(vc->forward.is_tgd());
  ASSERT_TRUE(vc->backward.is_tgd());
  EXPECT_EQ(vc->forward.tgd.head.size(), 1u);
  EXPECT_EQ(vc->forward.tgd.head[0].relation, "V");
  EXPECT_TRUE(vc->forward.tgd.ExistentialVariables().empty());
  // Backward re-invents the projected-away join variable.
  EXPECT_EQ(vc->backward.tgd.ExistentialVariables(),
            (std::vector<std::string>{"y"}));
}

TEST(ViewConstraintsTest, RejectsUnsafeView) {
  ViewDefinition v;
  v.query.name = "V";
  v.query.head = {Term::Var("x")};
  // Empty body.
  EXPECT_FALSE(MakeViewConstraints(v).ok());
}

TEST(ViewConstraintsTest, RejectsAdornmentMismatch) {
  ViewDefinition v = View("V(x) :- R(x, y)");
  v.adornments = {Adornment::kInput, Adornment::kFree};  // arity is 1
  EXPECT_EQ(MakeViewConstraints(v).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FeasibilityTest, FreeRelationsAlwaysFeasible) {
  auto atoms = pivot::ParseAtomList("R(x, y), S(y, z)");
  ASSERT_TRUE(atoms.ok());
  EXPECT_TRUE(IsFeasible(*atoms, {}));
}

TEST(FeasibilityTest, InputPositionNeedsProvider) {
  AdornmentMap ad;
  ad["KV"] = {Adornment::kInput, Adornment::kFree};
  // Key not bound by anything: infeasible.
  auto bare = pivot::ParseAtomList("KV(k, v)");
  ASSERT_TRUE(bare.ok());
  EXPECT_FALSE(IsFeasible(*bare, ad));
  // Key produced by an earlier-orderable free atom: feasible.
  auto chained = pivot::ParseAtomList("KV(k, v), Users(u, k)");
  ASSERT_TRUE(chained.ok());
  EXPECT_TRUE(IsFeasible(*chained, ad));
  auto order = FeasibleOrder(*chained, ad);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);  // Users first, then KV.
  EXPECT_EQ(order[1], 0u);
}

TEST(FeasibilityTest, ParameterBindsInput) {
  AdornmentMap ad;
  ad["KV"] = {Adornment::kInput, Adornment::kFree};
  auto atoms = pivot::ParseAtomList("KV($uid, v)");
  ASSERT_TRUE(atoms.ok());
  EXPECT_TRUE(IsFeasible(*atoms, ad));
}

TEST(FeasibilityTest, ConstantBindsInput) {
  AdornmentMap ad;
  ad["KV"] = {Adornment::kInput, Adornment::kFree};
  auto atoms = pivot::ParseAtomList("KV('cart17', v)");
  ASSERT_TRUE(atoms.ok());
  EXPECT_TRUE(IsFeasible(*atoms, ad));
}

TEST(FeasibilityTest, MutualDeadlockInfeasible) {
  AdornmentMap ad;
  ad["A"] = {Adornment::kInput, Adornment::kFree};
  ad["B"] = {Adornment::kInput, Adornment::kFree};
  // A needs x (from B), B needs y (from A): deadlock.
  auto atoms = pivot::ParseAtomList("A(x, y), B(y, x)");
  ASSERT_TRUE(atoms.ok());
  EXPECT_FALSE(IsFeasible(*atoms, ad));
}

TEST(FeasibilityTest, ParameterVariableDetection) {
  EXPECT_TRUE(IsParameterVariable("$uid"));
  EXPECT_FALSE(IsParameterVariable("uid"));
  EXPECT_FALSE(IsParameterVariable(""));
}

class RewriterTest : public ::testing::Test {
 protected:
  RewritingResult MustRewrite(const Schema& schema,
                              std::vector<ViewDefinition> views,
                              const ConjunctiveQuery& q,
                              RewriterOptions options = {}) {
    Rewriter rw(schema, std::move(views));
    EXPECT_TRUE(rw.Prepare().ok());
    auto result = rw.Rewrite(q, options);
    EXPECT_TRUE(result.ok()) << result.status();
    return std::move(*result);
  }
};

TEST_F(RewriterTest, IdentityView) {
  Schema s = SchemaWith({{"R", 2}});
  auto result = MustRewrite(s, {View("V(x, y) :- R(x, y)")},
                            Q("q(x, y) :- R(x, y)"));
  ASSERT_EQ(result.rewritings.size(), 1u);
  EXPECT_EQ(result.rewritings[0].query.body.size(), 1u);
  EXPECT_EQ(result.rewritings[0].query.body[0].relation, "V");
}

TEST_F(RewriterTest, JoinOfTwoViews) {
  Schema s = SchemaWith({{"R", 2}, {"S", 2}});
  auto result = MustRewrite(
      s, {View("V1(x, y) :- R(x, y)"), View("V2(y, z) :- S(y, z)")},
      Q("q(x, z) :- R(x, y), S(y, z)"));
  ASSERT_EQ(result.rewritings.size(), 1u);
  const auto& body = result.rewritings[0].query.body;
  ASSERT_EQ(body.size(), 2u);
  std::set<std::string> rels{body[0].relation, body[1].relation};
  EXPECT_EQ(rels, (std::set<std::string>{"V1", "V2"}));
  // Join variable must be shared between the two atoms.
  EXPECT_EQ(body[0].terms[1], body[1].terms[0]);
}

TEST_F(RewriterTest, MaterializedJoinViewPreferred) {
  // Both the two base views and the materialized join view can answer the
  // query; the join view gives a single-atom (smaller) rewriting first.
  Schema s = SchemaWith({{"R", 2}, {"S", 2}});
  auto result = MustRewrite(
      s,
      {View("V1(x, y) :- R(x, y)"), View("V2(y, z) :- S(y, z)"),
       View("VJ(x, z) :- R(x, y), S(y, z)")},
      Q("q(x, z) :- R(x, y), S(y, z)"));
  ASSERT_GE(result.rewritings.size(), 2u);
  EXPECT_EQ(result.rewritings[0].query.body.size(), 1u);
  EXPECT_EQ(result.rewritings[0].query.body[0].relation, "VJ");
  // And the two-view join is also reported (minimal, incomparable).
  EXPECT_EQ(result.rewritings[1].query.body.size(), 2u);
}

TEST_F(RewriterTest, NoRewritingWhenViewLosesHeadVariable) {
  // The view projects y away, so q(x,y) cannot be answered.
  Schema s = SchemaWith({{"R", 2}});
  auto result = MustRewrite(s, {View("V(x) :- R(x, y)")},
                            Q("q(x, y) :- R(x, y)"));
  EXPECT_TRUE(result.rewritings.empty());
}

TEST_F(RewriterTest, NoRewritingWhenViewOverSelects) {
  // View restricts to 'a'; query asks for everything: view alone is not
  // an exact rewriting.
  Schema s = SchemaWith({{"R", 2}});
  auto result = MustRewrite(s, {View("V(x, y) :- R(x, y), R(x, 'a')")},
                            Q("q(x, y) :- R(x, y)"));
  EXPECT_TRUE(result.rewritings.empty());
}

TEST_F(RewriterTest, SelectionViewAnswersSelectionQuery) {
  Schema s = SchemaWith({{"R", 2}});
  auto result = MustRewrite(s, {View("V(x) :- R(x, 'paris')")},
                            Q("q(x) :- R(x, 'paris')"));
  ASSERT_EQ(result.rewritings.size(), 1u);
  EXPECT_EQ(result.rewritings[0].query.body[0].relation, "V");
}

TEST_F(RewriterTest, ConstraintEnablesRewriting) {
  // Query asks Desc; view stores Child. Only the Child⊆Desc axiom makes
  // the rewriting valid... but it is NOT exact (Desc may contain more),
  // so no rewriting must be returned. Conversely a view storing Desc
  // answers a Child query only if constraints force equality — they
  // don't. This test pins down exactness.
  Schema s = SchemaWith({{"Child", 2}, {"Desc", 2}},
                        "Child(p, c) -> Desc(p, c)");
  auto none = MustRewrite(s, {View("V(p, c) :- Child(p, c)")},
                          Q("q(a, d) :- Desc(a, d)"));
  EXPECT_TRUE(none.rewritings.empty());
  // A view storing Desc answers the Desc query exactly.
  auto some = MustRewrite(s, {View("V(a, d) :- Desc(a, d)")},
                          Q("q(a, d) :- Desc(a, d)"));
  EXPECT_EQ(some.rewritings.size(), 1u);
}

TEST_F(RewriterTest, KeyConstraintMergesLossyViews) {
  // R(k -> v). V1 stores keys with value-predicate S; V2 stores (k,v).
  // q(k,v) over R ⋈ S needs the key EGD to know V1's v equals V2's v.
  Schema s = SchemaWith({{"R", 2}, {"S", 1}},
                        "R(k, a), R(k, b) -> a = b");
  auto result = MustRewrite(
      s,
      {View("V1(k) :- R(k, v), S(v)"), View("V2(k, v) :- R(k, v)")},
      Q("q(k, v) :- R(k, v), S(v)"));
  ASSERT_EQ(result.rewritings.size(), 1u);
  EXPECT_EQ(result.rewritings[0].query.body.size(), 2u);
}

TEST_F(RewriterTest, WithoutKeyConstraintNoMerge) {
  // Same as above without the EGD: V1 ⋈ V2 is NOT exact (V1's witness v
  // may differ from V2's v).
  Schema s = SchemaWith({{"R", 2}, {"S", 1}});
  auto result = MustRewrite(
      s,
      {View("V1(k) :- R(k, v), S(v)"), View("V2(k, v) :- R(k, v)")},
      Q("q(k, v) :- R(k, v), S(v)"));
  EXPECT_TRUE(result.rewritings.empty());
}

TEST_F(RewriterTest, ParameterizedKeyLookupThroughKvView) {
  // A key-value fragment with an input-adorned key answers a $-param
  // lookup; without the parameter, the rewriting is infeasible and
  // filtered out.
  Schema s = SchemaWith({{"Cart", 2}});
  std::vector<ViewDefinition> views{
      View("KVCart(u, c) :- Cart(u, c)",
           {Adornment::kInput, Adornment::kFree})};
  auto with_param = MustRewrite(s, views, Q("q(c) :- Cart($uid, c)"));
  ASSERT_EQ(with_param.rewritings.size(), 1u);
  EXPECT_TRUE(with_param.rewritings[0].feasible);
  // Head var is the payload; key parameter name survives the round trip.
  EXPECT_EQ(with_param.rewritings[0].query.body[0].terms[0],
            Term::Var("$uid"));

  auto scan = MustRewrite(s, views, Q("q(u, c) :- Cart(u, c)"));
  EXPECT_TRUE(scan.rewritings.empty());  // Infeasible: key unbound.
  RewriterOptions keep_infeasible;
  keep_infeasible.require_feasible = false;
  auto kept = MustRewrite(s, views, Q("q(u, c) :- Cart(u, c)"),
                          keep_infeasible);
  ASSERT_EQ(kept.rewritings.size(), 1u);
  EXPECT_FALSE(kept.rewritings[0].feasible);
}

TEST_F(RewriterTest, BindJoinChainIsFeasible) {
  // Free view provides user ids; KV view needs them as input: the
  // rewriting exists and is feasible (evaluated with a BindJoin).
  Schema s = SchemaWith({{"Users", 2}, {"Cart", 2}});
  auto result = MustRewrite(
      s,
      {View("VUsers(u, n) :- Users(u, n)"),
       View("KVCart(u, c) :- Cart(u, c)",
            {Adornment::kInput, Adornment::kFree})},
      Q("q(n, c) :- Users(u, n), Cart(u, c)"));
  ASSERT_EQ(result.rewritings.size(), 1u);
  EXPECT_TRUE(result.rewritings[0].feasible);
}

TEST_F(RewriterTest, MultipleMinimalRewritingsReported) {
  Schema s = SchemaWith({{"R", 2}});
  auto result = MustRewrite(
      s, {View("V1(x, y) :- R(x, y)"), View("V2(x, y) :- R(x, y)")},
      Q("q(x, y) :- R(x, y)"));
  EXPECT_EQ(result.rewritings.size(), 2u);  // Both single-atom rewritings.
}

TEST_F(RewriterTest, MaxRewritingsCap) {
  Schema s = SchemaWith({{"R", 2}});
  std::vector<ViewDefinition> views;
  for (int i = 0; i < 6; ++i) {
    views.push_back(View(StrCat("V", i, "(x, y) :- R(x, y)")));
  }
  RewriterOptions opts;
  opts.max_rewritings = 3;
  auto result = MustRewrite(s, views, Q("q(x, y) :- R(x, y)"), opts);
  EXPECT_EQ(result.rewritings.size(), 3u);
}

TEST_F(RewriterTest, StatsArePopulated) {
  Schema s = SchemaWith({{"R", 2}, {"S", 2}});
  auto result = MustRewrite(
      s, {View("V1(x, y) :- R(x, y)"), View("V2(y, z) :- S(y, z)")},
      Q("q(x, z) :- R(x, y), S(y, z)"));
  EXPECT_EQ(result.stats.universal_plan_atoms, 2u);
  EXPECT_GE(result.stats.query_matches, 1u);
  EXPECT_GE(result.stats.candidates_considered, 1u);
  EXPECT_EQ(result.stats.rewritings_found, result.rewritings.size());
}

TEST_F(RewriterTest, RewriteWithoutPrepareFails) {
  Rewriter rw(SchemaWith({{"R", 2}}), {});
  EXPECT_EQ(rw.Rewrite(Q("q(x) :- R(x, y)")).status().code(),
            StatusCode::kInternal);
}

TEST_F(RewriterTest, SelfJoinQuery) {
  Schema s = SchemaWith({{"E", 2}});
  auto result = MustRewrite(s, {View("V(x, y) :- E(x, y)")},
                            Q("q(x, z) :- E(x, y), E(y, z)"));
  ASSERT_EQ(result.rewritings.size(), 1u);
  EXPECT_EQ(result.rewritings[0].query.body.size(), 2u);
  // Shared join variable preserved.
  const auto& b = result.rewritings[0].query.body;
  EXPECT_EQ(b[0].terms[1], b[1].terms[0]);
}

TEST_F(RewriterTest, NaiveAgreesWithPacb) {
  Schema s = SchemaWith({{"R", 2}, {"S", 2}, {"T", 2}});
  std::vector<ViewDefinition> views{
      View("V1(x, y) :- R(x, y)"), View("V2(y, z) :- S(y, z)"),
      View("V3(z, w) :- T(z, w)"), View("VJ(x, z) :- R(x, y), S(y, z)")};
  ConjunctiveQuery q = Q("q(x, w) :- R(x, y), S(y, z), T(z, w)");

  Rewriter pacb(s, views);
  ASSERT_TRUE(pacb.Prepare().ok());
  auto pr = pacb.Rewrite(q);
  ASSERT_TRUE(pr.ok()) << pr.status();

  NaiveChaseBackchase naive(s, views);
  ASSERT_TRUE(naive.Prepare().ok());
  auto nr = naive.Rewrite(q);
  ASSERT_TRUE(nr.ok()) << nr.status();

  auto canon = [](const RewritingResult& r) {
    std::multiset<size_t> sizes;
    for (const auto& rw : r.rewritings) sizes.insert(rw.query.body.size());
    return sizes;
  };
  EXPECT_EQ(canon(*pr), canon(*nr));
  EXPECT_GE(pr->rewritings.size(), 2u);  // VJ⋈V3 and V1⋈V2⋈V3.
  // The naive algorithm examines many more candidate subqueries (memoized
  // verification can collapse the actual chase-check counts, so compare
  // the enumeration effort).
  EXPECT_GT(nr->stats.candidates_considered, pr->stats.candidates_considered);
  EXPECT_GE(nr->stats.candidates_verified, pr->stats.candidates_verified);
}

TEST_F(RewriterTest, DocumentTreeEncodingRewriting) {
  // The paper's generic document encoding: a view materializing the
  // (node, tag, value) index of a document dataset answers tag/value
  // queries; the tree axioms (one tag per node, etc.) ride along in the
  // schema constraints during the chase.
  auto tree = encoding::DocumentTreeEncoding("d");
  ASSERT_TRUE(tree.ok()) << tree.status();
  auto result = MustRewrite(
      *tree, {View("VTagVal(n, t, v) :- d.Tag(n, t), d.Val(n, v)")},
      Q("q(n, v) :- d.Tag(n, 'title'), d.Val(n, v)"));
  ASSERT_EQ(result.rewritings.size(), 1u);
  EXPECT_EQ(result.rewritings[0].query.body[0].relation, "VTagVal");
  // And a Child/Desc structural view answers a Child query but NOT a
  // Desc query (Desc is strictly larger; exactness forbids it).
  auto child = MustRewrite(*tree, {View("VC(p, c) :- d.Child(p, c)")},
                           Q("q(p, c) :- d.Child(p, c)"));
  EXPECT_EQ(child.rewritings.size(), 1u);
  auto desc = MustRewrite(*tree, {View("VC(p, c) :- d.Child(p, c)")},
                          Q("q(a, b) :- d.Desc(a, b)"));
  EXPECT_TRUE(desc.rewritings.empty());
}

TEST_F(RewriterTest, OneTagEgdMergesAcrossViews) {
  // Two lossy views over the same node: VTag keeps tags, VVal keeps
  // values. Thanks to the tree EGDs (one tag, one value per node), their
  // join is an exact rewriting of the combined query.
  auto tree = encoding::DocumentTreeEncoding("d");
  ASSERT_TRUE(tree.ok());
  auto result = MustRewrite(
      *tree,
      {View("VTag(n, t) :- d.Tag(n, t)"), View("VVal(n, v) :- d.Val(n, v)")},
      Q("q(n, t, v) :- d.Tag(n, t), d.Val(n, v)"));
  ASSERT_EQ(result.rewritings.size(), 1u);
  EXPECT_EQ(result.rewritings[0].query.body.size(), 2u);
}

/// Property test: for random chain queries and view subsets, every
/// rewriting returned by PACB evaluates to exactly the same answers as
/// the original query on random instances (checked by direct evaluation:
/// materialize views, evaluate rewriting over them).
class PacbEquivalenceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PacbEquivalenceProperty, RewritingsAreExact) {
  Rng rng(GetParam());
  const size_t chain_len = 2 + rng.Uniform(3);  // 2..4 relations
  Schema s;
  std::vector<std::string> rels;
  for (size_t i = 0; i < chain_len; ++i) {
    std::string r = StrCat("R", i);
    ASSERT_TRUE(s.AddRelation(r, 2).ok());
    rels.push_back(r);
  }
  // Views: each base relation, plus a couple of random adjacent joins.
  std::vector<ViewDefinition> views;
  for (size_t i = 0; i < chain_len; ++i) {
    views.push_back(View(StrCat("V", i, "(a, b) :- ", rels[i], "(a, b)")));
  }
  for (size_t i = 0; i + 1 < chain_len; ++i) {
    if (rng.Chance(0.5)) {
      views.push_back(View(StrCat("VJ", i, "(a, c) :- ", rels[i],
                                  "(a, b), ", rels[i + 1], "(b, c)")));
    }
  }
  // Query: the full chain.
  std::string body;
  for (size_t i = 0; i < chain_len; ++i) {
    if (i > 0) body += ", ";
    body += StrCat(rels[i], "(x", i, ", x", i + 1, ")");
  }
  ConjunctiveQuery q = Q(StrCat("q(x0, x", chain_len, ") :- ", body));

  Rewriter rw(s, views);
  ASSERT_TRUE(rw.Prepare().ok());
  auto result = rw.Rewrite(q);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_FALSE(result->rewritings.empty());

  // Random base instance.
  chase::Instance base;
  const int64_t domain = 5;
  for (const std::string& r : rels) {
    size_t tuples = 4 + rng.Uniform(8);
    for (size_t t = 0; t < tuples; ++t) {
      base.Insert(Atom(
          r, {Term::Int(static_cast<int64_t>(rng.Uniform(domain))),
              Term::Int(static_cast<int64_t>(rng.Uniform(domain)))}));
    }
  }
  // Materialize views over the base instance.
  chase::Instance view_inst;
  for (const ViewDefinition& v : views) {
    for (const auto& m : chase::FindHomomorphisms(v.query.body, base)) {
      Atom out;
      out.relation = v.name();
      for (const Term& h : v.query.head) {
        out.terms.push_back(pivot::ApplySubstitution(m.sub, h));
      }
      view_inst.Insert(out);
    }
  }
  auto answers = [](const ConjunctiveQuery& query,
                    const chase::Instance& inst) {
    std::set<std::string> out;
    for (const auto& m : chase::FindHomomorphisms(query.body, inst)) {
      std::string row;
      for (const Term& h : query.head) {
        row += pivot::ApplySubstitution(m.sub, h).ToString();
        row += "|";
      }
      out.insert(row);
    }
    return out;
  };
  auto expected = answers(q, base);
  for (const auto& rewriting : result->rewritings) {
    EXPECT_EQ(answers(rewriting.query, view_inst), expected)
        << "rewriting " << rewriting.query.ToString() << "\nquery "
        << q.ToString();
  }
}

/// Property: PACB and the naive C&B agree on the *set* of minimal
/// rewritings for random chain/star queries with random view subsets
/// (completeness of the provenance-driven search, checked against the
/// exhaustive baseline).
class PacbVsNaiveProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PacbVsNaiveProperty, SameRewritingSets) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    const size_t n = 2 + rng.Uniform(3);  // 2..4 relations
    Schema s;
    std::vector<std::string> rels;
    for (size_t i = 0; i < n; ++i) {
      std::string r = StrCat("R", i);
      EXPECT_TRUE(s.AddRelation(r, 2).ok());
      rels.push_back(r);
    }
    std::vector<ViewDefinition> views;
    for (size_t i = 0; i < n; ++i) {
      if (rng.Chance(0.85)) {
        views.push_back(
            View(StrCat("V", i, "(a, b) :- ", rels[i], "(a, b)")));
      }
    }
    for (size_t i = 0; i + 1 < n; ++i) {
      if (rng.Chance(0.4)) {
        views.push_back(View(StrCat("VJ", i, "(a, c) :- ", rels[i],
                                    "(a, b), ", rels[i + 1], "(b, c)")));
      }
    }
    if (views.empty()) continue;
    // Query: chain or star.
    std::string body;
    bool star = rng.Chance(0.3);
    for (size_t i = 0; i < n; ++i) {
      if (i > 0) body += ", ";
      body += star ? StrCat(rels[i], "(hub, y", i, ")")
                   : StrCat(rels[i], "(x", i, ", x", i + 1, ")");
    }
    ConjunctiveQuery q =
        Q(star ? StrCat("q(hub) :- ", body)
               : StrCat("q(x0, x", n, ") :- ", body));

    auto canon = [](const RewritingResult& r) {
      std::multiset<std::string> out;
      for (const auto& rw : r.rewritings) {
        // Canonicalize by sorted atom list (variable names may differ).
        std::multiset<std::string> rels_used;
        for (const auto& a : rw.query.body) rels_used.insert(a.relation);
        out.insert(StrJoin(rels_used, "+"));
      }
      return out;
    };
    Rewriter pacb(s, views);
    ASSERT_TRUE(pacb.Prepare().ok());
    auto pr = pacb.Rewrite(q);
    ASSERT_TRUE(pr.ok()) << pr.status();
    NaiveChaseBackchase naive(s, views);
    ASSERT_TRUE(naive.Prepare().ok());
    auto nr = naive.Rewrite(q);
    ASSERT_TRUE(nr.ok()) << nr.status();
    EXPECT_EQ(canon(*pr), canon(*nr))
        << q.ToString() << " with " << views.size() << " views";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacbVsNaiveProperty,
                         ::testing::Values(1001, 2002, 3003, 4004, 5005,
                                           6006));

INSTANTIATE_TEST_SUITE_P(Seeds, PacbEquivalenceProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

}  // namespace
}  // namespace estocada::pacb
