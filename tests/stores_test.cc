#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/strings.h"
#include "engine/value.h"
#include "stores/document_store.h"
#include "stores/fault.h"
#include "stores/graph_store.h"
#include "stores/kv_store.h"
#include "stores/open_hash.h"
#include "stores/parallel_store.h"
#include "stores/relational_store.h"
#include "stores/text_store.h"

namespace estocada::stores {
namespace {

using ::estocada::StrCat;
using engine::Row;
using engine::Value;

// ---------------------------------------------------------------- Value --

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value::Int(7).int_value(), 7);
  EXPECT_EQ(Value::Str("x").string_value(), "x");
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_DOUBLE_EQ(Value::Real(2.5).real_value(), 2.5);
  Value l = Value::List({Value::Int(1), Value::Str("a")});
  EXPECT_EQ(l.list().size(), 2u);
}

TEST(ValueTest, NumericCrossKindEquality) {
  // SQL semantics: 1 == 1.0.
  EXPECT_EQ(Value::Int(1), Value::Real(1.0));
  EXPECT_LT(Value::Int(1), Value::Real(1.5));
  EXPECT_EQ(Value::Int(1).Hash(), Value::Real(1.0).Hash());
}

TEST(ValueTest, ListCompareLexicographic) {
  Value a = Value::List({Value::Int(1), Value::Int(2)});
  Value b = Value::List({Value::Int(1), Value::Int(3)});
  Value c = Value::List({Value::Int(1)});
  EXPECT_LT(a, b);
  EXPECT_LT(c, a);
  EXPECT_EQ(a, Value::List({Value::Int(1), Value::Int(2)}));
}

TEST(ValueTest, CopyOnWriteLists) {
  Value a = Value::List({Value::Int(1)});
  Value b = a;
  b.mutable_list().push_back(Value::Int(2));
  EXPECT_EQ(a.list().size(), 1u);
  EXPECT_EQ(b.list().size(), 2u);
}

TEST(ValueTest, JsonRoundTrip) {
  auto j = json::Parse(R"({"a":[1,2.5,"x",true,null]})");
  ASSERT_TRUE(j.ok());
  Value v = Value::FromJson(*j);
  // Objects become key-sorted pair lists.
  ASSERT_TRUE(v.is_list());
  const auto& pair = v.list()[0].list();
  EXPECT_EQ(pair[0].string_value(), "a");
  EXPECT_EQ(pair[1].list().size(), 5u);
  // Arrays round-trip exactly.
  json::JsonValue back = pair[1].ToJson();
  EXPECT_EQ(back.Serialize(), "[1,2.5,\"x\",true,null]");
}

TEST(ValueTest, ConstantRoundTrip) {
  for (const Value& v :
       {Value::Null(), Value::Bool(false), Value::Int(-3), Value::Real(0.5),
        Value::Str("hello")}) {
    EXPECT_EQ(Value::FromConstant(v.ToConstant()), v) << v.ToString();
  }
  // Lists degrade to JSON strings in the scalar pivot model.
  EXPECT_EQ(Value::List({Value::Int(1)}).ToConstant().string_value(), "[1]");
}

// ----------------------------------------------------- RelationalStore --

class RelStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_
                    .CreateTable("users",
                                 {{"uid", ColumnType::kInt},
                                  {"name", ColumnType::kStr},
                                  {"city", ColumnType::kStr}},
                                 {"uid"})
                    .ok());
    ASSERT_TRUE(store_
                    .CreateTable("orders", {{"oid", ColumnType::kInt},
                                            {"uid", ColumnType::kInt},
                                            {"total", ColumnType::kReal}})
                    .ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(store_
                      .Insert("users", {Value::Int(i),
                                        Value::Str("user" + std::to_string(i)),
                                        Value::Str(i % 2 ? "paris" : "lyon")})
                      .ok());
    }
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(store_
                      .Insert("orders", {Value::Int(i), Value::Int(i % 20),
                                         Value::Real(i * 1.5)})
                      .ok());
    }
  }
  RelationalStore store_;
};

TEST_F(RelStoreTest, CreateDuplicateTableFails) {
  EXPECT_EQ(store_.CreateTable("users", {{"x", ColumnType::kInt}}).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(RelStoreTest, InsertTypeChecked) {
  EXPECT_EQ(store_.Insert("users", {Value::Str("no"), Value::Str("a"),
                                    Value::Str("b")})
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store_.Insert("users", {Value::Int(1)}).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(RelStoreTest, PrimaryKeyEnforced) {
  EXPECT_EQ(store_
                .Insert("users", {Value::Int(3), Value::Str("dup"),
                                  Value::Str("x")})
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(RelStoreTest, ScanReturnsAllRows) {
  auto rows = store_.Scan("users");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 20u);
  EXPECT_EQ(*store_.RowCount("orders"), 50u);
}

TEST_F(RelStoreTest, FilterQuery) {
  SpjQuery q;
  q.from.push_back({"users", "u"});
  q.select = {{"u", "uid"}, {"u", "name"}};
  q.filters.push_back({{"u", "city"}, Value::Str("paris")});
  auto rows = store_.Execute(q);
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->size(), 10u);
  for (const Row& r : *rows) {
    EXPECT_EQ(r[0].int_value() % 2, 1);
  }
}

TEST_F(RelStoreTest, JoinQuery) {
  SpjQuery q;
  q.from = {{"users", "u"}, {"orders", "o"}};
  q.select = {{"u", "name"}, {"o", "total"}};
  q.joins.push_back({{"u", "uid"}, {"o", "uid"}});
  q.filters.push_back({{"u", "city"}, Value::Str("lyon")});
  auto rows = store_.Execute(q);
  ASSERT_TRUE(rows.ok()) << rows.status();
  // 10 lyon users x at least 2 orders each (50 orders over 20 users: 2-3).
  EXPECT_EQ(rows->size(), 25u);
}

TEST_F(RelStoreTest, IndexReducesScannedRows) {
  StoreStats no_index;
  SpjQuery q;
  q.from = {{"orders", "o"}};
  q.select = {{"o", "oid"}};
  q.filters.push_back({{"o", "uid"}, Value::Int(7)});
  ASSERT_TRUE(store_.Execute(q, &no_index).ok());
  ASSERT_TRUE(store_.CreateIndex("orders", "uid").ok());
  StoreStats with_index;
  auto rows = store_.Execute(q, &with_index);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);  // oid 7, 27, 47.
  EXPECT_LT(with_index.rows_scanned, no_index.rows_scanned);
  EXPECT_GE(with_index.index_lookups, 1u);
  EXPECT_LT(with_index.simulated_cost, no_index.simulated_cost);
}

TEST_F(RelStoreTest, IndexedJoinUsesIndex) {
  ASSERT_TRUE(store_.CreateIndex("orders", "uid").ok());
  SpjQuery q;
  q.from = {{"users", "u"}, {"orders", "o"}};
  q.select = {{"o", "oid"}};
  q.joins.push_back({{"u", "uid"}, {"o", "uid"}});
  q.filters.push_back({{"u", "uid"}, Value::Int(5)});
  StoreStats stats;
  auto rows = store_.Execute(q, &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
  // Without indexes this would scan 20 + 50 rows; with the join index the
  // orders side only examines matching rows.
  EXPECT_LT(stats.rows_scanned, 30u);
}

TEST_F(RelStoreTest, ErrorsOnUnknownEntities) {
  EXPECT_EQ(store_.Scan("nope").status().code(), StatusCode::kNotFound);
  SpjQuery q;
  q.from = {{"users", "u"}};
  q.select = {{"u", "nope"}};
  EXPECT_EQ(store_.Execute(q).status().code(), StatusCode::kNotFound);
  q.select = {{"x", "uid"}};
  EXPECT_EQ(store_.Execute(q).status().code(), StatusCode::kNotFound);
}

TEST_F(RelStoreTest, SqlRendering) {
  SpjQuery q;
  q.from = {{"users", "u"}, {"orders", "o"}};
  q.select = {{"u", "name"}};
  q.joins.push_back({{"u", "uid"}, {"o", "uid"}});
  q.filters.push_back({{"u", "city"}, Value::Str("paris")});
  EXPECT_EQ(q.ToString(),
            "SELECT u.name FROM users u, orders o "
            "WHERE u.uid = o.uid AND u.city = 'paris'");
}

TEST_F(RelStoreTest, DuplicateAliasRejected) {
  SpjQuery q;
  q.from = {{"users", "u"}, {"orders", "u"}};
  q.select = {{"u", "uid"}};
  EXPECT_EQ(store_.Execute(q).status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------- KeyValueStore --

TEST(KvStoreTest, PutGetDelete) {
  KeyValueStore kv;
  ASSERT_TRUE(kv.CreateCollection("carts").ok());
  ASSERT_TRUE(kv.Put("carts", "u1", "{\"items\":[1,2]}").ok());
  auto got = kv.Get("carts", "u1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "{\"items\":[1,2]}");
  EXPECT_EQ(kv.Get("carts", "u2").status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(kv.Delete("carts", "u1").ok());
  EXPECT_EQ(kv.Get("carts", "u1").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(kv.Delete("carts", "u1").code(), StatusCode::kNotFound);
}

TEST(KvStoreTest, PutOverwrites) {
  KeyValueStore kv;
  ASSERT_TRUE(kv.CreateCollection("c").ok());
  ASSERT_TRUE(kv.Put("c", "k", "v1").ok());
  ASSERT_TRUE(kv.Put("c", "k", "v2").ok());
  EXPECT_EQ(*kv.Get("c", "k"), "v2");
  EXPECT_EQ(*kv.Size("c"), 1u);
}

TEST(KvStoreTest, MGetPreservesOrderAndGaps) {
  KeyValueStore kv;
  ASSERT_TRUE(kv.CreateCollection("c").ok());
  ASSERT_TRUE(kv.Put("c", "a", "1").ok());
  ASSERT_TRUE(kv.Put("c", "b", "2").ok());
  auto got = kv.MGet("c", {"b", "missing", "a"});
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), 3u);
  EXPECT_EQ(*(*got)[0], "2");
  EXPECT_FALSE((*got)[1].has_value());
  EXPECT_EQ(*(*got)[2], "1");
}

TEST(KvStoreTest, MGetIsOneOperation) {
  KeyValueStore kv;
  ASSERT_TRUE(kv.CreateCollection("c").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(kv.Put("c", std::to_string(i), "v").ok());
  }
  StoreStats stats;
  ASSERT_TRUE(kv.MGet("c", {"1", "2", "3", "4"}, &stats).ok());
  EXPECT_EQ(stats.operations, 1u);
  EXPECT_EQ(stats.index_lookups, 4u);
}

TEST(KvStoreTest, ScanCostsProportionally) {
  KeyValueStore kv;
  ASSERT_TRUE(kv.CreateCollection("c").ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(kv.Put("c", std::to_string(i), "v").ok());
  }
  StoreStats get_stats;
  ASSERT_TRUE(kv.Get("c", "5", &get_stats).ok());
  StoreStats scan_stats;
  auto all = kv.Scan("c", &scan_stats);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 100u);
  EXPECT_GT(scan_stats.simulated_cost, get_stats.simulated_cost);
}

TEST(KvStoreTest, CollectionLifecycle) {
  KeyValueStore kv;
  EXPECT_EQ(kv.Put("c", "k", "v").code(), StatusCode::kNotFound);
  ASSERT_TRUE(kv.CreateCollection("c").ok());
  EXPECT_EQ(kv.CreateCollection("c").code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(kv.DropCollection("c").ok());
  EXPECT_FALSE(kv.HasCollection("c"));
}

// ------------------------------------------------------- DocumentStore --

class DocStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_.CreateCollection("products").ok());
    for (int i = 0; i < 30; ++i) {
      auto doc = json::Parse(StrCat(
          R"({"_id":"p)", i, R"(","name":"product)", i,
          R"(","price":)", (i % 10) * 10, R"(,"category":")",
          (i % 3 == 0 ? "home" : "garden"), R"(","tags":["t)", i % 5,
          R"(","all"]})"));
      ASSERT_TRUE(doc.ok()) << doc.status();
      ASSERT_TRUE(store_.Insert("products", *doc).ok());
    }
  }
  DocumentStore store_;
};

TEST_F(DocStoreTest, FindByIdAndGeneratedIds) {
  auto doc = store_.FindById("products", "p3");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("name")->string_value(), "product3");
  // A document without _id gets one generated.
  auto inserted = store_.Insert("products", *json::Parse(R"({"name":"x"})"));
  ASSERT_TRUE(inserted.ok());
  EXPECT_FALSE(inserted->empty());
  auto again = store_.FindById("products", *inserted);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->Find("name")->string_value(), "x");
}

TEST_F(DocStoreTest, DuplicateIdRejected) {
  EXPECT_EQ(store_.Insert("products", *json::Parse(R"({"_id":"p3"})")).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(DocStoreTest, FindWithEqualityPredicate) {
  auto docs = store_.Find(
      "products", {{"category", DocOp::kEq, json::JsonValue::Str("home")}});
  ASSERT_TRUE(docs.ok());
  EXPECT_EQ(docs->size(), 10u);
}

TEST_F(DocStoreTest, FindWithRangeAndConjunction) {
  auto docs = store_.Find(
      "products",
      {{"price", DocOp::kGe, json::JsonValue::Int(50)},
       {"category", DocOp::kEq, json::JsonValue::Str("garden")}});
  ASSERT_TRUE(docs.ok());
  for (const auto& d : *docs) {
    EXPECT_GE(d.Find("price")->as_double(), 50.0);
    EXPECT_EQ(d.Find("category")->string_value(), "garden");
  }
  EXPECT_FALSE(docs->empty());
}

TEST_F(DocStoreTest, ArrayPredicatesAreMultikey) {
  auto docs = store_.Find(
      "products", {{"tags", DocOp::kEq, json::JsonValue::Str("t2")}});
  ASSERT_TRUE(docs.ok());
  EXPECT_EQ(docs->size(), 6u);  // i % 5 == 2 over 30 docs.
}

TEST_F(DocStoreTest, PathIndexReducesScans) {
  StoreStats before;
  ASSERT_TRUE(store_
                  .Find("products", {{"category", DocOp::kEq,
                                      json::JsonValue::Str("home")}},
                        &before)
                  .ok());
  ASSERT_TRUE(store_.CreatePathIndex("products", "category").ok());
  StoreStats after;
  auto docs = store_.Find(
      "products", {{"category", DocOp::kEq, json::JsonValue::Str("home")}},
      &after);
  ASSERT_TRUE(docs.ok());
  EXPECT_EQ(docs->size(), 10u);
  EXPECT_LT(after.rows_scanned, before.rows_scanned);
}

TEST_F(DocStoreTest, RemoveMaintainsIndexes) {
  ASSERT_TRUE(store_.CreatePathIndex("products", "category").ok());
  ASSERT_TRUE(store_.Remove("products", "p0").ok());
  auto docs = store_.Find(
      "products", {{"category", DocOp::kEq, json::JsonValue::Str("home")}});
  ASSERT_TRUE(docs.ok());
  EXPECT_EQ(docs->size(), 9u);
  EXPECT_EQ(store_.FindById("products", "p0").status().code(),
            StatusCode::kNotFound);
}

TEST_F(DocStoreTest, NestedPathPredicates) {
  ASSERT_TRUE(store_.CreateCollection("users").ok());
  ASSERT_TRUE(store_
                  .Insert("users", *json::Parse(
                                       R"({"_id":"u1","address":{"city":"paris"}})"))
                  .ok());
  auto docs = store_.Find(
      "users", {{"address.city", DocOp::kEq, json::JsonValue::Str("paris")}});
  ASSERT_TRUE(docs.ok());
  EXPECT_EQ(docs->size(), 1u);
  // Missing path never matches.
  auto none = store_.Find(
      "users", {{"address.zip", DocOp::kEq, json::JsonValue::Str("75")}});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

// ------------------------------------------------------- ParallelStore --

class ParStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_.CreateRelation("visits", 3, 4).ok());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(store_
                      .Insert("visits", {Value::Int(i % 50),
                                         Value::Str("cat" + std::to_string(i % 7)),
                                         Value::Int(i)})
                      .ok());
    }
  }
  ParallelStore store_{4};
};

TEST_F(ParStoreTest, ParallelScanAllRows) {
  auto rows = store_.ParallelScan("visits", nullptr);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 200u);
}

TEST_F(ParStoreTest, FilteredScanWithProjection) {
  auto rows = store_.ParallelScan(
      "visits",
      [](const Row& r) { return r[1] == Value::Str("cat3"); }, {0, 2});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 29u);  // ceil counts: i%7==3 over 0..199.
  for (const Row& r : *rows) EXPECT_EQ(r.size(), 2u);
}

TEST_F(ParStoreTest, ScanCostAmortizedByWorkers) {
  StoreStats stats;
  ASSERT_TRUE(store_.ParallelScan("visits", nullptr, {}, &stats).ok());
  EXPECT_EQ(stats.rows_scanned, 200u);
  // Effective per-row cost divided by 4 workers; plus launch overhead.
  EXPECT_GT(stats.simulated_cost, 59.0);
}

TEST_F(ParStoreTest, CompositeIndexLookup) {
  ASSERT_TRUE(store_.CreateIndex("visits", {0, 1}).ok());
  auto rows = store_.IndexLookup("visits", {0, 1},
                                 {Value::Int(3), Value::Str("cat3")});
  ASSERT_TRUE(rows.ok());
  // i%50==3 and i%7==3: i in {3, 108, ...} within 0..199 → i=3, 59? check:
  // i=3: cat3 ✓; i=53: cat4; i=103: cat5; i=153: cat6. Only i=3 (and 108?
  // 108%50=8). So exactly 1.
  EXPECT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][2].int_value(), 3);
}

TEST_F(ParStoreTest, IndexStaysFreshAcrossInserts) {
  ASSERT_TRUE(store_.CreateIndex("visits", {0}).ok());
  ASSERT_TRUE(
      store_.Insert("visits", {Value::Int(999), Value::Str("x"), Value::Int(0)})
          .ok());
  auto rows = store_.IndexLookup("visits", {0}, {Value::Int(999)});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST_F(ParStoreTest, NestedValuesSupported) {
  ASSERT_TRUE(store_.CreateRelation("nested", 2, 2).ok());
  Value purchases = Value::List({Value::Str("p1"), Value::Str("p2")});
  ASSERT_TRUE(store_.Insert("nested", {Value::Int(1), purchases}).ok());
  auto rows = store_.ParallelScan("nested", nullptr);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][1].list().size(), 2u);
}

TEST_F(ParStoreTest, ArityChecked) {
  EXPECT_EQ(store_.Insert("visits", {Value::Int(1)}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store_.ParallelScan("visits", nullptr, {9}).status().code(),
            StatusCode::kOutOfRange);
}

TEST_F(ParStoreTest, MissingIndexReported) {
  EXPECT_EQ(store_.IndexLookup("visits", {2}, {Value::Int(1)}).status().code(),
            StatusCode::kNotFound);
}

// ----------------------------------------------------------- TextStore --

class TextStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_.CreateCore("catalog").ok());
    ASSERT_TRUE(store_
                    .AddDocument("catalog", "p1",
                                 {{"name", "Red Table Lamp"},
                                  {"desc", "warm light for living rooms"}})
                    .ok());
    ASSERT_TRUE(store_
                    .AddDocument("catalog", "p2",
                                 {{"name", "Blue Desk Lamp"},
                                  {"desc", "bright light for desks"}})
                    .ok());
    ASSERT_TRUE(store_
                    .AddDocument("catalog", "p3",
                                 {{"name", "Red Carpet"},
                                  {"desc", "soft floor cover"}})
                    .ok());
  }
  TextStore store_;
};

TEST_F(TextStoreTest, TokenizeLowercasesAndSplits) {
  EXPECT_EQ(TextStore::Tokenize("Red-Table_Lamp 42!"),
            (std::vector<std::string>{"red", "table", "lamp", "42"}));
  EXPECT_TRUE(TextStore::Tokenize("  ...  ").empty());
}

TEST_F(TextStoreTest, SingleTermSearch) {
  auto ids = store_.Search("catalog", {"lamp"});
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(*ids, (std::vector<std::string>{"p1", "p2"}));
}

TEST_F(TextStoreTest, ConjunctiveSearchIntersects) {
  auto ids = store_.Search("catalog", {"red", "lamp"});
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(*ids, (std::vector<std::string>{"p1"}));
}

TEST_F(TextStoreTest, QueryTermsAreNormalized) {
  auto ids = store_.Search("catalog", {"RED!"});
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids->size(), 2u);
}

TEST_F(TextStoreTest, NoHitsIsEmptyNotError) {
  auto ids = store_.Search("catalog", {"nonexistent"});
  ASSERT_TRUE(ids.ok());
  EXPECT_TRUE(ids->empty());
}

TEST_F(TextStoreTest, GetDocumentReturnsStoredFields) {
  auto doc = store_.GetDocument("catalog", "p3");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->at("name"), "Red Carpet");
  EXPECT_EQ(store_.GetDocument("catalog", "nope").status().code(),
            StatusCode::kNotFound);
}

TEST_F(TextStoreTest, DuplicateDocRejected) {
  EXPECT_EQ(store_.AddDocument("catalog", "p1", {{"name", "x"}}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(*store_.DocumentCount("catalog"), 3u);
}

TEST_F(TextStoreTest, EmptySearchRejected) {
  EXPECT_EQ(store_.Search("catalog", {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store_.Search("catalog", {"!!!"}).status().code(),
            StatusCode::kInvalidArgument);
}

/// Property: relational SPJ execution agrees with a trivial nested-loop
/// reference evaluation on random data.
class SpjProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpjProperty, MatchesReferenceEvaluation) {
  Rng rng(GetParam());
  RelationalStore store;
  ASSERT_TRUE(store
                  .CreateTable("A", {{"x", ColumnType::kInt},
                                     {"y", ColumnType::kInt}})
                  .ok());
  ASSERT_TRUE(store
                  .CreateTable("B", {{"y", ColumnType::kInt},
                                     {"z", ColumnType::kInt}})
                  .ok());
  std::vector<Row> a_rows, b_rows;
  for (int i = 0; i < 30; ++i) {
    Row ra{Value::Int(static_cast<int64_t>(rng.Uniform(6))),
           Value::Int(static_cast<int64_t>(rng.Uniform(6)))};
    ASSERT_TRUE(store.Insert("A", ra).ok());
    a_rows.push_back(ra);
    Row rb{Value::Int(static_cast<int64_t>(rng.Uniform(6))),
           Value::Int(static_cast<int64_t>(rng.Uniform(6)))};
    ASSERT_TRUE(store.Insert("B", rb).ok());
    b_rows.push_back(rb);
  }
  if (rng.Chance(0.5)) {
    ASSERT_TRUE(store.CreateIndex("B", "y").ok());
  }
  int64_t c = static_cast<int64_t>(rng.Uniform(6));
  SpjQuery q;
  q.from = {{"A", "a"}, {"B", "b"}};
  q.select = {{"a", "x"}, {"b", "z"}};
  q.joins.push_back({{"a", "y"}, {"b", "y"}});
  q.filters.push_back({{"a", "x"}, Value::Int(c)});
  auto got = store.Execute(q);
  ASSERT_TRUE(got.ok());
  std::multiset<std::pair<int64_t, int64_t>> expect, actual;
  for (const Row& ra : a_rows) {
    if (ra[0].int_value() != c) continue;
    for (const Row& rb : b_rows) {
      if (ra[1] == rb[0]) {
        expect.insert({ra[0].int_value(), rb[1].int_value()});
      }
    }
  }
  for (const Row& r : *got) {
    actual.insert({r[0].int_value(), r[1].int_value()});
  }
  EXPECT_EQ(actual, expect);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpjProperty,
                         ::testing::Values(7, 14, 21, 28, 35, 42));

// -------------------------------------------------------- FaultInjector --

TEST(FaultInjectorTest, NoPlanMeansNoFaults) {
  FaultInjector injector(1);
  KeyValueStore kv;
  kv.AttachFaultInjector(&injector, "kv");
  ASSERT_TRUE(kv.CreateCollection("c").ok());
  ASSERT_TRUE(kv.Put("c", "k", "v").ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(kv.Get("c", "k").ok());
  }
  EXPECT_EQ(injector.counters().reads, 100u);
  EXPECT_EQ(injector.counters().transient_faults, 0u);
}

TEST(FaultInjectorTest, OutageFailsEveryReadWithUnavailable) {
  FaultInjector injector(1);
  KeyValueStore kv;
  kv.AttachFaultInjector(&injector, "redis");
  ASSERT_TRUE(kv.CreateCollection("c").ok());
  ASSERT_TRUE(kv.Put("c", "k", "v").ok());
  injector.SetOutage("redis", true);
  auto r = kv.Get("c", "k");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  // The store id is embedded so failures can be attributed to a store.
  EXPECT_NE(r.status().message().find("store 'redis'"), std::string::npos);
  injector.SetOutage("redis", false);
  EXPECT_TRUE(kv.Get("c", "k").ok());
}

TEST(FaultInjectorTest, TransientRateIsRoughlyHonored) {
  FaultInjector injector(7);
  RelationalStore pg;
  ASSERT_TRUE(pg.CreateTable("t", {{"a", ColumnType::kInt}}).ok());
  ASSERT_TRUE(pg.Insert("t", {Value::Int(1)}).ok());
  pg.AttachFaultInjector(&injector, "pg");
  FaultPlan plan;
  plan.transient_fault_rate = 0.25;
  injector.SetPlan("pg", plan);
  int failed = 0;
  for (int i = 0; i < 1000; ++i) {
    auto r = pg.Scan("t");
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
      ++failed;
    }
  }
  // Seeded generator: the rate lands near 25% deterministically.
  EXPECT_GT(failed, 180);
  EXPECT_LT(failed, 320);
  EXPECT_EQ(injector.counters().transient_faults,
            static_cast<uint64_t>(failed));
}

TEST(FaultInjectorTest, FailNextReadsIsExact) {
  FaultInjector injector(1);
  DocumentStore doc;
  ASSERT_TRUE(doc.CreateCollection("c").ok());
  ASSERT_TRUE(doc.Insert("c", *json::Parse(R"({"_id":"1","x":1})")).ok());
  doc.AttachFaultInjector(&injector, "mongo");
  injector.FailNextReads("mongo", 2);
  EXPECT_EQ(doc.FindById("c", "1").status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(doc.FindById("c", "1").status().code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(doc.FindById("c", "1").ok());
}

TEST(FaultInjectorTest, PlansArePerStore) {
  FaultInjector injector(1);
  KeyValueStore a;
  KeyValueStore b;
  a.AttachFaultInjector(&injector, "a");
  b.AttachFaultInjector(&injector, "b");
  for (KeyValueStore* kv : {&a, &b}) {
    ASSERT_TRUE(kv->CreateCollection("c").ok());
    ASSERT_TRUE(kv->Put("c", "k", "v").ok());
  }
  injector.SetOutage("a", true);
  EXPECT_FALSE(a.Get("c", "k").ok());
  EXPECT_TRUE(b.Get("c", "k").ok());
}

// ------------------------------------------- StoreStats null-guard sweep --
// Every read path must accept stats == nullptr (the engine passes real
// pointers, but ad-hoc callers and tests do not).

TEST(StoreStatsGuardTest, AllReadPathsAcceptNullStats) {
  RelationalStore pg;
  ASSERT_TRUE(pg.CreateTable("t", {{"a", ColumnType::kInt},
                                   {"b", ColumnType::kInt}})
                  .ok());
  ASSERT_TRUE(pg.Insert("t", {Value::Int(1), Value::Int(2)}).ok());
  EXPECT_TRUE(pg.Scan("t", nullptr).ok());

  KeyValueStore kv;
  ASSERT_TRUE(kv.CreateCollection("c").ok());
  ASSERT_TRUE(kv.Put("c", "k", "v").ok());
  EXPECT_TRUE(kv.Get("c", "k", nullptr).ok());
  EXPECT_TRUE(kv.MGet("c", {"k"}, nullptr).ok());
  EXPECT_TRUE(kv.Scan("c", nullptr).ok());

  DocumentStore doc;
  ASSERT_TRUE(doc.CreateCollection("d").ok());
  ASSERT_TRUE(doc.Insert("d", *json::Parse(R"({"_id":"1","x":1})")).ok());
  EXPECT_TRUE(doc.FindById("d", "1", nullptr).ok());
  EXPECT_TRUE(doc.Find("d", {}, nullptr).ok());

  ParallelStore spark(2);
  ASSERT_TRUE(spark.CreateRelation("p", 1, 2).ok());
  ASSERT_TRUE(spark.Insert("p", {Value::Int(1)}).ok());
  EXPECT_TRUE(spark.ParallelScan("p", nullptr, {}, nullptr).ok());

  TextStore solr;
  ASSERT_TRUE(solr.CreateCore("i").ok());
  ASSERT_TRUE(solr.AddDocument("i", "1", {{"body", "hello world"}}).ok());
  EXPECT_TRUE(solr.Search("i", {"hello"}, nullptr).ok());
  EXPECT_TRUE(solr.GetDocument("i", "1", nullptr).ok());

  GraphStore neo;
  ASSERT_TRUE(neo.CreateGraph("g", 3).ok());
  ASSERT_TRUE(neo.Insert("g", {Value::Str("a"), Value::Str("knows"),
                               Value::Str("b")})
                  .ok());
  EXPECT_TRUE(neo.Expand("g", ExpandDirection::kOut, Value::Str("a"),
                         std::nullopt, nullptr)
                  .ok());
  EXPECT_TRUE(neo.Match("g", {Value::Str("a"), std::nullopt, std::nullopt},
                        nullptr)
                  .ok());
  EXPECT_TRUE(neo.Scan("g", nullptr).ok());
}

TEST(StoreStatsGuardTest, StatsAreChargedWhenProvided) {
  KeyValueStore kv;
  ASSERT_TRUE(kv.CreateCollection("c").ok());
  ASSERT_TRUE(kv.Put("c", "k", "v").ok());
  StoreStats stats;
  ASSERT_TRUE(kv.Get("c", "k", &stats).ok());
  EXPECT_GT(stats.operations, 0u);
  EXPECT_GT(stats.simulated_cost, 0.0);
}

// ------------------------------------------------------------ GraphStore --

/// Loads a small labeled graph: a -> b -> c plus a second out-edge of a.
/// (GraphStore owns a mutex, so it is filled in place, not returned.)
void FillSmallGraph(GraphStore* neo) {
  ASSERT_TRUE(neo->CreateGraph("e", 3).ok());
  for (const auto& [s, l, d] :
       {std::tuple{"a", "follows", "b"}, {"b", "follows", "c"},
        {"a", "likes", "c"}}) {
    ASSERT_TRUE(
        neo->Insert("e", {Value::Str(s), Value::Str(l), Value::Str(d)})
            .ok());
  }
}

TEST(GraphStoreTest, CreateInsertExpand) {
  GraphStore neo;
  FillSmallGraph(&neo);
  EXPECT_TRUE(neo.HasGraph("e"));
  EXPECT_EQ(*neo.RowCount("e"), 3u);
  EXPECT_EQ(*neo.Arity("e"), 3u);
  auto out = neo.Expand("e", ExpandDirection::kOut, Value::Str("a"));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
  auto in = neo.Expand("e", ExpandDirection::kIn, Value::Str("c"));
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(in->size(), 2u);
  auto labeled = neo.Expand("e", ExpandDirection::kOut, Value::Str("a"),
                            Value::Str("likes"));
  ASSERT_TRUE(labeled.ok());
  ASSERT_EQ(labeled->size(), 1u);
  EXPECT_EQ((*labeled)[0][2], Value::Str("c"));
  ASSERT_TRUE(neo.DropGraph("e").ok());
  EXPECT_FALSE(neo.HasGraph("e"));
}

TEST(GraphStoreTest, ExpandIsIndexProbeNotScan) {
  GraphStore neo;
  FillSmallGraph(&neo);
  StoreStats stats;
  ASSERT_TRUE(neo.Expand("e", ExpandDirection::kOut, Value::Str("a"),
                         Value::Str("follows"), &stats)
                  .ok());
  // One operation through the labeled composite index: nothing examined
  // beyond the bucket (no residual filter), one row back.
  EXPECT_EQ(stats.operations, 1u);
  EXPECT_EQ(stats.index_lookups, 1u);
  EXPECT_EQ(stats.rows_scanned, 0u);
  EXPECT_EQ(stats.rows_returned, 1u);
}

TEST(GraphStoreTest, PropertyLookupChargesResidualExamination) {
  // Property maps are graphs anchored by id: NodeProp(id, key, value).
  GraphStore neo;
  ASSERT_TRUE(neo.CreateGraph("p", 3).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(neo.Insert("p", {Value::Str("n1"),
                                 Value::Str("k" + std::to_string(i)),
                                 Value::Int(i)})
                    .ok());
  }
  // Anchored on the id with the *value* position also bound: the value is
  // not part of any index, so the store must examine the whole bucket.
  StoreStats stats;
  auto rows = neo.Match(
      "p", {Value::Str("n1"), std::nullopt, Value::Int(2)}, &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
  EXPECT_EQ(stats.operations, 1u);
  EXPECT_EQ(stats.index_lookups, 1u);
  EXPECT_EQ(stats.rows_scanned, 4u);  // The bucket, not the graph.
  EXPECT_EQ(stats.rows_returned, 1u);
}

TEST(GraphStoreTest, ScanCostsProportionally) {
  GraphStore neo;
  FillSmallGraph(&neo);
  StoreStats stats;
  auto rows = neo.Scan("e", &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
  EXPECT_EQ(stats.operations, 1u);
  EXPECT_EQ(stats.rows_scanned, 3u);
  EXPECT_EQ(stats.index_lookups, 0u);
  EXPECT_EQ(stats.rows_returned, 3u);
}

TEST(GraphStoreTest, ExpandIsCheaperThanScan) {
  GraphStore neo;
  ASSERT_TRUE(neo.CreateGraph("e", 3).ok());
  std::vector<Row> rows;
  for (int i = 0; i < 200; ++i) {
    rows.push_back({Value::Str("s" + std::to_string(i % 50)),
                    Value::Str("follows"),
                    Value::Str("s" + std::to_string((i + 1) % 50))});
  }
  ASSERT_TRUE(neo.InsertBatch("e", std::move(rows)).ok());
  StoreStats expand, scan;
  ASSERT_TRUE(neo.Expand("e", ExpandDirection::kOut, Value::Str("s3"),
                         std::nullopt, &expand)
                  .ok());
  ASSERT_TRUE(neo.Scan("e", &scan).ok());
  EXPECT_LT(expand.simulated_cost, scan.simulated_cost);
  EXPECT_EQ(expand.rows_scanned, 0u);
  EXPECT_EQ(scan.rows_scanned, 200u);
}

TEST(GraphStoreTest, MatchPagePaginates) {
  GraphStore neo;
  ASSERT_TRUE(neo.CreateGraph("e", 2).ok());
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(neo.Insert("e", {Value::Str("a"),
                                 Value::Str("d" + std::to_string(i))})
                    .ok());
  }
  size_t cursor = 0;
  std::vector<Row> all;
  StoreStats stats;
  bool more = true;
  size_t pages = 0;
  while (more) {
    std::vector<Row> page;
    auto r = neo.MatchPage("e", {Value::Str("a"), std::nullopt},
                           /*limit=*/3, &cursor, &page, &stats);
    ASSERT_TRUE(r.ok());
    more = *r;
    all.insert(all.end(), page.begin(), page.end());
    ++pages;
    ASSERT_LE(pages, 5u);
  }
  EXPECT_EQ(all.size(), 7u);
  // One operation per page; the bucket probe charged once, on page one.
  EXPECT_EQ(stats.operations, pages);
  EXPECT_EQ(stats.index_lookups, 1u);
  EXPECT_EQ(stats.rows_returned, 7u);
  // Paged and unpaged answers agree.
  auto whole = neo.Match("e", {Value::Str("a"), std::nullopt});
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(all, *whole);
}

TEST(GraphStoreTest, LifetimeStatsAccumulate) {
  GraphStore neo;
  FillSmallGraph(&neo);
  ASSERT_TRUE(
      neo.Expand("e", ExpandDirection::kOut, Value::Str("a")).ok());
  ASSERT_TRUE(neo.Scan("e").ok());
  StoreStats life = neo.lifetime_stats();
  // Insert batches + the two reads all landed in the lifetime counters.
  EXPECT_GE(life.operations, 5u);
  EXPECT_GT(life.simulated_cost, 0.0);
  EXPECT_GE(life.rows_returned, 5u);
}

TEST(GraphStoreTest, FaultInjectionCoversAllPaths) {
  FaultInjector injector(3);
  GraphStore neo;
  FillSmallGraph(&neo);
  neo.AttachFaultInjector(&injector, "neo");

  // Outage: every read and write refuses with kUnavailable.
  injector.SetOutage("neo", true);
  auto r = neo.Expand("e", ExpandDirection::kOut, Value::Str("a"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(r.status().message().find("store 'neo'"), std::string::npos);
  EXPECT_EQ(neo.Match("e", {std::nullopt, std::nullopt, std::nullopt})
                .status()
                .code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(neo.Scan("e").status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(neo.Insert("e", {Value::Str("x"), Value::Str("l"),
                             Value::Str("y")})
                .code(),
            StatusCode::kUnavailable);
  injector.SetOutage("neo", false);
  EXPECT_TRUE(neo.Expand("e", ExpandDirection::kOut, Value::Str("a")).ok());

  // Fail-next-N: exactly two reads fail, the third succeeds.
  injector.FailNextReads("neo", 2);
  EXPECT_EQ(neo.Scan("e").status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(neo.Scan("e").status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(neo.Scan("e").ok());

  // Transient faults: a seeded 25% rate lands near 25% deterministically.
  FaultPlan plan;
  plan.transient_fault_rate = 0.25;
  injector.SetPlan("neo", plan);
  int failed = 0;
  for (int i = 0; i < 1000; ++i) {
    if (!neo.Scan("e").ok()) ++failed;
  }
  EXPECT_GT(failed, 180);
  EXPECT_LT(failed, 320);
}

// ----------------------------------------------------------- OpenHashMap --

TEST(OpenHashMapTest, PutFindEraseRoundTrip) {
  OpenHashMap map;
  EXPECT_TRUE(map.empty());
  EXPECT_TRUE(map.Put("a", "1"));
  EXPECT_FALSE(map.Put("a", "2"));  // upsert, not a new key
  ASSERT_NE(map.Find("a"), nullptr);
  EXPECT_EQ(*map.Find("a"), "2");
  EXPECT_EQ(map.Find("missing"), nullptr);
  EXPECT_TRUE(map.Erase("a"));
  EXPECT_FALSE(map.Erase("a"));
  EXPECT_EQ(map.Find("a"), nullptr);
  EXPECT_TRUE(map.empty());
}

TEST(OpenHashMapTest, TombstoneSlotIsReused) {
  OpenHashMap map;
  map.Put("k", "v1");
  map.Erase("k");
  // Re-inserting after the erase must land through the tombstone and the
  // lookup must find the live slot again.
  EXPECT_TRUE(map.Put("k", "v2"));
  ASSERT_NE(map.Find("k"), nullptr);
  EXPECT_EQ(*map.Find("k"), "v2");
  EXPECT_TRUE(map.Verify().ok());
}

TEST(OpenHashMapTest, GrowthPreservesAllKeys) {
  OpenHashMap map;
  constexpr int kN = 5000;  // forces several rehashes from the default size
  for (int i = 0; i < kN; ++i) {
    map.Put(StrCat("key", i), StrCat("val", i));
  }
  EXPECT_EQ(map.size(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    const std::string* v = map.Find(StrCat("key", i));
    ASSERT_NE(v, nullptr) << "key" << i;
    EXPECT_EQ(*v, StrCat("val", i));
  }
  EXPECT_TRUE(map.Verify().ok());
}

TEST(OpenHashMapTest, BulkLoadInsertsAndVerifies) {
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 2000; ++i) {
    entries.emplace_back(StrCat("k", i), StrCat("v", i));
  }
  // Duplicate key: last one wins, not counted as a new insert.
  entries.emplace_back("k0", "overwritten");
  OpenHashMap map;
  EXPECT_EQ(map.BulkLoad(entries), 2000u);
  EXPECT_EQ(map.size(), 2000u);
  ASSERT_NE(map.Find("k0"), nullptr);
  EXPECT_EQ(*map.Find("k0"), "overwritten");
  EXPECT_TRUE(map.Verify().ok());
}

TEST(OpenHashMapTest, ForEachVisitsEveryLiveEntry) {
  OpenHashMap map;
  for (int i = 0; i < 100; ++i) map.Put(StrCat("k", i), "v");
  for (int i = 0; i < 100; i += 2) map.Erase(StrCat("k", i));
  size_t seen = 0;
  map.ForEach([&](const std::string& key, const std::string&) {
    ++seen;
    EXPECT_EQ(map.Find(key) != nullptr, true);
  });
  EXPECT_EQ(seen, 50u);
}

TEST(OpenHashMapTest, ChurnKeepsProbeSequencesSound) {
  // Interleaved insert/erase churn accumulates tombstones; Verify must
  // stay green through growth triggered by used (live + tombstone) load.
  OpenHashMap map;
  Rng rng(7);
  std::map<std::string, std::string> model;
  for (int step = 0; step < 20000; ++step) {
    std::string key = StrCat("k", rng.Uniform(500));
    if (rng.Chance(0.4)) {
      map.Erase(key);
      model.erase(key);
    } else {
      std::string val = StrCat("v", step);
      map.Put(key, val);
      model[key] = val;
    }
  }
  EXPECT_EQ(map.size(), model.size());
  for (const auto& [key, val] : model) {
    const std::string* got = map.Find(key);
    ASSERT_NE(got, nullptr) << key;
    EXPECT_EQ(*got, val);
  }
  EXPECT_TRUE(map.Verify().ok());
}

TEST(KeyValueStoreTest, BulkLoadMatchesPutCharges) {
  // BulkLoad must charge exactly what k singleton Puts charge, so cost
  // gates watching simulated cost cannot drift when loaders switch over.
  KeyValueStore a, b;
  ASSERT_TRUE(a.CreateCollection("c").ok());
  ASSERT_TRUE(b.CreateCollection("c").ok());
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 50; ++i) entries.emplace_back(StrCat("k", i), "v");
  ASSERT_TRUE(a.BulkLoad("c", entries).ok());
  for (const auto& [k, v] : entries) ASSERT_TRUE(b.Put("c", k, v).ok());
  // One batched charge vs 50 incremental ones: identical up to FP
  // accumulation order.
  EXPECT_NEAR(a.lifetime_stats().simulated_cost,
              b.lifetime_stats().simulated_cost, 1e-9);
  for (const auto& [k, v] : entries) {
    auto got = a.Get("c", k);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
}

}  // namespace
}  // namespace estocada::stores
