/// End-to-end tests of the Estocada facade: the full §II marketplace
/// scenario — heterogeneous stores, LAV fragments, PACB rewriting,
/// delegation, BindJoin, cost-based choice, advisor.

#include "estocada/estocada.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "workload/bigdata.h"
#include "workload/marketplace.h"

namespace estocada {
namespace {

using engine::Row;
using engine::Value;
using pivot::Adornment;

/// Sorted string form of a result set, for order-insensitive comparison.
std::multiset<std::string> Canon(const std::vector<Row>& rows) {
  std::multiset<std::string> out;
  for (const Row& r : rows) out.insert(engine::RowToString(r));
  return out;
}

/// Shared scenario fixture: small marketplace + all five stores.
class MarketplaceSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::MarketplaceConfig cfg;
    cfg.seed = 11;
    cfg.num_users = 120;
    cfg.num_products = 40;
    cfg.num_orders = 400;
    cfg.num_visits = 900;
    auto data = workload::GenerateMarketplace(cfg);
    ASSERT_TRUE(data.ok()) << data.status();
    data_ = std::move(*data);

    ASSERT_TRUE(sys_.RegisterSchema(data_.schema).ok());
    ASSERT_TRUE(sys_.RegisterStore({"postgres1",
                                    catalog::StoreKind::kRelational,
                                    &relational_, nullptr, nullptr, nullptr,
                                    nullptr})
                    .ok());
    ASSERT_TRUE(sys_.RegisterStore({"redis1", catalog::StoreKind::kKeyValue,
                                    nullptr, &kv_, nullptr, nullptr, nullptr})
                    .ok());
    ASSERT_TRUE(sys_.RegisterStore({"mongo1", catalog::StoreKind::kDocument,
                                    nullptr, nullptr, &doc_, nullptr, nullptr})
                    .ok());
    ASSERT_TRUE(sys_.RegisterStore({"spark1", catalog::StoreKind::kParallel,
                                    nullptr, nullptr, nullptr, &parallel_,
                                    nullptr})
                    .ok());
    ASSERT_TRUE(sys_.RegisterStore({"solr1", catalog::StoreKind::kText,
                                    nullptr, nullptr, nullptr, nullptr,
                                    &text_})
                    .ok());
    ASSERT_TRUE(sys_.LoadStaging(data_.staging).ok());
  }

  workload::MarketplaceData data_;
  stores::RelationalStore relational_;
  stores::KeyValueStore kv_;
  stores::DocumentStore doc_;
  stores::ParallelStore parallel_{2};
  stores::TextStore text_;
  Estocada sys_;
};

TEST_F(MarketplaceSystemTest, FragmentMaterializationPopulatesStores) {
  ASSERT_TRUE(sys_.DefineFragment("F_users(u, n, c) :- mk.users(u, n, c)",
                                  "postgres1")
                  .ok());
  ASSERT_TRUE(sys_.DefineFragment("F_cart(u, c) :- mk.carts(u, c)", "redis1",
                                  {Adornment::kInput, Adornment::kFree})
                  .ok());
  EXPECT_EQ(*relational_.RowCount("F_users"), 120u);
  EXPECT_EQ(*kv_.Size("F_cart"), 120u);
  auto frag = sys_.catalog().GetFragment("F_users");
  ASSERT_TRUE(frag.ok());
  EXPECT_EQ((*frag)->stats.row_count, 120u);
  EXPECT_EQ((*frag)->stats.distinct[0], 120u);
}

TEST_F(MarketplaceSystemTest, RelationalFragmentAnswersQuery) {
  ASSERT_TRUE(sys_.DefineFragment("F_users(u, n, c) :- mk.users(u, n, c)",
                                  "postgres1")
                  .ok());
  auto result = sys_.Query("ucity(city) :- mk.users($uid, n, city)",
                           {{"$uid", Value::Int(7)}});
  ASSERT_TRUE(result.ok()) << result.status();
  auto expected = sys_.EvaluateOverStaging(
      "ucity(city) :- mk.users($uid, n, city)", {{"$uid", Value::Int(7)}});
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(Canon(result->rows), Canon(*expected));
  EXPECT_EQ(result->rows.size(), 1u);
  // Work was delegated to the relational store.
  EXPECT_TRUE(result->runtime_stats.per_store.count("postgres1"));
}

TEST_F(MarketplaceSystemTest, KvFragmentAnswersKeyLookup) {
  ASSERT_TRUE(sys_.DefineFragment("F_cart(u, c) :- mk.carts(u, c)", "redis1",
                                  {Adornment::kInput, Adornment::kFree})
                  .ok());
  auto result = sys_.Query("cart(c) :- mk.carts($uid, c)",
                           {{"$uid", Value::Int(3)}});
  ASSERT_TRUE(result.ok()) << result.status();
  auto expected = sys_.EvaluateOverStaging("cart(c) :- mk.carts($uid, c)",
                                           {{"$uid", Value::Int(3)}});
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(Canon(result->rows), Canon(*expected));
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_TRUE(result->rows[0][0].is_list());  // The nested cart value.
  EXPECT_TRUE(result->runtime_stats.per_store.count("redis1"));
  // A key lookup does exactly one KV operation.
  EXPECT_EQ(result->runtime_stats.per_store.at("redis1").operations, 1u);
}

TEST_F(MarketplaceSystemTest, ScanQueryOverKvFragmentIsInfeasible) {
  ASSERT_TRUE(sys_.DefineFragment("F_cart(u, c) :- mk.carts(u, c)", "redis1",
                                  {Adornment::kInput, Adornment::kFree})
                  .ok());
  // Full enumeration needs the key position free: infeasible here.
  auto result = sys_.Query("allcarts(u, c) :- mk.carts(u, c)");
  EXPECT_EQ(result.status().code(), StatusCode::kNoRewriting);
}

TEST_F(MarketplaceSystemTest, DocumentFragmentWithFilterDelegation) {
  ASSERT_TRUE(sys_.DefineFragment(
                     "F_prod(p, n, cat, pr) :- mk.products(p, n, cat, pr)",
                     "mongo1")
                  .ok());
  auto result = sys_.Query(
      "pcat(p, n, pr) :- mk.products(p, n, $cat, pr)",
      {{"$cat", Value::Str("cat3")}});
  ASSERT_TRUE(result.ok()) << result.status();
  auto expected = sys_.EvaluateOverStaging(
      "pcat(p, n, pr) :- mk.products(p, n, $cat, pr)",
      {{"$cat", Value::Str("cat3")}});
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(Canon(result->rows), Canon(*expected));
  EXPECT_FALSE(result->rows.empty());
  EXPECT_TRUE(result->runtime_stats.per_store.count("mongo1"));
}

TEST_F(MarketplaceSystemTest, CrossStoreJoinWithBindJoin) {
  // users in postgres, carts in redis: the join binds the KV key from the
  // relational side (the paper's BindJoin for access-restricted sources).
  ASSERT_TRUE(sys_.DefineFragment("F_users(u, n, c) :- mk.users(u, n, c)",
                                  "postgres1")
                  .ok());
  ASSERT_TRUE(sys_.DefineFragment("F_cart(u, c) :- mk.carts(u, c)", "redis1",
                                  {Adornment::kInput, Adornment::kFree})
                  .ok());
  const char* q = "namecart(n, c) :- mk.users(u, n, 'city3'), mk.carts(u, c)";
  auto result = sys_.Query(q);
  ASSERT_TRUE(result.ok()) << result.status();
  auto expected = sys_.EvaluateOverStaging(q);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(Canon(result->rows), Canon(*expected));
  EXPECT_FALSE(result->rows.empty());
  EXPECT_NE(result->plan_text.find("BindJoin"), std::string::npos)
      << result->plan_text;
}

TEST_F(MarketplaceSystemTest, LargestSubqueryDelegatedToOneRelationalStore) {
  ASSERT_TRUE(sys_.DefineFragment("F_users(u, n, c) :- mk.users(u, n, c)",
                                  "postgres1")
                  .ok());
  ASSERT_TRUE(sys_.DefineFragment(
                     "F_orders(o, u, p, t) :- mk.orders(o, u, p, t)",
                     "postgres1")
                  .ok());
  const char* q =
      "ord(n, p) :- mk.users(u, n, c), mk.orders(o, u, p, t)";
  auto explained = sys_.Explain(q);
  ASSERT_TRUE(explained.ok()) << explained.status();
  const auto& plan = explained->best_plan();
  // Both atoms land in ONE delegated SQL query (wrapper-mediator style).
  ASSERT_EQ(plan.delegated.size(), 1u);
  EXPECT_NE(plan.delegated[0].find("SELECT"), std::string::npos);
  EXPECT_NE(plan.delegated[0].find("F_users"), std::string::npos);
  EXPECT_NE(plan.delegated[0].find("F_orders"), std::string::npos);
  // And it computes the right answer.
  auto result = sys_.Query(q);
  ASSERT_TRUE(result.ok());
  auto expected = sys_.EvaluateOverStaging(q);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(Canon(result->rows), Canon(*expected));
}

TEST_F(MarketplaceSystemTest, MaterializedJoinFragmentInParallelStore) {
  // §II: materialize purchases ⋈ browsing history ⋈ catalog, keyed by
  // (uid, category), in the Spark stand-in.
  ASSERT_TRUE(
      sys_.DefineFragment(
              "F_pjoin(u, cat, p, n) :- mk.orders(o, u, p, t), "
              "mk.visits(u, p, d), mk.products(p, n, cat, pr)",
              "spark1",
              {Adornment::kInput, Adornment::kInput, Adornment::kFree,
               Adornment::kFree})
          .ok());
  auto result = sys_.Query(workload::MarketplaceQueries::PersonalizedSearch(),
                           {{"$uid", Value::Int(1)},
                            {"$cat", Value::Str("cat0")}});
  ASSERT_TRUE(result.ok()) << result.status();
  auto expected = sys_.EvaluateOverStaging(
      workload::MarketplaceQueries::PersonalizedSearch(),
      {{"$uid", Value::Int(1)}, {"$cat", Value::Str("cat0")}});
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(Canon(result->rows), Canon(*expected));
  // Served by a single index lookup in the parallel store.
  EXPECT_TRUE(result->runtime_stats.per_store.count("spark1"));
  EXPECT_NE(result->plan_text.find("INDEX-LOOKUP"), std::string::npos)
      << result->plan_text;
}

TEST_F(MarketplaceSystemTest, CostBasedChoicePrefersMaterializedJoin) {
  // Base fragments AND the materialized join: the planner must pick the
  // cheap single-lookup plan.
  ASSERT_TRUE(sys_.DefineFragment(
                     "F_orders(o, u, p, t) :- mk.orders(o, u, p, t)",
                     "postgres1")
                  .ok());
  ASSERT_TRUE(sys_.DefineFragment(
                     "F_visits(u, p, d) :- mk.visits(u, p, d)", "postgres1")
                  .ok());
  ASSERT_TRUE(sys_.DefineFragment(
                     "F_prod(p, n, cat, pr) :- mk.products(p, n, cat, pr)",
                     "postgres1")
                  .ok());
  ASSERT_TRUE(
      sys_.DefineFragment(
              "F_pjoin(u, cat, p, n) :- mk.orders(o, u, p, t), "
              "mk.visits(u, p, d), mk.products(p, n, cat, pr)",
              "spark1",
              {Adornment::kInput, Adornment::kInput, Adornment::kFree,
               Adornment::kFree})
          .ok());
  auto explained =
      sys_.Explain(workload::MarketplaceQueries::PersonalizedSearch(),
                   {{"$uid", Value::Int(1)}, {"$cat", Value::Str("cat0")}});
  ASSERT_TRUE(explained.ok()) << explained.status();
  EXPECT_GE(explained->plans.size(), 2u);
  EXPECT_EQ(explained->best_plan().rewriting.body.size(), 1u);
  EXPECT_EQ(explained->best_plan().rewriting.body[0].relation, "F_pjoin");
  // The chosen plan is the cheapest of all.
  for (const auto& p : explained->plans) {
    EXPECT_GE(p.estimated_cost, explained->best_plan().estimated_cost);
  }
}

TEST_F(MarketplaceSystemTest, TextFragmentAnswersTermSearch) {
  ASSERT_TRUE(sys_.DefineFragment(
                     "F_terms(p, w) :- mk.prodterms(p, w)", "solr1",
                     {Adornment::kFree, Adornment::kInput})
                  .ok());
  const char* q = "find(p) :- mk.prodterms(p, 'lamp')";
  auto result = sys_.Query(q);
  ASSERT_TRUE(result.ok()) << result.status();
  auto expected = sys_.EvaluateOverStaging(q);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(Canon(result->rows), Canon(*expected));
  EXPECT_TRUE(result->runtime_stats.per_store.count("solr1"));
}

TEST_F(MarketplaceSystemTest, TextPlusRelationalCrossModelQuery) {
  ASSERT_TRUE(sys_.DefineFragment(
                     "F_terms(p, w) :- mk.prodterms(p, w)", "solr1",
                     {Adornment::kFree, Adornment::kInput})
                  .ok());
  ASSERT_TRUE(sys_.DefineFragment(
                     "F_prod(p, n, cat, pr) :- mk.products(p, n, cat, pr)",
                     "postgres1")
                  .ok());
  const char* q =
      "search(p, n, pr) :- mk.prodterms(p, 'red'), "
      "mk.products(p, n, cat, pr)";
  auto result = sys_.Query(q);
  ASSERT_TRUE(result.ok()) << result.status();
  auto expected = sys_.EvaluateOverStaging(q);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(Canon(result->rows), Canon(*expected));
  EXPECT_FALSE(result->rows.empty());
  // Both stores participated.
  EXPECT_TRUE(result->runtime_stats.per_store.count("solr1"));
  EXPECT_TRUE(result->runtime_stats.per_store.count("postgres1"));
}

TEST_F(MarketplaceSystemTest, KvFragmentWithNonUniqueKeyKeepsAllRows) {
  // A KV fragment keyed by a non-unique position (product category) must
  // retain every row sharing the key (regression: last-writer-wins loss).
  ASSERT_TRUE(sys_.DefineFragment(
                     "F_bycat(cat, p, n) :- mk.products(p, n, cat, pr)",
                     "redis1",
                     {Adornment::kInput, Adornment::kFree, Adornment::kFree})
                  .ok());
  const char* q = "pc(p, n) :- mk.products(p, n, $cat, pr)";
  auto result = sys_.Query(q, {{"$cat", Value::Str("cat1")}});
  ASSERT_TRUE(result.ok()) << result.status();
  auto expected =
      sys_.EvaluateOverStaging(q, {{"$cat", Value::Str("cat1")}});
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(Canon(result->rows), Canon(*expected));
  EXPECT_GT(result->rows.size(), 1u);  // Several products share cat1.
}

TEST_F(MarketplaceSystemTest, NoFragmentNoRewriting) {
  auto result = sys_.Query("cart(c) :- mk.carts($uid, c)",
                           {{"$uid", Value::Int(1)}});
  EXPECT_EQ(result.status().code(), StatusCode::kNoRewriting);
}

TEST_F(MarketplaceSystemTest, DropFragmentRemovesAccessPath) {
  ASSERT_TRUE(sys_.DefineFragment("F_cart(u, c) :- mk.carts(u, c)", "redis1",
                                  {Adornment::kInput, Adornment::kFree})
                  .ok());
  ASSERT_TRUE(sys_.Query("cart(c) :- mk.carts($uid, c)",
                         {{"$uid", Value::Int(1)}})
                  .ok());
  ASSERT_TRUE(sys_.DropFragment("F_cart").ok());
  EXPECT_FALSE(kv_.HasCollection("F_cart"));
  EXPECT_EQ(sys_.Query("cart(c) :- mk.carts($uid, c)",
                       {{"$uid", Value::Int(1)}})
                .status()
                .code(),
            StatusCode::kNoRewriting);
}

TEST_F(MarketplaceSystemTest, MigrationChangesNoApplicationCode) {
  // The §II pitch: the same application query first served from the
  // document store, then — after migrating the fragment to the KV store —
  // identical answers with zero query changes.
  ASSERT_TRUE(sys_.DefineFragment("F_cart(u, c) :- mk.carts(u, c)", "mongo1")
                  .ok());
  const char* q = "cart(c) :- mk.carts($uid, c)";
  auto before = sys_.Query(q, {{"$uid", Value::Int(5)}});
  ASSERT_TRUE(before.ok()) << before.status();
  ASSERT_TRUE(sys_.DropFragment("F_cart").ok());
  ASSERT_TRUE(sys_.DefineFragment("F_cart(u, c) :- mk.carts(u, c)", "redis1",
                                  {Adornment::kInput, Adornment::kFree})
                  .ok());
  auto after = sys_.Query(q, {{"$uid", Value::Int(5)}});
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(Canon(before->rows), Canon(after->rows));
  // And the key-value serving is cheaper (the 20%-gain mechanism).
  EXPECT_LT(after->simulated_cost(), before->simulated_cost());
}

TEST_F(MarketplaceSystemTest, AdvisorRecommendsKvForHotLookups) {
  ASSERT_TRUE(sys_.DefineFragment("F_cart_doc(u, c) :- mk.carts(u, c)",
                                  "mongo1")
                  .ok());
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    auto r = sys_.Query("cart(c) :- mk.carts($uid, c)",
                        {{"$uid", Value::Int(static_cast<int64_t>(
                              rng.Uniform(50)))}});
    ASSERT_TRUE(r.ok()) << r.status();
  }
  advisor::AdvisorOptions opts;
  opts.min_count = 10;
  opts.min_mean_cost = 1.0;
  auto recs = sys_.Advise(opts);
  ASSERT_FALSE(recs.empty());
  bool found_kv_add = false;
  for (const auto& rec : recs) {
    if (rec.action == advisor::Recommendation::Action::kAddFragment &&
        rec.store_name == "redis1") {
      found_kv_add = true;
      // Apply it and check the workload gets cheaper.
      ASSERT_TRUE(sys_.ApplyRecommendation(rec).ok());
      auto before = sys_.Query("cart(c) :- mk.carts($uid, c)",
                               {{"$uid", Value::Int(3)}});
      ASSERT_TRUE(before.ok());
      EXPECT_NE(before->rewriting_text.find(rec.view.name()),
                std::string::npos)
          << before->rewriting_text;
      break;
    }
  }
  EXPECT_TRUE(found_kv_add);
}

TEST_F(MarketplaceSystemTest, AdvisorFlagsUnusedFragment) {
  ASSERT_TRUE(sys_.DefineFragment("F_cart(u, c) :- mk.carts(u, c)", "redis1",
                                  {Adornment::kInput, Adornment::kFree})
                  .ok());
  // Two fragments cover mk.users; the unused one is redundant.
  ASSERT_TRUE(sys_.DefineFragment("F_users2(u, n, c) :- mk.users(u, n, c)",
                                  "mongo1")
                  .ok());
  ASSERT_TRUE(sys_.DefineFragment("F_users(u, n, c) :- mk.users(u, n, c)",
                                  "postgres1")
                  .ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(sys_.Query("cart(c) :- mk.carts($uid, c)",
                           {{"$uid", Value::Int(i)}})
                    .ok());
  }
  advisor::AdvisorOptions opts;
  opts.min_count = 100;  // Suppress add-recommendations.
  auto recs = sys_.Advise(opts);
  bool drop_users = false;
  for (const auto& rec : recs) {
    if (rec.action == advisor::Recommendation::Action::kDropFragment &&
        (rec.fragment_name == "F_users" ||
         rec.fragment_name == "F_users2")) {
      drop_users = true;
    }
    // The cart fragment is in active use AND non-redundant: never dropped.
    EXPECT_FALSE(rec.action ==
                     advisor::Recommendation::Action::kDropFragment &&
                 rec.fragment_name == "F_cart");
  }
  EXPECT_TRUE(drop_users);
}

TEST_F(MarketplaceSystemTest, QueryProgramUnionAndAggregate) {
  ASSERT_TRUE(sys_.DefineFragment("F_users(u, n, c) :- mk.users(u, n, c)",
                                  "postgres1")
                  .ok());
  ASSERT_TRUE(sys_.DefineFragment(
                     "F_orders(o, u, p, t) :- mk.orders(o, u, p, t)",
                     "postgres1")
                  .ok());
  // GAV-style program: union of two single-city user listings, grouped.
  Estocada::ProgramOps ops;
  ops.group_by = {1};  // city column
  ops.aggregates = {{engine::AggFn::kCount, 0, "n"}};
  ops.order_by = {0};
  auto r = sys_.QueryProgram(
      {"q(u, c) :- mk.users(u, n, c), mk.users(u, n, 'city0')",
       "q(u, c) :- mk.users(u, n, c), mk.users(u, n, 'city1')"},
      {}, ops);
  ASSERT_TRUE(r.ok()) << r.status();
  // One group per city, counts match direct evaluation.
  ASSERT_EQ(r->rows.size(), 2u);
  auto city0 = sys_.EvaluateOverStaging(
      "q(u) :- mk.users(u, n, 'city0')");
  ASSERT_TRUE(city0.ok());
  EXPECT_EQ(r->rows[0][1].int_value(),
            static_cast<int64_t>(city0->size()));
  EXPECT_NE(r->rewriting_text.find("UNION"), std::string::npos);
}

TEST_F(MarketplaceSystemTest, QueryProgramLimitAndValidation) {
  ASSERT_TRUE(sys_.DefineFragment("F_users(u, n, c) :- mk.users(u, n, c)",
                                  "postgres1")
                  .ok());
  Estocada::ProgramOps ops;
  ops.order_by = {0};
  ops.limit = 5;
  auto r = sys_.QueryProgram({"q(u) :- mk.users(u, n, c)"}, {}, ops);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->rows.size(), 5u);
  EXPECT_EQ(r->rows[0][0], Value::Int(0));
  // Arity mismatch across branches.
  EXPECT_EQ(sys_.QueryProgram({"q(u) :- mk.users(u, n, c)",
                               "q(u, n) :- mk.users(u, n, c)"})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(sys_.QueryProgram({}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BigDataBenchTest, GeneratesAndAnswersJoin) {
  workload::BigDataBenchConfig cfg;
  cfg.num_pages = 200;
  cfg.num_visits = 1500;
  auto data = workload::GenerateBigDataBench(cfg);
  ASSERT_TRUE(data.ok()) << data.status();

  stores::RelationalStore pg;
  stores::ParallelStore spark(2);
  Estocada sys;
  ASSERT_TRUE(sys.RegisterSchema(data->schema).ok());
  ASSERT_TRUE(sys.RegisterStore({"pg", catalog::StoreKind::kRelational, &pg,
                                 nullptr, nullptr, nullptr, nullptr})
                  .ok());
  ASSERT_TRUE(sys.RegisterStore({"spark", catalog::StoreKind::kParallel,
                                 nullptr, nullptr, nullptr, &spark, nullptr})
                  .ok());
  ASSERT_TRUE(sys.LoadStaging(data->staging).ok());
  ASSERT_TRUE(
      sys.DefineFragment("F_rank(u, r, d) :- bdb.rankings(u, r, d)", "pg")
          .ok());
  ASSERT_TRUE(sys.DefineFragment(
                     "F_uv(ip, u, rev, cc) :- bdb.uservisits(ip, u, rev, cc)",
                     "spark")
                  .ok());
  auto result =
      sys.Query(workload::BigDataBenchQueries::VisitsToRankedPages(),
                {{"$rank", Value::Int(0)}});
  ASSERT_TRUE(result.ok()) << result.status();
  auto expected = sys.EvaluateOverStaging(
      workload::BigDataBenchQueries::VisitsToRankedPages(),
      {{"$rank", Value::Int(0)}});
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(Canon(result->rows), Canon(*expected));
  EXPECT_FALSE(result->rows.empty());
}

/// Property sweep: for a matrix of (query, placement) combinations, the
/// hybrid execution agrees with direct staging evaluation.
struct PlacementCase {
  const char* fragment_store;  // for the carts fragment
  bool adorned;
};
class PlacementProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PlacementProperty, HybridMatchesGroundTruth) {
  auto [store_pick, uid] = GetParam();
  workload::MarketplaceConfig cfg;
  cfg.seed = 21;
  cfg.num_users = 60;
  cfg.num_products = 20;
  cfg.num_orders = 150;
  cfg.num_visits = 300;
  auto data = workload::GenerateMarketplace(cfg);
  ASSERT_TRUE(data.ok());

  stores::RelationalStore pg;
  stores::KeyValueStore redis;
  stores::DocumentStore mongo;
  stores::ParallelStore spark(2);
  Estocada sys;
  ASSERT_TRUE(sys.RegisterSchema(data->schema).ok());
  ASSERT_TRUE(sys.RegisterStore({"pg", catalog::StoreKind::kRelational, &pg,
                                 nullptr, nullptr, nullptr, nullptr})
                  .ok());
  ASSERT_TRUE(sys.RegisterStore({"redis", catalog::StoreKind::kKeyValue,
                                 nullptr, &redis, nullptr, nullptr, nullptr})
                  .ok());
  ASSERT_TRUE(sys.RegisterStore({"mongo", catalog::StoreKind::kDocument,
                                 nullptr, nullptr, &mongo, nullptr, nullptr})
                  .ok());
  ASSERT_TRUE(sys.RegisterStore({"spark", catalog::StoreKind::kParallel,
                                 nullptr, nullptr, nullptr, &spark, nullptr})
                  .ok());
  ASSERT_TRUE(sys.LoadStaging(data->staging).ok());

  const char* stores_by_pick[] = {"pg", "redis", "mongo", "spark"};
  const char* store = stores_by_pick[store_pick];
  std::vector<Adornment> adorn;
  if (store_pick == 1) {
    adorn = {Adornment::kInput, Adornment::kFree};  // KV needs a key.
  }
  ASSERT_TRUE(sys.DefineFragment("F_cart(u, c) :- mk.carts(u, c)", store,
                                 adorn)
                  .ok());
  ASSERT_TRUE(sys.DefineFragment("F_users(u, n, c) :- mk.users(u, n, c)",
                                 "pg")
                  .ok());

  const char* queries[] = {
      "cart(c) :- mk.carts($uid, c)",
      "namecart(n, c) :- mk.users(u, n, city), mk.carts(u, c), "
      "mk.users(u, n, city)",
      "both(u, n, c) :- mk.users(u, n, city), mk.carts(u, c)",
  };
  for (const char* q : queries) {
    std::map<std::string, Value> params{
        {"$uid", Value::Int(static_cast<int64_t>(uid))}};
    auto hybrid = sys.Query(q, params);
    // The scan-shaped queries are infeasible over an adorned KV fragment
    // when no provider binds the key: accept kNoRewriting there.
    if (!hybrid.ok()) {
      ASSERT_EQ(hybrid.status().code(), StatusCode::kNoRewriting) << q;
      continue;
    }
    auto expected = sys.EvaluateOverStaging(q, params);
    ASSERT_TRUE(expected.ok()) << q;
    EXPECT_EQ(Canon(hybrid->rows), Canon(*expected)) << q << " @ " << store;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PlacementProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1, 13, 37)));

}  // namespace
}  // namespace estocada
