/// Tests of the synthetic workload generators (the stand-ins for the
/// proprietary Datalyse data and the hosted Big Data Benchmark).

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/bigdata.h"
#include "workload/marketplace.h"

namespace estocada::workload {
namespace {

using engine::Value;

TEST(MarketplaceGeneratorTest, SizesMatchConfig) {
  MarketplaceConfig cfg;
  cfg.num_users = 100;
  cfg.num_products = 30;
  cfg.num_orders = 250;
  cfg.num_visits = 400;
  auto data = GenerateMarketplace(cfg);
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(data->staging.at("mk.users").rows.size(), 100u);
  EXPECT_EQ(data->staging.at("mk.products").rows.size(), 30u);
  EXPECT_EQ(data->staging.at("mk.orders").rows.size(), 250u);
  EXPECT_EQ(data->staging.at("mk.visits").rows.size(), 400u);
  EXPECT_EQ(data->staging.at("mk.carts").rows.size(), 100u);
  EXPECT_FALSE(data->staging.at("mk.prodterms").rows.empty());
}

TEST(MarketplaceGeneratorTest, DeterministicBySeed) {
  MarketplaceConfig cfg;
  cfg.num_users = 50;
  cfg.num_products = 20;
  cfg.num_orders = 100;
  cfg.num_visits = 100;
  auto a = GenerateMarketplace(cfg);
  auto b = GenerateMarketplace(cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  for (const auto& [rel, data] : a->staging) {
    const auto& other = b->staging.at(rel);
    ASSERT_EQ(data.rows.size(), other.rows.size()) << rel;
    for (size_t i = 0; i < data.rows.size(); ++i) {
      EXPECT_EQ(engine::RowToString(data.rows[i]),
                engine::RowToString(other.rows[i]))
          << rel << "[" << i << "]";
    }
  }
  cfg.seed = 777;
  auto c = GenerateMarketplace(cfg);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(engine::RowToString(a->staging.at("mk.orders").rows[0]),
            engine::RowToString(c->staging.at("mk.orders").rows[0]));
}

TEST(MarketplaceGeneratorTest, ReferentialIntegrity) {
  MarketplaceConfig cfg;
  cfg.num_users = 40;
  cfg.num_products = 15;
  cfg.num_orders = 120;
  cfg.num_visits = 150;
  auto data = GenerateMarketplace(cfg);
  ASSERT_TRUE(data.ok());
  for (const auto& row : data->staging.at("mk.orders").rows) {
    EXPECT_GE(row[1].int_value(), 0);
    EXPECT_LT(row[1].int_value(), 40);  // uid in range
    EXPECT_LT(row[2].int_value(), 15);  // pid in range
  }
  for (const auto& row : data->staging.at("mk.visits").rows) {
    EXPECT_LT(row[0].int_value(), 40);
    EXPECT_LT(row[1].int_value(), 15);
  }
}

TEST(MarketplaceGeneratorTest, OrdersAreZipfSkewed) {
  MarketplaceConfig cfg;
  cfg.num_users = 500;
  cfg.num_orders = 5000;
  auto data = GenerateMarketplace(cfg);
  ASSERT_TRUE(data.ok());
  std::map<int64_t, int> per_user;
  for (const auto& row : data->staging.at("mk.orders").rows) {
    per_user[row[1].int_value()]++;
  }
  // The most popular user must far exceed the mean (10).
  int max_orders = 0;
  for (const auto& [uid, n] : per_user) max_orders = std::max(max_orders, n);
  EXPECT_GT(max_orders, 50);
}

TEST(MarketplaceGeneratorTest, SchemaValidatesAndIsWeaklyAcyclic) {
  auto data = GenerateMarketplace({});
  ASSERT_TRUE(data.ok());
  EXPECT_TRUE(data->schema.Validate().ok());
  EXPECT_TRUE(pivot::IsWeaklyAcyclic(data->schema.dependencies()));
}

TEST(MarketplaceGeneratorTest, DrawQueryCoversMixAndBindsParams) {
  auto data = GenerateMarketplace({});
  ASSERT_TRUE(data.ok());
  WorkloadMix mix;  // defaults cover all five classes
  Rng rng(9);
  std::set<std::string> labels;
  for (int i = 0; i < 300; ++i) {
    QueryInstance q = DrawQuery(*data, mix, &rng);
    labels.insert(q.label);
    // Every $param mentioned in the text has a binding.
    for (const auto& [name, value] : q.parameters) {
      EXPECT_NE(q.text.find(name), std::string::npos) << q.text;
    }
    EXPECT_FALSE(q.parameters.empty());
  }
  EXPECT_EQ(labels.size(), 5u);
}

TEST(BigDataBenchGeneratorTest, SizesAndDeterminism) {
  BigDataBenchConfig cfg;
  cfg.num_pages = 100;
  cfg.num_visits = 800;
  auto a = GenerateBigDataBench(cfg);
  auto b = GenerateBigDataBench(cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->staging.at("bdb.rankings").rows.size(), 100u);
  EXPECT_EQ(a->staging.at("bdb.uservisits").rows.size(), 800u);
  EXPECT_EQ(engine::RowToString(a->staging.at("bdb.uservisits").rows[7]),
            engine::RowToString(b->staging.at("bdb.uservisits").rows[7]));
  EXPECT_TRUE(a->schema.Validate().ok());
}

TEST(BigDataBenchGeneratorTest, VisitsTargetExistingPages) {
  BigDataBenchConfig cfg;
  cfg.num_pages = 50;
  cfg.num_visits = 300;
  auto data = GenerateBigDataBench(cfg);
  ASSERT_TRUE(data.ok());
  std::set<std::string> pages;
  for (const auto& row : data->staging.at("bdb.rankings").rows) {
    pages.insert(row[0].string_value());
  }
  for (const auto& row : data->staging.at("bdb.uservisits").rows) {
    EXPECT_TRUE(pages.count(row[1].string_value())) << row[1].ToString();
  }
}

}  // namespace
}  // namespace estocada::workload
