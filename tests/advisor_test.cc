/// Tests of the Storage Advisor's workload log: shape aggregation and the
/// capacity cap with decay-on-evict (a long-running server must not grow
/// the log without bound under a diverse workload).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "advisor/advisor.h"
#include "pivot/parser.h"

namespace estocada::advisor {
namespace {

pivot::ConjunctiveQuery Q(const std::string& text) {
  auto q = pivot::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return *q;
}

pivot::ConjunctiveQuery Shape(int i) {
  return Q("q(x) :- R" + std::to_string(i) + "(x, y)");
}

TEST(WorkloadLogTest, AggregatesByShapeUnderCapacity) {
  WorkloadLog log(/*capacity=*/8);
  log.Record(Q("q(x) :- R(x, $p)"), 10.0, {"F_a"});
  log.Record(Q("out(u) :- R(u, $uid)"), 30.0, {"F_a", "F_b"});
  auto entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 1u);  // Same shape up to renaming.
  const WorkloadEntry& e = entries.begin()->second;
  EXPECT_EQ(e.count, 2u);
  EXPECT_DOUBLE_EQ(e.total_cost, 40.0);
  EXPECT_EQ(log.FragmentUses("F_a"), 2u);
  EXPECT_EQ(log.FragmentUses("F_b"), 1u);
  EXPECT_EQ(log.decays(), 0u);
}

TEST(WorkloadLogTest, OverflowDecaysAndDropsOneOffShapes) {
  WorkloadLog log(/*capacity=*/4);
  // Two recurrent shapes...
  for (int i = 0; i < 8; ++i) log.Record(Shape(0), 100.0, {"F_hot"});
  for (int i = 0; i < 4; ++i) log.Record(Shape(1), 50.0, {});
  // ... plus one-off shapes that push the log over capacity.
  log.Record(Shape(2), 1.0, {});
  log.Record(Shape(3), 1.0, {});
  log.Record(Shape(4), 1.0, {});  // 5th distinct shape: overflow.
  EXPECT_GE(log.decays(), 1u);
  auto entries = log.Snapshot();
  EXPECT_LE(entries.size(), 4u);
  // The recurrent shapes survived the halving, the one-offs vanished.
  std::string hot_key = WorkloadLog::ShapeKey(Shape(0));
  ASSERT_EQ(entries.count(hot_key), 1u);
  EXPECT_EQ(entries.at(hot_key).count, 4u);          // 8 / 2.
  EXPECT_DOUBLE_EQ(entries.at(hot_key).total_cost, 400.0);  // 800 / 2.
  // Earlier one-offs vanished; the newcomer itself is exempt from the
  // decay that its own insert triggered, so it survives to accumulate.
  EXPECT_EQ(entries.count(WorkloadLog::ShapeKey(Shape(2))), 0u);
  EXPECT_EQ(entries.count(WorkloadLog::ShapeKey(Shape(3))), 0u);
  ASSERT_EQ(entries.count(WorkloadLog::ShapeKey(Shape(4))), 1u);
  EXPECT_EQ(entries.at(WorkloadLog::ShapeKey(Shape(4))).count, 1u);
  // Mean cost is decay-invariant: the advisor's thresholds still apply.
  EXPECT_DOUBLE_EQ(entries.at(hot_key).MeanCost(), 100.0);
  EXPECT_EQ(log.FragmentUses("F_hot"), 4u);  // Halved with its entry.
}

TEST(WorkloadLogTest, RecurrentOverflowEvictsCheapestShapes) {
  WorkloadLog log(/*capacity=*/2);
  // Both resident shapes are recurrent enough to survive the halving, so
  // capacity must be enforced by evicting the cheapest (by total cost).
  for (int i = 0; i < 8; ++i) log.Record(Shape(0), 100.0, {});
  for (int i = 0; i < 8; ++i) log.Record(Shape(1), 5.0, {});
  log.Record(Shape(2), 50.0, {});  // Overflow: decay leaves 3 entries.
  auto entries = log.Snapshot();
  EXPECT_EQ(log.decays(), 1u);
  ASSERT_EQ(entries.size(), 2u);
  // Shape 1 (total cost 8*5/2 = 20) was the cheapest and got evicted;
  // the expensive resident and the newcomer both survive.
  EXPECT_EQ(entries.count(WorkloadLog::ShapeKey(Shape(0))), 1u);
  EXPECT_EQ(entries.count(WorkloadLog::ShapeKey(Shape(1))), 0u);
  EXPECT_EQ(entries.count(WorkloadLog::ShapeKey(Shape(2))), 1u);
}

TEST(WorkloadLogTest, ZeroCapacityDisablesTheCap) {
  WorkloadLog log(/*capacity=*/0);
  for (int i = 0; i < 64; ++i) log.Record(Shape(i), 1.0, {});
  EXPECT_EQ(log.Snapshot().size(), 64u);
  EXPECT_EQ(log.decays(), 0u);
}

TEST(WorkloadLogTest, ClearResetsEntries) {
  WorkloadLog log;
  log.Record(Shape(0), 1.0, {"F"});
  log.Clear();
  EXPECT_TRUE(log.Snapshot().empty());
  EXPECT_EQ(log.FragmentUses("F"), 0u);
}

}  // namespace
}  // namespace estocada::advisor
