/// Tests of the Storage Advisor's workload log: shape aggregation and the
/// capacity cap with decay-on-evict (a long-running server must not grow
/// the log without bound under a diverse workload).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "advisor/advisor.h"
#include "pivot/parser.h"

namespace estocada::advisor {
namespace {

pivot::ConjunctiveQuery Q(const std::string& text) {
  auto q = pivot::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return *q;
}

pivot::ConjunctiveQuery Shape(int i) {
  return Q("q(x) :- R" + std::to_string(i) + "(x, y)");
}

TEST(WorkloadLogTest, AggregatesByShapeUnderCapacity) {
  WorkloadLog log(/*capacity=*/8);
  log.Record(Q("q(x) :- R(x, $p)"), 10.0, {"F_a"});
  log.Record(Q("out(u) :- R(u, $uid)"), 30.0, {"F_a", "F_b"});
  auto entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 1u);  // Same shape up to renaming.
  const WorkloadEntry& e = entries.begin()->second;
  EXPECT_EQ(e.count, 2u);
  EXPECT_DOUBLE_EQ(e.total_cost, 40.0);
  EXPECT_EQ(log.FragmentUses("F_a"), 2u);
  EXPECT_EQ(log.FragmentUses("F_b"), 1u);
  EXPECT_EQ(log.decays(), 0u);
}

TEST(WorkloadLogTest, OverflowDecaysAndDropsOneOffShapes) {
  WorkloadLog log(/*capacity=*/4);
  // Two recurrent shapes...
  for (int i = 0; i < 8; ++i) log.Record(Shape(0), 100.0, {"F_hot"});
  for (int i = 0; i < 4; ++i) log.Record(Shape(1), 50.0, {});
  // ... plus one-off shapes that push the log over capacity.
  log.Record(Shape(2), 1.0, {});
  log.Record(Shape(3), 1.0, {});
  log.Record(Shape(4), 1.0, {});  // 5th distinct shape: overflow.
  EXPECT_GE(log.decays(), 1u);
  auto entries = log.Snapshot();
  EXPECT_LE(entries.size(), 4u);
  // The recurrent shapes survived the halving, the one-offs vanished.
  std::string hot_key = WorkloadLog::ShapeKey(Shape(0));
  ASSERT_EQ(entries.count(hot_key), 1u);
  EXPECT_EQ(entries.at(hot_key).count, 4u);          // 8 / 2.
  EXPECT_DOUBLE_EQ(entries.at(hot_key).total_cost, 400.0);  // 800 / 2.
  // Earlier one-offs vanished; the newcomer itself is exempt from the
  // decay that its own insert triggered, so it survives to accumulate.
  EXPECT_EQ(entries.count(WorkloadLog::ShapeKey(Shape(2))), 0u);
  EXPECT_EQ(entries.count(WorkloadLog::ShapeKey(Shape(3))), 0u);
  ASSERT_EQ(entries.count(WorkloadLog::ShapeKey(Shape(4))), 1u);
  EXPECT_EQ(entries.at(WorkloadLog::ShapeKey(Shape(4))).count, 1u);
  // Mean cost is decay-invariant: the advisor's thresholds still apply.
  EXPECT_DOUBLE_EQ(entries.at(hot_key).MeanCost(), 100.0);
  EXPECT_EQ(log.FragmentUses("F_hot"), 4u);  // Halved with its entry.
}

TEST(WorkloadLogTest, RecurrentOverflowEvictsCheapestShapes) {
  WorkloadLog log(/*capacity=*/2);
  // Both resident shapes are recurrent enough to survive the halving, so
  // capacity must be enforced by evicting the cheapest (by total cost).
  for (int i = 0; i < 8; ++i) log.Record(Shape(0), 100.0, {});
  for (int i = 0; i < 8; ++i) log.Record(Shape(1), 5.0, {});
  log.Record(Shape(2), 50.0, {});  // Overflow: decay leaves 3 entries.
  auto entries = log.Snapshot();
  EXPECT_EQ(log.decays(), 1u);
  ASSERT_EQ(entries.size(), 2u);
  // Shape 1 (total cost 8*5/2 = 20) was the cheapest and got evicted;
  // the expensive resident and the newcomer both survive.
  EXPECT_EQ(entries.count(WorkloadLog::ShapeKey(Shape(0))), 1u);
  EXPECT_EQ(entries.count(WorkloadLog::ShapeKey(Shape(1))), 0u);
  EXPECT_EQ(entries.count(WorkloadLog::ShapeKey(Shape(2))), 1u);
}

TEST(WorkloadLogTest, ZeroCapacityDisablesTheCap) {
  WorkloadLog log(/*capacity=*/0);
  for (int i = 0; i < 64; ++i) log.Record(Shape(i), 1.0, {});
  EXPECT_EQ(log.Snapshot().size(), 64u);
  EXPECT_EQ(log.decays(), 0u);
}

TEST(WorkloadLogTest, ClearResetsEntries) {
  WorkloadLog log;
  log.Record(Shape(0), 1.0, {"F"});
  log.Clear();
  EXPECT_TRUE(log.Snapshot().empty());
  EXPECT_EQ(log.FragmentUses("F"), 0u);
}

TEST(WorkloadLogTest, ParameterSamplesAreABoundedRing) {
  WorkloadLog log;
  for (int i = 0; i < 10; ++i) {
    log.Record(Q("q(c) :- R($uid, c)"), 10.0, {},
               {{"$uid", engine::Value::Int(i)}}, /*rows_returned=*/2);
  }
  auto entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  const WorkloadEntry& e = entries.begin()->second;
  ASSERT_EQ(e.parameter_samples.size(), WorkloadEntry::kMaxParameterSamples);
  // Newest observations overwrite the oldest ring slots: 10 records into
  // 4 slots leaves {8, 9, 6, 7}.
  EXPECT_EQ(e.parameter_samples[0].at("$uid").int_value(), 8);
  EXPECT_EQ(e.parameter_samples[1].at("$uid").int_value(), 9);
  EXPECT_DOUBLE_EQ(e.MeanRows(), 2.0);
}

// -------------------------------------------- Pattern classification --

constexpr char kLookup[] = "q(c) :- mk.carts($uid, c)";
constexpr char kJoin[] =
    "q(o, p) :- mk.orders(o, $uid, p, t), mk.visits($uid, p, d)";

TEST(ClassifyWorkloadTest, EmptyLogIsInsufficient) {
  WorkloadLog log;
  PatternSummary s = ClassifyWorkload(log.Snapshot());
  EXPECT_EQ(s.pattern, WorkloadPattern::kInsufficient);
  EXPECT_EQ(s.total_count, 0u);
}

TEST(ClassifyWorkloadTest, DecayedAwayLogIsInsufficient) {
  // A burst of one-off shapes through a tiny log: every insert decays the
  // residents away, so what survives carries almost no evidence.
  WorkloadLog log(/*capacity=*/2);
  for (int i = 0; i < 32; ++i) log.Record(Shape(i), 40.0, {});
  auto entries = log.Snapshot();
  size_t total = 0;
  for (const auto& [key, e] : entries) total += e.count;
  ASSERT_LT(total, AdvisorOptions{}.min_count);
  EXPECT_EQ(ClassifyWorkload(entries).pattern,
            WorkloadPattern::kInsufficient);
}

TEST(ClassifyWorkloadTest, FiftyFiftyMixIsMixedAndDominanceIsDetected) {
  WorkloadLog log;
  for (int i = 0; i < 10; ++i) log.Record(Q(kLookup), 40.0, {});
  for (int i = 0; i < 10; ++i) log.Record(Q(kJoin), 40.0, {});
  PatternSummary s = ClassifyWorkload(log.Snapshot());
  EXPECT_EQ(s.pattern, WorkloadPattern::kMixed) << s.ToString();
  EXPECT_DOUBLE_EQ(s.lookup_cost_share, 0.5);
  EXPECT_DOUBLE_EQ(s.join_cost_share, 0.5);

  // Tip the cost balance to 80/20: lookup-heavy. Then the other way.
  for (int i = 0; i < 30; ++i) log.Record(Q(kLookup), 40.0, {});
  EXPECT_EQ(ClassifyWorkload(log.Snapshot()).pattern,
            WorkloadPattern::kLookupHeavy);
  for (int i = 0; i < 120; ++i) log.Record(Q(kJoin), 40.0, {});
  EXPECT_EQ(ClassifyWorkload(log.Snapshot()).pattern,
            WorkloadPattern::kJoinHeavy);
}

// ------------------------------------------------ Boundary behavior --

/// Catalog with one store of every kind the advisor targets.
class AdvisorBoundaryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_
                    .RegisterStore({"redis", catalog::StoreKind::kKeyValue,
                                    nullptr, &kv_, nullptr, nullptr, nullptr})
                    .ok());
    ASSERT_TRUE(catalog_
                    .RegisterStore({"spark", catalog::StoreKind::kParallel,
                                    nullptr, nullptr, nullptr, &parallel_,
                                    nullptr})
                    .ok());
  }

  catalog::Catalog catalog_;
  stores::KeyValueStore kv_;
  stores::ParallelStore parallel_{1};
};

TEST_F(AdvisorBoundaryTest, EmptyLogYieldsNoRecommendation) {
  WorkloadLog log;
  StorageAdvisor advisor;
  EXPECT_TRUE(advisor.Recommend(catalog_, log).empty());
  AdvisorOptions strict;
  strict.require_dominant_pattern = true;
  EXPECT_TRUE(
      StorageAdvisor(strict).Candidates(catalog_, log.Snapshot()).empty());
}

TEST_F(AdvisorBoundaryTest,
       FiftyFiftyMixYieldsNoRecommendationWhenDominanceRequired) {
  WorkloadLog log;
  for (int i = 0; i < 10; ++i) {
    log.Record(Q(kLookup), 40.0, {}, {{"$uid", engine::Value::Int(i)}}, 1);
  }
  for (int i = 0; i < 10; ++i) {
    log.Record(Q(kJoin), 40.0, {}, {{"$uid", engine::Value::Int(i)}}, 3);
  }
  AdvisorOptions strict;
  strict.require_dominant_pattern = true;
  // The ambiguous mix yields *nothing* — no coin-flip between the KV and
  // the join placement.
  EXPECT_TRUE(
      StorageAdvisor(strict).Candidates(catalog_, log.Snapshot()).empty());
  // Sanity: the restraint comes from the gating, not from the shapes
  // being unrecommendable — the permissive advisor recommends both.
  auto permissive = StorageAdvisor().Candidates(catalog_, log.Snapshot());
  EXPECT_EQ(permissive.size(), 2u);
}

TEST_F(AdvisorBoundaryTest, DominantPatternRestrictsToItsOwnFamily) {
  WorkloadLog log;
  for (int i = 0; i < 40; ++i) {
    log.Record(Q(kLookup), 40.0, {}, {{"$uid", engine::Value::Int(i)}}, 1);
  }
  for (int i = 0; i < 8; ++i) {
    log.Record(Q(kJoin), 40.0, {}, {{"$uid", engine::Value::Int(i)}}, 3);
  }
  AdvisorOptions strict;
  strict.require_dominant_pattern = true;
  auto candidates =
      StorageAdvisor(strict).Candidates(catalog_, log.Snapshot());
  // Lookup-heavy: only the KV candidate, evidence attached.
  ASSERT_EQ(candidates.size(), 1u);
  const ScoredCandidate& c = candidates[0];
  EXPECT_EQ(c.store_kind, catalog::StoreKind::kKeyValue);
  EXPECT_EQ(c.rec.action, Recommendation::Action::kAddFragment);
  EXPECT_EQ(c.count, 40u);
  EXPECT_DOUBLE_EQ(c.observed_mean_cost, 40.0);
  EXPECT_DOUBLE_EQ(c.observed_mean_rows, 1.0);
  EXPECT_EQ(c.probes.size(), WorkloadEntry::kMaxParameterSamples);
  EXPECT_EQ(c.shape_key, WorkloadLog::ShapeKey(Q(kLookup)));
}

}  // namespace
}  // namespace estocada::advisor
