/// Failure-injection tests: errors raised deep inside delegated store
/// calls or engine operators must propagate as Status values — never
/// crash, never silently truncate results. The RecoveryTest half drives
/// the fault-tolerant serving ladder end to end: transient faults are
/// retried to success, a hard store outage fails over to an alternative
/// rewriting (answers validated against staging ground truth), an outage
/// with no alternative degrades to the staging area, and recovery closes
/// the breaker and resumes plan caching.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>

#include "engine/operator.h"
#include "estocada/estocada.h"
#include "runtime/query_server.h"
#include "stores/fault.h"

namespace estocada {
namespace {

using engine::CallbackScanOperator;
using engine::Operator;
using engine::OperatorPtr;
using engine::Row;
using engine::Value;

/// An operator that yields `good` rows and then fails.
class FailAfterOperator final : public Operator {
 public:
  FailAfterOperator(size_t good, Status error)
      : good_(good), error_(std::move(error)) {}
  Status Open() override {
    produced_ = 0;
    return Status::OK();
  }
  Result<std::optional<Row>> Next() override {
    if (produced_ >= good_) return error_;
    ++produced_;
    return std::optional<Row>({Value::Int(static_cast<int64_t>(produced_))});
  }
  std::vector<std::string> columns() const override { return {"x"}; }
  std::string label() const override { return "FailAfter"; }

 private:
  size_t good_;
  Status error_;
  size_t produced_ = 0;
};

/// An operator whose Open fails.
class FailOpenOperator final : public Operator {
 public:
  Status Open() override { return Status::Unsupported("cannot open"); }
  Result<std::optional<Row>> Next() override {
    return Status::Internal("Next after failed Open");
  }
  std::vector<std::string> columns() const override { return {"x"}; }
  std::string label() const override { return "FailOpen"; }
};

TEST(FailureInjectionTest, MidStreamErrorPropagatesThroughFilter) {
  auto src = std::make_unique<FailAfterOperator>(
      3, Status::Internal("disk on fire"));
  engine::FilterOperator op(std::move(src),
                            engine::Expr::Const(Value::Bool(true)));
  auto rows = Collect(&op);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInternal);
  EXPECT_NE(rows.status().message().find("disk on fire"),
            std::string::npos);
}

TEST(FailureInjectionTest, MidStreamErrorPropagatesThroughHashJoinBuild) {
  // The failing operator sits on the BUILD side: Open() must fail.
  auto left = std::make_unique<FailAfterOperator>(
      2, Status::Unsupported("connection reset"));
  auto right = std::make_unique<engine::RowsOperator>(
      std::vector<std::string>{"x"}, std::vector<Row>{{Value::Int(1)}});
  engine::HashJoinOperator join(std::move(left), std::move(right),
                                {{0, 0}});
  EXPECT_EQ(join.Open().code(), StatusCode::kUnsupported);
}

TEST(FailureInjectionTest, MidStreamErrorPropagatesThroughHashJoinProbe) {
  auto left = std::make_unique<engine::RowsOperator>(
      std::vector<std::string>{"x"}, std::vector<Row>{{Value::Int(1)}});
  auto right = std::make_unique<FailAfterOperator>(
      1, Status::Internal("probe side died"));
  engine::HashJoinOperator join(std::move(left), std::move(right),
                                {{0, 0}});
  auto rows = Collect(&join);
  EXPECT_EQ(rows.status().code(), StatusCode::kInternal);
}

TEST(FailureInjectionTest, OpenFailurePropagatesThroughPipelines) {
  OperatorPtr src = std::make_unique<FailOpenOperator>();
  src = std::make_unique<engine::SortOperator>(std::move(src),
                                               std::vector<size_t>{0});
  src = std::make_unique<engine::LimitOperator>(std::move(src), 10);
  EXPECT_EQ(src->Open().code(), StatusCode::kUnsupported);
}

TEST(FailureInjectionTest, AggregateSurfacesInputError) {
  auto src = std::make_unique<FailAfterOperator>(
      5, Status::Internal("late failure"));
  engine::AggregateOperator agg(std::move(src), {},
                                {{engine::AggFn::kCount, 0, "n"}});
  // Aggregate drains its input in Open.
  EXPECT_EQ(agg.Open().code(), StatusCode::kInternal);
}

TEST(FailureInjectionTest, BindJoinFetchFailureAfterSomeRows) {
  auto outer = std::make_unique<engine::RowsOperator>(
      std::vector<std::string>{"k"},
      std::vector<Row>{{Value::Int(1)}, {Value::Int(2)}, {Value::Int(3)}});
  int calls = 0;
  engine::BindJoinOperator bind(
      std::move(outer), {0}, {"v"},
      [&calls](const Row& binding) -> Result<std::vector<Row>> {
        if (++calls == 3) return Status::NotFound("kv store shard down");
        return std::vector<Row>{{binding[0]}};
      },
      "kv");
  auto rows = Collect(&bind);
  EXPECT_EQ(rows.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(calls, 3);
}

TEST(FailureInjectionTest, SystemSurfacesStoreFailureOnDroppedContainer) {
  // Simulate operational failure: a fragment's physical container
  // disappears behind ESTOCADA's back (store admin dropped the table).
  pivot::Schema schema;
  ASSERT_TRUE(schema.AddRelation("R", 2).ok());
  stores::RelationalStore pg;
  Estocada sys;
  ASSERT_TRUE(sys.RegisterSchema(schema).ok());
  ASSERT_TRUE(sys.RegisterStore({"pg", catalog::StoreKind::kRelational, &pg,
                                 nullptr, nullptr, nullptr, nullptr})
                  .ok());
  ASSERT_TRUE(sys.LoadRow("R", {Value::Int(1), Value::Int(2)}).ok());
  ASSERT_TRUE(sys.DefineFragment("F(a, b) :- R(a, b)", "pg").ok());
  ASSERT_TRUE(pg.DropTable("F").ok());  // Out-of-band destruction.
  auto r = sys.Query("q(a, b) :- R(a, b)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_NE(r.status().message().find("'F'"), std::string::npos);
}

TEST(FailureInjectionTest, CorruptKvPayloadReportedNotCrashed) {
  pivot::Schema schema;
  ASSERT_TRUE(schema.AddRelation("R", 2).ok());
  stores::KeyValueStore kv;
  Estocada sys;
  ASSERT_TRUE(sys.RegisterSchema(schema).ok());
  ASSERT_TRUE(sys.RegisterStore({"kv", catalog::StoreKind::kKeyValue,
                                 nullptr, &kv, nullptr, nullptr, nullptr})
                  .ok());
  ASSERT_TRUE(sys.LoadRow("R", {Value::Int(1), Value::Int(2)}).ok());
  ASSERT_TRUE(sys.DefineFragment("K(a, b) :- R(a, b)", "kv",
                                 {pivot::Adornment::kInput,
                                  pivot::Adornment::kFree})
                  .ok());
  // Out-of-band corruption of the stored payload.
  ASSERT_TRUE(kv.Put("K", "1", "this is not json").ok());
  auto r = sys.Query("q(b) :- R($a, b)", {{"$a", Value::Int(1)}});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

// --------------------------------------------------------------------------
// End-to-end recovery: the degradation ladder over a replicated layout.

/// R is replicated on two stores (relational + document), so one store's
/// outage leaves an alternative rewriting; S lives on the relational store
/// alone, so its outage can only degrade to the staging area.
class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pivot::Schema schema;
    ASSERT_TRUE(schema.AddRelation("R", 2).ok());
    ASSERT_TRUE(schema.AddRelation("S", 2).ok());
    ASSERT_TRUE(sys_.RegisterSchema(schema).ok());
    ASSERT_TRUE(sys_.RegisterStore({"pg", catalog::StoreKind::kRelational,
                                    &pg_, nullptr, nullptr, nullptr, nullptr})
                    .ok());
    ASSERT_TRUE(sys_.RegisterStore({"doc", catalog::StoreKind::kDocument,
                                    nullptr, nullptr, &doc_, nullptr,
                                    nullptr})
                    .ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(
          sys_.LoadRow("R", {Value::Int(i), Value::Int(i % 5)}).ok());
      ASSERT_TRUE(
          sys_.LoadRow("S", {Value::Int(i), Value::Int(i * 2)}).ok());
    }
    ASSERT_TRUE(
        sys_.DefineFragment("F_rpg(a, b) :- R(a, b)", "pg", {}, {0}).ok());
    ASSERT_TRUE(
        sys_.DefineFragment("F_rdoc(a, b) :- R(a, b)", "doc", {}, {0}).ok());
    ASSERT_TRUE(sys_.DefineFragment("F_spg(a, b) :- S(a, b)", "pg").ok());
    pg_.AttachFaultInjector(&injector_, "pg");
    doc_.AttachFaultInjector(&injector_, "doc");
  }

  /// Fast-retry options so the tests don't sleep for real.
  static runtime::ServerOptions Options(uint64_t cooldown_micros = 200'000) {
    runtime::ServerOptions options;
    options.worker_threads = 1;
    options.retry.max_attempts = 6;
    options.retry.initial_backoff_micros = 1;
    options.retry.max_backoff_micros = 20;
    options.health.failure_threshold = 2;
    options.health.open_cooldown_micros = cooldown_micros;
    return options;
  }

  static std::multiset<std::string> Canon(const std::vector<Row>& rows) {
    std::multiset<std::string> out;
    for (const Row& r : rows) out.insert(engine::RowToString(r));
    return out;
  }

  /// The store whose fragment the cost-based choice picked for `result` —
  /// the outage tests knock out whichever one the planner prefers.
  static std::string PrimaryStore(const Estocada::QueryResult& result) {
    return result.rewriting_text.find("F_rpg") != std::string::npos ? "pg"
                                                                    : "doc";
  }

  Estocada sys_;
  stores::RelationalStore pg_;
  stores::DocumentStore doc_;
  stores::FaultInjector injector_{/*seed=*/42};
};

TEST_F(RecoveryTest, TransientFaultRetriedToSuccess) {
  runtime::QueryServer server(&sys_, Options());
  auto truth = sys_.EvaluateOverStaging("q(a, b) :- R(a, b)");
  ASSERT_TRUE(truth.ok());
  auto warm = server.Query("q(a, b) :- R(a, b)");
  ASSERT_TRUE(warm.ok());

  injector_.FailNextReads(PrimaryStore(*warm), 1);
  auto r = server.Query("q(a, b) :- R(a, b)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->attempts, 2);
  EXPECT_FALSE(r->degraded_to_staging);
  EXPECT_EQ(Canon(r->rows), Canon(*truth));
  EXPECT_GE(server.metrics().retries, 1u);
  // One failure is under the breaker threshold: nothing tripped.
  EXPECT_EQ(server.metrics().breaker_trips, 0u);
}

TEST_F(RecoveryTest, OutageFailsOverToReplicaRewriting) {
  runtime::QueryServer server(&sys_, Options());
  auto truth = sys_.EvaluateOverStaging("q(a, b) :- R(a, b)");
  ASSERT_TRUE(truth.ok());
  auto warm = server.Query("q(a, b) :- R(a, b)");
  ASSERT_TRUE(warm.ok());
  const std::string primary = PrimaryStore(*warm);

  injector_.SetOutage(primary, true);
  auto r = server.Query("q(a, b) :- R(a, b)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The replica rewriting answered — correct, not degraded.
  EXPECT_FALSE(r->degraded_to_staging);
  EXPECT_EQ(Canon(r->rows), Canon(*truth));
  EXPECT_NE(r->rewriting_text.find(primary == "pg" ? "F_rdoc" : "F_rpg"),
            std::string::npos);
  // Two failures tripped the breaker; the reroute rung then re-planned
  // around it immediately, without consuming another retry attempt.
  EXPECT_EQ(r->attempts, 2);
  EXPECT_GE(r->reroutes, 1);
  EXPECT_NE(std::find(r->excluded_stores.begin(), r->excluded_stores.end(),
                      primary),
            r->excluded_stores.end());
  EXPECT_EQ(server.health().state(primary), runtime::BreakerState::kOpen);
  EXPECT_GE(server.metrics().failovers, 1u);
  EXPECT_EQ(server.metrics().breaker_trips, 1u);
}

TEST_F(RecoveryTest, OutageWithoutAlternativeFallsBackToStaging) {
  runtime::QueryServer server(&sys_, Options());
  auto truth = sys_.EvaluateOverStaging("q(a, b) :- S(a, b)");
  ASSERT_TRUE(truth.ok());

  injector_.SetOutage("pg", true);
  auto r = server.Query("q(a, b) :- S(a, b)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // No rewriting survives the exclusion of pg — the staging area answers.
  EXPECT_TRUE(r->degraded_to_staging);
  EXPECT_EQ(Canon(r->rows), Canon(*truth));
  EXPECT_NE(r->plan_text.find("staging"), std::string::npos);
  EXPECT_GE(server.metrics().degraded, 1u);
  EXPECT_EQ(server.health().state("pg"), runtime::BreakerState::kOpen);
}

TEST_F(RecoveryTest, RecoveryClosesBreakerAndReCaches) {
  auto options = Options(/*cooldown_micros=*/500);
  runtime::QueryServer server(&sys_, options);
  auto truth = sys_.EvaluateOverStaging("q(a, b) :- R(a, b)");
  ASSERT_TRUE(truth.ok());
  auto warm = server.Query("q(a, b) :- R(a, b)");
  ASSERT_TRUE(warm.ok());
  const std::string primary = PrimaryStore(*warm);

  injector_.SetOutage(primary, true);
  auto during = server.Query("q(a, b) :- R(a, b)");
  ASSERT_TRUE(during.ok());
  EXPECT_EQ(Canon(during->rows), Canon(*truth));

  // The store comes back; after the cooldown the half-open probe admits it
  // and the first success closes the breaker.
  injector_.SetOutage(primary, false);
  std::this_thread::sleep_for(std::chrono::microseconds(2000));
  auto after = server.Query("q(a, b) :- R(a, b)");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_FALSE(after->degraded_to_staging);
  EXPECT_EQ(Canon(after->rows), Canon(*truth));
  EXPECT_TRUE(after->excluded_stores.empty());
  EXPECT_EQ(server.health().state(primary), runtime::BreakerState::kClosed);

  // Caching resumed under the settled health epoch: one re-plan, then hits.
  uint64_t hits_before = server.metrics().cache_hits;
  ASSERT_TRUE(server.Query("q(a, b) :- R(a, b)").ok());
  ASSERT_TRUE(server.Query("q(a, b) :- R(a, b)").ok());
  EXPECT_GT(server.metrics().cache_hits, hits_before);
}

}  // namespace
}  // namespace estocada
