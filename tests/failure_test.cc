/// Failure-injection tests: errors raised deep inside delegated store
/// calls or engine operators must propagate as Status values — never
/// crash, never silently truncate results.

#include <gtest/gtest.h>

#include "engine/operator.h"
#include "estocada/estocada.h"

namespace estocada {
namespace {

using engine::CallbackScanOperator;
using engine::Operator;
using engine::OperatorPtr;
using engine::Row;
using engine::Value;

/// An operator that yields `good` rows and then fails.
class FailAfterOperator final : public Operator {
 public:
  FailAfterOperator(size_t good, Status error)
      : good_(good), error_(std::move(error)) {}
  Status Open() override {
    produced_ = 0;
    return Status::OK();
  }
  Result<std::optional<Row>> Next() override {
    if (produced_ >= good_) return error_;
    ++produced_;
    return std::optional<Row>({Value::Int(static_cast<int64_t>(produced_))});
  }
  std::vector<std::string> columns() const override { return {"x"}; }
  std::string label() const override { return "FailAfter"; }

 private:
  size_t good_;
  Status error_;
  size_t produced_ = 0;
};

/// An operator whose Open fails.
class FailOpenOperator final : public Operator {
 public:
  Status Open() override { return Status::Unsupported("cannot open"); }
  Result<std::optional<Row>> Next() override {
    return Status::Internal("Next after failed Open");
  }
  std::vector<std::string> columns() const override { return {"x"}; }
  std::string label() const override { return "FailOpen"; }
};

TEST(FailureInjectionTest, MidStreamErrorPropagatesThroughFilter) {
  auto src = std::make_unique<FailAfterOperator>(
      3, Status::Internal("disk on fire"));
  engine::FilterOperator op(std::move(src),
                            engine::Expr::Const(Value::Bool(true)));
  auto rows = Collect(&op);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInternal);
  EXPECT_NE(rows.status().message().find("disk on fire"),
            std::string::npos);
}

TEST(FailureInjectionTest, MidStreamErrorPropagatesThroughHashJoinBuild) {
  // The failing operator sits on the BUILD side: Open() must fail.
  auto left = std::make_unique<FailAfterOperator>(
      2, Status::Unsupported("connection reset"));
  auto right = std::make_unique<engine::RowsOperator>(
      std::vector<std::string>{"x"}, std::vector<Row>{{Value::Int(1)}});
  engine::HashJoinOperator join(std::move(left), std::move(right),
                                {{0, 0}});
  EXPECT_EQ(join.Open().code(), StatusCode::kUnsupported);
}

TEST(FailureInjectionTest, MidStreamErrorPropagatesThroughHashJoinProbe) {
  auto left = std::make_unique<engine::RowsOperator>(
      std::vector<std::string>{"x"}, std::vector<Row>{{Value::Int(1)}});
  auto right = std::make_unique<FailAfterOperator>(
      1, Status::Internal("probe side died"));
  engine::HashJoinOperator join(std::move(left), std::move(right),
                                {{0, 0}});
  auto rows = Collect(&join);
  EXPECT_EQ(rows.status().code(), StatusCode::kInternal);
}

TEST(FailureInjectionTest, OpenFailurePropagatesThroughPipelines) {
  OperatorPtr src = std::make_unique<FailOpenOperator>();
  src = std::make_unique<engine::SortOperator>(std::move(src),
                                               std::vector<size_t>{0});
  src = std::make_unique<engine::LimitOperator>(std::move(src), 10);
  EXPECT_EQ(src->Open().code(), StatusCode::kUnsupported);
}

TEST(FailureInjectionTest, AggregateSurfacesInputError) {
  auto src = std::make_unique<FailAfterOperator>(
      5, Status::Internal("late failure"));
  engine::AggregateOperator agg(std::move(src), {},
                                {{engine::AggFn::kCount, 0, "n"}});
  // Aggregate drains its input in Open.
  EXPECT_EQ(agg.Open().code(), StatusCode::kInternal);
}

TEST(FailureInjectionTest, BindJoinFetchFailureAfterSomeRows) {
  auto outer = std::make_unique<engine::RowsOperator>(
      std::vector<std::string>{"k"},
      std::vector<Row>{{Value::Int(1)}, {Value::Int(2)}, {Value::Int(3)}});
  int calls = 0;
  engine::BindJoinOperator bind(
      std::move(outer), {0}, {"v"},
      [&calls](const Row& binding) -> Result<std::vector<Row>> {
        if (++calls == 3) return Status::NotFound("kv store shard down");
        return std::vector<Row>{{binding[0]}};
      },
      "kv");
  auto rows = Collect(&bind);
  EXPECT_EQ(rows.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(calls, 3);
}

TEST(FailureInjectionTest, SystemSurfacesStoreFailureOnDroppedContainer) {
  // Simulate operational failure: a fragment's physical container
  // disappears behind ESTOCADA's back (store admin dropped the table).
  pivot::Schema schema;
  ASSERT_TRUE(schema.AddRelation("R", 2).ok());
  stores::RelationalStore pg;
  Estocada sys;
  ASSERT_TRUE(sys.RegisterSchema(schema).ok());
  ASSERT_TRUE(sys.RegisterStore({"pg", catalog::StoreKind::kRelational, &pg,
                                 nullptr, nullptr, nullptr, nullptr})
                  .ok());
  ASSERT_TRUE(sys.LoadRow("R", {Value::Int(1), Value::Int(2)}).ok());
  ASSERT_TRUE(sys.DefineFragment("F(a, b) :- R(a, b)", "pg").ok());
  ASSERT_TRUE(pg.DropTable("F").ok());  // Out-of-band destruction.
  auto r = sys.Query("q(a, b) :- R(a, b)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_NE(r.status().message().find("'F'"), std::string::npos);
}

TEST(FailureInjectionTest, CorruptKvPayloadReportedNotCrashed) {
  pivot::Schema schema;
  ASSERT_TRUE(schema.AddRelation("R", 2).ok());
  stores::KeyValueStore kv;
  Estocada sys;
  ASSERT_TRUE(sys.RegisterSchema(schema).ok());
  ASSERT_TRUE(sys.RegisterStore({"kv", catalog::StoreKind::kKeyValue,
                                 nullptr, &kv, nullptr, nullptr, nullptr})
                  .ok());
  ASSERT_TRUE(sys.LoadRow("R", {Value::Int(1), Value::Int(2)}).ok());
  ASSERT_TRUE(sys.DefineFragment("K(a, b) :- R(a, b)", "kv",
                                 {pivot::Adornment::kInput,
                                  pivot::Adornment::kFree})
                  .ok());
  // Out-of-band corruption of the stored payload.
  ASSERT_TRUE(kv.Put("K", "1", "this is not json").ok());
  auto r = sys.Query("q(b) :- R($a, b)", {{"$a", Value::Int(1)}});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace estocada
