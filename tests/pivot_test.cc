#include <gtest/gtest.h>

#include "pivot/atom.h"
#include "pivot/dependency.h"
#include "pivot/parser.h"
#include "pivot/query.h"
#include "pivot/schema.h"
#include "pivot/term.h"

namespace estocada::pivot {
namespace {

TEST(TermTest, KindsAndAccessors) {
  Term v = Term::Var("x");
  Term c = Term::Str("paris");
  Term n = Term::Null(7);
  EXPECT_TRUE(v.is_variable());
  EXPECT_TRUE(c.is_constant());
  EXPECT_TRUE(n.is_labelled_null());
  EXPECT_TRUE(c.is_ground());
  EXPECT_TRUE(n.is_ground());
  EXPECT_FALSE(v.is_ground());
  EXPECT_EQ(v.var_name(), "x");
  EXPECT_EQ(c.constant().string_value(), "paris");
  EXPECT_EQ(n.null_id(), 7u);
}

TEST(TermTest, ToStringForms) {
  EXPECT_EQ(Term::Var("x").ToString(), "x");
  EXPECT_EQ(Term::Str("a").ToString(), "'a'");
  EXPECT_EQ(Term::Int(5).ToString(), "5");
  EXPECT_EQ(Term::Null(3).ToString(), "_N3");
  EXPECT_EQ(Term::Const(Constant::Bool(true)).ToString(), "true");
  EXPECT_EQ(Term::Const(Constant::Null()).ToString(), "null");
  EXPECT_EQ(Term::Const(Constant::Real(2.5)).ToString(), "2.5");
}

TEST(TermTest, EqualityAndHash) {
  EXPECT_EQ(Term::Var("x"), Term::Var("x"));
  EXPECT_NE(Term::Var("x"), Term::Var("y"));
  EXPECT_NE(Term::Var("x"), Term::Str("x"));
  EXPECT_EQ(Term::Null(1), Term::Null(1));
  EXPECT_NE(Term::Null(1), Term::Null(2));
  EXPECT_EQ(Term::Var("x").Hash(), Term::Var("x").Hash());
  EXPECT_NE(Term::Int(1).Hash(), Term::Int(2).Hash());
}

TEST(ConstantTest, TypedDistinctions) {
  EXPECT_NE(Constant::Int(1), Constant::Real(1.0));
  EXPECT_NE(Constant::Str("1"), Constant::Int(1));
  EXPECT_EQ(Constant::Null(), Constant::Null());
  EXPECT_TRUE(Constant::Null() < Constant::Bool(false));
}

TEST(AtomTest, ToStringAndVariables) {
  Atom a("R", {Term::Var("x"), Term::Str("p"), Term::Var("y")});
  EXPECT_EQ(a.ToString(), "R(x, 'p', y)");
  Atom b("S", {Term::Var("y"), Term::Var("z")});
  auto vars = CollectVariables({a, b});
  EXPECT_EQ(vars, (std::vector<std::string>{"x", "y", "z"}));
  EXPECT_TRUE(ContainsVariable({a}, "x"));
  EXPECT_FALSE(ContainsVariable({a}, "z"));
}

TEST(QueryTest, ParseSimple) {
  auto q = ParseQuery("q(x, y) :- R(x, z), S(z, y)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->name, "q");
  EXPECT_EQ(q->arity(), 2u);
  ASSERT_EQ(q->body.size(), 2u);
  EXPECT_EQ(q->body[0].relation, "R");
  EXPECT_EQ(q->ToString(), "q(x, y) :- R(x, z), S(z, y)");
}

TEST(QueryTest, ParseConstants) {
  auto q = ParseQuery("q(x) :- T(x, 'paris', 42, 2.5, true, null)");
  ASSERT_TRUE(q.ok()) << q.status();
  const auto& terms = q->body[0].terms;
  ASSERT_EQ(terms.size(), 6u);
  EXPECT_TRUE(terms[0].is_variable());
  EXPECT_EQ(terms[1].constant().string_value(), "paris");
  EXPECT_EQ(terms[2].constant().int_value(), 42);
  EXPECT_DOUBLE_EQ(terms[3].constant().real_value(), 2.5);
  EXPECT_TRUE(terms[4].constant().bool_value());
  EXPECT_TRUE(terms[5].constant().is_null());
}

TEST(QueryTest, ParseRejectsUnsafe) {
  auto q = ParseQuery("q(x, w) :- R(x, y)");
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseQuery("q(x)").ok());
  EXPECT_FALSE(ParseQuery("q(x) :- ").ok());
  EXPECT_FALSE(ParseQuery("q(x) :- R(x) extra").ok());
  EXPECT_FALSE(ParseQuery(":- R(x)").ok());
  for (auto bad : {"q(x)", "q(x) :-"}) {
    EXPECT_EQ(ParseQuery(bad).status().code(), StatusCode::kParseError);
  }
}

TEST(QueryTest, SubstitutionApplication) {
  Substitution sub{{"x", Term::Int(1)}, {"z", Term::Null(4)}};
  Atom a("R", {Term::Var("x"), Term::Var("y"), Term::Var("z")});
  Atom out = ApplySubstitution(sub, a);
  EXPECT_EQ(out.ToString(), "R(1, y, _N4)");
}

TEST(QueryTest, FreezeBodyNumbersVariablesInOrder) {
  auto q = ParseQuery("q(x) :- R(x, y), S(y, x)");
  ASSERT_TRUE(q.ok());
  FrozenBody fb = FreezeBody(*q, 10);
  EXPECT_EQ(fb.atoms[0].ToString(), "R(_N10, _N11)");
  EXPECT_EQ(fb.atoms[1].ToString(), "S(_N11, _N10)");
  EXPECT_EQ(fb.freeze.at("x"), Term::Null(10));
}

TEST(QueryTest, RenameVariablesIsConsistent) {
  auto q = ParseQuery("q(x) :- R(x, y), S(y, 'c')");
  ASSERT_TRUE(q.ok());
  ConjunctiveQuery r = q->RenameVariables("v_");
  EXPECT_EQ(r.ToString(), "q(v_x) :- R(v_x, v_y), S(v_y, 'c')");
}

TEST(DependencyTest, ParseTgdWithExistential) {
  auto d = ParseDependency("R(x, y) -> S(x, w), T(w, y)", "d1");
  ASSERT_TRUE(d.ok()) << d.status();
  ASSERT_TRUE(d->is_tgd());
  EXPECT_EQ(d->label(), "d1");
  EXPECT_EQ(d->tgd.ExistentialVariables(),
            (std::vector<std::string>{"w"}));
  auto frontier = d->tgd.FrontierVariables();
  EXPECT_EQ(frontier, (std::vector<std::string>{"x", "y"}));
}

TEST(DependencyTest, ParseEgd) {
  auto d = ParseDependency("R(x, y), R(x, z) -> y = z", "key");
  ASSERT_TRUE(d.ok()) << d.status();
  ASSERT_TRUE(d->is_egd());
  EXPECT_EQ(d->egd.left, Term::Var("y"));
  EXPECT_EQ(d->egd.right, Term::Var("z"));
  EXPECT_EQ(d->egd.body.size(), 2u);
}

TEST(DependencyTest, ParseMultipleWithComments) {
  auto deps = ParseDependencies(R"(
    # transitivity-style axioms
    Child(p, c) -> Desc(p, c)
    Desc(a, b), Child(b, c) -> Desc(a, c)
    Child(p, c), Child(q, c) -> p = q
  )");
  ASSERT_TRUE(deps.ok()) << deps.status();
  ASSERT_EQ(deps->size(), 3u);
  EXPECT_TRUE((*deps)[0].is_tgd());
  EXPECT_TRUE((*deps)[2].is_egd());
}

TEST(DependencyTest, ToStringRoundTrips) {
  auto d = ParseDependency("R(x, y) -> S(y, w)");
  ASSERT_TRUE(d.ok());
  auto d2 = ParseDependency(d->ToString());
  ASSERT_TRUE(d2.ok()) << d->ToString();
  EXPECT_EQ(d2->ToString(), d->ToString());
}

TEST(WeakAcyclicityTest, AcyclicSetPasses) {
  auto deps = ParseDependencies(R"(
    Child(p, c) -> Desc(p, c)
    Desc(a, b), Child(b, c) -> Desc(a, c)
  )");
  ASSERT_TRUE(deps.ok());
  EXPECT_TRUE(IsWeaklyAcyclic(*deps));
}

TEST(WeakAcyclicityTest, ExistentialCycleFails) {
  // R(x,y) -> R(y,w): w existential feeding back into R positions — the
  // classic non-terminating chase example.
  auto deps = ParseDependencies("R(x, y) -> R(y, w)");
  ASSERT_TRUE(deps.ok());
  EXPECT_FALSE(IsWeaklyAcyclic(*deps));
}

TEST(WeakAcyclicityTest, FullTgdCycleIsFine) {
  // Cycles without existentials are weakly acyclic.
  auto deps = ParseDependencies(R"(
    R(x, y) -> S(y, x)
    S(x, y) -> R(y, x)
  )");
  ASSERT_TRUE(deps.ok());
  EXPECT_TRUE(IsWeaklyAcyclic(*deps));
}

TEST(SchemaTest, AddAndLookup) {
  Schema s;
  RelationSignature sig;
  sig.name = "KV";
  sig.columns = {"key", "value"};
  sig.adornments = {Adornment::kInput, Adornment::kFree};
  sig.key = {0};
  ASSERT_TRUE(s.AddRelation(sig).ok());
  ASSERT_TRUE(s.AddRelation("R", 3).ok());
  EXPECT_TRUE(s.HasRelation("KV"));
  EXPECT_FALSE(s.HasRelation("Nope"));
  auto got = s.GetRelation("KV");
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->HasAccessPattern());
  EXPECT_EQ(got->ToString(), "KV(key^in, value)");
  auto r = s.GetRelation("R");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->HasAccessPattern());
}

TEST(SchemaTest, ConflictingArityRejected) {
  Schema s;
  ASSERT_TRUE(s.AddRelation("R", 2).ok());
  EXPECT_TRUE(s.AddRelation("R", 2).ok());  // idempotent
  EXPECT_EQ(s.AddRelation("R", 3).code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, ValidateChecksDependencyArity) {
  Schema s;
  ASSERT_TRUE(s.AddRelation("R", 2).ok());
  auto d = ParseDependency("R(x, y, z) -> R(x, y, z)");
  ASSERT_TRUE(d.ok());
  s.AddDependency(*d);
  EXPECT_EQ(s.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, ValidateChecksUnknownRelation) {
  Schema s;
  auto d = ParseDependency("R(x, y) -> S(x, y)");
  ASSERT_TRUE(d.ok());
  s.AddDependency(*d);
  EXPECT_EQ(s.Validate().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, MergeCombines) {
  Schema a;
  ASSERT_TRUE(a.AddRelation("R", 2).ok());
  Schema b;
  ASSERT_TRUE(b.AddRelation("S", 1).ok());
  auto d = ParseDependency("S(x) -> S(x)");
  ASSERT_TRUE(d.ok());
  b.AddDependency(*d);
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_TRUE(a.HasRelation("S"));
  EXPECT_EQ(a.dependencies().size(), 1u);
  EXPECT_TRUE(a.Validate().ok());
}

TEST(ParserTest, AtomListStopsBeforeArrow) {
  auto atoms = ParseAtomList("R(x, y), S(y, z)");
  ASSERT_TRUE(atoms.ok());
  EXPECT_EQ(atoms->size(), 2u);
}

TEST(ParserTest, DollarIdentifiersAreVariables) {
  // '$'-prefixed identifiers denote runtime parameters; the parser treats
  // them as ordinary variables, feasibility treats them as pre-bound.
  auto q = ParseQuery("q(v) :- Cart($uid, v)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->body[0].terms[0], Term::Var("$uid"));
}

TEST(ParserTest, QuotedStringConstantsRoundTrip) {
  // Quotes and backslashes inside string literals must survive
  // ToString -> Parse (catalog checkpoints rely on this).
  ConjunctiveQuery q;
  q.name = "q";
  q.body = {Atom("R", {Term::Var("x"), Term::Str("it's \\ tricky")})};
  q.head = {Term::Var("x")};
  auto parsed = ParseQuery(q.ToString());
  ASSERT_TRUE(parsed.ok()) << q.ToString() << " -> " << parsed.status();
  EXPECT_EQ(parsed->body[0].terms[1].constant().string_value(),
            "it's \\ tricky");
  EXPECT_EQ(parsed->ToString(), q.ToString());
}

TEST(ParserTest, DottedNamesAllowed) {
  auto q = ParseQuery("q(x) :- users.orders(x, y)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->body[0].relation, "users.orders");
}

}  // namespace
}  // namespace estocada::pivot
