/// Tests of the Autopilot (src/tuner): autonomous convergence on a
/// lookup-heavy workload, refusal to act on an ambiguous mix, the
/// post-cutover regression check (revert + blacklist when the cost model
/// lies), guardrail bookkeeping, and daemon start/stop safety.

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "tuner/tuner.h"
#include "workload/marketplace.h"

namespace estocada::tuner {
namespace {

using engine::Value;
using migration::MigrationManager;
using runtime::QueryServer;

/// Marketplace deployment the Autopilot tunes. `Init` is explicit so a
/// test can deploy a key-value store whose real cost profile deviates
/// from the advisor's blueprint (the "cost model lies" scenario).
class TunerTest : public ::testing::Test {
 protected:
  void Init(stores::CostProfile kv_profile =
                advisor::CostModel::BlueprintProfile(
                    catalog::StoreKind::kKeyValue)) {
    kv_ = std::make_unique<stores::KeyValueStore>(kv_profile);
    workload::MarketplaceConfig cfg;
    cfg.seed = 13;
    cfg.num_users = 50;
    cfg.num_products = 20;
    cfg.num_orders = 200;
    cfg.num_visits = 300;
    auto data = workload::GenerateMarketplace(cfg);
    ASSERT_TRUE(data.ok()) << data.status();
    data_ = std::move(*data);

    ASSERT_TRUE(sys_.RegisterSchema(data_.schema).ok());
    ASSERT_TRUE(sys_.RegisterStore({"postgres", catalog::StoreKind::kRelational,
                                    &relational_, nullptr, nullptr, nullptr,
                                    nullptr})
                    .ok());
    ASSERT_TRUE(sys_.RegisterStore({"redis", catalog::StoreKind::kKeyValue,
                                    nullptr, kv_.get(), nullptr, nullptr,
                                    nullptr})
                    .ok());
    ASSERT_TRUE(sys_.RegisterStore({"mongo", catalog::StoreKind::kDocument,
                                    nullptr, nullptr, &doc_, nullptr, nullptr})
                    .ok());
    ASSERT_TRUE(sys_.RegisterStore({"spark", catalog::StoreKind::kParallel,
                                    nullptr, nullptr, nullptr, &parallel_,
                                    nullptr})
                    .ok());
    ASSERT_TRUE(sys_.LoadStaging(data_.staging).ok());

    ASSERT_TRUE(sys_.DefineFragment("F_users(u, n, c) :- mk.users(u, n, c)",
                                    "postgres", {}, {0})
                    .ok());
    ASSERT_TRUE(sys_.DefineFragment(
                        "F_orders(o, u, p, t) :- mk.orders(o, u, p, t)",
                        "postgres", {}, {1, 2})
                    .ok());
    // Carts live in the document store: correct, but slower than the KV
    // placement the advisor will recommend under lookup-heavy traffic.
    ASSERT_TRUE(sys_.DefineFragment("F_carts(u, c) :- mk.carts(u, c)",
                                    "mongo", {}, {0})
                    .ok());
    ASSERT_TRUE(sys_.DefineFragment("F_visits(u, p, d) :- mk.visits(u, p, d)",
                                    "spark", {}, {0, 1})
                    .ok());
    server_ = std::make_unique<QueryServer>(&sys_);
    manager_ = std::make_unique<MigrationManager>(server_.get());
  }

  /// Autopilot options sized for the small test deployment (document
  /// lookups cost ~12, below the advisor's default 30 threshold).
  static AutopilotOptions Options() {
    AutopilotOptions opt;
    opt.advisor.min_count = 4;
    opt.advisor.min_mean_cost = 5.0;
    opt.cooldown_ticks = 2;
    return opt;
  }

  double DriveCartLookups(int n) {
    double cost = 0;
    for (int i = 0; i < n; ++i) {
      auto r = server_->Query(workload::MarketplaceQueries::CartByUser(),
                              {{"$uid", Value::Int(i % 50)}});
      EXPECT_TRUE(r.ok()) << r.status();
      cost += r->simulated_cost();
    }
    return cost;
  }

  double DriveOrderVisitJoins(int n) {
    double cost = 0;
    for (int i = 0; i < n; ++i) {
      auto r = server_->Query(
          "q(o, p) :- mk.orders(o, $uid, p, t), mk.visits($uid, p, d)",
          {{"$uid", Value::Int(i % 50)}});
      EXPECT_TRUE(r.ok()) << r.status();
      cost += r->simulated_cost();
    }
    return cost;
  }

  /// Ticks until the Autopilot has harvested every launched migration.
  void DrainInFlight(Autopilot* pilot) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (pilot->in_flight() > 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      ASSERT_TRUE(pilot->TickOnce().ok());
    }
    ASSERT_EQ(pilot->in_flight(), 0u) << "migration never harvested";
  }

  workload::MarketplaceData data_;
  stores::RelationalStore relational_;
  std::unique_ptr<stores::KeyValueStore> kv_;
  stores::DocumentStore doc_;
  stores::ParallelStore parallel_{2};
  Estocada sys_;
  std::unique_ptr<QueryServer> server_;
  std::unique_ptr<MigrationManager> manager_;
};

TEST_F(TunerTest, ConvergesOnLookupHeavyWorkloadWithoutOperatorInput) {
  Init();
  Autopilot pilot(server_.get(), manager_.get(), Options());

  double before = DriveCartLookups(12) / 12.0;
  ASSERT_TRUE(pilot.TickOnce().ok());
  auto m = pilot.metrics();
  EXPECT_EQ(m.launches, 1u) << m.ToString();
  DrainInFlight(&pilot);

  m = pilot.metrics();
  EXPECT_EQ(m.completions, 1u) << m.ToString();
  EXPECT_EQ(m.regressions, 0u);
  EXPECT_EQ(m.blacklist_size, 0u);
  // The tuner-built fragment is live in the KV store...
  auto frag = sys_.catalog().GetFragment("F_auto_0");
  ASSERT_TRUE(frag.ok());
  EXPECT_EQ((*frag)->store_name, "redis");
  // ... and serving got cheaper while staying correct.
  auto truth = sys_.EvaluateOverStaging(
      workload::MarketplaceQueries::CartByUser(), {{"$uid", Value::Int(3)}});
  ASSERT_TRUE(truth.ok());
  auto served = server_->Query(workload::MarketplaceQueries::CartByUser(),
                               {{"$uid", Value::Int(3)}});
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(served->rows.size(), truth->size());
  double after = DriveCartLookups(12) / 12.0;
  EXPECT_LT(after, before);

  // Converged: the equivalent fragment now exists, so later ticks launch
  // nothing more.
  ASSERT_TRUE(pilot.TickOnce().ok());
  EXPECT_EQ(pilot.metrics().launches, 1u);

  // The decision log narrates the loop: a launch, then a completion.
  std::vector<std::string> actions;
  for (const Decision& d : pilot.decision_log()) actions.push_back(d.action);
  EXPECT_NE(std::find(actions.begin(), actions.end(), "launch"),
            actions.end());
  EXPECT_NE(std::find(actions.begin(), actions.end(), "complete"),
            actions.end());
}

TEST_F(TunerTest, AmbiguousMixedWorkloadLaunchesNothing) {
  Init();
  Autopilot pilot(server_.get(), manager_.get(), Options());

  // Balance the *cost shares*: measure one of each shape, then issue
  // counts that put both families near 50% — below the 60% dominance
  // threshold.
  double lookup_unit = DriveCartLookups(1);
  double join_unit = DriveOrderVisitJoins(1);
  int joins = 8;
  int lookups = std::max(
      4, static_cast<int>(joins * join_unit / lookup_unit + 0.5));
  DriveCartLookups(lookups);
  DriveOrderVisitJoins(joins - 1);

  auto pattern = server_->ClassifyWorkload(Options().advisor);
  ASSERT_EQ(pattern.pattern, advisor::WorkloadPattern::kMixed)
      << pattern.ToString();
  ASSERT_TRUE(pilot.TickOnce().ok());
  auto m = pilot.metrics();
  EXPECT_EQ(m.launches, 0u) << m.ToString();
  EXPECT_GE(m.skipped_ambiguous, 1u);
  EXPECT_EQ(pilot.in_flight(), 0u);
}

TEST_F(TunerTest, LyingCostModelTriggersRevertAndBlacklist) {
  // The deployed KV store is ~40x more expensive than the blueprint the
  // predictions price against: the launch looks great on paper and
  // regresses in reality.
  Init(stores::CostProfile{/*per_operation=*/500.0, /*per_row_scanned=*/0.02,
                           /*per_index_lookup=*/0.3,
                           /*per_row_returned=*/0.05});
  Autopilot pilot(server_.get(), manager_.get(), Options());

  DriveCartLookups(12);
  ASSERT_TRUE(pilot.TickOnce().ok());
  ASSERT_EQ(pilot.metrics().launches, 1u);
  DrainInFlight(&pilot);

  auto m = pilot.metrics();
  EXPECT_EQ(m.regressions, 1u) << m.ToString();
  EXPECT_EQ(m.reverts, 1u);
  EXPECT_EQ(m.completions, 0u);
  EXPECT_EQ(m.blacklist_size, 1u);
  ASSERT_EQ(pilot.blacklist().size(), 1u);
  // The regressed fragment was dropped again; the original placement
  // still serves, correctly.
  EXPECT_FALSE(sys_.catalog().GetFragment("F_auto_0").ok());
  ASSERT_TRUE(sys_.catalog().GetFragment("F_carts").ok());
  auto truth = sys_.EvaluateOverStaging(
      workload::MarketplaceQueries::CartByUser(), {{"$uid", Value::Int(5)}});
  ASSERT_TRUE(truth.ok());
  auto served = server_->Query(workload::MarketplaceQueries::CartByUser(),
                               {{"$uid", Value::Int(5)}});
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(served->rows.size(), truth->size());

  // Blacklisted: the same shape can never relaunch.
  DriveCartLookups(8);
  ASSERT_TRUE(pilot.TickOnce().ok());
  m = pilot.metrics();
  EXPECT_EQ(m.launches, 1u);
  EXPECT_GE(m.skipped_blacklist, 1u);
}

TEST_F(TunerTest, InsufficientEvidenceIsAQuietNoOp) {
  Init();
  Autopilot pilot(server_.get(), manager_.get(), Options());
  ASSERT_TRUE(pilot.TickOnce().ok());
  auto m = pilot.metrics();
  EXPECT_EQ(m.ticks, 1u);
  EXPECT_EQ(m.evaluations, 0u);
  EXPECT_EQ(m.launches, 0u);
  EXPECT_TRUE(pilot.decision_log().empty());
}

TEST_F(TunerTest, DaemonStartStopIsSafeAndTicks) {
  Init();
  AutopilotOptions opt = Options();
  opt.tick_period_micros = 2000;
  Autopilot pilot(server_.get(), manager_.get(), opt);
  pilot.Start();
  pilot.Start();  // Idempotent.
  EXPECT_TRUE(pilot.running());
  DriveCartLookups(12);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (pilot.metrics().completions == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  pilot.Stop();
  EXPECT_FALSE(pilot.running());
  auto m = pilot.metrics();
  EXPECT_GE(m.ticks, 1u);
  // The daemon found and executed the same convergence the manual-tick
  // test drives explicitly.
  EXPECT_EQ(m.launches, 1u) << m.ToString();
  EXPECT_EQ(m.completions, 1u) << m.ToString();
  pilot.Stop();  // Idempotent.
}

}  // namespace
}  // namespace estocada::tuner
