/// Pinned fuzzer seeds. Every seed here once produced a differential
/// mismatch (see TESTING.md for the replay workflow); the bugs are fixed,
/// and these replays keep them fixed. When the fuzzer finds a new
/// mismatch, fix the bug and append the seed.
///
/// The original findings, all in the provenance-aware PACB backchase
/// (src/pacb/rewriter.cc + src/chase), surfaced as `naive-vs-pacb`
/// mismatches — the naive chase & backchase found equivalence-preserving
/// rewritings the provenance path missed:
///
///  * seed 105 — an EGD merge AND-ed its conditioning into an atom whose
///    match did not rely on the equality (the merged position mapped to a
///    don't-care variable); DNF absorption then erased the only support
///    of a projection-fragment rewriting. Fixed by ghost forms + the
///    optimistic candidate pass (verified by the chase) in the rewriter.
///  * seed 149 — two EGD triggers derived the same equality from
///    different atom pairs; only the first derivation conditioned the
///    merge and the alternative support was lost. Fixed by grouping
///    same-equality triggers per round and OR-ing their provenance.
///  * seed 1360 — the semi-oblivious TGD refire OR-ed an *unconditioned*
///    trigger base into a merged atom's current form, creating a bogus
///    small disjunct that absorbed the genuine pre-merge-form support.
///    Fixed by conditioning the refreshed base on the produced atom's
///    merge conditioning.
///
/// The remaining seeds are further instances of the same three classes
/// from the original 3000-scenario hunt.
///
/// Family (h) `partition-invariance` findings, both in the scatter-gather
/// execution path (src/rewriting/translator.cc + src/engine/operator.cc):
///
///  * seed 1 (and every partitioned seed) — the translator's fused
///    single-store SPJ fast path matched a scatter atom by store kind and
///    compiled the whole read against shard 0's container, silently
///    dropping every other shard's rows. Fixed by excluding scatter atoms
///    from the fused branch.
///  * seed 7 (4-shard layouts and up) — ScatterGatherOperator reported
///    only the *first* dead shard's store per attempt, so the serving
///    ladder re-discovered N dead stores one retry at a time and ran out
///    of attempts before the re-route rung could exclude them all. Fixed
///    by aggregating every failing shard into one status naming each
///    store. Seed 20 pins the same fix on an 8-shard layout.

#include <gtest/gtest.h>

#include <cstdint>

#include "testing/differential.h"

namespace estocada::testing {
namespace {

class RegressionSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RegressionSeeds, Replay) {
  SeedReport rep = RunSeed(GetParam());
  EXPECT_TRUE(rep.outcome.ok()) << rep.report;
  // The pinned scenarios exercise the rewriting path, not just setup.
  EXPECT_GT(rep.outcome.queries_checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(PacbProvenanceCompleteness, RegressionSeeds,
                         ::testing::Values<uint64_t>(105, 149, 323, 816, 932,
                                                     1360, 1507, 1762, 2270,
                                                     2661, 3050));

INSTANTIATE_TEST_SUITE_P(PartitionInvariance, RegressionSeeds,
                         ::testing::Values<uint64_t>(1, 7, 20));

}  // namespace
}  // namespace estocada::testing
