#include "encoding/encodings.h"

#include <gtest/gtest.h>

#include <map>

#include "chase/chase.h"
#include "chase/homomorphism.h"
#include "chase/instance.h"
#include "pivot/dependency.h"
#include "pivot/parser.h"

namespace estocada::encoding {
namespace {

using chase::Instance;
using pivot::Adornment;

TEST(RelationalEncodingTest, RelationAndKeyEgds) {
  auto s = RelationalEncoding("mk", "users", {"uid", "name", "city"}, {"uid"});
  ASSERT_TRUE(s.ok()) << s.status();
  ASSERT_TRUE(s->HasRelation("mk.users"));
  auto sig = s->GetRelation("mk.users");
  EXPECT_EQ(sig->key, (std::vector<size_t>{0}));
  // Two non-key columns -> two key EGDs.
  EXPECT_EQ(s->dependencies().size(), 2u);
  EXPECT_TRUE(s->Validate().ok());
  EXPECT_TRUE(pivot::IsWeaklyAcyclic(s->dependencies()));
}

TEST(RelationalEncodingTest, BadPrimaryKeyRejected) {
  auto s = RelationalEncoding("mk", "users", {"uid"}, {"nope"});
  EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
}

TEST(RelationalEncodingTest, KeyEgdFiresInChase) {
  auto s = RelationalEncoding("mk", "users", {"uid", "city"}, {"uid"});
  ASSERT_TRUE(s.ok());
  Instance inst;
  ASSERT_TRUE(inst.InsertAll(*pivot::ParseAtomList(
                                 "mk.users(1, 'paris'), mk.users(1, 'lyon')"))
                  .ok());
  EXPECT_EQ(RunChase(s->dependencies(), &inst).code(),
            StatusCode::kChaseFailure);  // Key violation detected.
}

TEST(KeyValueEncodingTest, InputAdornedKey) {
  auto s = KeyValueEncoding("mk", "carts");
  ASSERT_TRUE(s.ok());
  auto sig = s->GetRelation("mk.carts");
  ASSERT_TRUE(sig.ok());
  EXPECT_EQ(sig->adornments[0], Adornment::kInput);
  EXPECT_EQ(sig->adornments[1], Adornment::kFree);
  EXPECT_TRUE(sig->HasAccessPattern());
  EXPECT_EQ(s->dependencies().size(), 1u);  // Key EGD.
}

TEST(DocumentEncodingTest, PathRelationsAndConstraints) {
  auto s = DocumentEncoding("mk", "products",
                            {{"name", true}, {"tags", false}});
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->HasRelation("mk.products.doc"));
  EXPECT_TRUE(s->HasRelation("mk.products.name"));
  EXPECT_TRUE(s->HasRelation("mk.products.tags"));
  // name: scalar EGD + doc TGD; tags: doc TGD only.
  size_t egds = 0, tgds = 0;
  for (const auto& d : s->dependencies()) {
    d.is_egd() ? ++egds : ++tgds;
  }
  EXPECT_EQ(egds, 1u);
  EXPECT_EQ(tgds, 2u);
  EXPECT_TRUE(s->Validate().ok());
}

TEST(DocumentTreeEncodingTest, AxiomsAreWeaklyAcyclicAndValid) {
  auto s = DocumentTreeEncoding("cat");
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_TRUE(s->HasRelation("cat.Child"));
  EXPECT_TRUE(s->HasRelation("cat.Desc"));
  EXPECT_TRUE(s->Validate().ok());
  EXPECT_TRUE(pivot::IsWeaklyAcyclic(s->dependencies()));
}

TEST(DocumentTreeEncodingTest, ShredAndChaseDerivesDescendants) {
  auto schema = DocumentTreeEncoding("cat");
  ASSERT_TRUE(schema.ok());
  auto doc = json::Parse(R"({"book":{"title":"Foundation","tags":["sf","classic"]}})");
  ASSERT_TRUE(doc.ok());
  std::vector<pivot::Atom> atoms = ShredDocument("cat", "d1", *doc);
  Instance inst;
  ASSERT_TRUE(inst.InsertAll(atoms).ok());
  ASSERT_TRUE(RunChase(schema->dependencies(), &inst).ok());
  // The title node is a descendant of the root.
  auto q = pivot::ParseAtomList(
      "cat.Root('d1', r), cat.Desc(r, n), cat.Tag(n, 'title'), "
      "cat.Val(n, v)");
  ASSERT_TRUE(q.ok());
  auto matches = chase::FindHomomorphisms(*q, inst);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].sub.at("v"), pivot::Term::Str("Foundation"));
}

TEST(DocumentTreeEncodingTest, ShredEmitsArrayElems) {
  auto doc = json::Parse(R"([10, 20])");
  ASSERT_TRUE(doc.ok());
  std::vector<pivot::Atom> atoms = ShredDocument("cat", "d2", *doc);
  size_t array_elems = 0;
  for (const auto& a : atoms) {
    if (a.relation == "cat.ArrayElem") ++array_elems;
  }
  EXPECT_EQ(array_elems, 2u);
}

TEST(DocumentTreeEncodingTest, OneParentAxiomMergesDuplicateParents) {
  auto schema = DocumentTreeEncoding("cat");
  ASSERT_TRUE(schema.ok());
  Instance inst;
  // Two labelled-null parents of the same child must be equated.
  pivot::Atom a("cat.Child", {pivot::Term::Null(0), pivot::Term::Str("c")});
  pivot::Atom b("cat.Child", {pivot::Term::Null(1), pivot::Term::Str("c")});
  inst.Insert(a);
  inst.Insert(b);
  ASSERT_TRUE(RunChase(schema->dependencies(), &inst).ok());
  EXPECT_EQ(inst.Canonical(pivot::Term::Null(1)), pivot::Term::Null(0));
}

TEST(DocumentTreeEncodingTest, ShredEmptyDocument) {
  auto doc = json::Parse("{}");
  ASSERT_TRUE(doc.ok());
  std::vector<pivot::Atom> atoms = ShredDocument("cat", "d3", *doc);
  // Nothing below the root: just the Doc fact and its root node.
  ASSERT_EQ(atoms.size(), 2u);
  EXPECT_EQ(atoms[0].relation, "cat.Doc");
  EXPECT_EQ(atoms[1].relation, "cat.Root");
}

TEST(DocumentTreeEncodingTest, ShredEmptyArrayEmitsNoElems) {
  auto doc = json::Parse(R"({"tags": [], "ids": []})");
  ASSERT_TRUE(doc.ok());
  std::vector<pivot::Atom> atoms = ShredDocument("cat", "d4", *doc);
  size_t children = 0;
  for (const auto& a : atoms) {
    EXPECT_NE(a.relation, "cat.ArrayElem") << "empty array shred an element";
    EXPECT_NE(a.relation, "cat.Val") << "empty array is not a scalar";
    if (a.relation == "cat.Child") ++children;
  }
  EXPECT_EQ(children, 2u);  // The two (empty) array nodes themselves.
}

TEST(DocumentTreeEncodingTest, ShredDeepNestingSurvivesChase) {
  // 20 nested objects — past any "reasonable" depth a shredder might
  // hard-code; the chase must still derive root-to-leaf descendancy.
  constexpr int kDepth = 20;
  std::string text = "'deep'";
  text[0] = '"';
  text[text.size() - 1] = '"';
  for (int i = 0; i < kDepth; ++i) text = R"({"k": )" + text + "}";
  auto doc = json::Parse(text);
  ASSERT_TRUE(doc.ok()) << doc.status();
  std::vector<pivot::Atom> atoms = ShredDocument("cat", "d5", *doc);
  size_t children = 0;
  for (const auto& a : atoms) {
    if (a.relation == "cat.Child") ++children;
  }
  EXPECT_EQ(children, static_cast<size_t>(kDepth));
  auto schema = DocumentTreeEncoding("cat");
  ASSERT_TRUE(schema.ok());
  Instance inst;
  ASSERT_TRUE(inst.InsertAll(atoms).ok());
  ASSERT_TRUE(RunChase(schema->dependencies(), &inst).ok());
  auto q = pivot::ParseAtomList(
      "cat.Root('d5', r), cat.Desc(r, n), cat.Val(n, 'deep')");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(chase::FindHomomorphisms(*q, inst).size(), 1u);
}

TEST(DocumentTreeEncodingTest, ShredDuplicateKeysLastWins) {
  // JSON objects are key-maps: a repeated key overwrites, so the shred
  // sees exactly one child for it, holding the last value.
  auto doc = json::Parse(R"({"k": 1, "k": 2})");
  ASSERT_TRUE(doc.ok());
  std::vector<pivot::Atom> atoms = ShredDocument("cat", "d6", *doc);
  size_t children = 0;
  bool saw_last = false;
  for (const auto& a : atoms) {
    if (a.relation == "cat.Child") ++children;
    if (a.relation == "cat.Val" && a.terms[1] == pivot::Term::Int(2)) {
      saw_last = true;
    }
    ASSERT_FALSE(a.relation == "cat.Val" &&
                 a.terms[1] == pivot::Term::Int(1))
        << "shadowed first value leaked into the shred";
  }
  EXPECT_EQ(children, 1u);
  EXPECT_TRUE(saw_last);
}

TEST(NestedEncodingTest, RelationWithKey) {
  auto s = NestedEncoding("mk", "carts", {"uid", "cart"}, {"uid"});
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->HasRelation("mk.carts"));
  EXPECT_EQ(s->dependencies().size(), 1u);
}

TEST(TextEncodingTest, TermIsInput) {
  auto s = TextEncoding("mk", "catalogtext");
  ASSERT_TRUE(s.ok());
  auto sig = s->GetRelation("mk.catalogtext.contains");
  ASSERT_TRUE(sig.ok());
  EXPECT_EQ(sig->adornments[1], Adornment::kInput);
}

TEST(GraphEncodingTest, RelationsAxiomsAndKeys) {
  auto s = GraphEncoding("soc", 3);
  ASSERT_TRUE(s.ok()) << s.status();
  for (const char* r : {"soc.Node", "soc.Edge", "soc.NodeProp",
                        "soc.EdgeProp", "soc.Reach1", "soc.Reach2",
                        "soc.Reach3"}) {
    EXPECT_TRUE(s->HasRelation(r)) << r;
  }
  EXPECT_FALSE(s->HasRelation("soc.Reach4"));
  EXPECT_EQ(s->GetRelation("soc.Edge")->arity(), 3u);
  EXPECT_EQ(s->GetRelation("soc.EdgeProp")->arity(), 5u);
  EXPECT_EQ(s->GetRelation("soc.Reach2")->arity(), 2u);
  EXPECT_TRUE(s->Validate().ok());
  // The hop bound stratifies reachability: no existential cycles.
  EXPECT_TRUE(pivot::IsWeaklyAcyclic(s->dependencies()));
  // Axioms: 1 edge->Reach1 + 2 per extra hop; EGDs: Node label +
  // NodeProp value + EdgeProp value.
  size_t egds = 0, tgds = 0;
  for (const auto& d : s->dependencies()) {
    d.is_egd() ? ++egds : ++tgds;
  }
  EXPECT_EQ(tgds, 5u);
  EXPECT_EQ(egds, 3u);
}

TEST(GraphEncodingTest, ZeroHopBoundRejected) {
  EXPECT_EQ(GraphEncoding("soc", 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GraphEncodingTest, ChaseDerivesBoundedReachability) {
  auto s = GraphEncoding("g", 2);
  ASSERT_TRUE(s.ok());
  GraphData data;
  data.nodes = {{"a", "N", {}}, {"b", "N", {}}, {"c", "N", {}},
                {"d", "N", {}}};
  data.edges = {{"a", "e", "b", {}}, {"b", "e", "c", {}},
                {"c", "e", "d", {}}};
  Instance inst;
  ASSERT_TRUE(inst.InsertAll(ShredGraph("g", data)).ok());
  ASSERT_TRUE(RunChase(s->dependencies(), &inst).ok());
  auto count = [&inst](const std::string& atom) {
    auto q = pivot::ParseAtomList(atom);
    EXPECT_TRUE(q.ok()) << atom;
    return chase::FindHomomorphisms(*q, inst).size();
  };
  // Reach1 = edges; Reach2 adds the 2-hop pairs and keeps the 1-hop
  // ones (containment axiom); the bound cuts off the 3-hop pair.
  EXPECT_EQ(count("g.Reach1('a', 'b')"), 1u);
  EXPECT_EQ(count("g.Reach2('a', 'b')"), 1u);
  EXPECT_EQ(count("g.Reach2('a', 'c')"), 1u);
  EXPECT_EQ(count("g.Reach2('a', 'd')"), 0u);
  EXPECT_EQ(count("g.Reach1('a', 'c')"), 0u);
}

TEST(GraphEncodingTest, NodeLabelKeyEgdDetectsViolation) {
  auto s = GraphEncoding("g", 1);
  ASSERT_TRUE(s.ok());
  Instance inst;
  ASSERT_TRUE(inst.InsertAll(*pivot::ParseAtomList(
                                 "g.Node('n', 'User'), g.Node('n', 'Item')"))
                  .ok());
  EXPECT_EQ(RunChase(s->dependencies(), &inst).code(),
            StatusCode::kChaseFailure);
}

TEST(GraphEncodingTest, ShredGraphEmitsAllAtomKinds) {
  GraphData data;
  data.nodes = {{"a", "User", {{"name", pivot::Constant::Str("Ann")}}},
                {"b", "User", {}}};
  data.edges = {{"a",
                 "follows",
                 "b",
                 {{"since", pivot::Constant::Int(2021)}}}};
  std::vector<pivot::Atom> atoms = ShredGraph("soc", data);
  std::map<std::string, size_t> by_rel;
  for (const auto& a : atoms) ++by_rel[a.relation];
  EXPECT_EQ(by_rel["soc.Node"], 2u);
  EXPECT_EQ(by_rel["soc.NodeProp"], 1u);
  EXPECT_EQ(by_rel["soc.Edge"], 1u);
  EXPECT_EQ(by_rel["soc.EdgeProp"], 1u);
  EXPECT_EQ(atoms.size(), 5u);
}

}  // namespace
}  // namespace estocada::encoding
