#include "encoding/encodings.h"

#include <gtest/gtest.h>

#include "chase/chase.h"
#include "chase/homomorphism.h"
#include "chase/instance.h"
#include "pivot/dependency.h"
#include "pivot/parser.h"

namespace estocada::encoding {
namespace {

using chase::Instance;
using pivot::Adornment;

TEST(RelationalEncodingTest, RelationAndKeyEgds) {
  auto s = RelationalEncoding("mk", "users", {"uid", "name", "city"}, {"uid"});
  ASSERT_TRUE(s.ok()) << s.status();
  ASSERT_TRUE(s->HasRelation("mk.users"));
  auto sig = s->GetRelation("mk.users");
  EXPECT_EQ(sig->key, (std::vector<size_t>{0}));
  // Two non-key columns -> two key EGDs.
  EXPECT_EQ(s->dependencies().size(), 2u);
  EXPECT_TRUE(s->Validate().ok());
  EXPECT_TRUE(pivot::IsWeaklyAcyclic(s->dependencies()));
}

TEST(RelationalEncodingTest, BadPrimaryKeyRejected) {
  auto s = RelationalEncoding("mk", "users", {"uid"}, {"nope"});
  EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
}

TEST(RelationalEncodingTest, KeyEgdFiresInChase) {
  auto s = RelationalEncoding("mk", "users", {"uid", "city"}, {"uid"});
  ASSERT_TRUE(s.ok());
  Instance inst;
  ASSERT_TRUE(inst.InsertAll(*pivot::ParseAtomList(
                                 "mk.users(1, 'paris'), mk.users(1, 'lyon')"))
                  .ok());
  EXPECT_EQ(RunChase(s->dependencies(), &inst).code(),
            StatusCode::kChaseFailure);  // Key violation detected.
}

TEST(KeyValueEncodingTest, InputAdornedKey) {
  auto s = KeyValueEncoding("mk", "carts");
  ASSERT_TRUE(s.ok());
  auto sig = s->GetRelation("mk.carts");
  ASSERT_TRUE(sig.ok());
  EXPECT_EQ(sig->adornments[0], Adornment::kInput);
  EXPECT_EQ(sig->adornments[1], Adornment::kFree);
  EXPECT_TRUE(sig->HasAccessPattern());
  EXPECT_EQ(s->dependencies().size(), 1u);  // Key EGD.
}

TEST(DocumentEncodingTest, PathRelationsAndConstraints) {
  auto s = DocumentEncoding("mk", "products",
                            {{"name", true}, {"tags", false}});
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->HasRelation("mk.products.doc"));
  EXPECT_TRUE(s->HasRelation("mk.products.name"));
  EXPECT_TRUE(s->HasRelation("mk.products.tags"));
  // name: scalar EGD + doc TGD; tags: doc TGD only.
  size_t egds = 0, tgds = 0;
  for (const auto& d : s->dependencies()) {
    d.is_egd() ? ++egds : ++tgds;
  }
  EXPECT_EQ(egds, 1u);
  EXPECT_EQ(tgds, 2u);
  EXPECT_TRUE(s->Validate().ok());
}

TEST(DocumentTreeEncodingTest, AxiomsAreWeaklyAcyclicAndValid) {
  auto s = DocumentTreeEncoding("cat");
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_TRUE(s->HasRelation("cat.Child"));
  EXPECT_TRUE(s->HasRelation("cat.Desc"));
  EXPECT_TRUE(s->Validate().ok());
  EXPECT_TRUE(pivot::IsWeaklyAcyclic(s->dependencies()));
}

TEST(DocumentTreeEncodingTest, ShredAndChaseDerivesDescendants) {
  auto schema = DocumentTreeEncoding("cat");
  ASSERT_TRUE(schema.ok());
  auto doc = json::Parse(R"({"book":{"title":"Foundation","tags":["sf","classic"]}})");
  ASSERT_TRUE(doc.ok());
  std::vector<pivot::Atom> atoms = ShredDocument("cat", "d1", *doc);
  Instance inst;
  ASSERT_TRUE(inst.InsertAll(atoms).ok());
  ASSERT_TRUE(RunChase(schema->dependencies(), &inst).ok());
  // The title node is a descendant of the root.
  auto q = pivot::ParseAtomList(
      "cat.Root('d1', r), cat.Desc(r, n), cat.Tag(n, 'title'), "
      "cat.Val(n, v)");
  ASSERT_TRUE(q.ok());
  auto matches = chase::FindHomomorphisms(*q, inst);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].sub.at("v"), pivot::Term::Str("Foundation"));
}

TEST(DocumentTreeEncodingTest, ShredEmitsArrayElems) {
  auto doc = json::Parse(R"([10, 20])");
  ASSERT_TRUE(doc.ok());
  std::vector<pivot::Atom> atoms = ShredDocument("cat", "d2", *doc);
  size_t array_elems = 0;
  for (const auto& a : atoms) {
    if (a.relation == "cat.ArrayElem") ++array_elems;
  }
  EXPECT_EQ(array_elems, 2u);
}

TEST(DocumentTreeEncodingTest, OneParentAxiomMergesDuplicateParents) {
  auto schema = DocumentTreeEncoding("cat");
  ASSERT_TRUE(schema.ok());
  Instance inst;
  // Two labelled-null parents of the same child must be equated.
  pivot::Atom a("cat.Child", {pivot::Term::Null(0), pivot::Term::Str("c")});
  pivot::Atom b("cat.Child", {pivot::Term::Null(1), pivot::Term::Str("c")});
  inst.Insert(a);
  inst.Insert(b);
  ASSERT_TRUE(RunChase(schema->dependencies(), &inst).ok());
  EXPECT_EQ(inst.Canonical(pivot::Term::Null(1)), pivot::Term::Null(0));
}

TEST(NestedEncodingTest, RelationWithKey) {
  auto s = NestedEncoding("mk", "carts", {"uid", "cart"}, {"uid"});
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->HasRelation("mk.carts"));
  EXPECT_EQ(s->dependencies().size(), 1u);
}

TEST(TextEncodingTest, TermIsInput) {
  auto s = TextEncoding("mk", "catalogtext");
  ASSERT_TRUE(s.ok());
  auto sig = s->GetRelation("mk.catalogtext.contains");
  ASSERT_TRUE(sig.ok());
  EXPECT_EQ(sig->adornments[1], Adornment::kInput);
}

}  // namespace
}  // namespace estocada::encoding
