/// Tier-1 entry point of the randomized differential-testing subsystem
/// (src/testing): sweeps a few hundred generated scenarios through the
/// staging oracle and the nine metamorphic invariant families, plus unit
/// tests of the scenario generator and the failure shrinker.
///
/// Replay a failing seed directly:
///
///   FUZZ_REPLAY_SEED=12345 ./tests/fuzz_differential
///
/// (or `bench/soak_differential --seed=12345` for the verbose dump). See
/// TESTING.md for the full workflow.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "pivot/parser.h"
#include "testing/differential.h"
#include "testing/scenario.h"

namespace estocada::testing {
namespace {

/// Each shard covers a disjoint seed band so ctest runs them in parallel;
/// together they exceed the 200-scenario tier-1 floor.
constexpr size_t kSeedsPerShard = 60;

void ExpectSweepClean(uint64_t first_seed) {
  SweepReport sweep = RunSweep(first_seed, kSeedsPerShard);
  for (const SeedReport& f : sweep.failed) {
    ADD_FAILURE() << f.report;
  }
  EXPECT_EQ(sweep.failures, 0u) << sweep.Summary();
  EXPECT_EQ(sweep.scenarios, kSeedsPerShard);
  // Coverage: a sweep that silently skipped an invariant family would
  // still "pass"; the counters prove all nine families actually ran.
  EXPECT_GT(sweep.queries, 0u);
  EXPECT_GT(sweep.rewritings, 0u) << "invariant (a) never executed";
  EXPECT_GT(sweep.naive_comparisons, 0u) << "invariant (b) never compared";
  EXPECT_GT(sweep.chase_checks, 0u) << "invariant (c) never checked";
  EXPECT_GT(sweep.chaos_successes, 0u) << "invariant (d) never succeeded";
  EXPECT_GT(sweep.migration_checks, 0u) << "invariant (e) never checked";
  EXPECT_GT(sweep.autopilot_checks, 0u) << "invariant (f) never checked";
  EXPECT_GT(sweep.replication_checks, 0u) << "invariant (g) never checked";
  EXPECT_GT(sweep.partition_checks, 0u) << "invariant (h) never checked";
  EXPECT_GT(sweep.graph_checks, 0u) << "invariant (i) never checked";
}

TEST(FuzzDifferential, SweepShard1) { ExpectSweepClean(1); }
TEST(FuzzDifferential, SweepShard2) { ExpectSweepClean(10001); }
TEST(FuzzDifferential, SweepShard3) { ExpectSweepClean(20001); }
TEST(FuzzDifferential, SweepShard4) { ExpectSweepClean(30001); }

/// FUZZ_REPLAY_SEED=N reruns one scenario with the full report on failure.
TEST(FuzzDifferential, ReplayEnvSeed) {
  const char* env = std::getenv("FUZZ_REPLAY_SEED");
  if (env == nullptr) GTEST_SKIP() << "set FUZZ_REPLAY_SEED=N to replay";
  uint64_t seed = std::strtoull(env, nullptr, 10);
  SeedReport rep = RunSeed(seed);
  EXPECT_TRUE(rep.outcome.ok()) << rep.report;
}

TEST(ScenarioGenerator, DeterministicPerSeed) {
  ScenarioConfig cfg;
  cfg.seed = 42;
  auto a = GenerateScenario(cfg);
  auto b = GenerateScenario(cfg);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(a->ToString(), b->ToString());
  cfg.seed = 43;
  auto c = GenerateScenario(cfg);
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_NE(a->ToString(), c->ToString());
}

TEST(ScenarioGenerator, EverythingParsesAndValidates) {
  for (uint64_t seed : {1u, 2u, 3u, 17u, 99u}) {
    ScenarioConfig cfg;
    cfg.seed = seed;
    auto s = GenerateScenario(cfg);
    ASSERT_TRUE(s.ok()) << s.status();
    EXPECT_GE(s->queries.size(), cfg.min_queries);
    EXPECT_LE(s->queries.size(), cfg.max_queries);
    for (const FragmentSpec& f : s->fragments) {
      auto v = pivot::ParseQuery(f.view_text);
      ASSERT_TRUE(v.ok()) << f.view_text << ": " << v.status();
    }
    for (const QuerySpec& q : s->queries) {
      auto cq = pivot::ParseQuery(q.text);
      ASSERT_TRUE(cq.ok()) << q.text << ": " << cq.status();
      EXPECT_TRUE(cq->Validate().ok()) << q.text;
    }
  }
}

TEST(ScenarioGenerator, EveryRelationHasIdentityFragment) {
  ScenarioConfig cfg;
  cfg.seed = 11;
  auto s = GenerateScenario(cfg);
  ASSERT_TRUE(s.ok()) << s.status();
  // The answerability guarantee rests on one all-free fragment per
  // relation; count fragments whose adornments are empty or all-free.
  size_t all_free = 0;
  for (const FragmentSpec& f : s->fragments) {
    bool free = true;
    for (pivot::Adornment a : f.adornments) {
      if (a != pivot::Adornment::kFree) free = false;
    }
    if (free) ++all_free;
  }
  EXPECT_GE(all_free, s->staging.size());
}

TEST(Shrinker, PassingScenarioIsLeftAlone) {
  ScenarioConfig cfg;
  cfg.seed = 7;
  auto s = GenerateScenario(cfg);
  ASSERT_TRUE(s.ok()) << s.status();
  ASSERT_TRUE(CheckScenario(*s).ok());
  ShrinkResult r = ShrinkScenario(*s, "naive-vs-pacb");
  EXPECT_EQ(r.steps, 0u);
  EXPECT_EQ(r.scenario.ToString(), s->ToString());
}

TEST(Shrinker, ReducesInjectedFailureToOneQuery) {
  ScenarioConfig cfg;
  cfg.seed = 5;
  auto s = GenerateScenario(cfg);
  ASSERT_TRUE(s.ok()) << s.status();
  // Inject a deterministic failure: a query over an unregistered relation
  // makes the staging oracle error out ("oracle" mismatch).
  s->queries.push_back({"q(v0) :- fz.no_such_relation(v0)", {}});
  ScenarioOutcome outcome = CheckScenario(*s);
  ASSERT_FALSE(outcome.ok());
  ASSERT_EQ(outcome.mismatches[0].invariant, "oracle");

  ShrinkResult r = ShrinkScenario(*s, "oracle");
  EXPECT_GT(r.steps, 0u);
  // The injected query is the only one the failure needs.
  EXPECT_EQ(r.scenario.queries.size(), 1u);
  EXPECT_EQ(r.scenario.queries[0].text, "q(v0) :- fz.no_such_relation(v0)");
  // The shrunk scenario must still fail the same way.
  ScenarioOutcome shrunk = CheckScenario(r.scenario);
  ASSERT_FALSE(shrunk.ok());
  EXPECT_EQ(shrunk.mismatches[0].invariant, "oracle");
}

TEST(HarnessApi, OutcomeCountsAllFamilies) {
  ScenarioConfig cfg;
  cfg.seed = 7;
  auto s = GenerateScenario(cfg);
  ASSERT_TRUE(s.ok()) << s.status();
  ScenarioOutcome outcome = CheckScenario(*s);
  EXPECT_TRUE(outcome.ok()) << outcome.mismatches[0].invariant << ": "
                            << outcome.mismatches[0].detail;
  EXPECT_GT(outcome.queries_checked, 0u);
  EXPECT_GT(outcome.rewritings_executed, 0u);
  EXPECT_GT(outcome.chase_checks, 0u);
  EXPECT_GT(outcome.migration_checks, 0u);
}

TEST(HarnessApi, FamiliesCanBeDisabled) {
  ScenarioConfig cfg;
  cfg.seed = 7;
  auto s = GenerateScenario(cfg);
  ASSERT_TRUE(s.ok()) << s.status();
  HarnessOptions opts;
  opts.check_rewritings = false;
  opts.check_naive = false;
  opts.check_chase = false;
  opts.check_chaos = false;
  opts.check_migration = false;
  opts.check_autopilot = false;
  opts.check_replication = false;
  opts.check_partition = false;
  opts.check_graph = false;
  ScenarioOutcome outcome = CheckScenario(*s, opts);
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.rewritings_executed, 0u);
  EXPECT_EQ(outcome.naive_comparisons, 0u);
  EXPECT_EQ(outcome.chase_checks, 0u);
  EXPECT_EQ(outcome.chaos_successes + outcome.chaos_errors, 0u);
  EXPECT_EQ(outcome.migration_checks, 0u);
  EXPECT_EQ(outcome.autopilot_checks, 0u);
  EXPECT_EQ(outcome.replication_checks, 0u);
  EXPECT_EQ(outcome.partition_checks, 0u);
  EXPECT_EQ(outcome.graph_checks, 0u);
}

}  // namespace
}  // namespace estocada::testing
