/// Incremental view maintenance: inserting data after fragments exist
/// keeps every store's fragment contents consistent with the staging
/// ground truth.

#include <gtest/gtest.h>

#include <set>

#include "common/strings.h"
#include "estocada/estocada.h"

namespace estocada {
namespace {

using engine::Row;
using engine::Value;
using pivot::Adornment;

std::multiset<std::string> Canon(const std::vector<Row>& rows) {
  std::multiset<std::string> out;
  for (const Row& r : rows) out.insert(engine::RowToString(r));
  return out;
}

class MaintenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pivot::Schema schema;
    ASSERT_TRUE(schema.AddRelation("R", 2).ok());
    ASSERT_TRUE(schema.AddRelation("S", 2).ok());
    ASSERT_TRUE(sys_.RegisterSchema(schema).ok());
    ASSERT_TRUE(sys_.RegisterStore({"pg", catalog::StoreKind::kRelational,
                                    &rel_, nullptr, nullptr, nullptr,
                                    nullptr})
                    .ok());
    ASSERT_TRUE(sys_.RegisterStore({"kv", catalog::StoreKind::kKeyValue,
                                    nullptr, &kv_, nullptr, nullptr,
                                    nullptr})
                    .ok());
    ASSERT_TRUE(sys_.RegisterStore({"mongo", catalog::StoreKind::kDocument,
                                    nullptr, nullptr, &doc_, nullptr,
                                    nullptr})
                    .ok());
    ASSERT_TRUE(sys_.RegisterStore({"spark", catalog::StoreKind::kParallel,
                                    nullptr, nullptr, nullptr, &par_,
                                    nullptr})
                    .ok());
    ASSERT_TRUE(sys_.RegisterStore({"solr", catalog::StoreKind::kText,
                                    nullptr, nullptr, nullptr, nullptr,
                                    &text_})
                    .ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(sys_.LoadRow("R", {Value::Int(i), Value::Int(i + 10)}).ok());
      ASSERT_TRUE(
          sys_.LoadRow("S", {Value::Int(i + 10), Value::Str("s" + std::to_string(i))})
              .ok());
    }
  }

  /// Checks the hybrid answer equals the staging ground truth.
  void ExpectConsistent(const char* query,
                        std::map<std::string, Value> params = {}) {
    auto hybrid = sys_.Query(query, params);
    ASSERT_TRUE(hybrid.ok()) << query << ": " << hybrid.status();
    auto truth = sys_.EvaluateOverStaging(query, params);
    ASSERT_TRUE(truth.ok());
    EXPECT_EQ(Canon(hybrid->rows), Canon(*truth)) << query;
  }

  stores::RelationalStore rel_;
  stores::KeyValueStore kv_;
  stores::DocumentStore doc_;
  stores::ParallelStore par_{2};
  stores::TextStore text_;
  Estocada sys_;
};

TEST_F(MaintenanceTest, RelationalFragmentGrowsOnInsert) {
  ASSERT_TRUE(sys_.DefineFragment("F(a, b) :- R(a, b)", "pg").ok());
  ASSERT_TRUE(sys_.InsertRow("R", {Value::Int(99), Value::Int(990)}).ok());
  EXPECT_EQ(*rel_.RowCount("F"), 6u);
  ExpectConsistent("q(a, b) :- R(a, b)");
  // Statistics track growth.
  EXPECT_EQ((*sys_.catalog().GetFragment("F"))->stats.row_count, 6u);
}

TEST_F(MaintenanceTest, KvFragmentGetsNewKey) {
  ASSERT_TRUE(sys_.DefineFragment("K(a, b) :- R(a, b)", "kv",
                                  {Adornment::kInput, Adornment::kFree})
                  .ok());
  ASSERT_TRUE(sys_.InsertRow("R", {Value::Int(42), Value::Int(420)}).ok());
  auto r = sys_.Query("q(b) :- R($a, b)", {{"$a", Value::Int(42)}});
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0], Value::Int(420));
}

TEST_F(MaintenanceTest, KvFragmentAppendsUnderExistingKey) {
  // Non-unique key: a second row under an existing key must append to the
  // payload, not overwrite it.
  ASSERT_TRUE(sys_.DefineFragment("K(a, b) :- R(a, b)", "kv",
                                  {Adornment::kInput, Adornment::kFree})
                  .ok());
  ASSERT_TRUE(sys_.InsertRow("R", {Value::Int(0), Value::Int(777)}).ok());
  auto r = sys_.Query("q(b) :- R($a, b)", {{"$a", Value::Int(0)}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);  // Original (0,10) plus (0,777).
}

TEST_F(MaintenanceTest, JoinFragmentDeltaBothSides) {
  ASSERT_TRUE(sys_.DefineFragment("FJ(a, c) :- R(a, b), S(b, c)", "spark")
                  .ok());
  const char* q = "q(a, c) :- R(a, b), S(b, c)";
  ExpectConsistent(q);
  // Insert on the R side: joins with existing S rows.
  ASSERT_TRUE(sys_.InsertRow("R", {Value::Int(7), Value::Int(12)}).ok());
  ExpectConsistent(q);
  // Insert on the S side: joins with existing R rows (incl. the new one).
  ASSERT_TRUE(sys_.InsertRow("S", {Value::Int(12), Value::Str("x")}).ok());
  ExpectConsistent(q);
  // A non-joining tuple adds nothing.
  size_t before = *par_.RowCount("FJ");
  ASSERT_TRUE(sys_.InsertRow("S", {Value::Int(999), Value::Str("y")}).ok());
  EXPECT_EQ(*par_.RowCount("FJ"), before);
  ExpectConsistent(q);
}

TEST_F(MaintenanceTest, SelfJoinViewDelta) {
  // Both occurrences of R must be pinned in turn.
  ASSERT_TRUE(sys_.DefineFragment("F2(a, c) :- R(a, b), R(b, c)", "pg").ok());
  // Create a 2-chain: (10, 20) joins with existing (0..4, 10..14).
  ASSERT_TRUE(sys_.InsertRow("R", {Value::Int(10), Value::Int(20)}).ok());
  ExpectConsistent("q(a, c) :- R(a, b), R(b, c)");
  // And a tuple that joins on *both* sides at once.
  ASSERT_TRUE(sys_.InsertRow("R", {Value::Int(20), Value::Int(0)}).ok());
  ExpectConsistent("q(a, c) :- R(a, b), R(b, c)");
}

TEST_F(MaintenanceTest, DocumentFragmentMaintained) {
  ASSERT_TRUE(sys_.DefineFragment("FD(a, b) :- R(a, b)", "mongo").ok());
  ASSERT_TRUE(sys_.InsertRow("R", {Value::Int(55), Value::Int(56)}).ok());
  EXPECT_EQ(*doc_.Count("FD"), 6u);
  ExpectConsistent("q(b) :- R($a, b)", {{"$a", Value::Int(55)}});
}

TEST_F(MaintenanceTest, TextFragmentRebuilt) {
  pivot::Schema schema;
  ASSERT_TRUE(schema.AddRelation("T", 2).ok());
  ASSERT_TRUE(sys_.RegisterSchema(schema).ok());
  ASSERT_TRUE(sys_.LoadRow("T", {Value::Int(1), Value::Str("red lamp")}).ok());
  ASSERT_TRUE(sys_.DefineFragment("FT(d, w) :- T(d, w)", "solr",
                                  {Adornment::kFree, Adornment::kInput})
                  .ok());
  ASSERT_TRUE(
      sys_.InsertRow("T", {Value::Int(2), Value::Str("red lamp")}).ok());
  auto r = sys_.Query("q(d) :- T(d, 'red lamp')");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST_F(MaintenanceTest, SelectionViewOnlyTakesMatchingTuples) {
  ASSERT_TRUE(sys_.DefineFragment("FS(a) :- R(a, 10)", "pg").ok());
  EXPECT_EQ(*rel_.RowCount("FS"), 1u);  // Only (0, 10).
  ASSERT_TRUE(sys_.InsertRow("R", {Value::Int(8), Value::Int(10)}).ok());
  EXPECT_EQ(*rel_.RowCount("FS"), 2u);
  ASSERT_TRUE(sys_.InsertRow("R", {Value::Int(9), Value::Int(11)}).ok());
  EXPECT_EQ(*rel_.RowCount("FS"), 2u);  // Non-matching tuple ignored.
  ExpectConsistent("q(a) :- R(a, 10)");
}

TEST_F(MaintenanceTest, InsertDocumentMaintainsPathFragments) {
  ASSERT_TRUE(sys_.RegisterDocumentCollection(
                      "d", "rev", {{"pid", true}, {"stars", true}})
                  .ok());
  auto doc1 = json::Parse(R"({"pid":1,"stars":5})");
  ASSERT_TRUE(doc1.ok());
  ASSERT_TRUE(sys_.LoadDocument("d", "rev", *doc1).ok());
  ASSERT_TRUE(sys_.DefineFragment(
                      "FR(i, p, s) :- d.rev.doc(i), d.rev.pid(i, p), "
                      "d.rev.stars(i, s)",
                      "pg")
                  .ok());
  EXPECT_EQ(*rel_.RowCount("FR"), 1u);
  auto doc2 = json::Parse(R"({"pid":2,"stars":4})");
  ASSERT_TRUE(doc2.ok());
  ASSERT_TRUE(sys_.InsertDocument("d", "rev", *doc2).ok());
  EXPECT_EQ(*rel_.RowCount("FR"), 1u + 1u);
  auto r = sys_.Query("q(p, s) :- d.rev.doc(i), d.rev.pid(i, p), "
                      "d.rev.stars(i, s)");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST_F(MaintenanceTest, DeleteRowRebuildsAffectedFragments) {
  ASSERT_TRUE(sys_.DefineFragment("F(a, b) :- R(a, b)", "pg").ok());
  ASSERT_TRUE(sys_.DefineFragment("FJ(a, c) :- R(a, b), S(b, c)", "spark")
                  .ok());
  ASSERT_TRUE(sys_.DeleteRow("R", {Value::Int(0), Value::Int(10)}).ok());
  EXPECT_EQ(*rel_.RowCount("F"), 4u);
  ExpectConsistent("q(a, b) :- R(a, b)");
  ExpectConsistent("q(a, c) :- R(a, b), S(b, c)");
  // Deleting a non-existent tuple reports kNotFound and changes nothing.
  EXPECT_EQ(sys_.DeleteRow("R", {Value::Int(0), Value::Int(10)}).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(*rel_.RowCount("F"), 4u);
}

TEST_F(MaintenanceTest, DeleteThenInsertRoundTrips) {
  ASSERT_TRUE(sys_.DefineFragment("F(a, b) :- R(a, b)", "pg").ok());
  ASSERT_TRUE(sys_.DeleteRow("R", {Value::Int(1), Value::Int(11)}).ok());
  ASSERT_TRUE(sys_.InsertRow("R", {Value::Int(1), Value::Int(11)}).ok());
  ExpectConsistent("q(a, b) :- R(a, b)");
  EXPECT_EQ(*rel_.RowCount("F"), 5u);
}

TEST_F(MaintenanceTest, DuplicateDerivationsDoNotBreakAnswers) {
  // FJ can re-derive an existing row through the new tuple; answers must
  // stay sets regardless.
  ASSERT_TRUE(sys_.DefineFragment("FJ(a, c) :- R(a, b), S(b, c)", "pg").ok());
  ASSERT_TRUE(sys_.InsertRow("S", {Value::Int(10), Value::Str("s0")}).ok());
  // (0,10) x duplicate (10,'s0') re-derives (0,'s0').
  auto r = sys_.Query("q(a, c) :- R(a, b), S(b, c)");
  ASSERT_TRUE(r.ok());
  std::set<std::string> unique;
  for (const Row& row : r->rows) unique.insert(engine::RowToString(row));
  EXPECT_EQ(unique.size(), r->rows.size());  // No duplicate answers.
}

}  // namespace
}  // namespace estocada
