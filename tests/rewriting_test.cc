/// Module-level tests of the rewriting layer: CQ evaluation over staging,
/// the catalog, the fragment materializer, and the translator/planner.

#include <gtest/gtest.h>

#include <set>

#include "catalog/catalog.h"
#include "pivot/parser.h"
#include "rewriting/cq_eval.h"
#include "rewriting/materializer.h"
#include "rewriting/planner.h"
#include "rewriting/translator.h"

namespace estocada::rewriting {
namespace {

using catalog::Catalog;
using catalog::StorageDescriptor;
using catalog::StoreKind;
using engine::Row;
using engine::Value;
using pivot::Adornment;
using pivot::ParseQuery;

StagingData SmallStaging() {
  StagingData staging;
  auto& r = staging["R"];
  r.columns = {"a", "b"};
  r.rows = {{Value::Int(1), Value::Int(2)},
            {Value::Int(2), Value::Int(3)},
            {Value::Int(1), Value::Int(2)}};  // Duplicate row.
  auto& s = staging["S"];
  s.columns = {"b", "c"};
  s.rows = {{Value::Int(2), Value::Str("x")},
            {Value::Int(3), Value::Str("y")},
            {Value::Int(9), Value::Str("z")}};
  return staging;
}

// ---------------------------------------------------------- CqEval --

TEST(CqEvalTest, SingleAtomDistinct) {
  auto rows = EvaluateCqOverStaging(*ParseQuery("q(a, b) :- R(a, b)"),
                                    SmallStaging());
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->size(), 2u);  // Set semantics collapses the duplicate.
}

TEST(CqEvalTest, BagSemanticsWhenRequested) {
  auto rows = EvaluateCqOverStaging(*ParseQuery("q(a, b) :- R(a, b)"),
                                    SmallStaging(), {}, /*distinct=*/false);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
}

TEST(CqEvalTest, JoinAndConstants) {
  auto rows = EvaluateCqOverStaging(
      *ParseQuery("q(a, c) :- R(a, b), S(b, c)"), SmallStaging());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
  auto filtered = EvaluateCqOverStaging(
      *ParseQuery("q(a) :- R(a, b), S(b, 'x')"), SmallStaging());
  ASSERT_TRUE(filtered.ok());
  ASSERT_EQ(filtered->size(), 1u);
  EXPECT_EQ((*filtered)[0][0], Value::Int(1));
}

TEST(CqEvalTest, RepeatedVariableInAtom) {
  StagingData staging;
  auto& e = staging["E"];
  e.columns = {"x", "y"};
  e.rows = {{Value::Int(1), Value::Int(1)}, {Value::Int(1), Value::Int(2)}};
  auto rows = EvaluateCqOverStaging(*ParseQuery("q(x) :- E(x, x)"), staging);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST(CqEvalTest, ParametersBindAndMissingParamFails) {
  auto with = EvaluateCqOverStaging(*ParseQuery("q(b) :- R($a, b)"),
                                    SmallStaging(),
                                    {{"$a", Value::Int(1)}});
  ASSERT_TRUE(with.ok()) << with.status();
  EXPECT_EQ(with->size(), 1u);
  auto without = EvaluateCqOverStaging(*ParseQuery("q(b) :- R($a, b)"),
                                       SmallStaging());
  EXPECT_EQ(without.status().code(), StatusCode::kInvalidArgument);
}

TEST(CqEvalTest, CartesianProductWhenNoSharedVars) {
  auto rows = EvaluateCqOverStaging(
      *ParseQuery("q(a, c) :- R(a, b), S(b2, c)"), SmallStaging());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u * 3u);  // 2 distinct R x 3 S... projected.
}

TEST(CqEvalTest, UnknownRelationFails) {
  EXPECT_EQ(EvaluateCqOverStaging(*ParseQuery("q(x) :- Nope(x)"),
                                  SmallStaging())
                .status()
                .code(),
            StatusCode::kNotFound);
}

// --------------------------------------------------------- Catalog --

TEST(CatalogTest, StoreRegistrationValidation) {
  Catalog cat;
  stores::RelationalStore rel;
  EXPECT_EQ(cat.RegisterStore({"", StoreKind::kRelational, &rel, nullptr,
                               nullptr, nullptr, nullptr})
                .code(),
            StatusCode::kInvalidArgument);
  // Kind/pointer mismatch.
  EXPECT_EQ(cat.RegisterStore({"x", StoreKind::kKeyValue, &rel, nullptr,
                               nullptr, nullptr, nullptr})
                .code(),
            StatusCode::kInvalidArgument);
  // No pointer at all.
  EXPECT_EQ(cat.RegisterStore({"x", StoreKind::kRelational, nullptr, nullptr,
                               nullptr, nullptr, nullptr})
                .code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(cat.RegisterStore({"pg", StoreKind::kRelational, &rel, nullptr,
                                 nullptr, nullptr, nullptr})
                  .ok());
  EXPECT_EQ(cat.RegisterStore({"pg", StoreKind::kRelational, &rel, nullptr,
                               nullptr, nullptr, nullptr})
                .code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, FragmentRegistrationValidation) {
  Catalog cat;
  stores::RelationalStore rel;
  ASSERT_TRUE(cat.RegisterStore({"pg", StoreKind::kRelational, &rel, nullptr,
                                 nullptr, nullptr, nullptr})
                  .ok());
  pivot::Schema schema;
  ASSERT_TRUE(schema.AddRelation("R", 2).ok());
  ASSERT_TRUE(cat.RegisterDatasetSchema(schema).ok());

  StorageDescriptor d;
  d.view.query = *ParseQuery("F(a, b) :- R(a, b)");
  d.store_name = "nope";
  EXPECT_EQ(cat.RegisterFragment(d).code(), StatusCode::kNotFound);
  d.store_name = "pg";
  ASSERT_TRUE(cat.RegisterFragment(d).ok());
  EXPECT_EQ(cat.RegisterFragment(d).code(), StatusCode::kAlreadyExists);
  // View body over an unknown relation.
  StorageDescriptor bad;
  bad.view.query = *ParseQuery("G(a) :- Nope(a)");
  bad.store_name = "pg";
  EXPECT_EQ(cat.RegisterFragment(bad).code(), StatusCode::kNotFound);
  // Fragment name colliding with a dataset relation.
  StorageDescriptor collide;
  collide.view.query = *ParseQuery("R(a, b) :- R(a, b)");
  collide.store_name = "pg";
  EXPECT_EQ(cat.RegisterFragment(collide).code(),
            StatusCode::kInvalidArgument);
  // Container defaults to the fragment name.
  EXPECT_EQ((*cat.GetFragment("F"))->container, "F");
  EXPECT_EQ(cat.AllViews().size(), 1u);
}

TEST(CatalogTest, StatisticsSelectivity) {
  catalog::FragmentStatistics stats;
  stats.row_count = 100;
  stats.distinct = {50, 0};
  EXPECT_DOUBLE_EQ(stats.EqualitySelectivity(0), 0.02);
  EXPECT_DOUBLE_EQ(stats.EqualitySelectivity(1), 0.1);  // Unknown default.
  EXPECT_DOUBLE_EQ(stats.EqualitySelectivity(9), 0.1);  // Out of range.
}

TEST(CatalogTest, FragmentColumnNames) {
  pacb::ViewDefinition v;
  v.query = *ParseQuery("F(u, $p, u, 1) :- R(u, $p, x)");
  auto names = catalog::FragmentColumnNames(v);
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "u");
  EXPECT_EQ(names[1], "p");        // '$' stripped.
  EXPECT_EQ(names[2], "u_2");      // Duplicate disambiguated.
  EXPECT_EQ(names[3], "h3");       // Constant head term.
}

// ----------------------------------------- Materializer + Translator --

class MatTransTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cat_.RegisterStore({"pg", StoreKind::kRelational, &rel_,
                                    nullptr, nullptr, nullptr, nullptr})
                    .ok());
    ASSERT_TRUE(cat_.RegisterStore({"kv", StoreKind::kKeyValue, nullptr,
                                    &kv_, nullptr, nullptr, nullptr})
                    .ok());
    pivot::Schema schema;
    ASSERT_TRUE(schema.AddRelation("R", 2).ok());
    ASSERT_TRUE(schema.AddRelation("S", 2).ok());
    ASSERT_TRUE(cat_.RegisterDatasetSchema(schema).ok());
    staging_ = SmallStaging();
  }

  Status Define(const char* view_text, const std::string& store,
                std::vector<Adornment> adornments = {}) {
    StorageDescriptor d;
    auto q = ParseQuery(view_text);
    if (!q.ok()) return q.status();
    d.view.query = *q;
    d.view.adornments = std::move(adornments);
    d.store_name = store;
    ESTOCADA_RETURN_NOT_OK(cat_.RegisterFragment(std::move(d)));
    std::string name = ParseQuery(view_text)->name;
    return MaterializeFragment(staging_, &cat_, name);
  }

  Catalog cat_;
  stores::RelationalStore rel_;
  stores::KeyValueStore kv_;
  StagingData staging_;
};

TEST_F(MatTransTest, MaterializeIntoRelationalStore) {
  ASSERT_TRUE(Define("F(a, b) :- R(a, b)", "pg").ok());
  EXPECT_EQ(*rel_.RowCount("F"), 2u);  // Distinct rows only.
  auto frag = cat_.GetFragment("F");
  ASSERT_TRUE(frag.ok());
  EXPECT_EQ((*frag)->stats.row_count, 2u);
  EXPECT_EQ((*frag)->stats.distinct[0], 2u);
}

TEST_F(MatTransTest, MaterializeJoinView) {
  ASSERT_TRUE(Define("FJ(a, c) :- R(a, b), S(b, c)", "pg").ok());
  EXPECT_EQ(*rel_.RowCount("FJ"), 2u);
}

TEST_F(MatTransTest, DematerializeRemovesContainer) {
  ASSERT_TRUE(Define("F(a, b) :- R(a, b)", "pg").ok());
  ASSERT_TRUE(DematerializeFragment(&cat_, "F").ok());
  EXPECT_FALSE(rel_.HasTable("F"));
  EXPECT_EQ(MaterializeFragment(staging_, &cat_, "missing").code(),
            StatusCode::kNotFound);
}

TEST_F(MatTransTest, TranslatorDelegatesAndExecutes) {
  ASSERT_TRUE(Define("F(a, b) :- R(a, b)", "pg").ok());
  ASSERT_TRUE(Define("G(b, c) :- S(b, c)", "pg").ok());
  Translator tr(&cat_);
  auto plan = tr.Plan(*ParseQuery("q(a, c) :- F(a, b), G(b, c)"));
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Same relational store: one delegated SPJ covering both atoms.
  ASSERT_EQ(plan->delegated.size(), 1u);
  EXPECT_NE(plan->delegated[0].find("SELECT"), std::string::npos);
  auto rows = engine::Collect(plan->root.get());
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->size(), 2u);
  EXPECT_GT(plan->runtime_stats->per_store["pg"].operations, 0u);
}

TEST_F(MatTransTest, TranslatorKvBindJoin) {
  ASSERT_TRUE(Define("F(a, b) :- R(a, b)", "pg").ok());
  ASSERT_TRUE(Define("K(b, c) :- S(b, c)", "kv",
                     {Adornment::kInput, Adornment::kFree})
                  .ok());
  Translator tr(&cat_);
  auto plan = tr.Plan(*ParseQuery("q(a, c) :- F(a, b), K(b, c)"));
  ASSERT_TRUE(plan.ok()) << plan.status();
  auto rows = engine::Collect(plan->root.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
  // A KV GET happened per distinct binding.
  EXPECT_GE(plan->runtime_stats->per_store["kv"].operations, 1u);
}

TEST_F(MatTransTest, TranslatorRejectsInfeasibleOrder) {
  ASSERT_TRUE(Define("K(b, c) :- S(b, c)", "kv",
                     {Adornment::kInput, Adornment::kFree})
                  .ok());
  Translator tr(&cat_);
  EXPECT_EQ(tr.Plan(*ParseQuery("q(b, c) :- K(b, c)")).status().code(),
            StatusCode::kNoRewriting);
  // With a parameter the same atom becomes executable.
  auto plan = tr.Plan(*ParseQuery("q(c) :- K($b, c)"),
                      {{"$b", Value::Int(2)}});
  ASSERT_TRUE(plan.ok()) << plan.status();
  auto rows = engine::Collect(plan->root.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], Value::Str("x"));
}

TEST_F(MatTransTest, TranslatorKvScanHonorsNonKeyBindings) {
  // Regression: a KV fragment whose *second* position is input-adorned
  // (key free) falls back to a scan, but the outer binding must still be
  // applied as a filter.
  ASSERT_TRUE(Define("F(a, b) :- R(a, b)", "pg").ok());
  ASSERT_TRUE(Define("K2(b, c) :- S(b, c)", "kv",
                     {Adornment::kFree, Adornment::kInput})
                  .ok());
  Translator tr(&cat_);
  // c is bound by... nothing free binds c here; use a param binding the
  // adorned position through the outer side instead: join K2.c with F? No
  // column of F holds c, so bind it via parameter:
  auto plan = tr.Plan(*ParseQuery("q(a, b2) :- F(a, b), K2(b2, $c)"),
                      {{"$c", Value::Str("x")}});
  ASSERT_TRUE(plan.ok()) << plan.status();
  auto rows = engine::Collect(plan->root.get());
  ASSERT_TRUE(rows.ok()) << rows.status();
  // S has exactly one row with c='x' (b=2); cross product with 2 F rows.
  EXPECT_EQ(rows->size(), 2u);
  for (const auto& row : *rows) {
    EXPECT_EQ(row[1], Value::Int(2));
  }
}

TEST_F(MatTransTest, TranslatorKvScanWithOuterBoundInputPosition) {
  // The adorned non-key position bound by an *outer variable* (BindJoin
  // into a scan-served source).
  ASSERT_TRUE(Define("F(a, b) :- R(a, b)", "pg").ok());
  ASSERT_TRUE(Define("K3(c, b) :- S(b, c)", "kv",
                     {Adornment::kFree, Adornment::kInput})
                  .ok());
  Translator tr(&cat_);
  auto plan = tr.Plan(*ParseQuery("q(a, c) :- F(a, b), K3(c, b)"));
  ASSERT_TRUE(plan.ok()) << plan.status();
  auto rows = engine::Collect(plan->root.get());
  ASSERT_TRUE(rows.ok()) << rows.status();
  // R joins S on b: (1,2)->(2,'x'), (2,3)->(3,'y').
  EXPECT_EQ(rows->size(), 2u);
}

TEST_F(MatTransTest, TranslatorChecksParametersAndArity) {
  ASSERT_TRUE(Define("F(a, b) :- R(a, b)", "pg").ok());
  Translator tr(&cat_);
  EXPECT_EQ(tr.Plan(*ParseQuery("q(b) :- F($a, b)")).status().code(),
            StatusCode::kInvalidArgument);  // Missing $a value.
  EXPECT_EQ(tr.Plan(*ParseQuery("q(x) :- F(x)")).status().code(),
            StatusCode::kInvalidArgument);  // Arity mismatch.
  EXPECT_EQ(tr.Plan(*ParseQuery("q(x) :- Unknown(x)")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(MatTransTest, PlannerPicksCheapestPlan) {
  // Two fragments answer the same query; the KV point access must win
  // for a parameterized lookup.
  ASSERT_TRUE(Define("F(a, b) :- R(a, b)", "pg").ok());
  ASSERT_TRUE(Define("K(a, b) :- R(a, b)", "kv",
                     {Adornment::kInput, Adornment::kFree})
                  .ok());
  pacb::Rewriter rw(cat_.dataset_schema(), cat_.AllViews());
  ASSERT_TRUE(rw.Prepare().ok());
  Planner planner(&cat_, &rw);
  auto plans = planner.PlanQuery(*ParseQuery("q(b) :- R($a, b)"),
                                 {{"$a", Value::Int(1)}});
  ASSERT_TRUE(plans.ok()) << plans.status();
  ASSERT_EQ(plans->plans.size(), 2u);
  EXPECT_EQ(plans->best_plan().rewriting.body[0].relation, "K");
}

TEST_F(MatTransTest, PlannerReportsNoRewriting) {
  pacb::Rewriter rw(cat_.dataset_schema(), cat_.AllViews());
  ASSERT_TRUE(rw.Prepare().ok());
  Planner planner(&cat_, &rw);
  EXPECT_EQ(planner.PlanQuery(*ParseQuery("q(a) :- R(a, b)")).status().code(),
            StatusCode::kNoRewriting);
}

}  // namespace
}  // namespace estocada::rewriting
