/// Tests of the concurrent serving runtime (src/runtime): canonicalization
/// equivalences, plan-cache LRU + epoch invalidation, metrics, and
/// QueryServer correctness under concurrent clients (run under TSan via
/// scripts/check.sh).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/histogram.h"
#include "pivot/parser.h"
#include "runtime/canonical.h"
#include "runtime/metrics.h"
#include "runtime/plan_cache.h"
#include "runtime/query_server.h"
#include "workload/marketplace.h"

namespace estocada::runtime {
namespace {

using engine::Row;
using engine::Value;
using pivot::Adornment;

std::string KeyOf(const std::string& query_text) {
  auto q = pivot::ParseQuery(query_text);
  EXPECT_TRUE(q.ok()) << q.status();
  return Canonicalize(*q).key;
}

// ------------------------------------------------------ Canonicalization --

TEST(CanonicalTest, RenamedVariablesShareAKey) {
  EXPECT_EQ(KeyOf("q(x, y) :- R(x, z), S(z, y)"),
            KeyOf("out(a, b) :- R(a, c), S(c, b)"));
}

TEST(CanonicalTest, ReorderedAtomsShareAKey) {
  EXPECT_EQ(KeyOf("q(x, y) :- R(x, z), S(z, y)"),
            KeyOf("q(x, y) :- S(z, y), R(x, z)"));
}

TEST(CanonicalTest, RenamedAndReorderedShareAKey) {
  EXPECT_EQ(KeyOf("q(u) :- mk.orders(o, u, p, t), mk.visits(u, p, d)"),
            KeyOf("res(a) :- mk.visits(a, b, c), mk.orders(x, a, b, y)"));
}

TEST(CanonicalTest, ParameterNamesDoNotSplitEntries) {
  EXPECT_EQ(KeyOf("cart(c) :- mk.carts($uid, c)"),
            KeyOf("cart(x) :- mk.carts($user, x)"));
}

TEST(CanonicalTest, DifferentConstantsDiffer) {
  EXPECT_NE(KeyOf("q(x) :- R(x, 'a')"), KeyOf("q(x) :- R(x, 'b')"));
}

TEST(CanonicalTest, DifferentStructureDiffers) {
  EXPECT_NE(KeyOf("q(x) :- R(x, y)"), KeyOf("q(x) :- R(x, x)"));
  EXPECT_NE(KeyOf("q(x) :- R(x, y)"), KeyOf("q(x) :- R(y, x)"));
  EXPECT_NE(KeyOf("q(x, y) :- R(x, y)"), KeyOf("q(y, x) :- R(x, y)"));
}

TEST(CanonicalTest, HeadNameIsIrrelevant) {
  EXPECT_EQ(KeyOf("foo(x) :- R(x)"), KeyOf("bar(x) :- R(x)"));
}

TEST(CanonicalTest, RemapParametersFollowsRenaming) {
  auto q = pivot::ParseQuery("cart(c) :- mk.carts($uid, c)");
  ASSERT_TRUE(q.ok());
  CanonicalQuery canonical = Canonicalize(*q);
  ASSERT_EQ(canonical.parameter_renaming.count("$uid"), 1u);
  std::map<std::string, Value> params{{"$uid", Value::Int(7)}};
  auto remapped = RemapParameters(canonical, params);
  ASSERT_EQ(remapped.size(), 1u);
  EXPECT_EQ(remapped.begin()->first, canonical.parameter_renaming["$uid"]);
  EXPECT_EQ(remapped.begin()->second, Value::Int(7));
}

// ------------------------------------------------------------ Plan cache --

PlanCache::CachedRewritings SomeRewritings(const std::string& text) {
  auto result = std::make_shared<pacb::RewritingResult>();
  pacb::Rewriting rw;
  rw.query = *pivot::ParseQuery(text);
  result->rewritings.push_back(std::move(rw));
  return result;
}

TEST(PlanCacheTest, HitAfterInsert) {
  PlanCache cache;
  EXPECT_EQ(cache.Lookup("k1", 0), nullptr);
  cache.Insert("k1", 0, SomeRewritings("q(x) :- V(x)"));
  auto hit = cache.Lookup("k1", 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->rewritings.size(), 1u);
  PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(PlanCacheTest, EpochMismatchInvalidates) {
  PlanCache cache;
  cache.Insert("k1", 3, SomeRewritings("q(x) :- V(x)"));
  EXPECT_EQ(cache.Lookup("k1", 4), nullptr);  // Newer epoch: stale entry.
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);       // ... and it was dropped.
  EXPECT_EQ(cache.Lookup("k1", 3), nullptr);  // Gone for the old epoch too.
}

TEST(PlanCacheTest, LruEvictsOldest) {
  PlanCache::Options options;
  options.shards = 1;
  options.capacity = 2;
  PlanCache cache(options);
  cache.Insert("a", 0, SomeRewritings("q(x) :- V(x)"));
  cache.Insert("b", 0, SomeRewritings("q(x) :- V(x)"));
  ASSERT_NE(cache.Lookup("a", 0), nullptr);  // Touch: "b" is now LRU.
  cache.Insert("c", 0, SomeRewritings("q(x) :- V(x)"));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Lookup("a", 0), nullptr);
  EXPECT_EQ(cache.Lookup("b", 0), nullptr);
  EXPECT_NE(cache.Lookup("c", 0), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

// --------------------------------------------------- Histogram & metrics --

TEST(HistogramTest, QuantilesAreOrderedAndBracket) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  auto s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  double p50 = s.Quantile(0.50);
  double p95 = s.Quantile(0.95);
  double p99 = s.Quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Bucketed estimates: generous brackets.
  EXPECT_GT(p50, 300.0);
  EXPECT_LT(p50, 800.0);
  EXPECT_GT(p99, 700.0);
  EXPECT_NEAR(s.mean_micros, 500.5, 5.0);
}

TEST(HistogramTest, ConcurrentRecordsAllLand) {
  LatencyHistogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 1000; ++i) h.Record(10.0 + i % 7);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), 8000u);
}

TEST(MetricsTest, SnapshotAndReport) {
  ServerMetrics metrics;
  metrics.RecordCacheMiss();
  metrics.RecordRewrite();
  metrics.RecordQuery(true, 120.0);
  metrics.RecordCacheHit();
  metrics.RecordQuery(true, 40.0);
  metrics.RecordQuery(false, 5.0);
  MetricsSnapshot s = metrics.snapshot();
  EXPECT_EQ(s.queries_served, 2u);
  EXPECT_EQ(s.errors, 1u);
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.cache_misses, 1u);
  EXPECT_EQ(s.rewrites, 1u);
  EXPECT_DOUBLE_EQ(s.CacheHitRate(), 0.5);
  std::string report = s.ToString();
  EXPECT_NE(report.find("queries served:  2"), std::string::npos);
  EXPECT_NE(report.find("50.0% hit rate"), std::string::npos);
}

// ------------------------------------------------------------ QueryServer --

/// Small marketplace with the five stores and a hybrid fragment layout,
/// fronted by a QueryServer.
class QueryServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::MarketplaceConfig cfg;
    cfg.seed = 7;
    cfg.num_users = 80;
    cfg.num_products = 30;
    cfg.num_orders = 250;
    cfg.num_visits = 600;
    auto data = workload::GenerateMarketplace(cfg);
    ASSERT_TRUE(data.ok()) << data.status();
    data_ = std::move(*data);

    ASSERT_TRUE(sys_.RegisterSchema(data_.schema).ok());
    ASSERT_TRUE(sys_.RegisterStore({"postgres", catalog::StoreKind::kRelational,
                                    &relational_, nullptr, nullptr, nullptr,
                                    nullptr})
                    .ok());
    ASSERT_TRUE(sys_.RegisterStore({"redis", catalog::StoreKind::kKeyValue,
                                    nullptr, &kv_, nullptr, nullptr, nullptr})
                    .ok());
    ASSERT_TRUE(sys_.RegisterStore({"mongo", catalog::StoreKind::kDocument,
                                    nullptr, nullptr, &doc_, nullptr, nullptr})
                    .ok());
    ASSERT_TRUE(sys_.RegisterStore({"spark", catalog::StoreKind::kParallel,
                                    nullptr, nullptr, nullptr, &parallel_,
                                    nullptr})
                    .ok());
    ASSERT_TRUE(sys_.RegisterStore({"solr", catalog::StoreKind::kText, nullptr,
                                    nullptr, nullptr, nullptr, &text_})
                    .ok());
    ASSERT_TRUE(sys_.LoadStaging(data_.staging).ok());

    ASSERT_TRUE(sys_.DefineFragment("F_users(u, n, c) :- mk.users(u, n, c)",
                                    "postgres", {}, {0})
                    .ok());
    ASSERT_TRUE(sys_.DefineFragment(
                        "F_orders(o, u, p, t) :- mk.orders(o, u, p, t)",
                        "postgres", {}, {1, 2})
                    .ok());
    ASSERT_TRUE(sys_.DefineFragment(
                        "F_prod(p, n, cat, pr) :- mk.products(p, n, cat, pr)",
                        "postgres", {}, {0, 2})
                    .ok());
    ASSERT_TRUE(sys_.DefineFragment("F_carts(u, c) :- mk.carts(u, c)", "redis",
                                    {Adornment::kInput, Adornment::kFree})
                    .ok());
    ASSERT_TRUE(sys_.DefineFragment("F_visits(u, p, d) :- mk.visits(u, p, d)",
                                    "spark", {}, {0, 1})
                    .ok());
  }

  /// Set-canon of rows for order/duplicate-insensitive comparison.
  static std::set<std::string> Canon(const std::vector<Row>& rows) {
    std::set<std::string> out;
    for (const Row& r : rows) out.insert(engine::RowToString(r));
    return out;
  }

  workload::MarketplaceData data_;
  stores::RelationalStore relational_;
  stores::KeyValueStore kv_;
  stores::DocumentStore doc_;
  stores::ParallelStore parallel_{2};
  stores::TextStore text_;
  Estocada sys_;
};

TEST_F(QueryServerTest, RepeatedQueryHitsTheCacheAndMatchesGroundTruth) {
  QueryServer server(&sys_);
  std::map<std::string, Value> params{{"$uid", Value::Int(3)}};
  const char* text = workload::MarketplaceQueries::OrdersOfUser();

  auto first = server.Query(text, params);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = server.Query(text, params);
  ASSERT_TRUE(second.ok()) << second.status();

  MetricsSnapshot m = server.metrics();
  EXPECT_EQ(m.queries_served, 2u);
  EXPECT_EQ(m.cache_misses, 1u);
  EXPECT_EQ(m.cache_hits, 1u);
  EXPECT_EQ(m.rewrites, 1u);  // PACB ran once; the hit skipped it.

  auto truth = sys_.EvaluateOverStaging(text, params);
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(Canon(first->rows), Canon(*truth));
  EXPECT_EQ(Canon(second->rows), Canon(*truth));
}

TEST_F(QueryServerTest, EquivalentQueriesShareOneEntry) {
  QueryServer server(&sys_);
  std::map<std::string, Value> p1{{"$uid", Value::Int(5)}};
  std::map<std::string, Value> p2{{"$u", Value::Int(9)}};
  auto r1 = server.Query("uorders(o, p, t) :- mk.orders(o, $uid, p, t)", p1);
  ASSERT_TRUE(r1.ok()) << r1.status();
  // Renamed variables, renamed parameter, different value: same entry.
  auto r2 = server.Query("res(a, b, c) :- mk.orders(a, $u, b, c)", p2);
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(server.metrics().cache_hits, 1u);

  auto truth = sys_.EvaluateOverStaging(
      "uorders(o, p, t) :- mk.orders(o, $uid, p, t)",
      {{"$uid", Value::Int(9)}});
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(Canon(r2->rows), Canon(*truth));
}

TEST_F(QueryServerTest, ParameterValuesDoNotPolluteTheCache) {
  QueryServer server(&sys_);
  const char* text = workload::MarketplaceQueries::UserCity();
  for (int i = 0; i < 10; ++i) {
    std::map<std::string, Value> params{{"$uid", Value::Int(i)}};
    auto r = server.Query(text, params);
    ASSERT_TRUE(r.ok()) << r.status();
    auto truth = sys_.EvaluateOverStaging(text, params);
    ASSERT_TRUE(truth.ok());
    EXPECT_EQ(Canon(r->rows), Canon(*truth)) << "uid u" << i;
  }
  MetricsSnapshot m = server.metrics();
  EXPECT_EQ(m.cache_misses, 1u);
  EXPECT_EQ(m.cache_hits, 9u);
  EXPECT_EQ(server.cache_stats().entries, 1u);
}

TEST_F(QueryServerTest, FragmentChangeInvalidatesCachedPlans) {
  QueryServer server(&sys_);
  std::map<std::string, Value> params{{"$uid", Value::Int(2)}};
  const char* text = workload::MarketplaceQueries::OrdersOfUser();

  auto before = server.Query(text, params);
  ASSERT_TRUE(before.ok()) << before.status();
  // The only orders fragment is F_orders; the cached plan uses it.
  EXPECT_NE(before->rewriting_text.find("F_orders"), std::string::npos);

  // Replace the fragment layout: a user-keyed orders fragment appears and
  // the old one is dropped. The cached plan references a fragment that no
  // longer exists — serving it would be flat-out wrong.
  ASSERT_TRUE(server
                  .DefineFragment(
                      "F_orders_by_user(u, o, p, t) :- mk.orders(o, u, p, t)",
                      "spark", {}, {0})
                  .ok());
  ASSERT_TRUE(server.DropFragment("F_orders").ok());

  auto after = server.Query(text, params);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->rewriting_text.find("F_orders("), std::string::npos);
  EXPECT_NE(after->rewriting_text.find("F_orders_by_user"), std::string::npos);

  auto truth = sys_.EvaluateOverStaging(text, params);
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(Canon(after->rows), Canon(*truth));

  // The epoch changed, so the pre-change entry was invalidated, not hit.
  EXPECT_GE(server.cache_stats().invalidations, 1u);
  EXPECT_EQ(server.metrics().cache_hits, 0u);
}

TEST_F(QueryServerTest, ApplyRecommendationInvalidatesToo) {
  QueryServer server(&sys_);
  std::map<std::string, Value> params{{"$uid", Value::Int(4)}};
  const char* text = workload::MarketplaceQueries::OrdersOfUser();
  uint64_t epoch_before = sys_.catalog_epoch();
  ASSERT_TRUE(server.Query(text, params).ok());

  // Drive the advisor with a hot shape, then apply its recommendation
  // through the server.
  for (int i = 0; i < 12; ++i) ASSERT_TRUE(server.Query(text, params).ok());
  auto recs = server.Advise();
  if (!recs.empty()) {
    ASSERT_TRUE(server.ApplyRecommendation(recs[0]).ok());
    EXPECT_GT(sys_.catalog_epoch(), epoch_before);
    auto after = server.Query(text, params);
    ASSERT_TRUE(after.ok()) << after.status();
    auto truth = sys_.EvaluateOverStaging(text, params);
    ASSERT_TRUE(truth.ok());
    EXPECT_EQ(Canon(after->rows), Canon(*truth));
  }
}

TEST_F(QueryServerTest, ConcurrentClientsMatchGroundTruth) {
  QueryServer server(&sys_);
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 25;

  // Precompute ground truth for every (query, uid) pair used below.
  struct Case {
    std::string text;
    std::map<std::string, Value> params;
    std::set<std::string> truth;
  };
  std::vector<Case> cases;
  for (int u = 0; u < 10; ++u) {
    for (const char* text : {workload::MarketplaceQueries::OrdersOfUser(),
                             workload::MarketplaceQueries::UserCity(),
                             workload::MarketplaceQueries::CartByUser()}) {
      Case c;
      c.text = text;
      c.params = {{"$uid", Value::Int(u)}};
      auto truth = sys_.EvaluateOverStaging(c.text, c.params);
      ASSERT_TRUE(truth.ok()) << truth.status();
      c.truth = Canon(*truth);
      cases.push_back(std::move(c));
    }
  }

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const Case& c = cases[(t * kQueriesPerThread + i) % cases.size()];
        auto r = server.Query(c.text, c.params);
        if (!r.ok()) {
          ++failures;
          continue;
        }
        if (Canon(r->rows) != c.truth) ++mismatches;
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  MetricsSnapshot m = server.metrics();
  EXPECT_EQ(m.queries_served,
            static_cast<uint64_t>(kThreads * kQueriesPerThread));
  // 3 query shapes -> ~3 misses. Concurrent first requests for one shape
  // may each miss before the first insert lands (benign: both compute the
  // same entry), so allow a little slack but demand a high hit rate.
  EXPECT_GE(m.cache_misses, 3u);
  EXPECT_LE(m.cache_misses, 3u + static_cast<uint64_t>(kThreads));
  EXPECT_GT(m.CacheHitRate(), 0.9);
}

TEST_F(QueryServerTest, ConcurrentQueriesAndCatalogChanges) {
  QueryServer server(&sys_);
  const char* text = workload::MarketplaceQueries::UserCity();
  std::map<std::string, Value> params{{"$uid", Value::Int(1)}};
  auto truth = sys_.EvaluateOverStaging(text, params);
  ASSERT_TRUE(truth.ok());
  std::set<std::string> expected = Canon(*truth);

  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        auto r = server.Query(text, params);
        if (!r.ok() || Canon(r->rows) != expected) ++bad;
      }
    });
  }
  // Meanwhile, churn the fragment layout with an unrelated fragment so
  // epochs bump mid-flight.
  std::thread admin([&] {
    for (int i = 0; i < 5; ++i) {
      std::string name = "F_churn" + std::to_string(i);
      EXPECT_TRUE(server
                      .DefineFragment(name + "(p, w) :- mk.prodterms(p, w)",
                                      "solr",
                                      {Adornment::kFree, Adornment::kInput})
                      .ok());
      EXPECT_TRUE(server.DropFragment(name).ok());
    }
  });
  for (auto& t : clients) t.join();
  admin.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST_F(QueryServerTest, DropFragmentRacesCachedPlansWithoutWrongAnswers) {
  QueryServer server(&sys_);
  const char* text = workload::MarketplaceQueries::OrdersOfUser();
  std::map<std::string, Value> params{{"$uid", Value::Int(2)}};
  auto truth = sys_.EvaluateOverStaging(text, params);
  ASSERT_TRUE(truth.ok());
  std::set<std::string> expected = Canon(*truth);

  // A redundant orders fragment keeps the query answerable once F_orders
  // goes away mid-flight.
  ASSERT_TRUE(server
                  .DefineFragment(
                      "F_orders_by_user(u, o, p, t) :- mk.orders(o, u, p, t)",
                      "spark", {}, {0})
                  .ok());
  // Warm the cache: concurrent clients below start from a cached plan
  // whose fragment the admin thread is about to drop.
  ASSERT_TRUE(server.Query(text, params).ok());

  std::atomic<int> bad{0};
  std::atomic<bool> dropped{false};
  std::atomic<int> used_dropped_after{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < 30; ++i) {
        // Sample the flag *before* issuing the query: an answer that was
        // already in flight when the drop committed may legally carry the
        // old plan, but a query issued after it must not.
        bool after_drop = dropped.load(std::memory_order_acquire);
        auto r = server.Query(text, params);
        if (!r.ok() || Canon(r->rows) != expected) {
          ++bad;
          continue;
        }
        if (after_drop &&
            r->rewriting_text.find("F_orders(") != std::string::npos) {
          ++used_dropped_after;
        }
        // Brief think time so the admin's exclusive lock is not starved
        // by the platform's reader-preferring rwlock.
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    });
  }
  std::thread admin([&] {
    std::this_thread::sleep_for(std::chrono::microseconds(500));
    EXPECT_TRUE(server.DropFragment("F_orders").ok());
    dropped.store(true, std::memory_order_release);
  });
  for (auto& t : clients) t.join();
  admin.join();

  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(used_dropped_after.load(), 0);
  // The drop bumped the epoch, so the warmed entry was invalidated (or
  // evicted wholesale) rather than served stale.
  EXPECT_GE(server.cache_stats().invalidations +
                server.metrics().cache_misses,
            2u);
  auto after = server.Query(text, params);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->rewriting_text.find("F_orders("), std::string::npos);
  EXPECT_EQ(Canon(after->rows), expected);
}

TEST_F(QueryServerTest, SubmitRunsOnWorkerPool) {
  ServerOptions options;
  options.worker_threads = 4;
  QueryServer server(&sys_, options);
  std::vector<std::future<Result<Estocada::QueryResult>>> futures;
  for (int u = 0; u < 12; ++u) {
    futures.push_back(server.Submit(workload::MarketplaceQueries::UserCity(),
                                    {{"$uid", Value::Int(u)}}));
  }
  for (int u = 0; u < 12; ++u) {
    auto r = futures[static_cast<size_t>(u)].get();
    ASSERT_TRUE(r.ok()) << r.status();
    auto truth = sys_.EvaluateOverStaging(
        workload::MarketplaceQueries::UserCity(), {{"$uid", Value::Int(u)}});
    ASSERT_TRUE(truth.ok());
    EXPECT_EQ(Canon(r->rows), Canon(*truth));
  }
  EXPECT_EQ(server.metrics().queries_served, 12u);
}

TEST_F(QueryServerTest, ParseErrorsCountAsErrors) {
  QueryServer server(&sys_);
  auto r = server.Query("this is not a query");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(server.metrics().errors, 1u);
}

// ------------------------------------------------------------ RetryPolicy --

TEST(RetryPolicyTest, OnlyUnavailableIsRetryable) {
  EXPECT_TRUE(RetryPolicy::IsRetryable(Status::Unavailable("blip")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::NotFound("gone")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::Internal("bug")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::OK()));
}

TEST(RetryPolicyTest, BackoffIsFullJitterWithExponentialCap) {
  RetryPolicy policy;
  policy.initial_backoff_micros = 100;
  policy.max_backoff_micros = 400;
  Rng rng(1);
  for (int attempt = 1; attempt <= 8; ++attempt) {
    uint64_t cap = std::min<uint64_t>(100u << (attempt - 1), 400);
    for (int i = 0; i < 50; ++i) {
      EXPECT_LE(policy.BackoffMicros(attempt, rng), cap);
    }
  }
}

TEST(RetryPolicyTest, ZeroBackoffStaysZero) {
  RetryPolicy policy;
  policy.initial_backoff_micros = 0;
  Rng rng(1);
  EXPECT_EQ(policy.BackoffMicros(1, rng), 0u);
  EXPECT_EQ(policy.BackoffMicros(5, rng), 0u);
}

// --------------------------------------------------------- HealthRegistry --

TEST(HealthRegistryTest, TripsAfterConsecutiveFailures) {
  HealthOptions options;
  options.failure_threshold = 3;
  HealthRegistry health(options);
  EXPECT_EQ(health.state("pg"), BreakerState::kClosed);
  EXPECT_FALSE(health.ReportFailure("pg"));
  EXPECT_FALSE(health.ReportFailure("pg"));
  EXPECT_TRUE(health.ReportFailure("pg"));  // Third strike trips it.
  EXPECT_EQ(health.state("pg"), BreakerState::kOpen);
  auto excluded = health.ExcludedStores();
  ASSERT_EQ(excluded.size(), 1u);
  EXPECT_EQ(excluded[0], "pg");
}

TEST(HealthRegistryTest, SuccessResetsTheFailureCount) {
  HealthOptions options;
  options.failure_threshold = 2;
  HealthRegistry health(options);
  EXPECT_FALSE(health.ReportFailure("pg"));
  health.ReportSuccess("pg");  // Interleaved success: streak broken.
  EXPECT_FALSE(health.ReportFailure("pg"));
  EXPECT_EQ(health.state("pg"), BreakerState::kClosed);
}

TEST(HealthRegistryTest, HalfOpenProbeAfterCooldownThenCloseOrReopen) {
  HealthOptions options;
  options.failure_threshold = 1;
  options.open_cooldown_micros = 500;
  HealthRegistry health(options);
  EXPECT_TRUE(health.ReportFailure("pg"));
  EXPECT_EQ(health.state("pg"), BreakerState::kOpen);
  std::this_thread::sleep_for(std::chrono::microseconds(2000));
  // The cooldown expired: the exclusion check lets one probe through.
  EXPECT_TRUE(health.ExcludedStores().empty());
  EXPECT_EQ(health.state("pg"), BreakerState::kHalfOpen);
  // A failed probe re-opens...
  EXPECT_TRUE(health.ReportFailure("pg"));
  EXPECT_EQ(health.state("pg"), BreakerState::kOpen);
  std::this_thread::sleep_for(std::chrono::microseconds(2000));
  EXPECT_TRUE(health.ExcludedStores().empty());
  // ...and a successful one closes for good.
  health.ReportSuccess("pg");
  EXPECT_EQ(health.state("pg"), BreakerState::kClosed);
}

TEST(HealthRegistryTest, EpochBumpsOnEveryTransition) {
  HealthOptions options;
  options.failure_threshold = 1;
  options.open_cooldown_micros = 0;
  HealthRegistry health(options);
  uint64_t e0 = health.health_epoch();
  EXPECT_TRUE(health.ReportFailure("pg"));  // closed → open
  uint64_t e1 = health.health_epoch();
  EXPECT_GT(e1, e0);
  (void)health.ExcludedStores();  // open → half-open (cooldown 0)
  uint64_t e2 = health.health_epoch();
  EXPECT_GT(e2, e1);
  health.ReportSuccess("pg");  // half-open → closed
  EXPECT_GT(health.health_epoch(), e2);
}

TEST(HealthRegistryTest, StoresAreIndependent) {
  HealthOptions options;
  options.failure_threshold = 1;
  HealthRegistry health(options);
  EXPECT_TRUE(health.ReportFailure("pg"));
  EXPECT_EQ(health.state("pg"), BreakerState::kOpen);
  EXPECT_EQ(health.state("redis"), BreakerState::kClosed);
  EXPECT_EQ(health.ExcludedStores().size(), 1u);
}

}  // namespace
}  // namespace estocada::runtime
