/// Tests of sharded fragments + scatter-gather execution (catalog
/// PartitionSpec / ShardState, the translator's shard routing and
/// key-bound pruning, partition-aware write routing, catalog round-trips
/// of partitioned layouts, shard-kill failover through shard replicas,
/// per-shard self-healing, and a concurrency probe run under TSan in CI).

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "pivot/parser.h"
#include "runtime/query_server.h"
#include "stores/fault.h"
#include "workload/marketplace.h"

namespace estocada {
namespace {

using engine::Row;
using engine::Value;
using catalog::PartitionSpec;
using runtime::QueryServer;
using runtime::ServerOptions;

constexpr char kUsersQuery[] = "q(u, n, c) :- mk.users(u, n, c)";
constexpr char kUsersByKey[] = "q(n, c) :- mk.users($u, n, c)";

/// Marketplace deployment with eight relational instances ("s0".."s7"):
/// enough for 4 shards x 2 replicas, or 8 unreplicated shards.
class ScaleoutTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::MarketplaceConfig cfg;
    cfg.seed = 23;
    cfg.num_users = 40;
    cfg.num_products = 20;
    cfg.num_orders = 100;
    cfg.num_visits = 120;
    auto data = workload::GenerateMarketplace(cfg);
    ASSERT_TRUE(data.ok()) << data.status();
    data_ = std::move(*data);

    ASSERT_TRUE(sys_.RegisterSchema(data_.schema).ok());
    for (int i = 0; i < 8; ++i) {
      std::string name = "s" + std::to_string(i);
      s_[i].AttachFaultInjector(&injector_, name);
      ASSERT_TRUE(sys_.RegisterStore({name, catalog::StoreKind::kRelational,
                                      &s_[i], nullptr, nullptr, nullptr,
                                      nullptr})
                      .ok());
    }
    ASSERT_TRUE(sys_.LoadStaging(data_.staging).ok());
  }

  /// F_users hash-partitioned on u across `shards` single-store shards
  /// (stores s0..s{shards-1}).
  void DefineUsersHash(size_t shards) {
    std::vector<std::string> stores;
    for (size_t i = 0; i < shards; ++i) stores.push_back("s" + std::to_string(i));
    ASSERT_TRUE(sys_.DefinePartitionedFragment(
                        "F_users(u, n, c) :- mk.users(u, n, c)",
                        PartitionSpec::Kind::kHash, 0, stores)
                    .ok());
  }

  /// F_users hash-partitioned on u across 4 shards, each replicated on two
  /// stores: shard i lives on s{2i} (primary) and s{2i+1} (sibling).
  void DefineUsersHashReplicated() {
    std::vector<std::vector<std::string>> stores;
    for (int i = 0; i < 4; ++i) {
      stores.push_back({"s" + std::to_string(2 * i),
                        "s" + std::to_string(2 * i + 1)});
    }
    auto view = pivot::ParseQuery("F_users(u, n, c) :- mk.users(u, n, c)");
    ASSERT_TRUE(view.ok()) << view.status();
    pacb::ViewDefinition def;
    def.query = std::move(*view);
    ASSERT_TRUE(sys_.DefinePartitionedFragment(std::move(def),
                                               PartitionSpec::Kind::kHash, 0,
                                               stores)
                    .ok());
  }

  static ServerOptions FastOptions() {
    ServerOptions so;
    so.retry.max_attempts = 6;
    so.retry.initial_backoff_micros = 1;
    so.retry.max_backoff_micros = 16;
    so.health.failure_threshold = 2;
    so.health.open_cooldown_micros = 100'000;
    return so;
  }

  static std::set<std::string> Canon(const std::vector<Row>& rows) {
    std::set<std::string> out;
    for (const Row& r : rows) out.insert(engine::RowToString(r));
    return out;
  }

  const catalog::StorageDescriptor* Users() {
    auto d = sys_.catalog().GetFragment("F_users");
    EXPECT_TRUE(d.ok()) << d.status();
    return d.ok() ? *d : nullptr;
  }

  /// Checks `query_text` against the staging ground truth, directly on the
  /// system facade.
  void ExpectAnswersTruth(const std::string& query_text,
                          const std::map<std::string, Value>& params = {}) {
    auto truth = sys_.EvaluateOverStaging(query_text, params);
    ASSERT_TRUE(truth.ok()) << truth.status();
    auto got = sys_.Query(query_text, params);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(Canon(got->rows), Canon(*truth));
  }

  /// A user id (not present in the data) that the fragment's spec routes
  /// to `shard`.
  int64_t FreshUidOwnedBy(size_t shard) {
    const catalog::StorageDescriptor* desc = Users();
    EXPECT_NE(desc, nullptr);
    for (int64_t uid = 1000; uid < 1400; ++uid) {
      if (desc->partition.ShardOf(Value::Int(uid)) == shard) return uid;
    }
    ADD_FAILURE() << "no candidate uid routed to shard " << shard;
    return -1;
  }

  workload::MarketplaceData data_;
  stores::FaultInjector injector_{/*seed=*/37};
  stores::RelationalStore s_[8];
  Estocada sys_;
};

// ------------------------------------------------------- Catalog shape --

TEST_F(ScaleoutTest, DefinePartitionedCreatesShardContainers) {
  DefineUsersHash(4);
  const catalog::StorageDescriptor* desc = Users();
  ASSERT_NE(desc, nullptr);
  EXPECT_TRUE(desc->partitioned());
  EXPECT_EQ(desc->shard_count(), 4u);
  ASSERT_EQ(desc->shards.size(), 4u);
  size_t total = 0;
  for (size_t i = 0; i < 4; ++i) {
    SCOPED_TRACE(i);
    ASSERT_EQ(desc->shards[i].replicas.size(), 1u);
    std::string container = "F_users#p" + std::to_string(i);
    EXPECT_EQ(desc->shards[i].replicas[0].container, container);
    EXPECT_TRUE(s_[i].HasTable(container));
    // Every physical row sits in the shard the spec routes its key to.
    auto rows = s_[i].Scan(container);
    ASSERT_TRUE(rows.ok()) << rows.status();
    for (const Row& r : *rows) {
      EXPECT_EQ(desc->partition.ShardOf(r[0]), i) << engine::RowToString(r);
    }
    total += rows->size();
  }
  // No row lost, none duplicated: shard sizes sum to the extent.
  auto truth = sys_.EvaluateOverStaging(kUsersQuery);
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(total, truth->size());
}

TEST_F(ScaleoutTest, RejectsInvalidPartitionSpecs) {
  const char* view = "F_users(u, n, c) :- mk.users(u, n, c)";
  // Fewer than 2 shards is not a partitioning.
  EXPECT_EQ(sys_.DefinePartitionedFragment(view, PartitionSpec::Kind::kHash,
                                           0, {"s0"})
                .code(),
            StatusCode::kInvalidArgument);
  // Partition key beyond the view arity.
  EXPECT_EQ(sys_.DefinePartitionedFragment(view, PartitionSpec::Kind::kHash,
                                           7, {"s0", "s1"})
                .code(),
            StatusCode::kInvalidArgument);
  // Hash partitioning takes no split points.
  EXPECT_EQ(sys_.DefinePartitionedFragment(view, PartitionSpec::Kind::kHash,
                                           0, {"s0", "s1"},
                                           {Value::Int(10)})
                .code(),
            StatusCode::kInvalidArgument);
  // Range partitioning over N shards needs exactly N-1 split points...
  EXPECT_EQ(sys_.DefinePartitionedFragment(view, PartitionSpec::Kind::kRange,
                                           0, {"s0", "s1", "s2"},
                                           {Value::Int(10)})
                .code(),
            StatusCode::kInvalidArgument);
  // ...strictly ascending.
  EXPECT_EQ(sys_.DefinePartitionedFragment(view, PartitionSpec::Kind::kRange,
                                           0, {"s0", "s1", "s2"},
                                           {Value::Int(20), Value::Int(10)})
                .code(),
            StatusCode::kInvalidArgument);
  // A failed definition must leave no descriptor behind.
  EXPECT_FALSE(sys_.catalog().GetFragment("F_users").ok());
}

// ------------------------------------------------- Reads: scatter/prune --

TEST_F(ScaleoutTest, ScatterGatherAnswersMatchOracle) {
  DefineUsersHash(4);
  auto truth = sys_.EvaluateOverStaging(kUsersQuery);
  ASSERT_TRUE(truth.ok());
  auto got = sys_.Query(kUsersQuery);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(Canon(got->rows), Canon(*truth));
  // The plan went through the fan-out, not a single-shard scan.
  EXPECT_NE(got->plan_text.find("scatter"), std::string::npos)
      << got->plan_text;
}

TEST_F(ScaleoutTest, BoundPartitionKeyPrunesToOwningShard) {
  DefineUsersHash(4);
  const catalog::StorageDescriptor* desc = Users();
  ASSERT_NE(desc, nullptr);
  const int64_t uid = 7;
  const size_t owner = desc->partition.ShardOf(Value::Int(uid));
  auto got = sys_.Query(kUsersByKey, {{"$u", Value::Int(uid)}});
  ASSERT_TRUE(got.ok()) << got.status();
  auto truth = sys_.EvaluateOverStaging(kUsersByKey, {{"$u", Value::Int(uid)}});
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(Canon(got->rows), Canon(*truth));
  EXPECT_FALSE(got->rows.empty());
  // Only the owning shard's store did any work.
  for (size_t i = 0; i < 4; ++i) {
    SCOPED_TRACE(i);
    auto it = got->runtime_stats.per_store.find("s" + std::to_string(i));
    if (i == owner) {
      ASSERT_NE(it, got->runtime_stats.per_store.end());
      EXPECT_GT(it->second.operations, 0u);
    } else if (it != got->runtime_stats.per_store.end()) {
      EXPECT_EQ(it->second.operations, 0u);
    }
  }
}

TEST_F(ScaleoutTest, RangeBoundariesAreUpperExclusive) {
  // Shard 0: u < 10, shard 1: 10 <= u < 20, shard 2: 20 <= u < 30,
  // shard 3: u >= 30.
  ASSERT_TRUE(sys_.DefinePartitionedFragment(
                      "F_users(u, n, c) :- mk.users(u, n, c)",
                      PartitionSpec::Kind::kRange, 0,
                      {"s0", "s1", "s2", "s3"},
                      {Value::Int(10), Value::Int(20), Value::Int(30)})
                  .ok());
  const catalog::StorageDescriptor* desc = Users();
  ASSERT_NE(desc, nullptr);
  // A split value belongs to the shard it opens, one below to the shard
  // it closes.
  struct Probe { int64_t uid; size_t shard; };
  for (Probe p : {Probe{9, 0}, Probe{10, 1}, Probe{19, 1}, Probe{20, 2},
                  Probe{29, 2}, Probe{30, 3}, Probe{39, 3}}) {
    SCOPED_TRACE(p.uid);
    EXPECT_EQ(desc->partition.ShardOf(Value::Int(p.uid)), p.shard);
    // The physical row sits exactly there (uids 0..39 all exist).
    std::string container = "F_users#p" + std::to_string(p.shard);
    auto rows = s_[p.shard].Scan(container);
    ASSERT_TRUE(rows.ok());
    bool found = false;
    for (const Row& r : *rows) found |= r[0] == Value::Int(p.uid);
    EXPECT_TRUE(found);
    // And the key-bound read over the boundary value answers the truth.
    ExpectAnswersTruth(kUsersByKey, {{"$u", Value::Int(p.uid)}});
  }
  ExpectAnswersTruth(kUsersQuery);
}

TEST_F(ScaleoutTest, SkewedAndEmptyShardsStillAnswer) {
  // Every uid (0..39) falls below the first split: shard 0 takes the whole
  // extent, shards 1..3 are empty.
  ASSERT_TRUE(sys_.DefinePartitionedFragment(
                      "F_users(u, n, c) :- mk.users(u, n, c)",
                      PartitionSpec::Kind::kRange, 0,
                      {"s0", "s1", "s2", "s3"},
                      {Value::Int(1000), Value::Int(2000), Value::Int(3000)})
                  .ok());
  auto truth = sys_.EvaluateOverStaging(kUsersQuery);
  ASSERT_TRUE(truth.ok());
  auto all = s_[0].Scan("F_users#p0");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), truth->size());
  for (size_t i = 1; i < 4; ++i) {
    auto rows = s_[i].Scan("F_users#p" + std::to_string(i));
    ASSERT_TRUE(rows.ok());
    EXPECT_TRUE(rows->empty()) << "shard " << i;
  }
  // Scatter over the skew answers the truth; a key bound into an empty
  // shard answers the (empty) truth instead of erroring.
  ExpectAnswersTruth(kUsersQuery);
  auto got = sys_.Query(kUsersByKey, {{"$u", Value::Int(2500)}});
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_TRUE(got->rows.empty());
}

// ------------------------------------------------------ Catalog export --

TEST_F(ScaleoutTest, CatalogRoundTripPreservesPartitionLayout) {
  DefineUsersHashReplicated();
  ASSERT_TRUE(sys_.DefinePartitionedFragment(
                      "F_orders(o, u, p, t) :- mk.orders(o, u, p, t)",
                      PartitionSpec::Kind::kRange, 0,
                      {"s4", "s5"}, {Value::Int(50)})
                  .ok());
  std::string text = sys_.ExportCatalogJson();

  // A fresh system (same schema + staging, new store instances) imports
  // the layout: spec, shard placements, and answers all survive.
  stores::RelationalStore fresh[8];
  Estocada sys2;
  ASSERT_TRUE(sys2.RegisterSchema(data_.schema).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(sys2.RegisterStore({"s" + std::to_string(i),
                                    catalog::StoreKind::kRelational,
                                    &fresh[i], nullptr, nullptr, nullptr,
                                    nullptr})
                    .ok());
  }
  ASSERT_TRUE(sys2.LoadStaging(data_.staging).ok());
  ASSERT_TRUE(sys2.ImportCatalogJson(text).ok());

  auto imported = sys2.catalog().GetFragment("F_users");
  ASSERT_TRUE(imported.ok()) << imported.status();
  const catalog::StorageDescriptor* d = *imported;
  EXPECT_EQ(d->partition.kind, PartitionSpec::Kind::kHash);
  EXPECT_EQ(d->partition.key_position, 0u);
  EXPECT_EQ(d->partition.shards, 4u);
  ASSERT_EQ(d->shards.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    SCOPED_TRACE(i);
    ASSERT_EQ(d->shards[i].replicas.size(), 2u);
    EXPECT_EQ(d->shards[i].replicas[0].store_name,
              "s" + std::to_string(2 * i));
    EXPECT_EQ(d->shards[i].replicas[1].store_name,
              "s" + std::to_string(2 * i + 1));
    EXPECT_EQ(d->shards[i].replicas[1].container,
              "F_users#p" + std::to_string(i) + "#r1");
    EXPECT_TRUE(d->shards[i].replica_available(0));
    EXPECT_TRUE(d->shards[i].replica_available(1));
  }
  auto orders = sys2.catalog().GetFragment("F_orders");
  ASSERT_TRUE(orders.ok());
  EXPECT_EQ((*orders)->partition.kind, PartitionSpec::Kind::kRange);
  ASSERT_EQ((*orders)->partition.bounds.size(), 1u);
  EXPECT_TRUE((*orders)->partition.bounds[0] == Value::Int(50));

  auto r1 = sys_.Query(kUsersQuery);
  auto r2 = sys2.Query(kUsersQuery);
  ASSERT_TRUE(r1.ok() && r2.ok()) << r1.status() << r2.status();
  EXPECT_EQ(Canon(r1->rows), Canon(r2->rows));
  EXPECT_EQ(r1->rewriting_text, r2->rewriting_text);
}

// -------------------------------------------------------------- Writes --

TEST_F(ScaleoutTest, WritesRouteToOwningShardOnly) {
  DefineUsersHash(4);
  const catalog::StorageDescriptor* desc = Users();
  ASSERT_NE(desc, nullptr);
  const size_t owner = 2;
  const int64_t uid = FreshUidOwnedBy(owner);
  ASSERT_GE(uid, 0);
  std::vector<size_t> before;
  for (size_t i = 0; i < 4; ++i) {
    auto rows = s_[i].Scan("F_users#p" + std::to_string(i));
    ASSERT_TRUE(rows.ok());
    before.push_back(rows->size());
  }

  ASSERT_TRUE(sys_.InsertRow("mk.users", {Value::Int(uid), Value::Str("nu"),
                                          Value::Str("nc")})
                  .ok());

  for (size_t i = 0; i < 4; ++i) {
    SCOPED_TRACE(i);
    auto rows = s_[i].Scan("F_users#p" + std::to_string(i));
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->size(), before[i] + (i == owner ? 1 : 0));
    // Only the owning shard's epoch moved: untouched shards must not see
    // their replicas go stale over a write they never took.
    EXPECT_EQ(desc->shards[i].write_epoch, i == owner ? 1u : 0u);
  }
  ExpectAnswersTruth(kUsersByKey, {{"$u", Value::Int(uid)}});
  ExpectAnswersTruth(kUsersQuery);
}

// ------------------------------------------------- Failover + healing --

TEST_F(ScaleoutTest, ShardKillFailsOverToSiblingReplica) {
  DefineUsersHashReplicated();
  QueryServer server(&sys_, FastOptions());
  // Kill shard 1's primary: the sibling replica serves, nothing degrades.
  injector_.SetOutage("s2", true);
  auto truth = sys_.EvaluateOverStaging(kUsersQuery);
  ASSERT_TRUE(truth.ok());
  for (int i = 0; i < 3; ++i) {
    auto r = server.Query(kUsersQuery);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_FALSE(r->degraded_to_staging);
    EXPECT_EQ(Canon(r->rows), Canon(*truth));
  }
}

TEST_F(ScaleoutTest, UnreplicatedShardKillDegradesToStaging) {
  DefineUsersHash(4);
  QueryServer server(&sys_, FastOptions());
  injector_.SetOutage("s2", true);
  // One shard of the only fragment is gone and has no sibling: the ladder
  // bottoms out in the staging area — degraded but still correct.
  auto truth = sys_.EvaluateOverStaging(kUsersQuery);
  ASSERT_TRUE(truth.ok());
  auto r = server.Query(kUsersQuery);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->degraded_to_staging);
  EXPECT_EQ(Canon(r->rows), Canon(*truth));
}

TEST_F(ScaleoutTest, RebuildShardReplicaHealsMissedWrite) {
  DefineUsersHashReplicated();
  const catalog::StorageDescriptor* desc = Users();
  ASSERT_NE(desc, nullptr);
  const size_t shard = 0;  // Replicas on s0 (primary) and s1 (sibling).
  const int64_t uid = FreshUidOwnedBy(shard);
  ASSERT_GE(uid, 0);

  // The sibling is down across a write: the primary takes it, the sibling
  // misses it and goes stale.
  injector_.SetOutage("s1", true);
  ASSERT_TRUE(sys_.InsertRow("mk.users", {Value::Int(uid), Value::Str("nu"),
                                          Value::Str("nc")})
                  .ok());
  EXPECT_TRUE(desc->shards[shard].replica_available(0));
  EXPECT_FALSE(desc->shards[shard].replica_available(1));

  // Per-shard repair: rebuild only the stale shard replica from staging.
  injector_.SetOutage("s1", false);
  ASSERT_TRUE(sys_.RebuildShardReplicaFromStaging("F_users", shard, 1).ok());
  EXPECT_TRUE(desc->shards[shard].replica_available(1));

  // The healed replica now serves the post-write truth alone.
  injector_.SetOutage("s0", true);
  QueryServer server(&sys_, FastOptions());
  auto truth = sys_.EvaluateOverStaging(kUsersQuery);
  ASSERT_TRUE(truth.ok());
  auto r = server.Query(kUsersQuery);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->degraded_to_staging);
  EXPECT_EQ(Canon(r->rows), Canon(*truth));
}

TEST_F(ScaleoutTest, RebuildRejectsUnpartitionedAndOutOfRange) {
  DefineUsersHashReplicated();
  EXPECT_EQ(sys_.RebuildShardReplicaFromStaging("F_users", 9, 1).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(sys_.RebuildShardReplicaFromStaging("F_users", 0, 9).code(),
            StatusCode::kOutOfRange);
  ASSERT_TRUE(sys_.DefineFragment(
                      "F_orders(o, u, p, t) :- mk.orders(o, u, p, t)", "s4")
                  .ok());
  EXPECT_EQ(sys_.RebuildShardReplicaFromStaging("F_orders", 0, 0).code(),
            StatusCode::kInvalidArgument);
}

// --------------------------------------------------------- Concurrency --
// Four client threads hammer scatter and key-bound reads while the main
// thread kills and revives shard primaries. Run under TSan in CI
// (scripts/check.sh): the scatter fan-out, the breaker registry, and the
// per-store statistics sinks must stay race-free, and every answer a
// client accepts must be the ground truth.

TEST_F(ScaleoutTest, ConcurrentScatterUnderChaosConverges) {
  DefineUsersHashReplicated();
  QueryServer server(&sys_, FastOptions());
  auto truth = sys_.EvaluateOverStaging(kUsersQuery);
  ASSERT_TRUE(truth.ok());
  const std::set<std::string> want = Canon(*truth);
  auto key_truth = sys_.EvaluateOverStaging(kUsersByKey,
                                            {{"$u", Value::Int(7)}});
  ASSERT_TRUE(key_truth.ok());
  const std::set<std::string> want_key = Canon(*key_truth);

  std::atomic<int> wrong{0};
  std::atomic<int> served{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < 20; ++i) {
        if ((t + i) % 2 == 0) {
          auto r = server.Query(kUsersQuery);
          if (!r.ok()) continue;  // Chaos may exhaust the ladder; fine.
          ++served;
          if (Canon(r->rows) != want) ++wrong;
        } else {
          auto r = server.Query(kUsersByKey, {{"$u", Value::Int(7)}});
          if (!r.ok()) continue;
          ++served;
          if (Canon(r->rows) != want_key) ++wrong;
        }
      }
    });
  }
  // Rolling shard-primary kills while the clients run.
  for (int round = 0; round < 6; ++round) {
    std::string victim = "s" + std::to_string(2 * (round % 4));
    injector_.SetOutage(victim, true);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    injector_.SetOutage(victim, false);
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_GT(served.load(), 0);

  // Chaos over: the converged system serves undegraded truth again.
  server.health().Reset();
  auto r = server.Query(kUsersQuery);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->degraded_to_staging);
  EXPECT_EQ(Canon(r->rows), want);
}

}  // namespace
}  // namespace estocada
