/// Cross-cutting property suites: invariants that must hold over random
/// inputs (parser round-trips, value-order laws, chase post-conditions,
/// weak-acyclicity vs. termination agreement).

#include <gtest/gtest.h>

#include <algorithm>

#include "chase/chase.h"
#include "chase/homomorphism.h"
#include "common/rng.h"
#include "common/strings.h"
#include "engine/value.h"
#include "pivot/parser.h"

namespace estocada {
namespace {

using chase::Instance;
using engine::Value;
using pivot::Atom;
using pivot::Dependency;
using pivot::Term;

// ------------------------------------------------ parser round trips --

class ParserRoundTripProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  Term RandomTerm(Rng* rng) {
    switch (rng->Uniform(5)) {
      case 0:
        return Term::Var(StrCat("v", rng->Uniform(4)));
      case 1:
        return Term::Str(rng->AlphaString(1 + rng->Uniform(6)));
      case 2:
        return Term::Int(rng->UniformRange(-50, 50));
      case 3:
        return Term::Const(pivot::Constant::Bool(rng->Chance(0.5)));
      default:
        return Term::Var(StrCat("$p", rng->Uniform(2)));
    }
  }

  pivot::ConjunctiveQuery RandomQuery(Rng* rng) {
    pivot::ConjunctiveQuery q;
    q.name = "q";
    size_t atoms = 1 + rng->Uniform(4);
    for (size_t i = 0; i < atoms; ++i) {
      Atom a;
      a.relation = StrCat("R", rng->Uniform(3));
      size_t arity = 1 + rng->Uniform(3);
      for (size_t j = 0; j < arity; ++j) a.terms.push_back(RandomTerm(rng));
      q.body.push_back(std::move(a));
    }
    // Head: every distinct body variable (guarantees safety).
    for (const std::string& v : q.BodyVariables()) {
      q.head.push_back(Term::Var(v));
    }
    if (q.head.empty()) {
      // All-constant body: add one variable atom to stay safe+nonempty.
      q.body.push_back(Atom("R0", {Term::Var("x")}));
      q.head.push_back(Term::Var("x"));
    }
    return q;
  }
};

TEST_P(ParserRoundTripProperty, QueryToStringParsesBack) {
  Rng rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    pivot::ConjunctiveQuery q = RandomQuery(&rng);
    auto parsed = pivot::ParseQuery(q.ToString());
    ASSERT_TRUE(parsed.ok()) << q.ToString() << " -> " << parsed.status();
    EXPECT_EQ(parsed->ToString(), q.ToString());
    EXPECT_EQ(*parsed == q, true) << q.ToString();
  }
}

TEST_P(ParserRoundTripProperty, DependencyToStringParsesBack) {
  Rng rng(GetParam() ^ 0x5a5a);
  for (int i = 0; i < 40; ++i) {
    // Build a TGD from two random queries' bodies.
    pivot::Tgd tgd;
    tgd.body = RandomQuery(&rng).body;
    tgd.head = RandomQuery(&rng).body;
    std::string text = tgd.ToString();
    auto parsed = pivot::ParseDependency(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(parsed->ToString(), text);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRoundTripProperty,
                         ::testing::Values(3, 14, 159, 2653));

// ------------------------------------------------- value order laws --

class ValueOrderProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  Value RandomValue(Rng* rng, int depth = 0) {
    switch (rng->Uniform(depth >= 2 ? 5 : 6)) {
      case 0:
        return Value::Null();
      case 1:
        return Value::Bool(rng->Chance(0.5));
      case 2:
        return Value::Int(rng->UniformRange(-8, 8));
      case 3:
        return Value::Real(static_cast<double>(rng->UniformRange(-16, 16)) /
                           2.0);
      case 4:
        return Value::Str(rng->AlphaString(rng->Uniform(3)));
      default: {
        std::vector<Value> items;
        size_t n = rng->Uniform(3);
        for (size_t i = 0; i < n; ++i) {
          items.push_back(RandomValue(rng, depth + 1));
        }
        return Value::List(std::move(items));
      }
    }
  }
};

TEST_P(ValueOrderProperty, CompareIsTotalOrder) {
  Rng rng(GetParam());
  std::vector<Value> values;
  for (int i = 0; i < 24; ++i) values.push_back(RandomValue(&rng));
  for (const Value& a : values) {
    EXPECT_EQ(Value::Compare(a, a), 0) << a.ToString();
    for (const Value& b : values) {
      // Antisymmetry.
      EXPECT_EQ(Value::Compare(a, b), -Value::Compare(b, a))
          << a.ToString() << " vs " << b.ToString();
      // Hash consistency with equality.
      if (Value::Compare(a, b) == 0) {
        EXPECT_EQ(a.Hash(), b.Hash()) << a.ToString();
      }
      for (const Value& c : values) {
        // Transitivity (≤).
        if (Value::Compare(a, b) <= 0 && Value::Compare(b, c) <= 0) {
          EXPECT_LE(Value::Compare(a, c), 0)
              << a.ToString() << " " << b.ToString() << " " << c.ToString();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueOrderProperty,
                         ::testing::Values(7, 77, 777));

// ----------------------------------------- chase post-conditions --

class ChasePostconditionProperty : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ChasePostconditionProperty, WeaklyAcyclicSetsReachSatisfiedFixpoint) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    // Random dependency set over a layered signature (layers force weak
    // acyclicity: existentials only flow to strictly higher layers).
    const size_t layers = 3;
    std::vector<Dependency> deps;
    size_t ndeps = 2 + rng.Uniform(4);
    for (size_t d = 0; d < ndeps; ++d) {
      size_t src_layer = rng.Uniform(layers - 1);
      pivot::Tgd tgd;
      tgd.label = StrCat("d", d);
      Atom body(StrCat("L", src_layer), {Term::Var("x"), Term::Var("y")});
      tgd.body.push_back(body);
      Atom head(StrCat("L", src_layer + 1),
                {Term::Var("x"),
                 rng.Chance(0.5) ? Term::Var("w") : Term::Var("y")});
      tgd.head.push_back(head);
      deps.push_back(Dependency::FromTgd(std::move(tgd)));
    }
    ASSERT_TRUE(pivot::IsWeaklyAcyclic(deps));

    Instance inst;
    for (int i = 0; i < 8; ++i) {
      inst.Insert(Atom(StrCat("L", rng.Uniform(layers)),
                       {Term::Int(static_cast<int64_t>(rng.Uniform(4))),
                        Term::Int(static_cast<int64_t>(rng.Uniform(4)))}));
    }
    chase::ChaseStats stats;
    ASSERT_TRUE(RunChase(deps, &inst, {}, &stats).ok());
    EXPECT_TRUE(stats.reached_fixpoint);
    // Post-condition: no active trigger remains.
    for (const Dependency& d : deps) {
      for (const auto& m : chase::FindHomomorphisms(d.tgd.body, inst)) {
        auto head = ApplySubstitution(m.sub, d.tgd.head);
        EXPECT_TRUE(chase::ExistsHomomorphism(head, inst))
            << d.ToString();
      }
    }
  }
}

TEST_P(ChasePostconditionProperty, EgdsLeaveNoUnmergedPairs) {
  Rng rng(GetParam() ^ 0xbeef);
  for (int trial = 0; trial < 10; ++trial) {
    // Key EGD over R(k, v); random instance with nulls as values.
    auto deps = pivot::ParseDependencies("R(k, a), R(k, b) -> a = b");
    ASSERT_TRUE(deps.ok());
    Instance inst;
    for (int i = 0; i < 10; ++i) {
      inst.Insert(Atom("R", {Term::Int(static_cast<int64_t>(rng.Uniform(3))),
                             inst.FreshNull()}));
    }
    ASSERT_TRUE(RunChase(*deps, &inst).ok());
    // Post-condition: at most one live R atom per key.
    std::map<std::string, size_t> per_key;
    for (size_t id : inst.AtomsOf("R")) {
      if (inst.alive(id)) {
        per_key[inst.atom(id).terms[0].ToString()]++;
      }
    }
    for (const auto& [key, count] : per_key) {
      EXPECT_EQ(count, 1u) << "key " << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChasePostconditionProperty,
                         ::testing::Values(11, 222, 3333));

}  // namespace
}  // namespace estocada
