/// Tests of the online migration engine (src/migration): the staged state
/// machine, delta capture/replay, throttling, fault-injection retries,
/// breaker pause/resume, and — the core guarantee — that an abort from
/// *every* pre-Retired stage leaves the old layout serving correctly.

#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "migration/migration.h"
#include "pivot/parser.h"
#include "stores/fault.h"
#include "workload/marketplace.h"

namespace estocada::migration {
namespace {

using engine::Row;
using engine::Value;
using pivot::Adornment;
using runtime::QueryServer;
using runtime::ServerOptions;

/// Marketplace deployment with the five stores, the standard fragment
/// layout, and a fault injector attached to every store.
class MigrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::MarketplaceConfig cfg;
    cfg.seed = 11;
    cfg.num_users = 60;
    cfg.num_products = 25;
    cfg.num_orders = 250;
    cfg.num_visits = 400;
    auto data = workload::GenerateMarketplace(cfg);
    ASSERT_TRUE(data.ok()) << data.status();
    data_ = std::move(*data);

    relational_.AttachFaultInjector(&injector_, "postgres");
    kv_.AttachFaultInjector(&injector_, "redis");
    doc_.AttachFaultInjector(&injector_, "mongo");
    parallel_.AttachFaultInjector(&injector_, "spark");
    text_.AttachFaultInjector(&injector_, "solr");

    ASSERT_TRUE(sys_.RegisterSchema(data_.schema).ok());
    ASSERT_TRUE(sys_.RegisterStore({"postgres", catalog::StoreKind::kRelational,
                                    &relational_, nullptr, nullptr, nullptr,
                                    nullptr})
                    .ok());
    ASSERT_TRUE(sys_.RegisterStore({"postgres2",
                                    catalog::StoreKind::kRelational,
                                    &relational2_, nullptr, nullptr, nullptr,
                                    nullptr})
                    .ok());
    ASSERT_TRUE(sys_.RegisterStore({"redis", catalog::StoreKind::kKeyValue,
                                    nullptr, &kv_, nullptr, nullptr, nullptr})
                    .ok());
    ASSERT_TRUE(sys_.RegisterStore({"mongo", catalog::StoreKind::kDocument,
                                    nullptr, nullptr, &doc_, nullptr, nullptr})
                    .ok());
    ASSERT_TRUE(sys_.RegisterStore({"spark", catalog::StoreKind::kParallel,
                                    nullptr, nullptr, nullptr, &parallel_,
                                    nullptr})
                    .ok());
    ASSERT_TRUE(sys_.RegisterStore({"solr", catalog::StoreKind::kText, nullptr,
                                    nullptr, nullptr, nullptr, &text_})
                    .ok());
    ASSERT_TRUE(sys_.LoadStaging(data_.staging).ok());

    ASSERT_TRUE(sys_.DefineFragment("F_users(u, n, c) :- mk.users(u, n, c)",
                                    "postgres", {}, {0})
                    .ok());
    ASSERT_TRUE(sys_.DefineFragment(
                        "F_orders(o, u, p, t) :- mk.orders(o, u, p, t)",
                        "postgres", {}, {1, 2})
                    .ok());
    ASSERT_TRUE(sys_.DefineFragment("F_carts(u, c) :- mk.carts(u, c)", "redis",
                                    {Adornment::kInput, Adornment::kFree})
                    .ok());
    ASSERT_TRUE(sys_.DefineFragment("F_visits(u, p, d) :- mk.visits(u, p, d)",
                                    "spark", {}, {0, 1})
                    .ok());
  }

  static MigrationSpec SpecFor(const std::string& view_text,
                               const std::string& store,
                               std::vector<Adornment> adornments = {},
                               std::vector<std::string> retire = {}) {
    auto q = pivot::ParseQuery(view_text);
    EXPECT_TRUE(q.ok()) << q.status();
    MigrationSpec spec;
    spec.view.query = *q;
    spec.view.adornments = std::move(adornments);
    spec.store_name = store;
    spec.retire = std::move(retire);
    return spec;
  }

  static std::set<std::string> Canon(const std::vector<Row>& rows) {
    std::set<std::string> out;
    for (const Row& r : rows) out.insert(engine::RowToString(r));
    return out;
  }

  /// Asserts that `server` answers `query_text` exactly like the staging
  /// ground truth — the "old layout still serves correctly" check.
  void ExpectServesTruth(QueryServer* server, const std::string& query_text) {
    auto truth = sys_.EvaluateOverStaging(query_text);
    ASSERT_TRUE(truth.ok()) << truth.status();
    auto served = server->Query(query_text);
    ASSERT_TRUE(served.ok()) << served.status();
    EXPECT_EQ(Canon(served->rows), Canon(*truth));
  }

  workload::MarketplaceData data_;
  stores::FaultInjector injector_{/*seed=*/42};
  stores::RelationalStore relational_;
  stores::RelationalStore relational2_;
  stores::KeyValueStore kv_;
  stores::DocumentStore doc_;
  stores::ParallelStore parallel_{2};
  stores::TextStore text_;
  Estocada sys_;
};

constexpr char kOrdersQuery[] = "q(o, u, p, t) :- mk.orders(o, u, p, t)";
constexpr char kOrdersView[] = "F_mig(o, u, p, t) :- mk.orders(o, u, p, t)";

// ----------------------------------------------------------- Happy path --

TEST_F(MigrationTest, HappyPathMigratesCutsOverAndRetires) {
  QueryServer server(&sys_);
  // Warm the plan cache against the old layout; the cutover must
  // invalidate it.
  ExpectServesTruth(&server, kOrdersQuery);

  const uint64_t epoch_before = sys_.catalog_epoch();
  MigrationSpec spec = SpecFor(kOrdersView, "spark", {}, {"F_orders"});
  spec.index_positions = {1, 2};
  MigrationEngine engine(&server, spec);
  Status st = engine.Run();
  ASSERT_TRUE(st.ok()) << st;

  MigrationStatus status = engine.status();
  EXPECT_EQ(status.stage, MigrationStage::kRetired);
  EXPECT_TRUE(status.error.ok());
  auto truth = sys_.EvaluateOverStaging(kOrdersQuery);
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(status.metrics.rows_copied, Canon(*truth).size());
  EXPECT_GT(status.metrics.batches, 0u);
  EXPECT_GT(status.metrics.cutover_epoch, epoch_before);

  // Old fragment gone, target live and physically correct.
  EXPECT_FALSE(sys_.catalog().GetFragment("F_orders").ok());
  auto target = sys_.catalog().GetFragment("F_mig");
  ASSERT_TRUE(target.ok());
  EXPECT_FALSE((*target)->is_shadow());
  EXPECT_TRUE(sys_.VerifyFragment("F_mig").ok());

  // The (cached) query now answers from the new layout, still correctly.
  ExpectServesTruth(&server, kOrdersQuery);
}

TEST_F(MigrationTest, ShadowStaysInvisibleUntilCutover) {
  QueryServer server(&sys_);
  MigrationEngine engine(&server, SpecFor(kOrdersView, "spark"));
  ASSERT_TRUE(engine.RunUntil(MigrationStage::kVerifying).ok());
  // Mid-migration: the target exists as a shadow, the planner ignores it,
  // no epoch bump happened, and queries serve from the old layout.
  auto desc = sys_.catalog().GetFragment("F_mig");
  ASSERT_TRUE(desc.ok());
  EXPECT_TRUE((*desc)->is_shadow());
  for (const pacb::ViewDefinition& v : sys_.catalog().AllViews()) {
    EXPECT_NE(v.name(), "F_mig");
  }
  ExpectServesTruth(&server, kOrdersQuery);
  ASSERT_TRUE(engine.RunUntil(MigrationStage::kRetired).ok());
  EXPECT_FALSE((*sys_.catalog().GetFragment("F_mig"))->is_shadow());
}

// --------------------------------------------- Abort paths (every stage) --

TEST_F(MigrationTest, AbortFromEveryStageLeavesOldLayoutServing) {
  QueryServer server(&sys_);
  const uint64_t epoch_before = sys_.catalog_epoch();
  const std::vector<MigrationStage> stops = {
      MigrationStage::kPlanned, MigrationStage::kBackfilling,
      MigrationStage::kCatchingUp, MigrationStage::kVerifying,
      MigrationStage::kCutOver};
  for (MigrationStage stop : stops) {
    SCOPED_TRACE(StageName(stop));
    MigrationEngine engine(&server,
                           SpecFor(kOrdersView, "spark", {}, {"F_orders"}));
    ASSERT_TRUE(engine.RunUntil(stop).ok());
    ASSERT_TRUE(engine.Abort().ok());
    EXPECT_EQ(engine.status().stage, MigrationStage::kAborted);
    EXPECT_EQ(engine.status().error.code(), StatusCode::kAborted);

    // Rollback: no trace of the target, sources intact...
    EXPECT_FALSE(sys_.catalog().GetFragment("F_mig").ok());
    ASSERT_TRUE(sys_.catalog().GetFragment("F_orders").ok());
    // ... the old layout answers queries correctly (validated against the
    // staging truth) and its container still matches its view.
    ExpectServesTruth(&server, kOrdersQuery);
    EXPECT_TRUE(sys_.VerifyFragment("F_orders").ok());
    if (stop != MigrationStage::kCutOver) {
      // Pre-cutover the planner never saw the shadow: rolling back must
      // not have invalidated any cached plan.
      EXPECT_EQ(sys_.catalog_epoch(), epoch_before);
    } else {
      // Post-activation rollback bumps the epoch back to the old layout.
      EXPECT_GT(sys_.catalog_epoch(), epoch_before);
    }
  }
}

TEST_F(MigrationTest, AbortAfterRetireIsRejected) {
  QueryServer server(&sys_);
  MigrationEngine engine(&server, SpecFor(kOrdersView, "spark"));
  ASSERT_TRUE(engine.Run().ok());
  Status st = engine.Abort();
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.status().stage, MigrationStage::kRetired);
}

TEST_F(MigrationTest, VerificationFailureAbortsAndRollsBack) {
  QueryServer server(&sys_);
  MigrationEngine engine(&server,
                         SpecFor(kOrdersView, "postgres", {}, {"F_orders"}));
  ASSERT_TRUE(engine.RunUntil(MigrationStage::kVerifying).ok());
  // Corrupt the shadow container: a type-correct row the view over
  // staging does not contain.
  auto truth = sys_.EvaluateOverStaging(kOrdersQuery);
  ASSERT_TRUE(truth.ok() && !truth->empty());
  Row bogus = (*truth)[0];
  bogus[0] = Value::Int(99999999);
  ASSERT_TRUE(server
                  .WithAdminLock([&](Estocada* sys) {
                    return sys->AppendToShadowFragment("F_mig", {bogus});
                  })
                  .ok());
  Status st = engine.Run();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition) << st;
  EXPECT_EQ(engine.status().stage, MigrationStage::kAborted);
  EXPECT_FALSE(sys_.catalog().GetFragment("F_mig").ok());
  ASSERT_TRUE(sys_.catalog().GetFragment("F_orders").ok());
  ExpectServesTruth(&server, kOrdersQuery);
}

// --------------------------------------------------- Delta catch-up path --

TEST_F(MigrationTest, InsertDuringMigrationIsReplayedIntoTarget) {
  QueryServer server(&sys_);
  MigrationEngine engine(&server, SpecFor(kOrdersView, "spark"));
  ASSERT_TRUE(engine.RunUntil(MigrationStage::kCatchingUp).ok());
  // Backfill done; this insert lands only through the delta log.
  ASSERT_TRUE(server
                  .InsertRow("mk.orders", {Value::Int(900001), Value::Int(1),
                                           Value::Int(2), Value::Int(5)})
                  .ok());
  ASSERT_TRUE(engine.Run().ok());
  MigrationStatus status = engine.status();
  EXPECT_GE(status.metrics.deltas_captured, 1u);
  EXPECT_GE(status.metrics.deltas_replayed, 1u);
  EXPECT_GE(status.metrics.catchup_rounds, 1u);
  EXPECT_TRUE(sys_.VerifyFragment("F_mig").ok());
  ExpectServesTruth(&server, kOrdersQuery);
}

TEST_F(MigrationTest, DeleteDuringMigrationForcesRebuild) {
  QueryServer server(&sys_);
  MigrationEngine engine(&server, SpecFor(kOrdersView, "spark"));
  ASSERT_TRUE(engine.RunUntil(MigrationStage::kCatchingUp).ok());
  auto truth = sys_.EvaluateOverStaging(kOrdersQuery);
  ASSERT_TRUE(truth.ok() && !truth->empty());
  ASSERT_TRUE(server.DeleteRow("mk.orders", (*truth)[0]).ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_GE(engine.status().metrics.rebuilds, 1u);
  EXPECT_TRUE(sys_.VerifyFragment("F_mig").ok());
  ExpectServesTruth(&server, kOrdersQuery);
}

TEST_F(MigrationTest, TextTargetMigratesViaRebuild) {
  QueryServer server(&sys_);
  MigrationEngine engine(
      &server, SpecFor("F_terms2(p, w) :- mk.prodterms(p, w)", "solr",
                       {Adornment::kFree, Adornment::kInput}));
  ASSERT_TRUE(engine.Run().ok());
  MigrationStatus status = engine.status();
  EXPECT_EQ(status.stage, MigrationStage::kRetired);
  EXPECT_EQ(status.metrics.rows_copied, 0u);  // No append path to text.
  EXPECT_GE(status.metrics.rebuilds, 1u);
  EXPECT_TRUE(sys_.VerifyFragment("F_terms2").ok());
}

// ------------------------------------------------- Throttle & drop-only --

TEST_F(MigrationTest, ThrottleBoundsTheCopyRate) {
  QueryServer server(&sys_);
  MigrationOptions options;
  options.throttle.batch_rows = 16;
  options.throttle.max_rows_per_sec = 2000;
  MigrationEngine engine(&server, SpecFor(kOrdersView, "spark"), options);
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(engine.Run().ok());
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  MigrationStatus status = engine.status();
  EXPECT_GE(status.metrics.throttle_stalls, 1u);
  // 250 rows at <= 2000 rows/sec cannot finish faster than the budget.
  EXPECT_GE(elapsed,
            static_cast<double>(status.metrics.rows_copied) / 2000.0 * 0.9);
}

TEST_F(MigrationTest, DropOnlyMigrationRetiresWithoutBuilding) {
  QueryServer server(&sys_);
  MigrationSpec spec;
  spec.retire = {"F_visits"};
  ASSERT_TRUE(spec.drop_only());
  const uint64_t epoch_before = sys_.catalog_epoch();
  MigrationEngine engine(&server, spec);
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.status().stage, MigrationStage::kRetired);
  EXPECT_EQ(engine.status().metrics.rows_copied, 0u);
  EXPECT_FALSE(sys_.catalog().GetFragment("F_visits").ok());
  EXPECT_GT(sys_.catalog_epoch(), epoch_before);
  ExpectServesTruth(&server, kOrdersQuery);
}

TEST_F(MigrationTest, PlanFailsOnUnknownRetireFragment) {
  QueryServer server(&sys_);
  MigrationSpec spec;
  spec.retire = {"F_nonexistent"};
  MigrationEngine engine(&server, spec);
  Status st = engine.Run();
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.status().stage, MigrationStage::kAborted);
}

TEST(MigrationSpecTest, FromRecommendationLiftsBothActions) {
  advisor::Recommendation add;
  add.action = advisor::Recommendation::Action::kAddFragment;
  add.view.query = *pivot::ParseQuery("F_r(u, c) :- mk.carts(u, c)");
  add.store_name = "redis";
  MigrationSpec add_spec = MigrationSpec::FromRecommendation(add);
  EXPECT_FALSE(add_spec.drop_only());
  EXPECT_EQ(add_spec.store_name, "redis");
  EXPECT_TRUE(add_spec.retire.empty());

  advisor::Recommendation drop;
  drop.action = advisor::Recommendation::Action::kDropFragment;
  drop.fragment_name = "F_old";
  MigrationSpec drop_spec = MigrationSpec::FromRecommendation(drop);
  EXPECT_TRUE(drop_spec.drop_only());
  ASSERT_EQ(drop_spec.retire.size(), 1u);
  EXPECT_EQ(drop_spec.retire[0], "F_old");
}

// ------------------------------------------- Faults, retries, breakers --

TEST_F(MigrationTest, TransientTargetFaultsAreRetriedToCompletion) {
  QueryServer server(&sys_);
  // The KV append path reads (Get-merge-Put), so forced read failures hit
  // the backfill; the retry envelope must absorb them.
  injector_.FailNextReads("redis", 3);
  MigrationEngine engine(
      &server, SpecFor("F_carts2(u, c) :- mk.carts(u, c)", "redis",
                       {Adornment::kInput, Adornment::kFree}));
  Status st = engine.Run();
  ASSERT_TRUE(st.ok()) << st;
  MigrationStatus status = engine.status();
  EXPECT_EQ(status.stage, MigrationStage::kRetired);
  EXPECT_GE(status.metrics.target_retries, 1u);
  EXPECT_TRUE(sys_.VerifyFragment("F_carts2").ok());
}

TEST_F(MigrationTest, NonRetryableFaultAbortsWithRollback) {
  QueryServer server(&sys_);
  MigrationOptions options;
  options.max_target_retries = 2;
  options.retry_backoff_micros = 10;
  // A hard outage outlasting the retry budget: the migration must give up
  // and roll back, not wedge.
  injector_.SetOutage("spark", true);
  ServerOptions so;
  so.health.failure_threshold = 1000000;  // Keep the breaker out of this.
  QueryServer faulty_server(&sys_, so);
  MigrationEngine engine(&faulty_server,
                         SpecFor(kOrdersView, "spark", {}, {"F_orders"}),
                         options);
  Status st = engine.Run();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(engine.status().stage, MigrationStage::kAborted);
  injector_.SetOutage("spark", false);
  EXPECT_FALSE(sys_.catalog().GetFragment("F_mig").ok());
  ASSERT_TRUE(sys_.catalog().GetFragment("F_orders").ok());
  ExpectServesTruth(&server, kOrdersQuery);
}

TEST_F(MigrationTest, OpenBreakerPausesThenResumes) {
  ServerOptions so;
  so.health.failure_threshold = 2;
  so.health.open_cooldown_micros = 2000;
  QueryServer server(&sys_, so);
  MigrationOptions options;
  options.max_target_retries = 1000000;  // Outlast the induced outage.
  options.retry_backoff_micros = 100;
  injector_.SetOutage("redis", true);
  MigrationManager manager(&server);
  auto id = manager.Start(
      SpecFor("F_carts2(u, c) :- mk.carts(u, c)", "redis",
              {Adornment::kInput, Adornment::kFree}),
      options);
  ASSERT_TRUE(id.ok()) << id.status();
  // The failing appends trip the redis breaker; the migration must pause
  // on it instead of wedging or aborting.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    auto status = manager.GetStatus(*id);
    ASSERT_TRUE(status.ok());
    if (status->metrics.breaker_pauses >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(manager.GetStatus(*id)->metrics.breaker_pauses, 1u);
  // Store recovers: the half-open probe succeeds and the migration
  // resumes to completion.
  injector_.SetOutage("redis", false);
  auto final_status = manager.Wait(*id);
  ASSERT_TRUE(final_status.ok());
  EXPECT_EQ(final_status->stage, MigrationStage::kRetired)
      << final_status->ToString();
  EXPECT_TRUE(sys_.VerifyFragment("F_carts2").ok());
}

// -------------------------------------------------------------- Manager --

TEST_F(MigrationTest, ManagerRunsStatusAndList) {
  QueryServer server(&sys_);
  MigrationManager manager(&server);
  auto id = manager.Start(SpecFor(kOrdersView, "spark", {}, {"F_orders"}));
  ASSERT_TRUE(id.ok());
  auto final_status = manager.Wait(*id);
  ASSERT_TRUE(final_status.ok());
  EXPECT_EQ(final_status->stage, MigrationStage::kRetired);
  EXPECT_EQ(manager.List().size(), 1u);
  EXPECT_EQ(manager.GetStatus(999).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(manager.Abort(999).code(), StatusCode::kNotFound);
}

TEST_F(MigrationTest, ManagerAbortInterruptsThrottledBackfill) {
  QueryServer server(&sys_);
  MigrationOptions options;
  options.throttle.batch_rows = 8;
  options.throttle.max_rows_per_sec = 300;  // ~0.8s of backfill runway.
  MigrationManager manager(&server);
  auto id = manager.Start(SpecFor(kOrdersView, "spark", {}, {"F_orders"}),
                          options);
  ASSERT_TRUE(id.ok());
  // Let the backfill make some progress, with queries in flight.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    ExpectServesTruth(&server, kOrdersQuery);
    auto status = manager.GetStatus(*id);
    ASSERT_TRUE(status.ok());
    if (status->metrics.rows_copied > 0) break;
  }
  ASSERT_TRUE(manager.Abort(*id).ok());
  auto final_status = manager.Wait(*id);
  ASSERT_TRUE(final_status.ok());
  EXPECT_EQ(final_status->stage, MigrationStage::kAborted);
  EXPECT_FALSE(sys_.catalog().GetFragment("F_mig").ok());
  ASSERT_TRUE(sys_.catalog().GetFragment("F_orders").ok());
  ExpectServesTruth(&server, kOrdersQuery);
}

TEST_F(MigrationTest, WaitForTimesOutWithoutDisturbingTheMigration) {
  QueryServer server(&sys_);
  MigrationOptions options;
  options.throttle.batch_rows = 8;
  options.throttle.max_rows_per_sec = 300;  // ~0.8s of backfill runway.
  MigrationManager manager(&server);
  auto id = manager.Start(SpecFor(kOrdersView, "spark", {}, {"F_orders"}),
                          options);
  ASSERT_TRUE(id.ok());
  // Far shorter than the throttled backfill: the deadline must expire.
  auto timed_out = manager.WaitFor(*id, /*timeout_micros=*/1000);
  EXPECT_EQ(timed_out.status().code(), StatusCode::kUnavailable);
  // The timeout left the migration running; a full Wait still retires it.
  auto final_status = manager.Wait(*id);
  ASSERT_TRUE(final_status.ok());
  EXPECT_EQ(final_status->stage, MigrationStage::kRetired)
      << final_status->ToString();
  // Terminated migrations resolve within any bound.
  auto again = manager.WaitFor(*id, /*timeout_micros=*/1000);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->stage, MigrationStage::kRetired);
  EXPECT_EQ(manager.WaitFor(999, 1000).status().code(), StatusCode::kNotFound);
}

TEST_F(MigrationTest, CompletionCallbackFiresOnAbortBeforeWaitReturns) {
  QueryServer server(&sys_);
  MigrationOptions options;
  options.throttle.batch_rows = 8;
  options.throttle.max_rows_per_sec = 300;
  MigrationManager manager(&server);
  std::atomic<int> calls{0};
  uint64_t seen_id = 0;
  MigrationStatus seen_status;
  auto id = manager.Start(
      SpecFor(kOrdersView, "spark", {}, {"F_orders"}), options,
      [&](uint64_t done_id, const MigrationStatus& status) {
        seen_id = done_id;
        seen_status = status;
        calls.fetch_add(1, std::memory_order_release);
      });
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(manager.Abort(*id).ok());
  auto final_status = manager.Wait(*id);
  ASSERT_TRUE(final_status.ok());
  EXPECT_EQ(final_status->stage, MigrationStage::kAborted);
  // Wait returned, so the callback must already have run, exactly once,
  // with the terminal (aborted) status.
  EXPECT_EQ(calls.load(std::memory_order_acquire), 1);
  EXPECT_EQ(seen_id, *id);
  EXPECT_EQ(seen_status.stage, MigrationStage::kAborted);
}

TEST_F(MigrationTest, CompletionCallbackFiresOnSuccess) {
  QueryServer server(&sys_);
  MigrationManager manager(&server);
  std::atomic<int> calls{0};
  MigrationStatus seen_status;
  auto id = manager.Start(
      SpecFor(kOrdersView, "spark", {}, {"F_orders"}), {},
      [&](uint64_t, const MigrationStatus& status) {
        seen_status = status;
        calls.fetch_add(1, std::memory_order_release);
      });
  ASSERT_TRUE(id.ok());
  auto final_status = manager.Wait(*id);
  ASSERT_TRUE(final_status.ok());
  EXPECT_EQ(final_status->stage, MigrationStage::kRetired);
  EXPECT_EQ(calls.load(std::memory_order_acquire), 1);
  EXPECT_EQ(seen_status.stage, MigrationStage::kRetired);
}

TEST_F(MigrationTest, QueriesKeepAnsweringCorrectlyThroughoutMigration) {
  QueryServer server(&sys_);
  MigrationOptions options;
  options.throttle.batch_rows = 16;
  options.throttle.max_rows_per_sec = 2500;  // Stretch to ~100ms of runway.
  MigrationManager manager(&server);
  auto truth = sys_.EvaluateOverStaging(kOrdersQuery);
  ASSERT_TRUE(truth.ok());
  const std::set<std::string> expected = Canon(*truth);
  auto id = manager.Start(SpecFor(kOrdersView, "spark", {}, {"F_orders"}),
                          options);
  ASSERT_TRUE(id.ok());
  // Hammer the query path while the layout changes under it: every answer
  // before, during, and after the cutover must equal the staging truth.
  size_t checks = 0;
  while (true) {
    auto served = server.Query(kOrdersQuery);
    ASSERT_TRUE(served.ok()) << served.status();
    EXPECT_EQ(Canon(served->rows), expected);
    ++checks;
    auto status = manager.GetStatus(*id);
    ASSERT_TRUE(status.ok());
    if (status->stage == MigrationStage::kRetired ||
        status->stage == MigrationStage::kAborted) {
      break;
    }
  }
  EXPECT_GT(checks, 1u);
  auto final_status = manager.Wait(*id);
  ASSERT_TRUE(final_status.ok());
  EXPECT_EQ(final_status->stage, MigrationStage::kRetired)
      << final_status->ToString();
}

// ------------------------------------------- Partitioned source layouts --

TEST_F(MigrationTest, RefragmentsPartitionedFragmentUnderTraffic) {
  // Re-home F_users onto a hash-partitioned two-shard layout, then migrate
  // it back into a single document-store fragment while reads hammer the
  // scatter path: every answer before, during, and after the cutover must
  // equal the staging truth, and retirement must tear down every shard
  // container.
  ASSERT_TRUE(sys_.DropFragment("F_users").ok());
  ASSERT_TRUE(sys_.DefinePartitionedFragment(
                      "F_users(u, n, c) :- mk.users(u, n, c)",
                      catalog::PartitionSpec::Kind::kHash, 0,
                      {"postgres", "postgres2"})
                  .ok());
  QueryServer server(&sys_);
  constexpr char kUsersQuery[] = "q(u, n, c) :- mk.users(u, n, c)";
  auto truth = sys_.EvaluateOverStaging(kUsersQuery);
  ASSERT_TRUE(truth.ok());
  const std::set<std::string> expected = Canon(*truth);
  {
    auto served = server.Query(kUsersQuery);
    ASSERT_TRUE(served.ok()) << served.status();
    EXPECT_NE(served->plan_text.find("scatter"), std::string::npos)
        << served->plan_text;
  }

  MigrationOptions options;
  options.throttle.batch_rows = 8;
  options.throttle.max_rows_per_sec = 1500;
  MigrationManager manager(&server);
  auto id = manager.Start(
      SpecFor("F_mig(u, n, c) :- mk.users(u, n, c)", "mongo", {},
              {"F_users"}),
      options);
  ASSERT_TRUE(id.ok()) << id.status();
  size_t checks = 0;
  while (true) {
    auto served = server.Query(kUsersQuery);
    ASSERT_TRUE(served.ok()) << served.status();
    EXPECT_EQ(Canon(served->rows), expected);
    ++checks;
    auto status = manager.GetStatus(*id);
    ASSERT_TRUE(status.ok());
    if (status->stage == MigrationStage::kRetired ||
        status->stage == MigrationStage::kAborted) {
      break;
    }
  }
  EXPECT_GT(checks, 1u);
  auto final_status = manager.Wait(*id);
  ASSERT_TRUE(final_status.ok());
  EXPECT_EQ(final_status->stage, MigrationStage::kRetired)
      << final_status->ToString();

  // The partitioned layout is fully gone — descriptor and both shard
  // containers — and the new fragment serves without scattering.
  EXPECT_FALSE(sys_.catalog().GetFragment("F_users").ok());
  EXPECT_FALSE(relational_.HasTable("F_users#p0"));
  EXPECT_FALSE(relational2_.HasTable("F_users#p1"));
  auto served = server.Query(kUsersQuery);
  ASSERT_TRUE(served.ok()) << served.status();
  EXPECT_EQ(Canon(served->rows), expected);
  EXPECT_EQ(served->plan_text.find("scatter"), std::string::npos)
      << served->plan_text;

  // Post-cutover writes maintain the migrated fragment, not ghosts of the
  // retired shards.
  ASSERT_TRUE(sys_.InsertRow("mk.users", {Value::Int(100000),
                                          Value::Str("nu"),
                                          Value::Str("nc")})
                  .ok());
  auto after = server.Query(kUsersQuery);
  ASSERT_TRUE(after.ok()) << after.status();
  auto new_truth = sys_.EvaluateOverStaging(kUsersQuery);
  ASSERT_TRUE(new_truth.ok());
  EXPECT_EQ(Canon(after->rows), Canon(*new_truth));
}

}  // namespace
}  // namespace estocada::migration
