#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace estocada {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("table users");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "table users");
  EXPECT_EQ(s.ToString(), "NotFound: table users");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kUnsupported, StatusCode::kParseError,
        StatusCode::kChaseFailure, StatusCode::kNoRewriting,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(c), "Unknown");
  }
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto inner = []() { return Status::Unsupported("nope"); };
  auto outer = [&]() -> Status {
    ESTOCADA_RETURN_NOT_OK(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kUnsupported);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::OutOfRange("idx");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, OkStatusDegradesToInternal) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto make = []() -> Result<std::string> { return std::string("hi"); };
  auto use = [&]() -> Result<size_t> {
    ESTOCADA_ASSIGN_OR_RETURN(std::string s, make());
    return s.size();
  };
  ASSERT_TRUE(use().ok());
  EXPECT_EQ(*use(), 2u);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto make = []() -> Result<std::string> {
    return Status::ParseError("bad");
  };
  auto use = [&]() -> Result<size_t> {
    ESTOCADA_ASSIGN_OR_RETURN(std::string s, make());
    return s.size();
  };
  EXPECT_EQ(use().status().code(), StatusCode::kParseError);
}

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(4);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All values hit.
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ZipfIsSkewedTowardLowRanks) {
  Rng rng(6);
  const uint64_t n = 1000;
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) counts[rng.Zipf(n, 0.9)]++;
  // Rank 0 should be far more popular than the tail.
  int head = counts[0];
  int tail = 0;
  for (uint64_t r = n / 2; r < n; ++r) {
    auto it = counts.find(r);
    if (it != counts.end()) tail += it->second;
  }
  EXPECT_GT(head, tail / 4);
  EXPECT_GT(head, 500);
}

TEST(RngTest, ZipfStaysInRange) {
  Rng rng(8);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(rng.Zipf(50, 0.5), 50u);
}

TEST(StringsTest, Split) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, JoinAndCat) {
  std::vector<int> v{1, 2, 3};
  EXPECT_EQ(StrJoin(v, "-"), "1-2-3");
  EXPECT_EQ(StrCat("a", 1, 'b', 2.5), "a1b2.5");
  EXPECT_EQ(StrJoinMapped(v, ",", [](int x) { return x * 2; }), "2,4,6");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y\t\n"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("estocada", "est"));
  EXPECT_FALSE(StartsWith("es", "est"));
  EXPECT_TRUE(EndsWith("estocada", "cada"));
  EXPECT_FALSE(EndsWith("da", "cada"));
}

TEST(StringsTest, AsciiLower) { EXPECT_EQ(AsciiLower("AbC-9"), "abc-9"); }

TEST(HashTest, FnvIsStable) {
  // Known FNV-1a test vector.
  EXPECT_EQ(FnvHash64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(FnvHash64("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(HashTest, CombineChangesSeed) {
  size_t s1 = 1;
  size_t s2 = 1;
  HashCombine(&s1, 10);
  HashCombine(&s2, 11);
  EXPECT_NE(s1, s2);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { count.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.WaitIdle();
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace estocada
