/// Tests of the native-language front-ends (SQL / document find / key
/// lookup) and the document-native dataset support, including end-to-end
/// runs through the Estocada facade.

#include <gtest/gtest.h>

#include <set>

#include "encoding/encodings.h"
#include "estocada/estocada.h"
#include "frontend/docfind.h"
#include "common/strings.h"
#include "frontend/sql.h"

namespace estocada::frontend {
namespace {

using ::estocada::StrCat;
using engine::Row;
using engine::Value;
using pivot::Adornment;
using pivot::Schema;

Schema ShopSchema() {
  Schema s;
  auto users = encoding::RelationalEncoding("shop", "users",
                                            {"uid", "name", "city"}, {"uid"});
  auto orders = encoding::RelationalEncoding(
      "shop", "orders", {"oid", "uid", "total"}, {"oid"});
  EXPECT_TRUE(users.ok() && orders.ok());
  EXPECT_TRUE(s.Merge(*users).ok());
  EXPECT_TRUE(s.Merge(*orders).ok());
  return s;
}

// ------------------------------------------------------------- SQL --

TEST(SqlFrontendTest, SimpleSelect) {
  auto q = SqlToCq("SELECT u.name FROM shop.users u WHERE u.city = 'paris'",
                   ShopSchema());
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->ToString(),
            "q(u_name) :- shop.users(u_uid, u_name, 'paris')");
}

TEST(SqlFrontendTest, JoinWithParameterAndNumber) {
  auto q = SqlToCq(
      "SELECT u.name, o.total FROM shop.users u, shop.orders o "
      "WHERE u.uid = o.uid AND o.total = 9.5 AND u.uid = $id",
      ShopSchema());
  ASSERT_TRUE(q.ok()) << q.status();
  // The join column and the $param pin collapse into one term.
  ASSERT_EQ(q->body.size(), 2u);
  EXPECT_EQ(q->body[0].terms[0], q->body[1].terms[1]);
  EXPECT_EQ(q->body[0].terms[0], pivot::Term::Var("$id"));
  EXPECT_EQ(q->body[1].terms[2].constant().real_value(), 9.5);
}

TEST(SqlFrontendTest, KeywordsAreCaseInsensitive) {
  auto q = SqlToCq("select u.uid from shop.users u where u.name = 'ada'",
                   ShopSchema());
  ASSERT_TRUE(q.ok()) << q.status();
}

TEST(SqlFrontendTest, AsRenamesOutput) {
  auto q = SqlToCq("SELECT u.uid AS id FROM shop.users u", ShopSchema());
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->head.size(), 1u);
}

TEST(SqlFrontendTest, IntegerLiteral) {
  auto q = SqlToCq("SELECT o.total FROM shop.orders o WHERE o.oid = 42",
                   ShopSchema());
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->body[0].terms[0], pivot::Term::Int(42));
}

TEST(SqlFrontendTest, RejectsBeyondConjunctiveFragment) {
  Schema s = ShopSchema();
  EXPECT_EQ(SqlToCq("SELECT * FROM shop.users u", s).status().code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(SqlToCq("SELECT u.uid FROM shop.users u WHERE u.uid < 3", s)
                .status()
                .code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(SqlToCq("SELECT u.uid FROM shop.users u ORDER BY u.uid", s)
                .status()
                .code(),
            StatusCode::kUnsupported);
}

TEST(SqlFrontendTest, RejectsUnknownEntities) {
  Schema s = ShopSchema();
  EXPECT_EQ(SqlToCq("SELECT u.uid FROM shop.nope u", s).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(SqlToCq("SELECT u.nope FROM shop.users u", s).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      SqlToCq("SELECT x.uid FROM shop.users u WHERE x.uid = 1", s)
          .status()
          .code(),
      StatusCode::kNotFound);
}

TEST(SqlFrontendTest, ParseErrors) {
  Schema s = ShopSchema();
  EXPECT_EQ(SqlToCq("FROM shop.users u", s).status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(SqlToCq("SELECT u.uid FROM shop.users u WHERE u.uid = 'x", s)
                .status()
                .code(),
            StatusCode::kParseError);
  EXPECT_EQ(SqlToCq("SELECT uid FROM shop.users u", s).status().code(),
            StatusCode::kParseError);  // Unqualified column.
}

TEST(SqlFrontendTest, TransitiveColumnEqualities) {
  // u.uid = o.uid AND o.uid = $id: all three unify.
  auto q = SqlToCq(
      "SELECT u.name FROM shop.users u, shop.orders o "
      "WHERE u.uid = o.uid AND o.uid = $id",
      ShopSchema());
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->body[0].terms[0], pivot::Term::Var("$id"));
  EXPECT_EQ(q->body[1].terms[1], pivot::Term::Var("$id"));
}

// --------------------------------------------------------- DocFind --

Schema CatalogDocSchema() {
  Schema s;
  auto enc = encoding::DocumentEncoding(
      "mk", "products",
      {{"pid", true}, {"name", true}, {"category", true}, {"tags", false}});
  EXPECT_TRUE(enc.ok());
  EXPECT_TRUE(s.Merge(*enc).ok());
  return s;
}

TEST(DocFindTest, FilterAndReturn) {
  DocFindSpec spec;
  spec.collection = "mk.products";
  spec.filters = {{"category", "'home'"}};
  spec.returns = {"pid", "name"};
  auto q = DocFindToCq(spec, CatalogDocSchema());
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->ToString(),
            "q(docID, v_pid, v_name) :- mk.products.doc(docID), "
            "mk.products.category(docID, 'home'), "
            "mk.products.pid(docID, v_pid), "
            "mk.products.name(docID, v_name)");
}

TEST(DocFindTest, ParameterFilter) {
  DocFindSpec spec;
  spec.collection = "mk.products";
  spec.filters = {{"tags", "$tag"}};
  spec.returns = {"pid"};
  spec.include_doc_id = false;
  auto q = DocFindToCq(spec, CatalogDocSchema());
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->head.size(), 1u);
}

TEST(DocFindTest, RejectsUnknownCollectionOrPath) {
  DocFindSpec spec;
  spec.collection = "mk.nope";
  EXPECT_EQ(DocFindToCq(spec, CatalogDocSchema()).status().code(),
            StatusCode::kNotFound);
  spec.collection = "mk.products";
  spec.filters = {{"nopath", "1"}};
  EXPECT_EQ(DocFindToCq(spec, CatalogDocSchema()).status().code(),
            StatusCode::kNotFound);
}

TEST(DocFindTest, RejectsBareVariableFilter) {
  DocFindSpec spec;
  spec.collection = "mk.products";
  spec.filters = {{"category", "x"}};
  EXPECT_EQ(DocFindToCq(spec, CatalogDocSchema()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(KeyLookupTest, BuildsParameterizedLookup) {
  Schema s;
  auto enc = encoding::NestedEncoding("mk", "carts", {"uid", "cart"},
                                      {"uid"});
  ASSERT_TRUE(enc.ok());
  ASSERT_TRUE(s.Merge(*enc).ok());
  auto q = KeyLookupToCq("mk.carts", s);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->ToString(), "q(v1) :- mk.carts($key, v1)");
  EXPECT_EQ(KeyLookupToCq("mk.nope", s).status().code(),
            StatusCode::kNotFound);
}

// ------------------------------------------- end-to-end via Estocada --

class FrontendSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(sys_.RegisterSchema(ShopSchema()).ok());
    ASSERT_TRUE(sys_.RegisterDocumentCollection(
                        "shop", "reviews",
                        {{"pid", true}, {"stars", true}, {"tags", false}})
                    .ok());
    ASSERT_TRUE(sys_.RegisterStore({"pg", catalog::StoreKind::kRelational,
                                    &pg_, nullptr, nullptr, nullptr,
                                    nullptr})
                    .ok());
    ASSERT_TRUE(sys_.RegisterStore({"redis", catalog::StoreKind::kKeyValue,
                                    nullptr, &kv_, nullptr, nullptr,
                                    nullptr})
                    .ok());
    ASSERT_TRUE(sys_.RegisterStore({"mongo", catalog::StoreKind::kDocument,
                                    nullptr, nullptr, &doc_, nullptr,
                                    nullptr})
                    .ok());
    for (int u = 0; u < 40; ++u) {
      ASSERT_TRUE(sys_.LoadRow("shop.users",
                               {Value::Int(u),
                                Value::Str("u" + std::to_string(u)),
                                Value::Str(u % 2 ? "paris" : "lyon")})
                      .ok());
      ASSERT_TRUE(sys_.LoadRow("shop.orders",
                               {Value::Int(u), Value::Int(u % 10),
                                Value::Real(u * 1.5)})
                      .ok());
    }
    for (int r = 0; r < 20; ++r) {
      auto doc = json::Parse(StrCat(
          R"({"pid":)", r % 5, R"(,"stars":)", 1 + r % 5,
          R"(,"tags":["t)", r % 3, R"(","all"]})"));
      ASSERT_TRUE(doc.ok());
      auto id = sys_.LoadDocument("shop", "reviews", *doc);
      ASSERT_TRUE(id.ok()) << id.status();
    }
  }

  stores::RelationalStore pg_;
  stores::KeyValueStore kv_;
  stores::DocumentStore doc_;
  Estocada sys_;
};

TEST_F(FrontendSystemTest, SqlQueryEndToEnd) {
  ASSERT_TRUE(sys_.DefineFragment("F_users(u, n, c) :- shop.users(u, n, c)",
                                  "pg")
                  .ok());
  ASSERT_TRUE(sys_.DefineFragment("F_orders(o, u, t) :- shop.orders(o, u, t)",
                                  "pg", {}, {1})
                  .ok());
  auto r = sys_.QuerySql(
      "SELECT u.name, o.total FROM shop.users u, shop.orders o "
      "WHERE u.uid = o.uid AND u.city = 'paris'");
  ASSERT_TRUE(r.ok()) << r.status();
  // Odd order-uids {1,3,5,7,9} each match 4 orders (u, u+10, u+20, u+30).
  EXPECT_EQ(r->rows.size(), 20u);
}

TEST_F(FrontendSystemTest, SqlWithRuntimeParameter) {
  ASSERT_TRUE(sys_.DefineFragment("F_users(u, n, c) :- shop.users(u, n, c)",
                                  "pg")
                  .ok());
  auto r = sys_.QuerySql("SELECT u.name FROM shop.users u WHERE u.uid = $id",
                         {{"$id", Value::Int(7)}});
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0], Value::Str("u7"));
}

TEST_F(FrontendSystemTest, DocumentCollectionLoadsAndQueries) {
  // Place the reviews' path relations as one flat fragment per path pair
  // in the document store, then find() through ESTOCADA.
  ASSERT_TRUE(sys_.DefineFragment(
                     "F_rev(d, p, s) :- shop.reviews.doc(d), "
                     "shop.reviews.pid(d, p), shop.reviews.stars(d, s)",
                     "mongo")
                  .ok());
  frontend::DocFindSpec spec;
  spec.collection = "shop.reviews";
  spec.filters = {{"stars", "5"}};
  spec.returns = {"pid"};
  auto r = sys_.QueryDocFind(spec);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->rows.size(), 4u);  // stars = 1 + r%5 == 5 for r in {4,9,14,19}.
  // Ground truth via staging.
  auto expected = sys_.EvaluateOverStaging(
      "q(d, p) :- shop.reviews.doc(d), shop.reviews.stars(d, 5), "
      "shop.reviews.pid(d, p)");
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(r->rows.size(), expected->size());
}

TEST_F(FrontendSystemTest, MultikeyPathStagesOneRowPerElement) {
  auto rows = sys_.EvaluateOverStaging(
      "q(d) :- shop.reviews.tags(d, 'all')");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 20u);  // Every review carries the 'all' tag.
  auto t0 = sys_.EvaluateOverStaging("q(d) :- shop.reviews.tags(d, 't0')");
  ASSERT_TRUE(t0.ok());
  EXPECT_EQ(t0->size(), 7u);  // r % 3 == 0 for 0,3,...,18.
}

TEST_F(FrontendSystemTest, DuplicateDocumentIdRejected) {
  auto doc = json::Parse(R"({"_id":"r1","pid":1,"stars":3})");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(sys_.LoadDocument("shop", "reviews", *doc).ok());
  EXPECT_EQ(sys_.LoadDocument("shop", "reviews", *doc).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(sys_.LoadDocument("shop", "nope", *doc).status().code(),
            StatusCode::kNotFound);
}

TEST_F(FrontendSystemTest, KeyLookupApi) {
  // uid-keyed projection of users into the KV store.
  ASSERT_TRUE(sys_.DefineFragment("F_u(u, n, c) :- shop.users(u, n, c)",
                                  "redis",
                                  {Adornment::kInput, Adornment::kFree,
                                   Adornment::kFree})
                  .ok());
  auto r = sys_.QueryKeyLookup("shop.users", Value::Int(5));
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0], Value::Str("u5"));
  EXPECT_EQ(r->rows[0][1], Value::Str("paris"));
}

TEST_F(FrontendSystemTest, TreeDatasetStructuralQueriesThroughFragments) {
  // The paper's generic Node/Child/Desc encoding, end to end: load JSON
  // books, fragment the (tag, value) index relationally and the Desc
  // structure in the document store, then ask a structural query.
  ASSERT_TRUE(sys_.RegisterTreeDataset("lib").ok());
  auto b1 = json::Parse(
      R"({"book":{"title":"Foundation","author":{"name":"Asimov"}}})");
  auto b2 = json::Parse(
      R"({"book":{"title":"Dune","author":{"name":"Herbert"}}})");
  ASSERT_TRUE(b1.ok() && b2.ok());
  ASSERT_TRUE(sys_.LoadTreeDocument("lib", "d1", *b1).ok());
  ASSERT_TRUE(sys_.LoadTreeDocument("lib", "d2", *b2).ok());
  EXPECT_EQ(sys_.LoadTreeDocument("lib", "d1", *b1).code(),
            StatusCode::kAlreadyExists);

  ASSERT_TRUE(sys_.DefineFragment(
                     "F_tv(n, t, v) :- lib.Tag(n, t), lib.Val(n, v)", "pg",
                     {}, {1})
                  .ok());
  ASSERT_TRUE(sys_.DefineFragment("F_desc(a, d) :- lib.Desc(a, d)", "mongo")
                  .ok());
  ASSERT_TRUE(sys_.DefineFragment("F_root(d, r) :- lib.Root(d, r)", "pg")
                  .ok());

  // "Titles of documents whose tree contains an author named Asimov":
  // a structural multi-join spanning two stores.
  const char* q =
      "q(title) :- lib.Root(doc, r), lib.Desc(r, a), lib.Tag(a, 'name'), "
      "lib.Val(a, 'Asimov'), lib.Desc(r, t), lib.Tag(t, 'title'), "
      "lib.Val(t, title)";
  auto result = sys_.Query(q);
  ASSERT_TRUE(result.ok()) << result.status();
  auto expected = sys_.EvaluateOverStaging(q);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], Value::Str("Foundation"));
  EXPECT_EQ(result->rows.size(), expected->size());
  // Both stores served parts of the plan.
  EXPECT_TRUE(result->runtime_stats.per_store.count("pg"));
  EXPECT_TRUE(result->runtime_stats.per_store.count("mongo"));
}

TEST_F(FrontendSystemTest, CrossModelSqlOverDocumentData) {
  // The application writes SQL; the data lives in document-shaped path
  // relations reshaped into a relational fragment: the LAV pipeline makes
  // the combination transparent.
  ASSERT_TRUE(sys_.DefineFragment(
                     "F_rev_flat(d, p, s) :- shop.reviews.doc(d), "
                     "shop.reviews.pid(d, p), shop.reviews.stars(d, s)",
                     "pg")
                  .ok());
  frontend::DocFindSpec spec;
  spec.collection = "shop.reviews";
  spec.filters = {{"pid", "2"}};
  spec.returns = {"stars"};
  spec.include_doc_id = false;
  auto r = sys_.QueryDocFind(spec);
  ASSERT_TRUE(r.ok()) << r.status();
  // Four reviews carry pid 2 but they all have stars = 3, and CQ answers
  // are sets: one distinct row.
  EXPECT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0], Value::Int(3));
}

}  // namespace
}  // namespace estocada::frontend
