#include "json/json.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace estocada::json {
namespace {

TEST(JsonValueTest, DefaultIsNull) {
  JsonValue v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.Serialize(), "null");
}

TEST(JsonValueTest, Scalars) {
  EXPECT_EQ(JsonValue::Bool(true).Serialize(), "true");
  EXPECT_EQ(JsonValue::Bool(false).Serialize(), "false");
  EXPECT_EQ(JsonValue::Int(-7).Serialize(), "-7");
  EXPECT_EQ(JsonValue::Str("hi").Serialize(), "\"hi\"");
  EXPECT_TRUE(JsonValue::Double(1.5).is_double());
  EXPECT_DOUBLE_EQ(JsonValue::Double(1.5).as_double(), 1.5);
  EXPECT_DOUBLE_EQ(JsonValue::Int(3).as_double(), 3.0);
}

TEST(JsonValueTest, ObjectSetAndFind) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("name", JsonValue::Str("ada"));
  obj.Set("age", JsonValue::Int(36));
  ASSERT_NE(obj.Find("name"), nullptr);
  EXPECT_EQ(obj.Find("name")->string_value(), "ada");
  EXPECT_EQ(obj.Find("missing"), nullptr);
  EXPECT_EQ(obj.size(), 2u);
}

TEST(JsonValueTest, ObjectKeysSerializedSorted) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("b", JsonValue::Int(2));
  obj.Set("a", JsonValue::Int(1));
  EXPECT_EQ(obj.Serialize(), "{\"a\":1,\"b\":2}");
}

TEST(JsonValueTest, ArrayAppend) {
  JsonValue arr = JsonValue::MakeArray();
  arr.Append(JsonValue::Int(1));
  arr.Append(JsonValue::Str("x"));
  EXPECT_EQ(arr.size(), 2u);
  EXPECT_EQ(arr.Serialize(), "[1,\"x\"]");
}

TEST(JsonValueTest, FindPathNested) {
  auto r = Parse(R"({"user":{"address":{"city":"paris"},"tags":["a","b"]}})");
  ASSERT_TRUE(r.ok()) << r.status();
  const JsonValue& v = *r;
  ASSERT_NE(v.FindPath("user.address.city"), nullptr);
  EXPECT_EQ(v.FindPath("user.address.city")->string_value(), "paris");
  ASSERT_NE(v.FindPath("user.tags.1"), nullptr);
  EXPECT_EQ(v.FindPath("user.tags.1")->string_value(), "b");
  EXPECT_EQ(v.FindPath("user.tags.7"), nullptr);
  EXPECT_EQ(v.FindPath("user.zip"), nullptr);
  EXPECT_EQ(v.FindPath("user.address.city.deeper"), nullptr);
}

TEST(JsonValueTest, CopyOnWriteIsolation) {
  JsonValue a = JsonValue::MakeObject();
  a.Set("k", JsonValue::Int(1));
  JsonValue b = a;  // shares representation
  b.Set("k", JsonValue::Int(2));
  EXPECT_EQ(a.Find("k")->int_value(), 1);
  EXPECT_EQ(b.Find("k")->int_value(), 2);
}

TEST(JsonValueTest, EqualityIsDeepAndTyped) {
  auto a = Parse(R"({"x":[1,2,{"y":true}]})");
  auto b = Parse(R"({"x":[1,2,{"y":true}]})");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
  // Int 1 and double 1.0 are distinct values.
  EXPECT_NE(JsonValue::Int(1), JsonValue::Double(1.0));
}

TEST(JsonValueTest, CompareGivesTotalOrder) {
  EXPECT_LT(JsonValue::Compare(JsonValue::Int(1), JsonValue::Int(2)), 0);
  EXPECT_GT(JsonValue::Compare(JsonValue::Str("b"), JsonValue::Str("a")), 0);
  EXPECT_EQ(JsonValue::Compare(JsonValue::Null(), JsonValue::Null()), 0);
  // Kind rank orders heterogeneous values deterministically.
  EXPECT_NE(JsonValue::Compare(JsonValue::Int(1), JsonValue::Str("1")), 0);
}

TEST(JsonParseTest, Scalars) {
  EXPECT_EQ(Parse("null")->kind(), JsonKind::kNull);
  EXPECT_EQ(Parse("true")->bool_value(), true);
  EXPECT_EQ(Parse("-42")->int_value(), -42);
  EXPECT_DOUBLE_EQ(Parse("2.5e2")->double_value(), 250.0);
  EXPECT_EQ(Parse("\"a\\nb\"")->string_value(), "a\nb");
}

TEST(JsonParseTest, UnicodeEscapes) {
  auto r = Parse(R"("café")");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->string_value(), "caf\xc3\xa9");
}

TEST(JsonParseTest, NestedStructure) {
  auto r = Parse(R"({"a":[{"b":1},{"b":2}],"c":null})");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->Find("a")->array().size(), 2u);
  EXPECT_EQ(r->FindPath("a.1.b")->int_value(), 2);
}

TEST(JsonParseTest, WhitespaceTolerated) {
  auto r = Parse(" {\n\t\"a\" : [ 1 , 2 ] }\n ");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->FindPath("a.0")->int_value(), 1);
}

TEST(JsonParseTest, Errors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("[1,]").ok());
  EXPECT_FALSE(Parse("{\"a\":}").ok());
  EXPECT_FALSE(Parse("tru").ok());
  EXPECT_FALSE(Parse("1 2").ok());  // trailing content
  EXPECT_FALSE(Parse("\"unterminated").ok());
  EXPECT_FALSE(Parse("{\"a\" 1}").ok());
  for (auto bad : {"", "{", "[1,]"}) {
    EXPECT_EQ(Parse(bad).status().code(), StatusCode::kParseError);
  }
}

TEST(JsonParseTest, IntOverflowFallsBackToDouble) {
  auto r = Parse("99999999999999999999999999");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->is_double());
}

TEST(JsonParseTest, DeeplyNestedArrays) {
  std::string text;
  for (int i = 0; i < 100; ++i) text += '[';
  text += '1';
  for (int i = 0; i < 100; ++i) text += ']';
  auto r = Parse(text);
  ASSERT_TRUE(r.ok());
}

TEST(JsonRoundTripTest, SerializeParseIsIdentity) {
  const char* docs[] = {
      R"({"product":{"id":17,"name":"lamp","tags":["home","light"],"price":12.5,"instock":true}})",
      R"([])",
      R"({})",
      R"([null,0,-1,2.25,"",{"k":[]}])",
      R"({"weird key \" with quotes":"\\backslash\\"})",
  };
  for (const char* doc : docs) {
    auto v1 = Parse(doc);
    ASSERT_TRUE(v1.ok()) << doc << " -> " << v1.status();
    auto v2 = Parse(v1->Serialize());
    ASSERT_TRUE(v2.ok()) << v1->Serialize();
    EXPECT_EQ(*v1, *v2) << doc;
  }
}

/// Property: a randomly generated JSON tree round-trips through
/// Serialize+Parse (also via Pretty).
class JsonRoundTripProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  JsonValue RandomValue(Rng* rng, int depth) {
    int pick = static_cast<int>(rng->Uniform(depth >= 4 ? 5 : 7));
    switch (pick) {
      case 0:
        return JsonValue::Null();
      case 1:
        return JsonValue::Bool(rng->Chance(0.5));
      case 2:
        return JsonValue::Int(rng->UniformRange(-1000000, 1000000));
      case 3:
        return JsonValue::Double(
            static_cast<double>(rng->UniformRange(-1000, 1000)) / 8.0);
      case 4:
        return JsonValue::Str(rng->AlphaString(rng->Uniform(12)));
      case 5: {
        JsonValue arr = JsonValue::MakeArray();
        size_t n = rng->Uniform(4);
        for (size_t i = 0; i < n; ++i) {
          arr.Append(RandomValue(rng, depth + 1));
        }
        return arr;
      }
      default: {
        JsonValue obj = JsonValue::MakeObject();
        size_t n = rng->Uniform(4);
        for (size_t i = 0; i < n; ++i) {
          obj.Set(rng->AlphaString(1 + rng->Uniform(8)),
                  RandomValue(rng, depth + 1));
        }
        return obj;
      }
    }
  }
};

TEST_P(JsonRoundTripProperty, CompactRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    JsonValue v = RandomValue(&rng, 0);
    auto back = Parse(v.Serialize());
    ASSERT_TRUE(back.ok()) << v.Serialize() << " -> " << back.status();
    EXPECT_EQ(v, *back) << v.Serialize();
  }
}

TEST_P(JsonRoundTripProperty, PrettyRoundTrip) {
  Rng rng(GetParam() ^ 0xabcdef);
  for (int i = 0; i < 25; ++i) {
    JsonValue v = RandomValue(&rng, 0);
    auto back = Parse(v.Pretty());
    ASSERT_TRUE(back.ok()) << v.Pretty() << " -> " << back.status();
    EXPECT_EQ(v, *back);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripProperty,
                         ::testing::Values(1, 2, 3, 42, 1234, 99991));

}  // namespace
}  // namespace estocada::json
