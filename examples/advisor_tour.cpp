/// Demo step 4 of §IV: "given a dataset and a workload, request fragment
/// recommendations from the storage advisor, materialize them and observe
/// the impact on the selection of a query plan."
///
///   ./build/examples/advisor_tour

#include <cstdio>
#include <iostream>

#include "estocada/estocada.h"
#include "workload/marketplace.h"

using estocada::Estocada;
using estocada::Rng;
using estocada::Status;
using estocada::catalog::StoreKind;
namespace workload = estocada::workload;
namespace advisor = estocada::advisor;

namespace {

void Must(Status st) {
  if (!st.ok()) {
    std::cerr << st << "\n";
    std::exit(1);
  }
}

double RunPhase(Estocada* sys, const workload::MarketplaceData& data,
                const workload::WorkloadMix& mix, int n, uint64_t seed) {
  Rng rng(seed);
  double total = 0;
  for (int i = 0; i < n; ++i) {
    auto q = workload::DrawQuery(data, mix, &rng);
    auto r = sys->Query(q.text, q.parameters);
    if (!r.ok()) {
      std::cerr << q.text << ": " << r.status() << "\n";
      std::exit(1);
    }
    total += r->simulated_cost();
  }
  return total;
}

}  // namespace

int main() {
  workload::MarketplaceConfig cfg;
  cfg.num_users = 600;
  cfg.num_products = 150;
  cfg.num_orders = 2500;
  cfg.num_visits = 6000;
  auto data = workload::GenerateMarketplace(cfg);
  if (!data.ok()) return 1;

  estocada::stores::RelationalStore postgres;
  estocada::stores::KeyValueStore redis;
  estocada::stores::ParallelStore spark(4);

  Estocada sys;
  Must(sys.RegisterSchema(data->schema));
  Must(sys.RegisterStore({"postgres", StoreKind::kRelational, &postgres,
                          nullptr, nullptr, nullptr, nullptr}));
  Must(sys.RegisterStore({"redis", StoreKind::kKeyValue, nullptr, &redis,
                          nullptr, nullptr, nullptr}));
  Must(sys.RegisterStore({"spark", StoreKind::kParallel, nullptr, nullptr,
                          nullptr, &spark, nullptr}));
  Must(sys.LoadStaging(data->staging));

  // A deliberately naive initial layout: everything in the relational
  // store, plus one fragment nothing will ever use.
  Must(sys.DefineFragment("F_users(u, n, c) :- mk.users(u, n, c)",
                          "postgres"));
  Must(sys.DefineFragment("F_orders(o, u, p, t) :- mk.orders(o, u, p, t)",
                          "postgres"));
  Must(sys.DefineFragment(
      "F_prod(p, n, cat, pr) :- mk.products(p, n, cat, pr)", "postgres"));
  Must(sys.DefineFragment("F_carts(u, c) :- mk.carts(u, c)", "postgres"));
  Must(sys.DefineFragment("F_visits(u, p, d) :- mk.visits(u, p, d)",
                          "postgres"));
  Must(sys.DefineFragment("F_terms(p, w) :- mk.prodterms(p, w)",
                          "postgres"));
  // A second, redundant copy of the same data the workload never touches:
  // the advisor should spot and retire it.
  Must(sys.DefineFragment("F_unused(w, p) :- mk.prodterms(p, w)",
                          "postgres"));

  workload::WorkloadMix mix;
  mix.personalized_search = 0.3;  // Join-heavy phase.

  std::printf("== phase 1: run the workload on the naive layout ==\n");
  const int kQueries = 250;
  double before = RunPhase(&sys, *data, mix, kQueries, 99);
  std::printf("cost before advice: %.0f units (%d queries)\n\n", before,
              kQueries);

  std::printf("== the storage advisor's recommendations ==\n");
  advisor::AdvisorOptions opts;
  opts.min_count = 10;
  opts.min_mean_cost = 5.0;
  auto recs = sys.Advise(opts);
  for (const auto& rec : recs) {
    std::cout << "  " << rec.ToString() << "\n";
  }
  if (recs.empty()) {
    std::cout << "  (none)\n";
    return 0;
  }

  std::printf("\n== applying the recommendations ==\n");
  for (const auto& rec : recs) {
    Status st = sys.ApplyRecommendation(rec);
    std::cout << "  " << (st.ok() ? "applied" : st.ToString()) << ": "
              << rec.ToString() << "\n";
  }

  sys.ClearWorkloadLog();
  std::printf("\n== phase 2: the same workload on the advised layout ==\n");
  double after = RunPhase(&sys, *data, mix, kQueries, 99);
  std::printf("cost after advice: %.0f units  ->  gain %.1f%%\n", after,
              100.0 * (before - after) / before);

  // Show how a key query's plan changed.
  auto explained = sys.Explain(workload::MarketplaceQueries::CartByUser(),
                               {{"$uid", estocada::engine::Value::Int(2)}});
  if (explained.ok()) {
    std::cout << "\ncart lookup now uses:\n  "
              << explained->best_plan().rewriting.ToString() << "\n";
    for (const auto& d : explained->best_plan().delegated) {
      std::cout << "  delegated: " << d << "\n";
    }
  }
  return 0;
}
