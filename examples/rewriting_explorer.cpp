/// Demo steps 1–2 of §IV: pick fragments, view their specifications in
/// the internal pivot model (including the generic document-tree encoding
/// with its Child/Desc constraints), trigger a rewriting, and inspect the
/// PACB output, its translation and the executable plan.
///
///   ./build/examples/rewriting_explorer

#include <iostream>

#include "chase/chase.h"
#include "chase/homomorphism.h"
#include "encoding/encodings.h"
#include "estocada/estocada.h"
#include "pacb/naive.h"
#include "pivot/parser.h"

using estocada::Estocada;
using estocada::Status;
using estocada::catalog::StoreKind;
using estocada::engine::Value;
using estocada::pivot::Adornment;
namespace encoding = estocada::encoding;
namespace pacb = estocada::pacb;

namespace {

void Banner(const char* title) {
  std::cout << "\n==== " << title << " ====\n";
}

void Must(Status st) {
  if (!st.ok()) {
    std::cerr << st << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  // ------------------------------------------------------------------
  Banner("1. the pivot model of a document dataset (paper Sec. III)");
  // The generic tree encoding: Node/Child/Desc relations + constraints.
  auto tree_schema = encoding::DocumentTreeEncoding("cat");
  if (!tree_schema.ok()) return 1;
  std::cout << tree_schema->ToString();

  Banner("shredding a JSON document into pivot facts + chasing Desc");
  auto doc = estocada::json::Parse(
      R"({"book":{"title":"Foundation","author":{"name":"Asimov"}}})");
  auto atoms = encoding::ShredDocument("cat", "d1", *doc);
  estocada::chase::Instance inst;
  (void)inst.InsertAll(atoms);
  Must(RunChase(tree_schema->dependencies(), &inst));
  std::cout << inst.ToString();
  // A descendant query that only the Child⊆Desc axioms make answerable:
  auto q = estocada::pivot::ParseAtomList(
      "cat.Root('d1', r), cat.Desc(r, n), cat.Tag(n, 'name'), cat.Val(n, v)");
  auto matches = estocada::chase::FindHomomorphisms(*q, inst);
  std::cout << "author name found via Desc: "
            << matches[0].sub.at("v").ToString() << "\n";

  // ------------------------------------------------------------------
  Banner("2. fragments across stores, and their LAV view constraints");
  estocada::stores::RelationalStore postgres;
  estocada::stores::KeyValueStore redis;
  Estocada sys;
  auto users = encoding::RelationalEncoding("shop", "users",
                                            {"uid", "name", "city"}, {"uid"});
  auto orders = encoding::RelationalEncoding(
      "shop", "orders", {"oid", "uid", "total"}, {"oid"});
  Must(sys.RegisterSchema(*users));
  Must(sys.RegisterSchema(*orders));
  Must(sys.RegisterStore({"postgres", StoreKind::kRelational, &postgres,
                          nullptr, nullptr, nullptr, nullptr}));
  Must(sys.RegisterStore({"redis", StoreKind::kKeyValue, nullptr, &redis,
                          nullptr, nullptr, nullptr}));
  for (int u = 0; u < 100; ++u) {
    Must(sys.LoadRow("shop.users",
                     {Value::Int(u), Value::Str("u" + std::to_string(u)),
                      Value::Str(u % 3 ? "paris" : "lyon")}));
    Must(sys.LoadRow("shop.orders",
                     {Value::Int(u * 2), Value::Int(u), Value::Real(9.5)}));
    Must(sys.LoadRow("shop.orders", {Value::Int(u * 2 + 1), Value::Int(u),
                                     Value::Real(19.5)}));
  }
  Must(sys.DefineFragment("F_users(u, n, c) :- shop.users(u, n, c)",
                          "postgres"));
  Must(sys.DefineFragment("F_orders(o, u, t) :- shop.orders(o, u, t)",
                          "postgres"));
  Must(sys.DefineFragment("F_spent(u, o, t) :- shop.orders(o, u, t)", "redis",
                          {Adornment::kInput, Adornment::kFree,
                           Adornment::kFree}));
  std::cout << sys.catalog().ToString();

  std::cout << "\nLAV constraints compiled from fragment F_spent:\n";
  pacb::ViewDefinition spent_view;
  spent_view.query =
      *estocada::pivot::ParseQuery("F_spent(u, o, t) :- shop.orders(o, u, t)");
  auto vc = pacb::MakeViewConstraints(spent_view);
  std::cout << "  forward:  " << vc->forward.ToString() << "\n";
  std::cout << "  backward: " << vc->backward.ToString() << "\n";

  // ------------------------------------------------------------------
  Banner("3. rewriting a query: PACB output and the executable plan");
  const char* query =
      "q(n, t) :- shop.users(u, n, 'paris'), shop.orders(o, u, t)";
  std::cout << "application query: " << query << "\n\n";
  auto explained = sys.Explain(query);
  if (!explained.ok()) {
    std::cerr << explained.status() << "\n";
    return 1;
  }
  const auto& st = explained->rewriting_result.stats;
  std::cout << "PACB: universal plan " << st.universal_plan_atoms
            << " view atoms; " << st.query_matches
            << " query match(es) in the backchase; "
            << st.candidates_considered << " candidate(s), "
            << st.candidates_verified << " chase-verified\n\n";
  for (size_t i = 0; i < explained->plans.size(); ++i) {
    std::cout << (i == explained->best ? "* " : "  ")
              << explained->plans[i].ToString() << "\n";
  }

  // ------------------------------------------------------------------
  Banner("4. executing the chosen plan, with per-store statistics");
  auto result = sys.Query(query);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  std::cout << result->rows.size() << " rows; per-store split:\n"
            << result->runtime_stats.ToString();
  return 0;
}
