/// Polyglot front-ends: the same hybrid deployment accessed in three
/// native languages (paper §III — "each dataset is accessed through a
/// language specific to its native data model"): SQL for the relational
/// dataset, a document find() for a JSON collection, and a key-based
/// lookup; plus a GAV-style program combining rewritten queries with
/// union + aggregation in ESTOCADA's own engine. Also demonstrates
/// checkpointing the Storage Descriptor Manager as JSON.
///
///   ./build/examples/polyglot_frontends

#include <iostream>

#include "encoding/encodings.h"
#include "common/strings.h"
#include "estocada/estocada.h"

using estocada::Estocada;
using estocada::Status;
using estocada::catalog::StoreKind;
using estocada::engine::AggFn;
using estocada::engine::Value;
using estocada::pivot::Adornment;

namespace {

void Must(Status st) {
  if (!st.ok()) {
    std::cerr << st << "\n";
    std::exit(1);
  }
}

void Banner(const char* t) { std::cout << "\n==== " << t << " ====\n"; }

}  // namespace

int main() {
  estocada::stores::RelationalStore postgres;
  estocada::stores::KeyValueStore redis;
  estocada::stores::DocumentStore mongodb;

  Estocada sys;
  Must(sys.RegisterSchema(*estocada::encoding::RelationalEncoding(
      "shop", "users", {"uid", "name", "city"}, {"uid"})));
  Must(sys.RegisterSchema(*estocada::encoding::RelationalEncoding(
      "shop", "orders", {"oid", "uid", "total"}, {"oid"})));
  Must(sys.RegisterDocumentCollection(
      "shop", "reviews", {{"pid", true}, {"stars", true}, {"tags", false}}));
  Must(sys.RegisterStore({"postgres", StoreKind::kRelational, &postgres,
                          nullptr, nullptr, nullptr, nullptr}));
  Must(sys.RegisterStore({"redis", StoreKind::kKeyValue, nullptr, &redis,
                          nullptr, nullptr, nullptr}));
  Must(sys.RegisterStore({"mongodb", StoreKind::kDocument, nullptr, nullptr,
                          &mongodb, nullptr, nullptr}));

  for (int u = 0; u < 60; ++u) {
    Must(sys.LoadRow("shop.users",
                     {Value::Int(u), Value::Str("user" + std::to_string(u)),
                      Value::Str(u % 3 ? "paris" : "lyon")}));
    Must(sys.LoadRow("shop.orders", {Value::Int(u), Value::Int(u % 20),
                                     Value::Real(5.0 + u)}));
  }
  for (int r = 0; r < 30; ++r) {
    auto doc = estocada::json::Parse(estocada::StrCat(
        R"({"pid":)", r % 6, R"(,"stars":)", 1 + r % 5,
        R"(,"tags":["verified","t)", r % 4, R"("]})"));
    Must(sys.LoadDocument("shop", "reviews", *doc).status());
  }

  // Fragments: users relational, a uid-keyed profile in the KV store, and
  // the reviews reshaped into the document store.
  Must(sys.DefineFragment("F_users(u, n, c) :- shop.users(u, n, c)",
                          "postgres", {}, {0, 2}));
  Must(sys.DefineFragment("F_orders(o, u, t) :- shop.orders(o, u, t)",
                          "postgres", {}, {1}));
  Must(sys.DefineFragment("F_profile(u, n) :- shop.users(u, n, c)", "redis",
                          {Adornment::kInput, Adornment::kFree}));
  Must(sys.DefineFragment(
      "F_rev(d, p, s) :- shop.reviews.doc(d), shop.reviews.pid(d, p), "
      "shop.reviews.stars(d, s)",
      "mongodb", {}, {1}));

  Banner("SQL over the relational dataset");
  auto sql = sys.QuerySql(
      "SELECT u.name, o.total FROM shop.users u, shop.orders o "
      "WHERE u.uid = o.uid AND u.city = 'lyon' AND o.total = 5.0");
  Must(sql.status());
  std::cout << "rewriting: " << sql->rewriting_text << "\n"
            << sql->rows.size() << " row(s)\n";

  Banner("document find() over the JSON collection");
  estocada::frontend::DocFindSpec spec;
  spec.collection = "shop.reviews";
  spec.filters = {{"stars", "5"}};
  spec.returns = {"pid"};
  auto find = sys.QueryDocFind(spec);
  Must(find.status());
  std::cout << "rewriting: " << find->rewriting_text << "\n"
            << find->rows.size() << " five-star review(s)\n";

  Banner("key-based lookup API");
  auto get = sys.QueryKeyLookup("shop.users", Value::Int(7));
  Must(get.status());
  std::cout << "user 7 -> " << estocada::engine::RowToString(get->rows[0])
            << "  (served by: "
            << get->runtime_stats.per_store.begin()->first << ")\n";

  Banner("GAV program: union + aggregation on top of rewritten queries");
  Estocada::ProgramOps ops;
  ops.group_by = {1};
  ops.aggregates = {{AggFn::kCount, 0, "users"}};
  ops.order_by = {0};
  auto program = sys.QueryProgram(
      {"q(u, c) :- shop.users(u, n, c), shop.users(u, n, 'paris')",
       "q(u, c) :- shop.users(u, n, c), shop.users(u, n, 'lyon')"},
      {}, ops);
  Must(program.status());
  for (const auto& row : program->rows) {
    std::cout << "  " << estocada::engine::RowToString(row) << "\n";
  }

  Banner("checkpoint: the Storage Descriptor Manager as JSON");
  std::string checkpoint = sys.ExportCatalogJson();
  std::cout << checkpoint.substr(0, 400) << "\n... ("
            << checkpoint.size() << " bytes total)\n";
  return 0;
}
