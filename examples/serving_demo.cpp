/// Serving demo: a QueryServer in front of the marketplace deployment.
///
/// Eight client threads fire the §II workload concurrently while the
/// plan cache absorbs the repeated query shapes (PACB runs once per
/// shape, not once per call). Mid-flight, an "admin" applies a fragment
/// change through the server: the catalog epoch bumps, cached plans are
/// invalidated, and the clients never observe a stale rewriting.
///
///   ./build/examples/serving_demo

#include <iostream>
#include <thread>
#include <vector>

#include "runtime/query_server.h"
#include "workload/marketplace.h"

using estocada::Rng;
using estocada::engine::Value;
using estocada::pivot::Adornment;
using estocada::runtime::QueryServer;
using estocada::runtime::ServerOptions;

int main() {
  // ---- 1. Marketplace deployment: five stores, hybrid placement.
  estocada::workload::MarketplaceConfig cfg;
  cfg.num_users = 500;
  cfg.num_products = 150;
  cfg.num_orders = 2000;
  cfg.num_visits = 5000;
  auto data = estocada::workload::GenerateMarketplace(cfg);
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }

  estocada::stores::RelationalStore postgres;
  estocada::stores::KeyValueStore redis;
  estocada::stores::ParallelStore spark(4);
  estocada::Estocada sys;
  (void)sys.RegisterSchema(data->schema);
  (void)sys.RegisterStore({"postgres", estocada::catalog::StoreKind::kRelational,
                           &postgres, nullptr, nullptr, nullptr, nullptr});
  (void)sys.RegisterStore({"redis", estocada::catalog::StoreKind::kKeyValue,
                           nullptr, &redis, nullptr, nullptr, nullptr});
  (void)sys.RegisterStore({"spark", estocada::catalog::StoreKind::kParallel,
                           nullptr, nullptr, nullptr, &spark, nullptr});
  (void)sys.LoadStaging(data->staging);
  (void)sys.DefineFragment("F_users(u, n, c) :- mk.users(u, n, c)",
                           "postgres", {}, {0});
  (void)sys.DefineFragment("F_orders(o, u, p, t) :- mk.orders(o, u, p, t)",
                           "postgres", {}, {1});
  (void)sys.DefineFragment("F_carts(u, c) :- mk.carts(u, c)", "redis",
                           {Adornment::kInput, Adornment::kFree});

  // ---- 2. The serving runtime: catalog changes and queries both go
  // through the server, which handles locking, caching, and metrics.
  ServerOptions options;
  options.worker_threads = 8;
  QueryServer server(&sys, options);

  // ---- 3. Eight concurrent clients, each a closed loop of lookups.
  std::vector<std::thread> clients;
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&server, t] {
      Rng rng(100 + static_cast<uint64_t>(t));
      for (int i = 0; i < 50; ++i) {
        int uid = static_cast<int>(rng.Uniform(500));
        auto r = server.Query(
            estocada::workload::MarketplaceQueries::OrdersOfUser(),
            {{"$uid", Value::Int(uid)}});
        if (!r.ok()) {
          std::cerr << "client " << t << ": " << r.status() << "\n";
          return;
        }
      }
    });
  }

  // ---- 4. Admin thread: re-place the orders fragment mid-flight. The
  // epoch bump invalidates every cached plan; in-flight queries finish on
  // the old layout, later ones re-plan on the new one.
  std::thread admin([&server] {
    auto st = server.DefineFragment(
        "F_orders_by_user(u, o, p, t) :- mk.orders(o, u, p, t)", "spark",
        {}, {0});
    if (st.ok()) st = server.DropFragment("F_orders");
    if (!st.ok()) std::cerr << "admin: " << st << "\n";
  });

  for (auto& t : clients) t.join();
  admin.join();

  // ---- 5. What happened, in numbers: 400 queries, a handful of PACB
  // rewrites (one per query shape per fragment layout), the rest served
  // from the plan cache.
  std::cout << server.metrics().ToString();
  auto cache = server.cache_stats();
  std::cout << "plan-cache entries: " << cache.entries
            << " (evictions: " << cache.evictions
            << ", epoch invalidations: " << cache.invalidations << ")\n";
  return 0;
}
