/// The paper's §II motivating scenario, end to end: a large-scale online
/// marketplace whose data is spread over five heterogeneous stores, and
/// the two storage reorganizations the Datalyse team performed by hand —
/// here done by redefining fragments only, with zero application change:
///
///   release 1: catalog in SOLR, users/orders in Postgres, carts in
///              MongoDB, browsing logs in Spark;
///   release 2: carts + user profiles migrated to the key-value store
///              (the paper reports ≈20% workload gain);
///   release 3: purchases ⋈ browsing-history ⋈ catalog materialized as an
///              indexed nested relation in Spark (an extra ≈40% on the
///              personalized-search-heavy workload).
///
///   ./build/examples/marketplace_scenario

#include <cstdio>
#include <iostream>

#include "estocada/estocada.h"
#include "workload/marketplace.h"

using estocada::Estocada;
using estocada::Rng;
using estocada::Status;
using estocada::catalog::StoreKind;
using estocada::pivot::Adornment;
namespace workload = estocada::workload;

namespace {

/// Runs `n` draws of the workload mix and returns total simulated cost.
double RunWorkload(Estocada* sys, const workload::MarketplaceData& data,
                   const workload::WorkloadMix& mix, int n, uint64_t seed) {
  Rng rng(seed);
  double total = 0;
  for (int i = 0; i < n; ++i) {
    workload::QueryInstance q = workload::DrawQuery(data, mix, &rng);
    auto result = sys->Query(q.text, q.parameters);
    if (!result.ok()) {
      std::cerr << "query failed: " << q.text << ": " << result.status()
                << "\n";
      std::exit(1);
    }
    total += result->simulated_cost();
  }
  return total;
}

void Banner(const char* title) {
  std::printf("\n==== %s ====\n", title);
}

}  // namespace

int main() {
  workload::MarketplaceConfig cfg;
  cfg.num_users = 800;
  cfg.num_products = 200;
  cfg.num_orders = 3000;
  cfg.num_visits = 8000;
  auto data = workload::GenerateMarketplace(cfg);
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }

  estocada::stores::RelationalStore postgres;
  estocada::stores::KeyValueStore voldemort;
  estocada::stores::DocumentStore mongodb;
  estocada::stores::ParallelStore spark(4);
  estocada::stores::TextStore solr;

  Estocada sys;
  (void)sys.RegisterSchema(data->schema);
  (void)sys.RegisterStore({"postgres", StoreKind::kRelational, &postgres,
                           nullptr, nullptr, nullptr, nullptr});
  (void)sys.RegisterStore({"voldemort", StoreKind::kKeyValue, nullptr,
                           &voldemort, nullptr, nullptr, nullptr});
  (void)sys.RegisterStore({"mongodb", StoreKind::kDocument, nullptr, nullptr,
                           &mongodb, nullptr, nullptr});
  (void)sys.RegisterStore({"spark", StoreKind::kParallel, nullptr, nullptr,
                           nullptr, &spark, nullptr});
  (void)sys.RegisterStore({"solr", StoreKind::kText, nullptr, nullptr,
                           nullptr, nullptr, &solr});
  (void)sys.LoadStaging(data->staging);

  // ~80% key-based lookups (the "predominant queries"), a thin slice of
  // personalized search -- which nevertheless dominates cost and is the
  // bottleneck the paper describes.
  workload::WorkloadMix mix;
  mix.cart_lookup = 0.30;
  mix.user_city = 0.25;
  mix.orders_of_user = 0.20;
  mix.personalized_search = 0.13;
  mix.products_in_category = 0.12;

  // ---------------------------------------------------------- Release 1.
  Banner("release 1: first manual placement");
  auto must = [](Status st) {
    if (!st.ok()) {
      std::cerr << st << "\n";
      std::exit(1);
    }
  };
  // Postgres tables come with the usual production indexes.
  must(sys.DefineFragment("F_users(u, n, c) :- mk.users(u, n, c)",
                          "postgres", {}, {0}));
  must(sys.DefineFragment("F_orders(o, u, p, t) :- mk.orders(o, u, p, t)",
                          "postgres", {}, {1, 2}));
  must(sys.DefineFragment(
      "F_prod(p, n, cat, pr) :- mk.products(p, n, cat, pr)", "postgres", {},
      {0, 2}));
  must(sys.DefineFragment("F_carts(u, c) :- mk.carts(u, c)", "mongodb", {},
                          {0}));
  must(sys.DefineFragment("F_visits(u, p, d) :- mk.visits(u, p, d)",
                          "spark"));
  must(sys.DefineFragment("F_terms(p, w) :- mk.prodterms(p, w)", "solr",
                          {Adornment::kFree, Adornment::kInput}));
  std::cout << sys.catalog().ToString();

  const int kQueries = 300;
  double cost_r1 = RunWorkload(&sys, *data, mix, kQueries, 1);
  std::printf("release 1 workload cost: %.0f units (%d queries)\n", cost_r1,
              kQueries);

  // ---------------------------------------------------------- Release 2.
  Banner("release 2: migrate key-based fragments to the key-value store");
  // "predominant queries correspond to key-based searches" -> move carts
  // and the uid-keyed user profile into Voldemort. No application change:
  // only fragment definitions move.
  must(sys.DropFragment("F_carts"));
  must(sys.DefineFragment("F_carts(u, c) :- mk.carts(u, c)", "voldemort",
                          {Adornment::kInput, Adornment::kFree}));
  must(sys.DefineFragment("F_profile(u, n, c) :- mk.users(u, n, c)",
                          "voldemort",
                          {Adornment::kInput, Adornment::kFree,
                           Adornment::kFree}));
  double cost_r2 = RunWorkload(&sys, *data, mix, kQueries, 1);
  std::printf(
      "release 2 workload cost: %.0f units  ->  gain %.1f%% (paper: ~20%%)\n",
      cost_r2, 100.0 * (cost_r1 - cost_r2) / cost_r1);

  // ---------------------------------------------------------- Release 3.
  Banner("release 3: materialize the personalized-search join in Spark");
  must(sys.DefineFragment(
      "F_pjoin(u, cat, p, n) :- mk.orders(o, u, p, t), mk.visits(u, p, d), "
      "mk.products(p, n, cat, pr)",
      "spark",
      {Adornment::kInput, Adornment::kInput, Adornment::kFree,
       Adornment::kFree}));
  double cost_r3 = RunWorkload(&sys, *data, mix, kQueries, 1);
  std::printf(
      "release 3 workload cost: %.0f units  ->  extra gain %.1f%% "
      "(paper: ~40%%)\n",
      cost_r3, 100.0 * (cost_r2 - cost_r3) / cost_r2);

  // Show what the bottleneck query's plan became.
  auto explained = sys.Explain(
      workload::MarketplaceQueries::PersonalizedSearch(),
      {{"$uid", estocada::engine::Value::Int(1)},
       {"$cat", estocada::engine::Value::Str("cat0")}});
  if (explained.ok()) {
    std::cout << "\npersonalized search now runs as:\n"
              << explained->best_plan().ToString();
  }
  return 0;
}
