/// Autopilot demo: the self-tuning daemon converges without an operator.
///
/// The marketplace starts with carts in the document store — correct, but
/// slow for the lookup-heavy traffic the shop actually gets. An Autopilot
/// watches the server's workload log, launches an online migration of the
/// hot lookup shape onto the key-value store, re-measures the realized
/// cost after cutover, and goes quiet once the layout matches the
/// traffic. The decision log printed at the end narrates every step.
///
///   ./build/examples/autopilot_demo

#include <chrono>
#include <iostream>
#include <thread>

#include "tuner/tuner.h"
#include "workload/marketplace.h"

using estocada::engine::Value;
using estocada::migration::MigrationManager;
using estocada::runtime::QueryServer;
using estocada::tuner::Autopilot;
using estocada::tuner::AutopilotOptions;
using estocada::tuner::Decision;

int main() {
  // ---- 1. Marketplace deployment with a mis-tuned starting layout.
  estocada::workload::MarketplaceConfig cfg;
  cfg.num_users = 400;
  cfg.num_orders = 1500;
  cfg.num_visits = 3000;
  auto data = estocada::workload::GenerateMarketplace(cfg);
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }

  estocada::stores::RelationalStore postgres;
  estocada::stores::KeyValueStore redis;
  estocada::stores::DocumentStore mongodb;
  estocada::Estocada sys;
  (void)sys.RegisterSchema(data->schema);
  (void)sys.RegisterStore({"postgres",
                           estocada::catalog::StoreKind::kRelational,
                           &postgres, nullptr, nullptr, nullptr, nullptr});
  (void)sys.RegisterStore({"redis", estocada::catalog::StoreKind::kKeyValue,
                           nullptr, &redis, nullptr, nullptr, nullptr});
  (void)sys.RegisterStore({"mongodb", estocada::catalog::StoreKind::kDocument,
                           nullptr, nullptr, &mongodb, nullptr, nullptr});
  (void)sys.LoadStaging(data->staging);
  (void)sys.DefineFragment("F_users(u, n, c) :- mk.users(u, n, c)",
                           "postgres", {}, {0});
  // Carts in the document store: every lookup pays the document probe.
  (void)sys.DefineFragment("F_carts(u, c) :- mk.carts(u, c)", "mongodb", {},
                           {0});

  // ---- 2. Server + migration manager + the Autopilot daemon.
  QueryServer server(&sys);
  MigrationManager manager(&server);
  AutopilotOptions opt;
  opt.advisor.min_count = 8;       // Evidence bar: 8 sightings of a shape.
  opt.advisor.min_mean_cost = 5.0; // Ignore shapes already cheap.
  opt.tick_period_micros = 10'000;
  Autopilot pilot(&server, &manager, opt);
  pilot.Start();
  std::cout << "autopilot started; serving lookup-heavy traffic...\n";

  // ---- 3. Traffic. Nobody tells the tuner anything: it sees the same
  // workload log the advisor reads and acts on its own.
  const char* cart_q = estocada::workload::MarketplaceQueries::CartByUser();
  double before = 0;
  for (int i = 0; i < 64; ++i) {
    auto r = server.Query(cart_q, {{"$uid", Value::Int(i % 400)}});
    if (r.ok()) before += r->simulated_cost();
  }
  std::cout << "mean cart-lookup cost before tuning: " << before / 64
            << "\n";

  // Wait for the daemon to converge (launch + cutover + verification).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (pilot.metrics().completions == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  pilot.Stop();

  double after = 0;
  for (int i = 0; i < 64; ++i) {
    auto r = server.Query(cart_q, {{"$uid", Value::Int(i % 400)}});
    if (r.ok()) after += r->simulated_cost();
  }
  std::cout << "mean cart-lookup cost after tuning:  " << after / 64
            << "\n\n";

  // ---- 4. What it did, in its own words.
  std::cout << pilot.metrics().ToString() << "\n\ndecision log:\n";
  for (const Decision& d : pilot.decision_log()) {
    std::cout << "  " << d.ToString() << "\n";
  }
  return 0;
}
