/// Interactive ESTOCADA shell — the §IV "demo attendee experience":
/// inspect fragments and their pivot translations, define/drop fragments,
/// trigger rewritings and inspect the PACB output and executable plans,
/// execute with per-store statistics, and ask the storage advisor.
///
///   ./build/examples/estocada_shell           # interactive
///   echo 'query ...' | ./build/examples/estocada_shell   # scripted
///
/// Commands:
///   help
///   catalog                      stores + fragments + statistics
///   define <view> @ <store> [in=0,1] [idx=2,3]
///   drop <fragment>
///   query <cq> [; k=v ...]       rewrite, choose, execute, show stats
///   sql <select ...> [; k=v ...] the SQL front-end
///   explain <cq> [; k=v ...]     all rewritings + plans, chosen one starred
///   advise                       storage advisor recommendations
///   apply                        apply the last advise output
///   export                       catalog checkpoint as JSON
///   quit

#include <iostream>
#include <sstream>
#include <string>

#include "common/strings.h"
#include "estocada/estocada.h"
#include "pivot/parser.h"
#include "workload/marketplace.h"

namespace {

using estocada::Estocada;
using estocada::Status;
using estocada::StrCat;
using estocada::StripWhitespace;
using estocada::catalog::StoreKind;
using estocada::engine::Value;
using estocada::pivot::Adornment;

/// Parses "; uid=3 cat='cat0'" parameter suffixes. Values: integers,
/// reals, or quoted strings. Keys get the '$' prefix added.
std::map<std::string, Value> ParseParams(const std::string& text) {
  std::map<std::string, Value> params;
  std::istringstream in(text);
  std::string token;
  while (in >> token) {
    size_t eq = token.find('=');
    if (eq == std::string::npos) continue;
    std::string key = "$" + token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    if (!value.empty() && (value[0] == '\'' || value[0] == '"')) {
      std::string s = value.substr(1);
      if (!s.empty() && (s.back() == '\'' || s.back() == '"')) s.pop_back();
      params[key] = Value::Str(s);
    } else if (value.find('.') != std::string::npos) {
      params[key] = Value::Real(std::stod(value));
    } else if (!value.empty() &&
               (std::isdigit(static_cast<unsigned char>(value[0])) ||
                value[0] == '-')) {
      params[key] = Value::Int(std::stoll(value));
    } else {
      params[key] = Value::Str(value);
    }
  }
  return params;
}

/// Splits "body ; params" at the last ';'.
std::pair<std::string, std::map<std::string, Value>> SplitParams(
    const std::string& text) {
  size_t semi = text.rfind(';');
  if (semi == std::string::npos) return {text, {}};
  return {std::string(StripWhitespace(text.substr(0, semi))),
          ParseParams(text.substr(semi + 1))};
}

/// Parses "in=0,1" / "idx=2" position lists.
std::vector<size_t> ParsePositions(const std::string& spec) {
  std::vector<size_t> out;
  for (const std::string& p : estocada::StrSplit(spec, ',')) {
    if (!p.empty()) out.push_back(std::stoul(p));
  }
  return out;
}

void PrintResult(const Estocada::QueryResult& r, size_t max_rows = 10) {
  std::cout << "rewriting: " << r.rewriting_text << "\n";
  for (size_t i = 0; i < r.rows.size() && i < max_rows; ++i) {
    std::cout << "  " << estocada::engine::RowToString(r.rows[i]) << "\n";
  }
  if (r.rows.size() > max_rows) {
    std::cout << "  ... (" << r.rows.size() << " rows total)\n";
  } else {
    std::cout << "  (" << r.rows.size() << " rows)\n";
  }
  std::cout << "per-store work:\n" << r.runtime_stats.ToString();
  std::cout << r.RuntimeSplitLine() << "\n";
  std::cout << "simulated cost: " << r.simulated_cost() << " units\n";
}

constexpr const char* kHelp = R"(commands:
  catalog                          stores, fragments, statistics
  define <view> @ <store> [in=..] [idx=..]
                                   e.g. define F_c(u,c) :- mk.carts(u,c) @ redis in=0
  drop <fragment>
  query <cq> [; k=v ...]           e.g. query cart(c) :- mk.carts($uid, c) ; uid=3
  sql <select ...> [; k=v ...]
  explain <cq> [; k=v ...]
  advise / apply
  export
  quit
)";

}  // namespace

int main() {
  // The marketplace scenario dataset with all five stores registered.
  estocada::workload::MarketplaceConfig cfg;
  cfg.num_users = 400;
  cfg.num_products = 100;
  cfg.num_orders = 1500;
  cfg.num_visits = 4000;
  auto data = estocada::workload::GenerateMarketplace(cfg);
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }
  estocada::stores::RelationalStore postgres;
  estocada::stores::KeyValueStore redis;
  estocada::stores::DocumentStore mongodb;
  estocada::stores::ParallelStore spark(4);
  estocada::stores::TextStore solr;
  Estocada sys;
  (void)sys.RegisterSchema(data->schema);
  (void)sys.RegisterStore({"postgres", StoreKind::kRelational, &postgres,
                           nullptr, nullptr, nullptr, nullptr});
  (void)sys.RegisterStore({"redis", StoreKind::kKeyValue, nullptr, &redis,
                           nullptr, nullptr, nullptr});
  (void)sys.RegisterStore({"mongodb", StoreKind::kDocument, nullptr, nullptr,
                           &mongodb, nullptr, nullptr});
  (void)sys.RegisterStore({"spark", StoreKind::kParallel, nullptr, nullptr,
                           nullptr, &spark, nullptr});
  (void)sys.RegisterStore({"solr", StoreKind::kText, nullptr, nullptr,
                           nullptr, nullptr, &solr});
  (void)sys.LoadStaging(data->staging);
  // A starting layout the attendee can reshape.
  (void)sys.DefineFragment("F_users(u, n, c) :- mk.users(u, n, c)",
                           "postgres", {}, {0});
  (void)sys.DefineFragment("F_orders(o, u, p, t) :- mk.orders(o, u, p, t)",
                           "postgres", {}, {1, 2});
  (void)sys.DefineFragment(
      "F_prod(p, n, cat, pr) :- mk.products(p, n, cat, pr)", "postgres", {},
      {0, 2});
  (void)sys.DefineFragment("F_carts(u, c) :- mk.carts(u, c)", "mongodb", {},
                           {0});
  (void)sys.DefineFragment("F_visits(u, p, d) :- mk.visits(u, p, d)",
                           "spark");

  std::cout << "ESTOCADA demo shell — marketplace dataset loaded ("
            << cfg.num_users << " users, " << cfg.num_orders
            << " orders). Type 'help'.\n";

  std::vector<estocada::advisor::Recommendation> last_advice;
  std::string line;
  while (std::cout << "estocada> " << std::flush,
         std::getline(std::cin, line)) {
    std::string input(StripWhitespace(line));
    if (input.empty()) continue;
    size_t space = input.find(' ');
    std::string cmd = input.substr(0, space);
    std::string rest = space == std::string::npos
                           ? ""
                           : std::string(StripWhitespace(input.substr(space)));
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      std::cout << kHelp;
    } else if (cmd == "catalog") {
      std::cout << sys.catalog().ToString();
    } else if (cmd == "export") {
      std::cout << sys.ExportCatalogJson() << "\n";
    } else if (cmd == "define") {
      // <view> @ <store> [in=..] [idx=..]
      size_t at = rest.rfind('@');
      if (at == std::string::npos) {
        std::cout << "usage: define <view> @ <store> [in=..] [idx=..]\n";
        continue;
      }
      std::string view(StripWhitespace(rest.substr(0, at)));
      std::istringstream tail(rest.substr(at + 1));
      std::string store;
      tail >> store;
      std::vector<Adornment> adornments;
      std::vector<size_t> indexes;
      std::string opt;
      while (tail >> opt) {
        if (opt.rfind("in=", 0) == 0) {
          auto q = estocada::pivot::ParseQuery(view);
          size_t arity = q.ok() ? q->arity() : 0;
          adornments.assign(arity, Adornment::kFree);
          for (size_t p : ParsePositions(opt.substr(3))) {
            if (p < adornments.size()) adornments[p] = Adornment::kInput;
          }
        } else if (opt.rfind("idx=", 0) == 0) {
          indexes = ParsePositions(opt.substr(4));
        }
      }
      Status st = sys.DefineFragment(view, store, adornments, indexes);
      std::cout << (st.ok() ? "materialized." : st.ToString()) << "\n";
    } else if (cmd == "drop") {
      Status st = sys.DropFragment(rest);
      std::cout << (st.ok() ? "dropped." : st.ToString()) << "\n";
    } else if (cmd == "query" || cmd == "sql") {
      auto [body, params] = SplitParams(rest);
      auto r = cmd == "sql" ? sys.QuerySql(body, params)
                            : sys.Query(body, params);
      if (!r.ok()) {
        std::cout << r.status() << "\n";
      } else {
        PrintResult(*r);
      }
    } else if (cmd == "explain") {
      auto [body, params] = SplitParams(rest);
      auto ex = sys.Explain(body, params);
      if (!ex.ok()) {
        std::cout << ex.status() << "\n";
        continue;
      }
      const auto& st = ex->rewriting_result.stats;
      std::cout << "PACB: " << st.universal_plan_atoms
                << " universal-plan atoms, " << st.query_matches
                << " match(es), " << st.candidates_considered
                << " candidate(s), " << st.candidates_verified
                << " verified\n";
      for (size_t i = 0; i < ex->plans.size(); ++i) {
        std::cout << (i == ex->best ? "* " : "  ") << ex->plans[i].ToString()
                  << "\n";
      }
    } else if (cmd == "advise") {
      estocada::advisor::AdvisorOptions opts;
      opts.min_count = 5;
      opts.min_mean_cost = 5.0;
      last_advice = sys.Advise(opts);
      if (last_advice.empty()) {
        std::cout << "no recommendations (run some queries first).\n";
      }
      for (const auto& rec : last_advice) {
        std::cout << "  " << rec.ToString() << "\n";
      }
    } else if (cmd == "apply") {
      for (const auto& rec : last_advice) {
        Status st = sys.ApplyRecommendation(rec);
        std::cout << "  " << (st.ok() ? "applied" : st.ToString()) << ": "
                  << rec.ToString() << "\n";
      }
      last_advice.clear();
    } else {
      std::cout << "unknown command '" << cmd << "' — try 'help'\n";
    }
  }
  return 0;
}
