/// Quickstart: the smallest end-to-end ESTOCADA program.
///
/// One dataset with two relations, two very different stores (a
/// relational engine and a key-value store), one fragment in each, and a
/// cross-store join answered transparently: the application queries the
/// *dataset*, never the stores.
///
///   ./build/examples/quickstart

#include <iostream>

#include "encoding/encodings.h"
#include "estocada/estocada.h"

using estocada::Estocada;
using estocada::Status;
using estocada::catalog::StoreKind;
using estocada::engine::Value;
using estocada::pivot::Adornment;

int main() {
  // ---- 1. The underlying DMSs (normally: live Postgres, Redis, ...).
  estocada::stores::RelationalStore postgres;
  estocada::stores::KeyValueStore redis;

  Estocada sys;

  // ---- 2. Dataset schema in the pivot model (with key constraints).
  auto users = estocada::encoding::RelationalEncoding(
      "shop", "users", {"uid", "name", "city"}, {"uid"});
  auto carts = estocada::encoding::NestedEncoding(
      "shop", "carts", {"uid", "items"}, {"uid"});
  if (!users.ok() || !carts.ok()) return 1;
  (void)sys.RegisterSchema(*users);
  (void)sys.RegisterSchema(*carts);

  (void)sys.RegisterStore({"postgres", StoreKind::kRelational, &postgres,
                           nullptr, nullptr, nullptr, nullptr});
  (void)sys.RegisterStore({"redis", StoreKind::kKeyValue, nullptr, &redis,
                           nullptr, nullptr, nullptr});

  // ---- 3. Load application data (staged, then fragmented).
  for (int u = 0; u < 50; ++u) {
    (void)sys.LoadRow("shop.users",
                      {Value::Int(u), Value::Str("user" + std::to_string(u)),
                       Value::Str(u % 2 ? "paris" : "lyon")});
    (void)sys.LoadRow("shop.carts",
                      {Value::Int(u),
                       Value::List({Value::Int(u % 7), Value::Int(u % 3)})});
  }

  // ---- 4. Fragments: users as a table, carts as key-value pairs whose
  // key must be bound before access (a binding-pattern restriction).
  Status st = sys.DefineFragment("F_users(u, n, c) :- shop.users(u, n, c)",
                                 "postgres");
  if (!st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  st = sys.DefineFragment("F_carts(u, i) :- shop.carts(u, i)", "redis",
                          {Adornment::kInput, Adornment::kFree});
  if (!st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  std::cout << sys.catalog().ToString() << "\n";

  // ---- 5. Query the dataset: a cross-store join. ESTOCADA rewrites it
  // over the fragments (PACB), delegates the city filter to the
  // relational store, and reaches the carts with a BindJoin per user key.
  const char* query =
      "q(n, i) :- shop.users(u, n, 'paris'), shop.carts(u, i)";
  auto result = sys.Query(query);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  std::cout << "query:     " << query << "\n";
  std::cout << "rewriting: " << result->rewriting_text << "\n\n";
  std::cout << "plan:\n" << result->plan_text << "\n";
  std::cout << "first rows:\n";
  for (size_t i = 0; i < result->rows.size() && i < 5; ++i) {
    std::cout << "  " << estocada::engine::RowToString(result->rows[i])
              << "\n";
  }
  std::cout << "... " << result->rows.size() << " rows total\n\n";
  std::cout << "work split across stores:\n"
            << result->runtime_stats.ToString();
  std::cout << result->RuntimeSplitLine() << "\n";
  return 0;
}
