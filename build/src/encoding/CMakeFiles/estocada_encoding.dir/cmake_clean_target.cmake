file(REMOVE_RECURSE
  "libestocada_encoding.a"
)
