# Empty dependencies file for estocada_encoding.
# This may be replaced when dependencies are built.
