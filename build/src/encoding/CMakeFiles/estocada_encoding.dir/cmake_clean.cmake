file(REMOVE_RECURSE
  "CMakeFiles/estocada_encoding.dir/encodings.cc.o"
  "CMakeFiles/estocada_encoding.dir/encodings.cc.o.d"
  "libestocada_encoding.a"
  "libestocada_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estocada_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
