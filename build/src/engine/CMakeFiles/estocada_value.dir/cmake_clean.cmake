file(REMOVE_RECURSE
  "CMakeFiles/estocada_value.dir/value.cc.o"
  "CMakeFiles/estocada_value.dir/value.cc.o.d"
  "libestocada_value.a"
  "libestocada_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estocada_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
