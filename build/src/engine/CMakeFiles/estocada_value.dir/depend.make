# Empty dependencies file for estocada_value.
# This may be replaced when dependencies are built.
