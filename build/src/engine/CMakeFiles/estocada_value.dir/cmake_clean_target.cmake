file(REMOVE_RECURSE
  "libestocada_value.a"
)
