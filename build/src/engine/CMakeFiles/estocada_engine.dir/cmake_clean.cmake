file(REMOVE_RECURSE
  "CMakeFiles/estocada_engine.dir/expr.cc.o"
  "CMakeFiles/estocada_engine.dir/expr.cc.o.d"
  "CMakeFiles/estocada_engine.dir/operator.cc.o"
  "CMakeFiles/estocada_engine.dir/operator.cc.o.d"
  "libestocada_engine.a"
  "libestocada_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estocada_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
