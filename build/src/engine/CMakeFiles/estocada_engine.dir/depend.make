# Empty dependencies file for estocada_engine.
# This may be replaced when dependencies are built.
