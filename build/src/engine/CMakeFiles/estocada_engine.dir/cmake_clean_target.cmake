file(REMOVE_RECURSE
  "libestocada_engine.a"
)
