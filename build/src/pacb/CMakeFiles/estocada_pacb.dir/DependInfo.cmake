
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pacb/feasibility.cc" "src/pacb/CMakeFiles/estocada_pacb.dir/feasibility.cc.o" "gcc" "src/pacb/CMakeFiles/estocada_pacb.dir/feasibility.cc.o.d"
  "/root/repo/src/pacb/rewriter.cc" "src/pacb/CMakeFiles/estocada_pacb.dir/rewriter.cc.o" "gcc" "src/pacb/CMakeFiles/estocada_pacb.dir/rewriter.cc.o.d"
  "/root/repo/src/pacb/view.cc" "src/pacb/CMakeFiles/estocada_pacb.dir/view.cc.o" "gcc" "src/pacb/CMakeFiles/estocada_pacb.dir/view.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chase/CMakeFiles/estocada_chase.dir/DependInfo.cmake"
  "/root/repo/build/src/pivot/CMakeFiles/estocada_pivot.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/estocada_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
