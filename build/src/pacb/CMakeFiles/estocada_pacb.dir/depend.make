# Empty dependencies file for estocada_pacb.
# This may be replaced when dependencies are built.
