file(REMOVE_RECURSE
  "libestocada_pacb.a"
)
