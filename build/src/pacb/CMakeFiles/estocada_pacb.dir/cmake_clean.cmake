file(REMOVE_RECURSE
  "CMakeFiles/estocada_pacb.dir/feasibility.cc.o"
  "CMakeFiles/estocada_pacb.dir/feasibility.cc.o.d"
  "CMakeFiles/estocada_pacb.dir/rewriter.cc.o"
  "CMakeFiles/estocada_pacb.dir/rewriter.cc.o.d"
  "CMakeFiles/estocada_pacb.dir/view.cc.o"
  "CMakeFiles/estocada_pacb.dir/view.cc.o.d"
  "libestocada_pacb.a"
  "libestocada_pacb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estocada_pacb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
