file(REMOVE_RECURSE
  "CMakeFiles/estocada_advisor.dir/advisor.cc.o"
  "CMakeFiles/estocada_advisor.dir/advisor.cc.o.d"
  "libestocada_advisor.a"
  "libestocada_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estocada_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
