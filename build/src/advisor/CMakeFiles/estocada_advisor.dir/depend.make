# Empty dependencies file for estocada_advisor.
# This may be replaced when dependencies are built.
