file(REMOVE_RECURSE
  "libestocada_advisor.a"
)
