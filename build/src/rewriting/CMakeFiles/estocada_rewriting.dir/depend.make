# Empty dependencies file for estocada_rewriting.
# This may be replaced when dependencies are built.
