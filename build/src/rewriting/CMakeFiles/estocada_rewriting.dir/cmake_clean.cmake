file(REMOVE_RECURSE
  "CMakeFiles/estocada_rewriting.dir/cq_eval.cc.o"
  "CMakeFiles/estocada_rewriting.dir/cq_eval.cc.o.d"
  "CMakeFiles/estocada_rewriting.dir/materializer.cc.o"
  "CMakeFiles/estocada_rewriting.dir/materializer.cc.o.d"
  "CMakeFiles/estocada_rewriting.dir/planner.cc.o"
  "CMakeFiles/estocada_rewriting.dir/planner.cc.o.d"
  "CMakeFiles/estocada_rewriting.dir/translator.cc.o"
  "CMakeFiles/estocada_rewriting.dir/translator.cc.o.d"
  "libestocada_rewriting.a"
  "libestocada_rewriting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estocada_rewriting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
