
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rewriting/cq_eval.cc" "src/rewriting/CMakeFiles/estocada_rewriting.dir/cq_eval.cc.o" "gcc" "src/rewriting/CMakeFiles/estocada_rewriting.dir/cq_eval.cc.o.d"
  "/root/repo/src/rewriting/materializer.cc" "src/rewriting/CMakeFiles/estocada_rewriting.dir/materializer.cc.o" "gcc" "src/rewriting/CMakeFiles/estocada_rewriting.dir/materializer.cc.o.d"
  "/root/repo/src/rewriting/planner.cc" "src/rewriting/CMakeFiles/estocada_rewriting.dir/planner.cc.o" "gcc" "src/rewriting/CMakeFiles/estocada_rewriting.dir/planner.cc.o.d"
  "/root/repo/src/rewriting/translator.cc" "src/rewriting/CMakeFiles/estocada_rewriting.dir/translator.cc.o" "gcc" "src/rewriting/CMakeFiles/estocada_rewriting.dir/translator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/catalog/CMakeFiles/estocada_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/estocada_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/pacb/CMakeFiles/estocada_pacb.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/estocada_common.dir/DependInfo.cmake"
  "/root/repo/build/src/chase/CMakeFiles/estocada_chase.dir/DependInfo.cmake"
  "/root/repo/build/src/stores/CMakeFiles/estocada_stores.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/estocada_value.dir/DependInfo.cmake"
  "/root/repo/build/src/pivot/CMakeFiles/estocada_pivot.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/estocada_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
