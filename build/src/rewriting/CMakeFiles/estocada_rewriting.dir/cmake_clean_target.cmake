file(REMOVE_RECURSE
  "libestocada_rewriting.a"
)
