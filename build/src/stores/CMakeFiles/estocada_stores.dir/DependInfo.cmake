
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stores/document_store.cc" "src/stores/CMakeFiles/estocada_stores.dir/document_store.cc.o" "gcc" "src/stores/CMakeFiles/estocada_stores.dir/document_store.cc.o.d"
  "/root/repo/src/stores/kv_store.cc" "src/stores/CMakeFiles/estocada_stores.dir/kv_store.cc.o" "gcc" "src/stores/CMakeFiles/estocada_stores.dir/kv_store.cc.o.d"
  "/root/repo/src/stores/parallel_store.cc" "src/stores/CMakeFiles/estocada_stores.dir/parallel_store.cc.o" "gcc" "src/stores/CMakeFiles/estocada_stores.dir/parallel_store.cc.o.d"
  "/root/repo/src/stores/relational_store.cc" "src/stores/CMakeFiles/estocada_stores.dir/relational_store.cc.o" "gcc" "src/stores/CMakeFiles/estocada_stores.dir/relational_store.cc.o.d"
  "/root/repo/src/stores/store_stats.cc" "src/stores/CMakeFiles/estocada_stores.dir/store_stats.cc.o" "gcc" "src/stores/CMakeFiles/estocada_stores.dir/store_stats.cc.o.d"
  "/root/repo/src/stores/text_store.cc" "src/stores/CMakeFiles/estocada_stores.dir/text_store.cc.o" "gcc" "src/stores/CMakeFiles/estocada_stores.dir/text_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/estocada_value.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/estocada_json.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/estocada_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pivot/CMakeFiles/estocada_pivot.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
