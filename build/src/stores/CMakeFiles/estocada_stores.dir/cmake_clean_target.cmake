file(REMOVE_RECURSE
  "libestocada_stores.a"
)
