file(REMOVE_RECURSE
  "CMakeFiles/estocada_stores.dir/document_store.cc.o"
  "CMakeFiles/estocada_stores.dir/document_store.cc.o.d"
  "CMakeFiles/estocada_stores.dir/kv_store.cc.o"
  "CMakeFiles/estocada_stores.dir/kv_store.cc.o.d"
  "CMakeFiles/estocada_stores.dir/parallel_store.cc.o"
  "CMakeFiles/estocada_stores.dir/parallel_store.cc.o.d"
  "CMakeFiles/estocada_stores.dir/relational_store.cc.o"
  "CMakeFiles/estocada_stores.dir/relational_store.cc.o.d"
  "CMakeFiles/estocada_stores.dir/store_stats.cc.o"
  "CMakeFiles/estocada_stores.dir/store_stats.cc.o.d"
  "CMakeFiles/estocada_stores.dir/text_store.cc.o"
  "CMakeFiles/estocada_stores.dir/text_store.cc.o.d"
  "libestocada_stores.a"
  "libestocada_stores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estocada_stores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
