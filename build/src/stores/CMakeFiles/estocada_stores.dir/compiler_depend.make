# Empty compiler generated dependencies file for estocada_stores.
# This may be replaced when dependencies are built.
