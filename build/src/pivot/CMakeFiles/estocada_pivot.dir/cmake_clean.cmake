file(REMOVE_RECURSE
  "CMakeFiles/estocada_pivot.dir/atom.cc.o"
  "CMakeFiles/estocada_pivot.dir/atom.cc.o.d"
  "CMakeFiles/estocada_pivot.dir/dependency.cc.o"
  "CMakeFiles/estocada_pivot.dir/dependency.cc.o.d"
  "CMakeFiles/estocada_pivot.dir/parser.cc.o"
  "CMakeFiles/estocada_pivot.dir/parser.cc.o.d"
  "CMakeFiles/estocada_pivot.dir/query.cc.o"
  "CMakeFiles/estocada_pivot.dir/query.cc.o.d"
  "CMakeFiles/estocada_pivot.dir/schema.cc.o"
  "CMakeFiles/estocada_pivot.dir/schema.cc.o.d"
  "CMakeFiles/estocada_pivot.dir/term.cc.o"
  "CMakeFiles/estocada_pivot.dir/term.cc.o.d"
  "libestocada_pivot.a"
  "libestocada_pivot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estocada_pivot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
