file(REMOVE_RECURSE
  "libestocada_pivot.a"
)
