
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pivot/atom.cc" "src/pivot/CMakeFiles/estocada_pivot.dir/atom.cc.o" "gcc" "src/pivot/CMakeFiles/estocada_pivot.dir/atom.cc.o.d"
  "/root/repo/src/pivot/dependency.cc" "src/pivot/CMakeFiles/estocada_pivot.dir/dependency.cc.o" "gcc" "src/pivot/CMakeFiles/estocada_pivot.dir/dependency.cc.o.d"
  "/root/repo/src/pivot/parser.cc" "src/pivot/CMakeFiles/estocada_pivot.dir/parser.cc.o" "gcc" "src/pivot/CMakeFiles/estocada_pivot.dir/parser.cc.o.d"
  "/root/repo/src/pivot/query.cc" "src/pivot/CMakeFiles/estocada_pivot.dir/query.cc.o" "gcc" "src/pivot/CMakeFiles/estocada_pivot.dir/query.cc.o.d"
  "/root/repo/src/pivot/schema.cc" "src/pivot/CMakeFiles/estocada_pivot.dir/schema.cc.o" "gcc" "src/pivot/CMakeFiles/estocada_pivot.dir/schema.cc.o.d"
  "/root/repo/src/pivot/term.cc" "src/pivot/CMakeFiles/estocada_pivot.dir/term.cc.o" "gcc" "src/pivot/CMakeFiles/estocada_pivot.dir/term.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/estocada_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
