# Empty dependencies file for estocada_pivot.
# This may be replaced when dependencies are built.
