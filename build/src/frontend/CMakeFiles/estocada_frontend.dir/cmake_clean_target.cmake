file(REMOVE_RECURSE
  "libestocada_frontend.a"
)
