# Empty compiler generated dependencies file for estocada_frontend.
# This may be replaced when dependencies are built.
