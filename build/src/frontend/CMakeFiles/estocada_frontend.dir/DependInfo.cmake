
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frontend/docfind.cc" "src/frontend/CMakeFiles/estocada_frontend.dir/docfind.cc.o" "gcc" "src/frontend/CMakeFiles/estocada_frontend.dir/docfind.cc.o.d"
  "/root/repo/src/frontend/sql.cc" "src/frontend/CMakeFiles/estocada_frontend.dir/sql.cc.o" "gcc" "src/frontend/CMakeFiles/estocada_frontend.dir/sql.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pivot/CMakeFiles/estocada_pivot.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/estocada_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
