file(REMOVE_RECURSE
  "CMakeFiles/estocada_frontend.dir/docfind.cc.o"
  "CMakeFiles/estocada_frontend.dir/docfind.cc.o.d"
  "CMakeFiles/estocada_frontend.dir/sql.cc.o"
  "CMakeFiles/estocada_frontend.dir/sql.cc.o.d"
  "libestocada_frontend.a"
  "libestocada_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estocada_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
