file(REMOVE_RECURSE
  "libestocada_catalog.a"
)
