# Empty compiler generated dependencies file for estocada_catalog.
# This may be replaced when dependencies are built.
