file(REMOVE_RECURSE
  "CMakeFiles/estocada_catalog.dir/catalog.cc.o"
  "CMakeFiles/estocada_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/estocada_catalog.dir/serialize.cc.o"
  "CMakeFiles/estocada_catalog.dir/serialize.cc.o.d"
  "libestocada_catalog.a"
  "libestocada_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estocada_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
