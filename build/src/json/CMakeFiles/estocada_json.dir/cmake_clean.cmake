file(REMOVE_RECURSE
  "CMakeFiles/estocada_json.dir/json.cc.o"
  "CMakeFiles/estocada_json.dir/json.cc.o.d"
  "libestocada_json.a"
  "libestocada_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estocada_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
