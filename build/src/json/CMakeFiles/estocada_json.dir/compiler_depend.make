# Empty compiler generated dependencies file for estocada_json.
# This may be replaced when dependencies are built.
