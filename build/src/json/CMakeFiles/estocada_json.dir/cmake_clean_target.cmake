file(REMOVE_RECURSE
  "libestocada_json.a"
)
