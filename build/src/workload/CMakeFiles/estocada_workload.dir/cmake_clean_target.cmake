file(REMOVE_RECURSE
  "libestocada_workload.a"
)
