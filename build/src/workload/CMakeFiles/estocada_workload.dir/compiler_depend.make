# Empty compiler generated dependencies file for estocada_workload.
# This may be replaced when dependencies are built.
