file(REMOVE_RECURSE
  "CMakeFiles/estocada_workload.dir/bigdata.cc.o"
  "CMakeFiles/estocada_workload.dir/bigdata.cc.o.d"
  "CMakeFiles/estocada_workload.dir/marketplace.cc.o"
  "CMakeFiles/estocada_workload.dir/marketplace.cc.o.d"
  "libestocada_workload.a"
  "libestocada_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estocada_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
