file(REMOVE_RECURSE
  "libestocada_system.a"
)
