# Empty dependencies file for estocada_system.
# This may be replaced when dependencies are built.
