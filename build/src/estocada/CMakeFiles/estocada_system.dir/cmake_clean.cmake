file(REMOVE_RECURSE
  "CMakeFiles/estocada_system.dir/estocada.cc.o"
  "CMakeFiles/estocada_system.dir/estocada.cc.o.d"
  "libestocada_system.a"
  "libestocada_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estocada_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
