file(REMOVE_RECURSE
  "CMakeFiles/estocada_chase.dir/chase.cc.o"
  "CMakeFiles/estocada_chase.dir/chase.cc.o.d"
  "CMakeFiles/estocada_chase.dir/containment.cc.o"
  "CMakeFiles/estocada_chase.dir/containment.cc.o.d"
  "CMakeFiles/estocada_chase.dir/homomorphism.cc.o"
  "CMakeFiles/estocada_chase.dir/homomorphism.cc.o.d"
  "CMakeFiles/estocada_chase.dir/instance.cc.o"
  "CMakeFiles/estocada_chase.dir/instance.cc.o.d"
  "CMakeFiles/estocada_chase.dir/prov.cc.o"
  "CMakeFiles/estocada_chase.dir/prov.cc.o.d"
  "libestocada_chase.a"
  "libestocada_chase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estocada_chase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
