# Empty dependencies file for estocada_chase.
# This may be replaced when dependencies are built.
