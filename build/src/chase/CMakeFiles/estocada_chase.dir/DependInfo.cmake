
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chase/chase.cc" "src/chase/CMakeFiles/estocada_chase.dir/chase.cc.o" "gcc" "src/chase/CMakeFiles/estocada_chase.dir/chase.cc.o.d"
  "/root/repo/src/chase/containment.cc" "src/chase/CMakeFiles/estocada_chase.dir/containment.cc.o" "gcc" "src/chase/CMakeFiles/estocada_chase.dir/containment.cc.o.d"
  "/root/repo/src/chase/homomorphism.cc" "src/chase/CMakeFiles/estocada_chase.dir/homomorphism.cc.o" "gcc" "src/chase/CMakeFiles/estocada_chase.dir/homomorphism.cc.o.d"
  "/root/repo/src/chase/instance.cc" "src/chase/CMakeFiles/estocada_chase.dir/instance.cc.o" "gcc" "src/chase/CMakeFiles/estocada_chase.dir/instance.cc.o.d"
  "/root/repo/src/chase/prov.cc" "src/chase/CMakeFiles/estocada_chase.dir/prov.cc.o" "gcc" "src/chase/CMakeFiles/estocada_chase.dir/prov.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pivot/CMakeFiles/estocada_pivot.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/estocada_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
