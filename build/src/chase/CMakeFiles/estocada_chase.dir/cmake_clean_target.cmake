file(REMOVE_RECURSE
  "libestocada_chase.a"
)
