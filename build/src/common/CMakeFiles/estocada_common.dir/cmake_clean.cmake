file(REMOVE_RECURSE
  "CMakeFiles/estocada_common.dir/rng.cc.o"
  "CMakeFiles/estocada_common.dir/rng.cc.o.d"
  "CMakeFiles/estocada_common.dir/status.cc.o"
  "CMakeFiles/estocada_common.dir/status.cc.o.d"
  "CMakeFiles/estocada_common.dir/strings.cc.o"
  "CMakeFiles/estocada_common.dir/strings.cc.o.d"
  "CMakeFiles/estocada_common.dir/thread_pool.cc.o"
  "CMakeFiles/estocada_common.dir/thread_pool.cc.o.d"
  "libestocada_common.a"
  "libestocada_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estocada_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
