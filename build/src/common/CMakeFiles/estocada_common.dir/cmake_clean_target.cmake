file(REMOVE_RECURSE
  "libestocada_common.a"
)
