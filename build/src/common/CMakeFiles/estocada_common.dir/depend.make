# Empty dependencies file for estocada_common.
# This may be replaced when dependencies are built.
