file(REMOVE_RECURSE
  "CMakeFiles/failure_test.dir/failure_test.cc.o"
  "CMakeFiles/failure_test.dir/failure_test.cc.o.d"
  "failure_test"
  "failure_test.pdb"
  "failure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
