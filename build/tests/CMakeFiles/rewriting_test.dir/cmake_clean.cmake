file(REMOVE_RECURSE
  "CMakeFiles/rewriting_test.dir/rewriting_test.cc.o"
  "CMakeFiles/rewriting_test.dir/rewriting_test.cc.o.d"
  "rewriting_test"
  "rewriting_test.pdb"
  "rewriting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewriting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
