# Empty compiler generated dependencies file for pivot_test.
# This may be replaced when dependencies are built.
