file(REMOVE_RECURSE
  "CMakeFiles/pivot_test.dir/pivot_test.cc.o"
  "CMakeFiles/pivot_test.dir/pivot_test.cc.o.d"
  "pivot_test"
  "pivot_test.pdb"
  "pivot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
