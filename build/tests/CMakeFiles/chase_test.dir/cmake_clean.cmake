file(REMOVE_RECURSE
  "CMakeFiles/chase_test.dir/chase_test.cc.o"
  "CMakeFiles/chase_test.dir/chase_test.cc.o.d"
  "chase_test"
  "chase_test.pdb"
  "chase_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
