# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/pivot_test[1]_include.cmake")
include("/root/repo/build/tests/chase_test[1]_include.cmake")
include("/root/repo/build/tests/pacb_test[1]_include.cmake")
include("/root/repo/build/tests/stores_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/encoding_test[1]_include.cmake")
include("/root/repo/build/tests/system_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/rewriting_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/maintenance_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/properties_test[1]_include.cmake")
