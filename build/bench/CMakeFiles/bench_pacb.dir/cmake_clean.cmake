file(REMOVE_RECURSE
  "CMakeFiles/bench_pacb.dir/bench_pacb.cc.o"
  "CMakeFiles/bench_pacb.dir/bench_pacb.cc.o.d"
  "bench_pacb"
  "bench_pacb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pacb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
