# Empty compiler generated dependencies file for bench_pacb.
# This may be replaced when dependencies are built.
