file(REMOVE_RECURSE
  "CMakeFiles/bench_maintenance.dir/bench_maintenance.cc.o"
  "CMakeFiles/bench_maintenance.dir/bench_maintenance.cc.o.d"
  "bench_maintenance"
  "bench_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
