# Empty compiler generated dependencies file for bench_maintenance.
# This may be replaced when dependencies are built.
