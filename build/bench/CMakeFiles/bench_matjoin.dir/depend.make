# Empty dependencies file for bench_matjoin.
# This may be replaced when dependencies are built.
