file(REMOVE_RECURSE
  "CMakeFiles/bench_matjoin.dir/bench_matjoin.cc.o"
  "CMakeFiles/bench_matjoin.dir/bench_matjoin.cc.o.d"
  "bench_matjoin"
  "bench_matjoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
