# Empty compiler generated dependencies file for bench_kv_migration.
# This may be replaced when dependencies are built.
