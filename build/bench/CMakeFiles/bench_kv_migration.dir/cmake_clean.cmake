file(REMOVE_RECURSE
  "CMakeFiles/bench_kv_migration.dir/bench_kv_migration.cc.o"
  "CMakeFiles/bench_kv_migration.dir/bench_kv_migration.cc.o.d"
  "bench_kv_migration"
  "bench_kv_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kv_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
