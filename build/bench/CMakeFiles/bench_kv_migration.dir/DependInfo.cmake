
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_kv_migration.cc" "bench/CMakeFiles/bench_kv_migration.dir/bench_kv_migration.cc.o" "gcc" "bench/CMakeFiles/bench_kv_migration.dir/bench_kv_migration.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/estocada/CMakeFiles/estocada_system.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/estocada_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/advisor/CMakeFiles/estocada_advisor.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/estocada_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/rewriting/CMakeFiles/estocada_rewriting.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/estocada_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/stores/CMakeFiles/estocada_stores.dir/DependInfo.cmake"
  "/root/repo/build/src/pacb/CMakeFiles/estocada_pacb.dir/DependInfo.cmake"
  "/root/repo/build/src/chase/CMakeFiles/estocada_chase.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/estocada_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/estocada_value.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/estocada_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/pivot/CMakeFiles/estocada_pivot.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/estocada_json.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/estocada_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
