file(REMOVE_RECURSE
  "CMakeFiles/bench_advisor.dir/bench_advisor.cc.o"
  "CMakeFiles/bench_advisor.dir/bench_advisor.cc.o.d"
  "bench_advisor"
  "bench_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
