# Empty compiler generated dependencies file for bench_advisor.
# This may be replaced when dependencies are built.
