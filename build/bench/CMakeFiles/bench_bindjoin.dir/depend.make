# Empty dependencies file for bench_bindjoin.
# This may be replaced when dependencies are built.
