file(REMOVE_RECURSE
  "CMakeFiles/bench_bindjoin.dir/bench_bindjoin.cc.o"
  "CMakeFiles/bench_bindjoin.dir/bench_bindjoin.cc.o.d"
  "bench_bindjoin"
  "bench_bindjoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bindjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
