# Empty dependencies file for bench_vanilla_vs_hybrid.
# This may be replaced when dependencies are built.
