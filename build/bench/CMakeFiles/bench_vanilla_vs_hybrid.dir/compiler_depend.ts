# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_vanilla_vs_hybrid.
