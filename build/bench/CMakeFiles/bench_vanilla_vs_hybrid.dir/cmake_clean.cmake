file(REMOVE_RECURSE
  "CMakeFiles/bench_vanilla_vs_hybrid.dir/bench_vanilla_vs_hybrid.cc.o"
  "CMakeFiles/bench_vanilla_vs_hybrid.dir/bench_vanilla_vs_hybrid.cc.o.d"
  "bench_vanilla_vs_hybrid"
  "bench_vanilla_vs_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vanilla_vs_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
