# Empty dependencies file for rewriting_explorer.
# This may be replaced when dependencies are built.
