file(REMOVE_RECURSE
  "CMakeFiles/rewriting_explorer.dir/rewriting_explorer.cpp.o"
  "CMakeFiles/rewriting_explorer.dir/rewriting_explorer.cpp.o.d"
  "rewriting_explorer"
  "rewriting_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewriting_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
