file(REMOVE_RECURSE
  "CMakeFiles/advisor_tour.dir/advisor_tour.cpp.o"
  "CMakeFiles/advisor_tour.dir/advisor_tour.cpp.o.d"
  "advisor_tour"
  "advisor_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advisor_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
