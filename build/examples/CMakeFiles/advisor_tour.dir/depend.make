# Empty dependencies file for advisor_tour.
# This may be replaced when dependencies are built.
