# Empty compiler generated dependencies file for polyglot_frontends.
# This may be replaced when dependencies are built.
