file(REMOVE_RECURSE
  "CMakeFiles/polyglot_frontends.dir/polyglot_frontends.cpp.o"
  "CMakeFiles/polyglot_frontends.dir/polyglot_frontends.cpp.o.d"
  "polyglot_frontends"
  "polyglot_frontends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polyglot_frontends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
