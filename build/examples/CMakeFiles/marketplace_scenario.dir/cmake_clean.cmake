file(REMOVE_RECURSE
  "CMakeFiles/marketplace_scenario.dir/marketplace_scenario.cpp.o"
  "CMakeFiles/marketplace_scenario.dir/marketplace_scenario.cpp.o.d"
  "marketplace_scenario"
  "marketplace_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marketplace_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
