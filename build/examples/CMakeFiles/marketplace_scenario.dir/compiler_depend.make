# Empty compiler generated dependencies file for marketplace_scenario.
# This may be replaced when dependencies are built.
