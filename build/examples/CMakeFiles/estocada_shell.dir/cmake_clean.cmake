file(REMOVE_RECURSE
  "CMakeFiles/estocada_shell.dir/estocada_shell.cpp.o"
  "CMakeFiles/estocada_shell.dir/estocada_shell.cpp.o.d"
  "estocada_shell"
  "estocada_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estocada_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
