# Empty dependencies file for estocada_shell.
# This may be replaced when dependencies are built.
