#ifndef ESTOCADA_ADVISOR_COST_MODEL_H_
#define ESTOCADA_ADVISOR_COST_MODEL_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "engine/value.h"
#include "stores/store_stats.h"

namespace estocada::advisor {

/// One deterministic probe of the layout cost model: a pivot CQ text plus
/// fixed parameter bindings. Probes come from a drawn benchmark workload
/// or from the parameter samples the WorkloadLog retains per shape.
struct CostProbe {
  std::string text;
  std::map<std::string, engine::Value> parameters;
};

/// The deterministic layout cost model (DESIGN.md §3) shared by the E1
/// bench (bench_kv_migration) and the Autopilot tuner, in two halves:
///
///  * *measured* cost — the simulated cost of actually executing probes
///    against the live layout, summed in probe order so repeated runs are
///    bit-identical;
///  * *predicted* cost — the blueprint estimate of serving one probe from
///    a fragment keyed on the probe's parameter positions in a store of a
///    given kind (one round trip + one index lookup + result transfer,
///    priced with the store defaults).
///
/// A deployment whose stores deviate from the blueprint profiles is
/// exactly the "cost model lies" case: the prediction says improve, the
/// measurement says regress — which the Autopilot's post-cutover check
/// catches.
class CostModel {
 public:
  /// Executes one query and returns its simulated cost. Injected so the
  /// same model runs against a bare Estocada facade, a QueryServer, or a
  /// mock (the advisor layer cannot link either of the former).
  using QueryRunner = std::function<Result<double>(
      const std::string& text,
      const std::map<std::string, engine::Value>& parameters)>;

  explicit CostModel(QueryRunner runner) : runner_(std::move(runner)) {}

  /// Total simulated cost of `probes`, executed and summed in order.
  Result<double> TotalCost(const std::vector<CostProbe>& probes) const;

  /// Mean per-probe simulated cost (0 for an empty probe set).
  Result<double> MeanCost(const std::vector<CostProbe>& probes) const;

  /// Blueprint per-probe cost of serving a shape from a fragment keyed on
  /// its parameter positions in a store of `kind`: per_operation +
  /// per_index_lookup + mean_rows * per_row_returned.
  static double PredictProbeCost(catalog::StoreKind kind, double mean_rows);

  /// The blueprint CostProfile of `kind` — each store stand-in's default
  /// profile (kv_store.h, relational_store.h, ...).
  static stores::CostProfile BlueprintProfile(catalog::StoreKind kind);

 private:
  QueryRunner runner_;
};

}  // namespace estocada::advisor

#endif  // ESTOCADA_ADVISOR_COST_MODEL_H_
