#include "advisor/advisor.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"
#include "pacb/feasibility.h"

namespace estocada::advisor {

using pivot::Adornment;
using pivot::Atom;
using pivot::ConjunctiveQuery;
using pivot::Term;

std::string WorkloadLog::ShapeKey(const ConjunctiveQuery& query) {
  // Rename variables positionally; parameters keep only their '$' marker
  // so different parameter *names* and values map to the same shape.
  std::unordered_map<std::string, std::string> renaming;
  size_t next = 0;
  auto rename = [&](const Term& t) -> std::string {
    if (t.is_constant()) return t.ToString();
    if (!t.is_variable()) return t.ToString();
    bool param = pacb::IsParameterVariable(t.var_name());
    auto it = renaming.find(t.var_name());
    if (it == renaming.end()) {
      it = renaming
               .emplace(t.var_name(),
                        StrCat(param ? "$p" : "v", next++))
               .first;
    }
    return it->second;
  };
  std::string key;
  for (const Atom& a : query.body) {
    key += a.relation;
    key += '(';
    for (const Term& t : a.terms) {
      key += rename(t);
      key += ',';
    }
    key += ") ";
  }
  key += "-> ";
  for (const Term& t : query.head) {
    key += rename(t);
    key += ',';
  }
  return key;
}

void WorkloadLog::Record(const ConjunctiveQuery& query, double cost,
                         const std::vector<std::string>& fragments_used,
                         const std::map<std::string, engine::Value>& parameters,
                         size_t rows_returned) {
  std::string key = ShapeKey(query);
  std::lock_guard<std::mutex> lock(mu_);
  WorkloadEntry& entry = entries_[key];
  if (entry.count == 0) entry.example = query;
  ++entry.count;
  entry.total_cost += cost;
  entry.total_rows += static_cast<double>(rows_returned);
  for (const std::string& f : fragments_used) ++entry.fragments_used[f];
  if (!parameters.empty()) {
    // Bounded ring of recent bindings: the newest observation overwrites
    // the oldest, so probes track workload drift.
    if (entry.parameter_samples.size() < WorkloadEntry::kMaxParameterSamples) {
      entry.parameter_samples.push_back(parameters);
    } else {
      entry.parameter_samples[entry.sample_cursor %
                              WorkloadEntry::kMaxParameterSamples] =
          parameters;
    }
    ++entry.sample_cursor;
  }
  if (capacity_ > 0 && entries_.size() > capacity_) EnforceCapacityLocked(key);
}

void WorkloadLog::EnforceCapacityLocked(const std::string& newcomer) {
  // Exponential forgetting: halve every entry, dropping those that decay
  // to nothing. Recurrent shapes survive many decays; one-off shapes (the
  // usual cause of overflow) vanish after the first. The entry that just
  // overflowed the log is exempt — halving it would erase the newest
  // observation on every insert, so a newly hot shape could never enter
  // a full log.
  ++decays_;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first == newcomer) {
      ++it;
      continue;
    }
    WorkloadEntry& e = it->second;
    e.count /= 2;
    e.total_cost /= 2;
    e.total_rows /= 2;
    for (auto f = e.fragments_used.begin(); f != e.fragments_used.end();) {
      f->second /= 2;
      f = f->second == 0 ? e.fragments_used.erase(f) : std::next(f);
    }
    it = e.count == 0 ? entries_.erase(it) : std::next(it);
  }
  // Still full (every shape recurrent): evict the cheapest shapes — the
  // advisor would never recommend for them anyway.
  while (entries_.size() > capacity_) {
    auto cheapest = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.total_cost < cheapest->second.total_cost) cheapest = it;
    }
    entries_.erase(cheapest);
  }
}

size_t WorkloadLog::decays() const {
  std::lock_guard<std::mutex> lock(mu_);
  return decays_;
}

std::map<std::string, WorkloadEntry> WorkloadLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

void WorkloadLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

size_t WorkloadLog::FragmentUses(const std::string& fragment) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t uses = 0;
  for (const auto& [key, entry] : entries_) {
    auto it = entry.fragments_used.find(fragment);
    if (it != entry.fragments_used.end()) uses += it->second;
  }
  return uses;
}

std::string Recommendation::ToString() const {
  if (action == Action::kDropFragment) {
    return StrCat("DROP ", fragment_name, "  # ", rationale);
  }
  return StrCat("ADD ", view.query.ToString(), " @ ", store_name, "  # ",
                rationale);
}

StorageAdvisor::StorageAdvisor(AdvisorOptions options) : options_(options) {}

const char* PatternName(WorkloadPattern pattern) {
  switch (pattern) {
    case WorkloadPattern::kInsufficient: return "insufficient";
    case WorkloadPattern::kLookupHeavy: return "lookup-heavy";
    case WorkloadPattern::kJoinHeavy: return "join-heavy";
    case WorkloadPattern::kMixed: return "mixed";
  }
  return "unknown";
}

std::string PatternSummary::ToString() const {
  return StrCat(PatternName(pattern), " (lookup ",
                static_cast<int>(lookup_cost_share * 100), "%, join ",
                static_cast<int>(join_cost_share * 100), "% of cost over ",
                total_count, " executions)");
}

namespace {

/// Number of parameter positions in the body of `q`.
size_t CountParams(const pivot::ConjunctiveQuery& q) {
  size_t params = 0;
  for (const pivot::Atom& a : q.body) {
    for (const pivot::Term& t : a.terms) {
      if (t.is_variable() && pacb::IsParameterVariable(t.var_name())) {
        ++params;
      }
    }
  }
  return params;
}

bool IsLookupShape(const pivot::ConjunctiveQuery& q) {
  return q.body.size() == 1 && CountParams(q) >= 1;
}

bool IsJoinShape(const pivot::ConjunctiveQuery& q) {
  return q.body.size() >= 2;
}

}  // namespace

PatternSummary ClassifyWorkload(
    const std::map<std::string, WorkloadEntry>& entries,
    const AdvisorOptions& options) {
  PatternSummary out;
  double total_cost = 0, lookup_cost = 0, join_cost = 0;
  for (const auto& [key, entry] : entries) {
    out.total_count += entry.count;
    total_cost += entry.total_cost;
    if (IsLookupShape(entry.example)) {
      lookup_cost += entry.total_cost;
    } else if (IsJoinShape(entry.example)) {
      join_cost += entry.total_cost;
    }
  }
  if (out.total_count < options.min_count || total_cost <= 0) {
    out.pattern = WorkloadPattern::kInsufficient;
    return out;
  }
  out.lookup_cost_share = lookup_cost / total_cost;
  out.join_cost_share = join_cost / total_cost;
  if (out.lookup_cost_share >= options.pattern_dominance) {
    out.pattern = WorkloadPattern::kLookupHeavy;
  } else if (out.join_cost_share >= options.pattern_dominance) {
    out.pattern = WorkloadPattern::kJoinHeavy;
  } else {
    out.pattern = WorkloadPattern::kMixed;
  }
  return out;
}

namespace {

/// First registered store of the wanted kind, if any.
std::optional<std::string> FindStoreOfKind(const catalog::Catalog& catalog,
                                           catalog::StoreKind kind) {
  for (const auto& [name, handle] : catalog.stores()) {
    if (handle.kind == kind) return name;
  }
  return std::nullopt;
}

/// Builds the materialized-view definition for a heavy query shape: head =
/// parameter positions first (these become the index / key), then the
/// query's own head variables; body = the query body with parameters
/// turned into plain variables.
pacb::ViewDefinition ViewForShape(const ConjunctiveQuery& query,
                                  const std::string& name) {
  pacb::ViewDefinition view;
  view.query.name = name;
  // Parameters become regular variables of the view.
  std::unordered_map<std::string, std::string> renamed;
  auto fix = [&renamed](const Term& t) {
    if (t.is_variable() && pacb::IsParameterVariable(t.var_name())) {
      auto it = renamed.find(t.var_name());
      if (it == renamed.end()) {
        it = renamed.emplace(t.var_name(), t.var_name().substr(1)).first;
      }
      return Term::Var(it->second);
    }
    return t;
  };
  std::vector<std::string> param_vars;
  std::unordered_set<std::string> param_seen;
  for (const Atom& a : query.body) {
    Atom out;
    out.relation = a.relation;
    for (const Term& t : a.terms) {
      Term fixed = fix(t);
      if (t.is_variable() && pacb::IsParameterVariable(t.var_name()) &&
          param_seen.insert(fixed.var_name()).second) {
        param_vars.push_back(fixed.var_name());
      }
      out.terms.push_back(std::move(fixed));
    }
    view.query.body.push_back(std::move(out));
  }
  std::unordered_set<std::string> in_head;
  for (const std::string& p : param_vars) {
    view.query.head.push_back(Term::Var(p));
    view.adornments.push_back(Adornment::kInput);
    in_head.insert(p);
  }
  for (const Term& h : query.head) {
    Term fixed = fix(h);
    if (fixed.is_variable() && in_head.insert(fixed.var_name()).second) {
      view.query.head.push_back(fixed);
      view.adornments.push_back(Adornment::kFree);
    }
  }
  return view;
}

/// True when the catalog already holds a fragment with the same body
/// shape *in a store of the same kind* (an equivalent view in a slower
/// store kind is exactly what a migration recommendation replaces).
bool EquivalentFragmentExists(const catalog::Catalog& catalog,
                              const pacb::ViewDefinition& view,
                              catalog::StoreKind kind) {
  std::string key = WorkloadLog::ShapeKey(view.query);
  for (const auto& [name, desc] : catalog.fragments()) {
    auto store = catalog.GetStore(desc.store_name);
    if (store.ok() && (*store)->kind == kind &&
        WorkloadLog::ShapeKey(desc.view.query) == key) {
      return true;
    }
  }
  return false;
}

}  // namespace

namespace {

/// Total uses of `fragment` across a log snapshot.
size_t UsesInSnapshot(const std::map<std::string, WorkloadEntry>& entries,
                      const std::string& fragment) {
  size_t uses = 0;
  for (const auto& [key, entry] : entries) {
    auto it = entry.fragments_used.find(fragment);
    if (it != entry.fragments_used.end()) uses += it->second;
  }
  return uses;
}

/// Replayable probes of one shape: the representative query text with
/// each recorded parameter binding.
std::vector<CostProbe> ProbesFor(const WorkloadEntry& entry) {
  std::vector<CostProbe> probes;
  std::string text = entry.example.ToString();
  for (const auto& params : entry.parameter_samples) {
    probes.push_back({text, params});
  }
  return probes;
}

}  // namespace

std::vector<ScoredCandidate> StorageAdvisor::Candidates(
    const catalog::Catalog& catalog,
    const std::map<std::string, WorkloadEntry>& entries) const {
  std::vector<ScoredCandidate> out;

  // Dominance gating: with require_dominant_pattern, an ambiguous or
  // under-observed mix yields *no* recommendation (the advisor must not
  // coin-flip), and a dominant pattern restricts add candidates to its
  // own family.
  PatternSummary pattern = ClassifyWorkload(entries, options_);
  if (options_.require_dominant_pattern &&
      (pattern.pattern == WorkloadPattern::kMixed ||
       pattern.pattern == WorkloadPattern::kInsufficient)) {
    return out;
  }
  const bool allow_lookup =
      !options_.require_dominant_pattern ||
      pattern.pattern == WorkloadPattern::kLookupHeavy;
  const bool allow_join = !options_.require_dominant_pattern ||
                          pattern.pattern == WorkloadPattern::kJoinHeavy;

  // Heavy hitters, most expensive aggregate first.
  std::vector<std::pair<const std::string*, const WorkloadEntry*>> heavy;
  for (const auto& [key, entry] : entries) {
    if (entry.count >= options_.min_count &&
        entry.MeanCost() >= options_.min_mean_cost) {
      heavy.emplace_back(&key, &entry);
    }
  }
  std::sort(heavy.begin(), heavy.end(),
            [](const auto& a, const auto& b) {
              return a.second->total_cost > b.second->total_cost;
            });

  auto evidence = [](ScoredCandidate* c, const std::string& key,
                     const WorkloadEntry& entry) {
    c->shape_key = key;
    c->count = entry.count;
    c->observed_mean_cost = entry.MeanCost();
    c->observed_mean_rows = entry.MeanRows();
    c->probes = ProbesFor(entry);
  };

  size_t fresh_id = 0;
  for (const auto& [key, entry] : heavy) {
    if (out.size() >= options_.max_recommendations) break;
    const ConjunctiveQuery& q = entry->example;
    if (IsLookupShape(q) && allow_lookup) {
      // Key-lookup shape -> key-value fragment.
      auto store = FindStoreOfKind(catalog, catalog::StoreKind::kKeyValue);
      if (!store) continue;
      pacb::ViewDefinition view =
          ViewForShape(q, StrCat("F_adv_kv_", fresh_id++));
      if (EquivalentFragmentExists(catalog, view,
                                   catalog::StoreKind::kKeyValue)) {
        continue;
      }
      ScoredCandidate c;
      c.rec.action = Recommendation::Action::kAddFragment;
      c.rec.view = std::move(view);
      c.rec.store_name = *store;
      c.rec.rationale =
          StrCat("key-lookup shape, ", entry->count, " calls, mean cost ",
                 entry->MeanCost());
      c.store_kind = catalog::StoreKind::kKeyValue;
      evidence(&c, *key, *entry);
      out.push_back(std::move(c));
    } else if (IsJoinShape(q) && allow_join) {
      // Join shape -> materialized join in a parallel store (fall back to
      // a relational store when no parallel store is registered).
      auto store = FindStoreOfKind(catalog, catalog::StoreKind::kParallel);
      bool parallel = store.has_value();
      if (!store) {
        store = FindStoreOfKind(catalog, catalog::StoreKind::kRelational);
      }
      if (!store) continue;
      pacb::ViewDefinition view =
          ViewForShape(q, StrCat("F_adv_join_", fresh_id++));
      if (!parallel) view.adornments.clear();  // No composite index.
      if (EquivalentFragmentExists(catalog, view,
                                   parallel
                                       ? catalog::StoreKind::kParallel
                                       : catalog::StoreKind::kRelational)) {
        continue;
      }
      ScoredCandidate c;
      c.rec.action = Recommendation::Action::kAddFragment;
      c.rec.view = std::move(view);
      c.rec.store_name = *store;
      c.rec.rationale = StrCat("heavy join shape, ", entry->count,
                               " calls, mean cost ", entry->MeanCost());
      c.store_kind = parallel ? catalog::StoreKind::kParallel
                              : catalog::StoreKind::kRelational;
      evidence(&c, *key, *entry);
      out.push_back(std::move(c));
    }
  }

  // Drop candidates: fragments that are both *unused* (no logged plan
  // touched them) and *redundant* (every dataset relation they cover is
  // still covered by some other fragment, so no query becomes
  // unanswerable). The redundancy check keeps the advisor from cutting
  // off future workload drift.
  if (!entries.empty()) {
    for (const auto& [name, desc] : catalog.fragments()) {
      if (out.size() >= options_.max_recommendations) break;
      if (UsesInSnapshot(entries, name) != 0) continue;
      bool redundant = true;
      for (const Atom& a : desc.view.query.body) {
        bool covered_elsewhere = false;
        for (const auto& [other_name, other] : catalog.fragments()) {
          if (other_name == name) continue;
          for (const Atom& b : other.view.query.body) {
            if (b.relation == a.relation) {
              covered_elsewhere = true;
              break;
            }
          }
          if (covered_elsewhere) break;
        }
        if (!covered_elsewhere) {
          redundant = false;
          break;
        }
      }
      if (!redundant) continue;
      ScoredCandidate c;
      c.rec.action = Recommendation::Action::kDropFragment;
      c.rec.fragment_name = name;
      c.rec.rationale = "unused by every logged query plan, and redundant";
      out.push_back(std::move(c));
    }
  }
  return out;
}

std::vector<Recommendation> StorageAdvisor::Recommend(
    const catalog::Catalog& catalog, const WorkloadLog& log) const {
  std::vector<Recommendation> out;
  for (ScoredCandidate& c : Candidates(catalog, log.entries())) {
    out.push_back(std::move(c.rec));
  }
  return out;
}

}  // namespace estocada::advisor
