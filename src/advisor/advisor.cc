#include "advisor/advisor.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"
#include "pacb/feasibility.h"

namespace estocada::advisor {

using pivot::Adornment;
using pivot::Atom;
using pivot::ConjunctiveQuery;
using pivot::Term;

std::string WorkloadLog::ShapeKey(const ConjunctiveQuery& query) {
  // Rename variables positionally; parameters keep only their '$' marker
  // so different parameter *names* and values map to the same shape.
  std::unordered_map<std::string, std::string> renaming;
  size_t next = 0;
  auto rename = [&](const Term& t) -> std::string {
    if (t.is_constant()) return t.ToString();
    if (!t.is_variable()) return t.ToString();
    bool param = pacb::IsParameterVariable(t.var_name());
    auto it = renaming.find(t.var_name());
    if (it == renaming.end()) {
      it = renaming
               .emplace(t.var_name(),
                        StrCat(param ? "$p" : "v", next++))
               .first;
    }
    return it->second;
  };
  std::string key;
  for (const Atom& a : query.body) {
    key += a.relation;
    key += '(';
    for (const Term& t : a.terms) {
      key += rename(t);
      key += ',';
    }
    key += ") ";
  }
  key += "-> ";
  for (const Term& t : query.head) {
    key += rename(t);
    key += ',';
  }
  return key;
}

void WorkloadLog::Record(const ConjunctiveQuery& query, double cost,
                         const std::vector<std::string>& fragments_used) {
  std::string key = ShapeKey(query);
  std::lock_guard<std::mutex> lock(mu_);
  WorkloadEntry& entry = entries_[key];
  if (entry.count == 0) entry.example = query;
  ++entry.count;
  entry.total_cost += cost;
  for (const std::string& f : fragments_used) ++entry.fragments_used[f];
  if (capacity_ > 0 && entries_.size() > capacity_) EnforceCapacityLocked(key);
}

void WorkloadLog::EnforceCapacityLocked(const std::string& newcomer) {
  // Exponential forgetting: halve every entry, dropping those that decay
  // to nothing. Recurrent shapes survive many decays; one-off shapes (the
  // usual cause of overflow) vanish after the first. The entry that just
  // overflowed the log is exempt — halving it would erase the newest
  // observation on every insert, so a newly hot shape could never enter
  // a full log.
  ++decays_;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first == newcomer) {
      ++it;
      continue;
    }
    WorkloadEntry& e = it->second;
    e.count /= 2;
    e.total_cost /= 2;
    for (auto f = e.fragments_used.begin(); f != e.fragments_used.end();) {
      f->second /= 2;
      f = f->second == 0 ? e.fragments_used.erase(f) : std::next(f);
    }
    it = e.count == 0 ? entries_.erase(it) : std::next(it);
  }
  // Still full (every shape recurrent): evict the cheapest shapes — the
  // advisor would never recommend for them anyway.
  while (entries_.size() > capacity_) {
    auto cheapest = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.total_cost < cheapest->second.total_cost) cheapest = it;
    }
    entries_.erase(cheapest);
  }
}

size_t WorkloadLog::decays() const {
  std::lock_guard<std::mutex> lock(mu_);
  return decays_;
}

std::map<std::string, WorkloadEntry> WorkloadLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

void WorkloadLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

size_t WorkloadLog::FragmentUses(const std::string& fragment) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t uses = 0;
  for (const auto& [key, entry] : entries_) {
    auto it = entry.fragments_used.find(fragment);
    if (it != entry.fragments_used.end()) uses += it->second;
  }
  return uses;
}

std::string Recommendation::ToString() const {
  if (action == Action::kDropFragment) {
    return StrCat("DROP ", fragment_name, "  # ", rationale);
  }
  return StrCat("ADD ", view.query.ToString(), " @ ", store_name, "  # ",
                rationale);
}

StorageAdvisor::StorageAdvisor(AdvisorOptions options) : options_(options) {}

namespace {

/// First registered store of the wanted kind, if any.
std::optional<std::string> FindStoreOfKind(const catalog::Catalog& catalog,
                                           catalog::StoreKind kind) {
  for (const auto& [name, handle] : catalog.stores()) {
    if (handle.kind == kind) return name;
  }
  return std::nullopt;
}

/// Builds the materialized-view definition for a heavy query shape: head =
/// parameter positions first (these become the index / key), then the
/// query's own head variables; body = the query body with parameters
/// turned into plain variables.
pacb::ViewDefinition ViewForShape(const ConjunctiveQuery& query,
                                  const std::string& name) {
  pacb::ViewDefinition view;
  view.query.name = name;
  // Parameters become regular variables of the view.
  std::unordered_map<std::string, std::string> renamed;
  auto fix = [&renamed](const Term& t) {
    if (t.is_variable() && pacb::IsParameterVariable(t.var_name())) {
      auto it = renamed.find(t.var_name());
      if (it == renamed.end()) {
        it = renamed.emplace(t.var_name(), t.var_name().substr(1)).first;
      }
      return Term::Var(it->second);
    }
    return t;
  };
  std::vector<std::string> param_vars;
  std::unordered_set<std::string> param_seen;
  for (const Atom& a : query.body) {
    Atom out;
    out.relation = a.relation;
    for (const Term& t : a.terms) {
      Term fixed = fix(t);
      if (t.is_variable() && pacb::IsParameterVariable(t.var_name()) &&
          param_seen.insert(fixed.var_name()).second) {
        param_vars.push_back(fixed.var_name());
      }
      out.terms.push_back(std::move(fixed));
    }
    view.query.body.push_back(std::move(out));
  }
  std::unordered_set<std::string> in_head;
  for (const std::string& p : param_vars) {
    view.query.head.push_back(Term::Var(p));
    view.adornments.push_back(Adornment::kInput);
    in_head.insert(p);
  }
  for (const Term& h : query.head) {
    Term fixed = fix(h);
    if (fixed.is_variable() && in_head.insert(fixed.var_name()).second) {
      view.query.head.push_back(fixed);
      view.adornments.push_back(Adornment::kFree);
    }
  }
  return view;
}

/// True when the catalog already holds a fragment with the same body
/// shape *in a store of the same kind* (an equivalent view in a slower
/// store kind is exactly what a migration recommendation replaces).
bool EquivalentFragmentExists(const catalog::Catalog& catalog,
                              const pacb::ViewDefinition& view,
                              catalog::StoreKind kind) {
  std::string key = WorkloadLog::ShapeKey(view.query);
  for (const auto& [name, desc] : catalog.fragments()) {
    auto store = catalog.GetStore(desc.store_name);
    if (store.ok() && (*store)->kind == kind &&
        WorkloadLog::ShapeKey(desc.view.query) == key) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<Recommendation> StorageAdvisor::Recommend(
    const catalog::Catalog& catalog, const WorkloadLog& log) const {
  std::vector<Recommendation> out;

  // Heavy hitters, most expensive aggregate first.
  std::vector<const WorkloadEntry*> heavy;
  for (const auto& [key, entry] : log.entries()) {
    if (entry.count >= options_.min_count &&
        entry.MeanCost() >= options_.min_mean_cost) {
      heavy.push_back(&entry);
    }
  }
  std::sort(heavy.begin(), heavy.end(),
            [](const WorkloadEntry* a, const WorkloadEntry* b) {
              return a->total_cost > b->total_cost;
            });

  size_t fresh_id = 0;
  for (const WorkloadEntry* entry : heavy) {
    if (out.size() >= options_.max_recommendations) break;
    const ConjunctiveQuery& q = entry->example;
    // Count parameter positions.
    size_t params = 0;
    for (const Atom& a : q.body) {
      for (const Term& t : a.terms) {
        if (t.is_variable() && pacb::IsParameterVariable(t.var_name())) {
          ++params;
        }
      }
    }
    if (q.body.size() == 1 && params >= 1) {
      // Key-lookup shape -> key-value fragment.
      auto store = FindStoreOfKind(catalog, catalog::StoreKind::kKeyValue);
      if (!store) continue;
      pacb::ViewDefinition view =
          ViewForShape(q, StrCat("F_adv_kv_", fresh_id++));
      if (EquivalentFragmentExists(catalog, view,
                                   catalog::StoreKind::kKeyValue)) {
        continue;
      }
      Recommendation rec;
      rec.action = Recommendation::Action::kAddFragment;
      rec.view = std::move(view);
      rec.store_name = *store;
      rec.rationale =
          StrCat("key-lookup shape, ", entry->count, " calls, mean cost ",
                 entry->MeanCost());
      out.push_back(std::move(rec));
    } else if (q.body.size() >= 2) {
      // Join shape -> materialized join in a parallel store (fall back to
      // a relational store when no parallel store is registered).
      auto store = FindStoreOfKind(catalog, catalog::StoreKind::kParallel);
      bool parallel = store.has_value();
      if (!store) {
        store = FindStoreOfKind(catalog, catalog::StoreKind::kRelational);
      }
      if (!store) continue;
      pacb::ViewDefinition view =
          ViewForShape(q, StrCat("F_adv_join_", fresh_id++));
      if (!parallel) view.adornments.clear();  // No composite index.
      if (EquivalentFragmentExists(catalog, view,
                                   parallel
                                       ? catalog::StoreKind::kParallel
                                       : catalog::StoreKind::kRelational)) {
        continue;
      }
      Recommendation rec;
      rec.action = Recommendation::Action::kAddFragment;
      rec.view = std::move(view);
      rec.store_name = *store;
      rec.rationale = StrCat("heavy join shape, ", entry->count,
                             " calls, mean cost ", entry->MeanCost());
      out.push_back(std::move(rec));
    }
  }

  // Drop candidates: fragments that are both *unused* (no logged plan
  // touched them) and *redundant* (every dataset relation they cover is
  // still covered by some other fragment, so no query becomes
  // unanswerable). The redundancy check keeps the advisor from cutting
  // off future workload drift.
  if (!log.entries().empty()) {
    for (const auto& [name, desc] : catalog.fragments()) {
      if (out.size() >= options_.max_recommendations) break;
      if (log.FragmentUses(name) != 0) continue;
      bool redundant = true;
      for (const Atom& a : desc.view.query.body) {
        bool covered_elsewhere = false;
        for (const auto& [other_name, other] : catalog.fragments()) {
          if (other_name == name) continue;
          for (const Atom& b : other.view.query.body) {
            if (b.relation == a.relation) {
              covered_elsewhere = true;
              break;
            }
          }
          if (covered_elsewhere) break;
        }
        if (!covered_elsewhere) {
          redundant = false;
          break;
        }
      }
      if (!redundant) continue;
      Recommendation rec;
      rec.action = Recommendation::Action::kDropFragment;
      rec.fragment_name = name;
      rec.rationale = "unused by every logged query plan, and redundant";
      out.push_back(std::move(rec));
    }
  }
  return out;
}

}  // namespace estocada::advisor
