#ifndef ESTOCADA_ADVISOR_ADVISOR_H_
#define ESTOCADA_ADVISOR_ADVISOR_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "advisor/cost_model.h"
#include "catalog/catalog.h"
#include "common/result.h"
#include "engine/value.h"
#include "pacb/view.h"
#include "pivot/query.h"

namespace estocada::advisor {

/// Aggregated record of one query *shape* (same CQ up to parameter
/// values) observed in the workload.
struct WorkloadEntry {
  pivot::ConjunctiveQuery example;       ///< Representative query.
  size_t count = 0;                      ///< Executions observed.
  double total_cost = 0;                 ///< Summed simulated cost.
  double total_rows = 0;                 ///< Summed result-row counts.
  std::map<std::string, size_t> fragments_used;  ///< By the chosen plans.
  /// Up to kMaxParameterSamples observed parameter bindings, kept in a
  /// ring so recent traffic wins — they make the shape *replayable* (the
  /// tuner re-executes the shape as deterministic cost probes).
  std::vector<std::map<std::string, engine::Value>> parameter_samples;
  size_t sample_cursor = 0;  ///< Next ring slot to overwrite.

  static constexpr size_t kMaxParameterSamples = 4;

  double MeanCost() const {
    return count == 0 ? 0 : total_cost / static_cast<double>(count);
  }
  double MeanRows() const {
    return count == 0 ? 0 : total_rows / static_cast<double>(count);
  }
};

/// Sliding workload log the Query Evaluator feeds after every execution;
/// the Storage Advisor reads it to spot heavy hitters. Writers (Record,
/// Clear) synchronize on an internal mutex so concurrent query threads in
/// the serving runtime can log safely; `entries()` hands out an unguarded
/// reference and must only be called once writers are quiesced (the
/// QueryServer does this under its exclusive catalog lock — use
/// `Snapshot()` otherwise).
class WorkloadLog {
 public:
  /// `capacity` bounds the number of distinct query *shapes* retained, so
  /// a long-running server's log cannot grow without bound under an
  /// adversarially diverse workload. When an insert overflows it, every
  /// entry first decays (counts and costs halve; emptied entries drop) —
  /// an exponential forgetting of stale traffic that keeps the advisor
  /// focused on *recent* heavy hitters — and if the log is still full,
  /// the cheapest entries (smallest total cost) are evicted.
  explicit WorkloadLog(size_t capacity = 1024) : capacity_(capacity) {}

  /// Records one execution: the query (parameters still symbolic), its
  /// simulated cost, the fragments its chosen plan touched, and — when
  /// the caller has them — the concrete parameter bindings and the result
  /// row count (both feed the tuner's cost probes).
  void Record(const pivot::ConjunctiveQuery& query, double cost,
              const std::vector<std::string>& fragments_used,
              const std::map<std::string, engine::Value>& parameters = {},
              size_t rows_returned = 0);

  size_t capacity() const { return capacity_; }

  /// Times the decay-on-overflow pass has run.
  size_t decays() const;

  const std::map<std::string, WorkloadEntry>& entries() const {
    return entries_;
  }

  /// Copy of the entries, safe against concurrent Record calls.
  std::map<std::string, WorkloadEntry> Snapshot() const;

  /// Total uses of `fragment` across all logged queries.
  size_t FragmentUses(const std::string& fragment) const;

  void Clear();

  /// Canonical shape key of a query (variables renamed positionally so
  /// parameter *values* do not split shapes).
  static std::string ShapeKey(const pivot::ConjunctiveQuery& query);

 private:
  /// Decay (sparing `newcomer`, the entry that overflowed the log) then
  /// evict down to capacity; mu_ held.
  void EnforceCapacityLocked(const std::string& newcomer);

  mutable std::mutex mu_;
  std::map<std::string, WorkloadEntry> entries_;
  size_t capacity_;
  size_t decays_ = 0;
};

/// One piece of advice from the Storage Advisor.
struct Recommendation {
  enum class Action { kAddFragment, kDropFragment };
  Action action;
  /// kAddFragment: the view to materialize and the target store.
  pacb::ViewDefinition view;
  std::string store_name;
  /// kDropFragment: the fragment to retire.
  std::string fragment_name;
  /// Why ("heavy key-lookup shape, 312 calls, mean cost 41.2", ...).
  std::string rationale;

  std::string ToString() const;
};

/// Tuning knobs of the advisor heuristics.
struct AdvisorOptions {
  size_t min_count = 8;          ///< Shape must repeat this often.
  double min_mean_cost = 30.0;   ///< ... and be at least this expensive.
  size_t max_recommendations = 8;
  /// A pattern (key-lookup vs join) dominates when its shapes carry at
  /// least this share of the logged total cost.
  double pattern_dominance = 0.6;
  /// When set, Recommend/Candidates return nothing unless one pattern
  /// dominates (ClassifyWorkload below), and then only that pattern's add
  /// candidates — the advisor refuses to coin-flip on an ambiguous mix.
  /// The Autopilot runs with this on; offline advice defaults to off.
  bool require_dominant_pattern = false;
};

/// Coarse classification of the logged workload, by cost share.
enum class WorkloadPattern {
  kInsufficient,  ///< Too little evidence (empty or decayed-away log).
  kLookupHeavy,   ///< Key-lookup shapes dominate.
  kJoinHeavy,     ///< Join shapes dominate.
  kMixed,         ///< No pattern reaches the dominance threshold.
};

const char* PatternName(WorkloadPattern pattern);

struct PatternSummary {
  WorkloadPattern pattern = WorkloadPattern::kInsufficient;
  double lookup_cost_share = 0;  ///< Cost share of key-lookup shapes.
  double join_cost_share = 0;    ///< Cost share of join shapes.
  size_t total_count = 0;        ///< Executions across all shapes.

  std::string ToString() const;
};

/// Classifies a workload-log snapshot: fewer than options.min_count total
/// executions (or zero cost) is kInsufficient; otherwise the pattern whose
/// shapes carry >= options.pattern_dominance of the total cost wins, and
/// kMixed when neither does.
PatternSummary ClassifyWorkload(
    const std::map<std::string, WorkloadEntry>& entries,
    const AdvisorOptions& options = {});

/// One enumerated candidate with the workload evidence behind it — the
/// decision-loop currency of the Autopilot: the recommendation itself,
/// where it came from, what the shape costs today, and deterministic
/// probes (recorded bindings) to re-measure it with.
struct ScoredCandidate {
  Recommendation rec;
  std::string shape_key;           ///< Source shape ("" for drop advice).
  catalog::StoreKind store_kind =  ///< Kind of the recommended store.
      catalog::StoreKind::kRelational;
  size_t count = 0;                ///< Executions of the source shape.
  double observed_mean_cost = 0;   ///< Mean simulated cost in the log.
  double observed_mean_rows = 0;   ///< Mean result rows in the log.
  std::vector<CostProbe> probes;   ///< Replayable recorded bindings.
};

/// The paper's Storage Advisor (§III): "recommends dropping redundant
/// fragments that are rarely used or under-performing, and adding new
/// fragments that fit recently heavy-hitting queries", via simple
/// heuristics (the demo's scope):
///  * a heavy single-atom shape whose only bound position is a parameter
///    becomes a key-value fragment keyed by that position;
///  * a heavy multi-atom (join) shape becomes a materialized join
///    fragment in a parallel store, index-adorned on its parameter
///    positions;
///  * fragments never used by any logged plan become drop candidates.
class StorageAdvisor {
 public:
  explicit StorageAdvisor(AdvisorOptions options = {});

  std::vector<Recommendation> Recommend(const catalog::Catalog& catalog,
                                        const WorkloadLog& log) const;

  /// Candidate enumeration over an explicit log *snapshot* (safe to call
  /// with concurrent Record traffic — take WorkloadLog::Snapshot first),
  /// returning each recommendation with its evidence. Recommend() is this
  /// with the evidence stripped.
  std::vector<ScoredCandidate> Candidates(
      const catalog::Catalog& catalog,
      const std::map<std::string, WorkloadEntry>& entries) const;

 private:
  AdvisorOptions options_;
};

}  // namespace estocada::advisor

#endif  // ESTOCADA_ADVISOR_ADVISOR_H_
