#include "advisor/cost_model.h"

namespace estocada::advisor {

Result<double> CostModel::TotalCost(
    const std::vector<CostProbe>& probes) const {
  double total = 0;
  for (const CostProbe& p : probes) {
    ESTOCADA_ASSIGN_OR_RETURN(double cost, runner_(p.text, p.parameters));
    total += cost;
  }
  return total;
}

Result<double> CostModel::MeanCost(const std::vector<CostProbe>& probes) const {
  if (probes.empty()) return 0.0;
  ESTOCADA_ASSIGN_OR_RETURN(double total, TotalCost(probes));
  return total / static_cast<double>(probes.size());
}

stores::CostProfile CostModel::BlueprintProfile(catalog::StoreKind kind) {
  switch (kind) {
    case catalog::StoreKind::kKeyValue:
      return {/*per_operation=*/4.0, /*per_row_scanned=*/0.02,
              /*per_index_lookup=*/0.3, /*per_row_returned=*/0.05};
    case catalog::StoreKind::kDocument:
      return {/*per_operation=*/12.0, /*per_row_scanned=*/0.12,
              /*per_index_lookup=*/0.5, /*per_row_returned=*/0.15};
    case catalog::StoreKind::kText:
      return {/*per_operation=*/10.0, /*per_row_scanned=*/0.03,
              /*per_index_lookup=*/0.4, /*per_row_returned=*/0.1};
    case catalog::StoreKind::kParallel:
      return {/*per_operation=*/60.0, /*per_row_scanned=*/0.01,
              /*per_index_lookup=*/0.6, /*per_row_returned=*/0.05};
    case catalog::StoreKind::kGraph:
      return {/*per_operation=*/6.0, /*per_row_scanned=*/0.04,
              /*per_index_lookup=*/0.2, /*per_row_returned=*/0.06};
    case catalog::StoreKind::kRelational:
      return {/*per_operation=*/25.0, /*per_row_scanned=*/0.05,
              /*per_index_lookup=*/0.8, /*per_row_returned=*/0.05};
  }
  return {/*per_operation=*/25.0, /*per_row_scanned=*/0.05,
          /*per_index_lookup=*/0.8, /*per_row_returned=*/0.05};
}

double CostModel::PredictProbeCost(catalog::StoreKind kind, double mean_rows) {
  stores::CostProfile p = BlueprintProfile(kind);
  return p.per_operation + p.per_index_lookup +
         mean_rows * p.per_row_returned;
}

}  // namespace estocada::advisor
