#ifndef ESTOCADA_CHASE_CHASE_H_
#define ESTOCADA_CHASE_CHASE_H_

#include <memory>
#include <vector>

#include "chase/instance.h"
#include "common/result.h"
#include "pivot/dependency.h"

namespace estocada::chase {

/// Tuning/limit knobs for a chase run.
struct ChaseOptions {
  /// Maximum full passes over the dependency set. For weakly acyclic sets
  /// the chase reaches a fixpoint long before this; the bound is a guard
  /// against non-terminating (cyclic) inputs.
  size_t max_rounds = 64;
  /// Hard cap on instance atoms; exceeding it aborts with kChaseFailure.
  size_t max_atoms = 200000;
};

/// Counters reported by a chase run.
struct ChaseStats {
  size_t rounds = 0;
  size_t tgd_fires = 0;
  size_t egd_merges = 0;
  size_t triggers_checked = 0;
  bool reached_fixpoint = false;
};

/// A dependency set compiled for repeated chasing. Construction analyzes
/// every dependency once — body and head homomorphism matchers (static
/// join orders, variable slot layouts), frontier/existential variable
/// sets, and head atoms as slot references — so that each Run only pays
/// for the chase itself. The PACB rewriter chases dozens of candidate
/// verifications against the same constraint set; re-deriving all of this
/// per run used to dominate its profile.
///
/// An engine holds mutable per-run scratch: it is NOT thread-safe and must
/// not be shared across concurrent chases (parallel callers each hold
/// their own engine; compilation is cheap relative to one chase).
class ChaseEngine {
 public:
  explicit ChaseEngine(std::vector<pivot::Dependency> deps);
  /// Shares an immutable dependency set instead of copying it — the cheap
  /// way to stamp out one engine per worker over a common constraint set.
  explicit ChaseEngine(
      std::shared_ptr<const std::vector<pivot::Dependency>> deps);
  ~ChaseEngine();
  ChaseEngine(ChaseEngine&&) noexcept;
  ChaseEngine& operator=(ChaseEngine&&) noexcept;

  const std::vector<pivot::Dependency>& deps() const { return *deps_; }

  /// Chases `inst` to fixpoint (or until a limit) — see RunChase for the
  /// firing disciplines. May be called any number of times, on different
  /// instances.
  Status Run(Instance* inst, const ChaseOptions& options = {},
             ChaseStats* stats = nullptr);

  struct CompiledDependency;  // Implementation detail, defined in chase.cc.

 private:
  std::shared_ptr<const std::vector<pivot::Dependency>> deps_;
  std::vector<std::unique_ptr<CompiledDependency>> compiled_;
};

/// Runs the standard chase of `inst` with `deps` to fixpoint (or until a
/// limit). TGD steps fire only *active* triggers (no existing extension of
/// the trigger satisfies the head); when the instance tracks provenance,
/// satisfied triggers still OR the trigger's provenance into the head
/// match's atoms — this is the provenance-aware chase of PACB. EGD steps
/// merge terms and fail on constant clashes.
///
/// Convenience wrapper that compiles the dependency set per call; code
/// that chases the same set repeatedly holds a ChaseEngine instead.
Status RunChase(const std::vector<pivot::Dependency>& deps, Instance* inst,
                const ChaseOptions& options = {}, ChaseStats* stats = nullptr);

}  // namespace estocada::chase

#endif  // ESTOCADA_CHASE_CHASE_H_
