#ifndef ESTOCADA_CHASE_CHASE_H_
#define ESTOCADA_CHASE_CHASE_H_

#include <vector>

#include "chase/instance.h"
#include "common/result.h"
#include "pivot/dependency.h"

namespace estocada::chase {

/// Tuning/limit knobs for a chase run.
struct ChaseOptions {
  /// Maximum full passes over the dependency set. For weakly acyclic sets
  /// the chase reaches a fixpoint long before this; the bound is a guard
  /// against non-terminating (cyclic) inputs.
  size_t max_rounds = 64;
  /// Hard cap on instance atoms; exceeding it aborts with kChaseFailure.
  size_t max_atoms = 200000;
};

/// Counters reported by a chase run.
struct ChaseStats {
  size_t rounds = 0;
  size_t tgd_fires = 0;
  size_t egd_merges = 0;
  size_t triggers_checked = 0;
  bool reached_fixpoint = false;
};

/// Runs the standard chase of `inst` with `deps` to fixpoint (or until a
/// limit). TGD steps fire only *active* triggers (no existing extension of
/// the trigger satisfies the head); when the instance tracks provenance,
/// satisfied triggers still OR the trigger's provenance into the head
/// match's atoms — this is the provenance-aware chase of PACB. EGD steps
/// merge terms and fail on constant clashes.
Status RunChase(const std::vector<pivot::Dependency>& deps, Instance* inst,
                const ChaseOptions& options = {}, ChaseStats* stats = nullptr);

}  // namespace estocada::chase

#endif  // ESTOCADA_CHASE_CHASE_H_
