#ifndef ESTOCADA_CHASE_CONTAINMENT_H_
#define ESTOCADA_CHASE_CONTAINMENT_H_

#include <vector>

#include "chase/chase.h"
#include "chase/homomorphism.h"
#include "chase/instance.h"
#include "common/result.h"
#include "pivot/dependency.h"
#include "pivot/query.h"

namespace estocada::chase {

/// Decides `q1 ⊑ q2` under the dependencies `deps` by the classical
/// chase-based test: freeze q1's body, chase it with `deps`, and look for a
/// homomorphism of q2's body that maps q2's head to q1's (frozen, chased)
/// head. A failing chase (EGD constant clash) means q1 is unsatisfiable
/// under the constraints, hence trivially contained.
Result<bool> IsContainedIn(const pivot::ConjunctiveQuery& q1,
                           const pivot::ConjunctiveQuery& q2,
                           const std::vector<pivot::Dependency>& deps,
                           const ChaseOptions& options = {});

/// Same test against a pre-compiled dependency set. The hot form: callers
/// checking many containments under one constraint set (the PACB
/// candidate verifier) hold a ChaseEngine and skip recompiling it per
/// check. The engine is mutated (per-run scratch) but its dependency set
/// is not.
Result<bool> IsContainedIn(const pivot::ConjunctiveQuery& q1,
                           const pivot::ConjunctiveQuery& q2,
                           ChaseEngine& engine,
                           const ChaseOptions& options = {});

/// Many-vs-one containment with a fixed right-hand side: decides
/// `q ⊑ q2` for a stream of left queries. The q2 body matcher is compiled
/// once at construction, so each Contains(q) pays only the freeze + chase
/// of q. The PACB soundness check (every candidate against the one input
/// query) runs through this.
class FixedRightContainment {
 public:
  FixedRightContainment(pivot::ConjunctiveQuery q2, ChaseEngine& engine,
                        const ChaseOptions& options = {});

  /// `q1 ⊑ q2`.
  Result<bool> Contains(const pivot::ConjunctiveQuery& q1);

  /// `q1 ⊑ q2` for a left query given directly in frozen form: `atoms` are
  /// its ground body atoms (labelled nulls standing for the variables) and
  /// `head_terms` its head values over those atoms. Skips query
  /// construction and freezing entirely — the PACB verifier streams
  /// universal-plan atom subsets straight through here.
  Result<bool> ContainsFrozen(const std::vector<const pivot::Atom*>& atoms,
                              const std::vector<pivot::Term>& head_terms);

 private:
  /// Shared tail of Contains/ContainsFrozen: chases the loaded scratch_
  /// and probes for a q2-homomorphism mapping q2's head onto the canonical
  /// images of `head_terms`.
  Result<bool> ChaseAndProbe(const std::vector<pivot::Term>& head_terms);

  pivot::ConjunctiveQuery q2_;
  ChaseEngine& engine_;
  ChaseOptions options_;
  HomomorphismMatcher matcher_;  ///< Over q2_.body.
  Instance scratch_;             ///< Reset + reused per Contains call.
};

/// One-vs-many containment with a fixed left-hand side: decides `q1 ⊑ q`
/// for a stream of right queries. q1 is frozen and chased once (lazily, on
/// first use); each ContainedIn(q) is then a single homomorphism test into
/// the cached chase result — no chase per check. The PACB exactness check
/// (the one input query against every candidate) runs through this.
class FixedLeftContainment {
 public:
  FixedLeftContainment(pivot::ConjunctiveQuery q1, ChaseEngine& engine,
                       const ChaseOptions& options = {});

  /// `q1 ⊑ q2`.
  Result<bool> ContainedIn(const pivot::ConjunctiveQuery& q2);

 private:
  /// Freeze + chase q1_, once; records vacuity / failure.
  Status Prepare();

  pivot::ConjunctiveQuery q1_;
  ChaseEngine& engine_;
  ChaseOptions options_;
  bool prepared_ = false;
  bool vacuous_ = false;  ///< q1 unsatisfiable: contained in everything.
  Instance inst_;
  std::vector<pivot::Term> head_targets_;  ///< Canonical images of q1.head.
};

/// Both directions: q1 ≡ q2 under `deps`.
Result<bool> AreEquivalent(const pivot::ConjunctiveQuery& q1,
                           const pivot::ConjunctiveQuery& q2,
                           const std::vector<pivot::Dependency>& deps,
                           const ChaseOptions& options = {});

}  // namespace estocada::chase

#endif  // ESTOCADA_CHASE_CONTAINMENT_H_
