#ifndef ESTOCADA_CHASE_CONTAINMENT_H_
#define ESTOCADA_CHASE_CONTAINMENT_H_

#include <vector>

#include "chase/chase.h"
#include "common/result.h"
#include "pivot/dependency.h"
#include "pivot/query.h"

namespace estocada::chase {

/// Decides `q1 ⊑ q2` under the dependencies `deps` by the classical
/// chase-based test: freeze q1's body, chase it with `deps`, and look for a
/// homomorphism of q2's body that maps q2's head to q1's (frozen, chased)
/// head. A failing chase (EGD constant clash) means q1 is unsatisfiable
/// under the constraints, hence trivially contained.
Result<bool> IsContainedIn(const pivot::ConjunctiveQuery& q1,
                           const pivot::ConjunctiveQuery& q2,
                           const std::vector<pivot::Dependency>& deps,
                           const ChaseOptions& options = {});

/// Both directions: q1 ≡ q2 under `deps`.
Result<bool> AreEquivalent(const pivot::ConjunctiveQuery& q1,
                           const pivot::ConjunctiveQuery& q2,
                           const std::vector<pivot::Dependency>& deps,
                           const ChaseOptions& options = {});

}  // namespace estocada::chase

#endif  // ESTOCADA_CHASE_CONTAINMENT_H_
