#include "chase/prov.h"

#include <algorithm>

#include "common/strings.h"

namespace estocada::chase {

namespace {

bool IsSubsetSorted(const ProvFormula::Conjunct& small,
                    const ProvFormula::Conjunct& big) {
  return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

}  // namespace

ProvFormula ProvFormula::True() {
  ProvFormula f;
  f.disjuncts_.push_back({});
  return f;
}

ProvFormula ProvFormula::Leaf(uint32_t id) {
  ProvFormula f;
  f.disjuncts_.push_back({id});
  return f;
}

ProvFormula ProvFormula::And(const ProvFormula& other) const {
  ProvFormula out;
  out.disjuncts_.reserve(disjuncts_.size() * other.disjuncts_.size());
  for (const Conjunct& a : disjuncts_) {
    for (const Conjunct& b : other.disjuncts_) {
      Conjunct merged;
      merged.reserve(a.size() + b.size());
      std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                     std::back_inserter(merged));
      out.disjuncts_.push_back(std::move(merged));
    }
  }
  out.Minimize();
  return out;
}

ProvFormula ProvFormula::Or(const ProvFormula& other) const {
  ProvFormula out;
  out.disjuncts_ = disjuncts_;
  out.disjuncts_.insert(out.disjuncts_.end(), other.disjuncts_.begin(),
                        other.disjuncts_.end());
  out.Minimize();
  return out;
}

bool ProvFormula::Subsumes(const ProvFormula& other) const {
  for (const Conjunct& oc : other.disjuncts_) {
    bool covered = false;
    for (const Conjunct& c : disjuncts_) {
      if (IsSubsetSorted(c, oc)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

void ProvFormula::Minimize() {
  // Sort by size so subset checks only need to look at earlier entries.
  std::sort(disjuncts_.begin(), disjuncts_.end(),
            [](const Conjunct& a, const Conjunct& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  std::vector<Conjunct> kept;
  for (const Conjunct& c : disjuncts_) {
    bool dominated = false;
    for (const Conjunct& k : kept) {
      if (IsSubsetSorted(k, c)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      if (kept.size() < kMaxDisjuncts) {
        kept.push_back(c);
      }
      // Overflow beyond the cap drops the largest conjuncts (we sorted by
      // size), preserving all minimal candidates up to the budget.
    }
  }
  disjuncts_ = std::move(kept);
}

std::string ProvFormula::ToString() const {
  if (is_false()) return "false";
  if (is_true()) return "true";
  return StrJoinMapped(disjuncts_, " | ", [](const Conjunct& c) {
    return StrCat("{", StrJoin(c, ","), "}");
  });
}

}  // namespace estocada::chase
