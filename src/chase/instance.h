#ifndef ESTOCADA_CHASE_INSTANCE_H_
#define ESTOCADA_CHASE_INSTANCE_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "chase/prov.h"
#include "common/result.h"
#include "pivot/atom.h"
#include "pivot/query.h"
#include "pivot/symbol_table.h"

namespace estocada::chase {

/// A (ground) instance of the pivot schema: a deduplicated set of atoms
/// whose terms are constants or labelled nulls. Supports
///  * insertion with optional provenance (OR-merged on duplicates),
///  * per-relation access for the homomorphism matcher,
///  * EGD-style term merging with a union-find canonicalizer,
///  * fresh labelled-null allocation for TGD firing.
///
/// Internally every relation name and every ground term is interned to a
/// dense pivot::SymbolId, each live atom keeps an interned row (the value
/// ids of its canonical terms), and a per-(relation, position, value)
/// inverted index maps bound values to the atom ids containing them. The
/// index is maintained incrementally by Insert and rehomed wholesale when
/// an EGD merge recanonicalizes the instance. The homomorphism matcher
/// seeds its candidate scans from this index instead of scanning all atoms
/// of a relation.
class Instance {
 public:
  Instance() = default;

  /// Whether atoms carry provenance annotations (PACB backchase).
  void set_track_provenance(bool on) { track_provenance_ = on; }
  bool track_provenance() const { return track_provenance_; }

  /// Inserts a ground atom. Returns the atom id and whether anything
  /// changed (new atom, or provenance grew on an existing one).
  struct InsertResult {
    size_t id;
    bool changed;
  };
  InsertResult Insert(pivot::Atom atom, const ProvFormula& prov = {});

  /// Like Insert, but records `base` (instead of `prov`) into the
  /// unconditioned base provenance. The provenance-aware chase uses this
  /// when re-firing a trigger whose produced atom was rewritten by EGD
  /// merges: `prov` carries the merge conditioning, `base` does not.
  InsertResult InsertWithBase(pivot::Atom atom, const ProvFormula& prov,
                              const ProvFormula& base);

  /// True iff the exact atom is present (after canonicalization).
  bool Contains(const pivot::Atom& atom) const;

  /// Total ids ever allocated (including retired duplicates).
  size_t size() const { return atoms_.size(); }
  /// Number of live (non-collapsed) atoms.
  size_t live_size() const;
  bool alive(size_t id) const { return alive_[id]; }
  const pivot::Atom& atom(size_t id) const { return atoms_[id]; }
  const std::vector<pivot::Atom>& atoms() const { return atoms_; }
  const ProvFormula& provenance(size_t id) const { return prov_[id]; }

  /// Conjunction of the provenance of every EGD merge that has rewritten
  /// this atom's stored form (True when untouched). A derivation that
  /// re-produces this atom's *original* form only reaches the current form
  /// under those merges, so its provenance must be AND-ed with this before
  /// being OR-ed in (see the provenance-aware chase).
  const ProvFormula& merge_conditioning(size_t id) const {
    return merge_cond_[id];
  }

  /// Best-known support of this atom's *current* form without assuming
  /// merge conditioning beyond what producing that form required. Reset to
  /// the conditioned provenance whenever a merge rewrites the atom (the
  /// previously accumulated base belonged to the old form, which moves to
  /// ghost_forms()); native re-derivations of the current form OR back in.
  /// The PACB rewriter uses this, together with ghost forms, to generate
  /// optimistic candidates that its chase-based verification then filters.
  const ProvFormula& base_provenance(size_t id) const {
    return base_prov_[id];
  }

  /// Pre-merge form of an atom rewritten by a conditioned EGD merge,
  /// carrying the unconditioned base provenance it had at that moment. A
  /// query match that lands on a pre-merge form does not depend on the
  /// merge at all; without ghosts that smaller support is lost to
  /// conditioning (and to provenance absorption downstream), making the
  /// PACB backchase miss minimal rewritings.
  struct GhostForm {
    pivot::Atom form;
    ProvFormula base;
  };
  const std::vector<GhostForm>& ghost_forms() const { return ghost_forms_; }

  /// Atom ids of a relation (empty list when none).
  const std::vector<size_t>& AtomsOf(const std::string& relation) const;

  /// Allocates a fresh labelled null, unique within this instance.
  pivot::Term FreshNull() { return pivot::Term::Null(next_null_id_++); }

  /// Ensures freshly allocated nulls will not collide with ids below `id`.
  void ReserveNullIdsUpTo(uint64_t id) {
    if (id > next_null_id_) next_null_id_ = id;
  }

  /// Canonical representative of a term under the merges applied so far.
  pivot::Term Canonical(const pivot::Term& t) const;

  /// Merges two terms (EGD firing). Fails with kChaseFailure when both are
  /// distinct constants. Labelled nulls are redirected to the other term
  /// (constants win; between nulls the smaller id wins). Returns whether
  /// the instance changed.
  ///
  /// When provenance is tracked, `merge_prov` must carry the provenance of
  /// the EGD trigger that requested the merge: every atom whose stored form
  /// changes because of this merge only exists *conditionally* on the
  /// equality, so its provenance is AND-ed with `merge_prov`. Without this,
  /// the PACB backchase would report spuriously small rewriting candidates.
  Result<bool> MergeTerms(const pivot::Term& a, const pivot::Term& b,
                          const ProvFormula& merge_prov = ProvFormula::True());

  /// Live id of an atom (after canonicalization), if present.
  std::optional<size_t> FindAtom(const pivot::Atom& atom) const;

  /// Live representative of atom id `id`: `id` itself while alive, else
  /// the id its form collapsed onto during recanonicalization (following
  /// further collapses transitively). O(collapse chain), no hashing —
  /// the fast path for re-resolving matched atom ids after EGD merges.
  size_t LiveId(size_t id) const;

  /// Loads all atoms of `atoms` (must be ground).
  Status InsertAll(const std::vector<pivot::Atom>& atoms);

  /// Empties the instance — no atoms, no merges, no provenance — while
  /// retaining allocated capacity *and* the interning tables: relation and
  /// value ids assigned so far stay valid (interning is append-only and
  /// constants are never redirected, so no resolution can dangle), which
  /// lets matchers keep their compiled patterns across resets. A fresh
  /// epoch() is stamped; intern_epoch() is deliberately preserved for the
  /// same reason. Callers running many small chases reuse one scratch
  /// instance this way instead of paying construction/destruction and
  /// recompilation per chase.
  void Reset();

  /// Multi-line dump for debugging/tests.
  std::string ToString() const;

  // --- Interned representation (homomorphism matcher fast path) ---

  /// Dense id of `relation` if any atom of it was ever inserted.
  std::optional<pivot::SymbolId> RelationIdOf(const std::string& rel) const {
    return relations_.Lookup(rel);
  }
  /// Atom ids of an interned relation, in increasing id order.
  const std::vector<size_t>& AtomsOfRel(pivot::SymbolId rel_id) const;
  /// Interned relation of an atom.
  pivot::SymbolId relation_id(size_t id) const { return rel_ids_[id]; }
  /// Interned canonical terms of a live atom (parallel to atom(id).terms).
  const std::vector<pivot::SymbolId>& Row(size_t id) const {
    return rows_[id];
  }
  /// Value id of the canonical form of `t`, if it occurs in the instance.
  std::optional<pivot::SymbolId> ValueIdOf(const pivot::Term& t) const {
    return values_.Lookup(Canonical(t));
  }
  /// The ground term a value id stands for.
  const pivot::Term& ValueTerm(pivot::SymbolId vid) const {
    return values_.term(vid);
  }
  /// Atom ids of `rel_id` whose term at `pos` is `value` (superset: may
  /// contain dead ids; callers filter with alive()). Increasing id order.
  const std::vector<size_t>& CandidatesAt(pivot::SymbolId rel_id, uint32_t pos,
                                          pivot::SymbolId value) const;

  /// Full invariant check of the interned rows and the position index
  /// against the stored atoms; returns false and fills `error` on the
  /// first violation. Test-only (linear in index size).
  bool CheckIndexConsistency(std::string* error = nullptr) const;

  /// Mutation epoch: a globally unique stamp refreshed whenever the
  /// instance's matchable content changes (a new atom, or an EGD merge
  /// recanonicalization). Two reads observing the same epoch (on the same
  /// address) are guaranteed to see identical atoms, interning tables and
  /// canonicalizer state. Epochs are drawn from one process-wide counter,
  /// so a stale (address, epoch) pair can never collide with a different
  /// instance's state — caches keyed on (address, epoch) stay sound across
  /// instance destruction and address reuse.
  uint64_t epoch() const { return epoch_; }

  /// Like epoch(), but refreshed only when an EGD merge recanonicalizes
  /// the instance — not on plain inserts. Interning is append-only, so a
  /// successful pattern resolution (relation ids, ground-term value ids)
  /// stays valid across inserts; only a merge can re-route Canonical() and
  /// thus change what a pattern constant resolves to. The matcher reuses a
  /// compiled join order across inserts by keying on this.
  uint64_t intern_epoch() const { return intern_epoch_; }

  /// Sizes of the interning tables. Together with intern_epoch() these
  /// determine every RelationIdOf / ValueIdOf answer: lookups only change
  /// when a table grows or a merge re-routes Canonical() (an intern_epoch
  /// bump). The matcher keys failed pattern resolutions on them.
  size_t relation_count() const { return relations_.size(); }
  size_t value_count() const { return values_.size(); }

 private:
  /// Next value of the process-wide epoch counter (thread-safe).
  static uint64_t NextEpoch();

  /// Rewrites every atom through the canonicalizer, merging duplicates
  /// (provenance OR), AND-ing `merge_prov` into atoms whose form changed,
  /// and rebuilding indexes.
  void Recanonicalize(const ProvFormula& merge_prov);

  /// Packed (relation, position, value) key of the inverted index.
  /// Relation and position ids are far below their 16-bit fields in any
  /// realistic schema (the parser/tests top out at a few hundred).
  static uint64_t PosKey(pivot::SymbolId rel_id, uint32_t pos,
                         pivot::SymbolId value) {
    return (static_cast<uint64_t>(rel_id) << 48) |
           (static_cast<uint64_t>(pos & 0xFFFFu) << 32) |
           static_cast<uint64_t>(value);
  }

  /// Mixes an interned row into a 64-bit duplicate-detection hash.
  /// Collisions are resolved by comparing rows, so quality only affects
  /// bucket sizes.
  static uint64_t RowHash(pivot::SymbolId rel_id,
                          const std::vector<pivot::SymbolId>& row);

  /// A lazily invalidated index chain: the ids are only meaningful while
  /// `stamp` equals the instance's current index generation. Reset() and
  /// Recanonicalize() invalidate every bucket of every index by bumping
  /// the generation — O(1) instead of walking the maps — and stale buckets
  /// (read as empty) have their storage reused on the next write.
  struct IndexBucket {
    uint64_t stamp = 0;  ///< index_gen_ starts at 1, so 0 is always stale.
    std::vector<size_t> ids;
  };
  using IndexMap = std::unordered_map<uint64_t, IndexBucket>;

  /// The bucket for `key`, revived (cleared + restamped) if stale.
  std::vector<size_t>& TouchBucket(IndexMap& map, uint64_t key) {
    IndexBucket& b = map[key];
    if (b.stamp != index_gen_) {
      b.ids.clear();
      b.stamp = index_gen_;
    }
    return b.ids;
  }

  /// The bucket for `key` if present and current, else nullptr.
  const std::vector<size_t>* LiveBucket(const IndexMap& map,
                                        uint64_t key) const {
    auto it = map.find(key);
    if (it == map.end() || it->second.stamp != index_gen_) return nullptr;
    return &it->second.ids;
  }

  /// Publishes atom id `id` — whose interned row is already in rel_ids_ and
  /// rows_ — into by_relation_id_, the position index, and `bucket` (its
  /// row_index_ chain).
  void IndexAtom(size_t id, std::vector<size_t>& bucket);

  bool track_provenance_ = false;
  std::vector<pivot::Atom> atoms_;
  std::vector<ProvFormula> prov_;
  std::vector<ProvFormula> base_prov_;
  std::vector<ProvFormula> merge_cond_;
  std::vector<GhostForm> ghost_forms_;
  /// Atom ids are stable; ids whose atom collapsed onto an earlier one
  /// during recanonicalization are marked dead and skipped by AtomsOf.
  std::vector<bool> alive_;
  /// Collapse forwarding: forward_[id] == id while alive, else the id this
  /// atom's form collapsed onto (possibly itself dead after later merges).
  std::vector<size_t> forward_;
  std::unordered_map<pivot::Term, pivot::Term, pivot::TermHash> redirect_;
  uint64_t next_null_id_ = 0;
  uint64_t epoch_ = NextEpoch();
  uint64_t intern_epoch_ = NextEpoch();

  // Interned representation. rel_ids_ and rows_ are parallel to atoms_ but
  // may be longer: Reset() keeps them as capacity pools (entries at or past
  // atoms_.size() are stale and overwritten when their id is reused). Rows
  // of dead atoms are likewise stale and never read (alive() guards).
  pivot::SymbolTable relations_;
  pivot::TermTable values_;
  std::vector<pivot::SymbolId> rel_ids_;
  std::vector<std::vector<pivot::SymbolId>> rows_;
  std::vector<std::vector<size_t>> by_relation_id_;
  IndexMap pos_index_;
  /// Duplicate detection over interned rows: RowHash(rel, row) → ids of the
  /// live atoms whose row hashes there (collisions resolved by comparing
  /// rows). Replaces hashing whole Atoms — no string hashing, no stored
  /// Atom copy.
  IndexMap row_index_;
  /// Current generation of pos_index_/row_index_ buckets (see IndexBucket).
  uint64_t index_gen_ = 1;
  /// Scratch for the row being interned by an in-flight Insert.
  std::vector<pivot::SymbolId> scratch_row_;
};

}  // namespace estocada::chase

#endif  // ESTOCADA_CHASE_INSTANCE_H_
