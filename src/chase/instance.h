#ifndef ESTOCADA_CHASE_INSTANCE_H_
#define ESTOCADA_CHASE_INSTANCE_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "chase/prov.h"
#include "common/result.h"
#include "pivot/atom.h"
#include "pivot/query.h"

namespace estocada::chase {

/// A (ground) instance of the pivot schema: a deduplicated set of atoms
/// whose terms are constants or labelled nulls. Supports
///  * insertion with optional provenance (OR-merged on duplicates),
///  * per-relation access for the homomorphism matcher,
///  * EGD-style term merging with a union-find canonicalizer,
///  * fresh labelled-null allocation for TGD firing.
class Instance {
 public:
  Instance() = default;

  /// Whether atoms carry provenance annotations (PACB backchase).
  void set_track_provenance(bool on) { track_provenance_ = on; }
  bool track_provenance() const { return track_provenance_; }

  /// Inserts a ground atom. Returns the atom id and whether anything
  /// changed (new atom, or provenance grew on an existing one).
  struct InsertResult {
    size_t id;
    bool changed;
  };
  InsertResult Insert(pivot::Atom atom, const ProvFormula& prov = {});

  /// Like Insert, but records `base` (instead of `prov`) into the
  /// unconditioned base provenance. The provenance-aware chase uses this
  /// when re-firing a trigger whose produced atom was rewritten by EGD
  /// merges: `prov` carries the merge conditioning, `base` does not.
  InsertResult InsertWithBase(pivot::Atom atom, const ProvFormula& prov,
                              const ProvFormula& base);

  /// True iff the exact atom is present (after canonicalization).
  bool Contains(const pivot::Atom& atom) const;

  /// Total ids ever allocated (including retired duplicates).
  size_t size() const { return atoms_.size(); }
  /// Number of live (non-collapsed) atoms.
  size_t live_size() const;
  bool alive(size_t id) const { return alive_[id]; }
  const pivot::Atom& atom(size_t id) const { return atoms_[id]; }
  const std::vector<pivot::Atom>& atoms() const { return atoms_; }
  const ProvFormula& provenance(size_t id) const { return prov_[id]; }

  /// Conjunction of the provenance of every EGD merge that has rewritten
  /// this atom's stored form (True when untouched). A derivation that
  /// re-produces this atom's *original* form only reaches the current form
  /// under those merges, so its provenance must be AND-ed with this before
  /// being OR-ed in (see the provenance-aware chase).
  const ProvFormula& merge_conditioning(size_t id) const {
    return merge_cond_[id];
  }

  /// Best-known support of this atom's *current* form without assuming
  /// merge conditioning beyond what producing that form required. Reset to
  /// the conditioned provenance whenever a merge rewrites the atom (the
  /// previously accumulated base belonged to the old form, which moves to
  /// ghost_forms()); native re-derivations of the current form OR back in.
  /// The PACB rewriter uses this, together with ghost forms, to generate
  /// optimistic candidates that its chase-based verification then filters.
  const ProvFormula& base_provenance(size_t id) const {
    return base_prov_[id];
  }

  /// Pre-merge form of an atom rewritten by a conditioned EGD merge,
  /// carrying the unconditioned base provenance it had at that moment. A
  /// query match that lands on a pre-merge form does not depend on the
  /// merge at all; without ghosts that smaller support is lost to
  /// conditioning (and to provenance absorption downstream), making the
  /// PACB backchase miss minimal rewritings.
  struct GhostForm {
    pivot::Atom form;
    ProvFormula base;
  };
  const std::vector<GhostForm>& ghost_forms() const { return ghost_forms_; }

  /// Atom ids of a relation (empty list when none).
  const std::vector<size_t>& AtomsOf(const std::string& relation) const;

  /// Allocates a fresh labelled null, unique within this instance.
  pivot::Term FreshNull() { return pivot::Term::Null(next_null_id_++); }

  /// Ensures freshly allocated nulls will not collide with ids below `id`.
  void ReserveNullIdsUpTo(uint64_t id) {
    if (id > next_null_id_) next_null_id_ = id;
  }

  /// Canonical representative of a term under the merges applied so far.
  pivot::Term Canonical(const pivot::Term& t) const;

  /// Merges two terms (EGD firing). Fails with kChaseFailure when both are
  /// distinct constants. Labelled nulls are redirected to the other term
  /// (constants win; between nulls the smaller id wins). Returns whether
  /// the instance changed.
  ///
  /// When provenance is tracked, `merge_prov` must carry the provenance of
  /// the EGD trigger that requested the merge: every atom whose stored form
  /// changes because of this merge only exists *conditionally* on the
  /// equality, so its provenance is AND-ed with `merge_prov`. Without this,
  /// the PACB backchase would report spuriously small rewriting candidates.
  Result<bool> MergeTerms(const pivot::Term& a, const pivot::Term& b,
                          const ProvFormula& merge_prov = ProvFormula::True());

  /// Live id of an atom (after canonicalization), if present.
  std::optional<size_t> FindAtom(const pivot::Atom& atom) const;

  /// Loads all atoms of `atoms` (must be ground).
  Status InsertAll(const std::vector<pivot::Atom>& atoms);

  /// Multi-line dump for debugging/tests.
  std::string ToString() const;

 private:
  /// Rewrites every atom through the canonicalizer, merging duplicates
  /// (provenance OR), AND-ing `merge_prov` into atoms whose form changed,
  /// and rebuilding indexes.
  void Recanonicalize(const ProvFormula& merge_prov);

  bool track_provenance_ = false;
  std::vector<pivot::Atom> atoms_;
  std::vector<ProvFormula> prov_;
  std::vector<ProvFormula> base_prov_;
  std::vector<ProvFormula> merge_cond_;
  std::vector<GhostForm> ghost_forms_;
  /// Atom ids are stable; ids whose atom collapsed onto an earlier one
  /// during recanonicalization are marked dead and skipped by AtomsOf.
  std::vector<bool> alive_;
  std::unordered_map<pivot::Atom, size_t, pivot::AtomHash> index_;
  std::unordered_map<std::string, std::vector<size_t>> by_relation_;
  std::unordered_map<pivot::Term, pivot::Term, pivot::TermHash> redirect_;
  uint64_t next_null_id_ = 0;
};

}  // namespace estocada::chase

#endif  // ESTOCADA_CHASE_INSTANCE_H_
