#ifndef ESTOCADA_CHASE_HOMOMORPHISM_H_
#define ESTOCADA_CHASE_HOMOMORPHISM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chase/instance.h"
#include "pivot/query.h"
#include "pivot/symbol_table.h"

namespace estocada::chase {

/// A homomorphism match: the substitution plus the instance atom ids the
/// pattern atoms were mapped to (`atom_ids[i]` is the instance atom that
/// `pattern[i]` mapped onto, in original pattern order).
struct Match {
  pivot::Substitution sub;
  std::vector<size_t> atom_ids;  ///< One instance atom id per pattern atom.
};

/// Backtracking homomorphism matcher over the interned instance
/// representation. The pattern is compiled once at construction: variables
/// become dense slots (first-occurrence order), so a partial substitution
/// is a flat `std::vector<SymbolId>` instead of a string-keyed map. Per
/// enumeration the matcher
///  * computes a static fail-first join order (the unmatched atom with the
///    most ground-or-bound positions, earliest pattern index on ties —
///    exactly the pick the legacy dynamic matcher made, so enumeration
///    order is bit-for-bit preserved),
///  * seeds each level's candidates from the instance's most selective
///    (relation, position, value) index bucket instead of scanning all
///    atoms of the relation,
///  * unifies on interned value ids only; `pivot::Term`s are materialized
///    once per emitted match.
/// Scratch buffers are reused across ForEach calls; a matcher instance is
/// not thread-safe, but may be reused across different instances.
class HomomorphismMatcher {
 public:
  explicit HomomorphismMatcher(std::vector<pivot::Atom> pattern);

  /// Enumerates homomorphisms of the pattern into `inst` extending
  /// `start`, invoking `visit(const Match&)` per match. The visitor
  /// returns false to stop the enumeration early; ForEach then returns
  /// false (true when the enumeration ran to completion). All scratch
  /// state is reset on entry, so a matcher is reusable after an early
  /// stop.
  template <class Visitor>
  bool ForEach(const Instance& inst, const pivot::Substitution& start,
               Visitor&& visit) {
    switch (PrepareCall(inst, start)) {
      case Prep::kEmptyPattern: {
        // An empty pattern has exactly one (trivial) homomorphism.
        Match m;
        m.sub = start;
        return visit(static_cast<const Match&>(m));
      }
      case Prep::kNoMatches:
        return true;
      case Prep::kReady:
        break;
    }
    return Descend(0, inst, [&] { return EmitMatch(inst, visit); });
  }

  /// Slot-level enumeration (the chase's hot path): invokes
  /// `visit(slots, atom_ids)` per match, where `slots[s]` is the interned
  /// canonical value id bound to slot `s` (see SlotOf) and `atom_ids` are
  /// in original pattern order. No `pivot::Term`s or substitution maps are
  /// materialized. The spans are scratch storage — copy what outlives the
  /// callback. Same early-stop contract as ForEach.
  template <class Visitor>
  bool ForEachBinding(const Instance& inst, Visitor&& visit) {
    static const pivot::Substitution kNoStart;
    switch (PrepareCall(inst, kNoStart)) {
      case Prep::kEmptyPattern:
        slots_.clear();
        atom_ids_.clear();
        return visit(static_cast<const std::vector<pivot::SymbolId>&>(slots_),
                     static_cast<const std::vector<size_t>&>(atom_ids_));
      case Prep::kNoMatches:
        return true;
      case Prep::kReady:
        break;
    }
    return Descend(0, inst, [&] {
      return visit(static_cast<const std::vector<pivot::SymbolId>&>(slots_),
                   static_cast<const std::vector<size_t>&>(atom_ids_));
    });
  }

  /// Satisfaction probe with pre-bound slots: `bound` holds
  /// (slot, canonical value id) pairs, typically frontier bindings read
  /// straight out of another matcher's slots. True iff a homomorphism
  /// extending those bindings exists. Avoids building a Substitution (and
  /// re-canonicalizing terms) per probe — the TGD head-satisfaction check
  /// runs once per trigger.
  bool ExistsWithBoundSlots(
      const Instance& inst,
      const std::vector<std::pair<uint32_t, pivot::SymbolId>>& bound);

  /// Slot of a pattern variable (dense, first-occurrence order), if it
  /// occurs in the pattern.
  std::optional<uint32_t> SlotOf(const std::string& var) const {
    auto it = var_slots_.find(var);
    if (it == var_slots_.end()) return std::nullopt;
    return it->second;
  }

  /// Slot -> variable name (first-occurrence order).
  const std::vector<std::string>& var_names() const { return var_names_; }

  const std::vector<pivot::Atom>& pattern() const { return pattern_; }

 private:
  enum class Prep { kEmptyPattern, kNoMatches, kReady };

  /// One unification step at a level, in term-position order.
  struct LevelOp {
    enum Kind : uint8_t { kCheckValue, kCheckSlot, kBindSlot };
    Kind kind;
    uint32_t pos;
    uint32_t slot;           ///< kCheckSlot / kBindSlot.
    pivot::SymbolId value;   ///< kCheckValue (resolved per call).
  };
  /// A position whose value is known before scanning candidates: either a
  /// ground pattern term (value resolved per call) or a variable slot
  /// bound by `start` or an earlier level. Used to pick the most selective
  /// index bucket.
  struct LevelSeed {
    uint32_t pos;
    bool from_slot;
    uint32_t slot;
    pivot::SymbolId value;
  };
  struct Level {
    size_t pattern_index;
    pivot::SymbolId rel_id;
    uint32_t arity;
    std::vector<LevelOp> ops;
    std::vector<uint32_t> bind_slots;  ///< Slots bound here, op order.
    std::vector<LevelSeed> seeds;
  };

  /// Binds the pattern against `inst` + `start`: fills slots_/extra_, then
  /// delegates to CompileOrder.
  Prep PrepareCall(const Instance& inst, const pivot::Substitution& start);

  /// Like PrepareCall, but the bindings arrive as (slot, value id) pairs —
  /// no Substitution, no canonicalization, no table lookups.
  Prep PrepareCallSlots(
      const Instance& inst,
      const std::vector<std::pair<uint32_t, pivot::SymbolId>>& bound);

  /// Shared tail: returns the cached compiled call when `inst` (same
  /// address, same mutation epoch) and the bound-slot set match the
  /// previous call; otherwise delegates to CompileOrder and refreshes the
  /// cache. `mask` is the bound-slot bitmask (cacheable only for patterns
  /// with <= 64 variables).
  Prep EnsureOrder(const Instance& inst, uint64_t mask, bool cacheable);

  /// Resolves relation and ground-value ids against `inst`, computes the
  /// static join order and per-level op lists. Reads slots_/slot_bound_;
  /// all scratch is member storage reused across calls.
  Prep CompileOrder(const Instance& inst);

  template <class Emitter>
  bool Descend(size_t depth, const Instance& inst, Emitter&& emit) {
    if (depth == levels_.size()) return emit();
    const Level& lv = levels_[depth];
    // Seed from the most selective bound position; fall back to the full
    // per-relation list when nothing is bound at this level.
    const std::vector<size_t>* cands = &inst.AtomsOfRel(lv.rel_id);
    for (const LevelSeed& s : lv.seeds) {
      pivot::SymbolId v = s.from_slot ? slots_[s.slot] : s.value;
      const std::vector<size_t>& bucket = inst.CandidatesAt(lv.rel_id, s.pos, v);
      if (bucket.size() < cands->size()) cands = &bucket;
    }
    for (size_t id : *cands) {
      if (!inst.alive(id)) continue;
      const std::vector<pivot::SymbolId>& row = inst.Row(id);
      if (row.size() != lv.arity) continue;
      size_t binds_applied = 0;
      bool ok = true;
      for (const LevelOp& op : lv.ops) {
        pivot::SymbolId rv = row[op.pos];
        if (op.kind == LevelOp::kCheckValue) {
          if (rv != op.value) {
            ok = false;
            break;
          }
        } else if (op.kind == LevelOp::kCheckSlot) {
          if (rv != slots_[op.slot]) {
            ok = false;
            break;
          }
        } else {
          slots_[op.slot] = rv;
          ++binds_applied;
        }
      }
      if (ok) {
        atom_ids_[lv.pattern_index] = id;
        if (!Descend(depth + 1, inst, emit)) {
          for (size_t i = 0; i < binds_applied; ++i) {
            slots_[lv.bind_slots[i]] = pivot::kNoSymbol;
          }
          return false;
        }
      }
      for (size_t i = 0; i < binds_applied; ++i) {
        slots_[lv.bind_slots[i]] = pivot::kNoSymbol;
      }
    }
    return true;
  }

  template <class Visitor>
  bool EmitMatch(const Instance& inst, Visitor& visit) {
    Match m;
    m.atom_ids = atom_ids_;
    m.sub.reserve(var_names_.size() + extra_.size());
    for (uint32_t s = 0; s < var_names_.size(); ++s) {
      m.sub.emplace(var_names_[s], inst.ValueTerm(slots_[s]));
    }
    for (const auto& [name, term] : extra_) m.sub.emplace(name, term);
    return visit(static_cast<const Match&>(m));
  }

  // Compiled once at construction.
  std::vector<pivot::Atom> pattern_;
  std::vector<std::string> var_names_;  ///< Slot -> name, first-occurrence.
  std::unordered_map<std::string, uint32_t> var_slots_;

  // Per-call plan + scratch (reused across calls; inner vectors keep their
  // capacity, so a prepared call allocates nothing in steady state).
  struct ResolvedAtom {
    pivot::SymbolId rel_id;
    std::vector<LevelOp> ops_proto;  ///< kind/pos/value; slots fixed later.
  };
  std::vector<Level> levels_;
  std::vector<ResolvedAtom> resolved_;
  std::vector<char> slot_bound_;
  std::vector<char> used_;
  std::vector<pivot::SymbolId> slots_;  ///< Slot -> value id (kNoSymbol = unbound).
  std::vector<std::pair<std::string, pivot::Term>> extra_;
  std::vector<size_t> atom_ids_;

  // Compiled-call cache (see EnsureOrder). The chase probes the same
  // pattern against the same instance many times between mutations; the
  // resolution + join order only depends on (instance state, bound-slot
  // set), so those probes skip CompileOrder entirely.
  const Instance* cached_inst_ = nullptr;
  uint64_t cached_intern_epoch_ = 0;
  size_t cached_rel_count_ = 0;
  size_t cached_val_count_ = 0;
  uint64_t cached_mask_ = 0;
  bool cache_valid_ = false;
  Prep cached_prep_ = Prep::kReady;
};

/// Enumerates homomorphisms of `pattern` (atoms with variables; constants
/// and labelled nulls must match exactly) into `inst`, extending the
/// partial substitution `start`. Invokes `on_match` per match; stop early
/// by returning false from the callback. Convenience wrapper that compiles
/// the pattern per call — hot paths hold a HomomorphismMatcher instead.
void ForEachHomomorphism(const std::vector<pivot::Atom>& pattern,
                         const Instance& inst,
                         const pivot::Substitution& start,
                         const std::function<bool(const Match&)>& on_match);

/// Convenience: collects matches into a vector.
///
/// `limit` contract: `limit == 0` means **unlimited** — every homomorphism
/// is enumerated and returned. For `limit > 0` the enumeration stops as
/// soon as `limit` matches have been collected (the matcher unwinds
/// immediately; no further candidates are unified), and exactly
/// `min(limit, total)` matches are returned.
std::vector<Match> FindHomomorphisms(const std::vector<pivot::Atom>& pattern,
                                     const Instance& inst,
                                     const pivot::Substitution& start = {},
                                     size_t limit = 0);

/// True iff at least one homomorphism exists.
bool ExistsHomomorphism(const std::vector<pivot::Atom>& pattern,
                        const Instance& inst,
                        const pivot::Substitution& start = {});

/// The live atoms of `inst` in stable id order (collapsed duplicates
/// skipped) — the pattern-extraction step of instance-level checks.
std::vector<pivot::Atom> LiveAtoms(const Instance& inst);

/// Replaces every labelled null _N<k> with a variable "_n<k>", turning
/// ground instance atoms into a homomorphism pattern: nulls may map to
/// anything, constants must match exactly.
std::vector<pivot::Atom> NullsToVariables(std::vector<pivot::Atom> atoms);

/// True iff `a` and `b` map homomorphically into each other with nulls
/// treated as variables — equivalence of chase results up to null renaming
/// (what chase termination guarantees under dependency reordering).
bool HomomorphicallyEquivalent(const Instance& a, const Instance& b);

/// Debug flag: when set, the free-function entry points above route
/// through the legacy unindexed scan matcher (kept for differential
/// testing of the indexed kernel; see internal::ForEachHomomorphismScan).
/// Off by default. Not for production use — the scan path is the slow one.
void SetUseScanMatcherForDebug(bool on);

/// Current state of the debug flag. Components holding a pre-compiled
/// HomomorphismMatcher consult this to route through the scan oracle
/// instead when differential testing is on.
bool UsingScanMatcherForDebug();

namespace internal {

/// The pre-interning matcher: string-keyed substitutions, per-level
/// fail-first rescans, full per-relation candidate scans. Kept verbatim as
/// the differential-testing oracle for the indexed matcher (the fuzz suite
/// asserts both enumerate identical match sequences).
void ForEachHomomorphismScan(const std::vector<pivot::Atom>& pattern,
                             const Instance& inst,
                             const pivot::Substitution& start,
                             const std::function<bool(const Match&)>& on_match);

}  // namespace internal

}  // namespace estocada::chase

#endif  // ESTOCADA_CHASE_HOMOMORPHISM_H_
