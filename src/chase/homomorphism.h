#ifndef ESTOCADA_CHASE_HOMOMORPHISM_H_
#define ESTOCADA_CHASE_HOMOMORPHISM_H_

#include <functional>
#include <vector>

#include "chase/instance.h"
#include "pivot/query.h"

namespace estocada::chase {

/// A homomorphism match: the substitution plus the instance atom ids the
/// pattern atoms were mapped to (parallel to the pattern order used
/// internally; `atom_ids[i]` matches `pattern[order[i]]`, exposed in
/// original pattern order).
struct Match {
  pivot::Substitution sub;
  std::vector<size_t> atom_ids;  ///< One instance atom id per pattern atom.
};

/// Enumerates homomorphisms of `pattern` (atoms with variables; constants
/// and labelled nulls must match exactly) into `inst`, extending the
/// partial substitution `start`. Invokes `on_match` per match; stop early
/// by returning false from the callback.
void ForEachHomomorphism(const std::vector<pivot::Atom>& pattern,
                         const Instance& inst,
                         const pivot::Substitution& start,
                         const std::function<bool(const Match&)>& on_match);

/// Convenience: all matches (bounded by `limit`, 0 = unbounded).
std::vector<Match> FindHomomorphisms(const std::vector<pivot::Atom>& pattern,
                                     const Instance& inst,
                                     const pivot::Substitution& start = {},
                                     size_t limit = 0);

/// True iff at least one homomorphism exists.
bool ExistsHomomorphism(const std::vector<pivot::Atom>& pattern,
                        const Instance& inst,
                        const pivot::Substitution& start = {});

/// The live atoms of `inst` in stable id order (collapsed duplicates
/// skipped) — the pattern-extraction step of instance-level checks.
std::vector<pivot::Atom> LiveAtoms(const Instance& inst);

/// Replaces every labelled null _N<k> with a variable "_n<k>", turning
/// ground instance atoms into a homomorphism pattern: nulls may map to
/// anything, constants must match exactly.
std::vector<pivot::Atom> NullsToVariables(std::vector<pivot::Atom> atoms);

/// True iff `a` and `b` map homomorphically into each other with nulls
/// treated as variables — equivalence of chase results up to null renaming
/// (what chase termination guarantees under dependency reordering).
bool HomomorphicallyEquivalent(const Instance& a, const Instance& b);

}  // namespace estocada::chase

#endif  // ESTOCADA_CHASE_HOMOMORPHISM_H_
