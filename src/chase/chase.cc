#include "chase/chase.h"

#include <algorithm>
#include <unordered_map>

#include "chase/homomorphism.h"
#include "common/strings.h"
#include "pivot/symbol_table.h"

namespace estocada::chase {

using pivot::Atom;
using pivot::Dependency;
using pivot::SymbolId;
using pivot::Term;
using pivot::Tgd;

namespace {

/// Memo of fired TGD triggers for the provenance-aware (semi-oblivious)
/// chase: key = dependency index + canonical frontier bindings (packed
/// value ids — see MemoKey); value = the ids of the head atoms that firing
/// produced (so later rounds can OR refreshed trigger provenance into
/// exactly those atoms, conditioned on any merges that have rewritten them
/// since).
using FiredMemo = std::unordered_map<std::string, std::vector<size_t>>;

void AppendU32(std::string* key, uint32_t v) {
  key->push_back(static_cast<char>(v));
  key->push_back(static_cast<char>(v >> 8));
  key->push_back(static_cast<char>(v >> 16));
  key->push_back(static_cast<char>(v >> 24));
}

/// Packed trigger identity: dependency index plus the interned canonical
/// value bound to each frontier variable at fire time. Value ids are
/// stable for the lifetime of the instance and bijective with ground
/// terms, so this distinguishes triggers exactly like the legacy
/// canonical-term-string key did, without formatting anything.
std::string MemoKey(size_t dep_index,
                    const std::vector<uint32_t>& frontier_slots,
                    const std::vector<SymbolId>& slots) {
  std::string key;
  key.reserve(4 + 4 * frontier_slots.size());
  AppendU32(&key, static_cast<uint32_t>(dep_index));
  for (uint32_t s : frontier_slots) AppendU32(&key, slots[s]);
  return key;
}

/// A materialized trigger: the body match as flat slot bindings plus the
/// matched instance atom ids (original body-atom order).
struct Trigger {
  std::vector<SymbolId> slots;
  std::vector<size_t> atom_ids;
};

/// A head term compiled against the body matcher's slots: a frontier
/// variable (read the body slot), an existential (one fresh null per
/// trigger), or a ground term.
struct HeadTermRef {
  enum Kind : uint8_t { kFrontierSlot, kExistential, kGround };
  Kind kind;
  uint32_t index = 0;        ///< Body slot / existential index.
  const Term* ground = nullptr;
};

struct HeadAtomRef {
  const Atom* atom;  ///< The head atom (relation name; terms via refs).
  std::vector<HeadTermRef> terms;
};

/// How an EGD side maps to a trigger: a body slot or a ground term.
struct EgdTermRef {
  bool is_slot = false;
  uint32_t slot = 0;
  const Term* ground = nullptr;
};

}  // namespace

/// Per-dependency state compiled once per engine and reused across runs
/// and rounds: the body matcher (static join order + scratch buffers
/// survive), the head satisfaction matcher (probed per trigger with
/// pre-bound frontier slots instead of substituting and recompiling the
/// head), the frontier/existential analysis, and the head atoms as slot
/// references so firing never builds a Substitution. Head/EGD term refs
/// point into the engine's own dependency vector.
struct ChaseEngine::CompiledDependency {
  explicit CompiledDependency(const Dependency& d)
      : body(d.is_tgd() ? d.tgd.body : d.egd.body) {
    if (d.is_tgd()) {
      const Tgd& t = d.tgd;
      head.emplace(t.head);
      existentials = t.ExistentialVariables();
      for (const std::string& v : t.FrontierVariables()) {
        // Frontier variables occur in both body and head by definition.
        frontier_slots.push_back(*body.SlotOf(v));
        head_prebound_body_slots.push_back(*body.SlotOf(v));
        head_prebound.emplace_back(*head->SlotOf(v), pivot::kNoSymbol);
      }
      head_refs.reserve(t.head.size());
      for (const Atom& h : t.head) {
        HeadAtomRef ref;
        ref.atom = &h;
        ref.terms.reserve(h.terms.size());
        for (const Term& term : h.terms) {
          HeadTermRef tr;
          if (!term.is_variable()) {
            tr.kind = HeadTermRef::kGround;
            tr.ground = &term;
          } else if (auto slot = body.SlotOf(term.var_name())) {
            tr.kind = HeadTermRef::kFrontierSlot;
            tr.index = *slot;
          } else {
            tr.kind = HeadTermRef::kExistential;
            tr.index = static_cast<uint32_t>(
                std::find(existentials.begin(), existentials.end(),
                          term.var_name()) -
                existentials.begin());
          }
          ref.terms.push_back(tr);
        }
        head_refs.push_back(std::move(ref));
      }
    } else {
      left = CompileEgdTerm(d.egd.left);
      right = CompileEgdTerm(d.egd.right);
    }
  }

  EgdTermRef CompileEgdTerm(const Term& t) {
    EgdTermRef ref;
    if (t.is_variable()) {
      if (auto slot = body.SlotOf(t.var_name())) {
        ref.is_slot = true;
        ref.slot = *slot;
      } else {
        // A head variable not bound by the body: an ill-formed EGD. The
        // legacy code only reported this when a trigger actually fired, so
        // the error stays lazy (see ChaseEgdRound).
        egd_unbound_var = true;
      }
    } else {
      ref.ground = &t;
    }
    return ref;
  }

  HomomorphismMatcher body;

  // TGD only.
  std::optional<HomomorphismMatcher> head;
  std::vector<std::string> existentials;
  std::vector<uint32_t> frontier_slots;  ///< FrontierVariables() order.
  /// Scratch for the per-trigger satisfaction probe: head slot -> value,
  /// values refreshed from the body slots listed in the parallel vector.
  std::vector<std::pair<uint32_t, SymbolId>> head_prebound;
  std::vector<uint32_t> head_prebound_body_slots;
  std::vector<HeadAtomRef> head_refs;

  // EGD only.
  EgdTermRef left;
  EgdTermRef right;
  bool egd_unbound_var = false;

  // Shared per-round scratch. `triggers` is a storage pool: only the first
  // `num_triggers` entries are this round's matches; the rest keep their
  // vectors' capacity for reuse by later rounds.
  std::vector<Trigger> triggers;
  size_t num_triggers = 0;
  std::vector<Term> fresh;  ///< One fresh null per existential, per fire.
};

namespace {

using CompiledDep = ChaseEngine::CompiledDependency;

/// Materializes all matches of the dependency body into `dep->triggers`
/// (insertions must not disturb the enumeration, so triggers are collected
/// first).
void CollectTriggers(CompiledDep* dep, const Instance& inst) {
  size_t n = 0;
  dep->body.ForEachBinding(
      inst, [&](const std::vector<SymbolId>& slots,
                const std::vector<size_t>& atom_ids) {
        if (n == dep->triggers.size()) dep->triggers.emplace_back();
        Trigger& t = dep->triggers[n++];
        t.slots.assign(slots.begin(), slots.end());
        t.atom_ids.assign(atom_ids.begin(), atom_ids.end());
        return true;
      });
  dep->num_triggers = n;
}

/// Fires one TGD over all current triggers. Returns whether the instance
/// changed. Matches are materialized first so insertion does not disturb
/// the enumeration; new triggers created by these insertions are picked up
/// in the next round.
///
/// Two firing disciplines:
///  * standard chase (no provenance): a trigger whose head is already
///    satisfiable by some extension does not fire;
///  * provenance-aware chase: the *semi-oblivious* (Skolem) discipline —
///    every trigger fires exactly once per frontier binding, and on later
///    rounds its (possibly refined) provenance is OR-ed into the atoms it
///    produced. Satisfaction-based skipping would lose alternative
///    derivations that use the trigger's own existential witnesses, which
///    is exactly what PACB's backchase needs to enumerate rewritings.
Result<bool> ChaseTgdRound(size_t dep_index, CompiledDep* dep, Instance* inst,
                           const ChaseOptions& options, ChaseStats* stats,
                           FiredMemo* fired) {
  CollectTriggers(dep, *inst);
  stats->triggers_checked += dep->num_triggers;
  bool changed = false;

  for (size_t ti = 0; ti < dep->num_triggers; ++ti) {
    const Trigger& trigger = dep->triggers[ti];
    // Provenance of the trigger: conjunction over matched body atoms
    // (re-resolved through the collapse forwarding, as earlier merges may
    // have rewritten them). `base` is the same conjunction over the
    // unconditioned base provenance — the optimistic support that ignores
    // EGD merge conditioning.
    ProvFormula prov;
    ProvFormula base;
    if (inst->track_provenance()) {
      prov = ProvFormula::True();
      base = ProvFormula::True();
      for (size_t id : trigger.atom_ids) {
        size_t live = inst->LiveId(id);
        prov = prov.And(inst->provenance(live));
        base = base.And(inst->base_provenance(live));
      }
    }

    auto build_head = [&](const HeadAtomRef& ref) {
      Atom a;
      a.relation = ref.atom->relation;
      a.terms.reserve(ref.terms.size());
      for (const HeadTermRef& tr : ref.terms) {
        switch (tr.kind) {
          case HeadTermRef::kFrontierSlot:
            a.terms.push_back(inst->ValueTerm(trigger.slots[tr.index]));
            break;
          case HeadTermRef::kExistential:
            a.terms.push_back(dep->fresh[tr.index]);
            break;
          case HeadTermRef::kGround:
            a.terms.push_back(*tr.ground);
            break;
        }
      }
      return a;
    };

    if (inst->track_provenance()) {
      std::string key = MemoKey(dep_index, dep->frontier_slots, trigger.slots);
      auto it = fired->find(key);
      if (it != fired->end()) {
        // Refire virtually: OR the refreshed provenance into the atoms
        // this trigger produced the first time. If merges have rewritten a
        // produced atom since, this derivation only reaches the current
        // form under those equalities — AND their conditioning in.
        for (size_t produced_id : it->second) {
          // The refreshed base is conditioned too: the trigger derives the
          // atom's *original* form (tracked as a ghost), so reaching the
          // current form still requires the merges that rewrote it. Only
          // the parents' contribution stays unconditioned.
          const ProvFormula& cond = inst->merge_conditioning(produced_id);
          auto r = inst->InsertWithBase(inst->atom(produced_id),
                                        prov.And(cond), base.And(cond));
          changed |= r.changed;
        }
        continue;
      }
      dep->fresh.clear();
      for (size_t i = 0; i < dep->existentials.size(); ++i) {
        dep->fresh.push_back(inst->FreshNull());
      }
      std::vector<size_t> produced;
      for (const HeadAtomRef& ref : dep->head_refs) {
        auto r = inst->InsertWithBase(build_head(ref), prov, base);
        changed |= r.changed;
        produced.push_back(r.id);
      }
      (*fired)[std::move(key)] = std::move(produced);
      ++stats->tgd_fires;
    } else {
      // Probe the (unsubstituted) head pattern with the frontier bindings
      // pre-bound; existential variables stay free for the satisfaction
      // check. Equivalent to the legacy substitute-then-match, without
      // building or compiling a fresh pattern per trigger.
      for (size_t i = 0; i < dep->head_prebound.size(); ++i) {
        dep->head_prebound[i].second =
            trigger.slots[dep->head_prebound_body_slots[i]];
      }
      if (dep->head->ExistsWithBoundSlots(*inst, dep->head_prebound)) {
        continue;
      }
      dep->fresh.clear();
      for (size_t i = 0; i < dep->existentials.size(); ++i) {
        dep->fresh.push_back(inst->FreshNull());
      }
      for (const HeadAtomRef& ref : dep->head_refs) {
        auto r = inst->Insert(build_head(ref), prov);
        changed |= r.changed;
      }
      ++stats->tgd_fires;
    }
    if (inst->size() > options.max_atoms) {
      return Status::ChaseFailure(
          StrCat("chase exceeded max_atoms=", options.max_atoms,
                 " (non-terminating constraint set?)"));
    }
  }
  return changed;
}

/// Fires one EGD over all current triggers; merges are applied after the
/// enumeration so iteration sees a stable instance.
///
/// Triggers that equate the same pair of terms are grouped first and the
/// merge is conditioned on the OR of their provenances: each group member
/// is an independent derivation of the equality. Applying triggers one by
/// one would condition the merge on whichever derivation happened to fire
/// first (later ones become no-ops), losing alternative supports and
/// making the PACB backchase miss minimal rewritings.
Result<bool> ChaseEgdRound(const pivot::Egd& egd, CompiledDep* dep,
                           Instance* inst, ChaseStats* stats) {
  CollectTriggers(dep, *inst);
  stats->triggers_checked += dep->num_triggers;
  if (dep->num_triggers > 0 && dep->egd_unbound_var) {
    return Status::InvalidArgument(
        StrCat("EGD '", egd.label,
               "' equates a variable not bound by its body"));
  }
  struct PendingMerge {
    Term l, r;
    ProvFormula prov;
  };
  std::vector<PendingMerge> pending;
  // Grouping key: both sides' canonical terms interned into a throwaway
  // table (slot values are already instance value ids, but ground EGD
  // sides may name constants the instance has never seen).
  pivot::TermTable group_terms;
  std::unordered_map<uint64_t, size_t> groups;  // equality key -> index
  for (size_t ti = 0; ti < dep->num_triggers; ++ti) {
    const Trigger& trigger = dep->triggers[ti];
    // The matched slot values are canonical (merges of this round are all
    // pending — the instance is stable during the enumeration).
    Term l = dep->left.is_slot ? inst->ValueTerm(trigger.slots[dep->left.slot])
                               : *dep->left.ground;
    Term r = dep->right.is_slot
                 ? inst->ValueTerm(trigger.slots[dep->right.slot])
                 : *dep->right.ground;
    SymbolId kl = group_terms.Intern(dep->left.is_slot ? l
                                                       : inst->Canonical(l));
    SymbolId kr = group_terms.Intern(dep->right.is_slot ? r
                                                        : inst->Canonical(r));
    if (kl == kr) continue;  // Already equal: nothing to derive.
    ProvFormula prov = ProvFormula::True();
    if (inst->track_provenance()) {
      for (size_t id : trigger.atom_ids) {
        prov = prov.And(inst->provenance(inst->LiveId(id)));
      }
    }
    uint64_t key = kl < kr
                       ? (static_cast<uint64_t>(kl) << 32) | kr
                       : (static_cast<uint64_t>(kr) << 32) | kl;
    auto [it, inserted] = groups.emplace(key, pending.size());
    if (inserted) {
      pending.push_back({std::move(l), std::move(r), std::move(prov)});
    } else if (inst->track_provenance()) {
      pending[it->second].prov = pending[it->second].prov.Or(prov);
    }
  }
  bool changed = false;
  for (const PendingMerge& pm : pending) {
    ESTOCADA_ASSIGN_OR_RETURN(bool merged,
                              inst->MergeTerms(pm.l, pm.r, pm.prov));
    if (merged) {
      changed = true;
      ++stats->egd_merges;
    }
  }
  return changed;
}

}  // namespace

ChaseEngine::ChaseEngine(std::vector<Dependency> deps)
    : ChaseEngine(std::make_shared<const std::vector<Dependency>>(
          std::move(deps))) {}

ChaseEngine::ChaseEngine(
    std::shared_ptr<const std::vector<Dependency>> deps)
    : deps_(std::move(deps)) {
  compiled_.reserve(deps_->size());
  for (const Dependency& d : *deps_) {
    compiled_.push_back(std::make_unique<CompiledDependency>(d));
  }
}

// Moves are safe: the compiled state points into the shared dependency
// vector, whose storage is owned by deps_.
ChaseEngine::~ChaseEngine() = default;
ChaseEngine::ChaseEngine(ChaseEngine&&) noexcept = default;
ChaseEngine& ChaseEngine::operator=(ChaseEngine&&) noexcept = default;

Status ChaseEngine::Run(Instance* inst, const ChaseOptions& options,
                        ChaseStats* stats) {
  ChaseStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  FiredMemo fired;
  const std::vector<Dependency>& deps = *deps_;
  // Fixpoint round-skipping. A dependency's round reads only the instance
  // and its own memo entries, and a no-change round mutates neither (no
  // atom, no provenance growth, no merge, no fresh null) — so it stays a
  // no-op until some other round changes the instance. `version` counts
  // instance-changing rounds; a dependency marked clean at the current
  // version is skipped.
  uint64_t version = 0;
  constexpr uint64_t kDirty = ~uint64_t{0};
  std::vector<uint64_t> clean_at(deps.size(), kDirty);
  for (size_t round = 0; round < options.max_rounds; ++round) {
    ++stats->rounds;
    bool changed = false;
    for (size_t di = 0; di < deps.size(); ++di) {
      if (clean_at[di] == version) continue;
      const Dependency& d = deps[di];
      bool c = false;
      if (d.is_tgd()) {
        ESTOCADA_ASSIGN_OR_RETURN(
            c, ChaseTgdRound(di, compiled_[di].get(), inst, options, stats,
                             &fired));
      } else {
        ESTOCADA_ASSIGN_OR_RETURN(
            c, ChaseEgdRound(d.egd, compiled_[di].get(), inst, stats));
      }
      if (c) {
        ++version;
        changed = true;
      } else {
        clean_at[di] = version;
      }
    }
    if (!changed) {
      stats->reached_fixpoint = true;
      return Status::OK();
    }
  }
  return Status::ChaseFailure(
      StrCat("chase did not reach a fixpoint within ", options.max_rounds,
             " rounds"));
}

Status RunChase(const std::vector<Dependency>& deps, Instance* inst,
                const ChaseOptions& options, ChaseStats* stats) {
  ChaseEngine engine(deps);
  return engine.Run(inst, options, stats);
}

}  // namespace estocada::chase
