#include "chase/chase.h"

#include <unordered_map>

#include "chase/homomorphism.h"
#include "common/strings.h"

namespace estocada::chase {

using pivot::Atom;
using pivot::Dependency;
using pivot::Substitution;
using pivot::Term;
using pivot::Tgd;

namespace {

/// Memo of fired TGD triggers for the provenance-aware (semi-oblivious)
/// chase: key = dependency index + canonical frontier bindings; value =
/// the ids of the head atoms that firing produced (so later rounds can OR
/// refreshed trigger provenance into exactly those atoms, conditioned on
/// any merges that have rewritten them since).
using FiredMemo = std::unordered_map<std::string, std::vector<size_t>>;

std::string TriggerKey(size_t dep_index, const Tgd& tgd,
                       const Substitution& sub, const Instance& inst) {
  std::string key = std::to_string(dep_index);
  for (const std::string& v : tgd.FrontierVariables()) {
    key += '|';
    auto it = sub.find(v);
    if (it != sub.end()) key += inst.Canonical(it->second).ToString();
  }
  return key;
}

/// Fires one TGD over all current triggers. Returns whether the instance
/// changed. Matches are materialized first so insertion does not disturb
/// the enumeration; new triggers created by these insertions are picked up
/// in the next round.
///
/// Two firing disciplines:
///  * standard chase (no provenance): a trigger whose head is already
///    satisfiable by some extension does not fire;
///  * provenance-aware chase: the *semi-oblivious* (Skolem) discipline —
///    every trigger fires exactly once per frontier binding, and on later
///    rounds its (possibly refined) provenance is OR-ed into the atoms it
///    produced. Satisfaction-based skipping would lose alternative
///    derivations that use the trigger's own existential witnesses, which
///    is exactly what PACB's backchase needs to enumerate rewritings.
Result<bool> ChaseTgdRound(size_t dep_index, const Tgd& tgd, Instance* inst,
                           const ChaseOptions& options, ChaseStats* stats,
                           FiredMemo* fired) {
  std::vector<Match> triggers = FindHomomorphisms(tgd.body, *inst);
  stats->triggers_checked += triggers.size();
  bool changed = false;
  const std::vector<std::string> existentials = tgd.ExistentialVariables();

  for (const Match& trigger : triggers) {
    // Provenance of the trigger: conjunction over matched body atoms
    // (re-resolved, as earlier merges may have rewritten them). `base`
    // is the same conjunction over the unconditioned base provenance —
    // the optimistic support that ignores EGD merge conditioning.
    ProvFormula prov;
    ProvFormula base;
    if (inst->track_provenance()) {
      prov = ProvFormula::True();
      base = ProvFormula::True();
      for (size_t id : trigger.atom_ids) {
        auto live = inst->FindAtom(inst->atom(id));
        prov = prov.And(inst->provenance(live.value_or(id)));
        base = base.And(inst->base_provenance(live.value_or(id)));
      }
    }

    // Canonicalize bindings (earlier merges in this round may apply).
    Substitution sub;
    for (const auto& [v, t] : trigger.sub) sub.emplace(v, inst->Canonical(t));

    if (inst->track_provenance()) {
      std::string key = TriggerKey(dep_index, tgd, sub, *inst);
      auto it = fired->find(key);
      if (it != fired->end()) {
        // Refire virtually: OR the refreshed provenance into the atoms
        // this trigger produced the first time. If merges have rewritten a
        // produced atom since, this derivation only reaches the current
        // form under those equalities — AND their conditioning in.
        for (size_t produced_id : it->second) {
          // The refreshed base is conditioned too: the trigger derives the
          // atom's *original* form (tracked as a ghost), so reaching the
          // current form still requires the merges that rewrote it. Only
          // the parents' contribution stays unconditioned.
          const ProvFormula& cond = inst->merge_conditioning(produced_id);
          auto r = inst->InsertWithBase(inst->atom(produced_id),
                                        prov.And(cond), base.And(cond));
          changed |= r.changed;
        }
        continue;
      }
      for (const std::string& ev : existentials) sub[ev] = inst->FreshNull();
      std::vector<size_t> produced;
      for (const Atom& h : tgd.head) {
        auto r = inst->InsertWithBase(ApplySubstitution(sub, h), prov, base);
        changed |= r.changed;
        produced.push_back(r.id);
      }
      (*fired)[std::move(key)] = std::move(produced);
      ++stats->tgd_fires;
    } else {
      // Head pattern with frontier variables substituted; existential
      // variables stay free for the satisfaction check.
      std::vector<Atom> head = ApplySubstitution(sub, tgd.head);
      if (ExistsHomomorphism(head, *inst)) continue;
      for (const std::string& ev : existentials) sub[ev] = inst->FreshNull();
      for (const Atom& h : tgd.head) {
        auto r = inst->Insert(ApplySubstitution(sub, h), prov);
        changed |= r.changed;
      }
      ++stats->tgd_fires;
    }
    if (inst->size() > options.max_atoms) {
      return Status::ChaseFailure(
          StrCat("chase exceeded max_atoms=", options.max_atoms,
                 " (non-terminating constraint set?)"));
    }
  }
  return changed;
}

/// Fires one EGD over all current triggers; merges are applied after the
/// enumeration so iteration sees a stable instance.
///
/// Triggers that equate the same pair of terms are grouped first and the
/// merge is conditioned on the OR of their provenances: each group member
/// is an independent derivation of the equality. Applying triggers one by
/// one would condition the merge on whichever derivation happened to fire
/// first (later ones become no-ops), losing alternative supports and
/// making the PACB backchase miss minimal rewritings.
Result<bool> ChaseEgdRound(const pivot::Egd& egd, Instance* inst,
                           ChaseStats* stats) {
  std::vector<Match> triggers = FindHomomorphisms(egd.body, *inst);
  stats->triggers_checked += triggers.size();
  struct PendingMerge {
    Term l, r;
    ProvFormula prov;
  };
  std::vector<PendingMerge> pending;
  std::unordered_map<std::string, size_t> groups;  // equality key -> index
  for (const Match& trigger : triggers) {
    Term l = ApplySubstitution(trigger.sub, egd.left);
    Term r = ApplySubstitution(trigger.sub, egd.right);
    if (l.is_variable() || r.is_variable()) {
      return Status::InvalidArgument(
          StrCat("EGD '", egd.label,
                 "' equates a variable not bound by its body"));
    }
    Term cl = inst->Canonical(l);
    Term cr = inst->Canonical(r);
    if (cl == cr) continue;  // Already equal: nothing to derive.
    ProvFormula prov = ProvFormula::True();
    if (inst->track_provenance()) {
      for (size_t id : trigger.atom_ids) {
        auto live = inst->FindAtom(inst->atom(id));
        prov = prov.And(inst->provenance(live.value_or(id)));
      }
    }
    std::string sl = cl.ToString();
    std::string sr = cr.ToString();
    if (sr < sl) std::swap(sl, sr);
    std::string key = StrCat(sl, "=", sr);
    auto [it, inserted] = groups.emplace(key, pending.size());
    if (inserted) {
      pending.push_back({std::move(l), std::move(r), std::move(prov)});
    } else if (inst->track_provenance()) {
      pending[it->second].prov = pending[it->second].prov.Or(prov);
    }
  }
  bool changed = false;
  for (const PendingMerge& pm : pending) {
    ESTOCADA_ASSIGN_OR_RETURN(bool merged,
                              inst->MergeTerms(pm.l, pm.r, pm.prov));
    if (merged) {
      changed = true;
      ++stats->egd_merges;
    }
  }
  return changed;
}

}  // namespace

Status RunChase(const std::vector<Dependency>& deps, Instance* inst,
                const ChaseOptions& options, ChaseStats* stats) {
  ChaseStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  FiredMemo fired;
  for (size_t round = 0; round < options.max_rounds; ++round) {
    ++stats->rounds;
    bool changed = false;
    for (size_t di = 0; di < deps.size(); ++di) {
      const Dependency& d = deps[di];
      if (d.is_tgd()) {
        ESTOCADA_ASSIGN_OR_RETURN(
            bool c, ChaseTgdRound(di, d.tgd, inst, options, stats, &fired));
        changed |= c;
      } else {
        ESTOCADA_ASSIGN_OR_RETURN(bool c, ChaseEgdRound(d.egd, inst, stats));
        changed |= c;
      }
    }
    if (!changed) {
      stats->reached_fixpoint = true;
      return Status::OK();
    }
  }
  return Status::ChaseFailure(
      StrCat("chase did not reach a fixpoint within ", options.max_rounds,
             " rounds"));
}

}  // namespace estocada::chase
