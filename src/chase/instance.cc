#include "chase/instance.h"

#include <algorithm>
#include <atomic>

#include "common/strings.h"

namespace estocada::chase {

using pivot::Atom;
using pivot::SymbolId;
using pivot::Term;

uint64_t Instance::NextEpoch() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

Instance::InsertResult Instance::Insert(Atom atom, const ProvFormula& prov) {
  return InsertWithBase(std::move(atom), prov, prov);
}

Instance::InsertResult Instance::InsertWithBase(Atom atom,
                                                const ProvFormula& prov,
                                                const ProvFormula& base) {
  // Canonicalize terms through the union-find before storing.
  for (Term& t : atom.terms) t = Canonical(t);
  for (const Term& t : atom.terms) {
    if (t.is_labelled_null() && t.null_id() >= next_null_id_) {
      next_null_id_ = t.null_id() + 1;
    }
  }
  // Intern first and deduplicate on the interned row: canonical atoms are
  // equal iff their relation ids and rows are.
  SymbolId rid = relations_.Intern(atom.relation);
  scratch_row_.clear();
  for (const Term& t : atom.terms) scratch_row_.push_back(values_.Intern(t));
  std::vector<size_t>& bucket =
      TouchBucket(row_index_, RowHash(rid, scratch_row_));
  for (size_t id : bucket) {
    if (rel_ids_[id] != rid || rows_[id] != scratch_row_) continue;
    bool changed = false;
    if (track_provenance_) {
      if (!prov_[id].Subsumes(prov)) {
        prov_[id] = prov_[id].Or(prov);
        changed = true;
      }
      if (!base_prov_[id].Subsumes(base)) {
        base_prov_[id] = base_prov_[id].Or(base);
      }
    }
    return {id, changed};
  }
  size_t id = atoms_.size();
  epoch_ = NextEpoch();
  atoms_.push_back(std::move(atom));
  prov_.push_back(track_provenance_ ? prov : ProvFormula());
  base_prov_.push_back(track_provenance_ ? base : ProvFormula());
  // An empty formula is wrong as merge conditioning (it means False), but
  // merge_conditioning() is only meaningful on provenance-tracking
  // instances, and tracking is enabled before any insert; skipping the
  // True() allocation otherwise keeps plain chases allocation-light.
  merge_cond_.push_back(track_provenance_ ? ProvFormula::True()
                                          : ProvFormula());
  alive_.push_back(true);
  forward_.push_back(id);
  if (rel_ids_.size() <= id) {
    rel_ids_.push_back(rid);
    rows_.emplace_back();
  }
  rel_ids_[id] = rid;
  rows_[id].assign(scratch_row_.begin(), scratch_row_.end());
  IndexAtom(id, bucket);
  return {id, true};
}

uint64_t Instance::RowHash(SymbolId rel_id, const std::vector<SymbolId>& row) {
  uint64_t h = 1469598103934665603ull ^ rel_id;  // FNV-1a over the ids.
  for (SymbolId v : row) {
    h ^= v;
    h *= 1099511628211ull;
  }
  return h;
}

void Instance::IndexAtom(size_t id, std::vector<size_t>& bucket) {
  SymbolId rid = rel_ids_[id];
  const std::vector<SymbolId>& row = rows_[id];
  bucket.push_back(id);
  if (rid >= by_relation_id_.size()) by_relation_id_.resize(rid + 1);
  by_relation_id_[rid].push_back(id);
  for (uint32_t pos = 0; pos < row.size(); ++pos) {
    TouchBucket(pos_index_, PosKey(rid, pos, row[pos])).push_back(id);
  }
}

size_t Instance::live_size() const {
  size_t n = 0;
  for (bool b : alive_) {
    if (b) ++n;
  }
  return n;
}

bool Instance::Contains(const Atom& atom) const {
  return FindAtom(atom).has_value();
}

const std::vector<size_t>& Instance::AtomsOf(const std::string& relation) const {
  static const std::vector<size_t> kEmpty;
  auto rid = relations_.Lookup(relation);
  return rid.has_value() ? by_relation_id_[*rid] : kEmpty;
}

const std::vector<size_t>& Instance::AtomsOfRel(SymbolId rel_id) const {
  static const std::vector<size_t> kEmpty;
  return rel_id < by_relation_id_.size() ? by_relation_id_[rel_id] : kEmpty;
}

const std::vector<size_t>& Instance::CandidatesAt(SymbolId rel_id,
                                                  uint32_t pos,
                                                  SymbolId value) const {
  static const std::vector<size_t> kEmpty;
  const std::vector<size_t>* b = LiveBucket(pos_index_, PosKey(rel_id, pos, value));
  return b == nullptr ? kEmpty : *b;
}

Term Instance::Canonical(const Term& t) const {
  Term cur = t;
  // Path walk (no compression here: method is const; chains stay short
  // because MergeTerms compresses as it rebuilds).
  for (;;) {
    auto it = redirect_.find(cur);
    if (it == redirect_.end()) return cur;
    cur = it->second;
  }
}

size_t Instance::LiveId(size_t id) const {
  while (forward_[id] != id) id = forward_[id];
  return id;
}

Result<bool> Instance::MergeTerms(const Term& a, const Term& b,
                                  const ProvFormula& merge_prov) {
  Term ca = Canonical(a);
  Term cb = Canonical(b);
  if (ca == cb) return false;
  if (ca.is_constant() && cb.is_constant()) {
    return Status::ChaseFailure(
        StrCat("EGD attempts to equate distinct constants ", ca.ToString(),
               " and ", cb.ToString()));
  }
  // Constants win; between nulls, the smaller id wins (stable orientation).
  Term winner = ca;
  Term loser = cb;
  if (cb.is_constant() ||
      (ca.is_labelled_null() && cb.is_labelled_null() &&
       cb.null_id() < ca.null_id())) {
    winner = cb;
    loser = ca;
  }
  redirect_[loser] = winner;
  Recanonicalize(merge_prov);
  return true;
}

std::optional<size_t> Instance::FindAtom(const Atom& atom) const {
  auto rid = relations_.Lookup(atom.relation);
  if (!rid.has_value()) return std::nullopt;
  // An atom can only be present if every canonical term is interned.
  std::vector<SymbolId> row;
  row.reserve(atom.terms.size());
  for (const Term& t : atom.terms) {
    auto vid = values_.Lookup(Canonical(t));
    if (!vid.has_value()) return std::nullopt;
    row.push_back(*vid);
  }
  const std::vector<size_t>* bucket = LiveBucket(row_index_, RowHash(*rid, row));
  if (bucket == nullptr) return std::nullopt;
  for (size_t id : *bucket) {
    if (rel_ids_[id] == *rid && rows_[id] == row) return id;
  }
  return std::nullopt;
}

void Instance::Recanonicalize(const ProvFormula& merge_prov) {
  epoch_ = NextEpoch();
  intern_epoch_ = NextEpoch();
  // Invalidate every pos_index_/row_index_ bucket at once; their storage
  // is revived lazily as the rebuild below re-touches them.
  ++index_gen_;
  for (auto& ids : by_relation_id_) ids.clear();
  for (size_t id = 0; id < atoms_.size(); ++id) {
    if (!alive_[id]) continue;
    Atom& atom = atoms_[id];
    Atom before = track_provenance_ ? atom : Atom{};
    bool rewritten = false;
    for (Term& t : atom.terms) {
      Term c = Canonical(t);
      if (!(c == t)) {
        t = c;
        rewritten = true;
      }
    }
    if (rewritten && track_provenance_ && !merge_prov.is_true()) {
      // This atom's current form is only derivable given the equality that
      // caused the rewrite: condition its provenance on the merge's, and
      // remember the conditioning for future re-derivations of the atom.
      // The pre-merge form lives on as a ghost with the base provenance it
      // accumulated; the base of the new form starts from the conditioned
      // provenance (nothing derives it unconditionally yet).
      ghost_forms_.push_back({std::move(before), base_prov_[id]});
      prov_[id] = prov_[id].And(merge_prov);
      merge_cond_[id] = merge_cond_[id].And(merge_prov);
      base_prov_[id] = prov_[id];
    }
    // Re-intern the rewritten row (the relation id is untouched by merges)
    // and check whether this form collapsed onto an earlier atom.
    SymbolId rid = rel_ids_[id];
    scratch_row_.clear();
    for (const Term& t : atom.terms) scratch_row_.push_back(values_.Intern(t));
    std::vector<size_t>& bucket =
        TouchBucket(row_index_, RowHash(rid, scratch_row_));
    size_t keep = atoms_.size();
    for (size_t other : bucket) {
      if (rel_ids_[other] == rid && rows_[other] == scratch_row_) {
        keep = other;
        break;
      }
    }
    if (keep != atoms_.size()) {
      // Collapsed onto an earlier atom: merge provenance, retire this id.
      if (track_provenance_) {
        prov_[keep] = prov_[keep].Or(prov_[id]);
        base_prov_[keep] = base_prov_[keep].Or(base_prov_[id]);
      }
      alive_[id] = false;
      forward_[id] = keep;
      continue;
    }
    rows_[id].assign(scratch_row_.begin(), scratch_row_.end());
    IndexAtom(id, bucket);
  }
}

void Instance::Reset() {
  track_provenance_ = false;
  atoms_.clear();
  prov_.clear();
  base_prov_.clear();
  merge_cond_.clear();
  ghost_forms_.clear();
  alive_.clear();
  forward_.clear();
  redirect_.clear();
  next_null_id_ = 0;
  epoch_ = NextEpoch();
  // The interning tables are deliberately NOT cleared and intern_epoch_ is
  // NOT bumped: interning is append-only and constants never lose their
  // canonical form (only nulls are ever redirected, and redirect_ is gone),
  // so every (relation id, value id) resolution taken against this
  // instance — in particular a matcher's compiled pattern — remains valid
  // verbatim. The content itself is gone: all index buckets are stale.
  // rel_ids_ and rows_ stay behind as capacity pools: every entry is stale
  // (atoms_ is empty) and is overwritten before its id can be read again.
  ++index_gen_;
  for (auto& ids : by_relation_id_) ids.clear();
}

Status Instance::InsertAll(const std::vector<Atom>& atoms) {
  for (const Atom& a : atoms) {
    for (const Term& t : a.terms) {
      if (t.is_variable()) {
        return Status::InvalidArgument(
            StrCat("cannot insert non-ground atom ", a.ToString()));
      }
    }
    Insert(a);
  }
  return Status::OK();
}

bool Instance::CheckIndexConsistency(std::string* error) const {
  auto fail = [&](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  for (size_t id = 0; id < atoms_.size(); ++id) {
    if (!alive_[id]) continue;
    const Atom& atom = atoms_[id];
    // The stored form of a live atom must be canonical.
    for (const Term& t : atom.terms) {
      if (!(Canonical(t) == t)) {
        return fail(StrCat("live atom ", id, " (", atom.ToString(),
                           ") holds non-canonical term ", t.ToString()));
      }
    }
    auto rid = relations_.Lookup(atom.relation);
    if (!rid.has_value() || rel_ids_[id] != *rid) {
      return fail(StrCat("atom ", id, " has stale relation id"));
    }
    const std::vector<SymbolId>& row = rows_[id];
    if (row.size() != atom.terms.size()) {
      return fail(StrCat("atom ", id, " row/terms arity mismatch"));
    }
    const std::vector<size_t>& rel_ids = by_relation_id_[*rid];
    if (std::find(rel_ids.begin(), rel_ids.end(), id) == rel_ids.end()) {
      return fail(StrCat("atom ", id, " missing from its relation list"));
    }
    for (uint32_t pos = 0; pos < row.size(); ++pos) {
      auto vid = values_.Lookup(atom.terms[pos]);
      if (!vid.has_value() || row[pos] != *vid) {
        return fail(StrCat("atom ", id, " pos ", pos,
                           " row entry does not intern its term"));
      }
      const std::vector<size_t>& bucket = CandidatesAt(*rid, pos, row[pos]);
      if (std::find(bucket.begin(), bucket.end(), id) == bucket.end()) {
        return fail(StrCat("atom ", id, " pos ", pos,
                           " missing from the position index"));
      }
    }
  }
  // Every current index entry must point at an atom that (while alive)
  // actually carries the indexed value at the indexed position. Stale
  // buckets (from before the last Reset/Recanonicalize) are unreadable by
  // construction and skipped.
  for (const auto& [key, bucket] : pos_index_) {
    if (bucket.stamp != index_gen_) continue;
    SymbolId rel = static_cast<SymbolId>(key >> 48);
    uint32_t pos = static_cast<uint32_t>((key >> 32) & 0xFFFFu);
    SymbolId value = static_cast<SymbolId>(key & 0xFFFFFFFFu);
    for (size_t id : bucket.ids) {
      if (!alive_[id]) continue;  // Stale dead entries are allowed.
      if (rel_ids_[id] != rel || pos >= rows_[id].size() ||
          rows_[id][pos] != value) {
        return fail(StrCat("index entry (rel=", relations_.name(rel), ", pos=",
                           pos, ") points at mismatched atom ", id));
      }
    }
  }
  return true;
}

std::string Instance::ToString() const {
  std::string out;
  for (size_t id = 0; id < atoms_.size(); ++id) {
    if (!alive_[id]) continue;
    out += atoms_[id].ToString();
    if (track_provenance_) {
      out += "  @ ";
      out += prov_[id].ToString();
    }
    out += "\n";
  }
  return out;
}

}  // namespace estocada::chase
