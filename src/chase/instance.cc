#include "chase/instance.h"

#include <algorithm>

#include "common/strings.h"

namespace estocada::chase {

using pivot::Atom;
using pivot::Term;

Instance::InsertResult Instance::Insert(Atom atom, const ProvFormula& prov) {
  return InsertWithBase(std::move(atom), prov, prov);
}

Instance::InsertResult Instance::InsertWithBase(Atom atom,
                                                const ProvFormula& prov,
                                                const ProvFormula& base) {
  // Canonicalize terms through the union-find before storing.
  for (Term& t : atom.terms) t = Canonical(t);
  for (const Term& t : atom.terms) {
    if (t.is_labelled_null() && t.null_id() >= next_null_id_) {
      next_null_id_ = t.null_id() + 1;
    }
  }
  auto it = index_.find(atom);
  if (it != index_.end()) {
    size_t id = it->second;
    bool changed = false;
    if (track_provenance_) {
      if (!prov_[id].Subsumes(prov)) {
        prov_[id] = prov_[id].Or(prov);
        changed = true;
      }
      if (!base_prov_[id].Subsumes(base)) {
        base_prov_[id] = base_prov_[id].Or(base);
      }
    }
    return {id, changed};
  }
  size_t id = atoms_.size();
  by_relation_[atom.relation].push_back(id);
  index_.emplace(atom, id);
  atoms_.push_back(std::move(atom));
  prov_.push_back(track_provenance_ ? prov : ProvFormula());
  base_prov_.push_back(track_provenance_ ? base : ProvFormula());
  merge_cond_.push_back(ProvFormula::True());
  alive_.push_back(true);
  return {id, true};
}

size_t Instance::live_size() const {
  size_t n = 0;
  for (bool b : alive_) {
    if (b) ++n;
  }
  return n;
}

bool Instance::Contains(const Atom& atom) const {
  Atom canon = atom;
  for (Term& t : canon.terms) t = Canonical(t);
  return index_.count(canon) > 0;
}

const std::vector<size_t>& Instance::AtomsOf(const std::string& relation) const {
  static const std::vector<size_t> kEmpty;
  auto it = by_relation_.find(relation);
  return it == by_relation_.end() ? kEmpty : it->second;
}

Term Instance::Canonical(const Term& t) const {
  Term cur = t;
  // Path walk (no compression here: method is const; chains stay short
  // because MergeTerms compresses as it rebuilds).
  for (;;) {
    auto it = redirect_.find(cur);
    if (it == redirect_.end()) return cur;
    cur = it->second;
  }
}

Result<bool> Instance::MergeTerms(const Term& a, const Term& b,
                                  const ProvFormula& merge_prov) {
  Term ca = Canonical(a);
  Term cb = Canonical(b);
  if (ca == cb) return false;
  if (ca.is_constant() && cb.is_constant()) {
    return Status::ChaseFailure(
        StrCat("EGD attempts to equate distinct constants ", ca.ToString(),
               " and ", cb.ToString()));
  }
  // Constants win; between nulls, the smaller id wins (stable orientation).
  Term winner = ca;
  Term loser = cb;
  if (cb.is_constant() ||
      (ca.is_labelled_null() && cb.is_labelled_null() &&
       cb.null_id() < ca.null_id())) {
    winner = cb;
    loser = ca;
  }
  redirect_[loser] = winner;
  Recanonicalize(merge_prov);
  return true;
}

std::optional<size_t> Instance::FindAtom(const Atom& atom) const {
  Atom canon = atom;
  for (Term& t : canon.terms) t = Canonical(t);
  auto it = index_.find(canon);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

void Instance::Recanonicalize(const ProvFormula& merge_prov) {
  by_relation_.clear();
  index_.clear();
  for (size_t id = 0; id < atoms_.size(); ++id) {
    if (!alive_[id]) continue;
    Atom& atom = atoms_[id];
    Atom before = track_provenance_ ? atom : Atom{};
    bool rewritten = false;
    for (Term& t : atom.terms) {
      Term c = Canonical(t);
      if (!(c == t)) {
        t = c;
        rewritten = true;
      }
    }
    if (rewritten && track_provenance_ && !merge_prov.is_true()) {
      // This atom's current form is only derivable given the equality that
      // caused the rewrite: condition its provenance on the merge's, and
      // remember the conditioning for future re-derivations of the atom.
      // The pre-merge form lives on as a ghost with the base provenance it
      // accumulated; the base of the new form starts from the conditioned
      // provenance (nothing derives it unconditionally yet).
      ghost_forms_.push_back({std::move(before), base_prov_[id]});
      prov_[id] = prov_[id].And(merge_prov);
      merge_cond_[id] = merge_cond_[id].And(merge_prov);
      base_prov_[id] = prov_[id];
    }
    auto it = index_.find(atom);
    if (it != index_.end()) {
      // Collapsed onto an earlier atom: merge provenance, retire this id.
      size_t keep = it->second;
      if (track_provenance_) {
        prov_[keep] = prov_[keep].Or(prov_[id]);
        base_prov_[keep] = base_prov_[keep].Or(base_prov_[id]);
      }
      alive_[id] = false;
      continue;
    }
    index_.emplace(atom, id);
    by_relation_[atom.relation].push_back(id);
  }
}

Status Instance::InsertAll(const std::vector<Atom>& atoms) {
  for (const Atom& a : atoms) {
    for (const Term& t : a.terms) {
      if (t.is_variable()) {
        return Status::InvalidArgument(
            StrCat("cannot insert non-ground atom ", a.ToString()));
      }
    }
    Insert(a);
  }
  return Status::OK();
}

std::string Instance::ToString() const {
  std::string out;
  for (size_t id = 0; id < atoms_.size(); ++id) {
    if (!alive_[id]) continue;
    out += atoms_[id].ToString();
    if (track_provenance_) {
      out += "  @ ";
      out += prov_[id].ToString();
    }
    out += "\n";
  }
  return out;
}

}  // namespace estocada::chase
