#include "chase/containment.h"

#include "chase/homomorphism.h"
#include "common/strings.h"

namespace estocada::chase {

using pivot::ConjunctiveQuery;
using pivot::Substitution;
using pivot::Term;

namespace {

/// Builds the required head mapping: q2's i-th head term must land on
/// `targets[i]` (the canonical image of q1's i-th frozen head term).
/// Returns false when no homomorphism can satisfy the heads (a ground head
/// term mismatches, or one variable would need two distinct targets).
bool RequiredHeadMapping(const ConjunctiveQuery& q2, const Instance& inst,
                         const std::vector<Term>& targets,
                         Substitution* required) {
  for (size_t i = 0; i < q2.head.size(); ++i) {
    const Term& target = targets[i];
    const Term& h2 = q2.head[i];
    if (h2.is_variable()) {
      auto it = required->find(h2.var_name());
      if (it != required->end()) {
        if (!(it->second == target)) return false;
      } else {
        required->emplace(h2.var_name(), target);
      }
    } else {
      if (!(inst.Canonical(h2) == target)) return false;
    }
  }
  return true;
}

}  // namespace

Result<bool> IsContainedIn(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2,
                           const std::vector<pivot::Dependency>& deps,
                           const ChaseOptions& options) {
  ChaseEngine engine(deps);
  return IsContainedIn(q1, q2, engine, options);
}

Result<bool> IsContainedIn(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2, ChaseEngine& engine,
                           const ChaseOptions& options) {
  FixedRightContainment check(q2, engine, options);
  return check.Contains(q1);
}

FixedRightContainment::FixedRightContainment(ConjunctiveQuery q2,
                                             ChaseEngine& engine,
                                             const ChaseOptions& options)
    : q2_(std::move(q2)), engine_(engine), options_(options),
      matcher_(q2_.body) {}

Result<bool> FixedRightContainment::Contains(const ConjunctiveQuery& q1) {
  if (q1.arity() != q2_.arity()) {
    return Status::InvalidArgument(
        StrCat("containment between different arities: ", q1.arity(), " vs ",
               q2_.arity()));
  }
  // Freeze q1 and chase (on the reusable scratch instance).
  pivot::FrozenBody frozen = FreezeBody(q1);
  scratch_.Reset();
  Status st = scratch_.InsertAll(frozen.atoms);
  if (!st.ok()) return st;
  std::vector<Term> head_terms;
  head_terms.reserve(q1.head.size());
  for (const Term& h : q1.head) {
    head_terms.push_back(pivot::ApplySubstitution(frozen.freeze, h));
  }
  return ChaseAndProbe(head_terms);
}

Result<bool> FixedRightContainment::ContainsFrozen(
    const std::vector<const pivot::Atom*>& atoms,
    const std::vector<Term>& head_terms) {
  if (head_terms.size() != q2_.arity()) {
    return Status::InvalidArgument(
        StrCat("containment between different arities: ", head_terms.size(),
               " vs ", q2_.arity()));
  }
  scratch_.Reset();
  for (const pivot::Atom* a : atoms) scratch_.Insert(*a);
  // A head null that occurs in no atom must still not collide with nulls
  // the chase mints (Insert only reserves ids it has seen).
  for (const Term& h : head_terms) {
    if (h.is_labelled_null()) scratch_.ReserveNullIdsUpTo(h.null_id() + 1);
  }
  return ChaseAndProbe(head_terms);
}

Result<bool> FixedRightContainment::ChaseAndProbe(
    const std::vector<Term>& head_terms) {
  Status chase_status = engine_.Run(&scratch_, options_);
  if (!chase_status.ok()) {
    if (chase_status.code() == StatusCode::kChaseFailure) {
      // The left side is unsatisfiable under the constraints: vacuously
      // contained.
      return true;
    }
    return chase_status;
  }
  std::vector<Term> targets;
  targets.reserve(head_terms.size());
  for (const Term& h : head_terms) {
    targets.push_back(scratch_.Canonical(h));
  }
  Substitution required;
  if (!RequiredHeadMapping(q2_, scratch_, targets, &required)) return false;
  if (UsingScanMatcherForDebug()) {
    return ExistsHomomorphism(q2_.body, scratch_, required);
  }
  return !matcher_.ForEach(scratch_, required,
                           [](const Match&) { return false; });
}

FixedLeftContainment::FixedLeftContainment(ConjunctiveQuery q1,
                                           ChaseEngine& engine,
                                           const ChaseOptions& options)
    : q1_(std::move(q1)), engine_(engine), options_(options) {}

Status FixedLeftContainment::Prepare() {
  pivot::FrozenBody frozen = FreezeBody(q1_);
  ESTOCADA_RETURN_NOT_OK(inst_.InsertAll(frozen.atoms));
  Status chase_status = engine_.Run(&inst_, options_);
  if (!chase_status.ok()) {
    if (chase_status.code() == StatusCode::kChaseFailure) {
      vacuous_ = true;
      return Status::OK();
    }
    return chase_status;
  }
  head_targets_.reserve(q1_.head.size());
  for (const Term& h : q1_.head) {
    head_targets_.push_back(
        inst_.Canonical(pivot::ApplySubstitution(frozen.freeze, h)));
  }
  return Status::OK();
}

Result<bool> FixedLeftContainment::ContainedIn(const ConjunctiveQuery& q2) {
  if (q1_.arity() != q2.arity()) {
    return Status::InvalidArgument(
        StrCat("containment between different arities: ", q1_.arity(), " vs ",
               q2.arity()));
  }
  if (!prepared_) {
    ESTOCADA_RETURN_NOT_OK(Prepare());
    prepared_ = true;
  }
  if (vacuous_) return true;
  Substitution required;
  if (!RequiredHeadMapping(q2, inst_, head_targets_, &required)) return false;
  return ExistsHomomorphism(q2.body, inst_, required);
}

Result<bool> AreEquivalent(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2,
                           const std::vector<pivot::Dependency>& deps,
                           const ChaseOptions& options) {
  ESTOCADA_ASSIGN_OR_RETURN(bool a, IsContainedIn(q1, q2, deps, options));
  if (!a) return false;
  return IsContainedIn(q2, q1, deps, options);
}

}  // namespace estocada::chase
