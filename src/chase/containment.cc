#include "chase/containment.h"

#include "chase/homomorphism.h"
#include "common/strings.h"

namespace estocada::chase {

using pivot::ConjunctiveQuery;
using pivot::Substitution;
using pivot::Term;

Result<bool> IsContainedIn(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2,
                           const std::vector<pivot::Dependency>& deps,
                           const ChaseOptions& options) {
  if (q1.arity() != q2.arity()) {
    return Status::InvalidArgument(
        StrCat("containment between different arities: ", q1.arity(), " vs ",
               q2.arity()));
  }
  // Freeze q1 and chase.
  pivot::FrozenBody frozen = FreezeBody(q1);
  Instance inst;
  Status st = inst.InsertAll(frozen.atoms);
  if (!st.ok()) return st;
  Status chase_status = RunChase(deps, &inst, options);
  if (!chase_status.ok()) {
    if (chase_status.code() == StatusCode::kChaseFailure) {
      // q1 is unsatisfiable under the constraints: vacuously contained.
      return true;
    }
    return chase_status;
  }

  // Required head mapping: q2's i-th head term must land on the canonical
  // image of q1's i-th head term.
  Substitution required;
  for (size_t i = 0; i < q2.head.size(); ++i) {
    Term target = inst.Canonical(
        pivot::ApplySubstitution(frozen.freeze, q1.head[i]));
    const Term& h2 = q2.head[i];
    if (h2.is_variable()) {
      auto it = required.find(h2.var_name());
      if (it != required.end()) {
        if (!(it->second == target)) return false;
      } else {
        required.emplace(h2.var_name(), target);
      }
    } else {
      if (!(inst.Canonical(h2) == target)) return false;
    }
  }
  return ExistsHomomorphism(q2.body, inst, required);
}

Result<bool> AreEquivalent(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2,
                           const std::vector<pivot::Dependency>& deps,
                           const ChaseOptions& options) {
  ESTOCADA_ASSIGN_OR_RETURN(bool a, IsContainedIn(q1, q2, deps, options));
  if (!a) return false;
  return IsContainedIn(q2, q1, deps, options);
}

}  // namespace estocada::chase
