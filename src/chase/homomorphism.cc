#include "chase/homomorphism.h"

#include <algorithm>

namespace estocada::chase {

using pivot::Atom;
using pivot::Substitution;
using pivot::Term;

namespace {

/// Backtracking matcher. At each level picks the unmatched pattern atom
/// with the most bound terms (cheap fail-first heuristic), scans the
/// candidate atoms of its relation, and unifies.
class Matcher {
 public:
  Matcher(const std::vector<Atom>& pattern, const Instance& inst,
          const std::function<bool(const Match&)>& on_match)
      : pattern_(pattern), inst_(inst), on_match_(on_match) {}

  bool Run(const Substitution& start) {
    sub_ = start;
    // Canonicalize the start bindings through the instance union-find so
    // required targets survive EGD merges.
    for (auto& [k, v] : sub_) v = inst_.Canonical(v);
    matched_.assign(pattern_.size(), false);
    atom_ids_.assign(pattern_.size(), 0);
    return Descend(0);
  }

 private:
  /// Number of terms of `a` that are ground or bound under sub_.
  size_t BoundCount(const Atom& a) const {
    size_t n = 0;
    for (const Term& t : a.terms) {
      if (!t.is_variable() || sub_.count(t.var_name())) ++n;
    }
    return n;
  }

  /// Returns false to abort the whole enumeration (callback said stop).
  bool Descend(size_t depth) {
    if (depth == pattern_.size()) {
      Match m;
      m.sub = sub_;
      m.atom_ids = atom_ids_;
      return on_match_(m);
    }
    // Fail-first: the unmatched atom with the most bound positions.
    size_t best = pattern_.size();
    size_t best_bound = 0;
    for (size_t i = 0; i < pattern_.size(); ++i) {
      if (matched_[i]) continue;
      size_t b = BoundCount(pattern_[i]);
      if (best == pattern_.size() || b > best_bound) {
        best = i;
        best_bound = b;
      }
    }
    const Atom& pat = pattern_[best];
    matched_[best] = true;

    const std::vector<size_t>& candidates = inst_.AtomsOf(pat.relation);
    for (size_t id : candidates) {
      if (!inst_.alive(id)) continue;
      const Atom& ground = inst_.atom(id);
      if (ground.terms.size() != pat.terms.size()) continue;
      // Attempt unification; record which vars we bound to undo later.
      std::vector<std::string> bound_here;
      bool ok = true;
      for (size_t i = 0; i < pat.terms.size(); ++i) {
        const Term& pt = pat.terms[i];
        const Term& gt = ground.terms[i];
        if (pt.is_variable()) {
          auto it = sub_.find(pt.var_name());
          if (it == sub_.end()) {
            sub_.emplace(pt.var_name(), gt);
            bound_here.push_back(pt.var_name());
          } else if (!(it->second == gt)) {
            ok = false;
            break;
          }
        } else {
          // Constants / labelled nulls in the pattern must match exactly
          // (after canonicalization, which Insert already applied).
          if (!(inst_.Canonical(pt) == gt)) {
            ok = false;
            break;
          }
        }
      }
      if (ok) {
        atom_ids_[best] = id;
        if (!Descend(depth + 1)) {
          for (const auto& v : bound_here) sub_.erase(v);
          matched_[best] = false;
          return false;
        }
      }
      for (const auto& v : bound_here) sub_.erase(v);
    }
    matched_[best] = false;
    return true;
  }

  const std::vector<Atom>& pattern_;
  const Instance& inst_;
  const std::function<bool(const Match&)>& on_match_;
  Substitution sub_;
  std::vector<bool> matched_;
  std::vector<size_t> atom_ids_;
};

}  // namespace

void ForEachHomomorphism(const std::vector<Atom>& pattern,
                         const Instance& inst, const Substitution& start,
                         const std::function<bool(const Match&)>& on_match) {
  if (pattern.empty()) {
    Match m;
    m.sub = start;
    on_match(m);
    return;
  }
  Matcher(pattern, inst, on_match).Run(start);
}

std::vector<Match> FindHomomorphisms(const std::vector<Atom>& pattern,
                                     const Instance& inst,
                                     const Substitution& start, size_t limit) {
  std::vector<Match> out;
  ForEachHomomorphism(pattern, inst, start, [&](const Match& m) {
    out.push_back(m);
    return limit == 0 || out.size() < limit;
  });
  return out;
}

bool ExistsHomomorphism(const std::vector<Atom>& pattern, const Instance& inst,
                        const Substitution& start) {
  bool found = false;
  ForEachHomomorphism(pattern, inst, start, [&](const Match&) {
    found = true;
    return false;
  });
  return found;
}

std::vector<Atom> LiveAtoms(const Instance& inst) {
  std::vector<Atom> out;
  out.reserve(inst.live_size());
  for (size_t id = 0; id < inst.size(); ++id) {
    if (inst.alive(id)) out.push_back(inst.atom(id));
  }
  return out;
}

std::vector<Atom> NullsToVariables(std::vector<Atom> atoms) {
  for (Atom& a : atoms) {
    for (Term& t : a.terms) {
      if (t.is_labelled_null()) {
        t = Term::Var("_n" + std::to_string(t.null_id()));
      }
    }
  }
  return atoms;
}

bool HomomorphicallyEquivalent(const Instance& a, const Instance& b) {
  return ExistsHomomorphism(NullsToVariables(LiveAtoms(a)), b) &&
         ExistsHomomorphism(NullsToVariables(LiveAtoms(b)), a);
}

}  // namespace estocada::chase
