#include "chase/homomorphism.h"

#include <algorithm>
#include <atomic>

namespace estocada::chase {

using pivot::Atom;
using pivot::SymbolId;
using pivot::Substitution;
using pivot::Term;

namespace {

std::atomic<bool> g_use_scan_matcher{false};

}  // namespace

void SetUseScanMatcherForDebug(bool on) {
  g_use_scan_matcher.store(on, std::memory_order_relaxed);
}

bool UsingScanMatcherForDebug() {
  return g_use_scan_matcher.load(std::memory_order_relaxed);
}

HomomorphismMatcher::HomomorphismMatcher(std::vector<Atom> pattern)
    : pattern_(std::move(pattern)) {
  for (const Atom& a : pattern_) {
    for (const Term& t : a.terms) {
      if (!t.is_variable()) continue;
      auto [it, inserted] = var_slots_.emplace(
          t.var_name(), static_cast<uint32_t>(var_names_.size()));
      if (inserted) var_names_.push_back(t.var_name());
    }
  }
}

HomomorphismMatcher::Prep HomomorphismMatcher::PrepareCall(
    const Instance& inst, const Substitution& start) {
  if (pattern_.empty()) return Prep::kEmptyPattern;
  extra_.clear();
  slots_.assign(var_names_.size(), pivot::kNoSymbol);
  // `slot_bound_[s]` tracks, *statically*, whether slot s is bound before a
  // given join level: by `start` here, then by each ordered atom below.
  slot_bound_.assign(var_names_.size(), 0);
  uint64_t mask = 0;
  for (const auto& [name, term] : start) {
    auto it = var_slots_.find(name);
    if (it == var_slots_.end()) {
      // Carried through to every match, canonicalized like the rest.
      extra_.emplace_back(name, inst.Canonical(term));
      continue;
    }
    auto vid = inst.ValueIdOf(term);
    // A pattern variable pinned to a value that occurs nowhere in the
    // instance can never be matched.
    if (!vid.has_value()) return Prep::kNoMatches;
    slots_[it->second] = *vid;
    slot_bound_[it->second] = 1;
    if (it->second < 64) mask |= uint64_t{1} << it->second;
  }
  return EnsureOrder(inst, mask, var_names_.size() <= 64);
}

HomomorphismMatcher::Prep HomomorphismMatcher::PrepareCallSlots(
    const Instance& inst,
    const std::vector<std::pair<uint32_t, pivot::SymbolId>>& bound) {
  if (pattern_.empty()) return Prep::kEmptyPattern;
  extra_.clear();
  slots_.assign(var_names_.size(), pivot::kNoSymbol);
  slot_bound_.assign(var_names_.size(), 0);
  uint64_t mask = 0;
  for (const auto& [slot, vid] : bound) {
    slots_[slot] = vid;
    slot_bound_[slot] = 1;
    if (slot < 64) mask |= uint64_t{1} << slot;
  }
  return EnsureOrder(inst, mask, var_names_.size() <= 64);
}

HomomorphismMatcher::Prep HomomorphismMatcher::EnsureOrder(
    const Instance& inst, uint64_t mask, bool cacheable) {
  // A kReady compilation survives inserts (append-only interning: the
  // resolved ids stay valid) and only dies with a recanonicalizing merge.
  // A kNoMatches result can additionally be flipped by a newly interned
  // relation or value, so it is also keyed on the table sizes.
  if (cache_valid_ && cached_inst_ == &inst && cached_mask_ == mask &&
      cached_intern_epoch_ == inst.intern_epoch() &&
      (cached_prep_ == Prep::kReady ||
       (cached_rel_count_ == inst.relation_count() &&
        cached_val_count_ == inst.value_count()))) {
    if (cached_prep_ == Prep::kReady) atom_ids_.assign(pattern_.size(), 0);
    return cached_prep_;
  }
  Prep p = CompileOrder(inst);
  cache_valid_ = cacheable;
  cached_inst_ = &inst;
  cached_intern_epoch_ = inst.intern_epoch();
  cached_rel_count_ = inst.relation_count();
  cached_val_count_ = inst.value_count();
  cached_mask_ = mask;
  cached_prep_ = p;
  return p;
}

HomomorphismMatcher::Prep HomomorphismMatcher::CompileOrder(
    const Instance& inst) {
  // Resolve each pattern atom's relation and ground values against the
  // instance's interning; an unresolvable one can never match.
  if (resolved_.size() != pattern_.size()) resolved_.resize(pattern_.size());
  for (size_t i = 0; i < pattern_.size(); ++i) {
    const Atom& a = pattern_[i];
    auto rid = inst.RelationIdOf(a.relation);
    if (!rid.has_value()) return Prep::kNoMatches;
    resolved_[i].rel_id = *rid;
    std::vector<LevelOp>& ops = resolved_[i].ops_proto;
    ops.clear();
    ops.reserve(a.terms.size());
    for (uint32_t pos = 0; pos < a.terms.size(); ++pos) {
      const Term& t = a.terms[pos];
      LevelOp op;
      op.pos = pos;
      if (t.is_variable()) {
        op.kind = LevelOp::kCheckSlot;  // Refined to bind/check below.
        op.slot = var_slots_.at(t.var_name());
        op.value = pivot::kNoSymbol;
      } else {
        auto vid = inst.ValueIdOf(t);
        if (!vid.has_value()) return Prep::kNoMatches;
        op.kind = LevelOp::kCheckValue;
        op.slot = 0;
        op.value = *vid;
      }
      ops.push_back(op);
    }
  }

  // Static fail-first join order. Because every candidate unification at a
  // level binds *all* of that atom's variables, the legacy per-level
  // dynamic pick ("unmatched atom with the most ground-or-bound terms,
  // first on ties") depends only on which atoms were matched earlier — so
  // computing it once here reproduces the legacy enumeration order
  // exactly, which keeps golden outputs byte-stable.
  if (levels_.size() != pattern_.size()) levels_.resize(pattern_.size());
  used_.assign(pattern_.size(), 0);
  for (size_t step = 0; step < pattern_.size(); ++step) {
    size_t best = pattern_.size();
    size_t best_bound = 0;
    for (size_t i = 0; i < pattern_.size(); ++i) {
      if (used_[i]) continue;
      size_t b = 0;
      for (const LevelOp& op : resolved_[i].ops_proto) {
        if (op.kind == LevelOp::kCheckValue || slot_bound_[op.slot]) ++b;
      }
      if (best == pattern_.size() || b > best_bound) {
        best = i;
        best_bound = b;
      }
    }
    used_[best] = 1;
    Level& lv = levels_[step];
    lv.ops.clear();
    lv.bind_slots.clear();
    lv.seeds.clear();
    lv.pattern_index = best;
    lv.rel_id = resolved_[best].rel_id;
    lv.arity = static_cast<uint32_t>(resolved_[best].ops_proto.size());
    for (LevelOp op : resolved_[best].ops_proto) {
      if (op.kind == LevelOp::kCheckValue) {
        lv.seeds.push_back({op.pos, /*from_slot=*/false, 0, op.value});
      } else if (slot_bound_[op.slot]) {
        // Bound by start or an earlier level (or an earlier position of
        // this very atom): compare against the slot at runtime.
        lv.seeds.push_back({op.pos, /*from_slot=*/true, op.slot,
                            pivot::kNoSymbol});
      } else {
        op.kind = LevelOp::kBindSlot;
        slot_bound_[op.slot] = 1;
        lv.bind_slots.push_back(op.slot);
      }
      lv.ops.push_back(op);
    }
    // A repeated variable's second occurrence within this atom became a
    // kCheckSlot *and* a seed — but its slot is only bound mid-unification,
    // so it must not seed the candidate scan. Drop those seeds.
    if (!lv.bind_slots.empty()) {
      lv.seeds.erase(
          std::remove_if(lv.seeds.begin(), lv.seeds.end(),
                         [&](const LevelSeed& s) {
                           return s.from_slot &&
                                  std::find(lv.bind_slots.begin(),
                                            lv.bind_slots.end(),
                                            s.slot) != lv.bind_slots.end();
                         }),
          lv.seeds.end());
    }
  }
  atom_ids_.assign(pattern_.size(), 0);
  return Prep::kReady;
}

bool HomomorphismMatcher::ExistsWithBoundSlots(
    const Instance& inst,
    const std::vector<std::pair<uint32_t, pivot::SymbolId>>& bound) {
  switch (PrepareCallSlots(inst, bound)) {
    case Prep::kEmptyPattern:
      return true;  // The trivial homomorphism.
    case Prep::kNoMatches:
      return false;
    case Prep::kReady:
      break;
  }
  // Descend returns false iff the emitter aborted, i.e. a match was found.
  return !Descend(0, inst, [] { return false; });
}

namespace internal {

namespace {

/// The legacy backtracking matcher, retained verbatim as the differential
/// oracle: at each level it re-picks the unmatched pattern atom with the
/// most bound terms and scans the full candidate list of its relation.
class ScanMatcher {
 public:
  ScanMatcher(const std::vector<Atom>& pattern, const Instance& inst,
              const std::function<bool(const Match&)>& on_match)
      : pattern_(pattern), inst_(inst), on_match_(on_match) {}

  bool Run(const Substitution& start) {
    sub_ = start;
    // Canonicalize the start bindings through the instance union-find so
    // required targets survive EGD merges.
    for (auto& [k, v] : sub_) v = inst_.Canonical(v);
    matched_.assign(pattern_.size(), false);
    atom_ids_.assign(pattern_.size(), 0);
    return Descend(0);
  }

 private:
  /// Number of terms of `a` that are ground or bound under sub_.
  size_t BoundCount(const Atom& a) const {
    size_t n = 0;
    for (const Term& t : a.terms) {
      if (!t.is_variable() || sub_.count(t.var_name())) ++n;
    }
    return n;
  }

  /// Returns false to abort the whole enumeration (callback said stop).
  bool Descend(size_t depth) {
    if (depth == pattern_.size()) {
      Match m;
      m.sub = sub_;
      m.atom_ids = atom_ids_;
      return on_match_(m);
    }
    // Fail-first: the unmatched atom with the most bound positions.
    size_t best = pattern_.size();
    size_t best_bound = 0;
    for (size_t i = 0; i < pattern_.size(); ++i) {
      if (matched_[i]) continue;
      size_t b = BoundCount(pattern_[i]);
      if (best == pattern_.size() || b > best_bound) {
        best = i;
        best_bound = b;
      }
    }
    const Atom& pat = pattern_[best];
    matched_[best] = true;

    const std::vector<size_t>& candidates = inst_.AtomsOf(pat.relation);
    for (size_t id : candidates) {
      if (!inst_.alive(id)) continue;
      const Atom& ground = inst_.atom(id);
      if (ground.terms.size() != pat.terms.size()) continue;
      // Attempt unification; record which vars we bound to undo later.
      std::vector<std::string> bound_here;
      bool ok = true;
      for (size_t i = 0; i < pat.terms.size(); ++i) {
        const Term& pt = pat.terms[i];
        const Term& gt = ground.terms[i];
        if (pt.is_variable()) {
          auto it = sub_.find(pt.var_name());
          if (it == sub_.end()) {
            sub_.emplace(pt.var_name(), gt);
            bound_here.push_back(pt.var_name());
          } else if (!(it->second == gt)) {
            ok = false;
            break;
          }
        } else {
          // Constants / labelled nulls in the pattern must match exactly
          // (after canonicalization, which Insert already applied).
          if (!(inst_.Canonical(pt) == gt)) {
            ok = false;
            break;
          }
        }
      }
      if (ok) {
        atom_ids_[best] = id;
        if (!Descend(depth + 1)) {
          for (const auto& v : bound_here) sub_.erase(v);
          matched_[best] = false;
          return false;
        }
      }
      for (const auto& v : bound_here) sub_.erase(v);
    }
    matched_[best] = false;
    return true;
  }

  const std::vector<Atom>& pattern_;
  const Instance& inst_;
  const std::function<bool(const Match&)>& on_match_;
  Substitution sub_;
  std::vector<bool> matched_;
  std::vector<size_t> atom_ids_;
};

}  // namespace

void ForEachHomomorphismScan(const std::vector<Atom>& pattern,
                             const Instance& inst, const Substitution& start,
                             const std::function<bool(const Match&)>& on_match) {
  if (pattern.empty()) {
    Match m;
    m.sub = start;
    on_match(m);
    return;
  }
  ScanMatcher(pattern, inst, on_match).Run(start);
}

}  // namespace internal

void ForEachHomomorphism(const std::vector<Atom>& pattern,
                         const Instance& inst, const Substitution& start,
                         const std::function<bool(const Match&)>& on_match) {
  if (g_use_scan_matcher.load(std::memory_order_relaxed)) {
    internal::ForEachHomomorphismScan(pattern, inst, start, on_match);
    return;
  }
  HomomorphismMatcher matcher(pattern);
  matcher.ForEach(inst, start, on_match);
}

std::vector<Match> FindHomomorphisms(const std::vector<Atom>& pattern,
                                     const Instance& inst,
                                     const Substitution& start, size_t limit) {
  std::vector<Match> out;
  // limit == 0 is "unlimited" (the short-circuit below never stops the
  // enumeration); limit > 0 stops as soon as `limit` matches are held.
  ForEachHomomorphism(pattern, inst, start, [&](const Match& m) {
    out.push_back(m);
    return limit == 0 || out.size() < limit;
  });
  return out;
}

bool ExistsHomomorphism(const std::vector<Atom>& pattern, const Instance& inst,
                        const Substitution& start) {
  if (g_use_scan_matcher.load(std::memory_order_relaxed)) {
    bool found = false;
    internal::ForEachHomomorphismScan(pattern, inst, start,
                                      [&](const Match&) {
                                        found = true;
                                        return false;
                                      });
    return found;
  }
  HomomorphismMatcher matcher(pattern);
  return !matcher.ForEach(inst, start, [](const Match&) { return false; });
}

std::vector<Atom> LiveAtoms(const Instance& inst) {
  std::vector<Atom> out;
  out.reserve(inst.live_size());
  for (size_t id = 0; id < inst.size(); ++id) {
    if (inst.alive(id)) out.push_back(inst.atom(id));
  }
  return out;
}

std::vector<Atom> NullsToVariables(std::vector<Atom> atoms) {
  for (Atom& a : atoms) {
    for (Term& t : a.terms) {
      if (t.is_labelled_null()) {
        t = Term::Var("_n" + std::to_string(t.null_id()));
      }
    }
  }
  return atoms;
}

bool HomomorphicallyEquivalent(const Instance& a, const Instance& b) {
  return ExistsHomomorphism(NullsToVariables(LiveAtoms(a)), b) &&
         ExistsHomomorphism(NullsToVariables(LiveAtoms(b)), a);
}

}  // namespace estocada::chase
