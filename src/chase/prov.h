#ifndef ESTOCADA_CHASE_PROV_H_
#define ESTOCADA_CHASE_PROV_H_

#include <cstdint>
#include <string>
#include <vector>

namespace estocada::chase {

/// A positive DNF formula over atom identifiers, used by the
/// provenance-aware chase (PACB): each disjunct (a sorted id set) is one
/// sufficient set of "input" atoms (view atoms, in the backchase) whose
/// presence derives the annotated atom.
///
/// The representation is kept minimized: no disjunct is a superset of
/// another. To bound memory during adversarial chases the number of
/// disjuncts is capped (`kMaxDisjuncts`), keeping the smallest conjuncts —
/// exactly the ones that matter for minimal rewritings.
class ProvFormula {
 public:
  using Conjunct = std::vector<uint32_t>;  // sorted, unique ids

  /// Number of disjuncts retained after minimization.
  static constexpr size_t kMaxDisjuncts = 64;

  /// The `false` formula (no derivation known).
  ProvFormula() = default;

  /// The `true` formula: derivable from nothing (one empty conjunct).
  static ProvFormula True();

  /// A single-leaf formula {{id}}.
  static ProvFormula Leaf(uint32_t id);

  bool is_false() const { return disjuncts_.empty(); }
  bool is_true() const {
    return disjuncts_.size() == 1 && disjuncts_[0].empty();
  }

  const std::vector<Conjunct>& disjuncts() const { return disjuncts_; }

  /// Logical AND: pairwise unions of disjuncts, then minimize.
  ProvFormula And(const ProvFormula& other) const;

  /// Logical OR: union of disjunct sets, then minimize.
  ProvFormula Or(const ProvFormula& other) const;

  /// True if `other` adds nothing (every disjunct of `other` is a superset
  /// of one of ours); used for the chase fixpoint test.
  bool Subsumes(const ProvFormula& other) const;

  friend bool operator==(const ProvFormula& a, const ProvFormula& b) {
    return a.disjuncts_ == b.disjuncts_;
  }
  friend bool operator!=(const ProvFormula& a, const ProvFormula& b) {
    return !(a == b);
  }

  /// "{1,3} | {2}".
  std::string ToString() const;

 private:
  void Minimize();

  std::vector<Conjunct> disjuncts_;
};

}  // namespace estocada::chase

#endif  // ESTOCADA_CHASE_PROV_H_
