#ifndef ESTOCADA_WORKLOAD_BIGDATA_H_
#define ESTOCADA_WORKLOAD_BIGDATA_H_

#include <cstdint>

#include "common/result.h"
#include "common/rng.h"
#include "pivot/schema.h"
#include "rewriting/cq_eval.h"

namespace estocada::workload {

/// Synthetic data in the shape of the AMPLab Big Data Benchmark [4] the
/// demo uses (rankings + uservisits); generated locally since the hosted
/// datasets are unavailable offline (DESIGN.md §3).
///
///   bdb.rankings(pageURL, pageRank, avgDuration)
///   bdb.uservisits(sourceIP, destURL, adRevenue, countryCode)
struct BigDataBenchConfig {
  uint64_t seed = 7;
  size_t num_pages = 3000;
  size_t num_visits = 30000;
  size_t num_ips = 5000;
  size_t num_countries = 30;
  size_t num_ranks = 100;  ///< pageRank values are 0..num_ranks-1.
};

struct BigDataBenchData {
  pivot::Schema schema;
  rewriting::StagingData staging;
  BigDataBenchConfig config;
};

Result<BigDataBenchData> GenerateBigDataBench(const BigDataBenchConfig& config);

/// Benchmark queries (equality-CQ forms of the BDB workload):
struct BigDataBenchQueries {
  /// Q1-style scan: pages at an exact rank.
  static const char* PagesAtRank();
  /// Q3-style join: revenue-bearing visits to pages of a given rank.
  static const char* VisitsToRankedPages();
  /// Per-country visit listing for one page.
  static const char* VisitsOfPage();
};

}  // namespace estocada::workload

#endif  // ESTOCADA_WORKLOAD_BIGDATA_H_
