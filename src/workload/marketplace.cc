#include "workload/marketplace.h"

#include "common/strings.h"
#include "encoding/encodings.h"

namespace estocada::workload {

using engine::Row;
using engine::Value;

std::string MarketplaceData::Category(size_t i, size_t num_categories) {
  return StrCat("cat", i % num_categories);
}

Result<MarketplaceData> GenerateMarketplace(const MarketplaceConfig& config) {
  MarketplaceData data;
  data.config = config;
  Rng rng(config.seed);

  // ---- Pivot schema (one encoding per native model).
  ESTOCADA_ASSIGN_OR_RETURN(
      pivot::Schema users_schema,
      encoding::RelationalEncoding("mk", "users", {"uid", "name", "city"},
                                   {"uid"}));
  ESTOCADA_RETURN_NOT_OK(data.schema.Merge(users_schema));
  ESTOCADA_ASSIGN_OR_RETURN(
      pivot::Schema products_schema,
      encoding::RelationalEncoding(
          "mk", "products", {"pid", "name", "category", "price"}, {"pid"}));
  ESTOCADA_RETURN_NOT_OK(data.schema.Merge(products_schema));
  ESTOCADA_ASSIGN_OR_RETURN(
      pivot::Schema orders_schema,
      encoding::RelationalEncoding("mk", "orders",
                                   {"oid", "uid", "pid", "total"}, {"oid"}));
  ESTOCADA_RETURN_NOT_OK(data.schema.Merge(orders_schema));
  ESTOCADA_ASSIGN_OR_RETURN(
      pivot::Schema carts_schema,
      encoding::NestedEncoding("mk", "carts", {"uid", "cart"}, {"uid"}));
  ESTOCADA_RETURN_NOT_OK(data.schema.Merge(carts_schema));
  ESTOCADA_ASSIGN_OR_RETURN(
      pivot::Schema visits_schema,
      encoding::NestedEncoding("mk", "visits", {"uid", "pid", "day"}));
  ESTOCADA_RETURN_NOT_OK(data.schema.Merge(visits_schema));
  ESTOCADA_ASSIGN_OR_RETURN(
      pivot::Schema terms_schema,
      encoding::NestedEncoding("mk", "prodterms", {"pid", "term"}));
  ESTOCADA_RETURN_NOT_OK(data.schema.Merge(terms_schema));

  // ---- Staged rows.
  auto& users = data.staging["mk.users"];
  users.columns = {"uid", "name", "city"};
  for (size_t u = 0; u < config.num_users; ++u) {
    users.rows.push_back(
        {Value::Int(static_cast<int64_t>(u)),
         Value::Str(StrCat("user", u)),
         Value::Str(StrCat("city", rng.Uniform(config.num_cities)))});
  }

  static const char* kAdjectives[] = {"red",  "blue",  "small", "large",
                                      "warm", "solid", "light", "smart"};
  static const char* kNouns[] = {"lamp",  "table", "phone",  "chair",
                                 "stove", "book",  "carpet", "camera"};
  auto& products = data.staging["mk.products"];
  products.columns = {"pid", "name", "category", "price"};
  for (size_t p = 0; p < config.num_products; ++p) {
    std::string name = StrCat(kAdjectives[rng.Uniform(8)], " ",
                              kNouns[rng.Uniform(8)], " ", p);
    products.rows.push_back(
        {Value::Int(static_cast<int64_t>(p)), Value::Str(name),
         Value::Str(MarketplaceData::Category(
             rng.Uniform(config.num_categories), config.num_categories)),
         Value::Real(5.0 + static_cast<double>(rng.Uniform(2000)) / 10.0)});
  }

  auto& terms = data.staging["mk.prodterms"];
  terms.columns = {"pid", "term"};
  for (size_t p = 0; p < config.num_products; ++p) {
    const std::string& name = products.rows[p][1].string_value();
    for (const std::string& tok : StrSplit(name, ' ')) {
      if (!tok.empty()) {
        terms.rows.push_back(
            {Value::Int(static_cast<int64_t>(p)), Value::Str(tok)});
      }
    }
  }

  auto& orders = data.staging["mk.orders"];
  orders.columns = {"oid", "uid", "pid", "total"};
  for (size_t o = 0; o < config.num_orders; ++o) {
    size_t uid = rng.Zipf(config.num_users, config.zipf_theta);
    size_t pid = rng.Zipf(config.num_products, config.zipf_theta);
    orders.rows.push_back(
        {Value::Int(static_cast<int64_t>(o)),
         Value::Int(static_cast<int64_t>(uid)),
         Value::Int(static_cast<int64_t>(pid)),
         Value::Real(products.rows[pid][3].real_value())});
  }

  auto& carts = data.staging["mk.carts"];
  carts.columns = {"uid", "cart"};
  for (size_t u = 0; u < config.num_users; ++u) {
    std::vector<Value> items;
    size_t n = rng.Uniform(5);
    for (size_t i = 0; i < n; ++i) {
      items.push_back(Value::Int(static_cast<int64_t>(
          rng.Zipf(config.num_products, config.zipf_theta))));
    }
    carts.rows.push_back(
        {Value::Int(static_cast<int64_t>(u)), Value::List(std::move(items))});
  }

  auto& visits = data.staging["mk.visits"];
  visits.columns = {"uid", "pid", "day"};
  for (size_t v = 0; v < config.num_visits; ++v) {
    visits.rows.push_back(
        {Value::Int(static_cast<int64_t>(
             rng.Zipf(config.num_users, config.zipf_theta))),
         Value::Int(static_cast<int64_t>(
             rng.Zipf(config.num_products, config.zipf_theta))),
         Value::Int(static_cast<int64_t>(rng.Uniform(365)))});
  }
  return data;
}

const char* MarketplaceQueries::CartByUser() {
  return "cart(c) :- mk.carts($uid, c)";
}

const char* MarketplaceQueries::UserCity() {
  return "ucity(city) :- mk.users($uid, n, city)";
}

const char* MarketplaceQueries::OrdersOfUser() {
  return "uorders(o, p, t) :- mk.orders(o, $uid, p, t)";
}

const char* MarketplaceQueries::PersonalizedSearch() {
  // Products of a given category the user both purchased and browsed —
  // §II's bottleneck query combining past purchases with the browsing
  // history, filtered by product category.
  return "psearch(p, n) :- mk.orders(o, $uid, p, t), "
         "mk.visits($uid, p, d), mk.products(p, n, $cat, pr)";
}

const char* MarketplaceQueries::ProductsInCategory() {
  return "pcat(p, n, pr) :- mk.products(p, n, $cat, pr)";
}

QueryInstance DrawQuery(const MarketplaceData& data, const WorkloadMix& mix,
                        Rng* rng) {
  const double total = mix.cart_lookup + mix.user_city + mix.orders_of_user +
                       mix.personalized_search + mix.products_in_category;
  double draw = rng->NextDouble() * total;
  const auto& cfg = data.config;
  auto uid = [&] {
    return Value::Int(
        static_cast<int64_t>(rng->Zipf(cfg.num_users, cfg.zipf_theta)));
  };
  auto category = [&] {
    return Value::Str(MarketplaceData::Category(
        rng->Uniform(cfg.num_categories), cfg.num_categories));
  };
  QueryInstance q;
  if ((draw -= mix.cart_lookup) < 0) {
    q.text = MarketplaceQueries::CartByUser();
    q.parameters["$uid"] = uid();
    q.label = "cart_lookup";
  } else if ((draw -= mix.user_city) < 0) {
    q.text = MarketplaceQueries::UserCity();
    q.parameters["$uid"] = uid();
    q.label = "user_city";
  } else if ((draw -= mix.orders_of_user) < 0) {
    q.text = MarketplaceQueries::OrdersOfUser();
    q.parameters["$uid"] = uid();
    q.label = "orders_of_user";
  } else if ((draw -= mix.personalized_search) < 0) {
    q.text = MarketplaceQueries::PersonalizedSearch();
    q.parameters["$uid"] = uid();
    q.parameters["$cat"] = category();
    q.label = "personalized_search";
  } else {
    q.text = MarketplaceQueries::ProductsInCategory();
    q.parameters["$cat"] = category();
    q.label = "products_in_category";
  }
  return q;
}

}  // namespace estocada::workload
