#ifndef ESTOCADA_WORKLOAD_MARKETPLACE_H_
#define ESTOCADA_WORKLOAD_MARKETPLACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "pivot/schema.h"
#include "rewriting/cq_eval.h"

namespace estocada::workload {

/// Synthetic stand-in for the Datalyse online-marketplace data of §II
/// (DESIGN.md §3: the real e-commerce logs are proprietary). Deterministic
/// given the seed; user/product popularity is Zipf-skewed like real
/// marketplace traffic.
///
/// Dataset relations (pivot names under the "mk" dataset):
///   mk.users(uid, name, city)                 user accounts (relational)
///   mk.products(pid, name, category, price)   product catalog (JSON-ish)
///   mk.orders(oid, uid, pid, total)           orders (relational)
///   mk.carts(uid, cart)                       shopping carts (documents;
///                                             cart = nested list value)
///   mk.visits(uid, pid, day)                  browsing log (HTTP logs)
///   mk.prodterms(pid, term)                   catalog full-text terms
struct MarketplaceConfig {
  uint64_t seed = 42;
  size_t num_users = 2000;
  size_t num_products = 500;
  size_t num_orders = 8000;
  size_t num_visits = 20000;
  size_t num_categories = 12;
  size_t num_cities = 20;
  double zipf_theta = 0.8;  ///< Popularity skew of users/products.
};

struct MarketplaceData {
  pivot::Schema schema;
  rewriting::StagingData staging;
  MarketplaceConfig config;

  /// Category name of index `i` ("cat<i % num_categories>").
  static std::string Category(size_t i, size_t num_categories);
};

/// Generates schema + staged rows.
Result<MarketplaceData> GenerateMarketplace(const MarketplaceConfig& config);

/// The §II application workload, as parameterized CQ texts:
///   CartByUser:  cart of one user (key lookup)
///   UserCity:    a user's profile attribute (key lookup)
///   OrdersOfUser: orders of one user (selective join side)
///   PersonalizedSearch: products of a category the user both bought and
///     browsed — the paper's bottleneck query (3-way join)
///   ProductsInCategory: catalog slice
struct MarketplaceQueries {
  static const char* CartByUser();
  static const char* UserCity();
  static const char* OrdersOfUser();
  static const char* PersonalizedSearch();
  static const char* ProductsInCategory();
};

/// A drawn query instance: text + parameter bindings.
struct QueryInstance {
  std::string text;
  std::map<std::string, engine::Value> parameters;
  std::string label;
};

/// Mix proportions for DrawQuery (need not sum to 1; normalized).
struct WorkloadMix {
  double cart_lookup = 0.4;
  double user_city = 0.3;
  double orders_of_user = 0.1;
  double personalized_search = 0.15;
  double products_in_category = 0.05;
};

/// Draws one workload query with Zipf-skewed parameters.
QueryInstance DrawQuery(const MarketplaceData& data, const WorkloadMix& mix,
                        Rng* rng);

}  // namespace estocada::workload

#endif  // ESTOCADA_WORKLOAD_MARKETPLACE_H_
