#include "workload/bigdata.h"

#include "common/strings.h"
#include "encoding/encodings.h"

namespace estocada::workload {

using engine::Value;

Result<BigDataBenchData> GenerateBigDataBench(
    const BigDataBenchConfig& config) {
  BigDataBenchData data;
  data.config = config;
  Rng rng(config.seed);

  ESTOCADA_ASSIGN_OR_RETURN(
      pivot::Schema rankings_schema,
      encoding::RelationalEncoding(
          "bdb", "rankings", {"pageURL", "pageRank", "avgDuration"},
          {"pageURL"}));
  ESTOCADA_RETURN_NOT_OK(data.schema.Merge(rankings_schema));
  ESTOCADA_ASSIGN_OR_RETURN(
      pivot::Schema visits_schema,
      encoding::RelationalEncoding(
          "bdb", "uservisits",
          {"sourceIP", "destURL", "adRevenue", "countryCode"}, {}));
  ESTOCADA_RETURN_NOT_OK(data.schema.Merge(visits_schema));

  auto& rankings = data.staging["bdb.rankings"];
  rankings.columns = {"pageURL", "pageRank", "avgDuration"};
  for (size_t p = 0; p < config.num_pages; ++p) {
    rankings.rows.push_back(
        {Value::Str(StrCat("url", p)),
         Value::Int(static_cast<int64_t>(
             rng.Zipf(config.num_ranks, 0.6))),
         Value::Int(static_cast<int64_t>(1 + rng.Uniform(120)))});
  }

  auto& visits = data.staging["bdb.uservisits"];
  visits.columns = {"sourceIP", "destURL", "adRevenue", "countryCode"};
  for (size_t v = 0; v < config.num_visits; ++v) {
    visits.rows.push_back(
        {Value::Str(StrCat("ip", rng.Uniform(config.num_ips))),
         Value::Str(StrCat("url", rng.Zipf(config.num_pages, 0.7))),
         Value::Real(static_cast<double>(rng.Uniform(1000)) / 100.0),
         Value::Str(StrCat("cc", rng.Uniform(config.num_countries)))});
  }
  return data;
}

const char* BigDataBenchQueries::PagesAtRank() {
  return "pages(u, d) :- bdb.rankings(u, $rank, d)";
}

const char* BigDataBenchQueries::VisitsToRankedPages() {
  return "rv(ip, u, rev) :- bdb.uservisits(ip, u, rev, cc), "
         "bdb.rankings(u, $rank, d)";
}

const char* BigDataBenchQueries::VisitsOfPage() {
  return "vp(ip, rev, cc) :- bdb.uservisits(ip, $url, rev, cc)";
}

}  // namespace estocada::workload
