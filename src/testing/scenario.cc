#include "testing/scenario.h"

#include <algorithm>

#include "common/rng.h"
#include "common/strings.h"
#include "pivot/parser.h"
#include "pivot/query.h"

namespace estocada::testing {

namespace {

using engine::Value;
using pivot::Adornment;
using pivot::Atom;
using pivot::ConjunctiveQuery;
using pivot::Term;

enum class ColType { kInt, kStr };

/// Structural plan of one relation, fixed before any rows are drawn.
struct RelationPlan {
  std::string name;
  std::vector<ColType> types;  ///< types[0] is always the int key.
  size_t rows = 0;
  /// Foreign key: column `fk_col` references relation `fk_parent`'s key
  /// (fk_col == 0 means no FK).
  size_t fk_col = 0;
  size_t fk_parent = 0;
  bool has_key_egd = false;

  size_t arity() const { return types.size(); }
};

std::vector<std::string> ColumnNames(size_t arity) {
  std::vector<std::string> cols = {"k"};
  for (size_t j = 1; j < arity; ++j) cols.push_back(StrCat("c", j));
  return cols;
}

/// "fz.r1(k, x1, x2)" with per-position variable prefix.
std::string AtomText(const RelationPlan& rel, const std::string& var_prefix) {
  std::string out = StrCat(rel.name, "(", var_prefix, "0");
  for (size_t j = 1; j < rel.arity(); ++j) {
    out += StrCat(", ", var_prefix, j);
  }
  return out + ")";
}

Term ValueToTerm(const Value& v) {
  if (v.is_int()) return Term::Int(v.int_value());
  return Term::Str(v.string_value());
}

}  // namespace

std::string Scenario::ToString() const {
  std::string out = StrCat("scenario seed=", seed, "\n");
  out += "schema:\n";
  out += schema.ToString();
  out += "staging:\n";
  for (const auto& [rel, data] : staging) {
    out += StrCat("  ", rel, " (", data.rows.size(), " rows)\n");
    for (const engine::Row& r : data.rows) {
      out += StrCat("    ", engine::RowToString(r), "\n");
    }
  }
  out += "fragments:\n";
  for (const FragmentSpec& f : fragments) {
    std::string adorn;
    for (Adornment a : f.adornments) {
      adorn += a == Adornment::kInput ? 'i' : 'f';
    }
    out += StrCat("  ", f.view_text, " @ ", f.store,
                  adorn.empty() ? "" : StrCat(" [", adorn, "]"), "\n");
  }
  out += "queries:\n";
  for (const QuerySpec& q : queries) {
    out += StrCat("  ", q.text, "\n");
    for (const auto& [name, value] : q.parameters) {
      out += StrCat("    ", name, " = ", value.ToString(), "\n");
    }
  }
  return out;
}

Result<Scenario> GenerateScenario(const ScenarioConfig& config) {
  Rng rng(config.seed);
  Scenario s;
  s.seed = config.seed;

  // Shared string vocabulary (small, so string joins/selections hit).
  std::vector<std::string> vocab;
  for (size_t i = 0; i < std::max<size_t>(1, config.vocab_size); ++i) {
    vocab.push_back(rng.AlphaString(4));
  }

  // ---- Structure: relations, arities, column types, FKs, keys. ----
  size_t nrel = static_cast<size_t>(
      rng.UniformRange(static_cast<int64_t>(config.min_relations),
                       static_cast<int64_t>(config.max_relations)));
  std::vector<RelationPlan> rels(nrel);
  for (size_t i = 0; i < nrel; ++i) {
    RelationPlan& rel = rels[i];
    rel.name = StrCat("fz.r", i);
    size_t arity = static_cast<size_t>(
        rng.UniformRange(static_cast<int64_t>(config.min_arity),
                         static_cast<int64_t>(config.max_arity)));
    rel.types.assign(arity, ColType::kInt);
    for (size_t j = 1; j < arity; ++j) {
      if (rng.Chance(0.4)) rel.types[j] = ColType::kStr;
    }
    rel.rows = static_cast<size_t>(
        rng.UniformRange(static_cast<int64_t>(config.min_rows),
                         static_cast<int64_t>(config.max_rows)));
    rel.has_key_egd = rng.Chance(config.key_constraint_rate);
    if (i > 0 && rng.Chance(config.fk_rate)) {
      std::vector<size_t> int_cols;
      for (size_t j = 1; j < arity; ++j) {
        if (rel.types[j] == ColType::kInt) int_cols.push_back(j);
      }
      if (!int_cols.empty()) {
        rel.fk_col = int_cols[rng.Uniform(int_cols.size())];
        rel.fk_parent = rng.Uniform(i);
      }
    }
  }

  // ---- Schema: signatures + key EGDs + FK TGDs (weakly acyclic: FKs
  // only point to earlier relations). ----
  for (const RelationPlan& rel : rels) {
    pivot::RelationSignature sig;
    sig.name = rel.name;
    sig.columns = ColumnNames(rel.arity());
    sig.adornments.assign(rel.arity(), Adornment::kFree);
    sig.key = {0};
    ESTOCADA_RETURN_NOT_OK(s.schema.AddRelation(std::move(sig)));
  }
  for (const RelationPlan& rel : rels) {
    if (rel.has_key_egd) {
      for (size_t j = 1; j < rel.arity(); ++j) {
        // Two atoms aligned on the key column, equality on position j.
        std::string text = StrCat(rel.name, "(k");
        for (size_t m = 1; m < rel.arity(); ++m) text += StrCat(", x", m);
        text += StrCat("), ", rel.name, "(k");
        for (size_t m = 1; m < rel.arity(); ++m) text += StrCat(", y", m);
        text += StrCat(") -> x", j, " = y", j);
        ESTOCADA_ASSIGN_OR_RETURN(
            pivot::Dependency d,
            pivot::ParseDependency(text, StrCat("key:", rel.name, ":", j)));
        s.schema.AddDependency(std::move(d));
      }
    }
    if (rel.fk_col != 0) {
      const RelationPlan& parent = rels[rel.fk_parent];
      std::string text = StrCat(AtomText(rel, "x"), " -> ", parent.name, "(x",
                                rel.fk_col);
      for (size_t m = 1; m < parent.arity(); ++m) text += StrCat(", w", m);
      text += ")";
      ESTOCADA_ASSIGN_OR_RETURN(
          pivot::Dependency d,
          pivot::ParseDependency(
              text, StrCat("fk:", rel.name, ":", rel.fk_col)));
      s.schema.AddDependency(std::move(d));
    }
  }

  // ---- Data: distinct keys (so key EGDs hold), FK columns drawn from
  // the parent's key range (so FK TGDs hold). ----
  for (const RelationPlan& rel : rels) {
    rewriting::StagingRelation data;
    data.columns = ColumnNames(rel.arity());
    for (size_t r = 0; r < rel.rows; ++r) {
      engine::Row row;
      row.push_back(Value::Int(static_cast<int64_t>(r)));
      for (size_t j = 1; j < rel.arity(); ++j) {
        if (j == rel.fk_col) {
          row.push_back(Value::Int(static_cast<int64_t>(
              rng.Uniform(std::max<size_t>(1, rels[rel.fk_parent].rows)))));
        } else if (rel.types[j] == ColType::kInt) {
          row.push_back(Value::Int(
              static_cast<int64_t>(rng.Uniform(config.int_domain))));
        } else {
          row.push_back(Value::Str(rng.Pick(vocab)));
        }
      }
      data.rows.push_back(std::move(row));
    }
    s.staging[rel.name] = std::move(data);
  }

  // ---- Fragments. Every relation gets an all-free identity fragment on
  // a scan-capable store, which guarantees every generated query has at
  // least one rewriting. Extras add binding patterns, replicas,
  // projections, joins and text placements. ----
  const std::vector<std::string> scan_stores = {
      kRelationalStore, kDocumentStore, kParallelStore};
  size_t frag_id = 0;
  auto identity_view = [&](const RelationPlan& rel,
                           const std::string& frag) {
    std::string head = StrCat(frag, "(v0");
    for (size_t j = 1; j < rel.arity(); ++j) head += StrCat(", v", j);
    return StrCat(head, ") :- ", AtomText(rel, "v"));
  };
  for (const RelationPlan& rel : rels) {
    FragmentSpec f;
    std::string frag = StrCat("F", frag_id++);
    f.view_text = identity_view(rel, frag);
    f.store = rng.Pick(scan_stores);
    s.fragments.push_back(std::move(f));
  }
  size_t extras = rng.Uniform(config.max_extra_fragments + 1);
  for (size_t e = 0; e < extras; ++e) {
    const RelationPlan& rel = rels[rng.Uniform(nrel)];
    std::string frag = StrCat("F", frag_id++);
    FragmentSpec f;
    switch (rng.Uniform(5)) {
      case 0: {  // Key-value placement: key column input-adorned.
        f.view_text = identity_view(rel, frag);
        f.store = kKeyValueStore;
        f.adornments.assign(rel.arity(), Adornment::kFree);
        f.adornments[0] = Adornment::kInput;
        break;
      }
      case 1: {  // Replica of the identity fragment.
        f.view_text = identity_view(rel, frag);
        f.store = rng.Pick(scan_stores);
        break;
      }
      case 2: {  // Projection to (key, one column).
        if (rel.arity() < 2) continue;
        size_t j = 1 + rng.Uniform(rel.arity() - 1);
        f.view_text = StrCat(frag, "(v0, v", j, ") :- ", AtomText(rel, "v"));
        f.store = rng.Pick(scan_stores);
        break;
      }
      case 3: {  // Join fragment along an int column into another key.
        std::vector<size_t> int_cols;
        for (size_t j = 1; j < rel.arity(); ++j) {
          if (rel.types[j] == ColType::kInt) int_cols.push_back(j);
        }
        if (int_cols.empty() || nrel < 2) continue;
        size_t j = rel.fk_col != 0 ? rel.fk_col
                                   : int_cols[rng.Uniform(int_cols.size())];
        const RelationPlan& parent =
            rel.fk_col != 0 ? rels[rel.fk_parent] : rels[rng.Uniform(nrel)];
        std::string head = StrCat(frag, "(v0");
        for (size_t m = 1; m < rel.arity(); ++m) head += StrCat(", v", m);
        for (size_t m = 1; m < parent.arity(); ++m) head += StrCat(", w", m);
        std::string body = StrCat(AtomText(rel, "v"), ", ", parent.name, "(v",
                                  j);
        for (size_t m = 1; m < parent.arity(); ++m) body += StrCat(", w", m);
        f.view_text = StrCat(head, ") :- ", body, ")");
        f.store = rng.Pick(scan_stores);
        break;
      }
      case 4: {  // Text placement: (key, string column), term adorned.
        std::vector<size_t> str_cols;
        for (size_t j = 1; j < rel.arity(); ++j) {
          if (rel.types[j] == ColType::kStr) str_cols.push_back(j);
        }
        if (str_cols.empty()) continue;
        size_t j = str_cols[rng.Uniform(str_cols.size())];
        f.view_text = StrCat(frag, "(v0, v", j, ") :- ", AtomText(rel, "v"));
        f.store = kTextStore;
        f.adornments = {Adornment::kFree, Adornment::kInput};
        break;
      }
    }
    if (f.view_text.empty()) continue;
    s.fragments.push_back(std::move(f));
  }

  // ---- Queries. Query 0 is always a full scan; the rest are drawn from
  // {scan, constant selection, $-parameter key lookup, key join,
  // repeated-variable selection}. All are answerable via the identity
  // fragments, and every text round-trips through the pivot parser. ----
  size_t nq = static_cast<size_t>(
      rng.UniformRange(static_cast<int64_t>(config.min_queries),
                       static_cast<int64_t>(config.max_queries)));
  auto scan_query = [&](const RelationPlan& rel) {
    ConjunctiveQuery q;
    q.name = "q";
    std::vector<Term> vars;
    for (size_t j = 0; j < rel.arity(); ++j) {
      vars.push_back(Term::Var(StrCat("v", j)));
    }
    q.head = vars;
    q.body.push_back(Atom(rel.name, vars));
    return q;
  };
  for (size_t n = 0; n < nq; ++n) {
    const RelationPlan& rel = rels[rng.Uniform(nrel)];
    QuerySpec spec;
    ConjunctiveQuery q;
    switch (n == 0 ? 0 : rng.Uniform(5)) {
      case 0: {  // Full scan.
        q = scan_query(rel);
        break;
      }
      case 1: {  // Constant selection on a non-key column.
        if (rel.arity() < 2 || s.staging[rel.name].rows.empty()) {
          q = scan_query(rel);
          break;
        }
        size_t j = 1 + rng.Uniform(rel.arity() - 1);
        const engine::Row& sample =
            s.staging[rel.name].rows[rng.Uniform(
                s.staging[rel.name].rows.size())];
        q.name = "q";
        std::vector<Term> terms;
        for (size_t m = 0; m < rel.arity(); ++m) {
          if (m == j) {
            terms.push_back(ValueToTerm(sample[m]));
          } else {
            Term v = Term::Var(StrCat("v", m));
            terms.push_back(v);
            q.head.push_back(v);
          }
        }
        q.body.push_back(Atom(rel.name, std::move(terms)));
        break;
      }
      case 2: {  // $-parameter lookup on the key column.
        q.name = "q";
        std::vector<Term> terms = {Term::Var("$p0")};
        for (size_t m = 1; m < rel.arity(); ++m) {
          Term v = Term::Var(StrCat("v", m));
          terms.push_back(v);
          q.head.push_back(v);
        }
        if (q.head.empty()) q.head.push_back(Term::Var("$p0"));
        q.body.push_back(Atom(rel.name, std::move(terms)));
        // Mostly an existing key; sometimes a miss (empty answer).
        int64_t key = rng.Chance(0.9)
                          ? rng.UniformRange(
                                0, static_cast<int64_t>(
                                       std::max<size_t>(1, rel.rows)) -
                                       1)
                          : static_cast<int64_t>(rel.rows) + 7;
        spec.parameters["$p0"] = Value::Int(key);
        break;
      }
      case 3: {  // Join: rel's int column against another relation's key.
        std::vector<size_t> int_cols;
        for (size_t j = 1; j < rel.arity(); ++j) {
          if (rel.types[j] == ColType::kInt) int_cols.push_back(j);
        }
        if (int_cols.empty() || nrel < 2) {
          q = scan_query(rel);
          break;
        }
        size_t j = rel.fk_col != 0 ? rel.fk_col
                                   : int_cols[rng.Uniform(int_cols.size())];
        const RelationPlan& other =
            rel.fk_col != 0 ? rels[rel.fk_parent] : rels[rng.Uniform(nrel)];
        q.name = "q";
        std::vector<Term> left;
        for (size_t m = 0; m < rel.arity(); ++m) {
          left.push_back(Term::Var(StrCat("v", m)));
        }
        std::vector<Term> right = {Term::Var(StrCat("v", j))};
        for (size_t m = 1; m < other.arity(); ++m) {
          right.push_back(Term::Var(StrCat("w", m)));
        }
        q.head.push_back(left[0]);
        q.head.push_back(left[j]);
        if (other.arity() > 1) q.head.push_back(right[1]);
        q.body.push_back(Atom(rel.name, std::move(left)));
        q.body.push_back(Atom(other.name, std::move(right)));
        break;
      }
      case 4: {  // Repeated variable across two same-typed columns.
        std::vector<std::pair<size_t, size_t>> pairs;
        for (size_t a = 1; a < rel.arity(); ++a) {
          for (size_t b = a + 1; b < rel.arity(); ++b) {
            if (rel.types[a] == rel.types[b]) pairs.emplace_back(a, b);
          }
        }
        if (pairs.empty()) {
          q = scan_query(rel);
          break;
        }
        auto [a, b] = pairs[rng.Uniform(pairs.size())];
        q.name = "q";
        std::vector<Term> terms;
        for (size_t m = 0; m < rel.arity(); ++m) {
          if (m == b) {
            terms.push_back(Term::Var(StrCat("v", a)));
          } else {
            terms.push_back(Term::Var(StrCat("v", m)));
            q.head.push_back(terms.back());
          }
        }
        q.body.push_back(Atom(rel.name, std::move(terms)));
        break;
      }
    }
    ESTOCADA_RETURN_NOT_OK(q.Validate());
    spec.text = q.ToString();
    // The text must replay through the parser (it is what the harness and
    // the serving runtime consume).
    ESTOCADA_RETURN_NOT_OK(pivot::ParseQuery(spec.text).status());
    s.queries.push_back(std::move(spec));
  }

  ESTOCADA_RETURN_NOT_OK(s.schema.Validate());
  return s;
}

}  // namespace estocada::testing
