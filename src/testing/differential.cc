#include "testing/differential.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "chase/chase.h"
#include "chase/homomorphism.h"
#include "common/rng.h"
#include "common/strings.h"
#include "estocada/estocada.h"
#include "migration/migration.h"
#include "pacb/naive.h"
#include "pacb/rewriter.h"
#include "pivot/parser.h"
#include "replication/repairer.h"
#include "runtime/canonical.h"
#include "runtime/query_server.h"
#include "stores/fault.h"
#include "tuner/tuner.h"

namespace estocada::testing {

namespace {

using engine::Row;
using pivot::ConjunctiveQuery;

/// Order-insensitive canonical form of a result set.
std::multiset<std::string> Canon(const std::vector<Row>& rows) {
  std::multiset<std::string> out;
  for (const Row& r : rows) out.insert(engine::RowToString(r));
  return out;
}

/// Compact two-sided diff: counts plus up to three rows unique to each
/// side (shrunk scenarios keep the full picture; mismatch details stay
/// readable).
std::string DiffRows(const std::multiset<std::string>& expected,
                     const std::multiset<std::string>& actual) {
  std::vector<std::string> missing, extra;
  std::set_difference(expected.begin(), expected.end(), actual.begin(),
                      actual.end(), std::back_inserter(missing));
  std::set_difference(actual.begin(), actual.end(), expected.begin(),
                      expected.end(), std::back_inserter(extra));
  auto head = [](const std::vector<std::string>& v) {
    std::string out;
    for (size_t i = 0; i < v.size() && i < 3; ++i) {
      out += (i ? ", " : "") + v[i];
    }
    if (v.size() > 3) out += ", ...";
    return out;
  };
  return StrCat("expected ", expected.size(), " rows, got ", actual.size(),
                "; missing {", head(missing), "}; extra {", head(extra), "}");
}

/// One full six-store deployment of a scenario.
struct Deployment {
  stores::RelationalStore relational;
  stores::KeyValueStore kv;
  stores::DocumentStore document;
  stores::ParallelStore parallel{2};
  stores::TextStore text;
  stores::GraphStore graph;
  Estocada sys;

  Status Build(const Scenario& s) {
    ESTOCADA_RETURN_NOT_OK(sys.RegisterSchema(s.schema));
    ESTOCADA_RETURN_NOT_OK(
        sys.RegisterStore({kRelationalStore, catalog::StoreKind::kRelational,
                           &relational, nullptr, nullptr, nullptr, nullptr}));
    ESTOCADA_RETURN_NOT_OK(
        sys.RegisterStore({kKeyValueStore, catalog::StoreKind::kKeyValue,
                           nullptr, &kv, nullptr, nullptr, nullptr}));
    ESTOCADA_RETURN_NOT_OK(
        sys.RegisterStore({kDocumentStore, catalog::StoreKind::kDocument,
                           nullptr, nullptr, &document, nullptr, nullptr}));
    ESTOCADA_RETURN_NOT_OK(
        sys.RegisterStore({kParallelStore, catalog::StoreKind::kParallel,
                           nullptr, nullptr, nullptr, &parallel, nullptr}));
    ESTOCADA_RETURN_NOT_OK(
        sys.RegisterStore({kTextStore, catalog::StoreKind::kText, nullptr,
                           nullptr, nullptr, nullptr, &text}));
    ESTOCADA_RETURN_NOT_OK(
        sys.RegisterStore({kGraphStore, catalog::StoreKind::kGraph, nullptr,
                           nullptr, nullptr, nullptr, nullptr, &graph}));
    ESTOCADA_RETURN_NOT_OK(sys.LoadStaging(s.staging));
    for (const FragmentSpec& f : s.fragments) {
      ESTOCADA_RETURN_NOT_OK(
          sys.DefineFragment(f.view_text, f.store, f.adornments));
    }
    return sys.PrepareRewriter();
  }

  void AttachChaos(stores::FaultInjector* injector) {
    relational.AttachFaultInjector(injector, kRelationalStore);
    kv.AttachFaultInjector(injector, kKeyValueStore);
    document.AttachFaultInjector(injector, kDocumentStore);
    parallel.AttachFaultInjector(injector, kParallelStore);
    text.AttachFaultInjector(injector, kTextStore);
    graph.AttachFaultInjector(injector, kGraphStore);
  }
};

/// Fisher–Yates permutation of the body driven by the scenario seed, plus
/// a variable renaming — the metamorphic transformation of invariant (c).
ConjunctiveQuery PermuteQuery(const ConjunctiveQuery& q, uint64_t seed) {
  ConjunctiveQuery perm = q.RenameVariables("p_");
  Rng rng(seed);
  for (size_t i = perm.body.size(); i > 1; --i) {
    std::swap(perm.body[i - 1], perm.body[rng.Uniform(i)]);
  }
  return perm;
}

}  // namespace

ScenarioOutcome CheckScenario(const Scenario& s,
                              const HarnessOptions& options) {
  ScenarioOutcome out;
  out.seed = s.seed;
  auto fail = [&](std::string invariant, std::string detail) {
    out.mismatches.push_back({std::move(invariant), std::move(detail)});
  };

  Deployment dep;
  if (Status st = dep.Build(s); !st.ok()) {
    fail("setup", st.ToString());
    return out;
  }

  // View definitions for the rewriter-level invariants (b) and (c).
  std::vector<pacb::ViewDefinition> views;
  for (const FragmentSpec& f : s.fragments) {
    auto vq = pivot::ParseQuery(f.view_text);
    if (!vq.ok()) {
      fail("setup", StrCat("view '", f.view_text,
                           "' does not parse: ", vq.status().ToString()));
      return out;
    }
    views.push_back({std::move(*vq), f.adornments});
  }
  std::optional<pacb::Rewriter> pacb_rewriter;
  std::optional<pacb::NaiveChaseBackchase> naive;
  if (options.check_naive) {
    pacb_rewriter.emplace(s.schema, views);
    naive.emplace(s.schema, views);
    if (Status st = pacb_rewriter->Prepare(); !st.ok()) {
      fail("setup", StrCat("rewriter prepare: ", st.ToString()));
      return out;
    }
    if (Status st = naive->Prepare(); !st.ok()) {
      fail("setup", StrCat("naive prepare: ", st.ToString()));
      return out;
    }
  }
  std::vector<pivot::Dependency> chase_deps;
  if (options.check_chase) {
    chase_deps = s.schema.dependencies();
    auto fwd = pacb::CompileViewConstraints(
        views, pacb::ViewConstraintDirection::kForward);
    if (!fwd.ok()) {
      fail("setup", StrCat("view constraints: ", fwd.status().ToString()));
      return out;
    }
    chase_deps.insert(chase_deps.end(), fwd->begin(), fwd->end());
  }

  // Per-query staging oracles, kept for the chaos phase.
  std::vector<std::optional<std::multiset<std::string>>> oracles(
      s.queries.size());

  for (size_t qi = 0; qi < s.queries.size(); ++qi) {
    const QuerySpec& qs = s.queries[qi];
    auto cq = pivot::ParseQuery(qs.text);
    if (!cq.ok()) {
      fail("generator",
           StrCat("query '", qs.text, "': ", cq.status().ToString()));
      continue;
    }
    auto oracle = dep.sys.EvaluateOverStaging(qs.text, qs.parameters);
    if (!oracle.ok()) {
      fail("oracle",
           StrCat("query '", qs.text, "': ", oracle.status().ToString()));
      continue;
    }
    std::multiset<std::string> expected = Canon(*oracle);
    oracles[qi] = expected;
    ++out.queries_checked;

    // ---- (a) every PACB rewriting answers like the oracle. ----
    if (options.check_rewritings) {
      auto plans = dep.sys.PlanPrepared(*cq, qs.parameters);
      if (!plans.ok()) {
        if (plans.status().code() == StatusCode::kNoRewriting) {
          ++out.skipped_unanswerable;
        } else {
          fail("plan",
               StrCat("query '", qs.text, "': ", plans.status().ToString()));
        }
      } else {
        size_t nplans = plans->plans.size();
        for (size_t idx = 0; idx < nplans; ++idx) {
          // Operator trees are single-use: re-translate the cached
          // rewritings for every executed index.
          auto replanned =
              dep.sys.PlanFromRewritings(plans->rewriting_result,
                                         qs.parameters);
          if (!replanned.ok() || replanned->plans.size() != nplans) {
            fail("plan", StrCat("query '", qs.text,
                                "': replanning rewritings diverged"));
            break;
          }
          auto res = dep.sys.ExecutePlanned(std::move(*replanned), *cq, idx);
          if (!res.ok()) {
            fail("rewriting-oracle",
                 StrCat("query '", qs.text, "' rewriting #", idx,
                        " failed to execute: ", res.status().ToString()));
            continue;
          }
          ++out.rewritings_executed;
          if (Canon(res->rows) != expected) {
            fail("rewriting-oracle",
                 StrCat("query '", qs.text, "' rewriting [",
                        res->rewriting_text, "] via plan #", idx, ": ",
                        DiffRows(expected, Canon(res->rows))));
          }
        }
      }
    }

    // ---- (b) naive C&B agrees with PACB on small universal plans. ----
    if (options.check_naive) {
      pacb::RewriterOptions ropts;
      ropts.max_rewritings = 128;
      ropts.naive_max_subset = options.naive_max_subset;
      auto a = pacb_rewriter->Rewrite(*cq, ropts);
      if (a.ok() &&
          a->stats.universal_plan_atoms <=
              options.max_universal_plan_for_naive) {
        auto b = naive->Rewrite(*cq, ropts);
        if (!b.ok()) {
          fail("naive-vs-pacb", StrCat("query '", qs.text, "': naive C&B: ",
                                       b.status().ToString()));
        } else {
          size_t cap = options.naive_max_subset == 0
                           ? a->stats.universal_plan_atoms
                           : options.naive_max_subset;
          pacb::RewritingResult small;
          for (const pacb::Rewriting& rw : a->rewritings) {
            if (rw.query.body.size() <= cap) small.rewritings.push_back(rw);
          }
          auto keys_pacb = runtime::RewritingSetKeys(small);
          auto keys_naive = runtime::RewritingSetKeys(*b);
          ++out.naive_comparisons;
          if (keys_pacb != keys_naive) {
            std::string listing = "pacb={";
            for (const auto& k : keys_pacb) listing += k + "; ";
            listing += "} naive={";
            for (const auto& k : keys_naive) listing += k + "; ";
            listing += "}";
            fail("naive-vs-pacb",
                 StrCat("query '", qs.text, "': rewriting sets differ: ",
                        listing));
          }
        }
      }
    }

    // ---- (c) chase idempotence + permutation invariance. ----
    if (options.check_chase && out.chase_checks < options.max_chase_queries) {
      chase::Instance inst;
      pivot::FrozenBody frozen = pivot::FreezeBody(*cq);
      Status st = inst.InsertAll(frozen.atoms);
      chase::ChaseStats st1;
      if (st.ok()) st = RunChase(chase_deps, &inst, {}, &st1);
      if (!st.ok() || !st1.reached_fixpoint) {
        fail("chase", StrCat("query '", qs.text, "': chase did not settle: ",
                             st.ok() ? "no fixpoint" : st.ToString()));
      } else {
        ++out.chase_checks;
        chase::ChaseStats st2;
        Status again = RunChase(chase_deps, &inst, {}, &st2);
        if (!again.ok() || st2.tgd_fires != 0 || st2.egd_merges != 0) {
          fail("chase-idempotence",
               StrCat("query '", qs.text, "': re-chase fired ", st2.tgd_fires,
                      " TGDs / ", st2.egd_merges, " EGD merges"));
        }
        ConjunctiveQuery perm = PermuteQuery(*cq, s.seed + qi);
        chase::Instance inst2;
        pivot::FrozenBody frozen2 = pivot::FreezeBody(perm);
        Status stp = inst2.InsertAll(frozen2.atoms);
        chase::ChaseStats stp1;
        if (stp.ok()) stp = RunChase(chase_deps, &inst2, {}, &stp1);
        if (!stp.ok() || !stp1.reached_fixpoint) {
          fail("chase", StrCat("query '", qs.text,
                               "' (permuted): chase did not settle"));
        } else if (!chase::HomomorphicallyEquivalent(inst, inst2)) {
          fail("chase-permutation",
               StrCat("query '", qs.text,
                      "': chase results of the original and the permuted "
                      "body are not homomorphically equivalent\noriginal:\n",
                      inst.ToString(), "permuted:\n", inst2.ToString()));
        }
      }
    }
  }

  // ---- (d) chaos: degradation ladder stays oracle-correct. ----
  if (options.check_chaos) {
    Deployment chaos;
    if (Status st = chaos.Build(s); !st.ok()) {
      fail("setup", StrCat("chaos deployment: ", st.ToString()));
      return out;
    }
    stores::FaultInjector injector(s.seed ^ 0x9e3779b97f4a7c15ULL);
    stores::FaultPlan plan;
    plan.transient_fault_rate = options.chaos_fault_rate;
    for (const char* store :
         {kRelationalStore, kKeyValueStore, kDocumentStore, kParallelStore,
          kTextStore}) {
      injector.SetPlan(store, plan);
    }
    chaos.AttachChaos(&injector);
    runtime::ServerOptions sopts;
    sopts.worker_threads = 1;
    sopts.fault_tolerant = true;
    sopts.retry.max_attempts = 5;
    sopts.retry.initial_backoff_micros = 1;
    sopts.retry.max_backoff_micros = 16;
    sopts.health.failure_threshold = 2;
    sopts.health.open_cooldown_micros = 50;
    sopts.backoff_jitter_seed = s.seed;
    runtime::QueryServer server(&chaos.sys, sopts);
    for (size_t qi = 0; qi < s.queries.size(); ++qi) {
      if (!oracles[qi].has_value()) continue;
      const QuerySpec& qs = s.queries[qi];
      auto res = server.Query(qs.text, qs.parameters);
      if (!res.ok()) {
        // The ladder may legitimately give up (retry budget, no surviving
        // rewriting mid-probe); invariant (d) only constrains successes.
        ++out.chaos_errors;
        continue;
      }
      ++out.chaos_successes;
      if (Canon(res->rows) != *oracles[qi]) {
        fail("chaos-correctness",
             StrCat("query '", qs.text, "' (degraded_to_staging=",
                    res->degraded_to_staging ? "yes" : "no", ", attempts=",
                    res->attempts, "): ",
                    DiffRows(*oracles[qi], Canon(res->rows))));
      }
    }
  }

  // ---- (e) migration: answers invariant across live re-fragmentation. ----
  if (options.check_migration) {
    // Migration target: an identity view of one seed-chosen base relation
    // (skipping access-pattern relations, whose free identity view cannot
    // be snapshotted), built as a fresh relational fragment retiring
    // nothing — semantics must be unchanged at every stage.
    std::vector<const pivot::RelationSignature*> candidates;
    for (const auto& [name, sig] : s.schema.relations()) {
      if (!sig.HasAccessPattern() && sig.arity() > 0) {
        candidates.push_back(&sig);
      }
    }
    if (!candidates.empty()) {
      const pivot::RelationSignature& rel =
          *candidates[s.seed % candidates.size()];
      std::string head, body;
      for (size_t i = 0; i < rel.arity(); ++i) {
        head += (i ? ", v" : "v") + std::to_string(i);
      }
      std::string view_text =
          StrCat("F_mig(", head, ") :- ", rel.name, "(", head, ")");

      Deployment mig;
      if (Status st = mig.Build(s); !st.ok()) {
        fail("setup", StrCat("migration deployment: ", st.ToString()));
        return out;
      }
      runtime::ServerOptions sopts;
      sopts.worker_threads = 1;
      runtime::QueryServer server(&mig.sys, sopts);

      auto check_all = [&](const char* when) {
        for (size_t qi = 0; qi < s.queries.size(); ++qi) {
          if (!oracles[qi].has_value()) continue;
          const QuerySpec& qs = s.queries[qi];
          auto res = server.Query(qs.text, qs.parameters);
          if (!res.ok()) {
            fail("migration-invariance",
                 StrCat("query '", qs.text, "' ", when, " migration of ",
                        rel.name, ": ", res.status().ToString()));
            continue;
          }
          ++out.migration_checks;
          if (Canon(res->rows) != *oracles[qi]) {
            fail("migration-invariance",
                 StrCat("query '", qs.text, "' ", when, " migration of ",
                        rel.name, ": ",
                        DiffRows(*oracles[qi], Canon(res->rows))));
          }
        }
      };

      auto vq = pivot::ParseQuery(view_text);
      if (!vq.ok()) {
        fail("setup", StrCat("migration view '", view_text,
                             "': ", vq.status().ToString()));
        return out;
      }
      migration::MigrationSpec spec;
      spec.view.query = std::move(*vq);
      spec.store_name = kRelationalStore;
      migration::MigrationOptions mopts;
      mopts.throttle.batch_rows = 3;  // Several backfill batches per run.
      migration::MigrationEngine engine(&server, spec, mopts);

      check_all("before");
      if (Status st = engine.RunUntil(migration::MigrationStage::kCatchingUp);
          !st.ok()) {
        fail("migration-invariance",
             StrCat("migration of ", rel.name,
                    " failed to backfill: ", st.ToString()));
      } else {
        check_all("during");
        if (Status st2 = engine.Run(); !st2.ok()) {
          fail("migration-invariance",
               StrCat("migration of ", rel.name,
                      " failed to cut over: ", st2.ToString()));
        } else {
          check_all("after");
        }
      }
    }
  }

  // ---- (f) autopilot: autonomous tuning is invisible to readers. ----
  if (options.check_autopilot) {
    Deployment autop;
    if (Status st = autop.Build(s); !st.ok()) {
      fail("setup", StrCat("autopilot deployment: ", st.ToString()));
      return out;
    }
    runtime::ServerOptions sopts;
    sopts.worker_threads = 1;
    runtime::QueryServer server(&autop.sys, sopts);
    migration::MigrationManager manager(&server);
    tuner::AutopilotOptions topts;
    // The most aggressive configuration the knobs allow: act on a single
    // observation of any shape, skip the dominance gate, and bias the
    // prediction to zero so every enumerable candidate clears the
    // improvement threshold. Most of those cutovers then fail the
    // post-cutover measurement and get reverted — exactly the machinery
    // this family stresses. A tuner-disabled twin would serve the
    // staging oracle's answers, so checking against the oracle IS the
    // tuned-vs-untuned comparison.
    topts.advisor.min_count = 1;
    topts.advisor.min_mean_cost = 0.0;
    topts.advisor.require_dominant_pattern = false;
    topts.min_cost_improvement = 0.0;
    topts.cost_model_bias = 0.0;
    topts.cooldown_ticks = 0;
    topts.max_concurrent_migrations = 2;
    topts.migration.throttle.batch_rows = 3;
    tuner::Autopilot pilot(&server, &manager, topts);

    // Pass 1 feeds the workload log and records which queries the
    // serving path could answer before any tuning.
    std::vector<bool> answerable(s.queries.size(), false);
    auto check_pass = [&](const char* when, bool before) {
      for (size_t qi = 0; qi < s.queries.size(); ++qi) {
        if (!oracles[qi].has_value()) continue;
        const QuerySpec& qs = s.queries[qi];
        auto res = server.Query(qs.text, qs.parameters);
        if (!res.ok()) {
          // Unanswerable before tuning is the scenario's problem, not the
          // tuner's; becoming unanswerable *because of* tuning is a bug.
          if (!before && answerable[qi]) {
            fail("autopilot-equivalence",
                 StrCat("query '", qs.text, "' became unanswerable ", when,
                        " tuning: ", res.status().ToString()));
          }
          continue;
        }
        if (before) answerable[qi] = true;
        ++out.autopilot_checks;
        if (Canon(res->rows) != *oracles[qi]) {
          fail("autopilot-equivalence",
               StrCat("query '", qs.text, "' ", when, " tuning: ",
                      DiffRows(*oracles[qi], Canon(res->rows))));
        }
      }
    };
    check_pass("before", /*before=*/true);
    // Tick until quiescent: nothing in flight and a full pass that
    // launched nothing. Bounded — guardrails failing to converge is
    // itself a finding.
    uint64_t prev_launches = ~uint64_t{0};
    bool quiesced = false;
    for (int i = 0; i < 200; ++i) {
      if (Status st = pilot.TickOnce(); !st.ok()) {
        fail("autopilot-equivalence", StrCat("tick: ", st.ToString()));
        break;
      }
      uint64_t launches = pilot.metrics().launches;
      if (pilot.in_flight() == 0 && launches == prev_launches) {
        quiesced = true;
        break;
      }
      prev_launches = launches;
      if (pilot.in_flight() > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    if (!quiesced) {
      fail("autopilot-equivalence",
           StrCat("no quiescence after 200 ticks: ",
                  pilot.metrics().ToString()));
    }
    check_pass("after", /*before=*/false);
  }

  // ---- (g) replication: the serving replica is invisible to readers. ----
  if (options.check_replication) {
    // Replicate the identity view of one seed-chosen base relation across
    // three dedicated same-kind store instances, after removing every
    // scenario fragment whose view mentions the relation — the replica set
    // is then the *only* source for it, so killing replicas genuinely
    // forces which instance serves. Answers must stay byte-identical to
    // the staging oracle through every kill, through a write taken while
    // one replica is down, and after the self-healing rebuild that
    // follows — with no staging fallback while a replica is healthy.
    std::vector<const pivot::RelationSignature*> candidates;
    for (const auto& [name, sig] : s.schema.relations()) {
      if (!sig.HasAccessPattern() && sig.arity() > 0) {
        candidates.push_back(&sig);
      }
    }
    if (!candidates.empty()) {
      const pivot::RelationSignature& rel =
          *candidates[(s.seed / 3) % candidates.size()];
      Scenario rs = s;
      rs.fragments.clear();
      for (const FragmentSpec& f : s.fragments) {
        auto vq = pivot::ParseQuery(f.view_text);
        bool mentions = false;
        if (vq.ok()) {
          for (const pivot::Atom& a : vq->body) {
            if (a.relation == rel.name) {
              mentions = true;
              break;
            }
          }
        }
        if (!mentions) rs.fragments.push_back(f);
      }

      Deployment rep;
      if (Status st = rep.Build(rs); !st.ok()) {
        fail("setup", StrCat("replication deployment: ", st.ToString()));
        return out;
      }
      const char* kReplicas[3] = {"rep_a", "rep_b", "rep_c"};
      stores::RelationalStore backends[3];
      stores::FaultInjector injector(s.seed ^ 0xc2b2ae3d27d4eb4fULL);
      for (int i = 0; i < 3; ++i) {
        if (Status st = rep.sys.RegisterStore(
                {kReplicas[i], catalog::StoreKind::kRelational, &backends[i],
                 nullptr, nullptr, nullptr, nullptr});
            !st.ok()) {
          fail("setup",
               StrCat("replica store ", kReplicas[i], ": ", st.ToString()));
          return out;
        }
        backends[i].AttachFaultInjector(&injector, kReplicas[i]);
      }

      std::string head;
      for (size_t i = 0; i < rel.arity(); ++i) {
        head += (i ? ", v" : "v") + std::to_string(i);
      }
      std::string view_text =
          StrCat("F_rep(", head, ") :- ", rel.name, "(", head, ")");
      std::string probe_text =
          StrCat("QRep(", head, ") :- ", rel.name, "(", head, ")");

      runtime::ServerOptions sopts;
      sopts.worker_threads = 1;
      sopts.fault_tolerant = true;
      sopts.retry.max_attempts = 8;
      sopts.retry.initial_backoff_micros = 1;
      sopts.retry.max_backoff_micros = 16;
      sopts.health.failure_threshold = 2;
      sopts.health.open_cooldown_micros = 100;
      sopts.backoff_jitter_seed = s.seed;
      runtime::QueryServer server(&rep.sys, sopts);
      if (Status st = server.DefineReplicatedFragment(
              view_text, {kReplicas[0], kReplicas[1], kReplicas[2]});
          !st.ok()) {
        fail("setup", StrCat("replicated fragment: ", st.ToString()));
        return out;
      }
      auto probe_oracle = rep.sys.EvaluateOverStaging(probe_text, {});
      if (!probe_oracle.ok()) {
        fail("oracle", StrCat("replication probe: ",
                              probe_oracle.status().ToString()));
        return out;
      }
      std::multiset<std::string> expected_probe = Canon(*probe_oracle);

      // `forced` names the only replica allowed to serve (its siblings are
      // down); `fast_path` additionally forbids the staging fallback —
      // asserted only for the probe, whose replicated fragment always has
      // a live placement in these phases.
      auto check = [&](const std::string& text,
                       const std::map<std::string, engine::Value>& params,
                       const std::multiset<std::string>& expected,
                       const std::string& when, const char* forced,
                       bool fast_path) {
        auto res = server.Query(text, params);
        if (!res.ok()) {
          fail("replication-invariance", StrCat("query '", text, "' ", when,
                                                ": ",
                                                res.status().ToString()));
          return;
        }
        ++out.replication_checks;
        if (Canon(res->rows) != expected) {
          fail("replication-invariance",
               StrCat("query '", text, "' ", when, ": ",
                      DiffRows(expected, Canon(res->rows))));
        }
        if (fast_path && res->degraded_to_staging) {
          fail("replication-invariance",
               StrCat("query '", text, "' ", when,
                      " fell back to staging with a healthy replica live"));
        }
        if (forced != nullptr) {
          for (const char* r : kReplicas) {
            if (r != forced && res->runtime_stats.per_store.count(r) > 0) {
              fail("replication-invariance",
                   StrCat("query '", text, "' ", when, ": dead replica ", r,
                          " served rows"));
            }
          }
        }
      };

      check(probe_text, {}, expected_probe, "with all replicas healthy",
            nullptr, /*fast_path=*/true);

      // Force each replica in turn by killing its two siblings: the
      // survivor must serve every answer, byte-identically.
      for (int keep = 0; keep < 3; ++keep) {
        for (int i = 0; i < 3; ++i) {
          injector.SetOutage(kReplicas[i], i != keep);
        }
        std::string when = StrCat("with only ", kReplicas[keep], " alive");
        check(probe_text, {}, expected_probe, when, kReplicas[keep],
              /*fast_path=*/true);
        for (size_t qi = 0; qi < s.queries.size(); ++qi) {
          if (!oracles[qi].has_value()) continue;
          check(s.queries[qi].text, s.queries[qi].parameters, *oracles[qi],
                when, kReplicas[keep], /*fast_path=*/false);
        }
      }
      for (int i = 0; i < 3; ++i) injector.SetOutage(kReplicas[i], false);

      // Kill one replica, take a write while it is down, revive it, and
      // let the repairer's scan rebuild it (backfill, digest verify,
      // atomic re-admission). The rebuilt replica must then serve the
      // post-write truth on its own.
      auto staged = rs.staging.find(rel.name);
      if (staged != rs.staging.end() && !staged->second.rows.empty()) {
        injector.SetOutage(kReplicas[0], true);
        engine::Row fresh = staged->second.rows.front();
        fresh[0] = engine::Value::Int(
            static_cast<int64_t>(1'000'000 + s.seed % 1000));
        if (Status st = server.InsertRow(rel.name, fresh); !st.ok()) {
          fail("replication-invariance",
               StrCat("insert into ", rel.name, " with ", kReplicas[0],
                      " down: ", st.ToString()));
        } else if (auto fo = rep.sys.EvaluateOverStaging(probe_text, {});
                   !fo.ok()) {
          fail("oracle",
               StrCat("probe after insert: ", fo.status().ToString()));
        } else {
          expected_probe = Canon(*fo);
          check(probe_text, {}, expected_probe,
                StrCat("after a write with ", kReplicas[0], " down"), nullptr,
                /*fast_path=*/true);
          injector.SetOutage(kReplicas[0], false);
          replication::ReplicaRepairer repairer(&server);
          size_t repaired = 0;
          bool tick_failed = false;
          for (int t = 0; t < 50 && repaired == 0; ++t) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            auto fixed = repairer.Tick();
            if (!fixed.ok()) {
              fail("replication-invariance",
                   StrCat("repair tick: ", fixed.status().ToString()));
              tick_failed = true;
              break;
            }
            repaired = *fixed;
          }
          if (!tick_failed && repaired == 0) {
            fail("replication-invariance",
                 StrCat("stale replica ", kReplicas[0],
                        " was never repaired after reviving"));
          } else if (repaired > 0) {
            injector.SetOutage(kReplicas[1], true);
            injector.SetOutage(kReplicas[2], true);
            check(probe_text, {}, expected_probe,
                  "served alone by the rebuilt replica", kReplicas[0],
                  /*fast_path=*/true);
            injector.SetOutage(kReplicas[1], false);
            injector.SetOutage(kReplicas[2], false);
          }
        }
      }
    }
  }

  // ---- (h) partitioning: the shard layout is invisible to readers. ----
  if (options.check_partition) {
    // Re-home 1–3 seed-chosen base relations onto partitioned identity
    // fragments (hash and range, N ∈ {2, 4, 8}) across dedicated store
    // instances, after removing every scenario fragment that mentions
    // them — the shard set is then the *only* source for those relations,
    // so answers genuinely exercise scatter-gather (and single-shard
    // pruning when the key is bound). Fragment 0 additionally replicates
    // every shard 2-way for the chaos leg: killing one store per shard
    // must be invisible (the sibling serves), a write taken while a shard
    // replica is down leaves that replica stale, and the per-shard
    // rebuild must heal it to serve the post-write truth alone.
    std::vector<const pivot::RelationSignature*> candidates;
    for (const auto& [name, sig] : s.schema.relations()) {
      if (!sig.HasAccessPattern() && sig.arity() > 0) {
        candidates.push_back(&sig);
      }
    }
    if (!candidates.empty()) {
      // Seed divisors differ from (g)'s to decorrelate the choices.
      const size_t n_part =
          1 + (s.seed / 11) % std::min<size_t>(3, candidates.size());
      std::vector<const pivot::RelationSignature*> chosen;
      const size_t start = (s.seed / 5) % candidates.size();
      for (size_t k = 0; k < n_part; ++k) {
        chosen.push_back(candidates[(start + k) % candidates.size()]);
      }

      Scenario ps = s;
      ps.fragments.clear();
      for (const FragmentSpec& f : s.fragments) {
        auto vq = pivot::ParseQuery(f.view_text);
        bool mentions = false;
        if (vq.ok()) {
          for (const pivot::Atom& a : vq->body) {
            for (const pivot::RelationSignature* rel : chosen) {
              if (a.relation == rel->name) mentions = true;
            }
          }
        }
        if (!mentions) ps.fragments.push_back(f);
      }

      Deployment part;
      if (Status st = part.Build(ps); !st.ok()) {
        fail("setup", StrCat("partition deployment: ", st.ToString()));
        return out;
      }
      // Dedicated shard backends (stable addresses; up to 8 shards x 2
      // replicas per fragment).
      std::deque<stores::RelationalStore> backends;
      stores::FaultInjector injector(s.seed ^ 0x9e3779b97f4a7c15ULL);
      struct PartFragment {
        std::string probe_text;
        size_t arity = 0;
        std::string relation;
        size_t shards = 0;
        size_t replicas_per_shard = 1;
        /// Store names, [shard][replica].
        std::vector<std::vector<std::string>> stores;
      };
      std::vector<PartFragment> frags;
      bool setup_failed = false;
      for (size_t k = 0; k < chosen.size() && !setup_failed; ++k) {
        const pivot::RelationSignature& rel = *chosen[k];
        const size_t shard_counts[3] = {2, 4, 8};
        PartFragment pf;
        pf.relation = rel.name;
        pf.arity = rel.arity();
        pf.shards = shard_counts[(s.seed / (7 + 3 * k)) % 3];
        pf.replicas_per_shard = (k == 0) ? 2 : 1;
        for (size_t sh = 0; sh < pf.shards; ++sh) {
          std::vector<std::string> replica_stores;
          for (size_t r = 0; r < pf.replicas_per_shard; ++r) {
            std::string store_name = StrCat("part", k, "_s", sh, "_r", r);
            backends.emplace_back();
            if (Status st = part.sys.RegisterStore(
                    {store_name, catalog::StoreKind::kRelational,
                     &backends.back(), nullptr, nullptr, nullptr, nullptr});
                !st.ok()) {
              fail("setup",
                   StrCat("shard store ", store_name, ": ", st.ToString()));
              setup_failed = true;
              break;
            }
            backends.back().AttachFaultInjector(&injector, store_name);
            replica_stores.push_back(std::move(store_name));
          }
          if (setup_failed) break;
          pf.stores.push_back(std::move(replica_stores));
        }
        if (setup_failed) break;
        std::string head;
        for (size_t i = 0; i < rel.arity(); ++i) {
          head += (i ? ", v" : "v") + std::to_string(i);
        }
        pf.probe_text =
            StrCat("QPart", k, "(", head, ") :- ", rel.name, "(", head, ")");
        frags.push_back(std::move(pf));
      }
      if (setup_failed) return out;

      runtime::ServerOptions sopts;
      sopts.worker_threads = 1;
      sopts.fault_tolerant = true;
      sopts.retry.max_attempts = 8;
      sopts.retry.initial_backoff_micros = 1;
      sopts.retry.max_backoff_micros = 16;
      sopts.health.failure_threshold = 2;
      sopts.health.open_cooldown_micros = 100;
      sopts.backoff_jitter_seed = s.seed;
      runtime::QueryServer server(&part.sys, sopts);
      for (size_t k = 0; k < frags.size(); ++k) {
        const PartFragment& pf = frags[k];
        std::string head;
        for (size_t i = 0; i < pf.arity; ++i) {
          head += (i ? ", v" : "v") + std::to_string(i);
        }
        std::string view_text = StrCat("F_part", k, "(", head, ") :- ",
                                       pf.relation, "(", head, ")");
        // Range partitioning needs N-1 strictly ascending split points;
        // quantiles of the distinct staged key values provide them when
        // the domain is large enough, else the fragment falls back to
        // hash. The k + seed parity mixes both kinds across fragments.
        std::vector<engine::Value> bounds;
        auto kind = catalog::PartitionSpec::Kind::kHash;
        auto staged = ps.staging.find(pf.relation);
        if ((k + s.seed / 13) % 2 == 1 && staged != ps.staging.end()) {
          std::vector<engine::Value> keys;
          for (const Row& r : staged->second.rows) keys.push_back(r[0]);
          std::sort(keys.begin(), keys.end());
          keys.erase(std::unique(keys.begin(), keys.end(),
                                 [](const engine::Value& a,
                                    const engine::Value& b) {
                                   return engine::Value::Compare(a, b) == 0;
                                 }),
                     keys.end());
          if (keys.size() >= pf.shards) {
            for (size_t b = 1; b < pf.shards; ++b) {
              bounds.push_back(keys[b * keys.size() / pf.shards]);
            }
            kind = catalog::PartitionSpec::Kind::kRange;
          }
        }
        if (Status st = server.DefinePartitionedFragment(
                view_text, kind, /*key_position=*/0, pf.stores,
                std::move(bounds));
            !st.ok()) {
          fail("setup", StrCat("partitioned fragment F_part", k, ": ",
                               st.ToString()));
          return out;
        }
      }

      // Oracle answers for the probes (and a key-bound pruning probe for
      // fragment 0 when its relation is wide enough).
      std::vector<std::multiset<std::string>> expected(frags.size());
      for (size_t k = 0; k < frags.size(); ++k) {
        auto o = part.sys.EvaluateOverStaging(frags[k].probe_text, {});
        if (!o.ok()) {
          fail("oracle",
               StrCat("partition probe ", k, ": ", o.status().ToString()));
          return out;
        }
        expected[k] = Canon(*o);
      }

      // `dead` lists store instances that must not serve; `fast_path`
      // forbids the staging fallback (asserted for probes, whose
      // partitioned fragment always has a routable layout here).
      auto check = [&](const std::string& text,
                       const std::map<std::string, engine::Value>& params,
                       const std::multiset<std::string>& want,
                       const std::string& when,
                       const std::vector<std::string>& dead, bool fast_path) {
        auto res = server.Query(text, params);
        if (!res.ok()) {
          fail("partition-invariance",
               StrCat("query '", text, "' ", when, ": ",
                      res.status().ToString()));
          return;
        }
        ++out.partition_checks;
        if (Canon(res->rows) != want) {
          fail("partition-invariance",
               StrCat("query '", text, "' ", when, ": ",
                      DiffRows(want, Canon(res->rows))));
        }
        if (fast_path && res->degraded_to_staging) {
          fail("partition-invariance",
               StrCat("query '", text, "' ", when,
                      " fell back to staging with every shard routable"));
        }
        for (const std::string& d : dead) {
          auto it = res->runtime_stats.per_store.find(d);
          if (it != res->runtime_stats.per_store.end() &&
              it->second.operations > 0) {
            fail("partition-invariance",
                 StrCat("query '", text, "' ", when, ": dead shard store ",
                        d, " served rows"));
          }
        }
      };

      // All shards healthy: every probe and every scenario query must
      // match the unpartitioned oracle (the probes without touching
      // staging).
      for (size_t k = 0; k < frags.size(); ++k) {
        check(frags[k].probe_text, {}, expected[k], "over healthy shards",
              {}, /*fast_path=*/true);
      }
      for (size_t qi = 0; qi < s.queries.size(); ++qi) {
        if (!oracles[qi].has_value()) continue;
        check(s.queries[qi].text, s.queries[qi].parameters, *oracles[qi],
              "over healthy shards", {}, /*fast_path=*/false);
      }

      // Key-bound probe: binding the partition key to a staged value must
      // prune to the owning shard and still answer identically.
      {
        const PartFragment& pf = frags[0];
        auto staged = ps.staging.find(pf.relation);
        if (pf.arity >= 2 && staged != ps.staging.end() &&
            !staged->second.rows.empty()) {
          const engine::Value key = staged->second.rows.front()[0];
          std::string rest;
          for (size_t i = 1; i < pf.arity; ++i) {
            rest += (i > 1 ? ", v" : "v") + std::to_string(i);
          }
          std::string text = StrCat("QPartKey(", rest, ") :- ", pf.relation,
                                    "($key, ", rest, ")");
          auto o = part.sys.EvaluateOverStaging(text, {{"$key", key}});
          if (!o.ok()) {
            fail("oracle", StrCat("key-bound partition probe: ",
                                  o.status().ToString()));
          } else {
            check(text, {{"$key", key}}, Canon(*o),
                  "with the partition key bound", {}, /*fast_path=*/true);
          }
        }
      }

      // Chaos leg on fragment 0 (2 replicas per shard): kill each replica
      // rank in turn across every shard — the sibling rank must serve
      // every answer, and no dead store may be touched.
      const PartFragment& pf0 = frags[0];
      for (size_t kill = 0; kill < pf0.replicas_per_shard; ++kill) {
        std::vector<std::string> dead;
        for (size_t sh = 0; sh < pf0.shards; ++sh) {
          injector.SetOutage(pf0.stores[sh][kill], true);
          dead.push_back(pf0.stores[sh][kill]);
        }
        check(pf0.probe_text, {}, expected[0],
              StrCat("with shard replica rank ", kill, " dead"), dead,
              /*fast_path=*/true);
        for (size_t sh = 0; sh < pf0.shards; ++sh) {
          injector.SetOutage(pf0.stores[sh][kill], false);
        }
      }

      // Write taken while every shard's replica 1 is down: replica 1 of
      // the written shard goes stale; the per-shard rebuild heals all of
      // them, after which rank 1 must serve the post-write truth alone.
      auto staged0 = ps.staging.find(pf0.relation);
      if (staged0 != ps.staging.end() && !staged0->second.rows.empty()) {
        for (size_t sh = 0; sh < pf0.shards; ++sh) {
          injector.SetOutage(pf0.stores[sh][1], true);
        }
        engine::Row fresh = staged0->second.rows.front();
        fresh[0] = engine::Value::Int(
            static_cast<int64_t>(2'000'000 + s.seed % 1000));
        if (Status st = server.InsertRow(pf0.relation, fresh); !st.ok()) {
          fail("partition-invariance",
               StrCat("insert into ", pf0.relation,
                      " with shard replica rank 1 down: ", st.ToString()));
        } else if (auto fo =
                       part.sys.EvaluateOverStaging(pf0.probe_text, {});
                   !fo.ok()) {
          fail("oracle",
               StrCat("probe after insert: ", fo.status().ToString()));
        } else {
          expected[0] = Canon(*fo);
          for (size_t sh = 0; sh < pf0.shards; ++sh) {
            injector.SetOutage(pf0.stores[sh][1], false);
          }
          check(pf0.probe_text, {}, expected[0],
                "after a write with shard replica rank 1 down", {},
                /*fast_path=*/true);
          Status heal = server.WithAdminLock([&](Estocada* sys) {
            for (size_t sh = 0; sh < pf0.shards; ++sh) {
              ESTOCADA_RETURN_NOT_OK(sys->RebuildShardReplicaFromStaging(
                  StrCat("F_part", 0), sh, 1));
            }
            return Status::OK();
          });
          if (!heal.ok()) {
            fail("partition-invariance",
                 StrCat("shard replica rebuild: ", heal.ToString()));
          } else {
            std::vector<std::string> dead;
            for (size_t sh = 0; sh < pf0.shards; ++sh) {
              injector.SetOutage(pf0.stores[sh][0], true);
              dead.push_back(pf0.stores[sh][0]);
            }
            check(pf0.probe_text, {}, expected[0],
                  "served alone by the healed shard replicas", dead,
                  /*fast_path=*/true);
            for (size_t sh = 0; sh < pf0.shards; ++sh) {
              injector.SetOutage(pf0.stores[sh][0], false);
            }
          }
        }
      }
    }
  }

  // ---- (i) graph: the property-graph island is invisible to readers. ----
  if (options.check_graph) {
    // A seed-generated property graph shredded through the graph encoding
    // onto the native graph store, its encoding relations placed there as
    // identity fragments — the graph store is then the only fragment
    // source, so answers genuinely exercise EXPAND/GRAPH-SCAN delegation.
    // Three legs: the shred/encode round trip preserves exact fact counts
    // and the Reach containment chain; expansion, scan, reachability,
    // property-join, and gmatch-lowered queries served by the graph store
    // match the staging oracle; and with the graph store killed the
    // degradation ladder still answers oracle-correctly from staging.
    Rng grng(s.seed ^ 0xa5a5a5a5deadbeefULL);
    const size_t n_nodes = 4 + grng.Uniform(7);
    constexpr size_t kGraphHops = 3;
    encoding::GraphData g;
    const char* node_labels[2] = {"User", "Item"};
    for (size_t i = 0; i < n_nodes; ++i) {
      encoding::GraphData::Node n;
      n.id = StrCat("n", i);
      n.label = node_labels[grng.Uniform(2)];
      n.props = {{"name", pivot::Constant::Str(grng.AlphaString(4))}};
      g.nodes.push_back(std::move(n));
    }
    const char* edge_labels[2] = {"follows", "likes"};
    const size_t n_edges = n_nodes + grng.Uniform(n_nodes + 1);
    for (size_t i = 0; i < n_edges; ++i) {
      encoding::GraphData::Edge e;
      e.src = StrCat("n", grng.Uniform(n_nodes));
      e.label = edge_labels[grng.Uniform(2)];
      e.dst = StrCat("n", grng.Uniform(n_nodes));
      g.edges.push_back(std::move(e));
    }

    // Shred round trip: one Node atom per node, one Edge atom per edge
    // (duplicates included — staging is a bag), one NodeProp per property.
    size_t nodes_shredded = 0, edges_shredded = 0, props_shredded = 0;
    for (const pivot::Atom& a : encoding::ShredGraph("g", g)) {
      if (a.relation == "g.Node") ++nodes_shredded;
      if (a.relation == "g.Edge") ++edges_shredded;
      if (a.relation == "g.NodeProp") ++props_shredded;
    }
    ++out.graph_checks;
    if (nodes_shredded != g.nodes.size() ||
        edges_shredded != g.edges.size() || props_shredded != g.nodes.size()) {
      fail("graph-invariance",
           StrCat("shred round trip lost facts: ", nodes_shredded, "/",
                  g.nodes.size(), " nodes, ", edges_shredded, "/",
                  g.edges.size(), " edges, ", props_shredded, "/",
                  g.nodes.size(), " node props"));
    }

    stores::GraphStore gstore;
    Estocada gsys;
    auto build_graph = [&]() -> Status {
      ESTOCADA_RETURN_NOT_OK(gsys.RegisterGraphDataset("g", kGraphHops));
      ESTOCADA_RETURN_NOT_OK(
          gsys.RegisterStore({kGraphStore, catalog::StoreKind::kGraph,
                              nullptr, nullptr, nullptr, nullptr, nullptr,
                              &gstore}));
      ESTOCADA_RETURN_NOT_OK(gsys.LoadGraph("g", g));
      ESTOCADA_RETURN_NOT_OK(
          gsys.DefineFragment("F_gnode(n, l) :- g.Node(n, l)", kGraphStore));
      ESTOCADA_RETURN_NOT_OK(gsys.DefineFragment(
          "F_gedge(s, l, d) :- g.Edge(s, l, d)", kGraphStore));
      ESTOCADA_RETURN_NOT_OK(gsys.DefineFragment(
          "F_gprop(n, k, v) :- g.NodeProp(n, k, v)", kGraphStore));
      for (size_t j = 1; j <= kGraphHops; ++j) {
        ESTOCADA_RETURN_NOT_OK(gsys.DefineFragment(
            StrCat("F_greach", j, "(s, d) :- g.Reach", j, "(s, d)"),
            kGraphStore));
      }
      return gsys.PrepareRewriter();
    };
    if (Status st = build_graph(); !st.ok()) {
      fail("setup", StrCat("graph deployment: ", st.ToString()));
      return out;
    }

    // Reach semantics over the staged facts: Reach1 is exactly the edge
    // projection, and Reach_j ⊆ Reach_{j+1} (at-most-j-hops containment).
    auto oracle_set =
        [&](const std::string& text) -> std::optional<std::set<std::string>> {
      auto rows = gsys.EvaluateOverStaging(text);
      if (!rows.ok()) {
        fail("oracle", StrCat("graph probe '", text,
                              "': ", rows.status().ToString()));
        return std::nullopt;
      }
      std::set<std::string> canon;
      for (const Row& r : *rows) canon.insert(engine::RowToString(r));
      return canon;
    };
    auto edge_proj = oracle_set("Qe(s, d) :- g.Edge(s, l, d)");
    std::vector<std::optional<std::set<std::string>>> reach(kGraphHops + 1);
    for (size_t j = 1; j <= kGraphHops; ++j) {
      reach[j] = oracle_set(StrCat("Qr(s, d) :- g.Reach", j, "(s, d)"));
    }
    if (edge_proj && reach[1]) {
      ++out.graph_checks;
      if (*edge_proj != *reach[1]) {
        fail("graph-invariance",
             StrCat("Reach1 differs from the edge projection: ",
                    edge_proj->size(), " edges vs ", reach[1]->size(),
                    " Reach1 facts"));
      }
    }
    for (size_t j = 1; j < kGraphHops; ++j) {
      if (!reach[j] || !reach[j + 1]) continue;
      ++out.graph_checks;
      if (!std::includes(reach[j + 1]->begin(), reach[j + 1]->end(),
                         reach[j]->begin(), reach[j]->end())) {
        fail("graph-invariance",
             StrCat("Reach", j, " ⊄ Reach", j + 1,
                    ": the at-most-j-hops chain is broken"));
      }
    }

    // The query battery: graph-served answers must equal the oracle.
    const std::string src = StrCat("n", grng.Uniform(n_nodes));
    const std::map<std::string, engine::Value> gparams = {
        {"$src", engine::Value::Str(src)}};
    const std::vector<std::string> gqueries = {
        "Qg0(s, l, d) :- g.Edge(s, l, d)",
        "Qg1(d) :- g.Edge($src, l, d)",
        StrCat("Qg2(d) :- g.Reach", kGraphHops, "($src, d)"),
        "Qg3(v) :- g.Edge($src, l, d), g.NodeProp(d, 'name', v)",
        "Qg4(n, v) :- g.Node(n, 'User'), g.NodeProp(n, 'name', v)",
    };
    std::vector<std::optional<std::multiset<std::string>>> gexpected(
        gqueries.size());
    for (size_t qi = 0; qi < gqueries.size(); ++qi) {
      auto o = gsys.EvaluateOverStaging(gqueries[qi], gparams);
      if (!o.ok()) {
        fail("oracle", StrCat("graph query '", gqueries[qi],
                              "': ", o.status().ToString()));
        continue;
      }
      gexpected[qi] = Canon(*o);
      auto res = gsys.Query(gqueries[qi], gparams);
      if (!res.ok()) {
        fail("graph-invariance",
             StrCat("query '", gqueries[qi],
                    "' over the graph store: ", res.status().ToString()));
        continue;
      }
      ++out.graph_checks;
      if (Canon(res->rows) != *gexpected[qi]) {
        fail("graph-invariance",
             StrCat("query '", gqueries[qi], "' over the graph store: ",
                    DiffRows(*gexpected[qi], Canon(res->rows))));
      }
    }

    // A gmatch-lowered MATCH pattern (single-hop or bounded path by seed
    // parity) must agree with the oracle on its own lowered CQ.
    frontend::GraphMatchSpec spec;
    spec.dataset = "g";
    spec.nodes = {{"a", "", {}}, {"b", "", {}}};
    spec.edges = {{"a", "", "b", {}, (s.seed % 2) ? kGraphHops : 1}};
    spec.returns = {"b", "b.name"};
    auto gm = frontend::GraphMatchToCq(spec, gsys.catalog().dataset_schema());
    if (!gm.ok()) {
      fail("graph-invariance",
           StrCat("gmatch lowering: ", gm.status().ToString()));
    } else if (auto o = gsys.EvaluateOverStagingPrepared(*gm); !o.ok()) {
      fail("oracle", StrCat("gmatch oracle: ", o.status().ToString()));
    } else {
      auto res = gsys.QueryGraphMatch(spec);
      if (!res.ok()) {
        fail("graph-invariance",
             StrCat("gmatch query: ", res.status().ToString()));
      } else {
        ++out.graph_checks;
        if (Canon(res->rows) != Canon(*o)) {
          fail("graph-invariance",
               StrCat("gmatch query: ", DiffRows(Canon(*o),
                                                 Canon(res->rows))));
        }
      }
    }

    // Chaos: with the graph store dead, every fragment-based rewriting is
    // unavailable, so the fault-tolerant ladder must degrade to staging —
    // deterministically, since a full outage needs no retry luck — and
    // the degraded answers must still match the oracle.
    stores::FaultInjector ginjector(s.seed ^ 0x5bd1e9955bd1e995ULL);
    gstore.AttachFaultInjector(&ginjector, kGraphStore);
    runtime::ServerOptions gsopts;
    gsopts.worker_threads = 1;
    gsopts.fault_tolerant = true;
    gsopts.retry.max_attempts = 4;
    gsopts.retry.initial_backoff_micros = 1;
    gsopts.retry.max_backoff_micros = 16;
    gsopts.health.failure_threshold = 2;
    gsopts.health.open_cooldown_micros = 100;
    gsopts.backoff_jitter_seed = s.seed;
    runtime::QueryServer gserver(&gsys, gsopts);
    ginjector.SetOutage(kGraphStore, true);
    for (size_t qi = 0; qi < gqueries.size(); ++qi) {
      if (!gexpected[qi].has_value()) continue;
      auto res = gserver.Query(gqueries[qi], gparams);
      if (!res.ok()) {
        fail("graph-invariance",
             StrCat("query '", gqueries[qi], "' with the graph store dead: ",
                    res.status().ToString()));
        continue;
      }
      ++out.graph_checks;
      if (Canon(res->rows) != *gexpected[qi]) {
        fail("graph-invariance",
             StrCat("query '", gqueries[qi], "' with the graph store dead",
                    " (degraded_to_staging=",
                    res->degraded_to_staging ? "yes" : "no", "): ",
                    DiffRows(*gexpected[qi], Canon(res->rows))));
      }
    }
    ginjector.SetOutage(kGraphStore, false);
  }

  return out;
}

namespace {

bool FailsWith(const Scenario& candidate, const std::string& invariant,
               const HarnessOptions& options, size_t* evaluations) {
  ++*evaluations;
  ScenarioOutcome o = CheckScenario(candidate, options);
  for (const Mismatch& m : o.mismatches) {
    if (m.invariant == invariant) return true;
  }
  return false;
}

/// All one-step shrink candidates of `s`, cheapest-to-try first.
std::vector<Scenario> ShrinkCandidates(const Scenario& s) {
  std::vector<Scenario> out;
  // Drop one query.
  for (size_t i = 0; i < s.queries.size(); ++i) {
    Scenario c = s;
    c.queries.erase(c.queries.begin() + static_cast<ptrdiff_t>(i));
    out.push_back(std::move(c));
  }
  // Drop one fragment.
  for (size_t i = 0; i < s.fragments.size(); ++i) {
    Scenario c = s;
    c.fragments.erase(c.fragments.begin() + static_cast<ptrdiff_t>(i));
    out.push_back(std::move(c));
  }
  // Drop one dependency (relations stay registered).
  const auto& deps = s.schema.dependencies();
  for (size_t i = 0; i < deps.size(); ++i) {
    Scenario c = s;
    pivot::Schema sch;
    for (const auto& [name, sig] : s.schema.relations()) {
      if (!sch.AddRelation(sig).ok()) return out;  // cannot happen
    }
    for (size_t j = 0; j < deps.size(); ++j) {
      if (j != i) sch.AddDependency(deps[j]);
    }
    c.schema = std::move(sch);
    out.push_back(std::move(c));
  }
  // Drop one body atom of one query (keeping the query safe).
  for (size_t i = 0; i < s.queries.size(); ++i) {
    auto cq = pivot::ParseQuery(s.queries[i].text);
    if (!cq.ok() || cq->body.size() < 2) continue;
    for (size_t a = 0; a < cq->body.size(); ++a) {
      pivot::ConjunctiveQuery smaller = *cq;
      smaller.body.erase(smaller.body.begin() + static_cast<ptrdiff_t>(a));
      if (!smaller.Validate().ok()) continue;
      Scenario c = s;
      c.queries[i].text = smaller.ToString();
      out.push_back(std::move(c));
    }
  }
  // Halve one relation's rows.
  for (const auto& [rel, data] : s.staging) {
    if (data.rows.empty()) continue;
    Scenario c = s;
    auto& rows = c.staging[rel].rows;
    rows.resize(rows.size() / 2);
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace

ShrinkResult ShrinkScenario(const Scenario& scenario,
                            const std::string& invariant,
                            const HarnessOptions& options) {
  HarnessOptions opts = options;
  opts.shrink = false;
  ShrinkResult result;
  result.scenario = scenario;
  bool progress = true;
  while (progress && result.evaluations < opts.shrink_budget) {
    progress = false;
    for (Scenario& candidate : ShrinkCandidates(result.scenario)) {
      if (result.evaluations >= opts.shrink_budget) break;
      if (FailsWith(candidate, invariant, opts, &result.evaluations)) {
        result.scenario = std::move(candidate);
        ++result.steps;
        progress = true;
        break;
      }
    }
  }
  return result;
}

SeedReport RunSeed(uint64_t seed, const ScenarioConfig& config,
                   const HarnessOptions& options) {
  SeedReport rep;
  rep.seed = seed;
  rep.outcome.seed = seed;
  ScenarioConfig cfg = config;
  cfg.seed = seed;
  auto scenario = GenerateScenario(cfg);
  if (!scenario.ok()) {
    rep.outcome.mismatches.push_back(
        {"generator", scenario.status().ToString()});
    rep.report = StrCat("=== differential failure ===\nseed: ", seed,
                        "\nscenario generation failed: ",
                        scenario.status().ToString(), "\n");
    return rep;
  }
  rep.outcome = CheckScenario(*scenario, options);
  if (rep.outcome.ok()) return rep;

  std::string report =
      StrCat("=== differential failure ===\nseed: ", seed,
             "\nreplay: bench/soak_differential --seed=", seed,
             "  (or FUZZ_REPLAY_SEED=", seed, " ./tests/fuzz_differential)\n");
  for (const Mismatch& m : rep.outcome.mismatches) {
    report += StrCat("  [", m.invariant, "] ", m.detail, "\n");
  }
  if (options.shrink) {
    ShrinkResult shrunk =
        ShrinkScenario(*scenario, rep.outcome.mismatches[0].invariant,
                       options);
    report += StrCat("shrunk scenario (", shrunk.steps, " steps, ",
                     shrunk.evaluations, " evaluations):\n",
                     shrunk.scenario.ToString());
  } else {
    report += StrCat("scenario:\n", scenario->ToString());
  }
  rep.report = std::move(report);
  return rep;
}

std::string SweepReport::Summary() const {
  return StrCat(scenarios, " scenarios: ", failures, " failures, ", queries,
                " queries, ", rewritings, " rewritings executed, ",
                naive_comparisons, " naive-vs-PACB comparisons, ",
                chase_checks, " chase checks, ", chaos_successes,
                " chaos successes (", chaos_errors, " chaos errors), ",
                migration_checks, " migration checks, ", autopilot_checks,
                " autopilot checks, ", replication_checks,
                " replication checks, ", partition_checks,
                " partition checks, ", graph_checks, " graph checks");
}

SweepReport RunSweep(uint64_t first_seed, size_t count,
                     const ScenarioConfig& config,
                     const HarnessOptions& options,
                     size_t max_stored_failures) {
  SweepReport sweep;
  for (uint64_t seed = first_seed; seed < first_seed + count; ++seed) {
    SeedReport rep = RunSeed(seed, config, options);
    ++sweep.scenarios;
    sweep.queries += rep.outcome.queries_checked;
    sweep.rewritings += rep.outcome.rewritings_executed;
    sweep.naive_comparisons += rep.outcome.naive_comparisons;
    sweep.chase_checks += rep.outcome.chase_checks;
    sweep.chaos_successes += rep.outcome.chaos_successes;
    sweep.chaos_errors += rep.outcome.chaos_errors;
    sweep.migration_checks += rep.outcome.migration_checks;
    sweep.autopilot_checks += rep.outcome.autopilot_checks;
    sweep.replication_checks += rep.outcome.replication_checks;
    sweep.partition_checks += rep.outcome.partition_checks;
    sweep.graph_checks += rep.outcome.graph_checks;
    if (!rep.outcome.ok()) {
      ++sweep.failures;
      if (sweep.failed.size() < max_stored_failures) {
        sweep.failed.push_back(std::move(rep));
      }
    }
  }
  return sweep;
}

}  // namespace estocada::testing
