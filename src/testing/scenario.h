#ifndef ESTOCADA_TESTING_SCENARIO_H_
#define ESTOCADA_TESTING_SCENARIO_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/value.h"
#include "pivot/schema.h"
#include "rewriting/cq_eval.h"

namespace estocada::testing {

/// Logical names of the stores a generated scenario may place fragments
/// on. The differential harness instantiates one store stand-in per name
/// (matching the kind) when it deploys a scenario. The graph store is the
/// sixth island: the relational scenario generator never places fragments
/// there, but invariant family (i) deploys property-graph datasets on it.
inline constexpr const char* kRelationalStore = "pg";
inline constexpr const char* kKeyValueStore = "redis";
inline constexpr const char* kDocumentStore = "mongo";
inline constexpr const char* kParallelStore = "spark";
inline constexpr const char* kTextStore = "solr";
inline constexpr const char* kGraphStore = "neo";

/// Knobs of the random scenario generator. Defaults keep one scenario
/// small enough that a few hundred of them fit in a tier-1 ctest budget.
struct ScenarioConfig {
  uint64_t seed = 1;
  size_t min_relations = 2;
  size_t max_relations = 4;
  size_t min_arity = 2;
  size_t max_arity = 4;
  size_t min_rows = 3;
  size_t max_rows = 12;
  /// Extra fragments on top of the per-relation identity fragment that
  /// guarantees every generated query is answerable.
  size_t max_extra_fragments = 4;
  size_t min_queries = 3;
  size_t max_queries = 5;
  /// Non-key integer values are drawn from [0, int_domain) so joins and
  /// selections actually hit.
  size_t int_domain = 6;
  /// Size of the string vocabulary (shared across relations).
  size_t vocab_size = 5;
  /// Probability that a relation declares its key column as an EGD key
  /// constraint (the data always keeps keys distinct, so the EGD holds).
  double key_constraint_rate = 0.6;
  /// Probability that a relation (other than the first) declares a
  /// foreign-key TGD into an earlier relation. FK columns are then drawn
  /// from the parent's key range, so the TGD holds on the data.
  double fk_rate = 0.5;
};

/// One fragment placement: a LAV view in pivot syntax plus where it lives.
struct FragmentSpec {
  std::string view_text;
  std::string store;  ///< One of the five store names above.
  std::vector<pivot::Adornment> adornments;
};

/// One generated query: pivot CQ text plus its parameter bindings.
struct QuerySpec {
  std::string text;
  std::map<std::string, engine::Value> parameters;
};

/// A complete generated test scenario: schema (with key/FK constraints),
/// staged ground-truth data, a fragment layout across the stores, and
/// conjunctive queries guaranteed answerable (every relation has an
/// all-free identity fragment). Everything is derived deterministically
/// from `seed`, so a failure replays from that one number.
struct Scenario {
  uint64_t seed = 0;
  pivot::Schema schema;
  rewriting::StagingData staging;
  std::vector<FragmentSpec> fragments;
  std::vector<QuerySpec> queries;

  /// Replayable human-readable dump (schema, constraints, rows, fragment
  /// layout, queries) — what a failing fuzz run prints after shrinking.
  std::string ToString() const;
};

/// Generates the scenario determined by `config` (notably config.seed).
Result<Scenario> GenerateScenario(const ScenarioConfig& config);

}  // namespace estocada::testing

#endif  // ESTOCADA_TESTING_SCENARIO_H_
