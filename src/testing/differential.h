#ifndef ESTOCADA_TESTING_DIFFERENTIAL_H_
#define ESTOCADA_TESTING_DIFFERENTIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "testing/scenario.h"

namespace estocada::testing {

/// Knobs of the differential harness. The four booleans select the
/// metamorphic invariant families of the fuzzer:
///  (a) every PACB rewriting, executed through the runtime, returns the
///      staging oracle's tuples;
///  (b) the naive chase & backchase and the PACB rewriter agree on small
///      instances;
///  (c) the chase is idempotent and invariant (up to homomorphic
///      equivalence) under atom/variable permutation of the query;
///  (d) under fault-injector chaos, the serving runtime's degradation
///      ladder returns oracle-correct answers whenever it reports success;
///  (e) query answers are invariant before, during (backfilled shadow,
///      pre-cutover), and after a seeded online migration — live
///      re-fragmentation must be invisible to readers;
///  (f) an Autopilot running at its most aggressive setting (act on a
///      single observation, no dominance gate, trust the cost model
///      blindly) launches, completes, reverts, and blacklists however it
///      likes — and every answer still matches the staging oracle, and no
///      query answerable before tuning becomes unanswerable after;
///  (g) a fragment replicated K=3 ways across same-kind store instances
///      answers byte-identically to the oracle no matter which replica
///      serves: each replica is forced in turn by killing its siblings, a
///      write is taken while one replica is down, and the self-healed
///      (rebuilt, digest-verified, re-admitted) replica must then serve
///      the post-write truth alone — all without staging fallback while
///      at least one replica is healthy;
///  (h) 1–3 base relations re-homed onto *partitioned* identity fragments
///      (hash and range, N in {2, 4, 8} seed-chosen shards across
///      dedicated store instances) answer byte-identically to the
///      unpartitioned staging oracle: through scatter-gather reads,
///      through key-bound reads that prune to one shard, through
///      shard-kill chaos on a shard-replicated layout (the sibling
///      replica must serve, the dead store must not), and through a write
///      taken while a shard replica is down followed by its per-shard
///      rebuild — the healed replica set must then serve the post-write
///      truth alone;
///  (i) a seed-generated property graph, shredded through the graph
///      encoding onto a native graph store, answers byte-identically to
///      the staging oracle: the shred/encode round trip preserves exact
///      fact counts and the Reach1 ⊆ ... ⊆ ReachK containment chain;
///      expansion, scan, bounded-reachability, property-join, and
///      gmatch-lowered queries served by the graph store match the
///      oracle; and with the graph store killed the degradation ladder
///      still returns oracle-correct answers whenever it reports success.
struct HarnessOptions {
  bool check_rewritings = true;   ///< Invariant family (a).
  bool check_naive = true;        ///< Invariant family (b).
  bool check_chase = true;        ///< Invariant family (c).
  bool check_chaos = true;        ///< Invariant family (d).
  bool check_migration = true;    ///< Invariant family (e).
  bool check_autopilot = true;    ///< Invariant family (f).
  bool check_replication = true;  ///< Invariant family (g).
  bool check_partition = true;    ///< Invariant family (h).
  bool check_graph = true;        ///< Invariant family (i).
  /// (b) is exponential in the universal plan; skip it beyond this size.
  size_t max_universal_plan_for_naive = 8;
  /// Subset-size cap fed to the naive enumeration; PACB rewritings above
  /// this body size are excluded from the comparison.
  size_t naive_max_subset = 3;
  /// (c) is checked on at most this many queries per scenario.
  size_t max_chase_queries = 3;
  /// Transient-fault probability per store read during the chaos phase.
  double chaos_fault_rate = 0.2;
  /// Auto-shrink failing scenarios before reporting.
  bool shrink = true;
  /// Maximum CheckScenario evaluations a shrink may spend.
  size_t shrink_budget = 120;
};

/// One invariant violation. `invariant` is a stable family tag
/// ("rewriting-oracle", "naive-vs-pacb", "chase-idempotence",
/// "chase-permutation", "chaos-correctness", "migration-invariance",
/// "autopilot-equivalence", "replication-invariance",
/// "partition-invariance", "graph-invariance", plus "setup" / "oracle" /
/// "plan" / "generator" for harness-level breakage).
struct Mismatch {
  std::string invariant;
  std::string detail;
};

/// What one scenario run checked and found.
struct ScenarioOutcome {
  uint64_t seed = 0;
  size_t queries_checked = 0;
  size_t rewritings_executed = 0;  ///< Invariant (a) executions.
  size_t naive_comparisons = 0;    ///< Invariant (b) comparisons.
  size_t chase_checks = 0;         ///< Invariant (c) query checks.
  size_t chaos_successes = 0;      ///< Invariant (d) verified answers.
  size_t chaos_errors = 0;         ///< Chaos queries that reported failure.
  size_t migration_checks = 0;     ///< Invariant (e) verified answers.
  size_t autopilot_checks = 0;     ///< Invariant (f) verified answers.
  size_t replication_checks = 0;   ///< Invariant (g) verified answers.
  size_t partition_checks = 0;     ///< Invariant (h) verified answers.
  size_t graph_checks = 0;         ///< Invariant (i) verified answers.
  size_t skipped_unanswerable = 0; ///< Queries with no rewriting (skipped).
  std::vector<Mismatch> mismatches;

  bool ok() const { return mismatches.empty(); }
};

/// Deploys `scenario` on fresh in-process store stand-ins, computes the
/// staging-oracle answer of every query, and checks the enabled invariant
/// families. Never throws or aborts: every breakage is reported as a
/// Mismatch.
ScenarioOutcome CheckScenario(const Scenario& scenario,
                              const HarnessOptions& options = {});

/// Greedy fixpoint shrinker: repeatedly tries dropping a query, a
/// fragment, a constraint, one query body atom, or half of one relation's
/// rows, keeping any candidate that still violates `invariant`. Bounded
/// by options.shrink_budget CheckScenario evaluations.
struct ShrinkResult {
  Scenario scenario;
  size_t steps = 0;        ///< Accepted shrink transformations.
  size_t evaluations = 0;  ///< CheckScenario calls spent.
};
ShrinkResult ShrinkScenario(const Scenario& scenario,
                            const std::string& invariant,
                            const HarnessOptions& options = {});

/// Generates the scenario of `seed`, checks it, and on failure shrinks
/// and renders a replayable report (seed, mismatches, shrunk scenario
/// dump). `report` is empty when the scenario passed.
struct SeedReport {
  uint64_t seed = 0;
  ScenarioOutcome outcome;
  std::string report;
};
SeedReport RunSeed(uint64_t seed, const ScenarioConfig& config = {},
                   const HarnessOptions& options = {});

/// Runs seeds [first_seed, first_seed + count) and aggregates. At most
/// `max_stored_failures` full failure reports are kept (all failures are
/// counted).
struct SweepReport {
  size_t scenarios = 0;
  size_t failures = 0;
  size_t queries = 0;
  size_t rewritings = 0;
  size_t naive_comparisons = 0;
  size_t chase_checks = 0;
  size_t chaos_successes = 0;
  size_t chaos_errors = 0;
  size_t migration_checks = 0;
  size_t autopilot_checks = 0;
  size_t replication_checks = 0;
  size_t partition_checks = 0;
  size_t graph_checks = 0;
  std::vector<SeedReport> failed;

  bool ok() const { return failures == 0; }
  /// One-line coverage/result summary.
  std::string Summary() const;
};
SweepReport RunSweep(uint64_t first_seed, size_t count,
                     const ScenarioConfig& config = {},
                     const HarnessOptions& options = {},
                     size_t max_stored_failures = 5);

}  // namespace estocada::testing

#endif  // ESTOCADA_TESTING_DIFFERENTIAL_H_
