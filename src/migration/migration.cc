#include "migration/migration.h"

#include <algorithm>
#include <chrono>

#include "common/strings.h"
#include "runtime/retry.h"

namespace estocada::migration {

using engine::Row;
using runtime::QueryServer;

const char* StageName(MigrationStage stage) {
  switch (stage) {
    case MigrationStage::kPlanned:
      return "Planned";
    case MigrationStage::kBackfilling:
      return "Backfilling";
    case MigrationStage::kCatchingUp:
      return "CatchingUp";
    case MigrationStage::kVerifying:
      return "Verifying";
    case MigrationStage::kCutOver:
      return "CutOver";
    case MigrationStage::kRetired:
      return "Retired";
    case MigrationStage::kAborted:
      return "Aborted";
  }
  return "?";
}

std::string MigrationSpec::ToString() const {
  std::string out;
  if (drop_only()) {
    out = "drop-only migration";
  } else {
    out = StrCat("migrate ", view.query.ToString(), " @ ", store_name);
  }
  if (!retire.empty()) {
    out += StrCat(" (retire ", StrJoin(retire, ", "), ")");
  }
  return out;
}

MigrationSpec MigrationSpec::FromRecommendation(
    const advisor::Recommendation& rec) {
  MigrationSpec spec;
  if (rec.action == advisor::Recommendation::Action::kDropFragment) {
    spec.retire.push_back(rec.fragment_name);
  } else {
    spec.view = rec.view;
    spec.store_name = rec.store_name;
  }
  return spec;
}

std::string MigrationStatus::ToString() const {
  std::string out = StrCat("[", StageName(stage), paused ? ", paused" : "",
                           "] copied ", metrics.rows_copied, " rows in ",
                           metrics.batches, " batches, replayed ",
                           metrics.deltas_replayed, "/",
                           metrics.deltas_captured, " deltas (lag ",
                           metrics.catchup_lag, "), ", metrics.rebuilds,
                           " rebuilds, ", metrics.target_retries,
                           " retries, ", metrics.breaker_pauses, " pauses");
  if (stage == MigrationStage::kCutOver || stage == MigrationStage::kRetired) {
    out += StrCat(", cutover epoch ", metrics.cutover_epoch);
  }
  if (!error.ok()) out += StrCat(" — ", error.ToString());
  return out;
}

MigrationEngine::MigrationEngine(QueryServer* server, MigrationSpec spec,
                                 MigrationOptions options)
    : server_(server), spec_(std::move(spec)), options_(options) {
  if (!spec_.drop_only()) target_ = spec_.view.name();
  for (const pivot::Atom& a : spec_.view.query.body) {
    view_relations_.insert(a.relation);
  }
}

MigrationEngine::~MigrationEngine() {
  std::lock_guard<std::mutex> lock(step_mu_);
  DetachListener();
}

void MigrationEngine::DetachListener() {
  if (listener_token_ != 0) {
    server_->RemoveUpdateListener(listener_token_);
    listener_token_ = 0;
  }
}

MigrationStatus MigrationEngine::status() const {
  MigrationStatus out;
  out.stage = stage_.load(std::memory_order_acquire);
  out.paused = paused_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    out.error = error_;
  }
  out.metrics.rows_copied = metrics_.rows_copied.load();
  out.metrics.batches = metrics_.batches.load();
  out.metrics.throttle_stalls = metrics_.throttle_stalls.load();
  out.metrics.deltas_captured = metrics_.deltas_captured.load();
  out.metrics.deltas_replayed = metrics_.deltas_replayed.load();
  out.metrics.catchup_rounds = metrics_.catchup_rounds.load();
  out.metrics.rebuilds = metrics_.rebuilds.load();
  out.metrics.target_retries = metrics_.target_retries.load();
  out.metrics.breaker_pauses = metrics_.breaker_pauses.load();
  out.metrics.cutover_epoch = metrics_.cutover_epoch.load();
  {
    std::lock_guard<std::mutex> lock(delta_mu_);
    out.metrics.catchup_lag = deltas_.size();
  }
  return out;
}

void MigrationEngine::PauseWhileBreakerOpen() {
  if (spec_.store_name.empty()) return;
  bool counted = false;
  while (!abort_requested_.load(std::memory_order_acquire)) {
    // ExcludedStores() also performs due open → half-open transitions,
    // which is exactly what lets a paused migration resume.
    std::vector<std::string> excluded = server_->health().ExcludedStores();
    if (std::find(excluded.begin(), excluded.end(), spec_.store_name) ==
        excluded.end()) {
      break;
    }
    if (!counted) {
      metrics_.breaker_pauses.fetch_add(1, std::memory_order_relaxed);
      counted = true;
    }
    paused_.store(true, std::memory_order_release);
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.throttle.pause_poll_micros));
  }
  paused_.store(false, std::memory_order_release);
}

Status MigrationEngine::RetryTargetOp(const std::function<Status()>& op) {
  Status last = Status::Internal("migration retry loop never ran");
  const int budget = std::max(1, options_.max_target_retries);
  for (int attempt = 1; attempt <= budget; ++attempt) {
    if (abort_requested_.load(std::memory_order_acquire)) {
      return Status::Aborted("migration aborted during a target operation");
    }
    PauseWhileBreakerOpen();
    Status st = op();
    if (st.ok()) {
      if (!spec_.store_name.empty()) {
        server_->health().ReportSuccess(spec_.store_name);
      }
      return st;
    }
    if (!runtime::RetryPolicy::IsRetryable(st)) return st;
    last = st;
    metrics_.target_retries.fetch_add(1, std::memory_order_relaxed);
    // Feed the breaker: enough consecutive failures trip it open, and the
    // next attempt's PauseWhileBreakerOpen waits out the cooldown instead
    // of hammering a down store.
    if (!spec_.store_name.empty()) {
      server_->health().ReportFailure(spec_.store_name);
    }
    uint64_t backoff =
        options_.retry_backoff_micros *
        static_cast<uint64_t>(std::min(attempt, 8));
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff));
    }
  }
  return last;
}

Status MigrationEngine::DrainDeltasLocked(Estocada* sys, size_t max_rows) {
  if (target_.empty()) return Status::OK();
  // The server's exclusive lock is held: no update event can land while
  // this runs, so the backlog is frozen. It is only consumed on success,
  // which makes the enclosing RetryTargetOp envelope idempotent.
  bool rebuild;
  std::vector<std::pair<std::string, Row>> pending;
  {
    std::lock_guard<std::mutex> lock(delta_mu_);
    rebuild = needs_rebuild_;
    if (!rebuild) {
      size_t n = deltas_.size();
      if (max_rows > 0 && n > max_rows) n = max_rows;
      pending.assign(deltas_.begin(),
                     deltas_.begin() + static_cast<ptrdiff_t>(n));
    }
  }
  if (rebuild) {
    ESTOCADA_RETURN_NOT_OK(sys->RebuildShadowFragment(target_));
    metrics_.rebuilds.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(delta_mu_);
    needs_rebuild_ = false;
    deltas_.clear();
    return Status::OK();
  }
  if (pending.empty()) return Status::OK();
  ESTOCADA_RETURN_NOT_OK(sys->MaintainShadowFragment(target_, pending));
  metrics_.deltas_replayed.fetch_add(pending.size(),
                                     std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(delta_mu_);
  deltas_.erase(deltas_.begin(),
                deltas_.begin() + static_cast<ptrdiff_t>(pending.size()));
  return Status::OK();
}

Status MigrationEngine::StepPlan() {
  bool target_is_text = false;
  // The retry envelope covers shadow-container creation too: the target
  // store rejects writes during a hard outage, and DefineShadowFragment
  // leaves nothing behind on failure, so re-running it is safe.
  ESTOCADA_RETURN_NOT_OK(RetryTargetOp([&] {
    return server_->WithAdminLock([&](Estocada* sys) {
    for (const std::string& name : spec_.retire) {
      auto frag = sys->catalog().GetFragment(name);
      if (!frag.ok()) return frag.status();
      if ((*frag)->is_shadow()) {
        return Status::FailedPrecondition(
            StrCat("cannot retire '", name, "': it is a shadow fragment"));
      }
    }
      if (spec_.drop_only()) return Status::OK();
      ESTOCADA_RETURN_NOT_OK(sys->DefineShadowFragment(
          spec_.view, spec_.store_name, spec_.index_positions));
      shadow_defined_ = true;
      auto store = sys->catalog().GetStore(spec_.store_name);
      if (!store.ok()) return store.status();
      target_is_text = (*store)->kind == catalog::StoreKind::kText;
      return Status::OK();
    });
  }));
  if (!spec_.drop_only()) {
    // Listener before snapshot: an update in the gap is both captured as
    // a delta and visible to the snapshot — replaying it twice is benign
    // under set semantics, missing it would not be.
    listener_token_ = server_->AddUpdateListener(
        [this](const QueryServer::UpdateEvent& event) {
          if (view_relations_.find(event.relation) == view_relations_.end()) {
            return;
          }
          metrics_.deltas_captured.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(delta_mu_);
          if (event.kind == QueryServer::UpdateEvent::Kind::kInsert) {
            deltas_.emplace_back(event.relation, event.row);
          } else {
            // Deletions have no append delta: schedule a full rebuild
            // (which subsumes every pending insert delta).
            needs_rebuild_ = true;
            deltas_.clear();
          }
        });
    if (target_is_text) {
      // The text store cannot append: the whole backfill is one rebuild,
      // scheduled through the same catch-up path deletions use.
      std::lock_guard<std::mutex> lock(delta_mu_);
      needs_rebuild_ = true;
    } else {
      ESTOCADA_RETURN_NOT_OK(server_->WithReadLock([&](const Estocada& sys) {
        ESTOCADA_ASSIGN_OR_RETURN(snapshot_,
                                  sys.EvaluateFragmentView(target_));
        return Status::OK();
      }));
    }
  }
  stage_.store(MigrationStage::kBackfilling, std::memory_order_release);
  return Status::OK();
}

Status MigrationEngine::StepBackfill() {
  backfill_start_ = std::chrono::steady_clock::now();
  const size_t batch_rows = std::max<size_t>(1, options_.throttle.batch_rows);
  while (backfill_pos_ < snapshot_.size()) {
    if (abort_requested_.load(std::memory_order_acquire)) {
      return Status::OK();  // The run loop rolls back.
    }
    const size_t end =
        std::min(snapshot_.size(), backfill_pos_ + batch_rows);
    std::vector<Row> batch(snapshot_.begin() + backfill_pos_,
                           snapshot_.begin() + end);
    ESTOCADA_RETURN_NOT_OK(RetryTargetOp([&] {
      return server_->WithAdminLock([&](Estocada* sys) {
        return sys->AppendToShadowFragment(target_, batch);
      });
    }));
    backfill_pos_ = end;
    metrics_.batches.fetch_add(1, std::memory_order_relaxed);
    metrics_.rows_copied.fetch_add(batch.size(), std::memory_order_relaxed);
    // Budgeted copy rate: sleep whenever we are ahead of the allowance.
    if (options_.throttle.max_rows_per_sec > 0) {
      double budget_secs =
          static_cast<double>(backfill_pos_) /
          static_cast<double>(options_.throttle.max_rows_per_sec);
      double elapsed_secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        backfill_start_)
              .count();
      if (elapsed_secs < budget_secs) {
        metrics_.throttle_stalls.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(
            std::chrono::duration<double>(budget_secs - elapsed_secs));
      }
    }
  }
  stage_.store(MigrationStage::kCatchingUp, std::memory_order_release);
  return Status::OK();
}

Status MigrationEngine::StepCatchUp() {
  const size_t chunk = std::max<size_t>(1, options_.throttle.batch_rows);
  for (size_t round = 0; round < options_.max_catchup_rounds; ++round) {
    if (abort_requested_.load(std::memory_order_acquire)) return Status::OK();
    bool backlog;
    {
      std::lock_guard<std::mutex> lock(delta_mu_);
      backlog = needs_rebuild_ || !deltas_.empty();
    }
    if (!backlog) break;
    metrics_.catchup_rounds.fetch_add(1, std::memory_order_relaxed);
    // One round = drain everything currently pending, chunk by chunk:
    // each chunk is its own retryable store operation, so a long backlog
    // under chaos converges instead of retrying one giant append forever.
    for (;;) {
      if (abort_requested_.load(std::memory_order_acquire)) {
        return Status::OK();
      }
      {
        std::lock_guard<std::mutex> lock(delta_mu_);
        if (!needs_rebuild_ && deltas_.empty()) break;
      }
      ESTOCADA_RETURN_NOT_OK(RetryTargetOp([&] {
        return server_->WithAdminLock(
            [&](Estocada* sys) { return DrainDeltasLocked(sys, chunk); });
      }));
    }
  }
  // A residual backlog (updates kept racing the rounds) is fine: the
  // cutover section drains it atomically.
  stage_.store(MigrationStage::kVerifying, std::memory_order_release);
  return Status::OK();
}

Status MigrationEngine::StepCutOver() {
  if (!spec_.drop_only()) {
    // One exclusive-lock section: final catch-up, verification against
    // the staging truth, activation (the epoch bump). Queries admitted
    // after it plan against the new layout; nothing in between can
    // observe a half-cut-over catalog.
    ESTOCADA_RETURN_NOT_OK(RetryTargetOp([&] {
      return server_->WithAdminLock([&](Estocada* sys) {
        // Catch-up left at most a few residual deltas; draining them all
        // here is what makes the cutover atomic.
        ESTOCADA_RETURN_NOT_OK(DrainDeltasLocked(sys, /*max_rows=*/0));
        if (options_.verify) {
          ESTOCADA_RETURN_NOT_OK(sys->VerifyFragment(target_));
        }
        ESTOCADA_RETURN_NOT_OK(sys->ActivateShadowFragment(target_));
        metrics_.cutover_epoch.store(sys->catalog_epoch(),
                                     std::memory_order_relaxed);
        return Status::OK();
      });
    }));
  }
  stage_.store(MigrationStage::kCutOver, std::memory_order_release);
  return Status::OK();
}

Status MigrationEngine::StepRetire() {
  ESTOCADA_RETURN_NOT_OK(server_->WithAdminLock([&](Estocada* sys) {
    for (const std::string& name : spec_.retire) {
      Status st = sys->DropFragment(name);
      // Dropped behind our back (a racing admin call): nothing to do.
      if (!st.ok() && st.code() != StatusCode::kNotFound) return st;
    }
    return Status::OK();
  }));
  DetachListener();
  stage_.store(MigrationStage::kRetired, std::memory_order_release);
  return Status::OK();
}

Status MigrationEngine::StepLocked() {
  switch (stage_.load(std::memory_order_acquire)) {
    case MigrationStage::kPlanned:
      return StepPlan();
    case MigrationStage::kBackfilling:
      return StepBackfill();
    case MigrationStage::kCatchingUp:
      return StepCatchUp();
    case MigrationStage::kVerifying:
      return StepCutOver();
    case MigrationStage::kCutOver:
      return StepRetire();
    case MigrationStage::kRetired:
    case MigrationStage::kAborted:
      return Status::OK();
  }
  return Status::Internal("unknown migration stage");
}

void MigrationEngine::AbortLocked(Status cause) {
  MigrationStage stage = stage_.load(std::memory_order_acquire);
  if (stage == MigrationStage::kRetired ||
      stage == MigrationStage::kAborted) {
    return;
  }
  DetachListener();
  if (!target_.empty() && shadow_defined_) {
    if (stage == MigrationStage::kCutOver) {
      // Already activated but the sources still exist: dropping the
      // target (an epoch bump) returns every query to the old layout.
      (void)server_->WithAdminLock([&](Estocada* sys) {
        Status st = sys->DropFragment(target_);
        return st.code() == StatusCode::kNotFound ? Status::OK() : st;
      });
    } else {
      // Pre-cutover the planner never saw the target: dropping the
      // shadow leaves no trace (and no epoch bump).
      (void)server_->WithAdminLock([&](Estocada* sys) {
        Status st = sys->DropShadowFragment(target_);
        return st.code() == StatusCode::kNotFound ? Status::OK() : st;
      });
    }
    shadow_defined_ = false;
  }
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    error_ = std::move(cause);
  }
  stage_.store(MigrationStage::kAborted, std::memory_order_release);
}

Status MigrationEngine::Run() {
  for (;;) {
    std::lock_guard<std::mutex> lock(step_mu_);
    MigrationStage stage = stage_.load(std::memory_order_acquire);
    if (stage == MigrationStage::kRetired) return Status::OK();
    if (stage == MigrationStage::kAborted) {
      std::lock_guard<std::mutex> elock(error_mu_);
      return error_.ok() ? Status::Aborted("migration aborted") : error_;
    }
    if (abort_requested_.load(std::memory_order_acquire)) {
      AbortLocked(Status::Aborted("migration aborted on request"));
      continue;
    }
    Status st = StepLocked();
    if (!st.ok()) AbortLocked(std::move(st));
  }
}

Status MigrationEngine::RunUntil(MigrationStage stage) {
  for (;;) {
    std::lock_guard<std::mutex> lock(step_mu_);
    MigrationStage current = stage_.load(std::memory_order_acquire);
    if (current == stage) return Status::OK();
    if (current == MigrationStage::kRetired ||
        current == MigrationStage::kAborted) {
      std::lock_guard<std::mutex> elock(error_mu_);
      return Status::FailedPrecondition(
          StrCat("migration terminated at ", StageName(current),
                 " before reaching ", StageName(stage),
                 error_.ok() ? "" : StrCat(" (", error_.ToString(), ")")));
    }
    if (abort_requested_.load(std::memory_order_acquire)) {
      AbortLocked(Status::Aborted("migration aborted on request"));
      continue;
    }
    Status st = StepLocked();
    if (!st.ok()) AbortLocked(std::move(st));
  }
}

Status MigrationEngine::Abort() {
  abort_requested_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(step_mu_);
  MigrationStage stage = stage_.load(std::memory_order_acquire);
  if (stage == MigrationStage::kRetired) {
    return Status::FailedPrecondition(
        "migration already retired; the cutover is permanent");
  }
  if (stage == MigrationStage::kAborted) return Status::OK();
  AbortLocked(Status::Aborted("migration aborted on request"));
  return Status::OK();
}

// ----------------------------------------------------------------------
// MigrationManager

MigrationManager::MigrationManager(QueryServer* server) : server_(server) {}

MigrationManager::~MigrationManager() {
  std::vector<Entry*> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, entry] : entries_) entries.push_back(entry.get());
  }
  for (Entry* entry : entries) {
    if (!entry->done.load()) (void)entry->engine->Abort();
  }
  for (Entry* entry : entries) {
    if (entry->worker.joinable()) entry->worker.join();
  }
}

Result<uint64_t> MigrationManager::Start(MigrationSpec spec,
                                         MigrationOptions options,
                                         CompletionCallback on_complete) {
  if (spec.drop_only() && spec.retire.empty()) {
    return Status::InvalidArgument(
        "migration spec has neither a target view nor fragments to retire");
  }
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_id_++;
  auto entry = std::make_unique<Entry>();
  entry->engine = std::make_unique<MigrationEngine>(server_, std::move(spec),
                                                    options);
  Entry* raw = entry.get();
  entry->worker = std::thread([raw, id, cb = std::move(on_complete)] {
    (void)raw->engine->Run();
    // Callback before the done flip: a Wait/WaitFor that returned implies
    // the callback already finished.
    if (cb) cb(id, raw->engine->status());
    raw->done.store(true, std::memory_order_release);
  });
  entries_.emplace(id, std::move(entry));
  return id;
}

Result<uint64_t> MigrationManager::StartRecommendation(
    const advisor::Recommendation& rec, MigrationOptions options,
    CompletionCallback on_complete) {
  return Start(MigrationSpec::FromRecommendation(rec), options,
               std::move(on_complete));
}

Result<MigrationManager::Entry*> MigrationManager::Find(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return Status::NotFound(StrCat("no migration with id ", id));
  }
  return it->second.get();
}

Result<MigrationStatus> MigrationManager::GetStatus(uint64_t id) const {
  ESTOCADA_ASSIGN_OR_RETURN(Entry * entry, Find(id));
  return entry->engine->status();
}

Status MigrationManager::Abort(uint64_t id) {
  ESTOCADA_ASSIGN_OR_RETURN(Entry * entry, Find(id));
  return entry->engine->Abort();
}

Result<MigrationStatus> MigrationManager::Wait(uint64_t id) {
  ESTOCADA_ASSIGN_OR_RETURN(Entry * entry, Find(id));
  while (!entry->done.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (entry->worker.joinable()) entry->worker.join();
  }
  return entry->engine->status();
}

Result<MigrationStatus> MigrationManager::WaitFor(uint64_t id,
                                                  uint64_t timeout_micros) {
  ESTOCADA_ASSIGN_OR_RETURN(Entry * entry, Find(id));
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(timeout_micros);
  while (!entry->done.load(std::memory_order_acquire)) {
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::Unavailable(
          StrCat("migration ", id, " still running after ", timeout_micros,
                 "us"));
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (entry->worker.joinable()) entry->worker.join();
  }
  return entry->engine->status();
}

std::vector<std::pair<uint64_t, MigrationStatus>> MigrationManager::List()
    const {
  std::vector<std::pair<uint64_t, MigrationStatus>> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    out.emplace_back(id, entry->engine->status());
  }
  return out;
}

}  // namespace estocada::migration
