#ifndef ESTOCADA_MIGRATION_MIGRATION_H_
#define ESTOCADA_MIGRATION_MIGRATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "advisor/advisor.h"
#include "common/result.h"
#include "pacb/view.h"
#include "runtime/query_server.h"

namespace estocada::migration {

/// The staged, resumable state machine of one online migration:
///
///   Planned → Backfilling → CatchingUp → Verifying → CutOver → Retired
///
/// with Aborted reachable from every pre-Retired stage. The value names
/// the *current* stage: `kBackfilling` means the backfill is pending or
/// in progress; `kCutOver` means the target fragment is live (epoch
/// bumped) but the retired sources have not yet been dropped. Stages
/// before kRetired are strictly ordered so RunUntil can compare them.
enum class MigrationStage {
  kPlanned = 0,
  kBackfilling,
  kCatchingUp,
  kVerifying,
  kCutOver,
  kRetired,
  kAborted,
};

const char* StageName(MigrationStage stage);

/// Budgeted backfill: how much foreground latency a migration may steal.
/// Each batch briefly takes the server's exclusive lock (that is what
/// keeps the copy transactional against readers), so small batches and a
/// rows/sec budget bound the stall the query path can observe.
struct ThrottlePolicy {
  /// Rows appended per exclusive-lock acquisition.
  size_t batch_rows = 256;
  /// Sustained copy-rate ceiling; 0 = unthrottled.
  size_t max_rows_per_sec = 0;
  /// Poll interval while paused on an open target-store breaker.
  uint64_t pause_poll_micros = 200;
};

/// What to migrate: a target fragment to build (the view + store), and/or
/// source fragments to retire at cutover. An empty view (`drop_only`)
/// retires fragments without building anything — the advisor's
/// kDropFragment advice.
struct MigrationSpec {
  pacb::ViewDefinition view;
  std::string store_name;
  std::vector<size_t> index_positions;
  /// Fragments dropped at the Retired stage, after the target is live.
  std::vector<std::string> retire;

  bool drop_only() const { return view.query.name.empty(); }
  std::string ToString() const;

  /// Lifts one piece of advisor advice into a migration: kAddFragment
  /// builds the recommended view (retiring nothing); kDropFragment is a
  /// drop-only migration of that fragment.
  static MigrationSpec FromRecommendation(const advisor::Recommendation& rec);
};

struct MigrationOptions {
  ThrottlePolicy throttle;
  /// Check the target container against the staging truth before cutover.
  bool verify = true;
  /// Retry budget for target-store operations that fail kUnavailable
  /// (chaos/fault injection); each retry first waits out an open breaker.
  int max_target_retries = 64;
  /// Base backoff between those retries (grows linearly, capped at 8x).
  uint64_t retry_backoff_micros = 100;
  /// Catch-up rounds before the residual delta backlog is left to the
  /// atomic cutover section.
  size_t max_catchup_rounds = 16;
};

/// Counters of one migration (relaxed atomics, mirroring ServerMetrics).
struct MigrationMetricsSnapshot {
  uint64_t rows_copied = 0;      ///< Backfill rows appended to the target.
  uint64_t batches = 0;          ///< Exclusive-lock append batches.
  uint64_t throttle_stalls = 0;  ///< Sleeps forced by max_rows_per_sec.
  uint64_t deltas_captured = 0;  ///< Update events logged for catch-up.
  uint64_t deltas_replayed = 0;  ///< Deltas replayed into the target.
  uint64_t catchup_rounds = 0;   ///< Catch-up iterations executed.
  uint64_t rebuilds = 0;         ///< Full target rebuilds (deletes, text).
  uint64_t target_retries = 0;   ///< kUnavailable retries against the target.
  uint64_t breaker_pauses = 0;   ///< Pauses on an open target breaker.
  uint64_t cutover_epoch = 0;    ///< Catalog epoch right after activation.
  uint64_t catchup_lag = 0;      ///< Deltas currently pending replay.
};

/// Point-in-time public state of a migration.
struct MigrationStatus {
  MigrationStage stage = MigrationStage::kPlanned;
  bool paused = false;  ///< Currently waiting out an open breaker.
  Status error;         ///< Why the migration aborted (OK otherwise).
  MigrationMetricsSnapshot metrics;

  std::string ToString() const;
};

/// Executes one MigrationSpec against a serving QueryServer while the old
/// layout keeps answering:
///
///  * Planned: validates the spec, registers the target as a *shadow*
///    fragment (invisible to the planner — no epoch bump), creates its
///    empty container, subscribes to the server's update events, and
///    snapshots the target view over staging.
///  * Backfilling: appends the snapshot in throttled batches, each under
///    a short exclusive-lock window; pauses while the target store's
///    circuit breaker is open and retries kUnavailable appends.
///  * CatchingUp: replays update deltas that landed during the backfill
///    through the incremental-maintenance delta rule (deletions and text
///    targets schedule a full rebuild instead).
///  * Verifying/CutOver: one exclusive-lock section replays the residual
///    deltas, set-compares the target container against the staging
///    truth, and activates the shadow — the catalog-epoch bump that
///    atomically invalidates every cached plan of the old layout.
///  * Retired: drops the retired source fragments (the exclusive-lock
///    acquisition is the drain: in-flight readers finish first).
///
/// Abort() rolls back from any pre-Retired stage; the old layout is
/// untouched until cutover, so rollback is dropping the shadow (or, from
/// kCutOver, dropping the just-activated target — the sources still
/// exist). Any non-retryable error during Run() triggers the same
/// rollback. Thread-safe: Run/RunUntil on one thread, Abort/status from
/// any other.
class MigrationEngine {
 public:
  MigrationEngine(runtime::QueryServer* server, MigrationSpec spec,
                  MigrationOptions options = {});
  ~MigrationEngine();

  MigrationEngine(const MigrationEngine&) = delete;
  MigrationEngine& operator=(const MigrationEngine&) = delete;

  /// Drives the state machine to kRetired. Returns OK on success, the
  /// triggering error after an automatic rollback, or kAborted when
  /// Abort() interrupted the run.
  Status Run();

  /// Advances until `stage` is the current stage (deterministic test
  /// hook: RunUntil(kCatchingUp) stops with the backfill done and the
  /// catch-up pending). Fails if the migration terminates first.
  Status RunUntil(MigrationStage stage);

  /// Requests an abort and rolls back. Blocks until any in-flight stage
  /// transition yields (batch boundaries poll the request). Idempotent;
  /// fails with kFailedPrecondition once the migration retired.
  Status Abort();

  MigrationStatus status() const;
  const MigrationSpec& spec() const { return spec_; }

 private:
  /// One stage transition; step_mu_ held.
  Status StepLocked();
  Status StepPlan();
  Status StepBackfill();
  Status StepCatchUp();
  Status StepCutOver();
  Status StepRetire();
  /// Rollback + transition to kAborted; step_mu_ held.
  void AbortLocked(Status cause);
  void DetachListener();

  /// Sleeps while the target store's breaker is open (counts one pause
  /// per episode); returns early when an abort is requested.
  void PauseWhileBreakerOpen();
  /// Runs `op` with the kUnavailable retry/pause envelope, feeding the
  /// target store's breaker with the outcomes.
  Status RetryTargetOp(const std::function<Status()>& op);

  /// Replays the frozen delta backlog (exclusive lock held via `sys`):
  /// rebuild when flagged, delta-rule append otherwise. `max_rows` > 0
  /// caps how many deltas one call replays — chunking bounds the fault
  /// exposure of each attempt under chaos (an all-or-nothing replay of a
  /// long backlog would never succeed at a 10% read-fault rate); 0 = all.
  /// Idempotent under retries — the backlog is only consumed on success.
  Status DrainDeltasLocked(Estocada* sys, size_t max_rows);

  runtime::QueryServer* server_;
  MigrationSpec spec_;
  MigrationOptions options_;
  std::string target_;  ///< Target fragment name; empty when drop-only.

  /// Serializes stage transitions and rollback.
  std::mutex step_mu_;
  std::atomic<MigrationStage> stage_{MigrationStage::kPlanned};
  std::atomic<bool> abort_requested_{false};
  std::atomic<bool> paused_{false};
  bool shadow_defined_ = false;  ///< step_mu_ held.
  uint64_t listener_token_ = 0;  ///< step_mu_ held; 0 = detached.

  /// Terminal error (step_mu_-independent so status() never blocks on a
  /// long-running stage).
  mutable std::mutex error_mu_;
  Status error_;

  /// Update-delta log fed by the server's update listener (which runs
  /// under the server's exclusive lock). Lock order: server mu_ before
  /// delta_mu_ — the engine only takes delta_mu_ inside WithAdminLock
  /// sections or alone, never the other way around.
  mutable std::mutex delta_mu_;
  std::vector<std::pair<std::string, engine::Row>> deltas_;
  bool needs_rebuild_ = false;

  /// Relations of the target view (set before the listener attaches,
  /// immutable afterwards).
  std::set<std::string> view_relations_;

  /// Backfill state (only touched by the Run thread).
  std::vector<engine::Row> snapshot_;
  size_t backfill_pos_ = 0;
  std::chrono::steady_clock::time_point backfill_start_;

  struct Metrics {
    std::atomic<uint64_t> rows_copied{0};
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> throttle_stalls{0};
    std::atomic<uint64_t> deltas_captured{0};
    std::atomic<uint64_t> deltas_replayed{0};
    std::atomic<uint64_t> catchup_rounds{0};
    std::atomic<uint64_t> rebuilds{0};
    std::atomic<uint64_t> target_retries{0};
    std::atomic<uint64_t> breaker_pauses{0};
    std::atomic<uint64_t> cutover_epoch{0};
  };
  mutable Metrics metrics_;
};

/// Start/status/abort front of the migration engine for a QueryServer:
/// each Start spawns a worker thread running a MigrationEngine, so the
/// server keeps serving while layouts change underneath it.
class MigrationManager {
 public:
  explicit MigrationManager(runtime::QueryServer* server);
  /// Joins every worker (in-flight migrations are aborted).
  ~MigrationManager();

  MigrationManager(const MigrationManager&) = delete;
  MigrationManager& operator=(const MigrationManager&) = delete;

  /// Invoked on the worker thread when its migration terminates — fires
  /// for kRetired *and* kAborted alike (an aborted migration completed,
  /// unsuccessfully), and strictly before Wait/WaitFor can observe the
  /// completion, so a returned Wait implies the callback already ran.
  /// Must not call Wait/WaitFor on the same id from inside (the worker
  /// would wait on itself); nudging a condition variable or queueing work
  /// is the intended use (the Autopilot's daemon loop does the former).
  using CompletionCallback =
      std::function<void(uint64_t id, const MigrationStatus& status)>;

  /// Launches a migration; returns its id immediately.
  Result<uint64_t> Start(MigrationSpec spec, MigrationOptions options = {},
                         CompletionCallback on_complete = nullptr);

  /// Convenience: lifts advisor advice into a spec and starts it.
  Result<uint64_t> StartRecommendation(const advisor::Recommendation& rec,
                                       MigrationOptions options = {},
                                       CompletionCallback on_complete = nullptr);

  Result<MigrationStatus> GetStatus(uint64_t id) const;

  /// Requests rollback of a running migration.
  Status Abort(uint64_t id);

  /// Blocks until the migration terminates; returns its final status.
  Result<MigrationStatus> Wait(uint64_t id);

  /// Bounded Wait: blocks at most `timeout_micros` microseconds. Returns
  /// the final status if the migration terminated in time, and
  /// kUnavailable when it is still running at the deadline (the migration
  /// itself is untouched — callers can retry, Abort, or keep polling).
  Result<MigrationStatus> WaitFor(uint64_t id, uint64_t timeout_micros);

  /// (id, status) of every migration ever started, in id order.
  std::vector<std::pair<uint64_t, MigrationStatus>> List() const;

 private:
  struct Entry {
    std::unique_ptr<MigrationEngine> engine;
    std::thread worker;
    std::atomic<bool> done{false};
  };

  Result<Entry*> Find(uint64_t id) const;

  runtime::QueryServer* server_;
  mutable std::mutex mu_;
  std::map<uint64_t, std::unique_ptr<Entry>> entries_;
  uint64_t next_id_ = 1;
};

}  // namespace estocada::migration

#endif  // ESTOCADA_MIGRATION_MIGRATION_H_
