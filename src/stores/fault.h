#ifndef ESTOCADA_STORES_FAULT_H_
#define ESTOCADA_STORES_FAULT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/result.h"
#include "common/rng.h"

namespace estocada::stores {

/// What can go wrong on one store's read path. All knobs compose: an
/// outage dominates, then the fail-next counter, then the random draws.
struct FaultPlan {
  /// Probability in [0, 1] that a read fails with kUnavailable.
  double transient_fault_rate = 0.0;
  /// Probability in [0, 1] that a read is delayed by `latency_spike_micros`
  /// before succeeding (models a slow replica / GC pause, not an error).
  double latency_spike_rate = 0.0;
  uint64_t latency_spike_micros = 0;
  /// Hard outage: every read fails until the flag is cleared. Toggled at
  /// runtime to simulate a store going down and coming back.
  bool outage = false;
};

/// Deterministic chaos for the five store stand-ins. One injector is
/// shared by all stores of a deployment; each store registers itself under
/// its catalog name (AttachFaultInjector) and asks the injector before
/// serving any read. Draws come from one seeded common/rng generator, so a
/// run with the same seed, plans, and query order injects the same faults.
///
/// Thread-safe: the plan map, the RNG, and the counters sit behind one
/// mutex (reads are cheap; the injector is consulted once per store API
/// call, not per row). Latency spikes sleep *outside* the lock.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : rng_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Replaces `store`'s fault plan (missing store = no faults).
  void SetPlan(const std::string& store, FaultPlan plan);

  /// Flips only the hard-outage bit, keeping the rest of the plan.
  void SetOutage(const std::string& store, bool outage);

  /// Forces the next `reads` reads of `store` to fail with kUnavailable —
  /// exact, rate-independent fault sequences for tests.
  void FailNextReads(const std::string& store, uint64_t reads);

  FaultPlan GetPlan(const std::string& store) const;

  /// The hook stores call at the top of every read. OK = proceed.
  Status OnRead(const std::string& store);

  /// The hook stores call at the top of every mutation. Only a hard
  /// outage fails writes — transient rates and latency spikes stay a
  /// read-path phenomenon (the chaos semantics PR 2/PR 5 calibrated
  /// against), while a killed store must reject writes too, or a dead
  /// replica would never go stale and the repair story would be vacuous.
  Status OnWrite(const std::string& store);

  struct Counters {
    uint64_t reads = 0;            ///< Reads that consulted the injector.
    uint64_t transient_faults = 0; ///< Random + fail-next kUnavailable.
    uint64_t outage_faults = 0;    ///< Reads rejected by a hard outage.
    uint64_t latency_spikes = 0;   ///< Reads delayed before succeeding.
    uint64_t writes = 0;           ///< Writes that consulted the injector.
    uint64_t write_faults = 0;     ///< Writes rejected by a hard outage.
  };
  Counters counters() const;
  void ResetCounters();

 private:
  mutable std::mutex mu_;
  Rng rng_;
  std::map<std::string, FaultPlan> plans_;
  /// Per-store pending forced failures (FailNextReads).
  std::map<std::string, uint64_t> fail_next_;
  Counters counters_;
};

/// Mixin every store inherits: an optional, initially absent injector
/// hook. Stores call InjectReadFault() at the top of each read path; with
/// no injector attached it is a null check and nothing more.
class FaultInjectable {
 public:
  /// Registers this store with `injector` under `store_id` (the catalog
  /// store name). Pass nullptr to detach. Not thread-safe against
  /// concurrent reads — attach during deployment setup.
  void AttachFaultInjector(FaultInjector* injector, std::string store_id) {
    fault_injector_ = injector;
    fault_store_id_ = std::move(store_id);
  }

 protected:
  Status InjectReadFault() const {
    if (fault_injector_ == nullptr) return Status::OK();
    return fault_injector_->OnRead(fault_store_id_);
  }

  Status InjectWriteFault() const {
    if (fault_injector_ == nullptr) return Status::OK();
    return fault_injector_->OnWrite(fault_store_id_);
  }

 private:
  FaultInjector* fault_injector_ = nullptr;
  std::string fault_store_id_;
};

}  // namespace estocada::stores

#endif  // ESTOCADA_STORES_FAULT_H_
